file(REMOVE_RECURSE
  "CMakeFiles/skelcl_scuda.dir/scuda.cpp.o"
  "CMakeFiles/skelcl_scuda.dir/scuda.cpp.o.d"
  "libskelcl_scuda.a"
  "libskelcl_scuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skelcl_scuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
