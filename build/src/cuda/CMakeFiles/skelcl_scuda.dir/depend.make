# Empty dependencies file for skelcl_scuda.
# This may be replaced when dependencies are built.
