file(REMOVE_RECURSE
  "libskelcl_scuda.a"
)
