
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osem/osem_cuda.cpp" "src/osem/CMakeFiles/skelcl_osem.dir/osem_cuda.cpp.o" "gcc" "src/osem/CMakeFiles/skelcl_osem.dir/osem_cuda.cpp.o.d"
  "/root/repo/src/osem/osem_data.cpp" "src/osem/CMakeFiles/skelcl_osem.dir/osem_data.cpp.o" "gcc" "src/osem/CMakeFiles/skelcl_osem.dir/osem_data.cpp.o.d"
  "/root/repo/src/osem/osem_kernels.cpp" "src/osem/CMakeFiles/skelcl_osem.dir/osem_kernels.cpp.o" "gcc" "src/osem/CMakeFiles/skelcl_osem.dir/osem_kernels.cpp.o.d"
  "/root/repo/src/osem/osem_ocl.cpp" "src/osem/CMakeFiles/skelcl_osem.dir/osem_ocl.cpp.o" "gcc" "src/osem/CMakeFiles/skelcl_osem.dir/osem_ocl.cpp.o.d"
  "/root/repo/src/osem/osem_seq.cpp" "src/osem/CMakeFiles/skelcl_osem.dir/osem_seq.cpp.o" "gcc" "src/osem/CMakeFiles/skelcl_osem.dir/osem_seq.cpp.o.d"
  "/root/repo/src/osem/osem_skelcl.cpp" "src/osem/CMakeFiles/skelcl_osem.dir/osem_skelcl.cpp.o" "gcc" "src/osem/CMakeFiles/skelcl_osem.dir/osem_skelcl.cpp.o.d"
  "/root/repo/src/osem/phantom.cpp" "src/osem/CMakeFiles/skelcl_osem.dir/phantom.cpp.o" "gcc" "src/osem/CMakeFiles/skelcl_osem.dir/phantom.cpp.o.d"
  "/root/repo/src/osem/siddon.cpp" "src/osem/CMakeFiles/skelcl_osem.dir/siddon.cpp.o" "gcc" "src/osem/CMakeFiles/skelcl_osem.dir/siddon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/skelcl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/skelcl_scuda.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/skelcl_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skelcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelc/CMakeFiles/skelcl_kernelc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
