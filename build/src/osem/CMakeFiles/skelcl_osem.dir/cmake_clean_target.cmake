file(REMOVE_RECURSE
  "libskelcl_osem.a"
)
