file(REMOVE_RECURSE
  "CMakeFiles/skelcl_osem.dir/osem_cuda.cpp.o"
  "CMakeFiles/skelcl_osem.dir/osem_cuda.cpp.o.d"
  "CMakeFiles/skelcl_osem.dir/osem_data.cpp.o"
  "CMakeFiles/skelcl_osem.dir/osem_data.cpp.o.d"
  "CMakeFiles/skelcl_osem.dir/osem_kernels.cpp.o"
  "CMakeFiles/skelcl_osem.dir/osem_kernels.cpp.o.d"
  "CMakeFiles/skelcl_osem.dir/osem_ocl.cpp.o"
  "CMakeFiles/skelcl_osem.dir/osem_ocl.cpp.o.d"
  "CMakeFiles/skelcl_osem.dir/osem_seq.cpp.o"
  "CMakeFiles/skelcl_osem.dir/osem_seq.cpp.o.d"
  "CMakeFiles/skelcl_osem.dir/osem_skelcl.cpp.o"
  "CMakeFiles/skelcl_osem.dir/osem_skelcl.cpp.o.d"
  "CMakeFiles/skelcl_osem.dir/phantom.cpp.o"
  "CMakeFiles/skelcl_osem.dir/phantom.cpp.o.d"
  "CMakeFiles/skelcl_osem.dir/siddon.cpp.o"
  "CMakeFiles/skelcl_osem.dir/siddon.cpp.o.d"
  "libskelcl_osem.a"
  "libskelcl_osem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skelcl_osem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
