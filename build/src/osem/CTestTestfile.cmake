# CMake generated Testfile for 
# Source directory: /root/repo/src/osem
# Build directory: /root/repo/build/src/osem
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
