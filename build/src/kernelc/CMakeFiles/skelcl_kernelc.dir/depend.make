# Empty dependencies file for skelcl_kernelc.
# This may be replaced when dependencies are built.
