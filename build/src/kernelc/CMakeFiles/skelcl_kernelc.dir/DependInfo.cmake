
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernelc/builtins.cpp" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/builtins.cpp.o" "gcc" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/builtins.cpp.o.d"
  "/root/repo/src/kernelc/compiler.cpp" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/compiler.cpp.o" "gcc" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/compiler.cpp.o.d"
  "/root/repo/src/kernelc/disasm.cpp" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/disasm.cpp.o" "gcc" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/disasm.cpp.o.d"
  "/root/repo/src/kernelc/lexer.cpp" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/lexer.cpp.o" "gcc" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/lexer.cpp.o.d"
  "/root/repo/src/kernelc/parser.cpp" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/parser.cpp.o" "gcc" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/parser.cpp.o.d"
  "/root/repo/src/kernelc/preprocessor.cpp" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/preprocessor.cpp.o" "gcc" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/preprocessor.cpp.o.d"
  "/root/repo/src/kernelc/program.cpp" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/program.cpp.o" "gcc" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/program.cpp.o.d"
  "/root/repo/src/kernelc/sema.cpp" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/sema.cpp.o" "gcc" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/sema.cpp.o.d"
  "/root/repo/src/kernelc/types.cpp" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/types.cpp.o" "gcc" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/types.cpp.o.d"
  "/root/repo/src/kernelc/vm.cpp" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/vm.cpp.o" "gcc" "src/kernelc/CMakeFiles/skelcl_kernelc.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
