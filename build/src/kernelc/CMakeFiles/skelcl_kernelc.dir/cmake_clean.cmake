file(REMOVE_RECURSE
  "CMakeFiles/skelcl_kernelc.dir/builtins.cpp.o"
  "CMakeFiles/skelcl_kernelc.dir/builtins.cpp.o.d"
  "CMakeFiles/skelcl_kernelc.dir/compiler.cpp.o"
  "CMakeFiles/skelcl_kernelc.dir/compiler.cpp.o.d"
  "CMakeFiles/skelcl_kernelc.dir/disasm.cpp.o"
  "CMakeFiles/skelcl_kernelc.dir/disasm.cpp.o.d"
  "CMakeFiles/skelcl_kernelc.dir/lexer.cpp.o"
  "CMakeFiles/skelcl_kernelc.dir/lexer.cpp.o.d"
  "CMakeFiles/skelcl_kernelc.dir/parser.cpp.o"
  "CMakeFiles/skelcl_kernelc.dir/parser.cpp.o.d"
  "CMakeFiles/skelcl_kernelc.dir/preprocessor.cpp.o"
  "CMakeFiles/skelcl_kernelc.dir/preprocessor.cpp.o.d"
  "CMakeFiles/skelcl_kernelc.dir/program.cpp.o"
  "CMakeFiles/skelcl_kernelc.dir/program.cpp.o.d"
  "CMakeFiles/skelcl_kernelc.dir/sema.cpp.o"
  "CMakeFiles/skelcl_kernelc.dir/sema.cpp.o.d"
  "CMakeFiles/skelcl_kernelc.dir/types.cpp.o"
  "CMakeFiles/skelcl_kernelc.dir/types.cpp.o.d"
  "CMakeFiles/skelcl_kernelc.dir/vm.cpp.o"
  "CMakeFiles/skelcl_kernelc.dir/vm.cpp.o.d"
  "libskelcl_kernelc.a"
  "libskelcl_kernelc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skelcl_kernelc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
