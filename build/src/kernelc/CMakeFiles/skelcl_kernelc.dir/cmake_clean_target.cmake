file(REMOVE_RECURSE
  "libskelcl_kernelc.a"
)
