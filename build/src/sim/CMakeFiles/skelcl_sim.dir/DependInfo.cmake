
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/device_spec.cpp" "src/sim/CMakeFiles/skelcl_sim.dir/device_spec.cpp.o" "gcc" "src/sim/CMakeFiles/skelcl_sim.dir/device_spec.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/sim/CMakeFiles/skelcl_sim.dir/system.cpp.o" "gcc" "src/sim/CMakeFiles/skelcl_sim.dir/system.cpp.o.d"
  "/root/repo/src/sim/thread_pool.cpp" "src/sim/CMakeFiles/skelcl_sim.dir/thread_pool.cpp.o" "gcc" "src/sim/CMakeFiles/skelcl_sim.dir/thread_pool.cpp.o.d"
  "/root/repo/src/sim/timeline.cpp" "src/sim/CMakeFiles/skelcl_sim.dir/timeline.cpp.o" "gcc" "src/sim/CMakeFiles/skelcl_sim.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
