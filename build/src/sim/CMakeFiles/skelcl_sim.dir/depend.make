# Empty dependencies file for skelcl_sim.
# This may be replaced when dependencies are built.
