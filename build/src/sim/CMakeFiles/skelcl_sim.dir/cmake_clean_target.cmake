file(REMOVE_RECURSE
  "libskelcl_sim.a"
)
