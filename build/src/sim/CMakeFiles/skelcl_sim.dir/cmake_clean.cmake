file(REMOVE_RECURSE
  "CMakeFiles/skelcl_sim.dir/device_spec.cpp.o"
  "CMakeFiles/skelcl_sim.dir/device_spec.cpp.o.d"
  "CMakeFiles/skelcl_sim.dir/system.cpp.o"
  "CMakeFiles/skelcl_sim.dir/system.cpp.o.d"
  "CMakeFiles/skelcl_sim.dir/thread_pool.cpp.o"
  "CMakeFiles/skelcl_sim.dir/thread_pool.cpp.o.d"
  "CMakeFiles/skelcl_sim.dir/timeline.cpp.o"
  "CMakeFiles/skelcl_sim.dir/timeline.cpp.o.d"
  "libskelcl_sim.a"
  "libskelcl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skelcl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
