file(REMOVE_RECURSE
  "CMakeFiles/skelcl_sched.dir/scheduler.cpp.o"
  "CMakeFiles/skelcl_sched.dir/scheduler.cpp.o.d"
  "libskelcl_sched.a"
  "libskelcl_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skelcl_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
