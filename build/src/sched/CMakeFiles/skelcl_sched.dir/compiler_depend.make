# Empty compiler generated dependencies file for skelcl_sched.
# This may be replaced when dependencies are built.
