file(REMOVE_RECURSE
  "libskelcl_sched.a"
)
