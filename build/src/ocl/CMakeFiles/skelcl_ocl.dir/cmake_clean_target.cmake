file(REMOVE_RECURSE
  "libskelcl_ocl.a"
)
