
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ocl/buffer.cpp" "src/ocl/CMakeFiles/skelcl_ocl.dir/buffer.cpp.o" "gcc" "src/ocl/CMakeFiles/skelcl_ocl.dir/buffer.cpp.o.d"
  "/root/repo/src/ocl/platform.cpp" "src/ocl/CMakeFiles/skelcl_ocl.dir/platform.cpp.o" "gcc" "src/ocl/CMakeFiles/skelcl_ocl.dir/platform.cpp.o.d"
  "/root/repo/src/ocl/program.cpp" "src/ocl/CMakeFiles/skelcl_ocl.dir/program.cpp.o" "gcc" "src/ocl/CMakeFiles/skelcl_ocl.dir/program.cpp.o.d"
  "/root/repo/src/ocl/queue.cpp" "src/ocl/CMakeFiles/skelcl_ocl.dir/queue.cpp.o" "gcc" "src/ocl/CMakeFiles/skelcl_ocl.dir/queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/skelcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelc/CMakeFiles/skelcl_kernelc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
