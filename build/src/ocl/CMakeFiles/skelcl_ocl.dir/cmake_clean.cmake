file(REMOVE_RECURSE
  "CMakeFiles/skelcl_ocl.dir/buffer.cpp.o"
  "CMakeFiles/skelcl_ocl.dir/buffer.cpp.o.d"
  "CMakeFiles/skelcl_ocl.dir/platform.cpp.o"
  "CMakeFiles/skelcl_ocl.dir/platform.cpp.o.d"
  "CMakeFiles/skelcl_ocl.dir/program.cpp.o"
  "CMakeFiles/skelcl_ocl.dir/program.cpp.o.d"
  "CMakeFiles/skelcl_ocl.dir/queue.cpp.o"
  "CMakeFiles/skelcl_ocl.dir/queue.cpp.o.d"
  "libskelcl_ocl.a"
  "libskelcl_ocl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skelcl_ocl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
