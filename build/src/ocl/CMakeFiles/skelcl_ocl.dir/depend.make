# Empty dependencies file for skelcl_ocl.
# This may be replaced when dependencies are built.
