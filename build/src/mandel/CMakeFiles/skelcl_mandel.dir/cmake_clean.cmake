file(REMOVE_RECURSE
  "CMakeFiles/skelcl_mandel.dir/mandel.cpp.o"
  "CMakeFiles/skelcl_mandel.dir/mandel.cpp.o.d"
  "libskelcl_mandel.a"
  "libskelcl_mandel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skelcl_mandel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
