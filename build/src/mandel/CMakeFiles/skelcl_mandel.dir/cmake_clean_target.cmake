file(REMOVE_RECURSE
  "libskelcl_mandel.a"
)
