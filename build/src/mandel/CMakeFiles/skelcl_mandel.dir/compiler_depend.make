# Empty compiler generated dependencies file for skelcl_mandel.
# This may be replaced when dependencies are built.
