file(REMOVE_RECURSE
  "libskelcl_core.a"
)
