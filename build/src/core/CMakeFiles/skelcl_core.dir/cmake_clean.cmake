file(REMOVE_RECURSE
  "CMakeFiles/skelcl_core.dir/detail/runtime.cpp.o"
  "CMakeFiles/skelcl_core.dir/detail/runtime.cpp.o.d"
  "CMakeFiles/skelcl_core.dir/detail/skeleton_exec.cpp.o"
  "CMakeFiles/skelcl_core.dir/detail/skeleton_exec.cpp.o.d"
  "CMakeFiles/skelcl_core.dir/detail/vector_data.cpp.o"
  "CMakeFiles/skelcl_core.dir/detail/vector_data.cpp.o.d"
  "CMakeFiles/skelcl_core.dir/distribution.cpp.o"
  "CMakeFiles/skelcl_core.dir/distribution.cpp.o.d"
  "CMakeFiles/skelcl_core.dir/skelcl.cpp.o"
  "CMakeFiles/skelcl_core.dir/skelcl.cpp.o.d"
  "CMakeFiles/skelcl_core.dir/type_name.cpp.o"
  "CMakeFiles/skelcl_core.dir/type_name.cpp.o.d"
  "libskelcl_core.a"
  "libskelcl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skelcl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
