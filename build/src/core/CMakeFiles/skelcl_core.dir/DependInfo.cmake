
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/detail/runtime.cpp" "src/core/CMakeFiles/skelcl_core.dir/detail/runtime.cpp.o" "gcc" "src/core/CMakeFiles/skelcl_core.dir/detail/runtime.cpp.o.d"
  "/root/repo/src/core/detail/skeleton_exec.cpp" "src/core/CMakeFiles/skelcl_core.dir/detail/skeleton_exec.cpp.o" "gcc" "src/core/CMakeFiles/skelcl_core.dir/detail/skeleton_exec.cpp.o.d"
  "/root/repo/src/core/detail/vector_data.cpp" "src/core/CMakeFiles/skelcl_core.dir/detail/vector_data.cpp.o" "gcc" "src/core/CMakeFiles/skelcl_core.dir/detail/vector_data.cpp.o.d"
  "/root/repo/src/core/distribution.cpp" "src/core/CMakeFiles/skelcl_core.dir/distribution.cpp.o" "gcc" "src/core/CMakeFiles/skelcl_core.dir/distribution.cpp.o.d"
  "/root/repo/src/core/skelcl.cpp" "src/core/CMakeFiles/skelcl_core.dir/skelcl.cpp.o" "gcc" "src/core/CMakeFiles/skelcl_core.dir/skelcl.cpp.o.d"
  "/root/repo/src/core/type_name.cpp" "src/core/CMakeFiles/skelcl_core.dir/type_name.cpp.o" "gcc" "src/core/CMakeFiles/skelcl_core.dir/type_name.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ocl/CMakeFiles/skelcl_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skelcl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelc/CMakeFiles/skelcl_kernelc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
