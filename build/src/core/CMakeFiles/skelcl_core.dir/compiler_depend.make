# Empty compiler generated dependencies file for skelcl_core.
# This may be replaced when dependencies are built.
