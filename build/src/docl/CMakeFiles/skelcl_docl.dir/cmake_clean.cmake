file(REMOVE_RECURSE
  "CMakeFiles/skelcl_docl.dir/docl.cpp.o"
  "CMakeFiles/skelcl_docl.dir/docl.cpp.o.d"
  "libskelcl_docl.a"
  "libskelcl_docl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skelcl_docl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
