file(REMOVE_RECURSE
  "libskelcl_docl.a"
)
