# Empty dependencies file for skelcl_docl.
# This may be replaced when dependencies are built.
