file(REMOVE_RECURSE
  "CMakeFiles/bench_lazy_transfers.dir/bench_lazy_transfers.cpp.o"
  "CMakeFiles/bench_lazy_transfers.dir/bench_lazy_transfers.cpp.o.d"
  "bench_lazy_transfers"
  "bench_lazy_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lazy_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
