# Empty dependencies file for bench_lazy_transfers.
# This may be replaced when dependencies are built.
