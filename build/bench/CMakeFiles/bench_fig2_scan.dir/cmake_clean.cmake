file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_scan.dir/bench_fig2_scan.cpp.o"
  "CMakeFiles/bench_fig2_scan.dir/bench_fig2_scan.cpp.o.d"
  "bench_fig2_scan"
  "bench_fig2_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
