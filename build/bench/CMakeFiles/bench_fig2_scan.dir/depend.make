# Empty dependencies file for bench_fig2_scan.
# This may be replaced when dependencies are built.
