# Empty compiler generated dependencies file for bench_mandelbrot.
# This may be replaced when dependencies are built.
