file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_phases.dir/bench_fig3_phases.cpp.o"
  "CMakeFiles/bench_fig3_phases.dir/bench_fig3_phases.cpp.o.d"
  "bench_fig3_phases"
  "bench_fig3_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
