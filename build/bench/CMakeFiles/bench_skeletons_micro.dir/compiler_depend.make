# Empty compiler generated dependencies file for bench_skeletons_micro.
# This may be replaced when dependencies are built.
