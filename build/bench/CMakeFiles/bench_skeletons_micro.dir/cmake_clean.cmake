file(REMOVE_RECURSE
  "CMakeFiles/bench_skeletons_micro.dir/bench_skeletons_micro.cpp.o"
  "CMakeFiles/bench_skeletons_micro.dir/bench_skeletons_micro.cpp.o.d"
  "bench_skeletons_micro"
  "bench_skeletons_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skeletons_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
