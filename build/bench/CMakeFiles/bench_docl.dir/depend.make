# Empty dependencies file for bench_docl.
# This may be replaced when dependencies are built.
