file(REMOVE_RECURSE
  "CMakeFiles/bench_docl.dir/bench_docl.cpp.o"
  "CMakeFiles/bench_docl.dir/bench_docl.cpp.o.d"
  "bench_docl"
  "bench_docl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_docl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
