file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_osem.dir/bench_fig4b_osem.cpp.o"
  "CMakeFiles/bench_fig4b_osem.dir/bench_fig4b_osem.cpp.o.d"
  "bench_fig4b_osem"
  "bench_fig4b_osem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_osem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
