# Empty dependencies file for bench_sched_hetero.
# This may be replaced when dependencies are built.
