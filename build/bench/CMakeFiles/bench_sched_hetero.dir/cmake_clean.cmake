file(REMOVE_RECURSE
  "CMakeFiles/bench_sched_hetero.dir/bench_sched_hetero.cpp.o"
  "CMakeFiles/bench_sched_hetero.dir/bench_sched_hetero.cpp.o.d"
  "bench_sched_hetero"
  "bench_sched_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sched_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
