file(REMOVE_RECURSE
  "CMakeFiles/osem_reconstruction.dir/osem_reconstruction.cpp.o"
  "CMakeFiles/osem_reconstruction.dir/osem_reconstruction.cpp.o.d"
  "osem_reconstruction"
  "osem_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osem_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
