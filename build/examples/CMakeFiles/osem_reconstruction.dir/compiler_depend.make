# Empty compiler generated dependencies file for osem_reconstruction.
# This may be replaced when dependencies are built.
