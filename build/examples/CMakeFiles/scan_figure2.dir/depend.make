# Empty dependencies file for scan_figure2.
# This may be replaced when dependencies are built.
