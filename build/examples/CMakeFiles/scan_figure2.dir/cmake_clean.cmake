file(REMOVE_RECURSE
  "CMakeFiles/scan_figure2.dir/scan_figure2.cpp.o"
  "CMakeFiles/scan_figure2.dir/scan_figure2.cpp.o.d"
  "scan_figure2"
  "scan_figure2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_figure2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
