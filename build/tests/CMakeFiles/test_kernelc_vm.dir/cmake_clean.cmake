file(REMOVE_RECURSE
  "CMakeFiles/test_kernelc_vm.dir/test_kernelc_vm.cpp.o"
  "CMakeFiles/test_kernelc_vm.dir/test_kernelc_vm.cpp.o.d"
  "test_kernelc_vm"
  "test_kernelc_vm.pdb"
  "test_kernelc_vm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernelc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
