file(REMOVE_RECURSE
  "CMakeFiles/test_kernelc_lexer.dir/test_kernelc_lexer.cpp.o"
  "CMakeFiles/test_kernelc_lexer.dir/test_kernelc_lexer.cpp.o.d"
  "test_kernelc_lexer"
  "test_kernelc_lexer.pdb"
  "test_kernelc_lexer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernelc_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
