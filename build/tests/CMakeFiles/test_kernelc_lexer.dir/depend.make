# Empty dependencies file for test_kernelc_lexer.
# This may be replaced when dependencies are built.
