file(REMOVE_RECURSE
  "CMakeFiles/test_kernelc_preprocessor.dir/test_kernelc_preprocessor.cpp.o"
  "CMakeFiles/test_kernelc_preprocessor.dir/test_kernelc_preprocessor.cpp.o.d"
  "test_kernelc_preprocessor"
  "test_kernelc_preprocessor.pdb"
  "test_kernelc_preprocessor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernelc_preprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
