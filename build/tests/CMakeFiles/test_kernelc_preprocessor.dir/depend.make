# Empty dependencies file for test_kernelc_preprocessor.
# This may be replaced when dependencies are built.
