# Empty dependencies file for test_scuda.
# This may be replaced when dependencies are built.
