file(REMOVE_RECURSE
  "CMakeFiles/test_scuda.dir/test_scuda.cpp.o"
  "CMakeFiles/test_scuda.dir/test_scuda.cpp.o.d"
  "test_scuda"
  "test_scuda.pdb"
  "test_scuda[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
