file(REMOVE_RECURSE
  "CMakeFiles/test_kernelc_properties.dir/test_kernelc_properties.cpp.o"
  "CMakeFiles/test_kernelc_properties.dir/test_kernelc_properties.cpp.o.d"
  "test_kernelc_properties"
  "test_kernelc_properties.pdb"
  "test_kernelc_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernelc_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
