# Empty dependencies file for test_kernelc_properties.
# This may be replaced when dependencies are built.
