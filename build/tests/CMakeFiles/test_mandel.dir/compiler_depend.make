# Empty compiler generated dependencies file for test_mandel.
# This may be replaced when dependencies are built.
