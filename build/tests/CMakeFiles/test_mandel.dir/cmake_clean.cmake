file(REMOVE_RECURSE
  "CMakeFiles/test_mandel.dir/test_mandel.cpp.o"
  "CMakeFiles/test_mandel.dir/test_mandel.cpp.o.d"
  "test_mandel"
  "test_mandel.pdb"
  "test_mandel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mandel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
