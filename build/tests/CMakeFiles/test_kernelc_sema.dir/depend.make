# Empty dependencies file for test_kernelc_sema.
# This may be replaced when dependencies are built.
