file(REMOVE_RECURSE
  "CMakeFiles/test_kernelc_sema.dir/test_kernelc_sema.cpp.o"
  "CMakeFiles/test_kernelc_sema.dir/test_kernelc_sema.cpp.o.d"
  "test_kernelc_sema"
  "test_kernelc_sema.pdb"
  "test_kernelc_sema[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernelc_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
