# Empty dependencies file for test_osem.
# This may be replaced when dependencies are built.
