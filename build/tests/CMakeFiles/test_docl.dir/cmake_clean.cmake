file(REMOVE_RECURSE
  "CMakeFiles/test_docl.dir/test_docl.cpp.o"
  "CMakeFiles/test_docl.dir/test_docl.cpp.o.d"
  "test_docl"
  "test_docl.pdb"
  "test_docl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_docl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
