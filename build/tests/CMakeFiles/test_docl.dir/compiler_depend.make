# Empty compiler generated dependencies file for test_docl.
# This may be replaced when dependencies are built.
