file(REMOVE_RECURSE
  "CMakeFiles/test_osem_extended.dir/test_osem_extended.cpp.o"
  "CMakeFiles/test_osem_extended.dir/test_osem_extended.cpp.o.d"
  "test_osem_extended"
  "test_osem_extended.pdb"
  "test_osem_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_osem_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
