# Empty dependencies file for test_osem_extended.
# This may be replaced when dependencies are built.
