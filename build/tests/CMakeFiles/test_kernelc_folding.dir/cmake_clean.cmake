file(REMOVE_RECURSE
  "CMakeFiles/test_kernelc_folding.dir/test_kernelc_folding.cpp.o"
  "CMakeFiles/test_kernelc_folding.dir/test_kernelc_folding.cpp.o.d"
  "test_kernelc_folding"
  "test_kernelc_folding.pdb"
  "test_kernelc_folding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernelc_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
