file(REMOVE_RECURSE
  "CMakeFiles/test_skeletons_typing.dir/test_skeletons_typing.cpp.o"
  "CMakeFiles/test_skeletons_typing.dir/test_skeletons_typing.cpp.o.d"
  "test_skeletons_typing"
  "test_skeletons_typing.pdb"
  "test_skeletons_typing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skeletons_typing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
