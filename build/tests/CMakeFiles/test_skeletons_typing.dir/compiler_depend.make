# Empty compiler generated dependencies file for test_skeletons_typing.
# This may be replaced when dependencies are built.
