file(REMOVE_RECURSE
  "CMakeFiles/test_kernelc_disasm.dir/test_kernelc_disasm.cpp.o"
  "CMakeFiles/test_kernelc_disasm.dir/test_kernelc_disasm.cpp.o.d"
  "test_kernelc_disasm"
  "test_kernelc_disasm.pdb"
  "test_kernelc_disasm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernelc_disasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
