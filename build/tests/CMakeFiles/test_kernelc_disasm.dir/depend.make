# Empty dependencies file for test_kernelc_disasm.
# This may be replaced when dependencies are built.
