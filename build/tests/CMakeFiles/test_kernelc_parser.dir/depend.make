# Empty dependencies file for test_kernelc_parser.
# This may be replaced when dependencies are built.
