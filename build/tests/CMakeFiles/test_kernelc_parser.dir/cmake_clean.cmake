file(REMOVE_RECURSE
  "CMakeFiles/test_kernelc_parser.dir/test_kernelc_parser.cpp.o"
  "CMakeFiles/test_kernelc_parser.dir/test_kernelc_parser.cpp.o.d"
  "test_kernelc_parser"
  "test_kernelc_parser.pdb"
  "test_kernelc_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernelc_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
