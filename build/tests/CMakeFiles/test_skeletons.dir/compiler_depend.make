# Empty compiler generated dependencies file for test_skeletons.
# This may be replaced when dependencies are built.
