// The paper's Figure 2, executable: scan of [1..16] with + on four GPUs.
// Prints the per-device parts, the independent local scans, the offsets the
// implicitly created map skeletons add, and the final result.
#include <cstdio>

#include "core/skelcl.hpp"

int main() {
  using namespace skelcl;

  init(sim::SystemConfig::teslaS1070(4));
  {
    Vector<int> v(16);
    for (int i = 0; i < 16; ++i) v[static_cast<std::size_t>(i)] = i + 1;
    v.setDistribution(Distribution::block());

    std::printf("input (block-distributed over 4 GPUs):\n  ");
    for (std::size_t i = 0; i < 16; ++i) {
      std::printf("%3d%s", v[i], (i % 4 == 3 && i != 15) ? " |" : "");
    }
    std::printf("\n\nstep 1: every GPU scans its part independently:\n  ");
    {
      int offsets[4] = {0, 4, 8, 12};
      for (int d = 0; d < 4; ++d) {
        int acc = 0;
        for (int i = 0; i < 4; ++i) {
          acc += v[static_cast<std::size_t>(offsets[d] + i)];
          std::printf("%3d", acc);
        }
        if (d != 3) std::printf("  |");
      }
    }
    std::printf("\n\nstep 2+3: block sums are downloaded; map skeletons are created\n"
                "implicitly to add each device's predecessor total (Figure 2):\n");
    std::printf("  GPU1: map(10 + x)   GPU2: map(36 + x)   GPU3: map(78 + x)\n\n");

    Scan<int> scan("int func(int a, int b) { return a + b; }");
    Vector<int> out = scan(v);

    std::printf("result:\n  ");
    for (std::size_t i = 0; i < 16; ++i) std::printf("%3d ", out[i]);
    std::printf("\n");
    finish();
    std::printf("\nsimulated time: %.1f us on %d GPUs\n", simTimeSeconds() * 1e6,
                deviceCount());
  }
  terminate();
  return 0;
}
