// Full list-mode OSEM reconstruction (paper Section IV) on synthetic PET
// data: generates a phantom + events, reconstructs with the SkelCL
// implementation on multiple GPUs, and reports image quality per pass.
#include <cstdio>
#include <cstdlib>

#include "osem/osem.hpp"

int main(int argc, char** argv) {
  using namespace skelcl::osem;

  OsemConfig cfg;
  cfg.volume.nx = 32;
  cfg.volume.ny = 32;
  cfg.volume.nz = 32;
  cfg.eventsPerSubset = 8000;
  cfg.numSubsets = 4;
  const int gpus = argc > 1 ? std::atoi(argv[1]) : 4;
  const int passes = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf("generating synthetic PET data: %d^3 volume, %d subsets x %zu events\n",
              cfg.volume.nx, cfg.numSubsets, cfg.eventsPerSubset);
  const OsemData data = OsemData::generate(cfg);

  std::printf("%-6s %-24s %-12s\n", "pass", "correlation w/ phantom", "s/subset (sim)");
  double first = 0.0;
  double last = 0.0;
  for (int pass = 1; pass <= passes; ++pass) {
    OsemConfig passCfg = cfg;
    passCfg.iterations = pass;
    OsemData passData{passCfg, Phantom(passCfg.volume), data.events};
    const OsemResult result = runOsemSkelCL(passData, gpus);
    last = imageCorrelation(result.image, data.phantom.image());
    if (pass == 1) first = last;
    std::printf("%-6d %-24.4f %-12.6f\n", pass, last, result.secondsPerSubset);
  }
  if (last >= first) {
    std::printf("(correlation rises with the passes: the reconstruction converges)\n");
  } else {
    std::printf(
        "(the first pass already converges; later passes amplify noise -- the\n"
        " classic OSEM behaviour with low statistics, which is why clinical\n"
        " reconstructions iterate a fixed, small number of times.  Increase\n"
        " events per subset to see multi-pass improvement.)\n");
  }
  return 0;
}
