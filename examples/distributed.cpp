// dOpenCL (paper Section V): the same SkelCL program runs unchanged on the
// 8 GPUs of three remote servers aggregated by a client with no local
// devices.  The network cost is visible in the simulated time.
#include <cstdio>

#include "core/skelcl.hpp"
#include "docl/docl.hpp"

int main() {
  using namespace skelcl;

  docl::initSkelCL(docl::laboratorySetup());
  {
    std::printf("the client sees %d devices (all remote, via dOpenCL)\n", deviceCount());

    Zip<float> saxpy("float func(float x, float y, float a) { return a * x + y; }");
    constexpr std::size_t kSize = 1 << 18;
    Vector<float> x(kSize);
    Vector<float> y(kSize);
    for (std::size_t i = 0; i < kSize; ++i) {
      x[i] = static_cast<float>(i % 10);
      y[i] = 1.0f;
    }

    saxpy(x, y, 2.0f);  // warm-up: compile
    finish();
    x.dataOnHostModified();
    y.dataOnHostModified();
    resetSimClock();
    Vector<float> result = saxpy(x, y, 2.0f);
    std::printf("result[123] = %.1f (expect %.1f)\n", result[123],
                2.0f * static_cast<float>(123 % 10) + 1.0f);
    finish();
    std::printf("simulated time over Gigabit Ethernet: %.3f ms\n", simTimeSeconds() * 1e3);
    std::printf("(the identical code runs on a local machine by replacing\n"
                " docl::initSkelCL(...) with skelcl::init(...))\n");
  }
  terminate();
  return 0;
}
