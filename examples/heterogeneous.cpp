// Heterogeneous scheduling (paper Section V): a map skeleton on a machine
// with one multi-core CPU and two different GPUs, first with an even split,
// then with the static scheduler's proportional weights.
#include <cstdio>

#include "core/skelcl.hpp"
#include "sched/scheduler.hpp"

int main() {
  using namespace skelcl;

  const char* userFunc =
      "float func(float x) {"
      "  float s = x;"
      "  for (int i = 0; i < 64; ++i) s = s * 0.5f + 1.0f;"
      "  return s;"
      "}";

  init(sim::SystemConfig::heterogeneousLab());
  {
    std::printf("devices:\n");
    const auto lab = sim::SystemConfig::heterogeneousLab();
    for (const auto& d : lab.devices) {
      std::printf("  %-14s %4d cores @ %.2f GHz\n", d.name.c_str(), d.cores, d.clock_ghz);
    }

    Map<float(float)> heavy(userFunc);
    constexpr std::size_t kSize = 1 << 18;
    Vector<float> input(kSize);
    for (std::size_t i = 0; i < kSize; ++i) input[i] = static_cast<float>(i % 7);

    heavy(input);  // warm-up: compile
    finish();

    input.dataOnHostModified();
    resetSimClock();
    heavy(input);
    finish();
    const double evenTime = simTimeSeconds();

    const auto cost = sched::measureUserFunction(userFunc);
    const auto weights = sched::staticWeights(lab.devices, cost);
    std::printf("\nmeasured user function cost: %.1f instructions/element\n",
                cost.instructionsPerElement);
    std::printf("static schedule weights: CPU %.3f, big GPU %.3f, small GPU %.3f\n",
                weights[0], weights[1], weights[2]);

    setPartitionWeights(weights);
    input.dataOnHostModified();
    resetSimClock();
    heavy(input);
    finish();
    const double schedTime = simTimeSeconds();

    std::printf("\neven split          : %8.3f ms (the CPU device straggles)\n",
                evenTime * 1e3);
    std::printf("proportional split  : %8.3f ms  -> %.2fx faster\n", schedTime * 1e3,
                evenTime / schedTime);
    setPartitionWeights({});
  }
  terminate();
  return 0;
}
