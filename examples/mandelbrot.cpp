// Mandelbrot with a single index-based map skeleton; writes mandelbrot.ppm.
// The paper's conclusion reports LOC/performance results for this benchmark.
#include <cstdio>
#include <fstream>

#include "mandel/mandel.hpp"

int main(int argc, char** argv) {
  using namespace skelcl::mandel;

  MandelConfig cfg;
  cfg.width = 640;
  cfg.height = 480;
  cfg.maxIterations = 96;
  const int gpus = argc > 1 ? std::atoi(argv[1]) : 4;

  const MandelResult result = mandelSkelCL(cfg, gpus);
  std::printf("computed %dx%d Mandelbrot on %d simulated GPUs in %.3f ms (simulated)\n",
              cfg.width, cfg.height, gpus, result.simSeconds * 1e3);

  std::ofstream ppm("mandelbrot.ppm", std::ios::binary);
  ppm << "P6\n" << cfg.width << " " << cfg.height << "\n255\n";
  for (int n : result.iterations) {
    const unsigned char v =
        n >= cfg.maxIterations
            ? 0
            : static_cast<unsigned char>(55 + 200 * n / cfg.maxIterations);
    const unsigned char rgb[3] = {v, static_cast<unsigned char>(v / 2), v};
    ppm.write(reinterpret_cast<const char*>(rgb), 3);
  }
  std::printf("wrote mandelbrot.ppm\n");
  return 0;
}
