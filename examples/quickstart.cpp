// Quickstart: the paper's Listing 1 — BLAS SAXPY as a zip skeleton with an
// additional scalar argument.
//
//   Y = a * X + Y
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/skelcl.hpp"

int main() {
  using namespace skelcl;

  // A machine with two simulated Tesla GPUs.
  init(sim::SystemConfig::teslaS1070(2));
  {
    /* create skeleton Y <- a * X + Y */
    Zip<float> saxpy(
        "float func(float x, float y, float a)"
        "{ return a*x+y; }");

    /* create input vectors */
    constexpr std::size_t kSize = 1 << 20;
    Vector<float> X(kSize);
    Vector<float> Y(kSize);
    for (std::size_t i = 0; i < kSize; ++i) {
      X[i] = static_cast<float>(i % 100) * 0.01f;
      Y[i] = 1.0f;
    }
    const float a = 2.5f;

    Y = saxpy(X, Y, a); /* execute skeleton */

    /* print results (the access below downloads implicitly) */
    std::printf("Y[0]      = %.4f\n", Y[0]);
    std::printf("Y[42]     = %.4f  (expect %.4f)\n", Y[42], 2.5f * 0.42f + 1.0f);
    std::printf("Y[%zu] = %.4f\n", kSize - 1, Y[kSize - 1]);
    finish();
    std::printf("simulated time: %.3f ms on %d GPUs\n", simTimeSeconds() * 1e3,
                deviceCount());
  }
  terminate();
  return 0;
}
