// Dot product = zip(*) then reduce(+): demonstrates skeleton composition and
// the lazy copying optimization of paper Section II-B — the zip's output
// never leaves the GPUs; only the small per-device partial sums are
// downloaded for the final fold.
#include <cstdio>

#include "core/skelcl.hpp"

int main() {
  using namespace skelcl;

  init(sim::SystemConfig::teslaS1070(4));
  {
    Zip<float> mult("float func(float a, float b) { return a * b; }");
    Reduce<float> sum("float func(float a, float b) { return a + b; }");

    constexpr std::size_t kSize = 1 << 18;
    Vector<float> a(kSize);
    Vector<float> b(kSize);
    for (std::size_t i = 0; i < kSize; ++i) {
      a[i] = 0.5f;
      b[i] = 2.0f;
    }

    const auto before = simStats().transfers;
    Vector<float> products = mult(a, b);
    const auto afterZip = simStats().transfers;
    const float result = sum(products);
    const auto afterReduce = simStats().transfers;

    std::printf("dot(a, b)            = %.1f (expect %.1f)\n", result,
                static_cast<float>(kSize));
    std::printf("transfers for zip    : %llu (the two input uploads)\n",
                static_cast<unsigned long long>(afterZip - before));
    std::printf("transfers for reduce : %llu (only the partial downloads -- \n"
                "                       the intermediate vector stayed on the GPUs)\n",
                static_cast<unsigned long long>(afterReduce - afterZip));
    finish();
    std::printf("simulated time: %.3f ms on %d GPUs\n", simTimeSeconds() * 1e3,
                deviceCount());
  }
  terminate();
  return 0;
}
