// k-means clustering on multiple GPUs: a second realistic application of the
// SkelCL API beyond the paper's case studies.
//
// Per iteration: an index-based map assigns every point to its nearest
// centroid (points block-distributed, centroids copy-distributed — the same
// PSD pattern as OSEM step 1), then the host updates the centroids.
#include <cstdio>
#include <vector>

#include "core/skelcl.hpp"
#include "sim/rng.hpp"

using namespace skelcl;

namespace {

constexpr int kClusters = 4;
constexpr std::size_t kPoints = 20000;
constexpr int kIterations = 10;

const char* kAssignSource = R"(
int func(int i, int offset, int count,
         __global float* px, __global float* py,
         __global float* cx, __global float* cy, int k) {
  int li = i - offset;
  if (li < 0 || li >= count) return 0;
  float x = px[li];
  float y = py[li];
  int best = 0;
  float bestDist = 1e30f;
  for (int c = 0; c < k; ++c) {
    float dx = x - cx[c];
    float dy = y - cy[c];
    float d = dx * dx + dy * dy;
    if (d < bestDist) { bestDist = d; best = c; }
  }
  return best;
}
)";

}  // namespace

int main() {
  init(sim::SystemConfig::teslaS1070(4));
  {
    // synthetic data: four gaussian-ish blobs
    sim::Rng rng(2026);
    const float centersX[kClusters] = {-5.0f, 5.0f, -5.0f, 5.0f};
    const float centersY[kClusters] = {-5.0f, -5.0f, 5.0f, 5.0f};
    Vector<float> px(kPoints);
    Vector<float> py(kPoints);
    for (std::size_t i = 0; i < kPoints; ++i) {
      const int blob = static_cast<int>(i % kClusters);
      px[i] = centersX[blob] + static_cast<float>(rng.uniform(-1.5, 1.5));
      py[i] = centersY[blob] + static_cast<float>(rng.uniform(-1.5, 1.5));
    }
    px.setDistribution(Distribution::block());
    py.setDistribution(Distribution::block());

    // Forgy initialization: the first k points seed the centroids
    Vector<float> cx(kClusters);
    Vector<float> cy(kClusters);
    for (int c = 0; c < kClusters; ++c) {
      cx[static_cast<std::size_t>(c)] = px[static_cast<std::size_t>(c)];
      cy[static_cast<std::size_t>(c)] = py[static_cast<std::size_t>(c)];
    }
    cx.setDistribution(Distribution::copy());
    cy.setDistribution(Distribution::copy());

    Map<std::int32_t(Index)> assign(kAssignSource);
    IndexVector index(kPoints);
    index.setDistribution(Distribution::block());

    std::printf("k-means: %zu points, %d clusters, %d GPUs\n\n", kPoints, kClusters,
                deviceCount());
    for (int iter = 0; iter < kIterations; ++iter) {
      Vector<std::int32_t> labels =
          assign(index, px.offsets(), px.sizes(), px, py, cx, cy, kClusters);

      // host step: recompute centroids from the labels (implicit download)
      double sumX[kClusters] = {};
      double sumY[kClusters] = {};
      std::size_t count[kClusters] = {};
      for (std::size_t i = 0; i < kPoints; ++i) {
        const int c = labels[i];
        sumX[c] += px[i];
        sumY[c] += py[i];
        count[c] += 1;
      }
      for (int c = 0; c < kClusters; ++c) {
        if (count[c] == 0) continue;
        cx[static_cast<std::size_t>(c)] =
            static_cast<float>(sumX[c] / static_cast<double>(count[c]));
        cy[static_cast<std::size_t>(c)] =
            static_cast<float>(sumY[c] / static_cast<double>(count[c]));
      }
      cx.setDistribution(Distribution::copy());  // re-broadcast next iteration
      cy.setDistribution(Distribution::copy());
    }

    std::printf("recovered centroids (true blob centers at (+-5, +-5)):\n");
    for (int c = 0; c < kClusters; ++c) {
      std::printf("  cluster %d: (%6.2f, %6.2f)\n", c, cx[static_cast<std::size_t>(c)],
                  cy[static_cast<std::size_t>(c)]);
    }
    finish();
    std::printf("\nsimulated time: %.3f ms\n", simTimeSeconds() * 1e3);
  }
  terminate();
  return 0;
}
