#include "kernelc/disasm.hpp"

#include <cstring>
#include <iomanip>
#include <sstream>

namespace skelcl::kc {

const char* opName(Op op) {
  switch (op) {
    case Op::PushI: return "push.i";
    case Op::PushF: return "push.f";
    case Op::LoadSlot: return "load.slot";
    case Op::StoreSlot: return "store.slot";
    case Op::LeaFrame: return "lea.frame";
    case Op::LoadI32: return "load.i32";
    case Op::LoadU32: return "load.u32";
    case Op::LoadF32: return "load.f32";
    case Op::LoadF64: return "load.f64";
    case Op::LoadI64: return "load.i64";
    case Op::StoreI32: return "store.i32";
    case Op::StoreI64: return "store.i64";
    case Op::StoreF32: return "store.f32";
    case Op::StoreF64: return "store.f64";
    case Op::MemCopy: return "memcopy";
    case Op::PtrAdd: return "ptradd";
    case Op::AddI: return "add.i";
    case Op::SubI: return "sub.i";
    case Op::MulI: return "mul.i";
    case Op::DivI: return "div.i";
    case Op::RemI: return "rem.i";
    case Op::NegI: return "neg.i";
    case Op::DivU: return "div.u";
    case Op::RemU: return "rem.u";
    case Op::AndI: return "and.i";
    case Op::OrI: return "or.i";
    case Op::XorI: return "xor.i";
    case Op::ShlI: return "shl.i";
    case Op::ShrI: return "shr.i";
    case Op::ShrU: return "shr.u";
    case Op::NotI: return "not.i";
    case Op::AddL: return "add.l";
    case Op::SubL: return "sub.l";
    case Op::MulL: return "mul.l";
    case Op::DivL: return "div.l";
    case Op::RemL: return "rem.l";
    case Op::NegL: return "neg.l";
    case Op::DivUL: return "div.ul";
    case Op::RemUL: return "rem.ul";
    case Op::AndL: return "and.l";
    case Op::OrL: return "or.l";
    case Op::XorL: return "xor.l";
    case Op::ShlL: return "shl.l";
    case Op::ShrL: return "shr.l";
    case Op::ShrUL: return "shr.ul";
    case Op::NotL: return "not.l";
    case Op::AddF32: return "add.f32";
    case Op::SubF32: return "sub.f32";
    case Op::MulF32: return "mul.f32";
    case Op::DivF32: return "div.f32";
    case Op::NegF32: return "neg.f32";
    case Op::AddF64: return "add.f64";
    case Op::SubF64: return "sub.f64";
    case Op::MulF64: return "mul.f64";
    case Op::DivF64: return "div.f64";
    case Op::NegF64: return "neg.f64";
    case Op::EqI: return "eq.i";
    case Op::NeI: return "ne.i";
    case Op::LtI: return "lt.i";
    case Op::LeI: return "le.i";
    case Op::GtI: return "gt.i";
    case Op::GeI: return "ge.i";
    case Op::LtU: return "lt.u";
    case Op::LeU: return "le.u";
    case Op::GtU: return "gt.u";
    case Op::GeU: return "ge.u";
    case Op::LtUL: return "lt.ul";
    case Op::LeUL: return "le.ul";
    case Op::GtUL: return "gt.ul";
    case Op::GeUL: return "ge.ul";
    case Op::EqF: return "eq.f";
    case Op::NeF: return "ne.f";
    case Op::LtF: return "lt.f";
    case Op::LeF: return "le.f";
    case Op::GtF: return "gt.f";
    case Op::GeF: return "ge.f";
    case Op::EqP: return "eq.p";
    case Op::NeP: return "ne.p";
    case Op::LNot: return "lnot";
    case Op::I2F32: return "cvt.i.f32";
    case Op::I2F64: return "cvt.i.f64";
    case Op::U2F32: return "cvt.u.f32";
    case Op::U2F64: return "cvt.u.f64";
    case Op::UL2F32: return "cvt.ul.f32";
    case Op::UL2F64: return "cvt.ul.f64";
    case Op::F2I: return "cvt.f.i";
    case Op::F2U: return "cvt.f.u";
    case Op::F2L: return "cvt.f.l";
    case Op::F2UL: return "cvt.f.ul";
    case Op::F64toF32: return "cvt.f64.f32";
    case Op::I2U: return "cvt.i.u";
    case Op::U2I: return "cvt.u.i";
    case Op::BoolNorm: return "boolnorm";
    case Op::Jmp: return "jmp";
    case Op::Jz: return "jz";
    case Op::Jnz: return "jnz";
    case Op::CallFn: return "call";
    case Op::CallBuiltin: return "call.builtin";
    case Op::Ret: return "ret";
    case Op::RetVoid: return "ret.void";
    case Op::Dup: return "dup";
    case Op::Drop: return "drop";
    case Op::Trap: return "trap";
    case Op::PtrAddImm: return "ptradd.imm";
    case Op::LoadElemI32: return "loadelem.i32";
    case Op::LoadElemU32: return "loadelem.u32";
    case Op::LoadElemF32: return "loadelem.f32";
    case Op::LoadElemF64: return "loadelem.f64";
    case Op::LoadElemI64: return "loadelem.i64";
    case Op::LoadSlotElemI32: return "loadslotelem.i32";
    case Op::LoadSlotElemU32: return "loadslotelem.u32";
    case Op::LoadSlotElemF32: return "loadslotelem.f32";
    case Op::LoadSlotElemF64: return "loadslotelem.f64";
    case Op::LoadSlotElemI64: return "loadslotelem.i64";
    case Op::TeeStoreI32: return "teestore.i32";
    case Op::TeeStoreI64: return "teestore.i64";
    case Op::TeeStoreF32: return "teestore.f32";
    case Op::TeeStoreF64: return "teestore.f64";
    case Op::IncSlotI: return "incslot.i";
    case Op::LoadSlot2: return "load.slot2";
    case Op::CmpJz: return "cmp.jz";
    case Op::CmpJnz: return "cmp.jnz";
    case Op::PushCI: return "push.ci";
    case Op::PushCF: return "push.cf";
  }
  return "?";
}

std::string disassemble(const FunctionCode& fn) {
  std::ostringstream os;
  os << (fn.isKernel ? "kernel " : "function ") << fn.name << " (slots=" << fn.numSlots
     << ", frame=" << fn.frameBytes << "B)\n";
  for (std::size_t i = 0; i < fn.code.size(); ++i) {
    const Insn& insn = fn.code[i];
    os << std::setw(5) << i << "  " << opName(insn.op);
    switch (insn.op) {
      case Op::PushI:
        os << " " << insn.imm;
        break;
      case Op::PushF:
        os << " " << insn.fimm;
        break;
      case Op::LoadSlot:
      case Op::StoreSlot:
      case Op::LeaFrame:
      case Op::MemCopy:
      case Op::PtrAdd:
      case Op::Jmp:
      case Op::Jz:
      case Op::Jnz:
      case Op::CallFn:
        os << " " << insn.a;
        break;
      case Op::CallBuiltin:
        os << " " << insn.a << " argc=" << insn.b;
        break;
      case Op::PtrAddImm:
        os << " " << insn.a << " +" << insn.imm;
        break;
      case Op::LoadElemI32:
      case Op::LoadElemU32:
      case Op::LoadElemF32:
      case Op::LoadElemF64:
      case Op::LoadElemI64:
        os << " sz=" << insn.a;
        break;
      case Op::LoadSlotElemI32:
      case Op::LoadSlotElemU32:
      case Op::LoadSlotElemF32:
      case Op::LoadSlotElemF64:
      case Op::LoadSlotElemI64:
        os << " ptr=s" << insn.a << " idx=s" << insn.b << " sz=" << insn.imm;
        break;
      case Op::TeeStoreI32:
      case Op::TeeStoreI64:
      case Op::TeeStoreF32:
      case Op::TeeStoreF64:
        os << " s" << insn.a;
        break;
      case Op::IncSlotI:
        os << " s" << insn.a << " +" << insn.imm;
        break;
      case Op::LoadSlot2:
        os << " s" << insn.a << " s" << insn.b;
        break;
      case Op::CmpJz:
      case Op::CmpJnz:
        os << " " << insn.a << " (" << opName(static_cast<Op>(insn.b)) << ")";
        break;
      default:
        break;
    }
    // Weight 0 marks code the rewrite pass synthesized (hoisted / tracking
    // instructions); its cost was charged to the in-loop replacements.
    if (insn.weight == 0) os << "  ;hoisted";
    if (insn.weight > 1) os << "  ;w=" << static_cast<int>(insn.weight);
    os << "\n";
  }
  return os.str();
}

std::string disassemblePacked(const FunctionCode& fn) {
  std::ostringstream os;
  os << (fn.isKernel ? "kernel " : "function ") << fn.name << " (slots=" << fn.numSlots
     << ", frame=" << fn.frameBytes << "B, maxstack=" << fn.maxStack
     << ", pool=" << fn.pool.size() << ")\n";
  for (std::size_t i = 0; i < fn.packed.size(); ++i) {
    const PackedInsn& insn = fn.packed[i];
    os << std::setw(5) << i << "  " << opName(insn.op);
    switch (insn.op) {
      case Op::PushI:
        os << " " << insn.a;
        break;
      case Op::PushCI: {
        os << " [" << insn.k << "]="
           << static_cast<std::int64_t>(fn.pool[static_cast<std::size_t>(insn.k)]);
        break;
      }
      case Op::PushCF: {
        double v;
        std::memcpy(&v, &fn.pool[static_cast<std::size_t>(insn.k)], sizeof v);
        os << " [" << insn.k << "]=" << v;
        break;
      }
      case Op::LoadSlot:
      case Op::StoreSlot:
      case Op::LeaFrame:
      case Op::MemCopy:
      case Op::PtrAdd:
      case Op::Jmp:
      case Op::Jz:
      case Op::Jnz:
      case Op::CallFn:
        os << " " << insn.a;
        break;
      case Op::CallBuiltin:
        os << " " << insn.a << " argc=" << insn.b;
        break;
      case Op::PtrAddImm:
        os << " " << insn.a << " +" << insn.b;
        break;
      case Op::LoadElemI32:
      case Op::LoadElemU32:
      case Op::LoadElemF32:
      case Op::LoadElemF64:
      case Op::LoadElemI64:
        os << " sz=" << insn.a;
        break;
      case Op::LoadSlotElemI32:
      case Op::LoadSlotElemU32:
      case Op::LoadSlotElemF32:
      case Op::LoadSlotElemF64:
      case Op::LoadSlotElemI64:
        os << " ptr=s" << insn.a << " idx=s" << insn.b << " sz=" << insn.c;
        break;
      case Op::TeeStoreI32:
      case Op::TeeStoreI64:
      case Op::TeeStoreF32:
      case Op::TeeStoreF64:
        os << " s" << insn.a;
        break;
      case Op::IncSlotI:
        os << " s" << insn.a << " +" << insn.b;
        break;
      case Op::LoadSlot2:
        os << " s" << insn.a << " s" << insn.b;
        break;
      case Op::CmpJz:
      case Op::CmpJnz:
        os << " " << insn.a << " (" << opName(static_cast<Op>(insn.c)) << ")";
        break;
      default:
        break;
    }
    if (insn.weight == 0) os << "  ;hoisted";
    if (insn.weight > 1) os << "  ;w=" << static_cast<int>(insn.weight);
    os << "\n";
  }
  return os.str();
}

}  // namespace skelcl::kc
