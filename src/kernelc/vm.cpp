#include "kernelc/vm.hpp"

#include <cstring>
#include <limits>

#include "kernelc/diagnostics.hpp"
#include "kernelc/vm_ops.hpp"

namespace skelcl::kc {

int CompiledProgram::findKernel(const std::string& name) const {
  const int idx = findFunction(name);
  if (idx < 0 || !functions[static_cast<std::size_t>(idx)].isKernel) return -1;
  return idx;
}

int CompiledProgram::findFunction(const std::string& name) const {
  if (!functionIndex.empty()) {
    const auto it = functionIndex.find(name);
    return it == functionIndex.end() ? -1 : it->second;
  }
  // Hand-assembled programs (tests) may lack the map; fall back to a scan.
  for (std::size_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Vm::Vm(const CompiledProgram& program, std::vector<MemRegion> globalRegions)
    : program_(program) {
  regions_.push_back(MemRegion{});  // region 0: null
  for (const auto& r : globalRegions) regions_.push_back(r);
  frameArena_.resize(kFrameArenaBytes);
  if (program_.optimized) {
    stackBuf_.resize(kMaxStack);
    slotArena_.resize(kSlotArenaSlots);
    sp_ = stackBuf_.data();
  } else {
    stack_.reserve(1024);
  }
}

void Vm::fault(const std::string& message) const {
  std::string where = currentFunction_ >= 0
                          ? program_.functions[static_cast<std::size_t>(currentFunction_)].name
                          : "<none>";
  throw VmError("device fault in '" + where + "' (work-item " +
                std::to_string(globalId_) + "): " + message);
}

void* Vm::resolve(Ptr p, std::uint32_t bytes) {
  if (p.region <= 0) fault("null pointer dereference");
  if (static_cast<std::size_t>(p.region) >= regions_.size()) {
    fault("dangling pointer (region no longer exists)");
  }
  const MemRegion& region = regions_[static_cast<std::size_t>(p.region)];
  if (static_cast<std::uint64_t>(p.offset) + bytes > region.size) {
    fault("out-of-bounds access at offset " + std::to_string(p.offset) + " + " +
          std::to_string(bytes) + " bytes in a region of " + std::to_string(region.size) +
          " bytes");
  }
  return region.data + p.offset;
}

void Vm::runKernel(int functionIndex, std::span<const Slot> args, std::int64_t globalId,
                   std::int64_t globalSize) {
  const auto& fn = program_.functions.at(static_cast<std::size_t>(functionIndex));
  SKELCL_CHECK(fn.isKernel, "runKernel on a non-kernel function");
  SKELCL_CHECK(args.size() == fn.paramTypes.size(), "kernel argument count mismatch");
  globalId_ = globalId;
  globalSize_ = globalSize;
  frameTop_ = 0;
  // Global regions were installed by the constructor and stay put; frame
  // regions pushed beyond them are popped by execute() itself.
  if (program_.optimized) {
    slotTop_ = 0;
    Slot* base = stackBuf_.data();
    std::copy(args.begin(), args.end(), base);
    sp_ = base + args.size();
    execute(functionIndex, std::span<const Slot>(base, args.size()),
            /*expectResult=*/false);
    sp_ = base;
    return;
  }
  stack_.clear();
  for (const Slot& s : args) stack_.push_back(s);
  execute(functionIndex, std::span<const Slot>(stack_.data(), args.size()),
          /*expectResult=*/false);
  stack_.clear();
}

Slot Vm::callFunction(int functionIndex, std::span<const Slot> args) {
  const auto& fn = program_.functions.at(static_cast<std::size_t>(functionIndex));
  SKELCL_CHECK(!fn.isKernel, "callFunction on a kernel");
  SKELCL_CHECK(args.size() == fn.paramTypes.size(), "function argument count mismatch");
  globalId_ = 0;
  globalSize_ = 1;
  frameTop_ = 0;
  if (program_.optimized) {
    slotTop_ = 0;
    Slot* base = stackBuf_.data();
    std::copy(args.begin(), args.end(), base);
    sp_ = base + args.size();
    execute(functionIndex, std::span<const Slot>(base, args.size()),
            /*expectResult=*/fn.returnType != types::Void);
    Slot result = fn.returnType != types::Void ? sp_[-1] : Slot{};
    sp_ = base;
    return result;
  }
  stack_.clear();
  for (const Slot& s : args) stack_.push_back(s);
  execute(functionIndex, std::span<const Slot>(stack_.data(), args.size()),
          /*expectResult=*/fn.returnType != types::Void);
  Slot result = fn.returnType != types::Void ? stack_.back() : Slot{};
  stack_.clear();
  return result;
}

void Vm::execute(int functionIndex, std::span<const Slot> args, bool expectResult) {
  if (program_.optimized) {
    executeFast(functionIndex, args, expectResult);
  } else {
    executeRef(functionIndex, args, expectResult);
  }
}

// cmpHolds / ptrPlus moved to kernelc/vm_ops.hpp, shared with the batched
// interpreter (vm_batch.cpp).
using detail::cmpHolds;
using detail::ptrPlus;

// ---------------------------------------------------------------------------
// Fast path: PackedInsn dispatch, raw-pointer stack, slot arena.
// ---------------------------------------------------------------------------

void Vm::executeFast(int functionIndex, std::span<const Slot> args, bool expectResult) {
  static thread_local std::size_t callDepth = 0;
  if (++callDepth > kMaxCallDepth) {
    --callDepth;
    fault("call stack overflow (recursion too deep)");
  }
  struct DepthGuard {
    std::size_t& d;
    ~DepthGuard() { --d; }
  } depthGuard{callDepth};

  const auto& fn = program_.functions[static_cast<std::size_t>(functionIndex)];
  const int savedFunction = currentFunction_;
  currentFunction_ = functionIndex;

  // Locals: a frame carved out of the preallocated slot arena (the reference
  // path heap-allocates a vector here).  Zeroed to match vector<Slot>'s
  // value-initialization, then parameters copied in.
  const std::size_t numSlots = static_cast<std::size_t>(fn.numSlots);
  if (slotTop_ + numSlots > slotArena_.size()) fault("local-slot arena exhausted");
  Slot* slots = slotArena_.data() + slotTop_;
  const std::size_t savedSlotTop = slotTop_;
  slotTop_ += numSlots;
  for (std::size_t s = args.size(); s < numSlots; ++s) slots[s] = Slot{};
  std::copy(args.begin(), args.end(), slots);

  // Frame memory region (for arrays / structs / addressed locals).
  const std::size_t frameRegionId = regions_.size();
  const std::uint64_t savedFrameTop = frameTop_;
  if (fn.frameBytes > 0) {
    const std::uint64_t alignedTop = (frameTop_ + 15) / 16 * 16;
    if (alignedTop + fn.frameBytes > frameArena_.size()) fault("frame arena exhausted");
    std::memset(frameArena_.data() + alignedTop, 0, fn.frameBytes);
    regions_.push_back(MemRegion{frameArena_.data() + alignedTop, fn.frameBytes});
    frameTop_ = alignedTop + fn.frameBytes;
  }
  struct FrameGuard {
    Vm& vm;
    std::size_t regionId;
    std::uint64_t savedFrameTop;
    std::size_t savedSlotTop;
    bool popRegion;
    ~FrameGuard() {
      if (popRegion) {
        vm.regions_.resize(regionId);
        vm.frameTop_ = savedFrameTop;
      }
      vm.slotTop_ = savedSlotTop;
    }
  } frameGuard{*this, frameRegionId, savedFrameTop, savedSlotTop, fn.frameBytes > 0};

  // One stack-overflow check per frame, against the compiler-computed
  // worst-case growth; pushes below run unguarded.
  Slot* const stackLow = stackBuf_.data();
  Slot* const base = sp_;
  if (static_cast<std::size_t>(base - stackLow) + static_cast<std::size_t>(fn.maxStack) >
      kMaxStack) {
    fault("operand stack overflow");
  }

  const PackedInsn* const codeBase = fn.packed.data();
  const std::uint64_t* const pool = fn.pool.data();
  const PackedInsn* ip = codeBase;
  const std::uint64_t budget = instructions_ + kMaxInstructionsPerItem;
  Slot* sp = base;

  // Infinite-loop protection: the retired counter advances per instruction
  // (weights preserve naive counts), but the budget comparison happens only
  // on back-edges and calls — straight-line code always terminates.
  const auto checkBudget = [&] {
    if (instructions_ > budget) fault("instruction budget exceeded (infinite loop?)");
  };

  for (;;) {
    const PackedInsn insn = *ip++;
    instructions_ += insn.weight;

    switch (insn.op) {
      case Op::PushI: *sp++ = Slot::fromInt(insn.a); break;
      case Op::PushCI:
        *sp++ = Slot::fromInt(static_cast<std::int64_t>(pool[insn.k]));
        break;
      case Op::PushCF: {
        double v;
        std::memcpy(&v, &pool[insn.k], sizeof v);
        *sp++ = Slot::fromFloat(v);
        break;
      }
      case Op::PushF:
        fault("unpacked float immediate in packed code");
        break;

      case Op::LoadSlot: *sp++ = slots[insn.a]; break;
      case Op::StoreSlot: slots[insn.a] = *--sp; break;

      case Op::LeaFrame: {
        Ptr p;
        p.region = static_cast<std::int32_t>(frameRegionId);
        p.offset = static_cast<std::uint32_t>(insn.a);
        *sp++ = Slot::fromPtr(p);
        break;
      }

      case Op::LoadI32: {
        const void* addr = resolve(sp[-1].p, 4);
        std::int32_t v;
        std::memcpy(&v, addr, 4);
        sp[-1] = Slot::fromInt(v);
        break;
      }
      case Op::LoadU32: {
        const void* addr = resolve(sp[-1].p, 4);
        std::uint32_t v;
        std::memcpy(&v, addr, 4);
        sp[-1] = Slot::fromInt(static_cast<std::int64_t>(v));
        break;
      }
      case Op::LoadF32: {
        const void* addr = resolve(sp[-1].p, 4);
        float v;
        std::memcpy(&v, addr, 4);
        sp[-1] = Slot::fromFloat(v);
        break;
      }
      case Op::LoadF64: {
        const void* addr = resolve(sp[-1].p, 8);
        double v;
        std::memcpy(&v, addr, 8);
        sp[-1] = Slot::fromFloat(v);
        break;
      }
      case Op::LoadI64: {
        const void* addr = resolve(sp[-1].p, 8);
        std::int64_t v;
        std::memcpy(&v, addr, 8);
        sp[-1] = Slot::fromInt(v);
        break;
      }
      case Op::StoreI32: {
        const Slot value = *--sp;
        void* addr = resolve((*--sp).p, 4);
        const auto v = static_cast<std::int32_t>(value.i);
        std::memcpy(addr, &v, 4);
        break;
      }
      case Op::StoreI64: {
        const Slot value = *--sp;
        void* addr = resolve((*--sp).p, 8);
        std::memcpy(addr, &value.i, 8);
        break;
      }
      case Op::StoreF32: {
        const Slot value = *--sp;
        void* addr = resolve((*--sp).p, 4);
        const auto v = static_cast<float>(value.f);
        std::memcpy(addr, &v, 4);
        break;
      }
      case Op::StoreF64: {
        const Slot value = *--sp;
        void* addr = resolve((*--sp).p, 8);
        std::memcpy(addr, &value.f, 8);
        break;
      }
      case Op::MemCopy: {
        const Ptr src = (*--sp).p;
        const Ptr dst = (*--sp).p;
        const auto bytes = static_cast<std::uint32_t>(insn.a);
        void* d = resolve(dst, bytes);
        const void* s = resolve(src, bytes);
        std::memmove(d, s, bytes);
        break;
      }
      case Op::PtrAdd: {
        const std::int64_t index = (*--sp).i;
        sp[-1] = Slot::fromPtr(ptrPlus(sp[-1].p, index, insn.a));
        break;
      }

      // --- superinstructions ------------------------------------------------
      case Op::PtrAddImm:
        sp[-1] = Slot::fromPtr(ptrPlus(sp[-1].p, insn.b, insn.a));
        break;

#define SKELCL_LOAD_ELEM(OPNAME, CTYPE, BYTES, MAKE)                         \
  case Op::LoadElem##OPNAME: {                                               \
    const std::int64_t index = (*--sp).i;                                    \
    const void* addr = resolve(ptrPlus(sp[-1].p, index, insn.a), BYTES);     \
    CTYPE v;                                                                 \
    std::memcpy(&v, addr, BYTES);                                            \
    sp[-1] = Slot::MAKE(v);                                                  \
    break;                                                                   \
  }                                                                          \
  case Op::LoadSlotElem##OPNAME: {                                           \
    const void* addr =                                                       \
        resolve(ptrPlus(slots[insn.a].p, slots[insn.b].i, insn.c), BYTES);   \
    CTYPE v;                                                                 \
    std::memcpy(&v, addr, BYTES);                                            \
    *sp++ = Slot::MAKE(v);                                                   \
    break;                                                                   \
  }
      SKELCL_LOAD_ELEM(I32, std::int32_t, 4, fromInt)
      SKELCL_LOAD_ELEM(U32, std::uint32_t, 4, fromInt)
      SKELCL_LOAD_ELEM(F32, float, 4, fromFloat)
      SKELCL_LOAD_ELEM(F64, double, 8, fromFloat)
      SKELCL_LOAD_ELEM(I64, std::int64_t, 8, fromInt)
#undef SKELCL_LOAD_ELEM

      case Op::TeeStoreI32: {
        const Slot value = *--sp;
        void* addr = resolve((*--sp).p, 4);
        const auto v = static_cast<std::int32_t>(value.i);
        std::memcpy(addr, &v, 4);
        slots[insn.a] = value;
        break;
      }
      case Op::TeeStoreI64: {
        const Slot value = *--sp;
        void* addr = resolve((*--sp).p, 8);
        std::memcpy(addr, &value.i, 8);
        slots[insn.a] = value;
        break;
      }
      case Op::TeeStoreF32: {
        const Slot value = *--sp;
        void* addr = resolve((*--sp).p, 4);
        const auto v = static_cast<float>(value.f);
        std::memcpy(addr, &v, 4);
        slots[insn.a] = value;
        break;
      }
      case Op::TeeStoreF64: {
        const Slot value = *--sp;
        void* addr = resolve((*--sp).p, 8);
        std::memcpy(addr, &value.f, 8);
        slots[insn.a] = value;
        break;
      }

      case Op::IncSlotI:
        slots[insn.a].i = static_cast<std::int32_t>(slots[insn.a].i + insn.b);
        break;

      case Op::LoadSlot2:
        sp[0] = slots[insn.a];
        sp[1] = slots[insn.b];
        sp += 2;
        break;

      case Op::CmpJz: {
        const Slot b = *--sp;
        const Slot a = *--sp;
        if (!cmpHolds(static_cast<Op>(insn.c), a, b)) {
          if (insn.a <= static_cast<std::int32_t>(ip - codeBase - 1)) checkBudget();
          ip = codeBase + insn.a;
        }
        break;
      }
      case Op::CmpJnz: {
        const Slot b = *--sp;
        const Slot a = *--sp;
        if (cmpHolds(static_cast<Op>(insn.c), a, b)) {
          if (insn.a <= static_cast<std::int32_t>(ip - codeBase - 1)) checkBudget();
          ip = codeBase + insn.a;
        }
        break;
      }
      // --- end superinstructions --------------------------------------------

#define SKELCL_BIN_I(OPNAME, EXPR)                                         \
  case Op::OPNAME: {                                                       \
    const std::int64_t b = (*--sp).i;                                      \
    const std::int64_t a = sp[-1].i;                                       \
    (void)a;                                                               \
    (void)b;                                                               \
    sp[-1] = Slot::fromInt(static_cast<std::int32_t>(EXPR));               \
    break;                                                                 \
  }
      SKELCL_BIN_I(AddI, a + b)
      SKELCL_BIN_I(SubI, a - b)
      SKELCL_BIN_I(MulI, a * b)
      SKELCL_BIN_I(AndI, a & b)
      SKELCL_BIN_I(OrI, a | b)
      SKELCL_BIN_I(XorI, a ^ b)
      SKELCL_BIN_I(ShlI, static_cast<std::int64_t>(static_cast<std::uint32_t>(a)
                                                   << (static_cast<std::uint32_t>(b) & 31u)))
      SKELCL_BIN_I(ShrI, static_cast<std::int32_t>(a) >> (static_cast<std::uint32_t>(b) & 31u))
      SKELCL_BIN_I(ShrU, static_cast<std::uint32_t>(a) >> (static_cast<std::uint32_t>(b) & 31u))
#undef SKELCL_BIN_I

      case Op::DivI: {
        const std::int64_t b = (*--sp).i;
        const std::int64_t a = sp[-1].i;
        if (b == 0) fault("integer division by zero");
        sp[-1] = Slot::fromInt(static_cast<std::int32_t>(a / b));
        break;
      }
      case Op::RemI: {
        const std::int64_t b = (*--sp).i;
        const std::int64_t a = sp[-1].i;
        if (b == 0) fault("integer remainder by zero");
        sp[-1] = Slot::fromInt(static_cast<std::int32_t>(a % b));
        break;
      }
      case Op::DivU: {
        const auto b = static_cast<std::uint32_t>((*--sp).i);
        const auto a = static_cast<std::uint32_t>(sp[-1].i);
        if (b == 0) fault("integer division by zero");
        sp[-1] = Slot::fromInt(static_cast<std::int64_t>(a / b));
        break;
      }
      case Op::RemU: {
        const auto b = static_cast<std::uint32_t>((*--sp).i);
        const auto a = static_cast<std::uint32_t>(sp[-1].i);
        if (b == 0) fault("integer remainder by zero");
        sp[-1] = Slot::fromInt(static_cast<std::int64_t>(a % b));
        break;
      }
      case Op::NegI:
        sp[-1].i = static_cast<std::int32_t>(-sp[-1].i);
        break;
      case Op::NotI:
        sp[-1].i = static_cast<std::int32_t>(~sp[-1].i);
        break;

#define SKELCL_BIN_L(OPNAME, EXPR)                                         \
  case Op::OPNAME: {                                                       \
    const std::int64_t b = (*--sp).i;                                      \
    const std::int64_t a = sp[-1].i;                                       \
    (void)a;                                                               \
    (void)b;                                                               \
    sp[-1] = Slot::fromInt(static_cast<std::int64_t>(EXPR));               \
    break;                                                                 \
  }
      SKELCL_BIN_L(AddL, static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b))
      SKELCL_BIN_L(SubL, static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b))
      SKELCL_BIN_L(MulL, static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b))
      SKELCL_BIN_L(AndL, a & b)
      SKELCL_BIN_L(OrL, a | b)
      SKELCL_BIN_L(XorL, a ^ b)
      SKELCL_BIN_L(ShlL, static_cast<std::uint64_t>(a) << (static_cast<std::uint64_t>(b) & 63u))
      SKELCL_BIN_L(ShrL, a >> (static_cast<std::uint64_t>(b) & 63u))
      SKELCL_BIN_L(ShrUL, static_cast<std::uint64_t>(a) >> (static_cast<std::uint64_t>(b) & 63u))
#undef SKELCL_BIN_L

      case Op::DivL: {
        const std::int64_t b = (*--sp).i;
        const std::int64_t a = sp[-1].i;
        if (b == 0) fault("integer division by zero");
        if (b == -1 && a == std::numeric_limits<std::int64_t>::min()) {
          sp[-1] = Slot::fromInt(a);  // wrap, matching 2's-complement overflow
        } else {
          sp[-1] = Slot::fromInt(a / b);
        }
        break;
      }
      case Op::RemL: {
        const std::int64_t b = (*--sp).i;
        const std::int64_t a = sp[-1].i;
        if (b == 0) fault("integer remainder by zero");
        if (b == -1) {
          sp[-1] = Slot::fromInt(std::int64_t{0});
        } else {
          sp[-1] = Slot::fromInt(a % b);
        }
        break;
      }
      case Op::DivUL: {
        const auto b = static_cast<std::uint64_t>((*--sp).i);
        const auto a = static_cast<std::uint64_t>(sp[-1].i);
        if (b == 0) fault("integer division by zero");
        sp[-1] = Slot::fromInt(static_cast<std::int64_t>(a / b));
        break;
      }
      case Op::RemUL: {
        const auto b = static_cast<std::uint64_t>((*--sp).i);
        const auto a = static_cast<std::uint64_t>(sp[-1].i);
        if (b == 0) fault("integer remainder by zero");
        sp[-1] = Slot::fromInt(static_cast<std::int64_t>(a % b));
        break;
      }
      case Op::NegL:
        sp[-1].i = static_cast<std::int64_t>(-static_cast<std::uint64_t>(sp[-1].i));
        break;
      case Op::NotL:
        sp[-1].i = ~sp[-1].i;
        break;

#define SKELCL_BIN_F32(OPNAME, OPERATOR)                                            \
  case Op::OPNAME: {                                                                \
    const double b = (*--sp).f;                                                     \
    const double a = sp[-1].f;                                                      \
    sp[-1] = Slot::fromFloat(static_cast<float>(static_cast<float>(a)               \
                                                    OPERATOR static_cast<float>(b))); \
    break;                                                                          \
  }
      SKELCL_BIN_F32(AddF32, +)
      SKELCL_BIN_F32(SubF32, -)
      SKELCL_BIN_F32(MulF32, *)
      SKELCL_BIN_F32(DivF32, /)
#undef SKELCL_BIN_F32

#define SKELCL_BIN_F64(OPNAME, OPERATOR)       \
  case Op::OPNAME: {                           \
    const double b = (*--sp).f;                \
    const double a = sp[-1].f;                 \
    sp[-1] = Slot::fromFloat(a OPERATOR b);    \
    break;                                     \
  }
      SKELCL_BIN_F64(AddF64, +)
      SKELCL_BIN_F64(SubF64, -)
      SKELCL_BIN_F64(MulF64, *)
      SKELCL_BIN_F64(DivF64, /)
#undef SKELCL_BIN_F64

      case Op::NegF32:
        sp[-1].f = -static_cast<float>(sp[-1].f);
        break;
      case Op::NegF64:
        sp[-1].f = -sp[-1].f;
        break;

#define SKELCL_CMP(OPNAME, TYPE, FIELD, OPERATOR)                  \
  case Op::OPNAME: {                                               \
    const auto b = static_cast<TYPE>((*--sp).FIELD);               \
    const auto a = static_cast<TYPE>(sp[-1].FIELD);                \
    sp[-1] = Slot::fromInt((a OPERATOR b) ? 1 : 0);                \
    break;                                                         \
  }
      SKELCL_CMP(EqI, std::int64_t, i, ==)
      SKELCL_CMP(NeI, std::int64_t, i, !=)
      SKELCL_CMP(LtI, std::int64_t, i, <)
      SKELCL_CMP(LeI, std::int64_t, i, <=)
      SKELCL_CMP(GtI, std::int64_t, i, >)
      SKELCL_CMP(GeI, std::int64_t, i, >=)
      SKELCL_CMP(LtU, std::uint32_t, i, <)
      SKELCL_CMP(LeU, std::uint32_t, i, <=)
      SKELCL_CMP(GtU, std::uint32_t, i, >)
      SKELCL_CMP(GeU, std::uint32_t, i, >=)
      SKELCL_CMP(LtUL, std::uint64_t, i, <)
      SKELCL_CMP(LeUL, std::uint64_t, i, <=)
      SKELCL_CMP(GtUL, std::uint64_t, i, >)
      SKELCL_CMP(GeUL, std::uint64_t, i, >=)
      SKELCL_CMP(EqF, double, f, ==)
      SKELCL_CMP(NeF, double, f, !=)
      SKELCL_CMP(LtF, double, f, <)
      SKELCL_CMP(LeF, double, f, <=)
      SKELCL_CMP(GtF, double, f, >)
      SKELCL_CMP(GeF, double, f, >=)
#undef SKELCL_CMP

      case Op::EqP: {
        const Ptr b = (*--sp).p;
        const Ptr a = sp[-1].p;
        sp[-1] = Slot::fromInt((a.region == b.region && a.offset == b.offset) ? 1 : 0);
        break;
      }
      case Op::NeP: {
        const Ptr b = (*--sp).p;
        const Ptr a = sp[-1].p;
        sp[-1] = Slot::fromInt((a.region != b.region || a.offset != b.offset) ? 1 : 0);
        break;
      }
      case Op::LNot:
        sp[-1].i = sp[-1].i == 0 ? 1 : 0;
        break;

      case Op::I2F32:
        sp[-1] = Slot::fromFloat(
            static_cast<float>(static_cast<std::int64_t>(sp[-1].i)));
        break;
      case Op::I2F64:
        sp[-1] = Slot::fromFloat(static_cast<double>(sp[-1].i));
        break;
      case Op::U2F32:
        sp[-1] = Slot::fromFloat(
            static_cast<float>(static_cast<std::uint32_t>(sp[-1].i)));
        break;
      case Op::U2F64:
        sp[-1] = Slot::fromFloat(
            static_cast<double>(static_cast<std::uint32_t>(sp[-1].i)));
        break;
      case Op::UL2F32:
        sp[-1] = Slot::fromFloat(
            static_cast<float>(static_cast<std::uint64_t>(sp[-1].i)));
        break;
      case Op::UL2F64:
        sp[-1] = Slot::fromFloat(
            static_cast<double>(static_cast<std::uint64_t>(sp[-1].i)));
        break;
      case Op::F2I: {
        const double v = sp[-1].f;
        sp[-1] = Slot::fromInt(static_cast<std::int32_t>(v));
        break;
      }
      case Op::F2L: {
        const double v = sp[-1].f;
        sp[-1] = Slot::fromInt(static_cast<std::int64_t>(v));
        break;
      }
      case Op::F2UL: {
        const double v = sp[-1].f;
        sp[-1] = Slot::fromInt(static_cast<std::int64_t>(static_cast<std::uint64_t>(v)));
        break;
      }
      case Op::F2U: {
        const double v = sp[-1].f;
        sp[-1] = Slot::fromInt(static_cast<std::int64_t>(static_cast<std::uint32_t>(v)));
        break;
      }
      case Op::F64toF32:
        sp[-1].f = static_cast<float>(sp[-1].f);
        break;
      case Op::I2U:
        sp[-1].i = static_cast<std::int64_t>(static_cast<std::uint32_t>(sp[-1].i));
        break;
      case Op::U2I:
        sp[-1].i = static_cast<std::int32_t>(static_cast<std::uint32_t>(sp[-1].i));
        break;
      case Op::BoolNorm:
        sp[-1].i = sp[-1].i != 0 ? 1 : 0;
        break;

      case Op::Jmp:
        if (insn.a <= static_cast<std::int32_t>(ip - codeBase - 1)) checkBudget();
        ip = codeBase + insn.a;
        break;
      case Op::Jz:
        if ((*--sp).i == 0) {
          if (insn.a <= static_cast<std::int32_t>(ip - codeBase - 1)) checkBudget();
          ip = codeBase + insn.a;
        }
        break;
      case Op::Jnz:
        if ((*--sp).i != 0) {
          if (insn.a <= static_cast<std::int32_t>(ip - codeBase - 1)) checkBudget();
          ip = codeBase + insn.a;
        }
        break;

      case Op::CallFn: {
        checkBudget();
        const auto& callee = program_.functions[static_cast<std::size_t>(insn.a)];
        const std::size_t argc = callee.paramTypes.size();
        const bool hasResult = callee.returnType != types::Void;
        sp_ = sp;
        // The callee pushes its result (if any) at `sp`, above the args; move
        // it down over the consumed arguments.
        executeFast(insn.a, std::span<const Slot>(sp - argc, argc), hasResult);
        if (hasResult) {
          const Slot result = sp[0];
          sp -= argc;
          *sp++ = result;
        } else {
          sp -= argc;
        }
        break;
      }
      case Op::CallBuiltin: {
        checkBudget();
        const BuiltinDef& def = builtinTable()[static_cast<std::size_t>(insn.a)];
        const std::size_t argc = static_cast<std::size_t>(insn.b);
        sp -= argc;
        const Slot result = def.fn(*this, sp);
        if (def.ret != BType::Void) *sp++ = result;
        break;
      }

      case Op::Ret: {
        const Slot result = *--sp;
        sp = base;
        if (expectResult) *sp++ = result;
        sp_ = sp;
        currentFunction_ = savedFunction;
        return;
      }
      case Op::RetVoid:
        sp_ = base;
        currentFunction_ = savedFunction;
        return;

      case Op::Dup:
        sp[0] = sp[-1];
        ++sp;
        break;
      case Op::Drop:
        --sp;
        break;

      case Op::Trap:
        fault("non-void function reached the end without returning a value");
    }
  }
}

// ---------------------------------------------------------------------------
// Reference path: the original guarded interpreter over the Insn IR, kept
// byte-for-byte as the differential baseline (SKELCL_KC_OPT=0).
// ---------------------------------------------------------------------------

void Vm::executeRef(int functionIndex, std::span<const Slot> args, bool expectResult) {
  static thread_local std::size_t callDepth = 0;
  if (++callDepth > kMaxCallDepth) {
    --callDepth;
    fault("call stack overflow (recursion too deep)");
  }
  struct DepthGuard {
    std::size_t& d;
    ~DepthGuard() { --d; }
  } depthGuard{callDepth};

  const auto& fn = program_.functions[static_cast<std::size_t>(functionIndex)];
  const int savedFunction = currentFunction_;
  currentFunction_ = functionIndex;

  // Locals.
  std::vector<Slot> slots(static_cast<std::size_t>(fn.numSlots));
  std::copy(args.begin(), args.end(), slots.begin());

  // Frame memory region (for arrays / structs / addressed locals).
  const std::size_t frameRegionId = regions_.size();
  const std::uint64_t savedFrameTop = frameTop_;
  if (fn.frameBytes > 0) {
    const std::uint64_t alignedTop = (frameTop_ + 15) / 16 * 16;
    if (alignedTop + fn.frameBytes > frameArena_.size()) fault("frame arena exhausted");
    std::memset(frameArena_.data() + alignedTop, 0, fn.frameBytes);
    regions_.push_back(MemRegion{frameArena_.data() + alignedTop, fn.frameBytes});
    frameTop_ = alignedTop + fn.frameBytes;
  }
  struct FrameGuard {
    Vm& vm;
    std::size_t regionId;
    std::uint64_t savedTop;
    bool active;
    ~FrameGuard() {
      if (active) {
        vm.regions_.resize(regionId);
        vm.frameTop_ = savedTop;
      }
    }
  } frameGuard{*this, frameRegionId, savedFrameTop, fn.frameBytes > 0};

  const std::size_t stackBase = stack_.size();

  auto push = [this](Slot s) {
    if (stack_.size() >= kMaxStack) fault("operand stack overflow");
    stack_.push_back(s);
  };
  auto pop = [this]() {
    Slot s = stack_.back();
    stack_.pop_back();
    return s;
  };

  const Insn* code = fn.code.data();
  std::size_t pc = 0;
  std::uint64_t budget = instructions_ + kMaxInstructionsPerItem;

  for (;;) {
    const Insn& insn = code[pc++];
    if ((instructions_ += insn.weight) > budget) {
      fault("instruction budget exceeded (infinite loop?)");
    }

    switch (insn.op) {
      case Op::PushI: push(Slot::fromInt(insn.imm)); break;
      case Op::PushF: push(Slot::fromFloat(insn.fimm)); break;

      case Op::LoadSlot: push(slots[static_cast<std::size_t>(insn.a)]); break;
      case Op::StoreSlot: slots[static_cast<std::size_t>(insn.a)] = pop(); break;

      case Op::LeaFrame: {
        Ptr p;
        p.region = static_cast<std::int32_t>(frameRegionId);
        p.offset = static_cast<std::uint32_t>(insn.a);
        push(Slot::fromPtr(p));
        break;
      }

      case Op::LoadI32: {
        const void* addr = resolve(pop().p, 4);
        std::int32_t v;
        std::memcpy(&v, addr, 4);
        push(Slot::fromInt(v));
        break;
      }
      case Op::LoadU32: {
        const void* addr = resolve(pop().p, 4);
        std::uint32_t v;
        std::memcpy(&v, addr, 4);
        push(Slot::fromInt(static_cast<std::int64_t>(v)));
        break;
      }
      case Op::LoadF32: {
        const void* addr = resolve(pop().p, 4);
        float v;
        std::memcpy(&v, addr, 4);
        push(Slot::fromFloat(v));
        break;
      }
      case Op::LoadF64: {
        const void* addr = resolve(pop().p, 8);
        double v;
        std::memcpy(&v, addr, 8);
        push(Slot::fromFloat(v));
        break;
      }
      case Op::LoadI64: {
        const void* addr = resolve(pop().p, 8);
        std::int64_t v;
        std::memcpy(&v, addr, 8);
        push(Slot::fromInt(v));
        break;
      }
      case Op::StoreI32: {
        const Slot value = pop();
        void* addr = resolve(pop().p, 4);
        const auto v = static_cast<std::int32_t>(value.i);
        std::memcpy(addr, &v, 4);
        break;
      }
      case Op::StoreI64: {
        const Slot value = pop();
        void* addr = resolve(pop().p, 8);
        std::memcpy(addr, &value.i, 8);
        break;
      }
      case Op::StoreF32: {
        const Slot value = pop();
        void* addr = resolve(pop().p, 4);
        const auto v = static_cast<float>(value.f);
        std::memcpy(addr, &v, 4);
        break;
      }
      case Op::StoreF64: {
        const Slot value = pop();
        void* addr = resolve(pop().p, 8);
        std::memcpy(addr, &value.f, 8);
        break;
      }
      case Op::MemCopy: {
        const Ptr src = pop().p;
        const Ptr dst = pop().p;
        const auto bytes = static_cast<std::uint32_t>(insn.a);
        void* d = resolve(dst, bytes);
        const void* s = resolve(src, bytes);
        std::memmove(d, s, bytes);
        break;
      }
      case Op::PtrAdd: {
        const std::int64_t index = pop().i;
        Ptr p = pop().p;
        p.offset = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(p.offset) + index * insn.a);
        push(Slot::fromPtr(p));
        break;
      }

#define SKELCL_BIN_I(OPNAME, EXPR)                                         \
  case Op::OPNAME: {                                                       \
    const std::int64_t b = pop().i;                                        \
    const std::int64_t a = pop().i;                                        \
    (void)a;                                                               \
    (void)b;                                                               \
    push(Slot::fromInt(static_cast<std::int32_t>(EXPR)));                  \
    break;                                                                 \
  }
      SKELCL_BIN_I(AddI, a + b)
      SKELCL_BIN_I(SubI, a - b)
      SKELCL_BIN_I(MulI, a * b)
      SKELCL_BIN_I(AndI, a & b)
      SKELCL_BIN_I(OrI, a | b)
      SKELCL_BIN_I(XorI, a ^ b)
      SKELCL_BIN_I(ShlI, static_cast<std::int64_t>(static_cast<std::uint32_t>(a)
                                                   << (static_cast<std::uint32_t>(b) & 31u)))
      SKELCL_BIN_I(ShrI, static_cast<std::int32_t>(a) >> (static_cast<std::uint32_t>(b) & 31u))
      SKELCL_BIN_I(ShrU, static_cast<std::uint32_t>(a) >> (static_cast<std::uint32_t>(b) & 31u))
#undef SKELCL_BIN_I

      case Op::DivI: {
        const std::int64_t b = pop().i;
        const std::int64_t a = pop().i;
        if (b == 0) fault("integer division by zero");
        push(Slot::fromInt(static_cast<std::int32_t>(a / b)));
        break;
      }
      case Op::RemI: {
        const std::int64_t b = pop().i;
        const std::int64_t a = pop().i;
        if (b == 0) fault("integer remainder by zero");
        push(Slot::fromInt(static_cast<std::int32_t>(a % b)));
        break;
      }
      case Op::DivU: {
        const auto b = static_cast<std::uint32_t>(pop().i);
        const auto a = static_cast<std::uint32_t>(pop().i);
        if (b == 0) fault("integer division by zero");
        push(Slot::fromInt(static_cast<std::int64_t>(a / b)));
        break;
      }
      case Op::RemU: {
        const auto b = static_cast<std::uint32_t>(pop().i);
        const auto a = static_cast<std::uint32_t>(pop().i);
        if (b == 0) fault("integer remainder by zero");
        push(Slot::fromInt(static_cast<std::int64_t>(a % b)));
        break;
      }
      case Op::NegI:
        stack_.back().i = static_cast<std::int32_t>(-stack_.back().i);
        break;
      case Op::NotI:
        stack_.back().i = static_cast<std::int32_t>(~stack_.back().i);
        break;

#define SKELCL_BIN_L(OPNAME, EXPR)                                         \
  case Op::OPNAME: {                                                       \
    const std::int64_t b = pop().i;                                        \
    const std::int64_t a = pop().i;                                        \
    (void)a;                                                               \
    (void)b;                                                               \
    push(Slot::fromInt(static_cast<std::int64_t>(EXPR)));                  \
    break;                                                                 \
  }
      SKELCL_BIN_L(AddL, static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b))
      SKELCL_BIN_L(SubL, static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b))
      SKELCL_BIN_L(MulL, static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b))
      SKELCL_BIN_L(AndL, a & b)
      SKELCL_BIN_L(OrL, a | b)
      SKELCL_BIN_L(XorL, a ^ b)
      SKELCL_BIN_L(ShlL, static_cast<std::uint64_t>(a) << (static_cast<std::uint64_t>(b) & 63u))
      SKELCL_BIN_L(ShrL, a >> (static_cast<std::uint64_t>(b) & 63u))
      SKELCL_BIN_L(ShrUL, static_cast<std::uint64_t>(a) >> (static_cast<std::uint64_t>(b) & 63u))
#undef SKELCL_BIN_L

      case Op::DivL: {
        const std::int64_t b = pop().i;
        const std::int64_t a = pop().i;
        if (b == 0) fault("integer division by zero");
        if (b == -1 && a == std::numeric_limits<std::int64_t>::min()) {
          push(Slot::fromInt(a));  // wrap, matching 2's-complement overflow
        } else {
          push(Slot::fromInt(a / b));
        }
        break;
      }
      case Op::RemL: {
        const std::int64_t b = pop().i;
        const std::int64_t a = pop().i;
        if (b == 0) fault("integer remainder by zero");
        if (b == -1) {
          push(Slot::fromInt(std::int64_t{0}));
        } else {
          push(Slot::fromInt(a % b));
        }
        break;
      }
      case Op::DivUL: {
        const auto b = static_cast<std::uint64_t>(pop().i);
        const auto a = static_cast<std::uint64_t>(pop().i);
        if (b == 0) fault("integer division by zero");
        push(Slot::fromInt(static_cast<std::int64_t>(a / b)));
        break;
      }
      case Op::RemUL: {
        const auto b = static_cast<std::uint64_t>(pop().i);
        const auto a = static_cast<std::uint64_t>(pop().i);
        if (b == 0) fault("integer remainder by zero");
        push(Slot::fromInt(static_cast<std::int64_t>(a % b)));
        break;
      }
      case Op::NegL:
        stack_.back().i =
            static_cast<std::int64_t>(-static_cast<std::uint64_t>(stack_.back().i));
        break;
      case Op::NotL:
        stack_.back().i = ~stack_.back().i;
        break;

#define SKELCL_BIN_F32(OPNAME, OPERATOR)                                            \
  case Op::OPNAME: {                                                                \
    const double b = pop().f;                                                       \
    const double a = pop().f;                                                       \
    push(Slot::fromFloat(static_cast<float>(static_cast<float>(a)                   \
                                                OPERATOR static_cast<float>(b))));  \
    break;                                                                          \
  }
      SKELCL_BIN_F32(AddF32, +)
      SKELCL_BIN_F32(SubF32, -)
      SKELCL_BIN_F32(MulF32, *)
      SKELCL_BIN_F32(DivF32, /)
#undef SKELCL_BIN_F32

#define SKELCL_BIN_F64(OPNAME, OPERATOR)       \
  case Op::OPNAME: {                           \
    const double b = pop().f;                  \
    const double a = pop().f;                  \
    push(Slot::fromFloat(a OPERATOR b));       \
    break;                                     \
  }
      SKELCL_BIN_F64(AddF64, +)
      SKELCL_BIN_F64(SubF64, -)
      SKELCL_BIN_F64(MulF64, *)
      SKELCL_BIN_F64(DivF64, /)
#undef SKELCL_BIN_F64

      case Op::NegF32:
        stack_.back().f = -static_cast<float>(stack_.back().f);
        break;
      case Op::NegF64:
        stack_.back().f = -stack_.back().f;
        break;

#define SKELCL_CMP(OPNAME, TYPE, FIELD, OPERATOR)                  \
  case Op::OPNAME: {                                               \
    const auto b = static_cast<TYPE>(pop().FIELD);                 \
    const auto a = static_cast<TYPE>(pop().FIELD);                 \
    push(Slot::fromInt((a OPERATOR b) ? 1 : 0));                   \
    break;                                                         \
  }
      SKELCL_CMP(EqI, std::int64_t, i, ==)
      SKELCL_CMP(NeI, std::int64_t, i, !=)
      SKELCL_CMP(LtI, std::int64_t, i, <)
      SKELCL_CMP(LeI, std::int64_t, i, <=)
      SKELCL_CMP(GtI, std::int64_t, i, >)
      SKELCL_CMP(GeI, std::int64_t, i, >=)
      SKELCL_CMP(LtU, std::uint32_t, i, <)
      SKELCL_CMP(LeU, std::uint32_t, i, <=)
      SKELCL_CMP(GtU, std::uint32_t, i, >)
      SKELCL_CMP(GeU, std::uint32_t, i, >=)
      SKELCL_CMP(LtUL, std::uint64_t, i, <)
      SKELCL_CMP(LeUL, std::uint64_t, i, <=)
      SKELCL_CMP(GtUL, std::uint64_t, i, >)
      SKELCL_CMP(GeUL, std::uint64_t, i, >=)
      SKELCL_CMP(EqF, double, f, ==)
      SKELCL_CMP(NeF, double, f, !=)
      SKELCL_CMP(LtF, double, f, <)
      SKELCL_CMP(LeF, double, f, <=)
      SKELCL_CMP(GtF, double, f, >)
      SKELCL_CMP(GeF, double, f, >=)
#undef SKELCL_CMP

      case Op::EqP: {
        const Ptr b = pop().p;
        const Ptr a = pop().p;
        push(Slot::fromInt((a.region == b.region && a.offset == b.offset) ? 1 : 0));
        break;
      }
      case Op::NeP: {
        const Ptr b = pop().p;
        const Ptr a = pop().p;
        push(Slot::fromInt((a.region != b.region || a.offset != b.offset) ? 1 : 0));
        break;
      }
      case Op::LNot:
        stack_.back().i = stack_.back().i == 0 ? 1 : 0;
        break;

      case Op::I2F32:
        stack_.back() = Slot::fromFloat(
            static_cast<float>(static_cast<std::int64_t>(stack_.back().i)));
        break;
      case Op::I2F64:
        stack_.back() = Slot::fromFloat(static_cast<double>(stack_.back().i));
        break;
      case Op::U2F32:
        stack_.back() = Slot::fromFloat(
            static_cast<float>(static_cast<std::uint32_t>(stack_.back().i)));
        break;
      case Op::U2F64:
        stack_.back() = Slot::fromFloat(
            static_cast<double>(static_cast<std::uint32_t>(stack_.back().i)));
        break;
      case Op::UL2F32:
        stack_.back() = Slot::fromFloat(
            static_cast<float>(static_cast<std::uint64_t>(stack_.back().i)));
        break;
      case Op::UL2F64:
        stack_.back() = Slot::fromFloat(
            static_cast<double>(static_cast<std::uint64_t>(stack_.back().i)));
        break;
      case Op::F2I: {
        const double v = stack_.back().f;
        stack_.back() = Slot::fromInt(static_cast<std::int32_t>(v));
        break;
      }
      case Op::F2L: {
        const double v = stack_.back().f;
        stack_.back() = Slot::fromInt(static_cast<std::int64_t>(v));
        break;
      }
      case Op::F2UL: {
        const double v = stack_.back().f;
        stack_.back() =
            Slot::fromInt(static_cast<std::int64_t>(static_cast<std::uint64_t>(v)));
        break;
      }
      case Op::F2U: {
        const double v = stack_.back().f;
        stack_.back() =
            Slot::fromInt(static_cast<std::int64_t>(static_cast<std::uint32_t>(v)));
        break;
      }
      case Op::F64toF32:
        stack_.back().f = static_cast<float>(stack_.back().f);
        break;
      case Op::I2U:
        stack_.back().i = static_cast<std::int64_t>(static_cast<std::uint32_t>(stack_.back().i));
        break;
      case Op::U2I:
        stack_.back().i = static_cast<std::int32_t>(static_cast<std::uint32_t>(stack_.back().i));
        break;
      case Op::BoolNorm:
        stack_.back().i = stack_.back().i != 0 ? 1 : 0;
        break;

      case Op::Jmp:
        pc = static_cast<std::size_t>(insn.a);
        break;
      case Op::Jz:
        if (pop().i == 0) pc = static_cast<std::size_t>(insn.a);
        break;
      case Op::Jnz:
        if (pop().i != 0) pc = static_cast<std::size_t>(insn.a);
        break;

      case Op::CallFn: {
        const auto& callee = program_.functions[static_cast<std::size_t>(insn.a)];
        const std::size_t argc = callee.paramTypes.size();
        const std::span<const Slot> callArgs(stack_.data() + stack_.size() - argc, argc);
        // The callee pushes its result (if any) above the args; we then move
        // it down over the consumed arguments.
        executeRef(insn.a, callArgs, callee.returnType != types::Void);
        if (callee.returnType != types::Void) {
          const Slot result = stack_.back();
          stack_.resize(stack_.size() - 1 - argc);
          stack_.push_back(result);
        } else {
          stack_.resize(stack_.size() - argc);
        }
        break;
      }
      case Op::CallBuiltin: {
        const BuiltinDef& def = builtinTable()[static_cast<std::size_t>(insn.a)];
        const std::size_t argc = static_cast<std::size_t>(insn.b);
        Slot argv[8];
        for (std::size_t i = 0; i < argc; ++i) {
          argv[argc - 1 - i] = pop();
        }
        const Slot result = def.fn(*this, argv);
        if (def.ret != BType::Void) push(result);
        break;
      }

      case Op::Ret: {
        const Slot result = pop();
        stack_.resize(stackBase);
        if (expectResult) stack_.push_back(result);
        currentFunction_ = savedFunction;
        return;
      }
      case Op::RetVoid:
        stack_.resize(stackBase);
        currentFunction_ = savedFunction;
        return;

      case Op::Dup:
        push(stack_.back());
        break;
      case Op::Drop:
        stack_.pop_back();
        break;

      case Op::Trap:
        fault("non-void function reached the end without returning a value");
        break;

      // The reference interpreter runs the naive pipeline only; optimized
      // programs always dispatch through executeFast.
      case Op::PtrAddImm:
      case Op::LoadElemI32: case Op::LoadElemU32: case Op::LoadElemF32:
      case Op::LoadElemF64: case Op::LoadElemI64:
      case Op::LoadSlotElemI32: case Op::LoadSlotElemU32: case Op::LoadSlotElemF32:
      case Op::LoadSlotElemF64: case Op::LoadSlotElemI64:
      case Op::TeeStoreI32: case Op::TeeStoreI64: case Op::TeeStoreF32:
      case Op::TeeStoreF64:
      case Op::IncSlotI: case Op::LoadSlot2: case Op::CmpJz: case Op::CmpJnz:
      case Op::PushCI: case Op::PushCF:
        fault("superinstruction reached the reference interpreter "
              "(recompile without the peephole pass)");
        break;
    }
  }
}

}  // namespace skelcl::kc
