#include "kernelc/program.hpp"

#include "kernelc/compiler.hpp"
#include "kernelc/lexer.hpp"
#include "kernelc/parser.hpp"
#include "kernelc/preprocessor.hpp"
#include "kernelc/sema.hpp"

namespace skelcl::kc {

std::shared_ptr<const CompiledProgram> compileProgram(const std::string& source) {
  const std::string expanded = preprocess(source);  // Lexer views this string
  Lexer lexer(expanded);
  std::vector<Token> tokens = lexer.run();
  const std::uint64_t complexity = tokens.size();

  Parser parser(std::move(tokens));
  Program ast = parser.run();

  Sema sema(ast);
  const TypeTable types = sema.run();

  Compiler compiler(types, sema.functions());

  auto program = std::make_shared<CompiledProgram>();
  program->functions = compiler.run();
  program->complexity = complexity;
  program->source = source;
  return program;
}

}  // namespace skelcl::kc
