#include "kernelc/program.hpp"

#include <cstdlib>
#include <cstring>

#include "kernelc/compiler.hpp"
#include "kernelc/encode.hpp"
#include "kernelc/lexer.hpp"
#include "kernelc/parser.hpp"
#include "kernelc/peephole.hpp"
#include "kernelc/preprocessor.hpp"
#include "kernelc/rewrite.hpp"
#include "kernelc/sema.hpp"

namespace skelcl::kc {

CompileOptions defaultCompileOptions() {
  CompileOptions options;
  const char* env = std::getenv("SKELCL_KC_OPT");
  if (env != nullptr) {
    if (std::strcmp(env, "0") == 0) options.tier = 0;
    else if (std::strcmp(env, "1") == 0) options.tier = 1;
  }
  return options;
}

std::shared_ptr<const CompiledProgram> compileProgram(const std::string& source) {
  return compileProgram(source, defaultCompileOptions());
}

std::shared_ptr<const CompiledProgram> compileProgram(const std::string& source,
                                                      const CompileOptions& options) {
  const std::string expanded = preprocess(source);  // Lexer views this string
  Lexer lexer(expanded);
  std::vector<Token> tokens = lexer.run();
  const std::uint64_t complexity = tokens.size();

  Parser parser(std::move(tokens));
  Program ast = parser.run();

  Sema sema(ast);
  const TypeTable types = sema.run();

  Compiler compiler(types, sema.functions());

  auto program = std::make_shared<CompiledProgram>();
  program->functions = compiler.run();
  program->complexity = complexity;
  program->source = source;
  program->tier = options.tier;
  if (options.tier >= 2) {
    // Rewrite rules run on the naive IR so the peephole pass can fuse the
    // rewritten index arithmetic into its superinstructions.
    for (FunctionCode& fn : program->functions) rewriteOptimize(fn);
  }
  if (options.tier >= 1) {
    for (FunctionCode& fn : program->functions) peepholeOptimize(fn);
    finalizeFunctions(program->functions);
    program->optimized = true;
  }
  // Sema rejects redefinitions, so every name maps to exactly one function.
  for (std::size_t i = 0; i < program->functions.size(); ++i) {
    program->functionIndex.emplace(program->functions[i].name, static_cast<int>(i));
  }
  return program;
}

}  // namespace skelcl::kc
