// Final lowering of compiled functions for the optimized pipeline:
//  - computes each function's worst-case operand-stack growth (`maxStack`),
//    letting the VM hoist per-push overflow guards to one check at entry;
//  - packs the 32-byte Insn IR into the 16-byte PackedInsn dispatch encoding,
//    moving cold 64-bit immediates into a per-function constant pool.
#pragma once

#include <vector>

#include "kernelc/bytecode.hpp"

namespace skelcl::kc {

/// Finalize every function in `fns` (maxStack + packed encoding).  Call-stack
/// deltas of CallFn instructions are resolved against `fns` itself, so the
/// whole program must be compiled first.
void finalizeFunctions(std::vector<FunctionCode>& fns);

}  // namespace skelcl::kc
