// The bytecode virtual machine: executes one work-item (or one host-side
// function call) at a time.  All loads and stores are bounds-checked — unlike
// real OpenCL, which the paper notes "performs no boundary checks" — and the
// executed-instruction count feeds the device cost model in sim::System.
//
// Two interpreter paths share this class (docs/VM.md):
//  - the *fast* path (default) runs the compact 16-byte PackedInsn encoding
//    with a preallocated slot arena, a raw-pointer operand stack guarded once
//    per frame by the compiler-computed maxStack, and infinite-loop budget
//    checks on back-edges and calls only;
//  - the *reference* path (SKELCL_KC_OPT=0) interprets the 32-byte Insn IR
//    with per-push guards and per-call heap-allocated locals, exactly as the
//    original interpreter did.
// Both retire identical instruction counts (superinstructions carry the
// weight of the naive window they replace) and produce bit-identical data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernelc/builtins.hpp"
#include "kernelc/bytecode.hpp"
#include "kernelc/value.hpp"

namespace skelcl::kc {

/// A non-owning view of one memory region the VM may address.
struct MemRegion {
  std::byte* data = nullptr;
  std::uint64_t size = 0;
};

/// A compiled program (functions + the type table their bytecode references).
struct CompiledProgram {
  std::vector<FunctionCode> functions;
  std::uint64_t complexity = 0;  ///< token count; drives the compile-cost model
  std::string source;
  /// True when the optimized pipeline ran (peephole + packed encoding); the
  /// VM picks its interpreter path from this.
  bool optimized = false;
  /// Optimization tier this program was compiled at (CompileOptions::tier):
  /// 0 reference, 1 fast, 2 fast + rewrite pass + batch eligibility.
  /// Hand-assembled programs default to 0 regardless of `optimized`.
  int tier = 0;
  /// name -> index over `functions`, built once at compile time (names are
  /// unique; sema rejects redefinitions).  Empty for hand-assembled programs.
  std::unordered_map<std::string, int> functionIndex;

  /// Index of the kernel with the given name, or -1.
  int findKernel(const std::string& name) const;
  /// Index of any function with the given name, or -1.
  int findFunction(const std::string& name) const;
};

class Vm final : public BuiltinCtx {
 public:
  /// `globalRegions[i]` backs pointer region id `i + 1` (region 0 is null).
  Vm(const CompiledProgram& program, std::vector<MemRegion> globalRegions);

  /// Execute one work-item of a kernel.  `args` are the kernel arguments:
  /// buffer arguments as Ptr slots referring to global regions, scalars by
  /// value.
  void runKernel(int functionIndex, std::span<const Slot> args, std::int64_t globalId,
                 std::int64_t globalSize);

  /// Execute `count` consecutive work-items [gidBase, gidBase + count) of a
  /// kernel in work-group-batched mode: the dispatch loop is inverted so one
  /// opcode decode is amortized over every live work-item ("lane"), operating
  /// on a lane-strided slot arena.  Divergent control flow splits the group
  /// into lane subsets; there is no reconvergence, but straight-line and
  /// uniformly-looping bodies stay dense.  Falls back to per-item runKernel
  /// when the function is not batchable (FunctionCode::batchable) or the
  /// program is not optimized.  Outputs and retired-instruction counts are
  /// bit-identical to `count` sequential runKernel calls; only the order in
  /// which work-items touch memory changes (which batchability guarantees is
  /// unobservable).  `count` is capped at kBatchLanes per call.
  void runKernelBatch(int functionIndex, std::span<const Slot> args, std::int64_t gidBase,
                      std::int64_t count, std::int64_t globalSize);

  /// Maximum lanes per runKernelBatch call (one simulated work-group).
  static constexpr std::int64_t kBatchLanes = 256;

  /// Call a (non-kernel) function, e.g. for host-side folding in the reduce
  /// skeleton.  Returns its value.
  Slot callFunction(int functionIndex, std::span<const Slot> args);

  /// Executed-instruction counter (accumulates across runs; reset manually).
  /// Superinstructions count as the number of naive instructions they retire,
  /// so this is identical between the fast and reference paths.
  std::uint64_t instructionsExecuted() const { return instructions_; }
  void resetInstructionCount() { instructions_ = 0; }

  // BuiltinCtx
  std::int64_t globalId() const override { return globalId_; }
  std::int64_t globalSize() const override { return globalSize_; }
  void* resolve(Ptr p, std::uint32_t bytes) override;

  /// Per-invocation instruction budget; exceeded -> VmError ("infinite loop").
  static constexpr std::uint64_t kMaxInstructionsPerItem = 1ull << 30;

 private:
  void execute(int functionIndex, std::span<const Slot> args, bool expectResult);
  void executeRef(int functionIndex, std::span<const Slot> args, bool expectResult);
  void executeFast(int functionIndex, std::span<const Slot> args, bool expectResult);
  void executeBatch(int functionIndex, std::span<const Slot> args, std::int64_t gidBase,
                    std::int64_t count);

  [[noreturn]] void fault(const std::string& message) const;

  const CompiledProgram& program_;
  std::vector<MemRegion> regions_;  ///< [0] reserved null; then global args; then frames

  // reference path: growable operand stack with per-push guards
  std::vector<Slot> stack_;

  // fast path: fixed operand stack (guarded once per frame via maxStack) and
  // a slot arena replacing per-call heap-allocated locals
  std::vector<Slot> stackBuf_;
  Slot* sp_ = nullptr;
  std::vector<Slot> slotArena_;
  std::size_t slotTop_ = 0;

  // frame memory (local arrays / structs / addressed locals), both paths
  std::vector<std::byte> frameArena_;
  std::uint64_t frameTop_ = 0;

  // batched path: lane-strided slot and operand-stack arenas, allocated on
  // first runKernelBatch use.  Slot s of lane l lives at batchSlots_[s*n + l];
  // stack depth d of lane l at batchStack_[d*n + l] (n = lanes this batch).
  std::vector<Slot> batchSlots_;
  std::vector<Slot> batchStack_;

  std::int64_t globalId_ = 0;
  std::int64_t globalSize_ = 1;
  std::uint64_t instructions_ = 0;
  int currentFunction_ = -1;

  static constexpr std::size_t kMaxStack = 1 << 16;
  static constexpr std::size_t kMaxCallDepth = 200;
  static constexpr std::size_t kFrameArenaBytes = 1 << 20;
  static constexpr std::size_t kSlotArenaSlots = 1 << 15;
};

}  // namespace skelcl::kc
