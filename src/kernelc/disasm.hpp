// Human-readable bytecode dump, for debugging and the compiler tests.
#pragma once

#include <string>

#include "kernelc/bytecode.hpp"

namespace skelcl::kc {

/// Disassemble one function to text (one instruction per line).
std::string disassemble(const FunctionCode& fn);

}  // namespace skelcl::kc
