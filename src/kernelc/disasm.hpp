// Human-readable bytecode dump, for debugging and the compiler tests.
#pragma once

#include <string>

#include "kernelc/bytecode.hpp"

namespace skelcl::kc {

/// Disassemble one function's Insn IR to text (one instruction per line).
std::string disassemble(const FunctionCode& fn);

/// Disassemble the packed (16-byte) dispatch encoding, showing the constant
/// pool and per-function maxStack.  Empty `packed` yields just the header.
std::string disassemblePacked(const FunctionCode& fn);

}  // namespace skelcl::kc
