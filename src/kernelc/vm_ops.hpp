// Scalar helpers shared by the per-item (vm.cpp) and work-group-batched
// (vm_batch.cpp) interpreters.  Internal to kernelc — not installed API.
#pragma once

#include <cstdint>

#include "kernelc/bytecode.hpp"
#include "kernelc/value.hpp"

namespace skelcl::kc::detail {

/// Evaluate one fused comparison exactly as the standalone opcode would.
inline bool cmpHolds(Op op, const Slot& a, const Slot& b) {
  switch (op) {
    case Op::EqI: return a.i == b.i;
    case Op::NeI: return a.i != b.i;
    case Op::LtI: return a.i < b.i;
    case Op::LeI: return a.i <= b.i;
    case Op::GtI: return a.i > b.i;
    case Op::GeI: return a.i >= b.i;
    case Op::LtU: return static_cast<std::uint32_t>(a.i) < static_cast<std::uint32_t>(b.i);
    case Op::LeU: return static_cast<std::uint32_t>(a.i) <= static_cast<std::uint32_t>(b.i);
    case Op::GtU: return static_cast<std::uint32_t>(a.i) > static_cast<std::uint32_t>(b.i);
    case Op::GeU: return static_cast<std::uint32_t>(a.i) >= static_cast<std::uint32_t>(b.i);
    case Op::LtUL: return static_cast<std::uint64_t>(a.i) < static_cast<std::uint64_t>(b.i);
    case Op::LeUL: return static_cast<std::uint64_t>(a.i) <= static_cast<std::uint64_t>(b.i);
    case Op::GtUL: return static_cast<std::uint64_t>(a.i) > static_cast<std::uint64_t>(b.i);
    case Op::GeUL: return static_cast<std::uint64_t>(a.i) >= static_cast<std::uint64_t>(b.i);
    case Op::EqF: return a.f == b.f;
    case Op::NeF: return a.f != b.f;
    case Op::LtF: return a.f < b.f;
    case Op::LeF: return a.f <= b.f;
    case Op::GtF: return a.f > b.f;
    case Op::GeF: return a.f >= b.f;
    case Op::EqP: return a.p.region == b.p.region && a.p.offset == b.p.offset;
    case Op::NeP: return a.p.region != b.p.region || a.p.offset != b.p.offset;
    default: return false;  // peephole only fuses the ops above
  }
}

/// Pointer arithmetic: the offset wraps mod 2^32 and never faults here;
/// bounds are enforced at the access (Vm::resolve).
inline Ptr ptrPlus(Ptr p, std::int64_t index, std::int64_t elemSize) {
  p.offset = static_cast<std::uint32_t>(static_cast<std::int64_t>(p.offset) +
                                        index * elemSize);
  return p;
}

}  // namespace skelcl::kc::detail
