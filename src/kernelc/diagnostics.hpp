// Compile-time diagnostics.  The simulated OpenCL runtime surfaces these as
// the program build log, mirroring how a real OpenCL driver reports errors in
// the kernel source SkelCL generates at runtime.
#pragma once

#include <string>
#include <vector>

#include "base/error.hpp"
#include "kernelc/token.hpp"

namespace skelcl::kc {

struct Diagnostic {
  SourceLoc loc;
  std::string message;

  std::string format() const {
    return std::to_string(loc.line) + ":" + std::to_string(loc.column) + ": error: " +
           message;
  }
};

/// Thrown when lexing/parsing/semantic analysis fails.
class CompileError : public Error {
 public:
  explicit CompileError(std::vector<Diagnostic> diags)
      : Error(formatAll(diags)), diagnostics_(std::move(diags)) {}

  CompileError(SourceLoc loc, const std::string& message)
      : CompileError(std::vector<Diagnostic>{Diagnostic{loc, message}}) {}

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

 private:
  static std::string formatAll(const std::vector<Diagnostic>& diags) {
    std::string out = "kernel compilation failed:";
    for (const auto& d : diags) {
      out += "\n  ";
      out += d.format();
    }
    return out;
  }

  std::vector<Diagnostic> diagnostics_;
};

/// Thrown by the VM for runtime faults (out-of-bounds access, null deref,
/// division by zero, stack overflow).  Real OpenCL performs no boundary
/// checks (the paper calls this out as a pitfall); the simulated device does,
/// and reports precisely which work-item faulted.
class VmError : public Error {
 public:
  explicit VmError(const std::string& what) : Error(what) {}
};

}  // namespace skelcl::kc
