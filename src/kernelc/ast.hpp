// Abstract syntax tree of the kernel language.
//
// The parser builds the tree; semantic analysis (sema.cpp) fills in the
// `type` / slot / offset annotation fields in place; the bytecode compiler
// (compiler.cpp) only reads annotated trees.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kernelc/token.hpp"
#include "kernelc/types.hpp"

namespace skelcl::kc {

// ---------------------------------------------------------------------------
// Syntactic type spelling (resolved to a TypeId by sema)
// ---------------------------------------------------------------------------

struct TypeSpec {
  SourceLoc loc;
  bool isStruct = false;      ///< spelled with the `struct` keyword or a struct name
  Scalar scalar = Scalar::Void;
  std::string structName;     ///< when isStruct
  int pointerDepth = 0;
  bool isGlobal = false;      ///< carried `__global` (recorded, not enforced)
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  IntLit, FloatLit, BoolLit,
  VarRef, Unary, Binary, Assign, Ternary, Call, Index, Member, Cast, SizeofType,
};

enum class UnaryOp { Plus, Minus, Not, BitNot, Deref, AddrOf, PreInc, PreDec, PostInc, PostDec };
enum class BinaryOp { Add, Sub, Mul, Div, Rem, BitAnd, BitOr, BitXor, Shl, Shr,
                      LAnd, LOr, Eq, Ne, Lt, Le, Gt, Ge };

struct Expr {
  explicit Expr(ExprKind k, SourceLoc l) : kind(k), loc(l) {}
  virtual ~Expr() = default;

  const ExprKind kind;
  SourceLoc loc;

  // --- sema annotations ---
  TypeId type = types::Invalid;
  bool isLValue = false;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLit final : Expr {
  IntLit(SourceLoc l, std::uint64_t v, bool isUnsigned, bool isLong = false)
      : Expr(ExprKind::IntLit, l), value(v), isUnsigned(isUnsigned), isLong(isLong) {}
  std::uint64_t value;
  bool isUnsigned;
  bool isLong;  ///< 'l'/'L' suffix
};

struct FloatLit final : Expr {
  FloatLit(SourceLoc l, double v, bool f32) : Expr(ExprKind::FloatLit, l), value(v), isFloat32(f32) {}
  double value;
  bool isFloat32;
};

struct BoolLit final : Expr {
  BoolLit(SourceLoc l, bool v) : Expr(ExprKind::BoolLit, l), value(v) {}
  bool value;
};

/// Where a named variable lives at runtime.
enum class VarHome { Unresolved, Slot, FrameMemory };

struct VarRef final : Expr {
  VarRef(SourceLoc l, std::string n) : Expr(ExprKind::VarRef, l), name(std::move(n)) {}
  std::string name;

  // --- sema annotations ---
  VarHome home = VarHome::Unresolved;
  int slot = -1;               ///< VarHome::Slot
  std::uint32_t frameOffset = 0;  ///< VarHome::FrameMemory
  bool isArray = false;        ///< decays to a pointer to its first element
  TypeId elementType = types::Invalid;  ///< when isArray
};

struct Unary final : Expr {
  Unary(SourceLoc l, UnaryOp o, ExprPtr e) : Expr(ExprKind::Unary, l), op(o), operand(std::move(e)) {}
  UnaryOp op;
  ExprPtr operand;
};

struct Binary final : Expr {
  Binary(SourceLoc l, BinaryOp o, ExprPtr a, ExprPtr b)
      : Expr(ExprKind::Binary, l), op(o), lhs(std::move(a)), rhs(std::move(b)) {}
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;

  // --- sema annotations ---
  TypeId operandType = types::Invalid;  ///< common type the operands convert to
};

struct Assign final : Expr {
  Assign(SourceLoc l, ExprPtr target, ExprPtr value)
      : Expr(ExprKind::Assign, l), lhs(std::move(target)), rhs(std::move(value)) {}
  ExprPtr lhs;
  ExprPtr rhs;
  bool isCompound = false;
  BinaryOp compoundOp = BinaryOp::Add;  ///< when isCompound
};

struct Ternary final : Expr {
  Ternary(SourceLoc l, ExprPtr c, ExprPtr t, ExprPtr f)
      : Expr(ExprKind::Ternary, l), cond(std::move(c)), thenExpr(std::move(t)), elseExpr(std::move(f)) {}
  ExprPtr cond;
  ExprPtr thenExpr;
  ExprPtr elseExpr;
};

struct Call final : Expr {
  Call(SourceLoc l, std::string callee) : Expr(ExprKind::Call, l), name(std::move(callee)) {}
  std::string name;
  std::vector<ExprPtr> args;

  // --- sema annotations ---
  int builtinId = -1;     ///< >= 0: call into the builtin table
  int functionIndex = -1; ///< >= 0: call into a user function
};

struct Index final : Expr {
  Index(SourceLoc l, ExprPtr b, ExprPtr i)
      : Expr(ExprKind::Index, l), base(std::move(b)), index(std::move(i)) {}
  ExprPtr base;
  ExprPtr index;
};

struct Member final : Expr {
  Member(SourceLoc l, ExprPtr b, std::string f, bool arrow)
      : Expr(ExprKind::Member, l), base(std::move(b)), field(std::move(f)), isArrow(arrow) {}
  ExprPtr base;
  std::string field;
  bool isArrow;

  // --- sema annotations ---
  std::uint32_t fieldOffset = 0;
};

struct Cast final : Expr {
  Cast(SourceLoc l, TypeSpec t, ExprPtr e)
      : Expr(ExprKind::Cast, l), target(std::move(t)), operand(std::move(e)) {}
  TypeSpec target;     ///< unused for implicit casts synthesized by sema
  ExprPtr operand;
  bool isImplicit = false;
};

struct SizeofType final : Expr {
  SizeofType(SourceLoc l, TypeSpec t) : Expr(ExprKind::SizeofType, l), target(std::move(t)) {}
  TypeSpec target;

  // --- sema annotations ---
  std::uint32_t size = 0;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind { Block, Decl, If, While, DoWhile, For, Break, Continue, Return, ExprStmt, Empty };

struct Stmt {
  explicit Stmt(StmtKind k, SourceLoc l) : kind(k), loc(l) {}
  virtual ~Stmt() = default;
  const StmtKind kind;
  SourceLoc loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct Block final : Stmt {
  explicit Block(SourceLoc l) : Stmt(StmtKind::Block, l) {}
  std::vector<StmtPtr> statements;
};

/// One declarator of a declaration statement (`float x = 1, a[4];`).
struct VarDecl {
  SourceLoc loc;
  std::string name;
  int arraySize = -1;  ///< >= 0: fixed-size local array
  ExprPtr init;        ///< may be null

  // --- sema annotations ---
  TypeId type = types::Invalid;  ///< element type for arrays
  VarHome home = VarHome::Unresolved;
  int slot = -1;
  std::uint32_t frameOffset = 0;
};

struct DeclStmt final : Stmt {
  explicit DeclStmt(SourceLoc l) : Stmt(StmtKind::Decl, l) {}
  TypeSpec spec;
  std::vector<VarDecl> vars;
};

struct IfStmt final : Stmt {
  explicit IfStmt(SourceLoc l) : Stmt(StmtKind::If, l) {}
  ExprPtr cond;
  StmtPtr thenStmt;
  StmtPtr elseStmt;  ///< may be null
};

struct WhileStmt final : Stmt {
  explicit WhileStmt(SourceLoc l) : Stmt(StmtKind::While, l) {}
  ExprPtr cond;
  StmtPtr body;
};

struct DoWhileStmt final : Stmt {
  explicit DoWhileStmt(SourceLoc l) : Stmt(StmtKind::DoWhile, l) {}
  StmtPtr body;
  ExprPtr cond;
};

struct ForStmt final : Stmt {
  explicit ForStmt(SourceLoc l) : Stmt(StmtKind::For, l) {}
  StmtPtr init;   ///< DeclStmt, ExprStmt or Empty
  ExprPtr cond;   ///< may be null (infinite)
  ExprPtr step;   ///< may be null
  StmtPtr body;
};

struct BreakStmt final : Stmt {
  explicit BreakStmt(SourceLoc l) : Stmt(StmtKind::Break, l) {}
};

struct ContinueStmt final : Stmt {
  explicit ContinueStmt(SourceLoc l) : Stmt(StmtKind::Continue, l) {}
};

struct ReturnStmt final : Stmt {
  explicit ReturnStmt(SourceLoc l) : Stmt(StmtKind::Return, l) {}
  ExprPtr value;  ///< may be null
};

struct ExprStmt final : Stmt {
  explicit ExprStmt(SourceLoc l) : Stmt(StmtKind::ExprStmt, l) {}
  ExprPtr expr;
};

struct EmptyStmt final : Stmt {
  explicit EmptyStmt(SourceLoc l) : Stmt(StmtKind::Empty, l) {}
};

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

struct ParamDecl {
  SourceLoc loc;
  TypeSpec spec;
  std::string name;

  // --- sema annotations ---
  TypeId type = types::Invalid;
  int slot = -1;
};

struct FunctionDecl {
  SourceLoc loc;
  bool isKernel = false;
  TypeSpec retSpec;
  std::string name;
  std::vector<ParamDecl> params;
  std::unique_ptr<Block> body;

  // --- sema annotations ---
  TypeId returnType = types::Invalid;
  int functionIndex = -1;
  int numSlots = 0;               ///< scalar locals + params
  std::uint32_t frameBytes = 0;   ///< arrays, structs, addressed locals
};

struct StructDeclField {
  SourceLoc loc;
  TypeSpec spec;
  std::string name;
};

struct StructDecl {
  SourceLoc loc;
  std::string name;
  std::vector<StructDeclField> fields;
};

/// Top-level declarations in source order (struct layout requires
/// declaration-before-use, as in C).
struct Program {
  struct TopLevel {
    std::unique_ptr<StructDecl> structDecl;      // exactly one of the two set
    std::unique_ptr<FunctionDecl> functionDecl;
  };
  std::vector<TopLevel> decls;
};

/// Checked downcast for expression nodes.
template <typename T>
const T& exprAs(const Expr& e) {
  const T* p = dynamic_cast<const T*>(&e);
  SKELCL_CHECK(p != nullptr, "AST node kind mismatch");
  return *p;
}

}  // namespace skelcl::kc
