#include "kernelc/parser.hpp"

#include <utility>

#include "kernelc/diagnostics.hpp"

namespace skelcl::kc {

Parser::Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {
  SKELCL_CHECK(!tokens_.empty() && tokens_.back().kind == Tok::Eof,
               "token stream must end with Eof");
}

const Token& Parser::peek(int ahead) const {
  const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::match(Tok kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

const Token& Parser::expect(Tok kind, const std::string& context) {
  if (!check(kind)) {
    fail(std::string("expected ") + tokName(kind) + " " + context + ", found " +
         tokName(peek().kind));
  }
  return advance();
}

void Parser::fail(const std::string& message) const {
  throw CompileError(peek().loc, message);
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

bool Parser::startsType(int ahead) const {
  switch (peek(ahead).kind) {
    case Tok::KwVoid:
    case Tok::KwBool:
    case Tok::KwInt:
    case Tok::KwUint:
    case Tok::KwFloat:
    case Tok::KwDouble:
    case Tok::KwLong:
    case Tok::KwUlong:
    case Tok::KwStruct:
    case Tok::KwGlobal:
    case Tok::KwLocal:
    case Tok::KwConst:
      return true;
    case Tok::Identifier:
      return structNames_.count(peek(ahead).text) > 0;
    default:
      return false;
  }
}

TypeSpec Parser::parseTypeSpec() {
  TypeSpec spec;
  spec.loc = peek().loc;

  // Leading qualifiers.
  for (;;) {
    if (match(Tok::KwGlobal)) {
      spec.isGlobal = true;
    } else if (match(Tok::KwConst) || match(Tok::KwLocal)) {
      // accepted and ignored
    } else {
      break;
    }
  }

  switch (peek().kind) {
    case Tok::KwVoid: advance(); spec.scalar = Scalar::Void; break;
    case Tok::KwBool: advance(); spec.scalar = Scalar::Bool; break;
    case Tok::KwInt: advance(); spec.scalar = Scalar::Int; break;
    case Tok::KwUint: advance(); spec.scalar = Scalar::Uint; break;
    case Tok::KwFloat: advance(); spec.scalar = Scalar::Float; break;
    case Tok::KwDouble: advance(); spec.scalar = Scalar::Double; break;
    case Tok::KwLong: advance(); spec.scalar = Scalar::Long; break;
    case Tok::KwUlong: advance(); spec.scalar = Scalar::Ulong; break;
    case Tok::KwStruct: {
      advance();
      const Token& name = expect(Tok::Identifier, "after 'struct'");
      spec.isStruct = true;
      spec.structName = name.text;
      break;
    }
    case Tok::Identifier:
      if (structNames_.count(peek().text) > 0) {
        spec.isStruct = true;
        spec.structName = advance().text;
        break;
      }
      [[fallthrough]];
    default:
      fail("expected a type name, found " + std::string(tokName(peek().kind)));
  }

  // Trailing qualifiers and pointer declarators.
  for (;;) {
    if (match(Tok::KwConst) || match(Tok::KwGlobal) || match(Tok::KwLocal)) {
      continue;  // `float const`, `float __global *` etc.
    }
    if (match(Tok::Star)) {
      ++spec.pointerDepth;
      continue;
    }
    break;
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

Program Parser::run() {
  Program program;
  while (!check(Tok::Eof)) {
    program.decls.push_back(parseTopLevel());
  }
  return program;
}

Program::TopLevel Parser::parseTopLevel() {
  Program::TopLevel decl;

  // typedef struct [Tag]? { ... } Name ;
  if (check(Tok::KwTypedef)) {
    const SourceLoc loc = peek().loc;
    advance();
    expect(Tok::KwStruct, "after 'typedef'");
    std::string tag;
    if (check(Tok::Identifier)) tag = advance().text;
    auto structDecl = parseStructBody(loc, tag);
    const Token& name = expect(Tok::Identifier, "as typedef name");
    structDecl->name = name.text;  // the typedef name is the canonical name
    expect(Tok::Semicolon, "after typedef");
    structNames_.insert(structDecl->name);
    if (!tag.empty()) structNames_.insert(tag);
    decl.structDecl = std::move(structDecl);
    return decl;
  }

  // struct Name { ... } ;
  if (check(Tok::KwStruct) && peek(1).kind == Tok::Identifier && peek(2).kind == Tok::LBrace) {
    const SourceLoc loc = peek().loc;
    advance();
    std::string name = advance().text;
    auto structDecl = parseStructBody(loc, std::move(name));
    expect(Tok::Semicolon, "after struct declaration");
    structNames_.insert(structDecl->name);
    decl.structDecl = std::move(structDecl);
    return decl;
  }

  // [__kernel] type name ( params ) { body }
  const bool isKernel = match(Tok::KwKernel);
  if (!startsType()) fail("expected a declaration");
  TypeSpec retSpec = parseTypeSpec();
  decl.functionDecl = parseFunction(isKernel, std::move(retSpec));
  return decl;
}

std::unique_ptr<StructDecl> Parser::parseStructBody(SourceLoc loc, std::string name) {
  auto decl = std::make_unique<StructDecl>();
  decl->loc = loc;
  decl->name = std::move(name);
  expect(Tok::LBrace, "to open struct body");
  while (!check(Tok::RBrace)) {
    StructDeclField field;
    field.loc = peek().loc;
    field.spec = parseTypeSpec();
    field.name = expect(Tok::Identifier, "as struct member name").text;
    expect(Tok::Semicolon, "after struct member");
    decl->fields.push_back(std::move(field));
    // allow `float x; float y;` only — no comma-separated members (keeps the
    // grammar small; all paper kernels use one member per line anyway)
  }
  expect(Tok::RBrace, "to close struct body");
  return decl;
}

std::unique_ptr<FunctionDecl> Parser::parseFunction(bool isKernel, TypeSpec retSpec) {
  auto fn = std::make_unique<FunctionDecl>();
  fn->loc = retSpec.loc;
  fn->isKernel = isKernel;
  fn->retSpec = std::move(retSpec);
  fn->name = expect(Tok::Identifier, "as function name").text;
  expect(Tok::LParen, "to open parameter list");
  if (!check(Tok::RParen)) {
    do {
      if (check(Tok::KwVoid) && peek(1).kind == Tok::RParen) {
        advance();  // `f(void)`
        break;
      }
      ParamDecl param;
      param.loc = peek().loc;
      param.spec = parseTypeSpec();
      param.name = expect(Tok::Identifier, "as parameter name").text;
      fn->params.push_back(std::move(param));
    } while (match(Tok::Comma));
  }
  expect(Tok::RParen, "to close parameter list");
  fn->body = parseBlock();
  return fn;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

std::unique_ptr<Block> Parser::parseBlock() {
  const SourceLoc loc = peek().loc;
  expect(Tok::LBrace, "to open block");
  auto block = std::make_unique<Block>(loc);
  while (!check(Tok::RBrace)) {
    if (check(Tok::Eof)) fail("unterminated block");
    block->statements.push_back(parseStatement());
  }
  expect(Tok::RBrace, "to close block");
  return block;
}

StmtPtr Parser::parseDeclStatement() {
  auto decl = std::make_unique<DeclStmt>(peek().loc);
  decl->spec = parseTypeSpec();
  do {
    VarDecl var;
    var.loc = peek().loc;
    var.name = expect(Tok::Identifier, "as variable name").text;
    if (match(Tok::LBracket)) {
      const Token& size = expect(Tok::IntLiteral, "as array size");
      var.arraySize = static_cast<int>(size.intValue);
      expect(Tok::RBracket, "after array size");
    }
    if (match(Tok::Assign)) {
      var.init = parseAssignment();
    }
    decl->vars.push_back(std::move(var));
  } while (match(Tok::Comma));
  expect(Tok::Semicolon, "after declaration");
  return decl;
}

StmtPtr Parser::parseStatement() {
  const SourceLoc loc = peek().loc;
  switch (peek().kind) {
    case Tok::LBrace:
      return parseBlock();
    case Tok::Semicolon:
      advance();
      return std::make_unique<EmptyStmt>(loc);
    case Tok::KwIf: {
      advance();
      auto stmt = std::make_unique<IfStmt>(loc);
      expect(Tok::LParen, "after 'if'");
      stmt->cond = parseExpression();
      expect(Tok::RParen, "after if condition");
      stmt->thenStmt = parseStatement();
      if (match(Tok::KwElse)) stmt->elseStmt = parseStatement();
      return stmt;
    }
    case Tok::KwWhile: {
      advance();
      auto stmt = std::make_unique<WhileStmt>(loc);
      expect(Tok::LParen, "after 'while'");
      stmt->cond = parseExpression();
      expect(Tok::RParen, "after while condition");
      stmt->body = parseStatement();
      return stmt;
    }
    case Tok::KwDo: {
      advance();
      auto stmt = std::make_unique<DoWhileStmt>(loc);
      stmt->body = parseStatement();
      expect(Tok::KwWhile, "after do body");
      expect(Tok::LParen, "after 'while'");
      stmt->cond = parseExpression();
      expect(Tok::RParen, "after do-while condition");
      expect(Tok::Semicolon, "after do-while");
      return stmt;
    }
    case Tok::KwFor: {
      advance();
      auto stmt = std::make_unique<ForStmt>(loc);
      expect(Tok::LParen, "after 'for'");
      if (check(Tok::Semicolon)) {
        stmt->init = std::make_unique<EmptyStmt>(peek().loc);
        advance();
      } else if (startsType()) {
        stmt->init = parseDeclStatement();
      } else {
        auto init = std::make_unique<ExprStmt>(peek().loc);
        init->expr = parseExpression();
        expect(Tok::Semicolon, "after for-init");
        stmt->init = std::move(init);
      }
      if (!check(Tok::Semicolon)) stmt->cond = parseExpression();
      expect(Tok::Semicolon, "after for-condition");
      if (!check(Tok::RParen)) stmt->step = parseExpression();
      expect(Tok::RParen, "after for-step");
      stmt->body = parseStatement();
      return stmt;
    }
    case Tok::KwBreak:
      advance();
      expect(Tok::Semicolon, "after 'break'");
      return std::make_unique<BreakStmt>(loc);
    case Tok::KwContinue:
      advance();
      expect(Tok::Semicolon, "after 'continue'");
      return std::make_unique<ContinueStmt>(loc);
    case Tok::KwReturn: {
      advance();
      auto stmt = std::make_unique<ReturnStmt>(loc);
      if (!check(Tok::Semicolon)) stmt->value = parseExpression();
      expect(Tok::Semicolon, "after return");
      return stmt;
    }
    default:
      if (startsType()) return parseDeclStatement();
      {
        auto stmt = std::make_unique<ExprStmt>(loc);
        stmt->expr = parseExpression();
        expect(Tok::Semicolon, "after expression");
        return stmt;
      }
  }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parseExpressionOnly() {
  ExprPtr e = parseExpression();
  if (!check(Tok::Eof)) fail("trailing tokens after expression");
  return e;
}

ExprPtr Parser::parseAssignment() {
  ExprPtr lhs = parseTernary();
  const SourceLoc loc = peek().loc;

  auto makeCompound = [&](BinaryOp op) -> ExprPtr {
    advance();
    auto node = std::make_unique<Assign>(loc, std::move(lhs), parseAssignment());
    node->isCompound = true;
    node->compoundOp = op;
    return node;
  };

  switch (peek().kind) {
    case Tok::Assign: {
      advance();
      return std::make_unique<Assign>(loc, std::move(lhs), parseAssignment());
    }
    case Tok::PlusAssign: return makeCompound(BinaryOp::Add);
    case Tok::MinusAssign: return makeCompound(BinaryOp::Sub);
    case Tok::StarAssign: return makeCompound(BinaryOp::Mul);
    case Tok::SlashAssign: return makeCompound(BinaryOp::Div);
    case Tok::PercentAssign: return makeCompound(BinaryOp::Rem);
    case Tok::AmpAssign: return makeCompound(BinaryOp::BitAnd);
    case Tok::PipeAssign: return makeCompound(BinaryOp::BitOr);
    case Tok::CaretAssign: return makeCompound(BinaryOp::BitXor);
    case Tok::ShlAssign: return makeCompound(BinaryOp::Shl);
    case Tok::ShrAssign: return makeCompound(BinaryOp::Shr);
    default:
      return lhs;
  }
}

ExprPtr Parser::parseTernary() {
  ExprPtr cond = parseBinary(0);
  if (!check(Tok::Question)) return cond;
  const SourceLoc loc = advance().loc;
  ExprPtr thenExpr = parseAssignment();
  expect(Tok::Colon, "in conditional expression");
  ExprPtr elseExpr = parseAssignment();
  return std::make_unique<Ternary>(loc, std::move(cond), std::move(thenExpr),
                                   std::move(elseExpr));
}

namespace {
struct BinOpInfo {
  BinaryOp op;
  int precedence;  // higher binds tighter
};

// C precedence levels, from || (lowest, 1) to * / % (highest, 10).
bool binOpInfo(Tok t, BinOpInfo* out) {
  switch (t) {
    case Tok::PipePipe: *out = {BinaryOp::LOr, 1}; return true;
    case Tok::AmpAmp: *out = {BinaryOp::LAnd, 2}; return true;
    case Tok::Pipe: *out = {BinaryOp::BitOr, 3}; return true;
    case Tok::Caret: *out = {BinaryOp::BitXor, 4}; return true;
    case Tok::Amp: *out = {BinaryOp::BitAnd, 5}; return true;
    case Tok::EqEq: *out = {BinaryOp::Eq, 6}; return true;
    case Tok::NotEq: *out = {BinaryOp::Ne, 6}; return true;
    case Tok::Less: *out = {BinaryOp::Lt, 7}; return true;
    case Tok::LessEq: *out = {BinaryOp::Le, 7}; return true;
    case Tok::Greater: *out = {BinaryOp::Gt, 7}; return true;
    case Tok::GreaterEq: *out = {BinaryOp::Ge, 7}; return true;
    case Tok::Shl: *out = {BinaryOp::Shl, 8}; return true;
    case Tok::Shr: *out = {BinaryOp::Shr, 8}; return true;
    case Tok::Plus: *out = {BinaryOp::Add, 9}; return true;
    case Tok::Minus: *out = {BinaryOp::Sub, 9}; return true;
    case Tok::Star: *out = {BinaryOp::Mul, 10}; return true;
    case Tok::Slash: *out = {BinaryOp::Div, 10}; return true;
    case Tok::Percent: *out = {BinaryOp::Rem, 10}; return true;
    default: return false;
  }
}
}  // namespace

ExprPtr Parser::parseBinary(int minPrecedence) {
  ExprPtr lhs = parseUnary();
  for (;;) {
    BinOpInfo info;
    if (!binOpInfo(peek().kind, &info) || info.precedence < minPrecedence) return lhs;
    const SourceLoc loc = advance().loc;
    ExprPtr rhs = parseBinary(info.precedence + 1);  // all ops left-associative
    lhs = std::make_unique<Binary>(loc, info.op, std::move(lhs), std::move(rhs));
  }
}

ExprPtr Parser::parseUnary() {
  const SourceLoc loc = peek().loc;
  auto prefix = [&](UnaryOp op) -> ExprPtr {
    advance();
    return std::make_unique<Unary>(loc, op, parseUnary());
  };
  switch (peek().kind) {
    case Tok::Plus: return prefix(UnaryOp::Plus);
    case Tok::Minus: return prefix(UnaryOp::Minus);
    case Tok::Bang: return prefix(UnaryOp::Not);
    case Tok::Tilde: return prefix(UnaryOp::BitNot);
    case Tok::Star: return prefix(UnaryOp::Deref);
    case Tok::Amp: return prefix(UnaryOp::AddrOf);
    case Tok::PlusPlus: return prefix(UnaryOp::PreInc);
    case Tok::MinusMinus: return prefix(UnaryOp::PreDec);
    case Tok::LParen:
      // cast or parenthesized expression?
      if (startsType(1)) {
        advance();
        TypeSpec target = parseTypeSpec();
        expect(Tok::RParen, "after cast type");
        return std::make_unique<Cast>(loc, std::move(target), parseUnary());
      }
      return parsePostfix();
    default:
      return parsePostfix();
  }
}

ExprPtr Parser::parsePostfix() {
  ExprPtr expr = parsePrimary();
  for (;;) {
    const SourceLoc loc = peek().loc;
    if (match(Tok::LBracket)) {
      ExprPtr index = parseExpression();
      expect(Tok::RBracket, "after index expression");
      expr = std::make_unique<Index>(loc, std::move(expr), std::move(index));
    } else if (match(Tok::Dot)) {
      const Token& field = expect(Tok::Identifier, "as member name");
      expr = std::make_unique<Member>(loc, std::move(expr), field.text, /*arrow=*/false);
    } else if (match(Tok::Arrow)) {
      const Token& field = expect(Tok::Identifier, "as member name");
      expr = std::make_unique<Member>(loc, std::move(expr), field.text, /*arrow=*/true);
    } else if (match(Tok::PlusPlus)) {
      expr = std::make_unique<Unary>(loc, UnaryOp::PostInc, std::move(expr));
    } else if (match(Tok::MinusMinus)) {
      expr = std::make_unique<Unary>(loc, UnaryOp::PostDec, std::move(expr));
    } else {
      return expr;
    }
  }
}

ExprPtr Parser::parsePrimary() {
  const Token& t = peek();
  switch (t.kind) {
    case Tok::IntLiteral: {
      advance();
      const bool isUnsigned = t.text.find('u') != std::string::npos ||
                              t.text.find('U') != std::string::npos;
      const bool isLong = t.text.find('l') != std::string::npos ||
                          t.text.find('L') != std::string::npos;
      return std::make_unique<IntLit>(t.loc, t.intValue, isUnsigned, isLong);
    }
    case Tok::FloatLiteral:
      advance();
      return std::make_unique<FloatLit>(t.loc, t.floatValue, t.isFloat32);
    case Tok::KwTrue:
      advance();
      return std::make_unique<BoolLit>(t.loc, true);
    case Tok::KwFalse:
      advance();
      return std::make_unique<BoolLit>(t.loc, false);
    case Tok::KwSizeof: {
      advance();
      expect(Tok::LParen, "after 'sizeof'");
      TypeSpec target = parseTypeSpec();
      expect(Tok::RParen, "after sizeof type");
      return std::make_unique<SizeofType>(t.loc, std::move(target));
    }
    case Tok::Identifier: {
      advance();
      if (check(Tok::LParen)) {
        auto call = std::make_unique<Call>(t.loc, t.text);
        advance();
        if (!check(Tok::RParen)) {
          do {
            call->args.push_back(parseAssignment());
          } while (match(Tok::Comma));
        }
        expect(Tok::RParen, "to close call arguments");
        return call;
      }
      return std::make_unique<VarRef>(t.loc, t.text);
    }
    case Tok::LParen: {
      advance();
      ExprPtr inner = parseExpression();
      expect(Tok::RParen, "to close parenthesized expression");
      return inner;
    }
    default:
      fail("expected an expression, found " + std::string(tokName(t.kind)));
  }
}

}  // namespace skelcl::kc
