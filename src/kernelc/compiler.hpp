// AST -> stack bytecode.  Requires a tree fully annotated by Sema.
#pragma once

#include <vector>

#include "kernelc/ast.hpp"
#include "kernelc/bytecode.hpp"
#include "kernelc/types.hpp"

namespace skelcl::kc {

class Compiler {
 public:
  Compiler(const TypeTable& types, const std::vector<FunctionDecl*>& functions)
      : types_(types), functions_(functions) {}

  /// Compile every function; result is indexed by FunctionDecl::functionIndex.
  std::vector<FunctionCode> run();

 private:
  struct LoopContext {
    std::vector<std::size_t> breakJumps;     // Jmp instructions to patch to loop end
    std::vector<std::size_t> continueJumps;  // Jmp instructions to patch to loop step
  };

  FunctionCode compileFunction(const FunctionDecl& decl);

  // emission helpers
  std::size_t emit(Op op, std::int32_t a = 0, std::int32_t b = 0, std::int64_t imm = 0,
                   double fimm = 0.0);
  std::size_t emitJumpPlaceholder(Op op);
  void patchJump(std::size_t insnIndex);  // patch to current position
  int scratchSlot();

  // statements
  void genStmt(const Stmt& stmt);
  void genBlock(const Block& block);
  void genDecl(const DeclStmt& decl);

  // expressions
  void genValue(const Expr& expr);       ///< push the (scalar/pointer) value
  void genAddr(const Expr& expr);        ///< push a pointer to the lvalue
  void genCond(const Expr& expr);        ///< push int 0/1 truth value
  void genAssign(const Assign& assign);
  void genUnary(const Unary& unary);
  void genIncDec(const Unary& unary);
  void genBinaryOp(BinaryOp op, TypeId operandType);  ///< operands on stack
  void genConversion(TypeId from, TypeId to);
  void genLoad(TypeId type);    ///< pop ptr, push value of `type`
  void genStore(TypeId type);   ///< pop value, pop ptr

  const TypeTable& types_;
  const std::vector<FunctionDecl*>& functions_;

  // per-function state
  FunctionCode* current_ = nullptr;
  int scratch_ = -1;
  std::vector<LoopContext> loops_;
};

}  // namespace skelcl::kc
