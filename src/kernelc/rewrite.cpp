#include "kernelc/rewrite.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#include "base/error.hpp"
#include "kernelc/builtins.hpp"

namespace skelcl::kc {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool isBranch(Op op) {
  return op == Op::Jmp || op == Op::Jz || op == Op::Jnz || op == Op::CmpJz ||
         op == Op::CmpJnz;
}

std::int32_t t32(std::int64_t v) { return static_cast<std::int32_t>(v); }

bool fitsI32(std::int64_t v) {
  return v >= std::numeric_limits<std::int32_t>::min() &&
         v <= std::numeric_limits<std::int32_t>::max();
}

Insn make(Op op, std::int32_t a, std::int32_t b, std::int64_t imm, std::uint8_t weight) {
  Insn insn;
  insn.op = op;
  insn.a = a;
  insn.b = b;
  insn.imm = imm;
  insn.weight = weight;
  return insn;
}

/// Slot written by this instruction, or -1.  Covers the superinstructions an
/// earlier rewrite iteration may have inserted (IncSlotI); the peephole pass
/// has not run yet, so the rest of the stream is naive.
int writtenSlot(const Insn& insn) {
  switch (insn.op) {
    case Op::StoreSlot:
    case Op::IncSlotI:
    case Op::TeeStoreI32:
    case Op::TeeStoreI64:
    case Op::TeeStoreF32:
    case Op::TeeStoreF64:
      return insn.a;
    default:
      return -1;
  }
}

/// Pure, never-faulting operations the hoister may duplicate into a
/// preheader.  Excludes integer division (faults on zero / INT_MIN edge),
/// all memory access, calls into other functions, and builtins with
/// observable side effects or pointer parameters.  Reports the stack effect.
bool pureOp(const Insn& insn, int& pops, int& pushes) {
  switch (insn.op) {
    case Op::PushI:
    case Op::PushF:
    case Op::LoadSlot:
      pops = 0;
      pushes = 1;
      return true;
    case Op::Dup:
      pops = 1;
      pushes = 2;
      return true;
    case Op::AddI: case Op::SubI: case Op::MulI:
    case Op::AndI: case Op::OrI: case Op::XorI:
    case Op::ShlI: case Op::ShrI: case Op::ShrU:
    case Op::AddL: case Op::SubL: case Op::MulL:
    case Op::AndL: case Op::OrL: case Op::XorL:
    case Op::ShlL: case Op::ShrL: case Op::ShrUL:
    case Op::AddF32: case Op::SubF32: case Op::MulF32: case Op::DivF32:
    case Op::AddF64: case Op::SubF64: case Op::MulF64: case Op::DivF64:
    case Op::EqI: case Op::NeI: case Op::LtI: case Op::LeI: case Op::GtI: case Op::GeI:
    case Op::LtU: case Op::LeU: case Op::GtU: case Op::GeU:
    case Op::LtUL: case Op::LeUL: case Op::GtUL: case Op::GeUL:
    case Op::EqF: case Op::NeF: case Op::LtF: case Op::LeF: case Op::GtF: case Op::GeF:
    case Op::EqP: case Op::NeP:
    case Op::PtrAdd:  // pointer arithmetic wraps; faults happen at the access
      pops = 2;
      pushes = 1;
      return true;
    case Op::NegI: case Op::NotI: case Op::NegL: case Op::NotL:
    case Op::NegF32: case Op::NegF64:
    case Op::LNot: case Op::BoolNorm:
    case Op::I2F32: case Op::I2F64: case Op::U2F32: case Op::U2F64:
    case Op::UL2F32: case Op::UL2F64:
    case Op::F2I: case Op::F2U: case Op::F2L: case Op::F2UL:
    case Op::F64toF32: case Op::I2U: case Op::U2I:
    case Op::PtrAddImm:
      pops = 1;
      pushes = 1;
      return true;
    case Op::CallBuiltin: {
      const auto& table = builtinTable();
      if (insn.a < 0 || static_cast<std::size_t>(insn.a) >= table.size()) return false;
      const BuiltinDef& def = table[static_cast<std::size_t>(insn.a)];
      if (std::strcmp(def.name, "barrier") == 0) return false;
      if (std::strncmp(def.name, "atomic_", 7) == 0) return false;
      for (BType p : def.params) {
        if (p == BType::PtrInt || p == BType::PtrUint || p == BType::PtrFloat ||
            p == BType::PtrDouble) {
          return false;
        }
      }
      pops = insn.b;
      pushes = def.ret == BType::Void ? 0 : 1;
      return true;
    }
    default:
      return false;
  }
}

std::vector<bool> branchTargets(const std::vector<Insn>& code) {
  std::vector<bool> target(code.size() + 1, false);
  for (const Insn& insn : code) {
    if (isBranch(insn.op)) {
      SKELCL_CHECK(insn.a >= 0 && static_cast<std::size_t>(insn.a) <= code.size(),
                   "branch target out of range before rewrite");
      target[static_cast<std::size_t>(insn.a)] = true;
    }
  }
  return target;
}

/// A natural loop, identified by a backward branch: body is [head, back].
struct Loop {
  std::size_t head;
  std::size_t back;
};

/// Innermost well-formed natural loops.  A loop qualifies when no other
/// backward branch nests inside it and no branch from outside its body
/// targets the body's interior (so the rewrite may treat [head, back] as a
/// single-entry region with `head` the only way in).
std::vector<Loop> innermostLoops(const std::vector<Insn>& code) {
  std::vector<Loop> all;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (isBranch(code[i].op) && static_cast<std::size_t>(code[i].a) <= i) {
      all.push_back({static_cast<std::size_t>(code[i].a), i});
    }
  }
  std::vector<Loop> out;
  for (const Loop& loop : all) {
    bool innermost = true;
    for (const Loop& other : all) {
      if (other.head == loop.head && other.back == loop.back) continue;
      if (other.head >= loop.head && other.back <= loop.back) {
        innermost = false;
        break;
      }
    }
    if (!innermost) continue;
    bool wellFormed = true;
    for (std::size_t i = 0; i < code.size() && wellFormed; ++i) {
      if (!isBranch(code[i].op)) continue;
      const auto t = static_cast<std::size_t>(code[i].a);
      if (t > loop.head && t <= loop.back && (i < loop.head || i > loop.back)) {
        wellFormed = false;
      }
    }
    if (wellFormed) out.push_back(loop);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Edit engine: every rule is expressed as insert/replace edits against the
// original instruction stream, applied in one rebuild with branch-target
// remapping.  Branches to a Preheader edit's position are origin-dependent:
// jumps from inside [loopLo, loopHi] skip the inserted block (the hoisted
// values are still valid), everything else — including fall-through — runs
// it, so re-entering the loop recomputes hoisted state.
// ---------------------------------------------------------------------------

struct Edit {
  enum Kind { Preheader = 0, Append = 1, Replace = 2 };
  std::size_t pos;           ///< original index the edit anchors at
  Kind kind;
  std::size_t remove = 0;    ///< original instructions consumed (Replace only)
  std::vector<Insn> add;
};

void applyEdits(FunctionCode& fn, std::vector<Edit> edits, std::size_t preheaderPos,
                std::size_t loopLo, std::size_t loopHi) {
  const std::vector<Insn>& code = fn.code;
  const std::size_t n = code.size();
  std::sort(edits.begin(), edits.end(), [](const Edit& x, const Edit& y) {
    return x.pos != y.pos ? x.pos < y.pos : x.kind < y.kind;
  });

  // Pass 1: new index of every original position.  `before` is where an
  // arbitrary branch to the position lands; `after` is where in-loop
  // branches land when the position hosts a Preheader edit.  -1 marks the
  // interior of a replaced window (must never be a branch target).
  std::vector<std::int64_t> before(n + 1, -1);
  std::vector<std::int64_t> after(n + 1, -1);
  {
    std::size_t cur = 0;
    std::size_t e = 0;
    std::size_t i = 0;
    while (i <= n) {
      std::size_t outside = cur;
      std::size_t inside = kNpos;
      bool replaced = false;
      std::size_t removed = 0;
      while (e < edits.size() && edits[e].pos == i) {
        const Edit& ed = edits[e];
        if (ed.kind == Edit::Preheader) {
          cur += ed.add.size();
          inside = cur;
        } else if (ed.kind == Edit::Append) {
          cur += ed.add.size();
          outside = cur;  // all branches (and nobody else) skip the block
          if (inside != kNpos) inside = cur;
        } else {
          replaced = true;
          removed = ed.remove;
          cur += ed.add.size();
        }
        ++e;
      }
      before[i] = static_cast<std::int64_t>(outside);
      after[i] = static_cast<std::int64_t>(inside == kNpos ? outside : inside);
      if (i == n) break;
      if (replaced) {
        i += removed;  // interior positions keep -1
      } else {
        cur += 1;
        i += 1;
      }
    }
  }

  // Pass 2: remap branch targets on a scratch copy (the branch's *original*
  // index decides the in-loop test for preheader targets).
  std::vector<Insn> src = code;
  for (std::size_t i = 0; i < n; ++i) {
    Insn& insn = src[i];
    if (!isBranch(insn.op)) continue;
    const auto t = static_cast<std::size_t>(insn.a);
    const bool fromLoop = i >= loopLo && i <= loopHi;
    const std::int64_t mapped =
        (t == preheaderPos && fromLoop) ? after[t] : before[t];
    SKELCL_CHECK(mapped >= 0, "rewrite: branch target landed inside a replaced window");
    insn.a = static_cast<std::int32_t>(mapped);
  }

  // Pass 3: emit.
  std::vector<Insn> out;
  out.reserve(n + 8);
  std::size_t e = 0;
  std::size_t i = 0;
  while (i <= n) {
    bool replaced = false;
    std::size_t removed = 0;
    while (e < edits.size() && edits[e].pos == i) {
      for (const Insn& add : edits[e].add) out.push_back(add);
      if (edits[e].kind == Edit::Replace) {
        replaced = true;
        removed = edits[e].remove;
      }
      ++e;
    }
    if (i == n) break;
    if (replaced) {
      i += removed;
    } else {
      out.push_back(src[i]);
      i += 1;
    }
  }
  fn.code = std::move(out);
}

// ---------------------------------------------------------------------------
// R3: pointer-bias fusion.  p[i +/- k] compiles to
//     LoadSlot p; LoadSlot i; PushI k; AddI|SubI; PtrAdd sz; Load<T>
// Precompute p' = p +/- k*sz once at function entry (PtrAddImm wraps mod
// 2^32 and never faults, so this is exact and safe even when p' is
// transiently out of bounds) and rewrite the window to
//     LoadSlot p'; LoadSlot i; PtrAdd sz; Load<T>
// which the peephole pass fuses into a single LoadSlotElem.  LoadSlot p'
// carries the three removed instructions' weight.
// ---------------------------------------------------------------------------

bool isTypedLoad(Op op) {
  return op == Op::LoadI32 || op == Op::LoadU32 || op == Op::LoadF32 ||
         op == Op::LoadF64 || op == Op::LoadI64;
}

bool fusePointerBias(FunctionCode& fn) {
  const std::vector<Insn>& code = fn.code;
  const std::size_t n = code.size();
  if (n < 6) return false;
  const std::vector<bool> target = branchTargets(code);

  std::vector<bool> written(static_cast<std::size_t>(fn.numSlots), false);
  for (const Insn& insn : code) {
    const int s = writtenSlot(insn);
    if (s >= 0) written[static_cast<std::size_t>(s)] = true;
  }

  for (std::size_t m = 0; m + 6 <= n; ++m) {
    if (code[m].op != Op::LoadSlot || code[m + 1].op != Op::LoadSlot ||
        code[m + 2].op != Op::PushI ||
        (code[m + 3].op != Op::AddI && code[m + 3].op != Op::SubI) ||
        code[m + 4].op != Op::PtrAdd || !isTypedLoad(code[m + 5].op)) {
      continue;
    }
    const std::int32_t p = code[m].a;
    if (written[static_cast<std::size_t>(p)]) continue;
    const std::int64_t k = code[m + 2].imm;
    const std::int64_t bias = code[m + 3].op == Op::AddI ? k : -k;
    if (!fitsI32(k) || !fitsI32(bias)) continue;
    bool clear = true;
    int wsum = 0;
    for (std::size_t j = m; j < m + 6; ++j) {
      if (j > m && target[j]) clear = false;
      wsum += code[j].weight;
    }
    // Replacement weights: LoadSlot p' absorbs LoadSlot p + PushI + AddI.
    const int carried = code[m].weight + code[m + 2].weight + code[m + 3].weight;
    if (!clear || wsum > 255 || carried > 255) continue;

    const std::int32_t pBiased = fn.numSlots++;
    Edit entry;
    entry.pos = 0;
    entry.kind = Edit::Preheader;  // loopLo/hi = npos: every branch to 0 reruns
    entry.add.push_back(make(Op::LoadSlot, p, 0, 0, 0));
    entry.add.push_back(make(Op::PtrAddImm, code[m + 4].a, 0, bias, 0));
    entry.add.push_back(make(Op::StoreSlot, pBiased, 0, 0, 0));

    Edit rep;
    rep.pos = m;
    rep.kind = Edit::Replace;
    rep.remove = 6;
    rep.add.push_back(make(Op::LoadSlot, pBiased, 0, 0,
                           static_cast<std::uint8_t>(carried)));
    rep.add.push_back(code[m + 1]);  // LoadSlot i (weight preserved)
    rep.add.push_back(code[m + 4]);  // PtrAdd sz
    rep.add.push_back(code[m + 5]);  // Load<T>

    applyEdits(fn, {entry, rep}, 0, kNpos, kNpos);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// R2: strength reduction.  Inside an innermost loop whose slot i has exactly
// one write — a canonical increment i += d — every multiply window
//     LoadSlot i; PushI C; MulI     (or PushI C; LoadSlot i; MulI)
// becomes LoadSlot j of a fresh slot j that tracks t32(i*C): initialized in
// the preheader by the same three operations (weight 0) and bumped by
// IncSlotI j, t32(d*C) right after the increment (weight 0).  Exact because
// (i+d)*C == i*C + d*C mod 2^32.  The LoadSlot j replacement carries the
// window's summed weight.
// ---------------------------------------------------------------------------

struct IncWindow {
  std::size_t begin = kNpos;
  std::size_t end = kNpos;  ///< one past the window
  std::int64_t delta = 0;
};

/// Match the canonical increment statement writing `slot` at position q
/// (the naive post-inc/pre-inc/bare-assign shapes the peephole pass also
/// recognizes, plus an IncSlotI from an earlier rewrite iteration).
bool matchIncrement(const std::vector<Insn>& code, std::size_t q, std::int32_t slot,
                    IncWindow& out) {
  const auto at = [&](std::size_t i) { return code[i]; };
  if (code[q].op == Op::IncSlotI) {
    out = {q, q + 1, code[q].imm};
    return true;
  }
  if (code[q].op != Op::StoreSlot) return false;
  // post-inc: LoadSlot s; Dup; PushI d; AddI; StoreSlot s; Drop
  if (q >= 4 && q + 2 <= code.size() && at(q - 4).op == Op::LoadSlot &&
      at(q - 4).a == slot && at(q - 3).op == Op::Dup && at(q - 2).op == Op::PushI &&
      at(q - 1).op == Op::AddI && at(q + 1).op == Op::Drop) {
    out = {q - 4, q + 2, at(q - 2).imm};
    return true;
  }
  // pre-inc: LoadSlot s; PushI d; AddI; Dup; StoreSlot s; Drop
  if (q >= 4 && q + 2 <= code.size() && at(q - 4).op == Op::LoadSlot &&
      at(q - 4).a == slot && at(q - 3).op == Op::PushI && at(q - 2).op == Op::AddI &&
      at(q - 1).op == Op::Dup && at(q + 1).op == Op::Drop) {
    out = {q - 4, q + 2, at(q - 3).imm};
    return true;
  }
  // bare: LoadSlot s; PushI d; AddI; StoreSlot s
  if (q >= 3 && at(q - 3).op == Op::LoadSlot && at(q - 3).a == slot &&
      at(q - 2).op == Op::PushI && at(q - 1).op == Op::AddI) {
    out = {q - 3, q + 1, at(q - 2).imm};
    return true;
  }
  return false;
}

bool strengthReduce(FunctionCode& fn) {
  const std::vector<Insn>& code = fn.code;
  const std::size_t n = code.size();
  const std::vector<bool> target = branchTargets(code);

  for (const Loop& loop : innermostLoops(code)) {
    // Writes per slot inside the body.
    std::vector<int> writes(static_cast<std::size_t>(fn.numSlots), 0);
    std::vector<std::size_t> writePos(static_cast<std::size_t>(fn.numSlots), kNpos);
    for (std::size_t i = loop.head; i <= loop.back; ++i) {
      const int s = writtenSlot(code[i]);
      if (s >= 0) {
        writes[static_cast<std::size_t>(s)] += 1;
        writePos[static_cast<std::size_t>(s)] = i;
      }
    }

    for (std::size_t m = loop.head; m + 3 <= loop.back + 1; ++m) {
      std::int32_t indSlot = -1;
      std::int64_t factor = 0;
      if (code[m].op == Op::LoadSlot && code[m + 1].op == Op::PushI &&
          code[m + 2].op == Op::MulI) {
        indSlot = code[m].a;
        factor = code[m + 1].imm;
      } else if (code[m].op == Op::PushI && code[m + 1].op == Op::LoadSlot &&
                 code[m + 2].op == Op::MulI) {
        indSlot = code[m + 1].a;
        factor = code[m].imm;
      } else {
        continue;
      }
      if (writes[static_cast<std::size_t>(indSlot)] != 1 || !fitsI32(factor)) continue;
      IncWindow inc;
      if (!matchIncrement(code, writePos[static_cast<std::size_t>(indSlot)], indSlot, inc)) {
        continue;
      }
      if (inc.begin < loop.head || inc.end > loop.back + 1 || !fitsI32(inc.delta)) continue;
      bool ok = true;
      for (std::size_t j = inc.begin + 1; j < inc.end; ++j) {
        if (target[j]) ok = false;  // jumps into the middle of the increment
      }
      if (!ok) continue;

      // Collect every multiply window of this (slot, factor) pair in the
      // body: disjoint from the increment window and from each other.  Each
      // replacement carries its own window's summed weight.
      std::vector<std::pair<std::size_t, int>> windows;  // (pos, weight)
      for (std::size_t w = loop.head; w + 3 <= loop.back + 1;) {
        const bool formA = code[w].op == Op::LoadSlot && code[w].a == indSlot &&
                           code[w + 1].op == Op::PushI && code[w + 1].imm == factor &&
                           code[w + 2].op == Op::MulI;
        const bool formB = code[w].op == Op::PushI && code[w].imm == factor &&
                           code[w + 1].op == Op::LoadSlot && code[w + 1].a == indSlot &&
                           code[w + 2].op == Op::MulI;
        const bool overlapsInc = w < inc.end && w + 3 > inc.begin;
        const bool interiorTarget = target[w + 1] || target[w + 2];
        if ((formA || formB) && !overlapsInc && !interiorTarget) {
          const int wsum = code[w].weight + code[w + 1].weight + code[w + 2].weight;
          if (wsum <= 255) {
            windows.push_back({w, wsum});
            w += 3;
            continue;
          }
        }
        ++w;
      }
      if (windows.empty()) continue;

      const std::int32_t tracked = fn.numSlots++;
      std::vector<Edit> edits;
      Edit pre;
      pre.pos = loop.head;
      pre.kind = Edit::Preheader;
      pre.add.push_back(make(Op::LoadSlot, indSlot, 0, 0, 0));
      pre.add.push_back(make(Op::PushI, 0, 0, factor, 0));
      pre.add.push_back(make(Op::MulI, 0, 0, 0, 0));
      pre.add.push_back(make(Op::StoreSlot, tracked, 0, 0, 0));
      edits.push_back(std::move(pre));

      Edit bump;
      bump.pos = inc.end;
      bump.kind = Edit::Append;
      bump.add.push_back(make(Op::IncSlotI, tracked, 0, t32(inc.delta * factor), 0));
      edits.push_back(std::move(bump));

      for (const auto& [w, wsum] : windows) {
        Edit rep;
        rep.pos = w;
        rep.kind = Edit::Replace;
        rep.remove = 3;
        rep.add.push_back(make(Op::LoadSlot, tracked, 0, 0,
                               static_cast<std::uint8_t>(wsum)));
        edits.push_back(std::move(rep));
      }
      applyEdits(fn, std::move(edits), loop.head, loop.head, loop.back);
      return true;
    }
  }
  (void)n;
  return false;
}

// ---------------------------------------------------------------------------
// R1: loop-invariant hoisting.  The longest pure window inside an innermost
// loop that reads only loop-invariant slots, never dips into the pre-window
// stack, and nets exactly one pushed value moves to a preheader (weight 0)
// that stores into a fresh slot; the window becomes LoadSlot of that slot,
// carrying the window's summed weight.  Branches from inside the loop to its
// head skip the preheader; entering the loop from anywhere else runs it.
// ---------------------------------------------------------------------------

bool hoistLoopInvariant(FunctionCode& fn) {
  const std::vector<Insn>& code = fn.code;
  const std::vector<bool> target = branchTargets(code);

  for (const Loop& loop : innermostLoops(code)) {
    std::vector<bool> written(static_cast<std::size_t>(fn.numSlots), false);
    for (std::size_t i = loop.head; i <= loop.back; ++i) {
      const int s = writtenSlot(code[i]);
      if (s >= 0) written[static_cast<std::size_t>(s)] = true;
    }

    for (std::size_t w = loop.head; w <= loop.back; ++w) {
      int height = 0;
      int weight = 0;
      std::size_t end = 0;  // one past the chosen window; 0 = none found
      int endWeight = 0;
      std::size_t j = w;
      while (j <= loop.back) {
        if (j > w && target[j]) break;
        int pops = 0;
        int pushes = 0;
        if (!pureOp(code[j], pops, pushes)) break;
        if (code[j].op == Op::LoadSlot &&
            written[static_cast<std::size_t>(code[j].a)]) {
          break;
        }
        if (height < pops) break;  // would consume pre-window stack
        height += pushes - pops;
        weight += code[j].weight;
        if (weight > 255) break;
        ++j;
        if (height == 1 && j - w >= 2) {
          end = j;
          endWeight = weight;
        }
      }
      if (end == 0) continue;

      const std::int32_t hoisted = fn.numSlots++;
      Edit pre;
      pre.pos = loop.head;
      pre.kind = Edit::Preheader;
      for (std::size_t i = w; i < end; ++i) {
        Insn copy = code[i];
        copy.weight = 0;
        pre.add.push_back(copy);
      }
      pre.add.push_back(make(Op::StoreSlot, hoisted, 0, 0, 0));

      Edit rep;
      rep.pos = w;
      rep.kind = Edit::Replace;
      rep.remove = end - w;
      rep.add.push_back(make(Op::LoadSlot, hoisted, 0, 0,
                             static_cast<std::uint8_t>(endWeight)));

      applyEdits(fn, {std::move(pre), std::move(rep)}, loop.head, loop.head, loop.back);
      return true;
    }
  }
  return false;
}

}  // namespace

int rewriteOptimize(FunctionCode& fn) {
  int applied = 0;
  // One transformation per iteration (each is a full rebuild); every rule
  // strictly shrinks its remaining opportunities, the cap is a backstop.
  while (applied < 64) {
    if (fusePointerBias(fn)) { ++applied; continue; }
    if (strengthReduce(fn)) { ++applied; continue; }
    if (hoistLoopInvariant(fn)) { ++applied; continue; }
    break;
  }
  return applied;
}

}  // namespace skelcl::kc
