// Top-level compile pipeline: source string -> CompiledProgram.
#pragma once

#include <memory>
#include <string>

#include "kernelc/vm.hpp"

namespace skelcl::kc {

/// Compile a kernel-language translation unit.  Throws CompileError with the
/// full list of diagnostics on failure.  The returned program is immutable
/// and safe to share across threads (each thread runs its own Vm).
std::shared_ptr<const CompiledProgram> compileProgram(const std::string& source);

}  // namespace skelcl::kc
