// Top-level compile pipeline: source string -> CompiledProgram.
#pragma once

#include <memory>
#include <string>

#include "kernelc/vm.hpp"

namespace skelcl::kc {

/// Pipeline selection for compileProgram.
struct CompileOptions {
  /// Optimization tier (the ladder in docs/VM.md):
  ///   0 — reference: naive Insn stream on the guarded reference interpreter.
  ///       The differential-testing oracle.
  ///   1 — fast: peephole superinstructions + packed 16-byte encoding + fast
  ///       interpreter (PR 4).
  ///   2 — fast + the rewrite pass (kernelc/rewrite.hpp: loop-invariant
  ///       hoisting, strength reduction, pointer-bias fusion) before the
  ///       peephole pass, and eligibility for work-group-batched execution
  ///       (Vm::runKernelBatch).
  /// Every tier produces bit-identical outputs and identical
  /// retired-instruction counts; higher tiers only run faster.
  int tier = 2;
};

/// The process-wide default, from the environment: SKELCL_KC_OPT=0 selects
/// the reference pipeline, =1 the fast pipeline without rewrites; anything
/// else (including unset) selects the full tier-2 pipeline.
CompileOptions defaultCompileOptions();

/// Compile a kernel-language translation unit.  Throws CompileError with the
/// full list of diagnostics on failure.  The returned program is immutable
/// and safe to share across threads (each thread runs its own Vm).
std::shared_ptr<const CompiledProgram> compileProgram(const std::string& source);

/// As above with explicit pipeline selection (ignores SKELCL_KC_OPT).
std::shared_ptr<const CompiledProgram> compileProgram(const std::string& source,
                                                      const CompileOptions& options);

}  // namespace skelcl::kc
