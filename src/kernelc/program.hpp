// Top-level compile pipeline: source string -> CompiledProgram.
#pragma once

#include <memory>
#include <string>

#include "kernelc/vm.hpp"

namespace skelcl::kc {

/// Pipeline selection for compileProgram.
struct CompileOptions {
  /// Run the optimized pipeline: peephole superinstructions + packed 16-byte
  /// encoding + fast interpreter.  When false the program keeps the naive
  /// Insn stream and executes on the reference interpreter — used for
  /// differential testing (outputs and retired-instruction counts must match
  /// the optimized pipeline exactly).
  bool optimize = true;
};

/// The process-wide default, from the environment: SKELCL_KC_OPT=0 disables
/// the optimized pipeline for every compile that doesn't pass explicit
/// options.
CompileOptions defaultCompileOptions();

/// Compile a kernel-language translation unit.  Throws CompileError with the
/// full list of diagnostics on failure.  The returned program is immutable
/// and safe to share across threads (each thread runs its own Vm).
std::shared_ptr<const CompiledProgram> compileProgram(const std::string& source);

/// As above with explicit pipeline selection (ignores SKELCL_KC_OPT).
std::shared_ptr<const CompiledProgram> compileProgram(const std::string& source,
                                                      const CompileOptions& options);

}  // namespace skelcl::kc
