// Semantic analysis: name resolution, type checking, struct layout, local
// slot / frame-memory assignment.  Annotates the AST in place; the bytecode
// compiler relies on a fully annotated tree.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kernelc/ast.hpp"
#include "kernelc/builtins.hpp"
#include "kernelc/diagnostics.hpp"
#include "kernelc/types.hpp"

namespace skelcl::kc {

class Sema {
 public:
  explicit Sema(Program& program) : program_(program) {}

  /// Analyze the whole program.  Throws CompileError carrying every
  /// diagnostic collected (analysis continues at the next function after an
  /// error).  On success the returned TypeTable owns all struct layouts the
  /// bytecode references.
  TypeTable run();

  /// Functions in declaration order (valid after run()).
  const std::vector<FunctionDecl*>& functions() const { return functions_; }

 private:
  struct Symbol {
    TypeId type = types::Invalid;  ///< element type for arrays
    VarHome home = VarHome::Unresolved;
    int slot = -1;
    std::uint32_t frameOffset = 0;
    bool isArray = false;
  };

  // error helper: records a diagnostic and throws to unwind to the
  // per-function catch (analysis resumes with the next function)
  [[noreturn]] void fail(SourceLoc loc, const std::string& message);

  TypeId resolve(const TypeSpec& spec, bool allowVoid = false);

  void declareStruct(StructDecl& decl);
  void collectFunction(FunctionDecl& decl);
  void analyzeFunction(FunctionDecl& decl);

  // scopes
  void pushScope();
  void popScope();
  Symbol& declare(SourceLoc loc, const std::string& name, Symbol sym);
  const Symbol* lookup(const std::string& name) const;

  // allocation inside the current function
  int allocSlot();
  std::uint32_t allocFrame(std::uint32_t size, std::uint32_t align);

  // statements / expressions
  void analyzeStmt(Stmt& stmt);
  void analyzeBlock(Block& block);
  void analyzeDecl(DeclStmt& decl);
  TypeId analyzeExpr(Expr& expr);
  TypeId analyzeVarRef(VarRef& ref);
  TypeId analyzeUnary(Unary& unary);
  TypeId analyzeBinary(Binary& binary);
  TypeId analyzeAssign(Assign& assign);
  TypeId analyzeTernary(Ternary& ternary);
  TypeId analyzeCall(Call& call);
  TypeId analyzeIndex(Index& index);
  TypeId analyzeMember(Member& member);
  TypeId analyzeCast(Cast& cast);

  /// Require an arithmetic condition expression.
  void checkCondition(Expr& cond);
  /// Insert an implicit conversion so `expr` has type `target`.
  void coerce(ExprPtr& expr, TypeId target, const char* what);
  TypeId typeFromBType(BType b);

  Program& program_;
  TypeTable types_;
  std::vector<Diagnostic> diags_;

  std::vector<FunctionDecl*> functions_;
  std::unordered_map<std::string, int> functionByName_;
  std::unordered_set<std::string> builtinNames_;

  // per-function state
  FunctionDecl* current_ = nullptr;
  std::vector<std::unordered_map<std::string, Symbol>> scopes_;
  std::unordered_set<std::string> addressTaken_;
  int nextSlot_ = 0;
  std::uint32_t frameSize_ = 0;
  int loopDepth_ = 0;
};

}  // namespace skelcl::kc
