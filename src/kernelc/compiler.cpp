#include "kernelc/compiler.hpp"

#include "base/error.hpp"
#include "kernelc/builtins.hpp"

#include <optional>

namespace skelcl::kc {

namespace {
bool isF32(TypeId t) { return t == types::Float; }
bool isF64(TypeId t) { return t == types::Double; }
bool isFloating(TypeId t) { return isF32(t) || isF64(t); }

// ---------------------------------------------------------------------------
// Constant folding
//
// Pure expressions over literals are evaluated at compile time with exactly
// the VM's semantics (32-bit wrap-around integers, float re-rounding), so a
// folded program is observably identical to an unfolded one — except for the
// instruction count, which drives the simulated kernel time the same way a
// real driver compiler's optimizer would.
// ---------------------------------------------------------------------------

struct Folded {
  bool isFloat = false;
  double f = 0.0;
  std::int64_t i = 0;
};

std::optional<Folded> tryFold(const Expr& expr, const TypeTable& types);

std::optional<Folded> foldBinary(const Binary& bin, const TypeTable& types) {
  // Short-circuit operators and pointer arithmetic are lowered with jumps /
  // PtrAdd; don't fold them here.
  if (bin.op == BinaryOp::LAnd || bin.op == BinaryOp::LOr) return std::nullopt;
  if (!types.isArithmetic(bin.operandType)) return std::nullopt;

  const auto lhs = tryFold(*bin.lhs, types);
  const auto rhs = tryFold(*bin.rhs, types);
  if (!lhs || !rhs) return std::nullopt;

  const bool f32 = bin.operandType == types::Float;
  const bool f64 = bin.operandType == types::Double;
  const bool uns = bin.operandType == types::Uint;

  Folded out;
  if (f32 || f64) {
    const double a = lhs->f;
    const double b = rhs->f;
    auto roundIf = [&](double v) { return f32 ? static_cast<double>(static_cast<float>(v)) : v; };
    switch (bin.op) {
      case BinaryOp::Add: out.f = roundIf((f32 ? float(a) + float(b) : a + b)); break;
      case BinaryOp::Sub: out.f = roundIf((f32 ? float(a) - float(b) : a - b)); break;
      case BinaryOp::Mul: out.f = roundIf((f32 ? float(a) * float(b) : a * b)); break;
      case BinaryOp::Div: out.f = roundIf((f32 ? float(a) / float(b) : a / b)); break;
      case BinaryOp::Eq: out.i = a == b; return out;
      case BinaryOp::Ne: out.i = a != b; return out;
      case BinaryOp::Lt: out.i = a < b; return out;
      case BinaryOp::Le: out.i = a <= b; return out;
      case BinaryOp::Gt: out.i = a > b; return out;
      case BinaryOp::Ge: out.i = a >= b; return out;
      default: return std::nullopt;
    }
    out.isFloat = true;
    return out;
  }

  const std::int64_t a = lhs->i;
  const std::int64_t b = rhs->i;

  if (bin.operandType == types::Long || bin.operandType == types::Ulong) {
    // 64-bit semantics: compute in uint64 (wrap-around) and reinterpret.
    const bool unsL = bin.operandType == types::Ulong;
    const auto ua64 = static_cast<std::uint64_t>(a);
    const auto ub64 = static_cast<std::uint64_t>(b);
    switch (bin.op) {
      case BinaryOp::Add: out.i = static_cast<std::int64_t>(ua64 + ub64); break;
      case BinaryOp::Sub: out.i = static_cast<std::int64_t>(ua64 - ub64); break;
      case BinaryOp::Mul: out.i = static_cast<std::int64_t>(ua64 * ub64); break;
      case BinaryOp::Div:
        if (b == 0) return std::nullopt;  // preserve the runtime fault
        if (!unsL && b == -1) return std::nullopt;  // INT64_MIN / -1 overflow
        out.i = unsL ? static_cast<std::int64_t>(ua64 / ub64) : a / b;
        break;
      case BinaryOp::Rem:
        if (b == 0) return std::nullopt;
        if (!unsL && b == -1) return std::nullopt;
        out.i = unsL ? static_cast<std::int64_t>(ua64 % ub64) : a % b;
        break;
      case BinaryOp::BitAnd: out.i = a & b; break;
      case BinaryOp::BitOr: out.i = a | b; break;
      case BinaryOp::BitXor: out.i = a ^ b; break;
      case BinaryOp::Shl: out.i = static_cast<std::int64_t>(ua64 << (ub64 & 63u)); break;
      case BinaryOp::Shr:
        out.i = unsL ? static_cast<std::int64_t>(ua64 >> (ub64 & 63u)) : (a >> (ub64 & 63u));
        break;
      case BinaryOp::Eq: out.i = a == b; break;
      case BinaryOp::Ne: out.i = a != b; break;
      case BinaryOp::Lt: out.i = unsL ? (ua64 < ub64) : (a < b); break;
      case BinaryOp::Le: out.i = unsL ? (ua64 <= ub64) : (a <= b); break;
      case BinaryOp::Gt: out.i = unsL ? (ua64 > ub64) : (a > b); break;
      case BinaryOp::Ge: out.i = unsL ? (ua64 >= ub64) : (a >= b); break;
      default: return std::nullopt;
    }
    return out;
  }

  const auto ua = static_cast<std::uint32_t>(a);
  const auto ub = static_cast<std::uint32_t>(b);
  switch (bin.op) {
    case BinaryOp::Add: out.i = static_cast<std::int32_t>(a + b); break;
    case BinaryOp::Sub: out.i = static_cast<std::int32_t>(a - b); break;
    case BinaryOp::Mul: out.i = static_cast<std::int32_t>(a * b); break;
    case BinaryOp::Div:
      if (b == 0) return std::nullopt;  // preserve the runtime fault
      out.i = uns ? static_cast<std::int64_t>(ua / ub) : static_cast<std::int32_t>(a / b);
      break;
    case BinaryOp::Rem:
      if (b == 0) return std::nullopt;
      out.i = uns ? static_cast<std::int64_t>(ua % ub) : static_cast<std::int32_t>(a % b);
      break;
    case BinaryOp::BitAnd: out.i = static_cast<std::int32_t>(a & b); break;
    case BinaryOp::BitOr: out.i = static_cast<std::int32_t>(a | b); break;
    case BinaryOp::BitXor: out.i = static_cast<std::int32_t>(a ^ b); break;
    case BinaryOp::Shl: out.i = static_cast<std::int32_t>(ua << (ub & 31u)); break;
    case BinaryOp::Shr:
      out.i = uns ? static_cast<std::int64_t>(ua >> (ub & 31u))
                  : static_cast<std::int64_t>(static_cast<std::int32_t>(a) >> (ub & 31u));
      break;
    case BinaryOp::Eq: out.i = a == b; break;
    case BinaryOp::Ne: out.i = a != b; break;
    case BinaryOp::Lt: out.i = uns ? (ua < ub) : (a < b); break;
    case BinaryOp::Le: out.i = uns ? (ua <= ub) : (a <= b); break;
    case BinaryOp::Gt: out.i = uns ? (ua > ub) : (a > b); break;
    case BinaryOp::Ge: out.i = uns ? (ua >= ub) : (a >= b); break;
    default: return std::nullopt;
  }
  if (uns) out.i = static_cast<std::int64_t>(static_cast<std::uint32_t>(out.i));
  return out;
}

std::optional<Folded> tryFold(const Expr& expr, const TypeTable& types) {
  switch (expr.kind) {
    case ExprKind::IntLit: {
      Folded out;
      out.i = static_cast<std::int64_t>(static_cast<const IntLit&>(expr).value);
      return out;
    }
    case ExprKind::FloatLit: {
      const auto& lit = static_cast<const FloatLit&>(expr);
      Folded out;
      out.isFloat = true;
      out.f = lit.isFloat32 ? static_cast<double>(static_cast<float>(lit.value)) : lit.value;
      return out;
    }
    case ExprKind::BoolLit: {
      Folded out;
      out.i = static_cast<const BoolLit&>(expr).value ? 1 : 0;
      return out;
    }
    case ExprKind::SizeofType: {
      Folded out;
      out.i = static_cast<std::int64_t>(static_cast<const SizeofType&>(expr).size);
      return out;
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const Unary&>(expr);
      if (u.op != UnaryOp::Plus && u.op != UnaryOp::Minus && u.op != UnaryOp::Not &&
          u.op != UnaryOp::BitNot) {
        return std::nullopt;
      }
      const auto inner = tryFold(*u.operand, types);
      if (!inner) return std::nullopt;
      Folded out = *inner;
      switch (u.op) {
        case UnaryOp::Plus: break;
        case UnaryOp::Minus:
          if (out.isFloat) {
            out.f = expr.type == types::Float
                        ? static_cast<double>(-static_cast<float>(out.f))
                        : -out.f;
          } else if (expr.type == types::Long || expr.type == types::Ulong) {
            out.i = static_cast<std::int64_t>(-static_cast<std::uint64_t>(out.i));
          } else {
            out.i = static_cast<std::int32_t>(-out.i);
          }
          break;
        case UnaryOp::Not:
          out.i = (out.isFloat ? out.f == 0.0 : out.i == 0) ? 1 : 0;
          out.isFloat = false;
          out.f = 0.0;
          break;
        case UnaryOp::BitNot:
          out.i = (expr.type == types::Long || expr.type == types::Ulong)
                      ? ~out.i
                      : static_cast<std::int32_t>(~out.i);
          break;
        default: break;
      }
      return out;
    }
    case ExprKind::Binary:
      return foldBinary(static_cast<const Binary&>(expr), types);
    case ExprKind::Cast: {
      const auto& cast = static_cast<const Cast&>(expr);
      if (!types.isArithmetic(cast.type)) return std::nullopt;
      const auto inner = tryFold(*cast.operand, types);
      if (!inner) return std::nullopt;
      Folded out;
      const TypeId from = cast.operand->type;
      const TypeId to = cast.type;
      const bool fromFloat = inner->isFloat;
      if (to == types::Float || to == types::Double) {
        double v;
        if (fromFloat) {
          v = inner->f;
        } else if (from == types::Uint) {
          v = static_cast<double>(static_cast<std::uint32_t>(inner->i));
        } else {
          v = static_cast<double>(inner->i);
        }
        out.isFloat = true;
        out.f = to == types::Float ? static_cast<double>(static_cast<float>(v)) : v;
      } else {
        std::int64_t v;
        if (fromFloat) {
          if (to == types::Uint) {
            v = static_cast<std::int64_t>(static_cast<std::uint32_t>(inner->f));
          } else if (to == types::Ulong) {
            v = static_cast<std::int64_t>(static_cast<std::uint64_t>(inner->f));
          } else if (to == types::Long) {
            v = static_cast<std::int64_t>(inner->f);
          } else {
            v = static_cast<std::int64_t>(static_cast<std::int32_t>(inner->f));
          }
        } else {
          v = inner->i;
        }
        if (to == types::Uint) {
          v = static_cast<std::int64_t>(static_cast<std::uint32_t>(v));
        } else if (to == types::Bool) {
          v = v != 0;
        } else if (to == types::Long || to == types::Ulong) {
          // full 64-bit slot; from==Uint views the source as unsigned 32
          if (!fromFloat && from == types::Uint) {
            v = static_cast<std::int64_t>(static_cast<std::uint32_t>(v));
          }
        } else {
          v = static_cast<std::int32_t>(v);
        }
        out.i = v;
      }
      return out;
    }
    case ExprKind::Ternary: {
      const auto& t = static_cast<const Ternary&>(expr);
      if (!types.isArithmetic(expr.type)) return std::nullopt;
      const auto cond = tryFold(*t.cond, types);
      if (!cond) return std::nullopt;
      const bool taken = cond->isFloat ? cond->f != 0.0 : cond->i != 0;
      // Only fold if the *taken* branch folds; the untaken branch is dead.
      return tryFold(taken ? *t.thenExpr : *t.elseExpr, types);
    }
    default:
      return std::nullopt;
  }
}
}  // namespace

std::vector<FunctionCode> Compiler::run() {
  std::vector<FunctionCode> result;
  result.reserve(functions_.size());
  for (const FunctionDecl* fn : functions_) {
    result.push_back(compileFunction(*fn));
  }
  return result;
}

FunctionCode Compiler::compileFunction(const FunctionDecl& decl) {
  FunctionCode fc;
  fc.name = decl.name;
  fc.isKernel = decl.isKernel;
  fc.returnType = decl.returnType;
  for (const auto& p : decl.params) fc.paramTypes.push_back(p.type);
  fc.numSlots = decl.numSlots;
  fc.frameBytes = decl.frameBytes;

  current_ = &fc;
  scratch_ = -1;
  loops_.clear();

  genBlock(*decl.body);

  // Implicit epilogue: void functions return; non-void functions trap if
  // control falls off the end.
  if (decl.returnType == types::Void) {
    emit(Op::RetVoid);
  } else {
    emit(Op::Trap);
  }

  current_ = nullptr;
  return fc;
}

// ---------------------------------------------------------------------------
// Emission helpers
// ---------------------------------------------------------------------------

std::size_t Compiler::emit(Op op, std::int32_t a, std::int32_t b, std::int64_t imm,
                           double fimm) {
  current_->code.push_back(Insn{op, a, b, imm, fimm});
  return current_->code.size() - 1;
}

std::size_t Compiler::emitJumpPlaceholder(Op op) { return emit(op, -1); }

void Compiler::patchJump(std::size_t insnIndex) {
  current_->code[insnIndex].a = static_cast<std::int32_t>(current_->code.size());
}

int Compiler::scratchSlot() {
  if (scratch_ < 0) scratch_ = current_->numSlots++;
  return scratch_;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void Compiler::genBlock(const Block& block) {
  for (const auto& stmt : block.statements) genStmt(*stmt);
}

void Compiler::genDecl(const DeclStmt& decl) {
  for (const auto& var : decl.vars) {
    if (!var.init) continue;
    if (types_.isStruct(var.type)) {
      emit(Op::LeaFrame, static_cast<std::int32_t>(var.frameOffset));
      genAddr(*var.init);
      emit(Op::MemCopy, static_cast<std::int32_t>(types_.sizeOf(var.type)));
    } else if (var.home == VarHome::Slot) {
      genValue(*var.init);
      emit(Op::StoreSlot, var.slot);
    } else {
      emit(Op::LeaFrame, static_cast<std::int32_t>(var.frameOffset));
      genValue(*var.init);
      genStore(var.type);
    }
  }
}

void Compiler::genStmt(const Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::Block:
      genBlock(static_cast<const Block&>(stmt));
      return;
    case StmtKind::Decl:
      genDecl(static_cast<const DeclStmt&>(stmt));
      return;
    case StmtKind::If: {
      const auto& s = static_cast<const IfStmt&>(stmt);
      genCond(*s.cond);
      const std::size_t toElse = emitJumpPlaceholder(Op::Jz);
      genStmt(*s.thenStmt);
      if (s.elseStmt) {
        const std::size_t toEnd = emitJumpPlaceholder(Op::Jmp);
        patchJump(toElse);
        genStmt(*s.elseStmt);
        patchJump(toEnd);
      } else {
        patchJump(toElse);
      }
      return;
    }
    case StmtKind::While: {
      const auto& s = static_cast<const WhileStmt&>(stmt);
      const std::size_t condPos = current_->code.size();
      genCond(*s.cond);
      const std::size_t toEnd = emitJumpPlaceholder(Op::Jz);
      loops_.emplace_back();
      genStmt(*s.body);
      LoopContext loop = std::move(loops_.back());
      loops_.pop_back();
      for (std::size_t j : loop.continueJumps) {
        current_->code[j].a = static_cast<std::int32_t>(condPos);
      }
      emit(Op::Jmp, static_cast<std::int32_t>(condPos));
      patchJump(toEnd);
      for (std::size_t j : loop.breakJumps) patchJump(j);
      return;
    }
    case StmtKind::DoWhile: {
      const auto& s = static_cast<const DoWhileStmt&>(stmt);
      const std::size_t bodyPos = current_->code.size();
      loops_.emplace_back();
      genStmt(*s.body);
      LoopContext loop = std::move(loops_.back());
      loops_.pop_back();
      const std::size_t condPos = current_->code.size();
      for (std::size_t j : loop.continueJumps) {
        current_->code[j].a = static_cast<std::int32_t>(condPos);
      }
      genCond(*s.cond);
      emit(Op::Jnz, static_cast<std::int32_t>(bodyPos));
      for (std::size_t j : loop.breakJumps) patchJump(j);
      return;
    }
    case StmtKind::For: {
      const auto& s = static_cast<const ForStmt&>(stmt);
      genStmt(*s.init);
      const std::size_t condPos = current_->code.size();
      std::size_t toEnd = 0;
      bool hasCond = s.cond != nullptr;
      if (hasCond) {
        genCond(*s.cond);
        toEnd = emitJumpPlaceholder(Op::Jz);
      }
      loops_.emplace_back();
      genStmt(*s.body);
      LoopContext loop = std::move(loops_.back());
      loops_.pop_back();
      const std::size_t stepPos = current_->code.size();
      for (std::size_t j : loop.continueJumps) {
        current_->code[j].a = static_cast<std::int32_t>(stepPos);
      }
      if (s.step) {
        genValue(*s.step);
        if (s.step->type != types::Void) emit(Op::Drop);
      }
      emit(Op::Jmp, static_cast<std::int32_t>(condPos));
      if (hasCond) patchJump(toEnd);
      for (std::size_t j : loop.breakJumps) patchJump(j);
      return;
    }
    case StmtKind::Break: {
      SKELCL_CHECK(!loops_.empty(), "break outside loop slipped past sema");
      loops_.back().breakJumps.push_back(emitJumpPlaceholder(Op::Jmp));
      return;
    }
    case StmtKind::Continue: {
      SKELCL_CHECK(!loops_.empty(), "continue outside loop slipped past sema");
      loops_.back().continueJumps.push_back(emitJumpPlaceholder(Op::Jmp));
      return;
    }
    case StmtKind::Return: {
      const auto& s = static_cast<const ReturnStmt&>(stmt);
      if (s.value) {
        genValue(*s.value);
        emit(Op::Ret);
      } else {
        emit(Op::RetVoid);
      }
      return;
    }
    case StmtKind::ExprStmt: {
      const auto& s = static_cast<const ExprStmt&>(stmt);
      genValue(*s.expr);
      if (s.expr->type != types::Void) emit(Op::Drop);
      return;
    }
    case StmtKind::Empty:
      return;
  }
}

// ---------------------------------------------------------------------------
// Loads / stores / conversions
// ---------------------------------------------------------------------------

void Compiler::genLoad(TypeId type) {
  if (type == types::Int || type == types::Bool) {
    emit(Op::LoadI32);
  } else if (type == types::Uint) {
    emit(Op::LoadU32);
  } else if (type == types::Float) {
    emit(Op::LoadF32);
  } else if (type == types::Double) {
    emit(Op::LoadF64);
  } else if (type == types::Long || type == types::Ulong) {
    emit(Op::LoadI64);
  } else {
    SKELCL_CHECK(false, "cannot load type " + types_.name(type));
  }
}

void Compiler::genStore(TypeId type) {
  if (type == types::Long || type == types::Ulong) {
    emit(Op::StoreI64);
  } else if (types_.isInteger(type)) {
    emit(Op::StoreI32);
  } else if (type == types::Float) {
    emit(Op::StoreF32);
  } else if (type == types::Double) {
    emit(Op::StoreF64);
  } else {
    SKELCL_CHECK(false, "cannot store type " + types_.name(type));
  }
}

void Compiler::genConversion(TypeId from, TypeId to) {
  if (from == to) return;
  if (types_.isPointer(from) && types_.isPointer(to)) return;  // reinterpret

  // integer literal 0 -> null pointer: the zero slot already is a null Ptr
  if (types_.isPointer(to)) return;

  if (from == types::Int || from == types::Bool) {
    if (to == types::Float) { emit(Op::I2F32); return; }
    if (to == types::Double) { emit(Op::I2F64); return; }
    if (to == types::Uint) { emit(Op::I2U); return; }
    if (to == types::Long) return;   // slot already holds the sign-extended value
    if (to == types::Ulong) return;  // two's-complement reinterpretation
    if (to == types::Int || to == types::Bool) {
      if (to == types::Bool) emit(Op::BoolNorm);
      return;
    }
  }
  if (from == types::Uint) {
    if (to == types::Float) { emit(Op::U2F32); return; }
    if (to == types::Double) { emit(Op::U2F64); return; }
    if (to == types::Int) { emit(Op::U2I); return; }
    if (to == types::Long || to == types::Ulong) return;  // slot is zero-extended
    if (to == types::Bool) { emit(Op::BoolNorm); return; }
  }
  if (from == types::Long) {
    if (to == types::Float) { emit(Op::I2F32); return; }   // full-width int64 source
    if (to == types::Double) { emit(Op::I2F64); return; }
    if (to == types::Ulong) return;  // reinterpretation
    if (to == types::Int) { emit(Op::U2I); return; }   // truncate + sign-extend low 32
    if (to == types::Uint) { emit(Op::I2U); return; }  // truncate to low 32
    if (to == types::Bool) { emit(Op::BoolNorm); return; }
  }
  if (from == types::Ulong) {
    if (to == types::Float) { emit(Op::UL2F32); return; }
    if (to == types::Double) { emit(Op::UL2F64); return; }
    if (to == types::Long) return;  // reinterpretation
    if (to == types::Int) { emit(Op::U2I); return; }
    if (to == types::Uint) { emit(Op::I2U); return; }
    if (to == types::Bool) { emit(Op::BoolNorm); return; }
  }
  if (from == types::Float) {
    if (to == types::Double) return;  // exact widening (already a double slot)
    if (to == types::Int) { emit(Op::F2I); return; }
    if (to == types::Uint) { emit(Op::F2U); return; }
    if (to == types::Long) { emit(Op::F2L); return; }
    if (to == types::Ulong) { emit(Op::F2UL); return; }
    if (to == types::Bool) { emit(Op::PushF, 0, 0, 0, 0.0); emit(Op::NeF); return; }
  }
  if (from == types::Double) {
    if (to == types::Float) { emit(Op::F64toF32); return; }
    if (to == types::Int) { emit(Op::F2I); return; }
    if (to == types::Uint) { emit(Op::F2U); return; }
    if (to == types::Long) { emit(Op::F2L); return; }
    if (to == types::Ulong) { emit(Op::F2UL); return; }
    if (to == types::Bool) { emit(Op::PushF, 0, 0, 0, 0.0); emit(Op::NeF); return; }
  }
  SKELCL_CHECK(false, "no conversion from " + types_.name(from) + " to " + types_.name(to));
}

void Compiler::genBinaryOp(BinaryOp op, TypeId operandType) {
  const bool f32 = isF32(operandType);
  const bool f64 = isF64(operandType);
  const bool uns = operandType == types::Uint;
  const bool lng = operandType == types::Long;
  const bool unl = operandType == types::Ulong;

  if (lng || unl) {
    switch (op) {
      case BinaryOp::Add: emit(Op::AddL); return;
      case BinaryOp::Sub: emit(Op::SubL); return;
      case BinaryOp::Mul: emit(Op::MulL); return;
      case BinaryOp::Div: emit(unl ? Op::DivUL : Op::DivL); return;
      case BinaryOp::Rem: emit(unl ? Op::RemUL : Op::RemL); return;
      case BinaryOp::BitAnd: emit(Op::AndL); return;
      case BinaryOp::BitOr: emit(Op::OrL); return;
      case BinaryOp::BitXor: emit(Op::XorL); return;
      case BinaryOp::Shl: emit(Op::ShlL); return;
      case BinaryOp::Shr: emit(unl ? Op::ShrUL : Op::ShrL); return;
      // Eq/Ne and signed ordering work on the full 64-bit slot already.
      case BinaryOp::Eq: emit(Op::EqI); return;
      case BinaryOp::Ne: emit(Op::NeI); return;
      case BinaryOp::Lt: emit(unl ? Op::LtUL : Op::LtI); return;
      case BinaryOp::Le: emit(unl ? Op::LeUL : Op::LeI); return;
      case BinaryOp::Gt: emit(unl ? Op::GtUL : Op::GtI); return;
      case BinaryOp::Ge: emit(unl ? Op::GeUL : Op::GeI); return;
      case BinaryOp::LAnd:
      case BinaryOp::LOr:
        SKELCL_CHECK(false, "logical operators are lowered with jumps, not genBinaryOp");
    }
  }

  switch (op) {
    case BinaryOp::Add: emit(f32 ? Op::AddF32 : f64 ? Op::AddF64 : Op::AddI); return;
    case BinaryOp::Sub: emit(f32 ? Op::SubF32 : f64 ? Op::SubF64 : Op::SubI); return;
    case BinaryOp::Mul: emit(f32 ? Op::MulF32 : f64 ? Op::MulF64 : Op::MulI); return;
    case BinaryOp::Div:
      emit(f32 ? Op::DivF32 : f64 ? Op::DivF64 : uns ? Op::DivU : Op::DivI);
      return;
    case BinaryOp::Rem: emit(uns ? Op::RemU : Op::RemI); return;
    case BinaryOp::BitAnd: emit(Op::AndI); return;
    case BinaryOp::BitOr: emit(Op::OrI); return;
    case BinaryOp::BitXor: emit(Op::XorI); return;
    case BinaryOp::Shl: emit(Op::ShlI); return;
    case BinaryOp::Shr: emit(uns ? Op::ShrU : Op::ShrI); return;
    case BinaryOp::Eq:
      emit(isFloating(operandType) ? Op::EqF
           : types_.isPointer(operandType) ? Op::EqP : Op::EqI);
      return;
    case BinaryOp::Ne:
      emit(isFloating(operandType) ? Op::NeF
           : types_.isPointer(operandType) ? Op::NeP : Op::NeI);
      return;
    case BinaryOp::Lt: emit(isFloating(operandType) ? Op::LtF : uns ? Op::LtU : Op::LtI); return;
    case BinaryOp::Le: emit(isFloating(operandType) ? Op::LeF : uns ? Op::LeU : Op::LeI); return;
    case BinaryOp::Gt: emit(isFloating(operandType) ? Op::GtF : uns ? Op::GtU : Op::GtI); return;
    case BinaryOp::Ge: emit(isFloating(operandType) ? Op::GeF : uns ? Op::GeU : Op::GeI); return;
    case BinaryOp::LAnd:
    case BinaryOp::LOr:
      SKELCL_CHECK(false, "logical operators are lowered with jumps, not genBinaryOp");
  }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

void Compiler::genCond(const Expr& expr) {
  genValue(expr);
  if (isFloating(expr.type)) {
    emit(Op::PushF, 0, 0, 0, 0.0);
    emit(Op::NeF);
  }
  // integers / bools are used directly; pointers are rejected by sema
}

void Compiler::genAddr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::VarRef: {
      const auto& ref = static_cast<const VarRef&>(expr);
      SKELCL_CHECK(ref.home == VarHome::FrameMemory,
                   "address of a register variable slipped past sema");
      emit(Op::LeaFrame, static_cast<std::int32_t>(ref.frameOffset));
      return;
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const Unary&>(expr);
      SKELCL_CHECK(u.op == UnaryOp::Deref, "not an addressable unary expression");
      genValue(*u.operand);
      return;
    }
    case ExprKind::Index: {
      const auto& idx = static_cast<const Index&>(expr);
      genValue(*idx.base);
      genValue(*idx.index);
      emit(Op::PtrAdd, static_cast<std::int32_t>(types_.sizeOf(expr.type)));
      return;
    }
    case ExprKind::Member: {
      const auto& m = static_cast<const Member&>(expr);
      if (m.isArrow) {
        genValue(*m.base);
      } else {
        genAddr(*m.base);
      }
      if (m.fieldOffset != 0) {
        emit(Op::PushI, 0, 0, static_cast<std::int64_t>(m.fieldOffset));
        emit(Op::PtrAdd, 1);
      }
      return;
    }
    default:
      SKELCL_CHECK(false, "expression is not addressable");
  }
}

void Compiler::genIncDec(const Unary& unary) {
  const bool isInc = unary.op == UnaryOp::PreInc || unary.op == UnaryOp::PostInc;
  const bool isPost = unary.op == UnaryOp::PostInc || unary.op == UnaryOp::PostDec;
  const TypeId t = unary.operand->type;

  auto emitDelta = [&] {
    if (types_.isPointer(t)) {
      emit(Op::PushI, 0, 0, isInc ? 1 : -1);
      emit(Op::PtrAdd, static_cast<std::int32_t>(types_.sizeOf(types_.pointee(t))));
    } else if (isFloating(t)) {
      emit(Op::PushF, 0, 0, 0, 1.0);
      emit(isF32(t) ? (isInc ? Op::AddF32 : Op::SubF32) : (isInc ? Op::AddF64 : Op::SubF64));
    } else if (t == types::Long || t == types::Ulong) {
      emit(Op::PushI, 0, 0, 1);
      emit(isInc ? Op::AddL : Op::SubL);
    } else {
      emit(Op::PushI, 0, 0, 1);
      emit(isInc ? Op::AddI : Op::SubI);
    }
  };

  const auto& target = *unary.operand;
  if (target.kind == ExprKind::VarRef &&
      static_cast<const VarRef&>(target).home == VarHome::Slot) {
    const int slot = static_cast<const VarRef&>(target).slot;
    emit(Op::LoadSlot, slot);
    if (isPost) emit(Op::Dup);          // [old, old]
    emitDelta();                        // [old, new] (post) / [new]
    if (isPost) {
      emit(Op::StoreSlot, slot);        // [old]
    } else {
      emit(Op::Dup);                    // [new, new]
      emit(Op::StoreSlot, slot);        // [new]
    }
    return;
  }

  // memory lvalue
  const int sc = scratchSlot();
  genAddr(target);                      // [p]
  emit(Op::Dup);                        // [p, p]
  genLoad(t);                           // [p, old]
  if (isPost) {
    emit(Op::StoreSlot, sc);            // [p]         sc = old
    emit(Op::LoadSlot, sc);             // [p, old]
    emitDelta();                        // [p, new]
    genStore(t);                        // []
    emit(Op::LoadSlot, sc);             // [old]
  } else {
    emitDelta();                        // [p, new]
    emit(Op::StoreSlot, sc);            // [p]         sc = new
    emit(Op::LoadSlot, sc);             // [p, new]
    genStore(t);                        // []
    emit(Op::LoadSlot, sc);             // [new]
  }
}

void Compiler::genAssign(const Assign& assign) {
  const Expr& lhs = *assign.lhs;
  const TypeId lhsType = lhs.type;

  // Struct assignment: memcpy, yields void.
  if (types_.isStruct(lhsType)) {
    genAddr(lhs);
    genAddr(*assign.rhs);
    emit(Op::MemCopy, static_cast<std::int32_t>(types_.sizeOf(lhsType)));
    return;
  }

  const bool slotTarget = lhs.kind == ExprKind::VarRef &&
                          static_cast<const VarRef&>(lhs).home == VarHome::Slot;

  if (slotTarget) {
    const int slot = static_cast<const VarRef&>(lhs).slot;
    if (!assign.isCompound) {
      genValue(*assign.rhs);
      emit(Op::Dup);
      emit(Op::StoreSlot, slot);
      return;
    }
    if (types_.isPointer(lhsType)) {  // p += n / p -= n
      emit(Op::LoadSlot, slot);
      genValue(*assign.rhs);
      if (assign.compoundOp == BinaryOp::Sub) emit(Op::NegI);
      emit(Op::PtrAdd, static_cast<std::int32_t>(types_.sizeOf(types_.pointee(lhsType))));
      emit(Op::Dup);
      emit(Op::StoreSlot, slot);
      return;
    }
    const TypeId common = assign.rhs->type;  // sema coerced rhs to the common type
    emit(Op::LoadSlot, slot);
    genConversion(lhsType, common);
    genValue(*assign.rhs);
    genBinaryOp(assign.compoundOp, common);
    genConversion(common, lhsType);
    emit(Op::Dup);
    emit(Op::StoreSlot, slot);
    return;
  }

  // memory lvalue
  const int sc = scratchSlot();
  genAddr(lhs);  // [p]
  if (!assign.isCompound) {
    genValue(*assign.rhs);     // [p, v]
    emit(Op::StoreSlot, sc);   // [p]
    emit(Op::LoadSlot, sc);    // [p, v]
    genStore(lhsType);         // []
    emit(Op::LoadSlot, sc);    // [v]
    return;
  }
  if (types_.isPointer(lhsType)) {
    emit(Op::Dup);             // [p, p]
    genLoad(lhsType);          // [p, old]  -- pointer loads unsupported
    SKELCL_CHECK(false, "compound pointer assignment through memory is not supported");
  }
  emit(Op::Dup);               // [p, p]
  genLoad(lhsType);            // [p, old]
  const TypeId common = assign.rhs->type;
  genConversion(lhsType, common);
  genValue(*assign.rhs);       // [p, old', v]
  genBinaryOp(assign.compoundOp, common);  // [p, res]
  genConversion(common, lhsType);
  emit(Op::StoreSlot, sc);     // [p]
  emit(Op::LoadSlot, sc);      // [p, res]
  genStore(lhsType);           // []
  emit(Op::LoadSlot, sc);      // [res]
}

void Compiler::genUnary(const Unary& unary) {
  switch (unary.op) {
    case UnaryOp::Plus:
      genValue(*unary.operand);
      return;
    case UnaryOp::Minus:
      genValue(*unary.operand);
      emit(isF32(unary.type)   ? Op::NegF32
           : isF64(unary.type) ? Op::NegF64
           : (unary.type == types::Long || unary.type == types::Ulong) ? Op::NegL
                                                                       : Op::NegI);
      return;
    case UnaryOp::Not:
      genCond(*unary.operand);
      emit(Op::LNot);
      return;
    case UnaryOp::BitNot:
      genValue(*unary.operand);
      emit((unary.type == types::Long || unary.type == types::Ulong) ? Op::NotL : Op::NotI);
      return;
    case UnaryOp::Deref:
      genValue(*unary.operand);
      genLoad(unary.type);
      return;
    case UnaryOp::AddrOf:
      genAddr(*unary.operand);
      return;
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec:
      genIncDec(unary);
      return;
  }
}

void Compiler::genValue(const Expr& expr) {
  // Constant folding: pure literal expressions collapse to one push.
  if (expr.kind != ExprKind::IntLit && expr.kind != ExprKind::FloatLit &&
      expr.kind != ExprKind::BoolLit) {
    if (const auto folded = tryFold(expr, types_)) {
      if (folded->isFloat) {
        emit(Op::PushF, 0, 0, 0, folded->f);
      } else {
        emit(Op::PushI, 0, 0, folded->i);
      }
      return;
    }
  }

  switch (expr.kind) {
    case ExprKind::IntLit: {
      const auto& lit = static_cast<const IntLit&>(expr);
      emit(Op::PushI, 0, 0, static_cast<std::int64_t>(lit.value));
      return;
    }
    case ExprKind::FloatLit: {
      const auto& lit = static_cast<const FloatLit&>(expr);
      const double v = lit.isFloat32 ? static_cast<double>(static_cast<float>(lit.value))
                                     : lit.value;
      emit(Op::PushF, 0, 0, 0, v);
      return;
    }
    case ExprKind::BoolLit:
      emit(Op::PushI, 0, 0, static_cast<const BoolLit&>(expr).value ? 1 : 0);
      return;
    case ExprKind::VarRef: {
      const auto& ref = static_cast<const VarRef&>(expr);
      if (ref.isArray) {
        emit(Op::LeaFrame, static_cast<std::int32_t>(ref.frameOffset));  // decay
        return;
      }
      if (ref.home == VarHome::Slot) {
        emit(Op::LoadSlot, ref.slot);
        return;
      }
      emit(Op::LeaFrame, static_cast<std::int32_t>(ref.frameOffset));
      genLoad(expr.type);
      return;
    }
    case ExprKind::Unary:
      genUnary(static_cast<const Unary&>(expr));
      return;
    case ExprKind::Binary: {
      const auto& bin = static_cast<const Binary&>(expr);
      if (bin.op == BinaryOp::LAnd || bin.op == BinaryOp::LOr) {
        // short-circuit evaluation producing int 0/1
        genCond(*bin.lhs);
        const Op shortOp = bin.op == BinaryOp::LAnd ? Op::Jz : Op::Jnz;
        const std::size_t toShort = emitJumpPlaceholder(shortOp);
        genCond(*bin.rhs);
        emit(Op::BoolNorm);
        const std::size_t toEnd = emitJumpPlaceholder(Op::Jmp);
        patchJump(toShort);
        emit(Op::PushI, 0, 0, bin.op == BinaryOp::LAnd ? 0 : 1);
        patchJump(toEnd);
        return;
      }
      if (types_.isPointer(bin.operandType) &&
          (bin.op == BinaryOp::Add || bin.op == BinaryOp::Sub)) {
        // pointer +/- integer
        const bool ptrOnLeft = types_.isPointer(bin.lhs->type);
        const Expr& ptrSide = ptrOnLeft ? *bin.lhs : *bin.rhs;
        const Expr& intSide = ptrOnLeft ? *bin.rhs : *bin.lhs;
        genValue(ptrSide);
        genValue(intSide);
        if (bin.op == BinaryOp::Sub) emit(Op::NegI);
        emit(Op::PtrAdd,
             static_cast<std::int32_t>(types_.sizeOf(types_.pointee(bin.operandType))));
        return;
      }
      genValue(*bin.lhs);
      genValue(*bin.rhs);
      genBinaryOp(bin.op, bin.operandType);
      return;
    }
    case ExprKind::Assign:
      genAssign(static_cast<const Assign&>(expr));
      return;
    case ExprKind::Ternary: {
      const auto& t = static_cast<const Ternary&>(expr);
      genCond(*t.cond);
      const std::size_t toElse = emitJumpPlaceholder(Op::Jz);
      genValue(*t.thenExpr);
      const std::size_t toEnd = emitJumpPlaceholder(Op::Jmp);
      patchJump(toElse);
      genValue(*t.elseExpr);
      patchJump(toEnd);
      return;
    }
    case ExprKind::Call: {
      const auto& call = static_cast<const Call&>(expr);
      for (const auto& arg : call.args) genValue(*arg);
      if (call.functionIndex >= 0) {
        emit(Op::CallFn, call.functionIndex);
      } else {
        emit(Op::CallBuiltin, call.builtinId, static_cast<std::int32_t>(call.args.size()));
      }
      return;
    }
    case ExprKind::Index:
    case ExprKind::Member:
      genAddr(expr);
      genLoad(expr.type);
      return;
    case ExprKind::Cast: {
      const auto& cast = static_cast<const Cast&>(expr);
      genValue(*cast.operand);
      genConversion(cast.operand->type, cast.type);
      return;
    }
    case ExprKind::SizeofType:
      emit(Op::PushI, 0, 0,
           static_cast<std::int64_t>(static_cast<const SizeofType&>(expr).size));
      return;
  }
}

}  // namespace skelcl::kc
