// Hand-written lexer for the kernel language.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "kernelc/token.hpp"

namespace skelcl::kc {

class Lexer {
 public:
  explicit Lexer(std::string_view source);

  /// Tokenize the whole input; the last token is always Tok::Eof.
  /// Throws CompileError on malformed input (bad character, unterminated
  /// comment, malformed number).
  std::vector<Token> run();

 private:
  Token next();
  char peek(int ahead = 0) const;
  char advance();
  bool match(char expected);
  void skipWhitespaceAndComments();
  Token makeNumber();
  Token makeIdentifierOrKeyword();
  [[noreturn]] void fail(const std::string& message) const;

  std::string_view src_;
  std::size_t pos_ = 0;
  SourceLoc loc_;
  SourceLoc tokenStart_;
};

}  // namespace skelcl::kc
