// Peephole pass: rewrites hot naive stack idioms into superinstructions.
//
// Every rewrite is observably identical to the naive window it replaces —
// same stack effect, same slot effects, same faults — and carries a `weight`
// equal to the window length, so the retired-instruction count (which drives
// sim::System::reserveKernel timing and sched::measureCost) is exactly what
// the unfused program would report.  Disabled by SKELCL_KC_OPT=0.
#pragma once

#include "kernelc/bytecode.hpp"

namespace skelcl::kc {

/// Rewrite `fn.code` in place.  Safe to call on any compiled function;
/// windows containing branch targets are left alone and all jump targets are
/// remapped.
void peepholeOptimize(FunctionCode& fn);

/// True if `op` is a comparison that CmpJz/CmpJnz can fuse.
bool isFusableCompare(Op op);

}  // namespace skelcl::kc
