#include "kernelc/encode.hpp"

#include <cstring>
#include <limits>
#include <unordered_map>

#include "base/error.hpp"
#include "kernelc/builtins.hpp"

namespace skelcl::kc {

namespace {

struct Effect {
  int delta = 0;         ///< net stack change
  int peak = 0;          ///< transient growth above the entry height (>= 0)
  bool terminal = false; ///< Ret / RetVoid / Trap
  bool jumps = false;    ///< has a branch target in `a`
  bool falls = true;     ///< control may continue to the next instruction
};

Effect effectOf(const Insn& insn, const std::vector<FunctionCode>& fns) {
  Effect e;
  switch (insn.op) {
    case Op::PushI: case Op::PushF: case Op::PushCI: case Op::PushCF:
    case Op::LoadSlot: case Op::LeaFrame: case Op::Dup:
      e.delta = 1; e.peak = 1; return e;
    case Op::LoadSlot2:
      e.delta = 2; e.peak = 2; return e;
    case Op::LoadSlotElemI32: case Op::LoadSlotElemU32: case Op::LoadSlotElemF32:
    case Op::LoadSlotElemF64: case Op::LoadSlotElemI64:
      e.delta = 1; e.peak = 1; return e;
    case Op::StoreSlot: case Op::Drop:
      e.delta = -1; return e;
    case Op::LoadI32: case Op::LoadU32: case Op::LoadF32: case Op::LoadF64:
    case Op::LoadI64:
      return e;  // pop ptr, push value
    case Op::StoreI32: case Op::StoreI64: case Op::StoreF32: case Op::StoreF64:
    case Op::MemCopy:
      e.delta = -2; return e;
    case Op::PtrAdd:
      e.delta = -1; return e;
    case Op::PtrAddImm: case Op::IncSlotI:
      return e;
    case Op::LoadElemI32: case Op::LoadElemU32: case Op::LoadElemF32:
    case Op::LoadElemF64: case Op::LoadElemI64:
      e.delta = -1; return e;
    case Op::TeeStoreI32: case Op::TeeStoreI64: case Op::TeeStoreF32:
    case Op::TeeStoreF64:
      e.delta = -2; return e;
    case Op::AddI: case Op::SubI: case Op::MulI: case Op::DivI: case Op::RemI:
    case Op::DivU: case Op::RemU: case Op::AndI: case Op::OrI: case Op::XorI:
    case Op::ShlI: case Op::ShrI: case Op::ShrU:
    case Op::AddL: case Op::SubL: case Op::MulL: case Op::DivL: case Op::RemL:
    case Op::DivUL: case Op::RemUL: case Op::AndL: case Op::OrL: case Op::XorL:
    case Op::ShlL: case Op::ShrL: case Op::ShrUL:
    case Op::AddF32: case Op::SubF32: case Op::MulF32: case Op::DivF32:
    case Op::AddF64: case Op::SubF64: case Op::MulF64: case Op::DivF64:
    case Op::EqI: case Op::NeI: case Op::LtI: case Op::LeI: case Op::GtI: case Op::GeI:
    case Op::LtU: case Op::LeU: case Op::GtU: case Op::GeU:
    case Op::LtUL: case Op::LeUL: case Op::GtUL: case Op::GeUL:
    case Op::EqF: case Op::NeF: case Op::LtF: case Op::LeF: case Op::GtF: case Op::GeF:
    case Op::EqP: case Op::NeP:
      e.delta = -1; return e;
    case Op::NegI: case Op::NotI: case Op::NegL: case Op::NotL:
    case Op::NegF32: case Op::NegF64: case Op::LNot:
    case Op::I2F32: case Op::I2F64: case Op::U2F32: case Op::U2F64:
    case Op::UL2F32: case Op::UL2F64: case Op::F2I: case Op::F2U: case Op::F2L:
    case Op::F2UL: case Op::F64toF32: case Op::I2U: case Op::U2I: case Op::BoolNorm:
      return e;
    case Op::Jmp:
      e.jumps = true; e.falls = false; return e;
    case Op::Jz: case Op::Jnz:
      e.delta = -1; e.jumps = true; return e;
    case Op::CmpJz: case Op::CmpJnz:
      e.delta = -2; e.jumps = true; return e;
    case Op::CallFn: {
      const auto& callee = fns.at(static_cast<std::size_t>(insn.a));
      const int ret = callee.returnType != types::Void ? 1 : 0;
      e.delta = ret - static_cast<int>(callee.paramTypes.size());
      e.peak = e.delta > 0 ? e.delta : 0;
      return e;
    }
    case Op::CallBuiltin: {
      const BuiltinDef& def = builtinTable().at(static_cast<std::size_t>(insn.a));
      const int ret = def.ret != BType::Void ? 1 : 0;
      e.delta = ret - insn.b;
      e.peak = e.delta > 0 ? e.delta : 0;
      return e;
    }
    case Op::Ret:
      e.delta = -1; e.terminal = true; e.falls = false; return e;
    case Op::RetVoid: case Op::Trap:
      e.terminal = true; e.falls = false; return e;
  }
  SKELCL_CHECK(false, "unhandled opcode in effectOf");
  return e;
}

/// Forward dataflow over the (reducible, compiler-generated) CFG: the stack
/// height at each pc is unique; maxStack is the highest transient peak.
int computeMaxStack(const FunctionCode& fn, const std::vector<FunctionCode>& fns) {
  const std::size_t n = fn.code.size();
  std::vector<int> height(n, -1);
  std::vector<std::size_t> work;
  int maxPeak = 0;
  if (n == 0) return 0;
  height[0] = 0;
  work.push_back(0);
  auto propagate = [&](std::size_t pc, int h) {
    SKELCL_CHECK(pc < n, "control flow runs off the end of the function");
    if (height[pc] < 0) {
      height[pc] = h;
      work.push_back(pc);
    } else {
      SKELCL_CHECK(height[pc] == h, "inconsistent stack height in '" + fn.name + "'");
    }
  };
  while (!work.empty()) {
    const std::size_t pc = work.back();
    work.pop_back();
    const Insn& insn = fn.code[pc];
    const int h = height[pc];
    const Effect e = effectOf(insn, fns);
    if (h + e.peak > maxPeak) maxPeak = h + e.peak;
    const int after = h + e.delta;
    SKELCL_CHECK(after >= 0, "stack underflow in '" + fn.name + "'");
    if (e.terminal) continue;
    if (e.jumps) propagate(static_cast<std::size_t>(insn.a), after);
    if (e.falls) propagate(pc + 1, after);
  }
  return maxPeak;
}

bool fitsI32(std::int64_t v) {
  return v >= std::numeric_limits<std::int32_t>::min() &&
         v <= std::numeric_limits<std::int32_t>::max();
}

void packFunction(FunctionCode& fn) {
  fn.packed.clear();
  fn.pool.clear();
  fn.packed.reserve(fn.code.size());
  std::unordered_map<std::uint64_t, std::int32_t> poolIndex;
  auto addPool = [&](std::uint64_t bits) {
    const auto [it, inserted] =
        poolIndex.emplace(bits, static_cast<std::int32_t>(fn.pool.size()));
    if (inserted) fn.pool.push_back(bits);
    return it->second;
  };
  for (const Insn& insn : fn.code) {
    PackedInsn p{insn.op, insn.weight, 0, insn.a, insn.b, 0};
    switch (insn.op) {
      case Op::PushI:
        if (fitsI32(insn.imm)) {
          p.a = static_cast<std::int32_t>(insn.imm);
        } else {
          p.op = Op::PushCI;
          p.k = addPool(static_cast<std::uint64_t>(insn.imm));
        }
        break;
      case Op::PushF: {
        std::uint64_t bits;
        std::memcpy(&bits, &insn.fimm, sizeof bits);
        p.op = Op::PushCF;
        p.k = addPool(bits);
        break;
      }
      case Op::PtrAddImm:
      case Op::IncSlotI:
        // peephole guarantees the immediate fits in 32 bits
        p.b = static_cast<std::int32_t>(insn.imm);
        break;
      case Op::LoadSlotElemI32: case Op::LoadSlotElemU32: case Op::LoadSlotElemF32:
      case Op::LoadSlotElemF64: case Op::LoadSlotElemI64:
        // peephole guarantees the element size fits in 16 bits
        p.c = static_cast<std::uint16_t>(insn.imm);
        break;
      case Op::CmpJz:
      case Op::CmpJnz:
        p.c = static_cast<std::uint16_t>(insn.b);  // the fused comparison op
        p.b = 0;
        break;
      default:
        break;
    }
    fn.packed.push_back(p);
  }
}

/// Work-group-batched execution interleaves the work-items of a group
/// instruction-by-instruction, reordering their memory accesses relative to
/// sequential per-item execution.  Restrict it to kernels where that
/// reordering is unobservable: no calls into other functions (whose bodies
/// we'd have to analyze transitively), no frame memory (per-lane frames
/// don't fit the strided arena), and no ordering-sensitive builtins.
bool computeBatchable(const FunctionCode& fn) {
  if (!fn.isKernel || fn.frameBytes != 0) return false;
  for (const Insn& insn : fn.code) {
    switch (insn.op) {
      case Op::CallFn:
      case Op::LeaFrame:
      case Op::MemCopy:
      case Op::Ret:
        return false;
      case Op::CallBuiltin: {
        const BuiltinDef& def = builtinTable().at(static_cast<std::size_t>(insn.a));
        if (std::strcmp(def.name, "barrier") == 0) return false;
        if (std::strncmp(def.name, "atomic_", 7) == 0) return false;
        break;
      }
      default:
        break;
    }
  }
  return true;
}

}  // namespace

void finalizeFunctions(std::vector<FunctionCode>& fns) {
  for (FunctionCode& fn : fns) {
    fn.maxStack = computeMaxStack(fn, fns);
    packFunction(fn);
    fn.batchable = computeBatchable(fn);
  }
}

}  // namespace skelcl::kc
