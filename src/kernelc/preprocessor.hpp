// A minimal preprocessor for the kernel language: object-like `#define` /
// `#undef`.  OpenCL kernels conventionally receive tuning constants this way
// (and SkelCL-style code generators splice them in), so the compiler accepts
// them.  Function-like macros, #include and conditionals are rejected with a
// diagnostic rather than silently ignored.
#pragma once

#include <string>

namespace skelcl::kc {

/// Expand directives and macro uses.  Directive lines are blanked (not
/// removed) so diagnostics keep their line numbers.  Throws CompileError on
/// malformed or unsupported directives.
std::string preprocess(const std::string& source);

}  // namespace skelcl::kc
