#include "kernelc/types.hpp"

#include <algorithm>

namespace skelcl::kc {

TypeTable::TypeTable() {
  // Order must match the constants in namespace types.
  for (Scalar s : {Scalar::Void, Scalar::Bool, Scalar::Int, Scalar::Uint, Scalar::Float,
                   Scalar::Double, Scalar::Long, Scalar::Ulong}) {
    Entry e;
    e.kind = Kind::Scalar;
    e.scalar = s;
    entries_.push_back(e);
  }
}

const TypeTable::Entry& TypeTable::entry(TypeId t) const {
  SKELCL_CHECK(t >= 0 && t < static_cast<TypeId>(entries_.size()), "invalid TypeId");
  return entries_[static_cast<std::size_t>(t)];
}

TypeId TypeTable::pointerTo(TypeId t) {
  SKELCL_CHECK(t != types::Void, "pointer to void is not supported");
  SKELCL_CHECK(t != types::Bool, "pointer to bool is not supported");
  for (TypeId i = 0; i < static_cast<TypeId>(entries_.size()); ++i) {
    const Entry& e = entries_[static_cast<std::size_t>(i)];
    if (e.kind == Kind::Pointer && e.pointee == t) return i;
  }
  Entry e;
  e.kind = Kind::Pointer;
  e.pointee = t;
  entries_.push_back(e);
  return static_cast<TypeId>(entries_.size() - 1);
}

TypeId TypeTable::addStruct(const std::string& name,
                            const std::vector<std::pair<std::string, TypeId>>& fields) {
  SKELCL_CHECK(findStruct(name) == types::Invalid, "duplicate struct '" + name + "'");
  StructLayout layout;
  layout.name = name;
  std::uint32_t offset = 0;
  for (const auto& [fieldName, fieldType] : fields) {
    SKELCL_CHECK(!isPointer(fieldType), "pointer members are not allowed in device structs");
    SKELCL_CHECK(fieldType != types::Void && fieldType != types::Bool,
                 "invalid struct member type");
    SKELCL_CHECK(layout.find(fieldName) == nullptr,
                 "duplicate member '" + fieldName + "' in struct '" + name + "'");
    const std::uint32_t align = alignOf(fieldType);
    offset = (offset + align - 1) / align * align;
    layout.fields.push_back(StructField{fieldName, fieldType, offset});
    offset += sizeOf(fieldType);
    layout.align = std::max(layout.align, align);
  }
  layout.size = std::max(1u, (offset + layout.align - 1) / layout.align * layout.align);

  structs_.push_back(std::move(layout));
  Entry e;
  e.kind = Kind::Struct;
  e.structIndex = static_cast<std::int32_t>(structs_.size() - 1);
  entries_.push_back(e);
  return static_cast<TypeId>(entries_.size() - 1);
}

TypeId TypeTable::findStruct(const std::string& name) const {
  for (TypeId i = 0; i < static_cast<TypeId>(entries_.size()); ++i) {
    const Entry& e = entries_[static_cast<std::size_t>(i)];
    if (e.kind == Kind::Struct &&
        structs_[static_cast<std::size_t>(e.structIndex)].name == name) {
      return i;
    }
  }
  return types::Invalid;
}

bool TypeTable::isScalar(TypeId t) const { return entry(t).kind == Kind::Scalar; }
bool TypeTable::isPointer(TypeId t) const { return entry(t).kind == Kind::Pointer; }
bool TypeTable::isStruct(TypeId t) const { return entry(t).kind == Kind::Struct; }

Scalar TypeTable::scalarKind(TypeId t) const {
  SKELCL_CHECK(isScalar(t), "not a scalar type");
  return entry(t).scalar;
}

TypeId TypeTable::pointee(TypeId t) const {
  SKELCL_CHECK(isPointer(t), "not a pointer type");
  return entry(t).pointee;
}

const StructLayout& TypeTable::structLayout(TypeId t) const {
  SKELCL_CHECK(isStruct(t), "not a struct type");
  return structs_[static_cast<std::size_t>(entry(t).structIndex)];
}

std::uint32_t TypeTable::sizeOf(TypeId t) const {
  const Entry& e = entry(t);
  switch (e.kind) {
    case Kind::Scalar:
      switch (e.scalar) {
        case Scalar::Void: return 0;
        case Scalar::Bool: return 4;  // int-like; bool never appears in structs
        case Scalar::Int:
        case Scalar::Uint:
        case Scalar::Float: return 4;
        case Scalar::Double:
        case Scalar::Long:
        case Scalar::Ulong: return 8;
      }
      return 0;
    case Kind::Pointer: return 8;
    case Kind::Struct: return structs_[static_cast<std::size_t>(e.structIndex)].size;
  }
  return 0;
}

std::uint32_t TypeTable::alignOf(TypeId t) const {
  const Entry& e = entry(t);
  if (e.kind == Kind::Struct) return structs_[static_cast<std::size_t>(e.structIndex)].align;
  return std::max(1u, sizeOf(t));
}

std::string TypeTable::name(TypeId t) const {
  if (t == types::Invalid) return "<invalid>";
  const Entry& e = entry(t);
  switch (e.kind) {
    case Kind::Scalar:
      switch (e.scalar) {
        case Scalar::Void: return "void";
        case Scalar::Bool: return "bool";
        case Scalar::Int: return "int";
        case Scalar::Uint: return "uint";
        case Scalar::Float: return "float";
        case Scalar::Double: return "double";
        case Scalar::Long: return "long";
        case Scalar::Ulong: return "ulong";
      }
      return "?";
    case Kind::Pointer: return name(e.pointee) + "*";
    case Kind::Struct:
      return "struct " + structs_[static_cast<std::size_t>(e.structIndex)].name;
  }
  return "?";
}

TypeId TypeTable::arithmeticCommonType(TypeId a, TypeId b) const {
  SKELCL_CHECK(isArithmetic(a) && isArithmetic(b), "arithmetic types required");
  if (a == types::Double || b == types::Double) return types::Double;
  if (a == types::Float || b == types::Float) return types::Float;
  if (a == types::Ulong || b == types::Ulong) return types::Ulong;
  if (a == types::Long || b == types::Long) return types::Long;
  if (a == types::Uint || b == types::Uint) return types::Uint;
  return types::Int;  // bool promotes to int
}

}  // namespace skelcl::kc
