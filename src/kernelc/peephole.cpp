#include "kernelc/peephole.hpp"

#include <limits>
#include <vector>

#include "base/error.hpp"

namespace skelcl::kc {

namespace {

bool isBranch(Op op) {
  return op == Op::Jmp || op == Op::Jz || op == Op::Jnz || op == Op::CmpJz ||
         op == Op::CmpJnz;
}

/// Typed memory load -> its two fused forms (0 if not fusable).
Op loadElemFor(Op load) {
  switch (load) {
    case Op::LoadI32: return Op::LoadElemI32;
    case Op::LoadU32: return Op::LoadElemU32;
    case Op::LoadF32: return Op::LoadElemF32;
    case Op::LoadF64: return Op::LoadElemF64;
    case Op::LoadI64: return Op::LoadElemI64;
    default: return Op::Trap;
  }
}

Op loadSlotElemFor(Op load) {
  switch (load) {
    case Op::LoadI32: return Op::LoadSlotElemI32;
    case Op::LoadU32: return Op::LoadSlotElemU32;
    case Op::LoadF32: return Op::LoadSlotElemF32;
    case Op::LoadF64: return Op::LoadSlotElemF64;
    case Op::LoadI64: return Op::LoadSlotElemI64;
    default: return Op::Trap;
  }
}

Op teeStoreFor(Op store) {
  switch (store) {
    case Op::StoreI32: return Op::TeeStoreI32;
    case Op::StoreI64: return Op::TeeStoreI64;
    case Op::StoreF32: return Op::TeeStoreF32;
    case Op::StoreF64: return Op::TeeStoreF64;
    default: return Op::Trap;
  }
}

bool isTypedLoad(Op op) { return loadElemFor(op) != Op::Trap; }
bool isTypedStore(Op op) { return teeStoreFor(op) != Op::Trap; }

bool fitsI32(std::int64_t v) {
  return v >= std::numeric_limits<std::int32_t>::min() &&
         v <= std::numeric_limits<std::int32_t>::max();
}

Insn make(Op op, std::int32_t a, std::int32_t b, std::int64_t imm, std::uint8_t weight) {
  Insn insn;
  insn.op = op;
  insn.a = a;
  insn.b = b;
  insn.imm = imm;
  insn.weight = weight;
  return insn;
}

}  // namespace

bool isFusableCompare(Op op) {
  switch (op) {
    case Op::EqI: case Op::NeI: case Op::LtI: case Op::LeI: case Op::GtI: case Op::GeI:
    case Op::LtU: case Op::LeU: case Op::GtU: case Op::GeU:
    case Op::LtUL: case Op::LeUL: case Op::GtUL: case Op::GeUL:
    case Op::EqF: case Op::NeF: case Op::LtF: case Op::LeF: case Op::GtF: case Op::GeF:
    case Op::EqP: case Op::NeP:
      return true;
    default:
      return false;
  }
}

void peepholeOptimize(FunctionCode& fn) {
  const std::vector<Insn>& code = fn.code;
  const std::size_t n = code.size();
  if (n == 0) return;

  // An instruction that is the target of any branch must stay addressable:
  // fusion windows may *start* at a target but never contain one.
  std::vector<bool> isTarget(n + 1, false);
  for (const Insn& insn : code) {
    if (isBranch(insn.op)) {
      SKELCL_CHECK(insn.a >= 0 && static_cast<std::size_t>(insn.a) <= n,
                   "branch target out of range before peephole");
      isTarget[static_cast<std::size_t>(insn.a)] = true;
    }
  }

  std::vector<Insn> out;
  out.reserve(n);
  // newIndexOf[i] = index in `out` of the (possibly fused) instruction that
  // starts at old index i; -1 for window-interior positions (never targets).
  std::vector<std::int32_t> newIndexOf(n + 1, -1);

  std::size_t i = 0;
  while (i < n) {
    // No branch target strictly inside a window of `len` instructions at i,
    // and the members' summed retired weight must fit the superinstruction's
    // weight field.  (The sum is the window length for compiler-fresh code,
    // but the rewrite pass leaves instructions carrying 0 or >1 weights.)
    auto clear = [&](std::size_t len) {
      if (i + len > n) return false;
      int wsum = 0;
      for (std::size_t j = 0; j < len; ++j) {
        if (j > 0 && isTarget[i + j]) return false;
        wsum += code[i + j].weight;
      }
      return wsum <= 255;
    };
    // Retired weight of the window [i, i+len): summing members (instead of
    // hardcoding the window length) keeps counts exact when fusing rewritten
    // instructions.
    const auto wsum = [&](std::size_t len) {
      int w = 0;
      for (std::size_t j = 0; j < len; ++j) w += code[i + j].weight;
      return static_cast<std::uint8_t>(w);
    };
    const auto op = [&](std::size_t j) { return code[i + j].op; };
    const auto at = [&](std::size_t j) -> const Insn& { return code[i + j]; };

    newIndexOf[i] = static_cast<std::int32_t>(out.size());
    std::size_t consumed = 1;

    // --- length 6: slot increment statements --------------------------------
    // post-inc statement: LoadSlot s; Dup; PushI k; AddI; StoreSlot s; Drop
    if (clear(6) && op(0) == Op::LoadSlot && op(1) == Op::Dup && op(2) == Op::PushI &&
        op(3) == Op::AddI && op(4) == Op::StoreSlot && at(4).a == at(0).a &&
        op(5) == Op::Drop && fitsI32(at(2).imm)) {
      out.push_back(make(Op::IncSlotI, at(0).a, 0, at(2).imm, wsum(6)));
      consumed = 6;
    }
    // pre-inc / i = i + k statement: LoadSlot s; PushI k; AddI; Dup; StoreSlot s; Drop
    else if (clear(6) && op(0) == Op::LoadSlot && op(1) == Op::PushI && op(2) == Op::AddI &&
             op(3) == Op::Dup && op(4) == Op::StoreSlot && at(4).a == at(0).a &&
             op(5) == Op::Drop && fitsI32(at(1).imm)) {
      out.push_back(make(Op::IncSlotI, at(0).a, 0, at(1).imm, wsum(6)));
      consumed = 6;
    }
    // --- length 5: store-through-scratch, result dropped --------------------
    // StoreSlot sc; LoadSlot sc; Store<T>; LoadSlot sc; Drop
    else if (clear(5) && op(0) == Op::StoreSlot && op(1) == Op::LoadSlot &&
             at(1).a == at(0).a && isTypedStore(op(2)) && op(3) == Op::LoadSlot &&
             at(3).a == at(0).a && op(4) == Op::Drop) {
      out.push_back(make(teeStoreFor(op(2)), at(0).a, 0, 0, wsum(5)));
      consumed = 5;
    }
    // --- length 4: whole array read from slots ------------------------------
    // LoadSlot p; LoadSlot i; PtrAdd sz; Load<T>
    else if (clear(4) && op(0) == Op::LoadSlot && op(1) == Op::LoadSlot &&
             op(2) == Op::PtrAdd && isTypedLoad(op(3)) && at(2).a >= 0 &&
             at(2).a <= 0xFFFF) {
      out.push_back(make(loadSlotElemFor(op(3)), at(0).a, at(1).a, at(2).a, wsum(4)));
      consumed = 4;
    }
    // bare slot increment: LoadSlot s; PushI k; AddI; StoreSlot s
    else if (clear(4) && op(0) == Op::LoadSlot && op(1) == Op::PushI && op(2) == Op::AddI &&
             op(3) == Op::StoreSlot && at(3).a == at(0).a && fitsI32(at(1).imm)) {
      out.push_back(make(Op::IncSlotI, at(0).a, 0, at(1).imm, wsum(4)));
      consumed = 4;
    }
    // --- length 3 -----------------------------------------------------------
    // store-through-scratch, result used: StoreSlot sc; LoadSlot sc; Store<T>
    else if (clear(3) && op(0) == Op::StoreSlot && op(1) == Op::LoadSlot &&
             at(1).a == at(0).a && isTypedStore(op(2))) {
      out.push_back(make(teeStoreFor(op(2)), at(0).a, 0, 0, wsum(3)));
      consumed = 3;
    }
    // assignment statement: Dup; StoreSlot s; Drop == plain StoreSlot (w=3)
    else if (clear(3) && op(0) == Op::Dup && op(1) == Op::StoreSlot && op(2) == Op::Drop) {
      out.push_back(make(Op::StoreSlot, at(1).a, 0, 0, wsum(3)));
      consumed = 3;
    }
    // --- length 2 -----------------------------------------------------------
    // PtrAdd sz; Load<T>  (index already on the stack)
    else if (clear(2) && op(0) == Op::PtrAdd && isTypedLoad(op(1)) && at(0).a >= 0) {
      out.push_back(make(loadElemFor(op(1)), at(0).a, 0, 0, wsum(2)));
      consumed = 2;
    }
    // PushI k; PtrAdd sz  (constant index, e.g. struct field offsets)
    else if (clear(2) && op(0) == Op::PushI && op(1) == Op::PtrAdd && fitsI32(at(0).imm)) {
      out.push_back(make(Op::PtrAddImm, at(1).a, 0, at(0).imm, wsum(2)));
      consumed = 2;
    }
    // compare; Jz / Jnz  ->  fused conditional branch
    else if (clear(2) && isFusableCompare(op(0)) && (op(1) == Op::Jz || op(1) == Op::Jnz)) {
      out.push_back(make(op(1) == Op::Jz ? Op::CmpJz : Op::CmpJnz, at(1).a,
                         static_cast<std::int32_t>(op(0)), 0, wsum(2)));
      consumed = 2;
    }
    // LoadSlot a; LoadSlot b  (binary-operator operands)
    else if (clear(2) && op(0) == Op::LoadSlot && op(1) == Op::LoadSlot) {
      out.push_back(make(Op::LoadSlot2, at(0).a, at(1).a, 0, wsum(2)));
      consumed = 2;
    } else {
      out.push_back(code[i]);
    }
    i += consumed;
  }
  newIndexOf[n] = static_cast<std::int32_t>(out.size());

  // Remap every branch target to the new instruction indices.
  for (Insn& insn : out) {
    if (isBranch(insn.op)) {
      const std::int32_t mapped = newIndexOf[static_cast<std::size_t>(insn.a)];
      SKELCL_CHECK(mapped >= 0, "branch target landed inside a fused window");
      insn.a = mapped;
    }
  }
  fn.code = std::move(out);
}

}  // namespace skelcl::kc
