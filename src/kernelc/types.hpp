// Type system of the kernel language.
//
// Types are interned in a TypeTable and referenced by TypeId so that AST
// annotations stay trivially copyable.  Struct layout follows the natural
// alignment rules of x86-64 C++ for the allowed member types (int/uint/
// float/double and nested structs), which is what makes host-side C++
// structs and device-side kernel structs share one memory layout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/error.hpp"

namespace skelcl::kc {

using TypeId = std::int32_t;

enum class Scalar : std::int8_t { Void, Bool, Int, Uint, Float, Double, Long, Ulong };

/// Well-known TypeIds; the TypeTable constructor guarantees these values.
namespace types {
inline constexpr TypeId Void = 0;
inline constexpr TypeId Bool = 1;
inline constexpr TypeId Int = 2;
inline constexpr TypeId Uint = 3;
inline constexpr TypeId Float = 4;
inline constexpr TypeId Double = 5;
inline constexpr TypeId Long = 6;
inline constexpr TypeId Ulong = 7;
inline constexpr TypeId Invalid = -1;
}  // namespace types

struct StructField {
  std::string name;
  TypeId type = types::Invalid;
  std::uint32_t offset = 0;  ///< byte offset within the struct
};

struct StructLayout {
  std::string name;
  std::vector<StructField> fields;
  std::uint32_t size = 0;
  std::uint32_t align = 1;

  const StructField* find(const std::string& fieldName) const {
    for (const auto& f : fields) {
      if (f.name == fieldName) return &f;
    }
    return nullptr;
  }
};

class TypeTable {
 public:
  TypeTable();

  /// Intern `T*` for pointee `t` (idempotent).
  TypeId pointerTo(TypeId t);

  /// Register a struct with the given fields; computes layout.
  /// Throws CompileError-free UsageError on duplicate names (callers in sema
  /// wrap with source locations).
  TypeId addStruct(const std::string& name, const std::vector<std::pair<std::string, TypeId>>& fields);

  /// Look up a struct type by name; returns types::Invalid if unknown.
  TypeId findStruct(const std::string& name) const;

  bool isScalar(TypeId t) const;
  bool isPointer(TypeId t) const;
  bool isStruct(TypeId t) const;
  bool isVoid(TypeId t) const { return t == types::Void; }
  bool isInteger(TypeId t) const {
    return t == types::Int || t == types::Uint || t == types::Bool || t == types::Long ||
           t == types::Ulong;
  }
  bool isFloating(TypeId t) const { return t == types::Float || t == types::Double; }
  bool isArithmetic(TypeId t) const { return isInteger(t) || isFloating(t); }

  Scalar scalarKind(TypeId t) const;
  TypeId pointee(TypeId t) const;
  const StructLayout& structLayout(TypeId t) const;

  std::uint32_t sizeOf(TypeId t) const;
  std::uint32_t alignOf(TypeId t) const;

  /// "float", "int*", "struct Event", ... for diagnostics.
  std::string name(TypeId t) const;

  /// The common type of a usual-arithmetic-conversion between two arithmetic
  /// types (bool promotes to int).
  TypeId arithmeticCommonType(TypeId a, TypeId b) const;

 private:
  enum class Kind : std::int8_t { Scalar, Pointer, Struct };
  struct Entry {
    Kind kind;
    Scalar scalar = Scalar::Void;   // Kind::Scalar
    TypeId pointee = types::Invalid;  // Kind::Pointer
    std::int32_t structIndex = -1;    // Kind::Struct
  };

  const Entry& entry(TypeId t) const;

  std::vector<Entry> entries_;
  std::vector<StructLayout> structs_;
};

}  // namespace skelcl::kc
