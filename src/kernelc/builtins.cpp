#include "kernelc/builtins.hpp"

#include <atomic>
#include <cmath>

#include <algorithm>
#include <bit>
#include <cstring>

namespace skelcl::kc {

namespace {

// --- work-item queries ------------------------------------------------------

Slot bGetGlobalId(BuiltinCtx& ctx, const Slot* args) {
  return Slot::fromInt(args[0].i == 0 ? ctx.globalId() : 0);
}
Slot bGetGlobalSize(BuiltinCtx& ctx, const Slot* args) {
  return Slot::fromInt(args[0].i == 0 ? ctx.globalSize() : 1);
}
Slot bGetLocalId(BuiltinCtx&, const Slot*) { return Slot::fromInt(0); }
Slot bGetLocalSize(BuiltinCtx&, const Slot*) { return Slot::fromInt(1); }
Slot bGetGroupId(BuiltinCtx& ctx, const Slot* args) { return bGetGlobalId(ctx, args); }
Slot bGetNumGroups(BuiltinCtx& ctx, const Slot* args) { return bGetGlobalSize(ctx, args); }
Slot bBarrier(BuiltinCtx&, const Slot*) { return Slot(); }  // work-group size 1

// --- float math (re-round to float precision) -------------------------------

template <double (*F)(double)>
Slot unaryF32(BuiltinCtx&, const Slot* args) {
  return Slot::fromFloat(static_cast<float>(F(args[0].f)));
}
template <double (*F)(double)>
Slot unaryF64(BuiltinCtx&, const Slot* args) {
  return Slot::fromFloat(F(args[0].f));
}
template <double (*F)(double, double)>
Slot binaryF32(BuiltinCtx&, const Slot* args) {
  return Slot::fromFloat(static_cast<float>(F(args[0].f, args[1].f)));
}
template <double (*F)(double, double)>
Slot binaryF64(BuiltinCtx&, const Slot* args) {
  return Slot::fromFloat(F(args[0].f, args[1].f));
}

double dRsqrt(double x) { return 1.0 / std::sqrt(x); }
double dLog2(double x) { return std::log2(x); }

Slot bClampF(BuiltinCtx&, const Slot* args) {
  return Slot::fromFloat(
      static_cast<float>(std::min(std::max(args[0].f, args[1].f), args[2].f)));
}
Slot bClampI(BuiltinCtx&, const Slot* args) {
  return Slot::fromInt(std::min(std::max(args[0].i, args[1].i), args[2].i));
}
Slot bMixF(BuiltinCtx&, const Slot* args) {
  return Slot::fromFloat(
      static_cast<float>(args[0].f + (args[1].f - args[0].f) * args[2].f));
}
Slot bMinI(BuiltinCtx&, const Slot* args) { return Slot::fromInt(std::min(args[0].i, args[1].i)); }
Slot bMaxI(BuiltinCtx&, const Slot* args) { return Slot::fromInt(std::max(args[0].i, args[1].i)); }
Slot bAbsI(BuiltinCtx&, const Slot* args) { return Slot::fromInt(args[0].i < 0 ? -args[0].i : args[0].i); }
Slot bIsNan(BuiltinCtx&, const Slot* args) { return Slot::fromInt(std::isnan(args[0].f) ? 1 : 0); }
Slot bIsInf(BuiltinCtx&, const Slot* args) { return Slot::fromInt(std::isinf(args[0].f) ? 1 : 0); }

// --- bit reinterpretation ----------------------------------------------------

Slot bAsInt(BuiltinCtx&, const Slot* args) {
  const float f = static_cast<float>(args[0].f);
  return Slot::fromInt(static_cast<std::int32_t>(std::bit_cast<std::uint32_t>(f)));
}
Slot bAsFloat(BuiltinCtx&, const Slot* args) {
  const auto bits = static_cast<std::uint32_t>(args[0].i);
  return Slot::fromFloat(std::bit_cast<float>(bits));
}

// --- atomics ------------------------------------------------------------------
//
// Buffer storage is 64-byte aligned and all pointer offsets produced by typed
// loads/stores are multiples of the element size, so atomic_ref alignment
// requirements hold.

Slot bAtomicAddI(BuiltinCtx& ctx, const Slot* args) {
  auto* addr = static_cast<std::int32_t*>(ctx.resolve(args[0].p, 4));
  std::atomic_ref<std::int32_t> ref(*addr);
  const std::int32_t old = ref.fetch_add(static_cast<std::int32_t>(args[1].i));
  return Slot::fromInt(old);
}
Slot bAtomicSubI(BuiltinCtx& ctx, const Slot* args) {
  auto* addr = static_cast<std::int32_t*>(ctx.resolve(args[0].p, 4));
  std::atomic_ref<std::int32_t> ref(*addr);
  const std::int32_t old = ref.fetch_sub(static_cast<std::int32_t>(args[1].i));
  return Slot::fromInt(old);
}
Slot bAtomicIncI(BuiltinCtx& ctx, const Slot* args) {
  auto* addr = static_cast<std::int32_t*>(ctx.resolve(args[0].p, 4));
  std::atomic_ref<std::int32_t> ref(*addr);
  return Slot::fromInt(ref.fetch_add(1));
}
Slot bAtomicMinI(BuiltinCtx& ctx, const Slot* args) {
  auto* addr = static_cast<std::int32_t*>(ctx.resolve(args[0].p, 4));
  std::atomic_ref<std::int32_t> ref(*addr);
  const auto val = static_cast<std::int32_t>(args[1].i);
  std::int32_t cur = ref.load();
  while (val < cur && !ref.compare_exchange_weak(cur, val)) {
  }
  return Slot::fromInt(cur);
}
Slot bAtomicMaxI(BuiltinCtx& ctx, const Slot* args) {
  auto* addr = static_cast<std::int32_t*>(ctx.resolve(args[0].p, 4));
  std::atomic_ref<std::int32_t> ref(*addr);
  const auto val = static_cast<std::int32_t>(args[1].i);
  std::int32_t cur = ref.load();
  while (val > cur && !ref.compare_exchange_weak(cur, val)) {
  }
  return Slot::fromInt(cur);
}
Slot bAtomicCmpXchgI(BuiltinCtx& ctx, const Slot* args) {
  auto* addr = static_cast<std::int32_t*>(ctx.resolve(args[0].p, 4));
  std::atomic_ref<std::int32_t> ref(*addr);
  auto expected = static_cast<std::int32_t>(args[1].i);
  ref.compare_exchange_strong(expected, static_cast<std::int32_t>(args[2].i));
  return Slot::fromInt(expected);  // OpenCL returns the old value
}
/// Float atomic add, emulated with a CAS loop as production OpenCL code does
/// (OpenCL 1.x has no native float atomics; the paper's OSEM kernel needs one
/// for the error-image scatter).
Slot bAtomicAddF(BuiltinCtx& ctx, const Slot* args) {
  auto* addr = static_cast<std::uint32_t*>(ctx.resolve(args[0].p, 4));
  std::atomic_ref<std::uint32_t> ref(*addr);
  const auto delta = static_cast<float>(args[1].f);
  std::uint32_t oldBits = ref.load();
  for (;;) {
    const float oldVal = std::bit_cast<float>(oldBits);
    const std::uint32_t newBits = std::bit_cast<std::uint32_t>(oldVal + delta);
    if (ref.compare_exchange_weak(oldBits, newBits)) return Slot::fromFloat(oldVal);
  }
}

std::vector<BuiltinDef> makeTable() {
  using P = std::vector<BType>;
  std::vector<BuiltinDef> t;

  // work-item geometry
  t.push_back({"get_global_id", BType::Int, P{BType::Int}, bGetGlobalId});
  t.push_back({"get_global_size", BType::Int, P{BType::Int}, bGetGlobalSize});
  t.push_back({"get_local_id", BType::Int, P{BType::Int}, bGetLocalId});
  t.push_back({"get_local_size", BType::Int, P{BType::Int}, bGetLocalSize});
  t.push_back({"get_group_id", BType::Int, P{BType::Int}, bGetGroupId});
  t.push_back({"get_num_groups", BType::Int, P{BType::Int}, bGetNumGroups});
  t.push_back({"barrier", BType::Void, P{BType::Int}, bBarrier});

  // unary math: float overload first (preferred for float args), then double
#define SKELCL_MATH1(NAME, FN)                                              \
  t.push_back({NAME, BType::Float, P{BType::Float}, &unaryF32<FN>});        \
  t.push_back({NAME, BType::Double, P{BType::Double}, &unaryF64<FN>});
  SKELCL_MATH1("sqrt", std::sqrt)
  SKELCL_MATH1("rsqrt", dRsqrt)
  SKELCL_MATH1("fabs", std::fabs)
  SKELCL_MATH1("exp", std::exp)
  SKELCL_MATH1("log", std::log)
  SKELCL_MATH1("log2", dLog2)
  SKELCL_MATH1("sin", std::sin)
  SKELCL_MATH1("cos", std::cos)
  SKELCL_MATH1("tan", std::tan)
  SKELCL_MATH1("atan", std::atan)
  SKELCL_MATH1("floor", std::floor)
  SKELCL_MATH1("ceil", std::ceil)
  SKELCL_MATH1("round", std::round)
#undef SKELCL_MATH1

#define SKELCL_MATH2(NAME, FN)                                                       \
  t.push_back({NAME, BType::Float, P{BType::Float, BType::Float}, &binaryF32<FN>});  \
  t.push_back({NAME, BType::Double, P{BType::Double, BType::Double}, &binaryF64<FN>});
  SKELCL_MATH2("pow", std::pow)
  SKELCL_MATH2("atan2", std::atan2)
  SKELCL_MATH2("fmod", std::fmod)
  SKELCL_MATH2("fmin", std::fmin)
  SKELCL_MATH2("fmax", std::fmax)
#undef SKELCL_MATH2

  // generic min/max/abs/clamp/mix: integer overloads listed first so that
  // all-integer argument lists pick them
  t.push_back({"min", BType::Int, P{BType::Int, BType::Int}, bMinI});
  t.push_back({"min", BType::Float, P{BType::Float, BType::Float}, &binaryF32<std::fmin>});
  t.push_back({"max", BType::Int, P{BType::Int, BType::Int}, bMaxI});
  t.push_back({"max", BType::Float, P{BType::Float, BType::Float}, &binaryF32<std::fmax>});
  t.push_back({"abs", BType::Int, P{BType::Int}, bAbsI});
  t.push_back({"clamp", BType::Int, P{BType::Int, BType::Int, BType::Int}, bClampI});
  t.push_back({"clamp", BType::Float, P{BType::Float, BType::Float, BType::Float}, bClampF});
  t.push_back({"mix", BType::Float, P{BType::Float, BType::Float, BType::Float}, bMixF});
  t.push_back({"isnan", BType::Int, P{BType::Float}, bIsNan});
  t.push_back({"isinf", BType::Int, P{BType::Float}, bIsInf});

  // bit reinterpretation
  t.push_back({"as_int", BType::Int, P{BType::Float}, bAsInt});
  t.push_back({"as_float", BType::Float, P{BType::Int}, bAsFloat});

  // atomics
  t.push_back({"atomic_add", BType::Int, P{BType::PtrInt, BType::Int}, bAtomicAddI});
  t.push_back({"atomic_sub", BType::Int, P{BType::PtrInt, BType::Int}, bAtomicSubI});
  t.push_back({"atomic_inc", BType::Int, P{BType::PtrInt}, bAtomicIncI});
  t.push_back({"atomic_min", BType::Int, P{BType::PtrInt, BType::Int}, bAtomicMinI});
  t.push_back({"atomic_max", BType::Int, P{BType::PtrInt, BType::Int}, bAtomicMaxI});
  t.push_back({"atomic_cmpxchg", BType::Int, P{BType::PtrInt, BType::Int, BType::Int},
               bAtomicCmpXchgI});
  t.push_back({"atomic_add_f", BType::Float, P{BType::PtrFloat, BType::Float}, bAtomicAddF});

  return t;
}

}  // namespace

const std::vector<BuiltinDef>& builtinTable() {
  static const std::vector<BuiltinDef> table = makeTable();
  return table;
}

}  // namespace skelcl::kc
