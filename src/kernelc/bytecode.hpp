// Stack-machine bytecode produced by the compiler and executed by the VM.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernelc/types.hpp"

namespace skelcl::kc {

enum class Op : std::uint8_t {
  // constants
  PushI,   // push imm (int64)
  PushF,   // push fimm (double; already float-rounded for f32 literals)

  // locals (a = slot index)
  LoadSlot,
  StoreSlot,

  // frame memory (a = byte offset within the current frame's memory region)
  LeaFrame,  // push pointer to frame memory + a

  // memory access (pointer operand(s) on the stack)
  LoadI32, LoadU32, LoadF32, LoadF64,      // pop ptr, push value
  LoadI64,                                 // pop ptr, push 64-bit integer
  StoreI32, StoreF32, StoreF64,            // pop value, pop ptr
  StoreI64,                                // pop 64-bit value, pop ptr
  MemCopy,                                 // a = bytes; pop src, pop dst
  PtrAdd,                                  // a = element size; pop index, pop ptr

  // integer arithmetic (32-bit semantics, wrap-around)
  AddI, SubI, MulI, DivI, RemI, NegI,
  DivU, RemU,
  AndI, OrI, XorI, ShlI, ShrI, ShrU, NotI,

  // 64-bit integer arithmetic (long/ulong; slots hold full 64 bits)
  AddL, SubL, MulL, DivL, RemL, NegL,
  DivUL, RemUL,
  AndL, OrL, XorL, ShlL, ShrL, ShrUL, NotL,

  // floating arithmetic
  AddF32, SubF32, MulF32, DivF32, NegF32,
  AddF64, SubF64, MulF64, DivF64, NegF64,

  // comparisons (push int 0/1)
  EqI, NeI, LtI, LeI, GtI, GeI,
  LtU, LeU, GtU, GeU,
  LtUL, LeUL, GtUL, GeUL,  // unsigned 64-bit (ulong); Eq/Ne/signed reuse EqI..GeI
  EqF, NeF, LtF, LeF, GtF, GeF,
  EqP, NeP,
  LNot,

  // conversions
  I2F32, I2F64, U2F32, U2F64,
  UL2F32, UL2F64,  // full 64-bit unsigned -> float/double (long reuses I2F*)
  F2I,   // double slot -> int32 (truncation)
  F2U,   // double slot -> uint32
  F2L,   // double slot -> int64 (truncation)
  F2UL,  // double slot -> uint64
  F64toF32,  // round slot to float precision
  I2U, U2I,  // re-normalize 32-bit views
  BoolNorm,  // nonzero -> 1

  // control flow (a = target instruction index)
  Jmp, Jz, Jnz,

  // calls
  CallFn,       // a = function index (args on stack, left to right)
  CallBuiltin,  // a = builtin id, b = argc
  Ret,          // pop return value
  RetVoid,

  // stack
  Dup, Drop,

  // diagnostics
  Trap,  // a = trap message index (e.g. missing return)
};

const char* opName(Op op);

struct Insn {
  Op op;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int64_t imm = 0;
  double fimm = 0.0;
};

/// One compiled function, ready for execution.
struct FunctionCode {
  std::string name;
  bool isKernel = false;
  TypeId returnType = types::Void;
  std::vector<TypeId> paramTypes;
  int numSlots = 0;           ///< params occupy slots [0, paramTypes.size())
  std::uint32_t frameBytes = 0;  ///< local arrays / addressed locals / structs
  std::vector<Insn> code;
};

}  // namespace skelcl::kc
