// Stack-machine bytecode produced by the compiler and executed by the VM.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernelc/types.hpp"

namespace skelcl::kc {

enum class Op : std::uint8_t {
  // constants
  PushI,   // push imm (int64)
  PushF,   // push fimm (double; already float-rounded for f32 literals)

  // locals (a = slot index)
  LoadSlot,
  StoreSlot,

  // frame memory (a = byte offset within the current frame's memory region)
  LeaFrame,  // push pointer to frame memory + a

  // memory access (pointer operand(s) on the stack)
  LoadI32, LoadU32, LoadF32, LoadF64,      // pop ptr, push value
  LoadI64,                                 // pop ptr, push 64-bit integer
  StoreI32, StoreF32, StoreF64,            // pop value, pop ptr
  StoreI64,                                // pop 64-bit value, pop ptr
  MemCopy,                                 // a = bytes; pop src, pop dst
  PtrAdd,                                  // a = element size; pop index, pop ptr

  // integer arithmetic (32-bit semantics, wrap-around)
  AddI, SubI, MulI, DivI, RemI, NegI,
  DivU, RemU,
  AndI, OrI, XorI, ShlI, ShrI, ShrU, NotI,

  // 64-bit integer arithmetic (long/ulong; slots hold full 64 bits)
  AddL, SubL, MulL, DivL, RemL, NegL,
  DivUL, RemUL,
  AndL, OrL, XorL, ShlL, ShrL, ShrUL, NotL,

  // floating arithmetic
  AddF32, SubF32, MulF32, DivF32, NegF32,
  AddF64, SubF64, MulF64, DivF64, NegF64,

  // comparisons (push int 0/1)
  EqI, NeI, LtI, LeI, GtI, GeI,
  LtU, LeU, GtU, GeU,
  LtUL, LeUL, GtUL, GeUL,  // unsigned 64-bit (ulong); Eq/Ne/signed reuse EqI..GeI
  EqF, NeF, LtF, LeF, GtF, GeF,
  EqP, NeP,
  LNot,

  // conversions
  I2F32, I2F64, U2F32, U2F64,
  UL2F32, UL2F64,  // full 64-bit unsigned -> float/double (long reuses I2F*)
  F2I,   // double slot -> int32 (truncation)
  F2U,   // double slot -> uint32
  F2L,   // double slot -> int64 (truncation)
  F2UL,  // double slot -> uint64
  F64toF32,  // round slot to float precision
  I2U, U2I,  // re-normalize 32-bit views
  BoolNorm,  // nonzero -> 1

  // control flow (a = target instruction index)
  Jmp, Jz, Jnz,

  // calls
  CallFn,       // a = function index (args on stack, left to right)
  CallBuiltin,  // a = builtin id, b = argc
  Ret,          // pop return value
  RetVoid,

  // stack
  Dup, Drop,

  // diagnostics
  Trap,  // a = trap message index (e.g. missing return)

  // -------------------------------------------------------------------------
  // Superinstructions (emitted by the peephole pass, never by the compiler
  // proper).  Each replaces a fixed window of naive instructions; its `weight`
  // equals the window length so retired-instruction accounting — and thus
  // simulated kernel time — is exactly what the unfused program would report.
  // -------------------------------------------------------------------------
  PtrAddImm,       // a = element size, imm = constant index; pop ptr, push ptr+imm*a
  LoadElemI32,     // a = element size; pop index, pop ptr, push typed load
  LoadElemU32,
  LoadElemF32,
  LoadElemF64,
  LoadElemI64,
  LoadSlotElemI32,  // a = pointer slot, b = index slot, imm = element size;
  LoadSlotElemU32,  // push typed load of slot[a][slot[b]]
  LoadSlotElemF32,
  LoadSlotElemF64,
  LoadSlotElemI64,
  TeeStoreI32,     // a = scratch slot; pop value, pop ptr, typed store,
  TeeStoreI64,     // slot[a] = value (the scratch the naive sequence wrote)
  TeeStoreF32,
  TeeStoreF64,
  IncSlotI,        // a = slot, imm = delta; slot[a] = int32(slot[a] + delta)
  LoadSlot2,       // a, b = slots; push slot[a] then slot[b]
  CmpJz,           // b = comparison Op, a = target; pop rhs, pop lhs, branch if false
  CmpJnz,          // b = comparison Op, a = target; branch if true

  // Packed-only constant-pool pushes (produced by the encoder, not the
  // peephole pass): k indexes the function's constant pool.
  PushCI,          // push pool[k] as int64
  PushCF,          // push bit_cast<double>(pool[k])
};

/// Number of opcodes (for tables / exhaustiveness tests).
inline constexpr int kOpCount = static_cast<int>(Op::PushCF) + 1;

const char* opName(Op op);

/// Compiler IR instruction: roomy, easy to pattern-match and disassemble.
/// `weight` is the number of source (naive) instructions this one retires;
/// 1 for everything the compiler emits, >1 for peephole superinstructions,
/// and 0 for code the rewrite pass hoisted out of a loop (the hoisted
/// computation's weight is charged by the in-loop replacement instruction at
/// its original frequency, keeping retired counts pipeline-independent).
struct Insn {
  Op op;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int64_t imm = 0;
  double fimm = 0.0;
  std::uint8_t weight = 1;
};

/// Execution encoding: 16 bytes per instruction (vs 32 for Insn), halving
/// I-cache pressure in the dispatch loop.  Cold 64-bit payloads (big integer
/// immediates, float immediates) move to a side constant pool indexed by `k`;
/// small integer immediates ride inline in `a`/`b`; `c` carries small
/// auxiliary payloads (fused comparison opcode, element sizes).
struct PackedInsn {
  Op op;
  std::uint8_t weight;
  std::uint16_t c;
  std::int32_t a;
  std::int32_t b;
  std::int32_t k;
};
static_assert(sizeof(PackedInsn) == 16, "dispatch encoding must stay 16 bytes");

/// One compiled function, ready for execution.
struct FunctionCode {
  std::string name;
  bool isKernel = false;
  TypeId returnType = types::Void;
  std::vector<TypeId> paramTypes;
  int numSlots = 0;           ///< params occupy slots [0, paramTypes.size())
  std::uint32_t frameBytes = 0;  ///< local arrays / addressed locals / structs
  std::vector<Insn> code;

  // Filled by the encoder (kernelc/encode.cpp) for the optimized pipeline.
  int maxStack = 0;  ///< worst-case operand-stack growth, checked once at entry
  std::vector<PackedInsn> packed;   ///< compact dispatch form of `code`
  std::vector<std::uint64_t> pool;  ///< constant pool referenced by `packed`
  /// True when the kernel can run on the work-group-batched interpreter
  /// (Vm::runKernelBatch): no calls into other functions, no frame memory,
  /// and no builtins whose cross-item ordering is observable (atomics,
  /// barrier).  Computed by the encoder.
  bool batchable = false;
};

}  // namespace skelcl::kc
