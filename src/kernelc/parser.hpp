// Recursive-descent parser producing the AST of docs/KERNEL_LANGUAGE.md.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "kernelc/ast.hpp"
#include "kernelc/token.hpp"

namespace skelcl::kc {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens);

  /// Parse a whole translation unit.  Throws CompileError on syntax errors.
  Program run();

  /// Parse a single expression (used by tests and the REPL-style tools).
  ExprPtr parseExpressionOnly();

 private:
  // token cursor
  const Token& peek(int ahead = 0) const;
  const Token& advance();
  bool check(Tok kind) const { return peek().kind == kind; }
  bool match(Tok kind);
  const Token& expect(Tok kind, const std::string& context);
  [[noreturn]] void fail(const std::string& message) const;

  // types
  bool startsType(int ahead = 0) const;
  TypeSpec parseTypeSpec();

  // top level
  Program::TopLevel parseTopLevel();
  std::unique_ptr<StructDecl> parseStructBody(SourceLoc loc, std::string name);
  std::unique_ptr<FunctionDecl> parseFunction(bool isKernel, TypeSpec retSpec);

  // statements
  StmtPtr parseStatement();
  std::unique_ptr<Block> parseBlock();
  StmtPtr parseDeclStatement();

  // expressions (precedence climbing)
  ExprPtr parseExpression() { return parseAssignment(); }
  ExprPtr parseAssignment();
  ExprPtr parseTernary();
  ExprPtr parseBinary(int minPrecedence);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::unordered_set<std::string> structNames_;
};

}  // namespace skelcl::kc
