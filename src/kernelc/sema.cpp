#include "kernelc/sema.hpp"

#include <algorithm>
#include <limits>

#include "kernelc/builtins.hpp"

namespace skelcl::kc {

namespace {

/// Stops per-function analysis after a diagnostic has been recorded.
struct FunctionAbort {};

/// Walk every expression in a statement tree, calling `fn` on each node
/// (parents before children).
template <typename Fn>
void walkExprs(Expr* expr, const Fn& fn) {
  if (expr == nullptr) return;
  fn(*expr);
  switch (expr->kind) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
    case ExprKind::BoolLit:
    case ExprKind::VarRef:
    case ExprKind::SizeofType:
      return;
    case ExprKind::Unary:
      walkExprs(static_cast<Unary*>(expr)->operand.get(), fn);
      return;
    case ExprKind::Binary: {
      auto* b = static_cast<Binary*>(expr);
      walkExprs(b->lhs.get(), fn);
      walkExprs(b->rhs.get(), fn);
      return;
    }
    case ExprKind::Assign: {
      auto* a = static_cast<Assign*>(expr);
      walkExprs(a->lhs.get(), fn);
      walkExprs(a->rhs.get(), fn);
      return;
    }
    case ExprKind::Ternary: {
      auto* t = static_cast<Ternary*>(expr);
      walkExprs(t->cond.get(), fn);
      walkExprs(t->thenExpr.get(), fn);
      walkExprs(t->elseExpr.get(), fn);
      return;
    }
    case ExprKind::Call: {
      auto* c = static_cast<Call*>(expr);
      for (auto& arg : c->args) walkExprs(arg.get(), fn);
      return;
    }
    case ExprKind::Index: {
      auto* i = static_cast<Index*>(expr);
      walkExprs(i->base.get(), fn);
      walkExprs(i->index.get(), fn);
      return;
    }
    case ExprKind::Member:
      walkExprs(static_cast<Member*>(expr)->base.get(), fn);
      return;
    case ExprKind::Cast:
      walkExprs(static_cast<Cast*>(expr)->operand.get(), fn);
      return;
  }
}

template <typename Fn>
void walkStmtExprs(Stmt* stmt, const Fn& fn) {
  if (stmt == nullptr) return;
  switch (stmt->kind) {
    case StmtKind::Block:
      for (auto& s : static_cast<Block*>(stmt)->statements) walkStmtExprs(s.get(), fn);
      return;
    case StmtKind::Decl:
      for (auto& v : static_cast<DeclStmt*>(stmt)->vars) walkExprs(v.init.get(), fn);
      return;
    case StmtKind::If: {
      auto* s = static_cast<IfStmt*>(stmt);
      walkExprs(s->cond.get(), fn);
      walkStmtExprs(s->thenStmt.get(), fn);
      walkStmtExprs(s->elseStmt.get(), fn);
      return;
    }
    case StmtKind::While: {
      auto* s = static_cast<WhileStmt*>(stmt);
      walkExprs(s->cond.get(), fn);
      walkStmtExprs(s->body.get(), fn);
      return;
    }
    case StmtKind::DoWhile: {
      auto* s = static_cast<DoWhileStmt*>(stmt);
      walkStmtExprs(s->body.get(), fn);
      walkExprs(s->cond.get(), fn);
      return;
    }
    case StmtKind::For: {
      auto* s = static_cast<ForStmt*>(stmt);
      walkStmtExprs(s->init.get(), fn);
      walkExprs(s->cond.get(), fn);
      walkExprs(s->step.get(), fn);
      walkStmtExprs(s->body.get(), fn);
      return;
    }
    case StmtKind::Return:
      walkExprs(static_cast<ReturnStmt*>(stmt)->value.get(), fn);
      return;
    case StmtKind::ExprStmt:
      walkExprs(static_cast<ExprStmt*>(stmt)->expr.get(), fn);
      return;
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Empty:
      return;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

TypeTable Sema::run() {
  for (const auto& def : builtinTable()) builtinNames_.insert(def.name);

  // Pass 1: structs (source order) and function signatures.
  for (auto& decl : program_.decls) {
    try {
      if (decl.structDecl) {
        declareStruct(*decl.structDecl);
      } else {
        collectFunction(*decl.functionDecl);
      }
    } catch (const FunctionAbort&) {
      // diagnostic already recorded; continue with the next declaration
    }
  }

  // Pass 2: function bodies.
  for (auto& decl : program_.decls) {
    if (!decl.functionDecl || decl.functionDecl->functionIndex < 0) continue;
    try {
      analyzeFunction(*decl.functionDecl);
    } catch (const FunctionAbort&) {
    }
  }

  if (!diags_.empty()) throw CompileError(std::move(diags_));
  return std::move(types_);
}

void Sema::fail(SourceLoc loc, const std::string& message) {
  diags_.push_back(Diagnostic{loc, message});
  throw FunctionAbort{};
}

TypeId Sema::resolve(const TypeSpec& spec, bool allowVoid) {
  TypeId base;
  if (spec.isStruct) {
    base = types_.findStruct(spec.structName);
    if (base == types::Invalid) {
      fail(spec.loc, "unknown struct '" + spec.structName + "'");
    }
  } else {
    switch (spec.scalar) {
      case Scalar::Void: base = types::Void; break;
      case Scalar::Bool: base = types::Bool; break;
      case Scalar::Int: base = types::Int; break;
      case Scalar::Uint: base = types::Uint; break;
      case Scalar::Float: base = types::Float; break;
      case Scalar::Double: base = types::Double; break;
      case Scalar::Long: base = types::Long; break;
      case Scalar::Ulong: base = types::Ulong; break;
      default: base = types::Invalid; break;
    }
  }
  for (int i = 0; i < spec.pointerDepth; ++i) {
    if (base == types::Void) fail(spec.loc, "pointers to void are not supported");
    if (base == types::Bool) fail(spec.loc, "pointers to bool are not supported");
    base = types_.pointerTo(base);
  }
  if (base == types::Void && !allowVoid) fail(spec.loc, "variable of type void");
  return base;
}

void Sema::declareStruct(StructDecl& decl) {
  std::vector<std::pair<std::string, TypeId>> fields;
  for (const auto& f : decl.fields) {
    const TypeId t = resolve(f.spec);
    if (types_.isPointer(t)) {
      fail(f.loc, "pointer members are not allowed in device structs");
    }
    if (t == types::Bool) fail(f.loc, "bool members are not allowed in device structs");
    fields.emplace_back(f.name, t);
  }
  try {
    types_.addStruct(decl.name, fields);
  } catch (const Error& e) {
    fail(decl.loc, e.what());
  }
}

void Sema::collectFunction(FunctionDecl& decl) {
  if (builtinNames_.count(decl.name) > 0) {
    fail(decl.loc, "'" + decl.name + "' shadows a builtin function");
  }
  if (functionByName_.count(decl.name) > 0) {
    fail(decl.loc, "redefinition of function '" + decl.name + "'");
  }
  decl.returnType = resolve(decl.retSpec, /*allowVoid=*/true);
  if (decl.isKernel && decl.returnType != types::Void) {
    fail(decl.loc, "kernel functions must return void");
  }
  if (types_.isStruct(decl.returnType)) {
    fail(decl.loc, "returning structs by value is not supported; return through a pointer");
  }
  for (auto& param : decl.params) {
    param.type = resolve(param.spec);
    if (types_.isStruct(param.type)) {
      fail(param.loc, "struct parameters must be passed by pointer");
    }
  }
  decl.functionIndex = static_cast<int>(functions_.size());
  functions_.push_back(&decl);
  functionByName_[decl.name] = decl.functionIndex;
}

void Sema::analyzeFunction(FunctionDecl& decl) {
  current_ = &decl;
  scopes_.clear();
  nextSlot_ = 0;
  frameSize_ = 0;
  loopDepth_ = 0;

  // Pre-pass: which names have their address taken?  Those locals must live
  // in frame memory rather than a register slot.
  addressTaken_.clear();
  walkStmtExprs(decl.body.get(), [this](Expr& e) {
    if (e.kind != ExprKind::Unary) return;
    auto& u = static_cast<Unary&>(e);
    if (u.op == UnaryOp::AddrOf && u.operand->kind == ExprKind::VarRef) {
      addressTaken_.insert(static_cast<VarRef&>(*u.operand).name);
    }
  });

  pushScope();
  for (auto& param : decl.params) {
    if (addressTaken_.count(param.name) > 0) {
      fail(param.loc,
           "taking the address of parameter '" + param.name +
               "' is not supported; copy it into a local first");
    }
    Symbol sym;
    sym.type = param.type;
    sym.home = VarHome::Slot;
    sym.slot = allocSlot();
    param.slot = sym.slot;
    declare(param.loc, param.name, sym);
  }
  analyzeBlock(*decl.body);
  popScope();

  decl.numSlots = nextSlot_;
  decl.frameBytes = frameSize_;
  current_ = nullptr;
}

// ---------------------------------------------------------------------------
// Scopes and allocation
// ---------------------------------------------------------------------------

void Sema::pushScope() { scopes_.emplace_back(); }
void Sema::popScope() { scopes_.pop_back(); }

Sema::Symbol& Sema::declare(SourceLoc loc, const std::string& name, Symbol sym) {
  auto& scope = scopes_.back();
  if (scope.count(name) > 0) {
    fail(loc, "redeclaration of '" + name + "' in the same scope");
  }
  return scope.emplace(name, sym).first->second;
}

const Sema::Symbol* Sema::lookup(const std::string& name) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    const auto found = it->find(name);
    if (found != it->end()) return &found->second;
  }
  return nullptr;
}

int Sema::allocSlot() { return nextSlot_++; }

std::uint32_t Sema::allocFrame(std::uint32_t size, std::uint32_t align) {
  frameSize_ = (frameSize_ + align - 1) / align * align;
  const std::uint32_t offset = frameSize_;
  frameSize_ += size;
  return offset;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void Sema::analyzeBlock(Block& block) {
  pushScope();
  for (auto& stmt : block.statements) analyzeStmt(*stmt);
  popScope();
}

void Sema::analyzeDecl(DeclStmt& decl) {
  for (auto& var : decl.vars) {
    var.type = resolve(decl.spec);
    Symbol sym;
    sym.type = var.type;

    if (var.arraySize >= 0) {
      if (var.arraySize <= 0) fail(var.loc, "array size must be positive");
      if (types_.isPointer(var.type)) fail(var.loc, "arrays of pointers are not supported");
      sym.isArray = true;
      sym.home = VarHome::FrameMemory;
      sym.frameOffset = allocFrame(
          types_.sizeOf(var.type) * static_cast<std::uint32_t>(var.arraySize),
          types_.alignOf(var.type));
      if (var.init) fail(var.loc, "array initializers are not supported");
    } else if (types_.isStruct(var.type) || addressTaken_.count(var.name) > 0) {
      sym.home = VarHome::FrameMemory;
      sym.frameOffset = allocFrame(types_.sizeOf(var.type), types_.alignOf(var.type));
    } else {
      sym.home = VarHome::Slot;
      sym.slot = allocSlot();
    }

    var.home = sym.home;
    var.slot = sym.slot;
    var.frameOffset = sym.frameOffset;

    if (var.init) {
      const TypeId initType = analyzeExpr(*var.init);
      if (types_.isStruct(var.type)) {
        if (initType != var.type) {
          fail(var.loc, "cannot initialize " + types_.name(var.type) + " from " +
                            types_.name(initType));
        }
      } else {
        coerce(var.init, var.type, "initializer");
      }
    }

    declare(var.loc, var.name, sym);
  }
}

void Sema::checkCondition(Expr& cond) {
  const TypeId t = cond.type;
  if (!types_.isArithmetic(t)) {
    fail(cond.loc, "condition must have arithmetic type, got " + types_.name(t));
  }
}

void Sema::analyzeStmt(Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::Block:
      analyzeBlock(static_cast<Block&>(stmt));
      return;
    case StmtKind::Decl:
      analyzeDecl(static_cast<DeclStmt&>(stmt));
      return;
    case StmtKind::If: {
      auto& s = static_cast<IfStmt&>(stmt);
      analyzeExpr(*s.cond);
      checkCondition(*s.cond);
      analyzeStmt(*s.thenStmt);
      if (s.elseStmt) analyzeStmt(*s.elseStmt);
      return;
    }
    case StmtKind::While: {
      auto& s = static_cast<WhileStmt&>(stmt);
      analyzeExpr(*s.cond);
      checkCondition(*s.cond);
      ++loopDepth_;
      analyzeStmt(*s.body);
      --loopDepth_;
      return;
    }
    case StmtKind::DoWhile: {
      auto& s = static_cast<DoWhileStmt&>(stmt);
      ++loopDepth_;
      analyzeStmt(*s.body);
      --loopDepth_;
      analyzeExpr(*s.cond);
      checkCondition(*s.cond);
      return;
    }
    case StmtKind::For: {
      auto& s = static_cast<ForStmt&>(stmt);
      pushScope();  // the for-init declaration scopes over cond/step/body
      analyzeStmt(*s.init);
      if (s.cond) {
        analyzeExpr(*s.cond);
        checkCondition(*s.cond);
      }
      if (s.step) analyzeExpr(*s.step);
      ++loopDepth_;
      analyzeStmt(*s.body);
      --loopDepth_;
      popScope();
      return;
    }
    case StmtKind::Break:
      if (loopDepth_ == 0) fail(stmt.loc, "'break' outside of a loop");
      return;
    case StmtKind::Continue:
      if (loopDepth_ == 0) fail(stmt.loc, "'continue' outside of a loop");
      return;
    case StmtKind::Return: {
      auto& s = static_cast<ReturnStmt&>(stmt);
      const TypeId expected = current_->returnType;
      if (expected == types::Void) {
        if (s.value) fail(s.loc, "void function must not return a value");
      } else {
        if (!s.value) fail(s.loc, "non-void function must return a value");
        analyzeExpr(*s.value);
        coerce(s.value, expected, "return value");
      }
      return;
    }
    case StmtKind::ExprStmt:
      analyzeExpr(*static_cast<ExprStmt&>(stmt).expr);
      return;
    case StmtKind::Empty:
      return;
  }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

namespace {
TypeId promoted(TypeId t) { return t == types::Bool ? types::Int : t; }
}  // namespace

void Sema::coerce(ExprPtr& expr, TypeId target, const char* what) {
  const TypeId source = expr->type;
  if (source == target) return;

  const bool bothArithmetic = types_.isArithmetic(source) && types_.isArithmetic(target);
  const bool nullToPointer = types_.isPointer(target) && expr->kind == ExprKind::IntLit &&
                             static_cast<IntLit&>(*expr).value == 0;
  if (!bothArithmetic && !nullToPointer) {
    fail(expr->loc, std::string("cannot convert ") + what + " from " +
                        types_.name(source) + " to " + types_.name(target));
  }

  auto cast = std::make_unique<Cast>(expr->loc, TypeSpec{}, std::move(expr));
  cast->isImplicit = true;
  cast->type = target;
  cast->isLValue = false;
  expr = std::move(cast);
}

TypeId Sema::typeFromBType(BType b) {
  switch (b) {
    case BType::Void: return types::Void;
    case BType::Int: return types::Int;
    case BType::Uint: return types::Uint;
    case BType::Float: return types::Float;
    case BType::Double: return types::Double;
    case BType::PtrInt: return types_.pointerTo(types::Int);
    case BType::PtrUint: return types_.pointerTo(types::Uint);
    case BType::PtrFloat: return types_.pointerTo(types::Float);
    case BType::PtrDouble: return types_.pointerTo(types::Double);
  }
  return types::Invalid;
}

TypeId Sema::analyzeExpr(Expr& expr) {
  switch (expr.kind) {
    case ExprKind::IntLit: {
      auto& lit = static_cast<IntLit&>(expr);
      const bool fitsInt = lit.value <= static_cast<std::uint64_t>(
                                            std::numeric_limits<std::int32_t>::max());
      const bool fitsUint = lit.value <= std::numeric_limits<std::uint32_t>::max();
      if (lit.isLong || !fitsUint) {
        expr.type = lit.isUnsigned ? types::Ulong : types::Long;
      } else {
        expr.type = (lit.isUnsigned || !fitsInt) ? types::Uint : types::Int;
      }
      break;
    }
    case ExprKind::FloatLit:
      expr.type = static_cast<FloatLit&>(expr).isFloat32 ? types::Float : types::Double;
      break;
    case ExprKind::BoolLit:
      expr.type = types::Bool;
      break;
    case ExprKind::VarRef:
      expr.type = analyzeVarRef(static_cast<VarRef&>(expr));
      break;
    case ExprKind::Unary:
      expr.type = analyzeUnary(static_cast<Unary&>(expr));
      break;
    case ExprKind::Binary:
      expr.type = analyzeBinary(static_cast<Binary&>(expr));
      break;
    case ExprKind::Assign:
      expr.type = analyzeAssign(static_cast<Assign&>(expr));
      break;
    case ExprKind::Ternary:
      expr.type = analyzeTernary(static_cast<Ternary&>(expr));
      break;
    case ExprKind::Call:
      expr.type = analyzeCall(static_cast<Call&>(expr));
      break;
    case ExprKind::Index:
      expr.type = analyzeIndex(static_cast<Index&>(expr));
      break;
    case ExprKind::Member:
      expr.type = analyzeMember(static_cast<Member&>(expr));
      break;
    case ExprKind::Cast:
      expr.type = analyzeCast(static_cast<Cast&>(expr));
      break;
    case ExprKind::SizeofType: {
      auto& so = static_cast<SizeofType&>(expr);
      so.size = types_.sizeOf(resolve(so.target));
      expr.type = types::Uint;
      break;
    }
  }
  return expr.type;
}

TypeId Sema::analyzeVarRef(VarRef& ref) {
  const Symbol* sym = lookup(ref.name);
  if (sym == nullptr) fail(ref.loc, "use of undeclared identifier '" + ref.name + "'");
  ref.home = sym->home;
  ref.slot = sym->slot;
  ref.frameOffset = sym->frameOffset;
  ref.isArray = sym->isArray;
  if (sym->isArray) {
    ref.elementType = sym->type;
    ref.isLValue = false;  // the array name itself decays; elements are lvalues
    return types_.pointerTo(sym->type);
  }
  ref.isLValue = true;
  return sym->type;
}

TypeId Sema::analyzeUnary(Unary& unary) {
  const TypeId operand = analyzeExpr(*unary.operand);
  switch (unary.op) {
    case UnaryOp::Plus:
    case UnaryOp::Minus:
      if (!types_.isArithmetic(operand)) {
        fail(unary.loc, "unary +/- requires an arithmetic operand");
      }
      unary.isLValue = false;
      return promoted(operand);
    case UnaryOp::Not:
      if (!types_.isArithmetic(operand)) fail(unary.loc, "'!' requires an arithmetic operand");
      return types::Int;
    case UnaryOp::BitNot:
      if (!types_.isInteger(operand)) fail(unary.loc, "'~' requires an integer operand");
      return promoted(operand);
    case UnaryOp::Deref: {
      if (!types_.isPointer(operand)) fail(unary.loc, "cannot dereference a non-pointer");
      unary.isLValue = true;
      return types_.pointee(operand);
    }
    case UnaryOp::AddrOf: {
      const Expr& target = *unary.operand;
      const bool addressable =
          target.isLValue &&
          (target.kind == ExprKind::VarRef || target.kind == ExprKind::Index ||
           target.kind == ExprKind::Member ||
           (target.kind == ExprKind::Unary &&
            static_cast<const Unary&>(target).op == UnaryOp::Deref));
      if (!addressable) fail(unary.loc, "cannot take the address of this expression");
      return types_.pointerTo(operand);
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
      if (!unary.operand->isLValue) fail(unary.loc, "++/-- requires an lvalue");
      if (!types_.isArithmetic(operand) && !types_.isPointer(operand)) {
        fail(unary.loc, "++/-- requires an arithmetic or pointer operand");
      }
      if (operand == types::Bool) fail(unary.loc, "++/-- on bool is not supported");
      return operand;
    }
  }
  return types::Invalid;
}

TypeId Sema::analyzeBinary(Binary& binary) {
  const TypeId lhs = analyzeExpr(*binary.lhs);
  const TypeId rhs = analyzeExpr(*binary.rhs);

  const bool lhsPtr = types_.isPointer(lhs);
  const bool rhsPtr = types_.isPointer(rhs);

  switch (binary.op) {
    case BinaryOp::Add:
    case BinaryOp::Sub: {
      if (lhsPtr && types_.isInteger(rhs)) {
        coerce(binary.rhs, types::Int, "pointer offset");
        binary.operandType = lhs;
        return lhs;
      }
      if (binary.op == BinaryOp::Add && rhsPtr && types_.isInteger(lhs)) {
        coerce(binary.lhs, types::Int, "pointer offset");
        binary.operandType = rhs;
        return rhs;
      }
      if (lhsPtr || rhsPtr) {
        fail(binary.loc, "unsupported pointer arithmetic (pointer difference is not available)");
      }
      [[fallthrough]];
    }
    case BinaryOp::Mul:
    case BinaryOp::Div: {
      if (!types_.isArithmetic(lhs) || !types_.isArithmetic(rhs)) {
        fail(binary.loc, "arithmetic operator requires arithmetic operands");
      }
      const TypeId common = types_.arithmeticCommonType(lhs, rhs);
      coerce(binary.lhs, common, "operand");
      coerce(binary.rhs, common, "operand");
      binary.operandType = common;
      return common;
    }
    case BinaryOp::Rem:
    case BinaryOp::BitAnd:
    case BinaryOp::BitOr:
    case BinaryOp::BitXor: {
      if (!types_.isInteger(lhs) || !types_.isInteger(rhs)) {
        fail(binary.loc, "integer operator requires integer operands");
      }
      const TypeId common = types_.arithmeticCommonType(lhs, rhs);
      coerce(binary.lhs, common, "operand");
      coerce(binary.rhs, common, "operand");
      binary.operandType = common;
      return common;
    }
    case BinaryOp::Shl:
    case BinaryOp::Shr: {
      if (!types_.isInteger(lhs) || !types_.isInteger(rhs)) {
        fail(binary.loc, "shift requires integer operands");
      }
      const TypeId resultType = promoted(lhs);
      coerce(binary.lhs, resultType, "operand");
      coerce(binary.rhs, types::Int, "shift amount");
      binary.operandType = resultType;
      return resultType;
    }
    case BinaryOp::LAnd:
    case BinaryOp::LOr: {
      checkCondition(*binary.lhs);
      checkCondition(*binary.rhs);
      binary.operandType = types::Int;
      return types::Int;
    }
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      if (lhsPtr || rhsPtr) {
        // allow ptr == ptr (same type) and ptr == 0
        if (lhsPtr && !rhsPtr) coerce(binary.rhs, lhs, "pointer comparison");
        if (rhsPtr && !lhsPtr) coerce(binary.lhs, rhs, "pointer comparison");
        if (binary.lhs->type != binary.rhs->type) {
          fail(binary.loc, "comparison of incompatible pointer types");
        }
        binary.operandType = binary.lhs->type;
        return types::Int;
      }
      [[fallthrough]];
    }
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: {
      if (!types_.isArithmetic(lhs) || !types_.isArithmetic(rhs)) {
        fail(binary.loc, "relational operator requires arithmetic operands");
      }
      const TypeId common = types_.arithmeticCommonType(lhs, rhs);
      coerce(binary.lhs, common, "operand");
      coerce(binary.rhs, common, "operand");
      binary.operandType = common;
      return types::Int;
    }
  }
  return types::Invalid;
}

TypeId Sema::analyzeAssign(Assign& assign) {
  const TypeId lhs = analyzeExpr(*assign.lhs);
  analyzeExpr(*assign.rhs);

  if (!assign.lhs->isLValue) fail(assign.loc, "left side of assignment is not an lvalue");

  if (types_.isStruct(lhs)) {
    if (assign.isCompound) fail(assign.loc, "compound assignment on structs is not supported");
    if (assign.rhs->type != lhs) {
      fail(assign.loc, "cannot assign " + types_.name(assign.rhs->type) + " to " +
                           types_.name(lhs));
    }
    return types::Void;  // struct assignment is not chainable
  }

  if (assign.isCompound) {
    if (types_.isPointer(lhs)) {
      if ((assign.compoundOp != BinaryOp::Add && assign.compoundOp != BinaryOp::Sub) ||
          !types_.isInteger(assign.rhs->type)) {
        fail(assign.loc, "only += / -= with an integer offset are supported on pointers");
      }
      coerce(assign.rhs, types::Int, "pointer offset");
      return lhs;
    }
    if (!types_.isArithmetic(lhs) || !types_.isArithmetic(assign.rhs->type)) {
      fail(assign.loc, "compound assignment requires arithmetic operands");
    }
    const bool integerOnly =
        assign.compoundOp == BinaryOp::Rem || assign.compoundOp == BinaryOp::BitAnd ||
        assign.compoundOp == BinaryOp::BitOr || assign.compoundOp == BinaryOp::BitXor ||
        assign.compoundOp == BinaryOp::Shl || assign.compoundOp == BinaryOp::Shr;
    if (integerOnly && (!types_.isInteger(lhs) || !types_.isInteger(assign.rhs->type))) {
      fail(assign.loc, "integer compound assignment requires integer operands");
    }
    // The right side is evaluated in the common type; the compiler converts
    // the result back to the lhs type.
    const TypeId common = types_.arithmeticCommonType(lhs, assign.rhs->type);
    coerce(assign.rhs, common, "operand");
    return lhs;
  }

  coerce(assign.rhs, lhs, "assigned value");
  return lhs;
}

TypeId Sema::analyzeTernary(Ternary& ternary) {
  analyzeExpr(*ternary.cond);
  checkCondition(*ternary.cond);
  const TypeId a = analyzeExpr(*ternary.thenExpr);
  const TypeId b = analyzeExpr(*ternary.elseExpr);
  if (types_.isArithmetic(a) && types_.isArithmetic(b)) {
    const TypeId common = types_.arithmeticCommonType(a, b);
    coerce(ternary.thenExpr, common, "conditional branch");
    coerce(ternary.elseExpr, common, "conditional branch");
    return common;
  }
  if (a == b) return a;  // matching pointer (or struct rvalue) types
  fail(ternary.loc, "incompatible types in conditional expression: " + types_.name(a) +
                        " vs " + types_.name(b));
}

TypeId Sema::analyzeCall(Call& call) {
  for (auto& arg : call.args) analyzeExpr(*arg);

  // User functions take priority only if the name is not a builtin (sema
  // rejects shadowing at collection time, so no ambiguity exists).
  const auto fnIt = functionByName_.find(call.name);
  if (fnIt != functionByName_.end()) {
    FunctionDecl& fn = *functions_[static_cast<std::size_t>(fnIt->second)];
    if (fn.isKernel) fail(call.loc, "kernels cannot be called from device code");
    if (call.args.size() != fn.params.size()) {
      fail(call.loc, "call to '" + call.name + "' expects " +
                         std::to_string(fn.params.size()) + " arguments, got " +
                         std::to_string(call.args.size()));
    }
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      const TypeId want = fn.params[i].type;
      if (types_.isPointer(want)) {
        if (call.args[i]->type != want &&
            !(call.args[i]->kind == ExprKind::IntLit &&
              static_cast<IntLit&>(*call.args[i]).value == 0)) {
          fail(call.args[i]->loc,
               "argument " + std::to_string(i + 1) + " of '" + call.name + "': expected " +
                   types_.name(want) + ", got " + types_.name(call.args[i]->type));
        }
        if (call.args[i]->type != want) coerce(call.args[i], want, "argument");
      } else {
        coerce(call.args[i], want, "argument");
      }
    }
    call.functionIndex = fn.functionIndex;
    return fn.returnType;
  }

  // Builtin overload resolution: exact match scores 2 per argument,
  // arithmetic-convertible scores 1; highest total wins, first entry on ties.
  const auto& table = builtinTable();
  int bestId = -1;
  int bestScore = -1;
  for (std::size_t id = 0; id < table.size(); ++id) {
    const BuiltinDef& def = table[id];
    if (call.name != def.name || def.params.size() != call.args.size()) continue;
    int score = 0;
    bool viable = true;
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      const TypeId want = typeFromBType(def.params[i]);
      const TypeId have = call.args[i]->type;
      if (have == want) {
        score += 2;
      } else if (types_.isArithmetic(want) && types_.isArithmetic(have)) {
        score += 1;
      } else {
        viable = false;
        break;
      }
    }
    if (viable && score > bestScore) {
      bestScore = score;
      bestId = static_cast<int>(id);
    }
  }
  if (bestId < 0) {
    fail(call.loc, "unknown function '" + call.name + "' (no matching builtin overload)");
  }
  const BuiltinDef& def = table[static_cast<std::size_t>(bestId)];
  for (std::size_t i = 0; i < call.args.size(); ++i) {
    coerce(call.args[i], typeFromBType(def.params[i]), "argument");
  }
  call.builtinId = bestId;
  return typeFromBType(def.ret);
}

TypeId Sema::analyzeIndex(Index& index) {
  const TypeId base = analyzeExpr(*index.base);
  if (!types_.isPointer(base)) fail(index.loc, "subscripted value is not a pointer or array");
  analyzeExpr(*index.index);
  if (!types_.isInteger(index.index->type)) {
    fail(index.index->loc, "array subscript must be an integer");
  }
  coerce(index.index, types::Int, "subscript");
  index.isLValue = true;
  return types_.pointee(base);
}

TypeId Sema::analyzeMember(Member& member) {
  const TypeId base = analyzeExpr(*member.base);
  TypeId structType;
  if (member.isArrow) {
    if (!types_.isPointer(base) || !types_.isStruct(types_.pointee(base))) {
      fail(member.loc, "'->' requires a pointer to a struct");
    }
    structType = types_.pointee(base);
  } else {
    if (!types_.isStruct(base)) fail(member.loc, "'.' requires a struct value");
    if (!member.base->isLValue) fail(member.loc, "member access on a temporary struct");
    structType = base;
  }
  const StructLayout& layout = types_.structLayout(structType);
  const StructField* field = layout.find(member.field);
  if (field == nullptr) {
    fail(member.loc, "no member '" + member.field + "' in " + types_.name(structType));
  }
  member.fieldOffset = field->offset;
  member.isLValue = true;
  return field->type;
}

TypeId Sema::analyzeCast(Cast& cast) {
  const TypeId source = analyzeExpr(*cast.operand);
  const TypeId target = resolve(cast.target);
  cast.isLValue = false;

  const bool arithmeticCast = types_.isArithmetic(source) && types_.isArithmetic(target);
  const bool pointerCast = types_.isPointer(source) && types_.isPointer(target);
  const bool nullCast = types_.isPointer(target) && cast.operand->kind == ExprKind::IntLit &&
                        static_cast<IntLit&>(*cast.operand).value == 0;
  if (!arithmeticCast && !pointerCast && !nullCast) {
    fail(cast.loc,
         "invalid cast from " + types_.name(source) + " to " + types_.name(target));
  }
  return target;
}

}  // namespace skelcl::kc
