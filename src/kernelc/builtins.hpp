// Builtin functions available to kernel code: work-item queries, math, and
// atomics.  The simulated device executes work-items with a work-group size
// of one, so get_local_id(d) == 0 and barrier() is a no-op; this is
// documented in docs/KERNEL_LANGUAGE.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernelc/value.hpp"

namespace skelcl::kc {

/// Builtin signature types (program-independent, unlike TypeId for pointers).
enum class BType : std::int8_t { Void, Int, Uint, Float, Double, PtrInt, PtrUint, PtrFloat, PtrDouble };

/// The environment a builtin executes in; implemented by the VM.
class BuiltinCtx {
 public:
  virtual ~BuiltinCtx() = default;

  // Work-item geometry (1D; higher dimensions query as size 1 / id 0).
  virtual std::int64_t globalId() const = 0;
  virtual std::int64_t globalSize() const = 0;

  /// Resolve a device pointer to a host address, bounds-checking `bytes`.
  /// Throws VmError on null/out-of-bounds.
  virtual void* resolve(Ptr p, std::uint32_t bytes) = 0;
};

using BuiltinFn = Slot (*)(BuiltinCtx&, const Slot* args);

struct BuiltinDef {
  const char* name;
  BType ret;
  std::vector<BType> params;
  BuiltinFn fn;
};

/// The process-wide builtin table; a builtin id is an index into this table.
const std::vector<BuiltinDef>& builtinTable();

}  // namespace skelcl::kc
