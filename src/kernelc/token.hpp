// Tokens of the kernel language (an OpenCL C subset, see docs/KERNEL_LANGUAGE.md).
#pragma once

#include <cstdint>
#include <string>

namespace skelcl::kc {

enum class Tok {
  // literals / identifiers
  Identifier,
  IntLiteral,
  FloatLiteral,

  // keywords
  KwVoid, KwBool, KwInt, KwUint, KwFloat, KwDouble, KwLong, KwUlong,
  KwStruct, KwTypedef,
  KwIf, KwElse, KwFor, KwWhile, KwDo, KwBreak, KwContinue, KwReturn,
  KwTrue, KwFalse,
  KwKernel,     // "__kernel" or "kernel"
  KwGlobal,     // "__global" or "global" (accepted, recorded)
  KwLocal,      // "__local" or "local"   (accepted, ignored)
  KwConst,
  KwSizeof,

  // punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semicolon, Comma, Dot, Arrow,

  // operators
  Assign,                 // =
  PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign,
  Question, Colon,
  PipePipe, AmpAmp,
  Pipe, Caret, Amp,
  EqEq, NotEq,
  Less, LessEq, Greater, GreaterEq,
  Shl, Shr,
  Plus, Minus, Star, Slash, Percent,
  Bang, Tilde,
  PlusPlus, MinusMinus,

  Eof,
};

const char* tokName(Tok t);

struct SourceLoc {
  int line = 1;
  int column = 1;
};

struct Token {
  Tok kind = Tok::Eof;
  SourceLoc loc;
  std::string text;       ///< identifier spelling / literal spelling
  std::uint64_t intValue = 0;
  double floatValue = 0.0;
  bool isFloat32 = true;  ///< float literal had 'f' suffix (or no 'd'/exponent rule)
};

}  // namespace skelcl::kc
