#include "kernelc/preprocessor.hpp"

#include <cctype>
#include <unordered_map>
#include <vector>

#include "base/strings.hpp"
#include "kernelc/diagnostics.hpp"

namespace skelcl::kc {

namespace {

bool isIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool isIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Replace whole-identifier occurrences of the defined macros in `line`.
/// Comments are not special-cased: the language has no string literals, and
/// macro names inside comments are stripped by the lexer anyway.
std::string substitute(const std::string& line,
                       const std::unordered_map<std::string, std::string>& macros) {
  if (macros.empty()) return line;
  std::string out;
  out.reserve(line.size());
  std::size_t i = 0;
  while (i < line.size()) {
    if (isIdentStart(line[i])) {
      std::size_t j = i + 1;
      while (j < line.size() && isIdentChar(line[j])) ++j;
      const std::string ident = line.substr(i, j - i);
      const auto it = macros.find(ident);
      out += it != macros.end() ? it->second : ident;
      i = j;
    } else {
      out += line[i++];
    }
  }
  return out;
}

}  // namespace

std::string preprocess(const std::string& source) {
  // Fast path: no directives at all (the overwhelmingly common case for
  // generated skeleton programs).
  if (source.find('#') == std::string::npos) return source;

  std::unordered_map<std::string, std::string> macros;
  std::string out;
  out.reserve(source.size());

  int lineNo = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    ++lineNo;
    const std::size_t eol = source.find('\n', pos);
    const std::string line =
        source.substr(pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? source.size() + 1 : eol + 1;

    const std::string_view trimmed = str::trim(line);
    if (!trimmed.empty() && trimmed.front() == '#') {
      // parse the directive
      std::size_t k = 1;
      while (k < trimmed.size() && std::isspace(static_cast<unsigned char>(trimmed[k]))) ++k;
      std::size_t nameEnd = k;
      while (nameEnd < trimmed.size() && isIdentChar(trimmed[nameEnd])) ++nameEnd;
      const std::string directive(trimmed.substr(k, nameEnd - k));

      auto parseIdent = [&](std::size_t from, std::string* ident) -> std::size_t {
        while (from < trimmed.size() && std::isspace(static_cast<unsigned char>(trimmed[from])))
          ++from;
        std::size_t end = from;
        if (end < trimmed.size() && isIdentStart(trimmed[end])) {
          ++end;
          while (end < trimmed.size() && isIdentChar(trimmed[end])) ++end;
        }
        *ident = std::string(trimmed.substr(from, end - from));
        return end;
      };

      if (directive == "define") {
        std::string name;
        const std::size_t afterName = parseIdent(nameEnd, &name);
        if (name.empty()) {
          throw CompileError(SourceLoc{lineNo, 1}, "#define needs a macro name");
        }
        if (afterName < trimmed.size() && trimmed[afterName] == '(') {
          throw CompileError(SourceLoc{lineNo, 1},
                             "function-like macros are not supported");
        }
        std::string body(str::trim(trimmed.substr(afterName)));
        // expand previously defined macros in the body (handles chains;
        // recursion is impossible because expansion happens once, here)
        body = substitute(body, macros);
        macros[name] = body;
      } else if (directive == "undef") {
        std::string name;
        parseIdent(nameEnd, &name);
        if (name.empty()) {
          throw CompileError(SourceLoc{lineNo, 1}, "#undef needs a macro name");
        }
        macros.erase(name);
      } else {
        throw CompileError(SourceLoc{lineNo, 1},
                           "unsupported preprocessor directive '#" + directive +
                               "' (only #define / #undef are available)");
      }
      out += "\n";  // keep line numbering intact
      continue;
    }

    out += substitute(line, macros);
    out += "\n";
  }
  // drop the trailing newline added for the synthetic last line
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace skelcl::kc
