#include "kernelc/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "kernelc/diagnostics.hpp"

namespace skelcl::kc {

const char* tokName(Tok t) {
  switch (t) {
    case Tok::Identifier: return "identifier";
    case Tok::IntLiteral: return "integer literal";
    case Tok::FloatLiteral: return "float literal";
    case Tok::KwVoid: return "'void'";
    case Tok::KwBool: return "'bool'";
    case Tok::KwInt: return "'int'";
    case Tok::KwUint: return "'uint'";
    case Tok::KwFloat: return "'float'";
    case Tok::KwDouble: return "'double'";
    case Tok::KwLong: return "'long'";
    case Tok::KwUlong: return "'ulong'";
    case Tok::KwStruct: return "'struct'";
    case Tok::KwTypedef: return "'typedef'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwFor: return "'for'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwDo: return "'do'";
    case Tok::KwBreak: return "'break'";
    case Tok::KwContinue: return "'continue'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwTrue: return "'true'";
    case Tok::KwFalse: return "'false'";
    case Tok::KwKernel: return "'__kernel'";
    case Tok::KwGlobal: return "'__global'";
    case Tok::KwLocal: return "'__local'";
    case Tok::KwConst: return "'const'";
    case Tok::KwSizeof: return "'sizeof'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Semicolon: return "';'";
    case Tok::Comma: return "','";
    case Tok::Dot: return "'.'";
    case Tok::Arrow: return "'->'";
    case Tok::Assign: return "'='";
    case Tok::PlusAssign: return "'+='";
    case Tok::MinusAssign: return "'-='";
    case Tok::StarAssign: return "'*='";
    case Tok::SlashAssign: return "'/='";
    case Tok::PercentAssign: return "'%='";
    case Tok::AmpAssign: return "'&='";
    case Tok::PipeAssign: return "'|='";
    case Tok::CaretAssign: return "'^='";
    case Tok::ShlAssign: return "'<<='";
    case Tok::ShrAssign: return "'>>='";
    case Tok::Question: return "'?'";
    case Tok::Colon: return "':'";
    case Tok::PipePipe: return "'||'";
    case Tok::AmpAmp: return "'&&'";
    case Tok::Pipe: return "'|'";
    case Tok::Caret: return "'^'";
    case Tok::Amp: return "'&'";
    case Tok::EqEq: return "'=='";
    case Tok::NotEq: return "'!='";
    case Tok::Less: return "'<'";
    case Tok::LessEq: return "'<='";
    case Tok::Greater: return "'>'";
    case Tok::GreaterEq: return "'>='";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Bang: return "'!'";
    case Tok::Tilde: return "'~'";
    case Tok::PlusPlus: return "'++'";
    case Tok::MinusMinus: return "'--'";
    case Tok::Eof: return "end of input";
  }
  return "?";
}

namespace {
const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> map = {
      {"void", Tok::KwVoid},       {"bool", Tok::KwBool},
      {"int", Tok::KwInt},         {"uint", Tok::KwUint},
      {"unsigned", Tok::KwUint},   {"float", Tok::KwFloat},
      {"double", Tok::KwDouble},   {"long", Tok::KwLong},
      {"ulong", Tok::KwUlong},     {"struct", Tok::KwStruct},
      {"typedef", Tok::KwTypedef}, {"if", Tok::KwIf},
      {"else", Tok::KwElse},       {"for", Tok::KwFor},
      {"while", Tok::KwWhile},     {"do", Tok::KwDo},
      {"break", Tok::KwBreak},     {"continue", Tok::KwContinue},
      {"return", Tok::KwReturn},   {"true", Tok::KwTrue},
      {"false", Tok::KwFalse},     {"__kernel", Tok::KwKernel},
      {"kernel", Tok::KwKernel},   {"__global", Tok::KwGlobal},
      {"global", Tok::KwGlobal},   {"__local", Tok::KwLocal},
      {"local", Tok::KwLocal},     {"const", Tok::KwConst},
      {"sizeof", Tok::KwSizeof},
  };
  return map;
}
}  // namespace

Lexer::Lexer(std::string_view source) : src_(source) {}

char Lexer::peek(int ahead) const {
  const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < src_.size() ? src_[i] : '\0';
}

char Lexer::advance() {
  const char c = src_[pos_++];
  if (c == '\n') {
    ++loc_.line;
    loc_.column = 1;
  } else {
    ++loc_.column;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

void Lexer::fail(const std::string& message) const {
  throw CompileError(tokenStart_, message);
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0') advance();
    } else if (c == '/' && peek(1) == '*') {
      tokenStart_ = loc_;
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') fail("unterminated block comment");
        advance();
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::makeNumber() {
  Token t;
  t.loc = tokenStart_;
  const std::size_t start = pos_;
  bool isFloat = false;
  bool isHex = false;

  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    isHex = true;
    advance();
    advance();
    if (!std::isxdigit(static_cast<unsigned char>(peek()))) fail("malformed hex literal");
    while (std::isxdigit(static_cast<unsigned char>(peek()))) advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      isFloat = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    } else if (peek() == '.' && !std::isalpha(static_cast<unsigned char>(peek(1))) &&
               peek(1) != '.') {
      isFloat = true;
      advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      const char sign = peek(1);
      const char digit = (sign == '+' || sign == '-') ? peek(2) : sign;
      if (std::isdigit(static_cast<unsigned char>(digit))) {
        isFloat = true;
        advance();  // e
        if (peek() == '+' || peek() == '-') advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      }
    }
  }

  const std::string spelling(src_.substr(start, pos_ - start));
  t.text = spelling;

  // suffixes
  bool f32suffix = false;
  bool unsignedSuffix = false;
  bool longSuffix = false;
  while (std::isalpha(static_cast<unsigned char>(peek()))) {
    const char s = peek();
    if ((s == 'f' || s == 'F') && !isHex) {
      f32suffix = true;
      isFloat = true;
      advance();
    } else if (s == 'u' || s == 'U') {
      unsignedSuffix = true;
      advance();
    } else if (s == 'l' || s == 'L') {
      longSuffix = true;
      advance();
    } else {
      fail("unexpected suffix '" + std::string(1, s) + "' on numeric literal");
    }
  }

  if (isFloat) {
    t.kind = Tok::FloatLiteral;
    t.floatValue = std::strtod(spelling.c_str(), nullptr);
    t.isFloat32 = f32suffix;
  } else {
    t.kind = Tok::IntLiteral;
    t.intValue = std::strtoull(spelling.c_str(), nullptr, isHex ? 16 : 10);
    t.isFloat32 = false;
    if (unsignedSuffix) t.text += "u";
    if (longSuffix) t.text += "l";
  }
  return t;
}

Token Lexer::makeIdentifierOrKeyword() {
  const std::size_t start = pos_;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') advance();
  Token t;
  t.loc = tokenStart_;
  t.text = std::string(src_.substr(start, pos_ - start));
  const auto it = keywords().find(t.text);
  t.kind = it != keywords().end() ? it->second : Tok::Identifier;
  return t;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  tokenStart_ = loc_;
  const char c = peek();

  if (c == '\0') {
    Token t;
    t.kind = Tok::Eof;
    t.loc = tokenStart_;
    return t;
  }
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
    return makeNumber();
  }
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    return makeIdentifierOrKeyword();
  }

  auto simple = [&](Tok kind) {
    Token t;
    t.kind = kind;
    t.loc = tokenStart_;
    return t;
  };

  advance();
  switch (c) {
    case '(': return simple(Tok::LParen);
    case ')': return simple(Tok::RParen);
    case '{': return simple(Tok::LBrace);
    case '}': return simple(Tok::RBrace);
    case '[': return simple(Tok::LBracket);
    case ']': return simple(Tok::RBracket);
    case ';': return simple(Tok::Semicolon);
    case ',': return simple(Tok::Comma);
    case '.': return simple(Tok::Dot);
    case '?': return simple(Tok::Question);
    case ':': return simple(Tok::Colon);
    case '~': return simple(Tok::Tilde);
    case '+':
      if (match('+')) return simple(Tok::PlusPlus);
      if (match('=')) return simple(Tok::PlusAssign);
      return simple(Tok::Plus);
    case '-':
      if (match('-')) return simple(Tok::MinusMinus);
      if (match('=')) return simple(Tok::MinusAssign);
      if (match('>')) return simple(Tok::Arrow);
      return simple(Tok::Minus);
    case '*':
      if (match('=')) return simple(Tok::StarAssign);
      return simple(Tok::Star);
    case '/':
      if (match('=')) return simple(Tok::SlashAssign);
      return simple(Tok::Slash);
    case '%':
      if (match('=')) return simple(Tok::PercentAssign);
      return simple(Tok::Percent);
    case '&':
      if (match('&')) return simple(Tok::AmpAmp);
      if (match('=')) return simple(Tok::AmpAssign);
      return simple(Tok::Amp);
    case '|':
      if (match('|')) return simple(Tok::PipePipe);
      if (match('=')) return simple(Tok::PipeAssign);
      return simple(Tok::Pipe);
    case '^':
      if (match('=')) return simple(Tok::CaretAssign);
      return simple(Tok::Caret);
    case '!':
      if (match('=')) return simple(Tok::NotEq);
      return simple(Tok::Bang);
    case '=':
      if (match('=')) return simple(Tok::EqEq);
      return simple(Tok::Assign);
    case '<':
      if (match('<')) {
        if (match('=')) return simple(Tok::ShlAssign);
        return simple(Tok::Shl);
      }
      if (match('=')) return simple(Tok::LessEq);
      return simple(Tok::Less);
    case '>':
      if (match('>')) {
        if (match('=')) return simple(Tok::ShrAssign);
        return simple(Tok::Shr);
      }
      if (match('=')) return simple(Tok::GreaterEq);
      return simple(Tok::Greater);
    default:
      fail(std::string("unexpected character '") + c + "'");
  }
}

std::vector<Token> Lexer::run() {
  std::vector<Token> tokens;
  for (;;) {
    tokens.push_back(next());
    if (tokens.back().kind == Tok::Eof) return tokens;
  }
}

}  // namespace skelcl::kc
