// Rewrite pass: rule-based transforms over the naive Insn IR, run before the
// peephole pass at optimization tier 2 (docs/VM.md).
//
// Three rules, in the spirit of Lift's "patterns and rewrite rules":
//   R1  loop-invariant hoisting   — pure, never-faulting windows whose slots
//       are not written in the innermost loop move to a preheader.
//   R2  strength reduction        — slot*constant multiplies inside a loop
//       with a canonical induction increment become a tracked slot that is
//       bumped by delta*constant per iteration (exact mod 2^32).
//   R3  pointer-bias fusion       — p[i +/- k] indexing precomputes the
//       biased pointer p +/- k*elemSize once at function entry, leaving a
//       window the peephole pass fuses into LoadSlotElem.
//
// Weight invariant (what keeps simulated timings pipeline-independent):
// hoisted/synthesized instructions carry weight 0, and every in-place
// replacement carries the summed weight of the window it replaces.  Each
// lane therefore retires exactly the counts of the naive program on every
// control path — zero-trip loops, breaks, and faults included — with no
// dominance analysis and no cost-model recalibration.
#pragma once

#include "kernelc/bytecode.hpp"

namespace skelcl::kc {

/// Rewrite `fn.code` in place until no rule applies (bounded).  May add
/// fresh slots (fn.numSlots grows).  Returns the number of rewrites applied.
int rewriteOptimize(FunctionCode& fn);

}  // namespace skelcl::kc
