// Work-group-batched execution (tier 2, docs/VM.md): the dispatch loop is
// inverted — one opcode decode drives every live work-item ("lane") of a
// group through the operation before moving to the next instruction, over
// lane-strided slot/stack arenas.  Straight-line and uniformly-looping
// bodies run as tight, auto-vectorizable inner loops; divergent branches
// split the group into lane subsets (no reconvergence).
//
// Two representation choices make the inner loops vectorize:
//
//  * Typed column views.  GCC assigns no vector type to accesses through the
//    Slot union, so every hot loop reads/writes the columns through
//    std::int64_t* / double* / std::uint64_t* views instead (Slot is an
//    8-byte union of exactly those representations).  The build compiles
//    this file with -fno-strict-aliasing, which makes the views
//    well-defined; -ffp-contract=off keeps float results bit-identical to
//    the scalar tiers.
//
//  * Lane compaction.  Every group owns a contiguous lane range
//    [off, off+cnt) of the arenas at all times.  A divergent branch
//    physically partitions the group's segment of every live column (all
//    slots plus the stack below the branch) so stay-lanes keep the front
//    and taken-lanes become a contiguous pending group behind them.  Work-
//    item identity moves with the lane in laneGid, so get_global_id and
//    fault messages stay exact.  The payoff: no sparse index indirection
//    ever — every per-op loop is a unit-stride loop the compiler can
//    vectorize, even deep into divergence.
//
// Invariants relied on:
//  - The encoder's computeMaxStack proves the operand-stack height at each
//    pc is unique, so one `sp` per group is exact.  Stack columns below a
//    split are live in both child groups; the partition permutes them with
//    the same mask, so each logical lane keeps its values.  Sibling groups
//    occupy disjoint segments and never interfere.
//  - Retired counts: `instructions_` advances by weight x live-lane-count per
//    instruction, which equals the sum over lanes of the sequential count —
//    bit-identical accounting on every control path.
//  - Batchability (FunctionCode::batchable) excludes everything whose
//    cross-item ordering is observable, so interleaving lanes is safe.  It
//    also excludes frame memory and calls, so regions_ is immutable for the
//    whole batch and the bounds-check fast path below may cache it.
//
// Divergence and faults: when several work-items of one batch would fault,
// the reporting lane may differ from sequential execution (groups run in
// LIFO order); the fault itself and all data written before it are the same
// class of partial state sequential execution leaves behind.
#include <cstring>
#include <limits>

#include "kernelc/diagnostics.hpp"
#include "kernelc/vm.hpp"
#include "kernelc/vm_ops.hpp"

namespace skelcl::kc {

using detail::cmpHolds;
using detail::ptrPlus;

namespace {

static_assert(sizeof(Slot) == 8, "typed column views assume 8-byte slots");

inline std::int64_t* iCol(Slot* c) { return reinterpret_cast<std::int64_t*>(c); }
inline const std::int64_t* iCol(const Slot* c) {
  return reinterpret_cast<const std::int64_t*>(c);
}
inline double* fCol(Slot* c) { return reinterpret_cast<double*>(c); }
inline std::uint64_t* rawCol(Slot* c) { return reinterpret_cast<std::uint64_t*>(c); }

}  // namespace

void Vm::runKernelBatch(int functionIndex, std::span<const Slot> args, std::int64_t gidBase,
                        std::int64_t count, std::int64_t globalSize) {
  const auto& fn = program_.functions.at(static_cast<std::size_t>(functionIndex));
  SKELCL_CHECK(fn.isKernel, "runKernelBatch on a non-kernel function");
  SKELCL_CHECK(count >= 1 && count <= kBatchLanes, "batch lane count out of range");
  if (!program_.optimized || !fn.batchable || count == 1) {
    for (std::int64_t l = 0; l < count; ++l) {
      runKernel(functionIndex, args, gidBase + l, globalSize);
    }
    return;
  }
  SKELCL_CHECK(args.size() == fn.paramTypes.size(), "kernel argument count mismatch");
  globalSize_ = globalSize;
  frameTop_ = 0;
  executeBatch(functionIndex, args, gidBase, count);
}

void Vm::executeBatch(int functionIndex, std::span<const Slot> args, std::int64_t gidBase,
                      std::int64_t count) {
  const auto& fn = program_.functions[static_cast<std::size_t>(functionIndex)];
  const int savedFunction = currentFunction_;
  currentFunction_ = functionIndex;

  const std::int32_t n = static_cast<std::int32_t>(count);
  const std::size_t numSlots = static_cast<std::size_t>(fn.numSlots);

  // Lane-strided arenas: slot s of lane l at batchSlots_[s*n + l], stack
  // depth d of lane l at batchStack_[d*n + l].  Slots zeroed to match the
  // sequential paths' value-initialization; arguments broadcast per lane.
  batchSlots_.assign(numSlots * static_cast<std::size_t>(n), Slot{});
  batchStack_.resize(static_cast<std::size_t>(fn.maxStack) * static_cast<std::size_t>(n) + 1);
  for (std::size_t s = 0; s < args.size(); ++s) {
    Slot* col = batchSlots_.data() + s * static_cast<std::size_t>(n);
    for (std::int32_t l = 0; l < n; ++l) col[l] = args[s];
  }
  // Work-item id of each physical lane; permuted alongside the columns on
  // divergent splits, so lane -> gid stays exact under compaction.
  std::int64_t laneGid[kBatchLanes];
  for (std::int32_t l = 0; l < n; ++l) laneGid[l] = gidBase + l;

  Slot* const slotBase = batchSlots_.data();
  Slot* const stackBase = batchStack_.data();

  // Bounds-check fast path.  Batchable kernels push no frame regions and make
  // no calls, so the region table cannot change under us.  The cold branch
  // delegates to resolve() for the precise fault message (setting globalId_
  // first so the message names the right work-item).
  const MemRegion* const regionTab = regions_.data();
  const std::size_t regionCount = regions_.size();
  const auto resolveLane = [&](Ptr p, std::uint32_t bytes, std::int64_t gid) -> std::byte* {
    if (p.region > 0 && static_cast<std::size_t>(p.region) < regionCount) {
      const MemRegion& r = regionTab[p.region];
      if (static_cast<std::uint64_t>(p.offset) + bytes <= r.size) return r.data + p.offset;
    }
    globalId_ = gid;
    resolve(p, bytes);  // [[noreturn]] here: throws the precise fault
    return nullptr;
  };

  /// A lane subset executing one control-flow path, owning the contiguous
  /// arena segment [off, off+cnt).  `retired` is the per-lane retired count
  /// along this path, inherited on splits — the sequential per-item budget.
  struct Group {
    std::int32_t ip;
    std::int32_t sp;
    std::int32_t off;
    std::int32_t cnt;
    std::uint64_t retired;
  };
  Group pending[kBatchLanes];  // live groups partition n lanes, so < n splits
  std::int32_t nPending = 0;
  unsigned char mask[kBatchLanes];     // divergence: takes-the-branch per lane
  std::uint64_t scratch[kBatchLanes];  // divergence: taken-lane staging

  // Current group.
  std::int32_t laneOff = 0;
  std::int32_t laneCount = n;
  std::int32_t ip = 0;
  std::int32_t sp = 0;
  std::uint64_t retired = 0;

  const PackedInsn* const codeBase = fn.packed.data();
  const std::uint64_t* const pool = fn.pool.data();

  // Column base of the current group's segment: unit-stride over [0, cnt).
  const auto slotCol = [&](std::int32_t s) {
    return slotBase + static_cast<std::size_t>(s) * static_cast<std::size_t>(n) + laneOff;
  };
  const auto stackCol = [&](std::int32_t d) {
    return stackBase + static_cast<std::size_t>(d) * static_cast<std::size_t>(n) + laneOff;
  };

  const auto checkBudget = [&](std::uint64_t pathRetired) {
    if (pathRetired > kMaxInstructionsPerItem) {
      globalId_ = laneGid[laneOff];
      fault("instruction budget exceeded (infinite loop?)");
    }
  };

  for (;;) {
    const PackedInsn insn = codeBase[ip];
    ++ip;
    retired += insn.weight;
    instructions_ += static_cast<std::uint64_t>(insn.weight) *
                     static_cast<std::uint64_t>(laneCount);
    const std::int32_t cnt = laneCount;

    switch (insn.op) {
      case Op::PushI: {
        const std::int64_t v = insn.a;
        std::int64_t* col = iCol(stackCol(sp));
        for (std::int32_t l = 0; l < cnt; ++l) col[l] = v;
        ++sp;
        break;
      }
      case Op::PushCI: {
        const std::int64_t v = static_cast<std::int64_t>(pool[insn.k]);
        std::int64_t* col = iCol(stackCol(sp));
        for (std::int32_t l = 0; l < cnt; ++l) col[l] = v;
        ++sp;
        break;
      }
      case Op::PushCF: {
        double v;
        std::memcpy(&v, &pool[insn.k], sizeof v);
        double* col = fCol(stackCol(sp));
        for (std::int32_t l = 0; l < cnt; ++l) col[l] = v;
        ++sp;
        break;
      }

      case Op::LoadSlot: {
        const std::uint64_t* src = rawCol(slotCol(insn.a));
        std::uint64_t* col = rawCol(stackCol(sp));
        for (std::int32_t l = 0; l < cnt; ++l) col[l] = src[l];
        ++sp;
        break;
      }
      case Op::StoreSlot: {
        --sp;
        const std::uint64_t* col = rawCol(stackCol(sp));
        std::uint64_t* dst = rawCol(slotCol(insn.a));
        for (std::int32_t l = 0; l < cnt; ++l) dst[l] = col[l];
        break;
      }
      case Op::LoadSlot2: {
        const std::uint64_t* sa = rawCol(slotCol(insn.a));
        const std::uint64_t* sb = rawCol(slotCol(insn.b));
        std::uint64_t* ca = rawCol(stackCol(sp));
        std::uint64_t* cb = rawCol(stackCol(sp + 1));
        for (std::int32_t l = 0; l < cnt; ++l) {
          ca[l] = sa[l];
          cb[l] = sb[l];
        }
        sp += 2;
        break;
      }

// Loads keep Slot-typed pointer columns (the bounds check is inherently
// branchy); results are written through the typed view so downstream
// arithmetic sees clean columns.
#define KC_LOAD(OPNAME, CTYPE, BYTES, VIEW)                                       \
  case Op::Load##OPNAME: {                                                        \
    Slot* col = stackCol(sp - 1);                                                 \
    auto* out = VIEW(col);                                                        \
    const std::int64_t* gids = laneGid + laneOff;                                 \
    for (std::int32_t l = 0; l < cnt; ++l) {                                      \
      const std::byte* addr = resolveLane(col[l].p, BYTES, gids[l]);              \
      CTYPE v;                                                                    \
      std::memcpy(&v, addr, BYTES);                                               \
      out[l] = v;                                                                 \
    }                                                                             \
    break;                                                                        \
  }                                                                               \
  case Op::LoadElem##OPNAME: {                                                    \
    const std::int64_t* idx = iCol(stackCol(sp - 1));                             \
    Slot* col = stackCol(sp - 2);                                                 \
    auto* out = VIEW(col);                                                        \
    const std::int64_t* gids = laneGid + laneOff;                                 \
    for (std::int32_t l = 0; l < cnt; ++l) {                                      \
      const std::byte* addr =                                                     \
          resolveLane(ptrPlus(col[l].p, idx[l], insn.a), BYTES, gids[l]);         \
      CTYPE v;                                                                    \
      std::memcpy(&v, addr, BYTES);                                               \
      out[l] = v;                                                                 \
    }                                                                             \
    --sp;                                                                         \
    break;                                                                        \
  }                                                                               \
  case Op::LoadSlotElem##OPNAME: {                                                \
    const Slot* ptr = slotCol(insn.a);                                            \
    const std::int64_t* idx = iCol(slotCol(insn.b));                              \
    auto* out = VIEW(stackCol(sp));                                               \
    const std::int64_t* gids = laneGid + laneOff;                                 \
    for (std::int32_t l = 0; l < cnt; ++l) {                                      \
      const std::byte* addr =                                                     \
          resolveLane(ptrPlus(ptr[l].p, idx[l], insn.c), BYTES, gids[l]);         \
      CTYPE v;                                                                    \
      std::memcpy(&v, addr, BYTES);                                               \
      out[l] = v;                                                                 \
    }                                                                             \
    ++sp;                                                                         \
    break;                                                                        \
  }
      KC_LOAD(I32, std::int32_t, 4, iCol)
      KC_LOAD(U32, std::uint32_t, 4, iCol)
      KC_LOAD(F32, float, 4, fCol)
      KC_LOAD(F64, double, 8, fCol)
      KC_LOAD(I64, std::int64_t, 8, iCol)
#undef KC_LOAD

#define KC_STORE(OPNAME, CTYPE, LOADV, BYTES)                                 \
  case Op::Store##OPNAME: {                                                   \
    const Slot* val = stackCol(sp - 1);                                       \
    const Slot* ptr = stackCol(sp - 2);                                       \
    const std::int64_t* gids = laneGid + laneOff;                             \
    for (std::int32_t l = 0; l < cnt; ++l) {                                  \
      std::byte* addr = resolveLane(ptr[l].p, BYTES, gids[l]);                \
      const CTYPE v = LOADV;                                                  \
      std::memcpy(addr, &v, BYTES);                                           \
    }                                                                         \
    sp -= 2;                                                                  \
    break;                                                                    \
  }                                                                           \
  case Op::TeeStore##OPNAME: {                                                \
    const Slot* val = stackCol(sp - 1);                                       \
    const Slot* ptr = stackCol(sp - 2);                                       \
    std::uint64_t* tee = rawCol(slotCol(insn.a));                             \
    const std::uint64_t* raw = rawCol(stackCol(sp - 1));                      \
    const std::int64_t* gids = laneGid + laneOff;                             \
    for (std::int32_t l = 0; l < cnt; ++l) {                                  \
      std::byte* addr = resolveLane(ptr[l].p, BYTES, gids[l]);                \
      const CTYPE v = LOADV;                                                  \
      std::memcpy(addr, &v, BYTES);                                           \
      tee[l] = raw[l];                                                        \
    }                                                                         \
    sp -= 2;                                                                  \
    break;                                                                    \
  }
      KC_STORE(I32, std::int32_t, static_cast<std::int32_t>(val[l].i), 4)
      KC_STORE(I64, std::int64_t, val[l].i, 8)
      KC_STORE(F32, float, static_cast<float>(val[l].f), 4)
      KC_STORE(F64, double, val[l].f, 8)
#undef KC_STORE

      case Op::PtrAdd: {
        const std::int64_t* idx = iCol(stackCol(sp - 1));
        Slot* col = stackCol(sp - 2);
        for (std::int32_t l = 0; l < cnt; ++l) {
          col[l] = Slot::fromPtr(ptrPlus(col[l].p, idx[l], insn.a));
        }
        --sp;
        break;
      }
      case Op::PtrAddImm: {
        Slot* col = stackCol(sp - 1);
        for (std::int32_t l = 0; l < cnt; ++l) {
          col[l] = Slot::fromPtr(ptrPlus(col[l].p, insn.b, insn.a));
        }
        break;
      }
      case Op::IncSlotI: {
        std::int64_t* col = iCol(slotCol(insn.a));
        const std::int64_t d = insn.b;
        for (std::int32_t l = 0; l < cnt; ++l) {
          col[l] = static_cast<std::int32_t>(col[l] + d);
        }
        break;
      }

#define KC_BIN_I(OPNAME, EXPR)                                    \
  case Op::OPNAME: {                                              \
    const std::int64_t* bcol = iCol(stackCol(sp - 1));            \
    std::int64_t* acol = iCol(stackCol(sp - 2));                  \
    for (std::int32_t l = 0; l < cnt; ++l) {                      \
      const std::int64_t a = acol[l];                             \
      const std::int64_t b = bcol[l];                             \
      (void)a;                                                    \
      (void)b;                                                    \
      acol[l] = static_cast<std::int32_t>(EXPR);                  \
    }                                                             \
    --sp;                                                         \
    break;                                                        \
  }
      KC_BIN_I(AddI, a + b)
      KC_BIN_I(SubI, a - b)
      KC_BIN_I(MulI, a * b)
      KC_BIN_I(AndI, a & b)
      KC_BIN_I(OrI, a | b)
      KC_BIN_I(XorI, a ^ b)
      KC_BIN_I(ShlI, static_cast<std::int64_t>(static_cast<std::uint32_t>(a)
                                               << (static_cast<std::uint32_t>(b) & 31u)))
      KC_BIN_I(ShrI, static_cast<std::int32_t>(a) >> (static_cast<std::uint32_t>(b) & 31u))
      KC_BIN_I(ShrU, static_cast<std::uint32_t>(a) >> (static_cast<std::uint32_t>(b) & 31u))
#undef KC_BIN_I

#define KC_DIVREM(OPNAME, CAST, CHECKED, MSG)                     \
  case Op::OPNAME: {                                              \
    const std::int64_t* bcol = iCol(stackCol(sp - 1));            \
    std::int64_t* acol = iCol(stackCol(sp - 2));                  \
    const std::int64_t* gids = laneGid + laneOff;                 \
    for (std::int32_t l = 0; l < cnt; ++l) {                      \
      const auto a = static_cast<CAST>(acol[l]);                  \
      const auto b = static_cast<CAST>(bcol[l]);                  \
      (void)a;                                                    \
      if (b == 0) {                                               \
        globalId_ = gids[l];                                      \
        fault(MSG);                                               \
      }                                                           \
      acol[l] = CHECKED;                                          \
    }                                                             \
    --sp;                                                         \
    break;                                                        \
  }
      KC_DIVREM(DivI, std::int64_t, static_cast<std::int32_t>(a / b),
                "integer division by zero")
      KC_DIVREM(RemI, std::int64_t, static_cast<std::int32_t>(a % b),
                "integer remainder by zero")
      KC_DIVREM(DivU, std::uint32_t, static_cast<std::int64_t>(a / b),
                "integer division by zero")
      KC_DIVREM(RemU, std::uint32_t, static_cast<std::int64_t>(a % b),
                "integer remainder by zero")
      KC_DIVREM(DivUL, std::uint64_t, static_cast<std::int64_t>(a / b),
                "integer division by zero")
      KC_DIVREM(RemUL, std::uint64_t, static_cast<std::int64_t>(a % b),
                "integer remainder by zero")
#undef KC_DIVREM

      case Op::DivL: {
        const std::int64_t* bcol = iCol(stackCol(sp - 1));
        std::int64_t* acol = iCol(stackCol(sp - 2));
        const std::int64_t* gids = laneGid + laneOff;
        for (std::int32_t l = 0; l < cnt; ++l) {
          const std::int64_t a = acol[l];
          const std::int64_t b = bcol[l];
          if (b == 0) {
            globalId_ = gids[l];
            fault("integer division by zero");
          }
          if (b == -1 && a == std::numeric_limits<std::int64_t>::min()) {
            acol[l] = a;  // wrap, matching 2's-complement overflow
          } else {
            acol[l] = a / b;
          }
        }
        --sp;
        break;
      }
      case Op::RemL: {
        const std::int64_t* bcol = iCol(stackCol(sp - 1));
        std::int64_t* acol = iCol(stackCol(sp - 2));
        const std::int64_t* gids = laneGid + laneOff;
        for (std::int32_t l = 0; l < cnt; ++l) {
          const std::int64_t b = bcol[l];
          if (b == 0) {
            globalId_ = gids[l];
            fault("integer remainder by zero");
          }
          acol[l] = b == -1 ? std::int64_t{0} : acol[l] % b;
        }
        --sp;
        break;
      }

      case Op::NegI: {
        std::int64_t* col = iCol(stackCol(sp - 1));
        for (std::int32_t l = 0; l < cnt; ++l) col[l] = static_cast<std::int32_t>(-col[l]);
        break;
      }
      case Op::NotI: {
        std::int64_t* col = iCol(stackCol(sp - 1));
        for (std::int32_t l = 0; l < cnt; ++l) col[l] = static_cast<std::int32_t>(~col[l]);
        break;
      }

#define KC_BIN_L(OPNAME, EXPR)                                    \
  case Op::OPNAME: {                                              \
    const std::int64_t* bcol = iCol(stackCol(sp - 1));            \
    std::int64_t* acol = iCol(stackCol(sp - 2));                  \
    for (std::int32_t l = 0; l < cnt; ++l) {                      \
      const std::int64_t a = acol[l];                             \
      const std::int64_t b = bcol[l];                             \
      (void)a;                                                    \
      (void)b;                                                    \
      acol[l] = static_cast<std::int64_t>(EXPR);                  \
    }                                                             \
    --sp;                                                         \
    break;                                                        \
  }
      KC_BIN_L(AddL, static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b))
      KC_BIN_L(SubL, static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b))
      KC_BIN_L(MulL, static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b))
      KC_BIN_L(AndL, a & b)
      KC_BIN_L(OrL, a | b)
      KC_BIN_L(XorL, a ^ b)
      KC_BIN_L(ShlL, static_cast<std::uint64_t>(a) << (static_cast<std::uint64_t>(b) & 63u))
      KC_BIN_L(ShrL, a >> (static_cast<std::uint64_t>(b) & 63u))
      KC_BIN_L(ShrUL, static_cast<std::uint64_t>(a) >> (static_cast<std::uint64_t>(b) & 63u))
#undef KC_BIN_L

      case Op::NegL: {
        std::int64_t* col = iCol(stackCol(sp - 1));
        for (std::int32_t l = 0; l < cnt; ++l) {
          col[l] = static_cast<std::int64_t>(-static_cast<std::uint64_t>(col[l]));
        }
        break;
      }
      case Op::NotL: {
        std::int64_t* col = iCol(stackCol(sp - 1));
        for (std::int32_t l = 0; l < cnt; ++l) col[l] = ~col[l];
        break;
      }

#define KC_BIN_F32(OPNAME, OPERATOR)                                          \
  case Op::OPNAME: {                                                          \
    const double* bcol = fCol(stackCol(sp - 1));                              \
    double* acol = fCol(stackCol(sp - 2));                                    \
    for (std::int32_t l = 0; l < cnt; ++l) {                                  \
      acol[l] = static_cast<float>(static_cast<float>(acol[l])                \
                                       OPERATOR static_cast<float>(bcol[l])); \
    }                                                                         \
    --sp;                                                                     \
    break;                                                                    \
  }
      KC_BIN_F32(AddF32, +)
      KC_BIN_F32(SubF32, -)
      KC_BIN_F32(MulF32, *)
      KC_BIN_F32(DivF32, /)
#undef KC_BIN_F32

#define KC_BIN_F64(OPNAME, OPERATOR)                                           \
  case Op::OPNAME: {                                                           \
    const double* bcol = fCol(stackCol(sp - 1));                               \
    double* acol = fCol(stackCol(sp - 2));                                     \
    for (std::int32_t l = 0; l < cnt; ++l) acol[l] = acol[l] OPERATOR bcol[l]; \
    --sp;                                                                      \
    break;                                                                     \
  }
      KC_BIN_F64(AddF64, +)
      KC_BIN_F64(SubF64, -)
      KC_BIN_F64(MulF64, *)
      KC_BIN_F64(DivF64, /)
#undef KC_BIN_F64

      case Op::NegF32: {
        double* col = fCol(stackCol(sp - 1));
        for (std::int32_t l = 0; l < cnt; ++l) col[l] = -static_cast<float>(col[l]);
        break;
      }
      case Op::NegF64: {
        double* col = fCol(stackCol(sp - 1));
        for (std::int32_t l = 0; l < cnt; ++l) col[l] = -col[l];
        break;
      }

#define KC_CMP(OPNAME, TYPE, VIEW, OPERATOR)                                  \
  case Op::OPNAME: {                                                          \
    const auto* bcol = VIEW(static_cast<Slot*>(stackCol(sp - 1)));            \
    const auto* asrc = VIEW(static_cast<Slot*>(stackCol(sp - 2)));            \
    std::int64_t* adst = iCol(stackCol(sp - 2));                              \
    for (std::int32_t l = 0; l < cnt; ++l) {                                  \
      const auto a = static_cast<TYPE>(asrc[l]);                              \
      const auto b = static_cast<TYPE>(bcol[l]);                              \
      adst[l] = (a OPERATOR b) ? 1 : 0;                                       \
    }                                                                         \
    --sp;                                                                     \
    break;                                                                    \
  }
      KC_CMP(EqI, std::int64_t, iCol, ==)
      KC_CMP(NeI, std::int64_t, iCol, !=)
      KC_CMP(LtI, std::int64_t, iCol, <)
      KC_CMP(LeI, std::int64_t, iCol, <=)
      KC_CMP(GtI, std::int64_t, iCol, >)
      KC_CMP(GeI, std::int64_t, iCol, >=)
      KC_CMP(LtU, std::uint32_t, iCol, <)
      KC_CMP(LeU, std::uint32_t, iCol, <=)
      KC_CMP(GtU, std::uint32_t, iCol, >)
      KC_CMP(GeU, std::uint32_t, iCol, >=)
      KC_CMP(LtUL, std::uint64_t, iCol, <)
      KC_CMP(LeUL, std::uint64_t, iCol, <=)
      KC_CMP(GtUL, std::uint64_t, iCol, >)
      KC_CMP(GeUL, std::uint64_t, iCol, >=)
      KC_CMP(EqF, double, fCol, ==)
      KC_CMP(NeF, double, fCol, !=)
      KC_CMP(LtF, double, fCol, <)
      KC_CMP(LeF, double, fCol, <=)
      KC_CMP(GtF, double, fCol, >)
      KC_CMP(GeF, double, fCol, >=)
#undef KC_CMP

      // Ptr is {int32 region, uint32 offset} with no padding, so pointer
      // equality is 8-byte raw equality.
      case Op::EqP: {
        const std::uint64_t* bcol = rawCol(stackCol(sp - 1));
        const std::uint64_t* asrc = rawCol(stackCol(sp - 2));
        std::int64_t* adst = iCol(stackCol(sp - 2));
        for (std::int32_t l = 0; l < cnt; ++l) adst[l] = asrc[l] == bcol[l] ? 1 : 0;
        --sp;
        break;
      }
      case Op::NeP: {
        const std::uint64_t* bcol = rawCol(stackCol(sp - 1));
        const std::uint64_t* asrc = rawCol(stackCol(sp - 2));
        std::int64_t* adst = iCol(stackCol(sp - 2));
        for (std::int32_t l = 0; l < cnt; ++l) adst[l] = asrc[l] != bcol[l] ? 1 : 0;
        --sp;
        break;
      }
      case Op::LNot: {
        std::int64_t* col = iCol(stackCol(sp - 1));
        for (std::int32_t l = 0; l < cnt; ++l) col[l] = col[l] == 0 ? 1 : 0;
        break;
      }

#define KC_CONV(OPNAME, SRCVIEW, DSTVIEW, EXPR)  \
  case Op::OPNAME: {                             \
    Slot* c = stackCol(sp - 1);                  \
    const auto* src = SRCVIEW(c);                \
    auto* dst = DSTVIEW(c);                      \
    for (std::int32_t l = 0; l < cnt; ++l) {     \
      const auto v = src[l];                     \
      dst[l] = EXPR;                             \
    }                                            \
    break;                                       \
  }
      KC_CONV(I2F32, iCol, fCol, static_cast<float>(v))
      KC_CONV(I2F64, iCol, fCol, static_cast<double>(v))
      KC_CONV(U2F32, iCol, fCol, static_cast<float>(static_cast<std::uint32_t>(v)))
      KC_CONV(U2F64, iCol, fCol, static_cast<double>(static_cast<std::uint32_t>(v)))
      KC_CONV(UL2F32, iCol, fCol, static_cast<float>(static_cast<std::uint64_t>(v)))
      KC_CONV(UL2F64, iCol, fCol, static_cast<double>(static_cast<std::uint64_t>(v)))
      KC_CONV(F2I, fCol, iCol, static_cast<std::int32_t>(v))
      KC_CONV(F2L, fCol, iCol, static_cast<std::int64_t>(v))
      KC_CONV(F2U, fCol, iCol,
              static_cast<std::int64_t>(static_cast<std::uint32_t>(v)))
      KC_CONV(F2UL, fCol, iCol,
              static_cast<std::int64_t>(static_cast<std::uint64_t>(v)))
      KC_CONV(F64toF32, fCol, fCol, static_cast<float>(v))
      KC_CONV(I2U, iCol, iCol,
              static_cast<std::int64_t>(static_cast<std::uint32_t>(v)))
      KC_CONV(U2I, iCol, iCol,
              static_cast<std::int32_t>(static_cast<std::uint32_t>(v)))
      KC_CONV(BoolNorm, iCol, iCol, v != 0 ? 1 : 0)
#undef KC_CONV

      case Op::Jmp:
        if (insn.a < ip) checkBudget(retired);
        ip = insn.a;
        break;

      case Op::Jz:
      case Op::Jnz:
      case Op::CmpJz:
      case Op::CmpJnz: {
        const bool fused = insn.op == Op::CmpJz || insn.op == Op::CmpJnz;
        const bool jumpOnTrue = insn.op == Op::Jnz || insn.op == Op::CmpJnz;
        sp -= fused ? 2 : 1;
        std::int32_t nTaken = 0;
        if (fused) {
          const Slot* acol = stackCol(sp);
          const Slot* bcol = stackCol(sp + 1);
          const Op cmp = static_cast<Op>(insn.c);
          for (std::int32_t l = 0; l < cnt; ++l) {
            mask[l] = cmpHolds(cmp, acol[l], bcol[l]) == jumpOnTrue ? 1 : 0;
            nTaken += mask[l];
          }
        } else {
          const std::int64_t* acol = iCol(stackCol(sp));
          for (std::int32_t l = 0; l < cnt; ++l) {
            mask[l] = ((acol[l] != 0) == jumpOnTrue) ? 1 : 0;
            nTaken += mask[l];
          }
        }
        if (nTaken == 0) break;  // whole group falls through
        if (nTaken == cnt) {
          if (insn.a < ip) checkBudget(retired);
          ip = insn.a;
          break;
        }
        // Divergence: physically partition the group's segment of every
        // live column — stay lanes keep the front (order preserved), taken
        // lanes compact behind them and branch off as a pending group.
        // Both children stay contiguous, so every later loop remains
        // unit-stride.  LIFO scheduling; no reconvergence.
        const std::int32_t stayCnt = cnt - nTaken;
        const auto partitionSeg = [&](std::uint64_t* seg) {
          std::int32_t w = 0;
          std::int32_t t = 0;
          for (std::int32_t l = 0; l < cnt; ++l) {
            const std::uint64_t v = seg[l];
            if (mask[l]) {
              scratch[t++] = v;
            } else {
              seg[w++] = v;
            }
          }
          std::memcpy(seg + w, scratch, static_cast<std::size_t>(t) * sizeof(std::uint64_t));
        };
        for (std::size_t s = 0; s < numSlots; ++s) {
          partitionSeg(rawCol(slotBase + s * static_cast<std::size_t>(n) + laneOff));
        }
        for (std::int32_t d = 0; d < sp; ++d) {
          partitionSeg(rawCol(stackCol(d)));
        }
        partitionSeg(reinterpret_cast<std::uint64_t*>(laneGid + laneOff));
        if (insn.a < ip && retired > kMaxInstructionsPerItem) {
          globalId_ = laneGid[laneOff + stayCnt];
          fault("instruction budget exceeded (infinite loop?)");
        }
        pending[nPending++] = Group{insn.a, sp, laneOff + stayCnt, nTaken, retired};
        laneCount = stayCnt;
        break;
      }

      case Op::CallBuiltin: {
        checkBudget(retired);
        const BuiltinDef& def = builtinTable()[static_cast<std::size_t>(insn.a)];
        const std::int32_t argc = insn.b;
        sp -= argc;
        // Fast path for the ubiquitous get_global_id(dim).
        if (argc == 1 && std::strcmp(def.name, "get_global_id") == 0) {
          std::int64_t* col = iCol(stackCol(sp));
          const std::int64_t* gids = laneGid + laneOff;
          for (std::int32_t l = 0; l < cnt; ++l) col[l] = col[l] == 0 ? gids[l] : 0;
          ++sp;
          break;
        }
        SKELCL_CHECK(argc <= 8, "builtin arity exceeds batch marshalling buffer");
        Slot argv[8];
        Slot* res = stackCol(sp);
        const std::int64_t* gids = laneGid + laneOff;
        for (std::int32_t l = 0; l < cnt; ++l) {
          globalId_ = gids[l];  // geometry builtins read it via BuiltinCtx
          for (std::int32_t a2 = 0; a2 < argc; ++a2) argv[a2] = stackCol(sp + a2)[l];
          const Slot r = def.fn(*this, argv);
          if (def.ret != BType::Void) res[l] = r;
        }
        if (def.ret != BType::Void) ++sp;
        break;
      }

      case Op::Dup: {
        const std::uint64_t* src = rawCol(stackCol(sp - 1));
        std::uint64_t* dst = rawCol(stackCol(sp));
        for (std::int32_t l = 0; l < cnt; ++l) dst[l] = src[l];
        ++sp;
        break;
      }
      case Op::Drop:
        --sp;
        break;

      case Op::RetVoid: {
        // This group's lanes are done; resume the most recently split group.
        if (nPending == 0) {
          currentFunction_ = savedFunction;
          return;
        }
        const Group g = pending[--nPending];
        laneOff = g.off;
        laneCount = g.cnt;
        ip = g.ip;
        sp = g.sp;
        retired = g.retired;
        break;
      }

      case Op::Trap:
        globalId_ = laneGid[laneOff];
        fault("non-void function reached the end without returning a value");
        break;

      // Excluded by FunctionCode::batchable; reaching one is a VM bug.
      case Op::PushF:
      case Op::LeaFrame:
      case Op::MemCopy:
      case Op::CallFn:
      case Op::Ret:
      default:
        globalId_ = laneGid[laneOff];
        fault("non-batchable instruction in batched execution");
    }
  }
}

}  // namespace skelcl::kc
