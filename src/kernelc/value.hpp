// Runtime value representation shared by the VM, builtins, and the OpenCL
// layer's argument marshalling.
#pragma once

#include <cstdint>

namespace skelcl::kc {

/// A device pointer: region 0 is the null region; regions >= 1 index the
/// VM's region table (kernel buffer arguments first, then frame memory).
struct Ptr {
  std::int32_t region = 0;
  std::uint32_t offset = 0;
};

/// One stack/local slot.  Statically typed bytecode knows which member is
/// active; float values are stored as doubles that are exactly representable
/// as float (every f32 operation re-rounds).
union Slot {
  std::int64_t i;
  double f;
  Ptr p;

  Slot() : i(0) {}

  static Slot fromInt(std::int64_t v) {
    Slot s;
    s.i = v;
    return s;
  }
  static Slot fromFloat(double v) {
    Slot s;
    s.f = v;
    return s;
  }
  static Slot fromPtr(Ptr v) {
    Slot s;
    s.i = 0;  // zero the full slot first
    s.p = v;
    return s;
  }
};

}  // namespace skelcl::kc
