// Static scheduling for heterogeneous devices (paper Section V).
//
// SkelCL predicts performance from (a) the known implementation of its
// skeletons and distributions (analytical models) and (b) measurement-based
// prediction of the *user-defined function* only: the function is run on a
// few sample elements through the kernel VM, which yields its exact
// instruction count, the same unit the device model is rated in.  The static
// scheduler turns per-device throughput predictions into proportional
// block-partition weights.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/device_spec.hpp"

namespace skelcl::detail {
class Session;
}  // namespace skelcl::detail

namespace skelcl::sched {

/// Measured cost of one user-function application, in VM instructions.
struct KernelCostEstimate {
  double instructionsPerElement = 0.0;
  std::uint64_t samples = 0;
};

/// Run the user function (named `func`, unary or binary over float) on
/// `samples` pseudo-random inputs through the VM and count instructions.
/// This is the "benchmarks ... only for the user-defined functions" part of
/// Section V.
KernelCostEstimate measureUserFunction(const std::string& userSource,
                                       std::uint64_t samples = 64);

/// Predicted sustained throughput of a device for a measured user function,
/// in elements/second, including the API efficiency of the OpenCL path.
double predictThroughput(const sim::DeviceSpec& device, const KernelCostEstimate& cost);

/// The static scheduler: block-partition weights proportional to predicted
/// device throughput.  Weights are normalized to sum to 1; devices below
/// `cutoffFraction` of the fastest device are excluded (weight 0) — giving a
/// slow CPU a sliver of a GPU-dominated workload only adds synchronization.
std::vector<double> staticWeights(const std::vector<sim::DeviceSpec>& devices,
                                  const KernelCostEstimate& cost,
                                  double cutoffFraction = 0.02);

/// Analytical skeleton model for reduce (Section V): the final fold of the
/// per-device partial vectors should run on the CPU when few elements
/// remain, because GPUs "provide poor performance when reducing only few
/// elements".  Returns true if the host should fold `elements` directly.
bool hostShouldFinishReduce(const sim::DeviceSpec& gpu, std::uint64_t elements,
                            const KernelCostEstimate& cost, double hostInstrPerSec);

/// Convenience: measure `userSource`, compute weights for the running SkelCL
/// runtime's devices and install them on the calling thread's current
/// session (each tenant schedules independently).
void autoSchedule(const std::string& userSource);

/// Same, but install the weights on an explicit session.
void autoSchedule(detail::Session& session, const std::string& userSource);

/// Cost of one element through a fused skeleton pipeline: the sum of the
/// per-stage instruction counts (the fused kernel evaluates every stage's
/// user function back to back on each element).  `stageSources` is
/// Pipeline::stageSources().
KernelCostEstimate measurePipelineCost(const std::vector<std::string>& stageSources,
                                       std::uint64_t samples = 64);

/// autoSchedule for a fused pipeline: weights from the summed per-stage cost.
void autoSchedule(const std::vector<std::string>& stageSources);

/// Same, but install the weights on an explicit session.
void autoSchedule(detail::Session& session, const std::vector<std::string>& stageSources);

}  // namespace skelcl::sched
