#include "sched/scheduler.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "base/error.hpp"
#include "core/detail/session.hpp"
#include "core/skelcl.hpp"
#include "kernelc/program.hpp"
#include "ocl/platform.hpp"
#include "sim/rng.hpp"

namespace skelcl::sched {

KernelCostEstimate measureUserFunction(const std::string& userSource, std::uint64_t samples) {
  SKELCL_CHECK(samples > 0, "need at least one sample");
  const auto program = kc::compileProgram(userSource);
  const int fn = program->findFunction("func");
  SKELCL_CHECK(fn >= 0, "user operation must define a function named 'func'");
  const auto& code = program->functions[static_cast<std::size_t>(fn)];
  SKELCL_CHECK(!code.paramTypes.empty() && code.paramTypes.size() <= 2,
               "measureUserFunction supports unary and binary scalar functions");

  kc::Vm vm(*program, {});
  sim::Rng rng(0x5eed);
  for (std::uint64_t i = 0; i < samples; ++i) {
    std::array<kc::Slot, 2> args;
    for (std::size_t a = 0; a < code.paramTypes.size(); ++a) {
      if (code.paramTypes[a] == kc::types::Float || code.paramTypes[a] == kc::types::Double) {
        args[a] = kc::Slot::fromFloat(rng.uniform(-100.0, 100.0));
      } else {
        args[a] = kc::Slot::fromInt(static_cast<std::int64_t>(rng.below(1000)));
      }
    }
    vm.callFunction(fn, std::span<const kc::Slot>(args.data(), code.paramTypes.size()));
  }

  KernelCostEstimate estimate;
  estimate.samples = samples;
  estimate.instructionsPerElement =
      static_cast<double>(vm.instructionsExecuted()) / static_cast<double>(samples);
  return estimate;
}

double predictThroughput(const sim::DeviceSpec& device, const KernelCostEstimate& cost) {
  SKELCL_CHECK(cost.instructionsPerElement > 0.0, "measure the user function first");
  const double rate = device.instrPerSec(ocl::apiEfficiency(ocl::Api::OpenCL), device.cores);
  return rate / cost.instructionsPerElement;
}

std::vector<double> staticWeights(const std::vector<sim::DeviceSpec>& devices,
                                  const KernelCostEstimate& cost, double cutoffFraction) {
  SKELCL_CHECK(!devices.empty(), "no devices");
  std::vector<double> weights(devices.size());
  double best = 0.0;
  for (std::size_t d = 0; d < devices.size(); ++d) {
    weights[d] = predictThroughput(devices[d], cost);
    best = std::max(best, weights[d]);
  }
  double total = 0.0;
  for (double& w : weights) {
    if (w < cutoffFraction * best) w = 0.0;
    total += w;
  }
  SKELCL_CHECK(total > 0.0, "all devices were cut off");
  for (double& w : weights) w /= total;
  return weights;
}

bool hostShouldFinishReduce(const sim::DeviceSpec& gpu, std::uint64_t elements,
                            const KernelCostEstimate& cost, double hostInstrPerSec) {
  // GPU time: a pairwise tree reduction exposes about elements/2 lanes of
  // parallelism at the widest level, and pays a kernel launch.  Host time: a
  // sequential fold, no launch overhead.
  const int lanes = static_cast<int>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(gpu.cores),
                              std::max<std::uint64_t>(elements / 2, 1)));
  const double gpuRate = gpu.instrPerSec(ocl::apiEfficiency(ocl::Api::OpenCL), lanes);
  const double gpuTime = gpu.launch_overhead_ocl_us * 1e-6 +
                         static_cast<double>(elements) * cost.instructionsPerElement / gpuRate;
  const double hostTime =
      static_cast<double>(elements) * cost.instructionsPerElement / hostInstrPerSec;
  return hostTime <= gpuTime;
}

void autoSchedule(detail::Session& session, const std::string& userSource) {
  const KernelCostEstimate cost = measureUserFunction(userSource);
  std::vector<sim::DeviceSpec> devices;
  for (int d = 0; d < session.deviceCount(); ++d) devices.push_back(session.device(d).spec());
  session.setPartitionWeights(staticWeights(devices, cost));
}

void autoSchedule(const std::string& userSource) {
  autoSchedule(detail::currentSession(), userSource);
}

KernelCostEstimate measurePipelineCost(const std::vector<std::string>& stageSources,
                                       std::uint64_t samples) {
  SKELCL_CHECK(!stageSources.empty(), "pipeline has no stages");
  KernelCostEstimate total;
  for (const std::string& source : stageSources) {
    const KernelCostEstimate stage = measureUserFunction(source, samples);
    total.instructionsPerElement += stage.instructionsPerElement;
    total.samples = stage.samples;
  }
  return total;
}

void autoSchedule(detail::Session& session, const std::vector<std::string>& stageSources) {
  const KernelCostEstimate cost = measurePipelineCost(stageSources);
  std::vector<sim::DeviceSpec> devices;
  for (int d = 0; d < session.deviceCount(); ++d) devices.push_back(session.device(d).spec());
  session.setPartitionWeights(staticWeights(devices, cost));
}

void autoSchedule(const std::vector<std::string>& stageSources) {
  autoSchedule(detail::currentSession(), stageSources);
}

}  // namespace skelcl::sched
