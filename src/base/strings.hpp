// Small string helpers used across modules (kernel source generation, logs).
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace skelcl::str {

/// Concatenate all arguments via operator<<.
template <typename... Ts>
std::string cat(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

/// Join the range with a separator.
inline std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

/// Replace every occurrence of `from` in `s` by `to`.
inline std::string replaceAll(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

/// True if `s` starts with `prefix`.
inline bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// Trim ASCII whitespace from both ends.
inline std::string_view trim(std::string_view s) {
  const char* ws = " \t\r\n";
  auto b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  auto e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

}  // namespace skelcl::str
