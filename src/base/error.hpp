// Common error types and check macros shared by all SkelCL-repro modules.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace skelcl {

/// Root of all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Violated API contract (bad argument, wrong usage order, ...).
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

/// Resource exhaustion (device memory, ...).
class ResourceError : public Error {
 public:
  explicit ResourceError(const std::string& what) : Error(what) {}
};

/// A session's VRAM quota would be exceeded (a *policy* limit, distinct from
/// the device running out of physical memory).  Derives from ResourceError so
/// quota-unaware code handles it like any exhaustion; the multi-tenant
/// service catches it specifically to queue the job instead of failing it.
class QuotaError : public ResourceError {
 public:
  explicit QuotaError(const std::string& what) : ResourceError(what) {}
};

/// The job was cancelled through Service::Handle::cancel before it ran.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

/// The job's per-submission deadline (simulated seconds) expired before the
/// service executor got to it.
class DeadlineError : public Error {
 public:
  explicit DeadlineError(const std::string& what) : Error(what) {}
};

/// Submit was called on a Service whose executor already stopped (or the job
/// was still queued when the service shut down).
class ServiceStoppedError : public Error {
 public:
  explicit ServiceStoppedError(const std::string& what) : Error(what) {}
};

/// The circuit breaker for this (session, kernel source) is open: the same
/// work failed deterministically too many times, so the service fails fast
/// instead of burning device time on it again.
class CircuitOpenError : public Error {
 public:
  explicit CircuitOpenError(const std::string& what) : Error(what) {}
};

/// A permanent device failure destroyed the only valid copy of some data
/// (e.g. diverged copy-distribution replicas that were never combined).
/// The runtime recovers automatically whenever a host copy or a surviving
/// replica exists; this error means it provably could not.
class DataLossError : public Error {
 public:
  explicit DataLossError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throwUsage(const char* cond, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check `" << cond << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw UsageError(os.str());
}
}  // namespace detail

}  // namespace skelcl

/// Contract check that throws skelcl::UsageError (always on, cheap conditions only).
#define SKELCL_CHECK(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) ::skelcl::detail::throwUsage(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
