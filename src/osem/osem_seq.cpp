// Sequential list-mode OSEM reference — a direct transcription of the
// paper's Listing 2.
#include "osem/osem.hpp"
#include "osem/siddon.hpp"

namespace skelcl::osem {

OsemResult runOsemSeq(const OsemData& data) {
  const VolumeSpec& vol = data.volume();
  std::vector<float> f(vol.voxels(), 1.0f);  // initially "empty" image
  std::vector<float> c(vol.voxels());

  for (int iteration = 0; iteration < data.config.iterations; ++iteration) {
    for (int l = 0; l < data.config.numSubsets; ++l) {
      const Event* events = data.subset(l);
      std::fill(c.begin(), c.end(), 0.0f);

      // step 1: compute the error image c
      for (std::size_t i = 0; i < data.subsetSize(); ++i) {
        const auto path = siddonPath(vol, events[i]);
        float fp = 0.0f;
        for (const PathElement& m : path) fp += f[m.voxel] * m.length;
        if (fp > 0.0f) {
          for (const PathElement& m : path) c[m.voxel] += m.length / fp;
        }
      }

      // step 2: update the reconstruction image f
      for (std::size_t j = 0; j < vol.voxels(); ++j) {
        if (c[j] > 0.0f) f[j] *= c[j];
      }
    }
  }

  OsemResult result;
  result.image = std::move(f);
  return result;
}

}  // namespace skelcl::osem
