// Synthetic activity phantom and PET scanner model.
//
// The paper reconstructs real quadHIDAC PET data (~1e8 events) that we do
// not have; per DESIGN.md this module generates the closest synthetic
// equivalent: events sampled from a known activity phantom on a cylindrical
// detector, exercising the identical code path (events -> LOR paths ->
// forward/backward projection).
#pragma once

#include <cstdint>
#include <vector>

#include "osem/geometry.hpp"

namespace skelcl::osem {

/// Piecewise phantom: a background cylinder of activity 1 holding a hot
/// sphere (activity 8) and a cold sphere (activity 0).
class Phantom {
 public:
  explicit Phantom(const VolumeSpec& vol);

  /// Activity at a point in world coordinates (mm).
  float activityAt(float x, float y, float z) const;

  /// The voxelized ground-truth activity image.
  const std::vector<float>& image() const { return image_; }
  const VolumeSpec& volume() const { return vol_; }

 private:
  VolumeSpec vol_;
  float cylinderRadius_;
  float cylinderHalfLen_;
  float hotCenter_[3];
  float hotRadius_;
  float coldCenter_[3];
  float coldRadius_;
  std::vector<float> image_;
};

/// Cylindrical PET scanner: generates list-mode events from a phantom.
class Scanner {
 public:
  /// Radius and half-length in mm; the detector must enclose the volume.
  Scanner(float radius, float halfLength) : radius_(radius), halfLength_(halfLength) {}

  float radius() const { return radius_; }
  float halfLength() const { return halfLength_; }

  /// Sample `count` coincidence events: emission points distributed with the
  /// phantom activity, isotropic LOR directions, endpoints on the detector
  /// cylinder.  Deterministic in `seed`.
  std::vector<Event> generateEvents(const Phantom& phantom, std::size_t count,
                                    std::uint64_t seed) const;

 private:
  float radius_;
  float halfLength_;
};

}  // namespace skelcl::osem
