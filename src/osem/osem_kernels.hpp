// Device code of the list-mode OSEM algorithm, in the kernel language.
//
// All three parallel implementations (SkelCL / raw socl / scuda) share this
// device code, just as the paper's implementations share one algorithm: the
// Siddon ray march (identical, operation for operation, to the host version
// in siddon.cpp), the step-1 forward/backward projection, and the step-2
// multiplicative update.  Figure 4a counts these lines as "kernel LOC".
#pragma once

#include <string>

namespace skelcl::osem {

/// `typedef struct { ... } Event;` for kernel programs.
const std::string& eventTypedefSource();

/// The ray-march core: `float osem_march(...)` (forward project or scatter).
const std::string& marchSource();

/// SkelCL user function for step 1 (index-based map with additional args).
const std::string& step1UserFunctionSource();

/// SkelCL user function for step 2 (zip).
const std::string& step2UserFunctionSource();

/// Complete raw kernels `osem_step1` / `osem_step2` for the OpenCL- and
/// CUDA-style implementations (typedef + march + __kernel wrappers).
const std::string& rawKernelsSource();

/// Register the Event struct with SkelCL's type registry (idempotent).
void registerOsemKernelTypes();

}  // namespace skelcl::osem
