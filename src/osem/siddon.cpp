#include "osem/siddon.hpp"

#include <algorithm>
#include <cmath>

namespace skelcl::osem {

namespace {

constexpr float kInf = 1e30f;

struct Clip {
  float tmin;
  float tmax;
  bool hit;
};

/// Clip the parametric segment p + t*(d), t in [0,1], against the volume box.
Clip clip(const VolumeSpec& vol, const Event& e) {
  const float d[3] = {e.x2 - e.x1, e.y2 - e.y1, e.z2 - e.z1};
  const float p[3] = {e.x1, e.y1, e.z1};
  const float lo[3] = {vol.originX(), vol.originY(), vol.originZ()};
  const float hi[3] = {vol.originX() + static_cast<float>(vol.nx) * vol.voxel,
                       vol.originY() + static_cast<float>(vol.ny) * vol.voxel,
                       vol.originZ() + static_cast<float>(vol.nz) * vol.voxel};
  float tmin = 0.0f;
  float tmax = 1.0f;
  for (int a = 0; a < 3; ++a) {
    if (std::fabs(d[a]) < 1e-12f) {
      if (p[a] < lo[a] || p[a] >= hi[a]) return {0.0f, 0.0f, false};
      continue;
    }
    float t0 = (lo[a] - p[a]) / d[a];
    float t1 = (hi[a] - p[a]) / d[a];
    if (t0 > t1) std::swap(t0, t1);
    tmin = std::max(tmin, t0);
    tmax = std::min(tmax, t1);
  }
  if (tmin >= tmax) return {0.0f, 0.0f, false};
  return {tmin, tmax, true};
}

}  // namespace

float clippedSegmentLength(const VolumeSpec& vol, const Event& e) {
  const Clip c = clip(vol, e);
  if (!c.hit) return 0.0f;
  const float dx = e.x2 - e.x1;
  const float dy = e.y2 - e.y1;
  const float dz = e.z2 - e.z1;
  const float len = std::sqrt(dx * dx + dy * dy + dz * dz);
  return (c.tmax - c.tmin) * len;
}

std::vector<PathElement> siddonPath(const VolumeSpec& vol, const Event& e) {
  std::vector<PathElement> path;
  const Clip c = clip(vol, e);
  if (!c.hit) return path;

  const float dx = e.x2 - e.x1;
  const float dy = e.y2 - e.y1;
  const float dz = e.z2 - e.z1;
  const float len = std::sqrt(dx * dx + dy * dy + dz * dz);
  if (len == 0.0f) return path;

  const float ox = vol.originX();
  const float oy = vol.originY();
  const float oz = vol.originZ();
  const float v = vol.voxel;

  // entry voxel
  const float px = e.x1 + c.tmin * dx;
  const float py = e.y1 + c.tmin * dy;
  const float pz = e.z1 + c.tmin * dz;
  int ix = std::clamp(static_cast<int>(std::floor((px - ox) / v)), 0, vol.nx - 1);
  int iy = std::clamp(static_cast<int>(std::floor((py - oy) / v)), 0, vol.ny - 1);
  int iz = std::clamp(static_cast<int>(std::floor((pz - oz) / v)), 0, vol.nz - 1);

  const int sx = dx > 0.0f ? 1 : -1;
  const int sy = dy > 0.0f ? 1 : -1;
  const int sz = dz > 0.0f ? 1 : -1;

  const float tDeltaX = std::fabs(dx) > 1e-12f ? v / std::fabs(dx) : kInf;
  const float tDeltaY = std::fabs(dy) > 1e-12f ? v / std::fabs(dy) : kInf;
  const float tDeltaZ = std::fabs(dz) > 1e-12f ? v / std::fabs(dz) : kInf;

  auto nextCrossing = [](float p1, float d, float origin, float voxel, int index,
                         int step) -> float {
    if (std::fabs(d) <= 1e-12f) return kInf;
    const float plane = origin + (static_cast<float>(index) + (step > 0 ? 1.0f : 0.0f)) * voxel;
    return (plane - p1) / d;
  };
  float tNextX = nextCrossing(e.x1, dx, ox, v, ix, sx);
  float tNextY = nextCrossing(e.y1, dy, oy, v, iy, sy);
  float tNextZ = nextCrossing(e.z1, dz, oz, v, iz, sz);

  float t = c.tmin;
  for (;;) {
    float tn = std::min(tNextX, std::min(tNextY, tNextZ));
    if (tn > c.tmax) tn = c.tmax;
    const float seg = (tn - t) * len;
    if (seg > 0.0f) {
      path.push_back(PathElement{vol.index(ix, iy, iz), seg});
    }
    if (tn >= c.tmax) break;
    if (tNextX <= tNextY && tNextX <= tNextZ) {
      ix += sx;
      if (ix < 0 || ix >= vol.nx) break;
      tNextX += tDeltaX;
    } else if (tNextY <= tNextZ) {
      iy += sy;
      if (iy < 0 || iy >= vol.ny) break;
      tNextY += tDeltaY;
    } else {
      iz += sz;
      if (iz < 0 || iz >= vol.nz) break;
      tNextZ += tDeltaZ;
    }
    t = tn;
  }
  return path;
}

}  // namespace skelcl::osem
