#include <cmath>

#include "base/error.hpp"
#include "osem/osem.hpp"

namespace skelcl::osem {

OsemData OsemData::generate(const OsemConfig& config) {
  SKELCL_CHECK(config.numSubsets >= 1, "need at least one subset");
  SKELCL_CHECK(config.eventsPerSubset >= 1, "need events");

  Phantom phantom(config.volume);
  const float halfX = 0.5f * static_cast<float>(config.volume.nx) * config.volume.voxel;
  const float halfZ = 0.5f * static_cast<float>(config.volume.nz) * config.volume.voxel;
  Scanner scanner(/*radius=*/1.6f * halfX, /*halfLength=*/2.5f * halfZ);

  const std::size_t total =
      config.eventsPerSubset * static_cast<std::size_t>(config.numSubsets);
  std::vector<Event> events = scanner.generateEvents(phantom, total, config.seed);

  return OsemData{config, std::move(phantom), std::move(events)};
}

double imageCorrelation(const std::vector<float>& a, const std::vector<float>& b) {
  SKELCL_CHECK(a.size() == b.size() && !a.empty(), "image size mismatch");
  double meanA = 0.0;
  double meanB = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    meanA += a[i];
    meanB += b[i];
  }
  meanA /= static_cast<double>(a.size());
  meanB /= static_cast<double>(b.size());
  double cov = 0.0;
  double varA = 0.0;
  double varB = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - meanA;
    const double db = b[i] - meanB;
    cov += da * db;
    varA += da * da;
    varB += db * db;
  }
  if (varA == 0.0 || varB == 0.0) return 0.0;
  return cov / std::sqrt(varA * varB);
}

double imageNrmse(const std::vector<float>& image, const std::vector<float>& reference) {
  SKELCL_CHECK(image.size() == reference.size() && !image.empty(), "image size mismatch");
  double sq = 0.0;
  double mean = 0.0;
  for (std::size_t i = 0; i < image.size(); ++i) {
    const double d = image[i] - reference[i];
    sq += d * d;
    mean += reference[i];
  }
  mean /= static_cast<double>(reference.size());
  if (mean == 0.0) return std::sqrt(sq / static_cast<double>(image.size()));
  return std::sqrt(sq / static_cast<double>(image.size())) / mean;
}

}  // namespace skelcl::osem
