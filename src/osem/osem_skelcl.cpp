// List-mode OSEM in SkelCL — the paper's Listing 3.
//
// The hybrid parallelization strategy (Section IV-A): step 1 uses Projection
// Space Decomposition (events block-distributed, image copy-distributed),
// step 2 uses Image Space Decomposition (both images block-distributed).
// All data movement between the phases is expressed as distribution changes;
// SkelCL performs the transfers implicitly and lazily.
//
// The OSEM-LOC markers delimit what Figure 4a counts as "host code".
#include "core/skelcl.hpp"
#include "osem/osem.hpp"
#include "osem/osem_kernels.hpp"

namespace skelcl::osem {

namespace {

OsemResult reconstructSkelCL(const OsemData& data) {
  const VolumeSpec& vol = data.volume();
  const int n = static_cast<int>(vol.voxels());
  std::vector<double> subsetTimes;

  // OSEM-LOC-BEGIN(skelcl-host)
  Map<int(Index)> mapComputeC(step1UserFunctionSource());
  Zip<float> zipUpdate(step2UserFunctionSource());
  Vector<float> f(vol.voxels());
  std::fill(f.begin(), f.end(), 1.0f);

  for (int it = 0; it < data.config.iterations; ++it) {
    for (int l = 0; l < data.config.numSubsets; ++l) {
      const double t0 = simTimeSeconds();
      /* 1. Upload: distribute events to devices */
      Vector<Event> events(std::vector<Event>(data.subset(l), data.subset(l) + data.subsetSize()));
      IndexVector index(data.subsetSize());
      events.setDistribution(Distribution::block());
      index.setDistribution(Distribution::block());
      f.setDistribution(Distribution::copy());
      Vector<float> c(vol.voxels());
      c.setDistribution(Distribution::copy("float func(float a, float b) { return a + b; }"));
      /* 2. Step 1: compute error image (map skeleton) */
      mapComputeC(index, events, events.offsets(), events.sizes(), f, c,
                  vol.nx, vol.ny, vol.nz, vol.voxel);
      c.dataOnDevicesModified();
      /* 3. Redistribution: reduce (element-wise add) all error images and
         distribute the result and the reconstruction image to the devices */
      f.setDistribution(Distribution::block());
      c.setDistribution(Distribution::block());
      /* 4. Step 2: update reconstruction image (zip skeleton) */
      zipUpdate(out(f), f, c);
      /* 5. Download: merging is performed implicitly */
      finish();
      subsetTimes.push_back(simTimeSeconds() - t0);
      (void)n;
    }
  }
  // OSEM-LOC-END(skelcl-host)

  OsemResult result;
  result.image.assign(f.begin(), f.end());
  double sum = 0.0;
  for (std::size_t i = 1; i < subsetTimes.size(); ++i) sum += subsetTimes[i];
  result.secondsPerSubset =
      subsetTimes.size() > 1 ? sum / static_cast<double>(subsetTimes.size() - 1)
                             : subsetTimes.front();
  result.totalSimSeconds = simTimeSeconds();
  return result;
}

OsemResult reconstructSkelCLSingle(const OsemData& data) {
  const VolumeSpec& vol = data.volume();
  std::vector<double> subsetTimes;

  // OSEM-LOC-BEGIN(skelcl-single-host)
  Map<int(Index)> mapComputeC(step1UserFunctionSource());
  Zip<float> zipUpdate(step2UserFunctionSource());
  Vector<float> f(vol.voxels());
  std::fill(f.begin(), f.end(), 1.0f);

  for (int it = 0; it < data.config.iterations; ++it) {
    for (int l = 0; l < data.config.numSubsets; ++l) {
      const double t0 = simTimeSeconds();
      Vector<Event> events(std::vector<Event>(data.subset(l), data.subset(l) + data.subsetSize()));
      IndexVector index(data.subsetSize());
      events.setDistribution(Distribution::single());
      index.setDistribution(Distribution::single());
      f.setDistribution(Distribution::single());
      Vector<float> c(vol.voxels());
      c.setDistribution(Distribution::single());
      mapComputeC(index, events, events.offsets(), events.sizes(), f, c,
                  vol.nx, vol.ny, vol.nz, vol.voxel);
      c.dataOnDevicesModified();
      zipUpdate(out(f), f, c);
      finish();
      subsetTimes.push_back(simTimeSeconds() - t0);
    }
  }
  // OSEM-LOC-END(skelcl-single-host)

  OsemResult result;
  result.image.assign(f.begin(), f.end());
  double sum = 0.0;
  for (std::size_t i = 1; i < subsetTimes.size(); ++i) sum += subsetTimes[i];
  result.secondsPerSubset =
      subsetTimes.size() > 1 ? sum / static_cast<double>(subsetTimes.size() - 1)
                             : subsetTimes.front();
  result.totalSimSeconds = simTimeSeconds();
  return result;
}

}  // namespace

OsemResult runOsemSkelCLPreInitialized(const OsemData& data) {
  registerOsemKernelTypes();
  return reconstructSkelCL(data);
}

OsemResult runOsemSkelCL(const OsemData& data, int numGpus) {
  registerOsemKernelTypes();
  init(sim::SystemConfig::teslaS1070(numGpus));
  OsemResult result;
  try {
    result = reconstructSkelCL(data);
  } catch (...) {
    terminate();
    throw;
  }
  terminate();
  return result;
}

OsemResult runOsemSkelCLSingle(const OsemData& data) {
  registerOsemKernelTypes();
  init(sim::SystemConfig::teslaS1070(1));
  OsemResult result;
  try {
    result = reconstructSkelCLSingle(data);
  } catch (...) {
    terminate();
    throw;
  }
  terminate();
  return result;
}

}  // namespace skelcl::osem
