// Host-side Siddon ray traversal: the voxels a Line Of Response crosses and
// the intersection length in each.  The sequential OSEM reference uses this
// directly; the device kernels implement the identical algorithm in the
// kernel language (osem_kernels.cpp), and the tests check both agree.
#pragma once

#include <vector>

#include "osem/geometry.hpp"

namespace skelcl::osem {

struct PathElement {
  std::size_t voxel;  ///< linear voxel index
  float length;       ///< intersection length (mm)
};

/// Compute the intersection path of the segment (event.x1..) -> (event.x2..)
/// with the volume grid.  Voxels outside the grid contribute nothing.
/// Float arithmetic mirrors the device kernel operation-for-operation.
std::vector<PathElement> siddonPath(const VolumeSpec& vol, const Event& event);

/// Total length of the clipped segment inside the volume (for tests:
/// the path lengths must sum to this, within float tolerance).
float clippedSegmentLength(const VolumeSpec& vol, const Event& event);

}  // namespace skelcl::osem
