#include "osem/osem_kernels.hpp"

#include "core/type_name.hpp"
#include "osem/geometry.hpp"

namespace skelcl::osem {

// OSEM-LOC-BEGIN(kernel)
const std::string& eventTypedefSource() {
  static const std::string source = R"(
typedef struct {
  float x1; float y1; float z1;
  float x2; float y2; float z2;
} Event;
)";
  return source;
}

const std::string& marchSource() {
  // March the LOR (x1,y1,z1)->(x2,y2,z2) through the voxel grid (Siddon).
  // mode 0: return the forward projection  sum f[v] * len(v).
  // mode 1: scatter len(v) / fp into the error image c (atomic).
  static const std::string source = R"(
float osem_march(float x1, float y1, float z1, float x2, float y2, float z2,
                 __global float* f, __global float* c,
                 int nx, int ny, int nz, float voxel, float fp, int mode) {
  float ox = -0.5f * (float)nx * voxel;
  float oy = -0.5f * (float)ny * voxel;
  float oz = -0.5f * (float)nz * voxel;
  float hx = ox + (float)nx * voxel;
  float hy = oy + (float)ny * voxel;
  float hz = oz + (float)nz * voxel;

  float dx = x2 - x1;
  float dy = y2 - y1;
  float dz = z2 - z1;

  /* clip the parametric segment t in [0,1] against the volume box */
  float tmin = 0.0f;
  float tmax = 1.0f;
  if (fabs(dx) < 1e-12f) {
    if (x1 < ox || x1 >= hx) return 0.0f;
  } else {
    float t0 = (ox - x1) / dx;
    float t1 = (hx - x1) / dx;
    if (t0 > t1) { float tt = t0; t0 = t1; t1 = tt; }
    tmin = fmax(tmin, t0);
    tmax = fmin(tmax, t1);
  }
  if (fabs(dy) < 1e-12f) {
    if (y1 < oy || y1 >= hy) return 0.0f;
  } else {
    float t0 = (oy - y1) / dy;
    float t1 = (hy - y1) / dy;
    if (t0 > t1) { float tt = t0; t0 = t1; t1 = tt; }
    tmin = fmax(tmin, t0);
    tmax = fmin(tmax, t1);
  }
  if (fabs(dz) < 1e-12f) {
    if (z1 < oz || z1 >= hz) return 0.0f;
  } else {
    float t0 = (oz - z1) / dz;
    float t1 = (hz - z1) / dz;
    if (t0 > t1) { float tt = t0; t0 = t1; t1 = tt; }
    tmin = fmax(tmin, t0);
    tmax = fmin(tmax, t1);
  }
  if (tmin >= tmax) return 0.0f;

  float len = sqrt(dx * dx + dy * dy + dz * dz);
  if (len == 0.0f) return 0.0f;

  /* entry voxel */
  float px = x1 + tmin * dx;
  float py = y1 + tmin * dy;
  float pz = z1 + tmin * dz;
  int ix = clamp((int)floor((px - ox) / voxel), 0, nx - 1);
  int iy = clamp((int)floor((py - oy) / voxel), 0, ny - 1);
  int iz = clamp((int)floor((pz - oz) / voxel), 0, nz - 1);

  int sx = dx > 0.0f ? 1 : -1;
  int sy = dy > 0.0f ? 1 : -1;
  int sz = dz > 0.0f ? 1 : -1;

  float tDeltaX = fabs(dx) > 1e-12f ? voxel / fabs(dx) : 1e30f;
  float tDeltaY = fabs(dy) > 1e-12f ? voxel / fabs(dy) : 1e30f;
  float tDeltaZ = fabs(dz) > 1e-12f ? voxel / fabs(dz) : 1e30f;

  float tNextX = 1e30f;
  float tNextY = 1e30f;
  float tNextZ = 1e30f;
  if (fabs(dx) > 1e-12f) {
    float plane = ox + ((float)ix + (sx > 0 ? 1.0f : 0.0f)) * voxel;
    tNextX = (plane - x1) / dx;
  }
  if (fabs(dy) > 1e-12f) {
    float plane = oy + ((float)iy + (sy > 0 ? 1.0f : 0.0f)) * voxel;
    tNextY = (plane - y1) / dy;
  }
  if (fabs(dz) > 1e-12f) {
    float plane = oz + ((float)iz + (sz > 0 ? 1.0f : 0.0f)) * voxel;
    tNextZ = (plane - z1) / dz;
  }

  float t = tmin;
  float acc = 0.0f;
  for (;;) {
    float tn = fmin(tNextX, fmin(tNextY, tNextZ));
    if (tn > tmax) tn = tmax;
    float seg = (tn - t) * len;
    if (seg > 0.0f) {
      int v = (iz * ny + iy) * nx + ix;
      if (mode == 1) {
        atomic_add_f(c + v, seg / fp);
      } else {
        acc += f[v] * seg;
      }
    }
    if (tn >= tmax) break;
    if (tNextX <= tNextY && tNextX <= tNextZ) {
      ix += sx;
      if (ix < 0 || ix >= nx) break;
      tNextX += tDeltaX;
    } else if (tNextY <= tNextZ) {
      iy += sy;
      if (iy < 0 || iy >= ny) break;
      tNextY += tDeltaY;
    } else {
      iz += sz;
      if (iz < 0 || iz >= nz) break;
      tNextZ += tDeltaZ;
    }
    t = tn;
  }
  return acc;
}
)";
  return source;
}

const std::string& step1UserFunctionSource() {
  // SkelCL user function: the map's global index is converted into an index
  // into this device's sub-subset with the offsets()/sizes() tokens.  The
  // Event typedef is injected by SkelCL itself (registerKernelType).
  static const std::string source = marchSource() + R"(
int func(int i, __global Event* events, int evOffset, int evCount,
         __global float* f, __global float* c,
         int nx, int ny, int nz, float voxel) {
  int li = i - evOffset;
  if (li < 0 || li >= evCount) return 0;
  Event e = events[li];
  float fp = osem_march(e.x1, e.y1, e.z1, e.x2, e.y2, e.z2,
                        f, c, nx, ny, nz, voxel, 1.0f, 0);
  if (fp > 0.0f) {
    osem_march(e.x1, e.y1, e.z1, e.x2, e.y2, e.z2,
               f, c, nx, ny, nz, voxel, fp, 1);
  }
  return 0;
}
)";
  return source;
}

const std::string& step2UserFunctionSource() {
  static const std::string source = R"(
float func(float fj, float cj) {
  return cj > 0.0f ? fj * cj : fj;
}
)";
  return source;
}

const std::string& rawKernelsSource() {
  static const std::string source = eventTypedefSource() + marchSource() + R"(
__kernel void osem_step1(__global Event* events, int numEvents,
                         __global float* f, __global float* c,
                         int nx, int ny, int nz, float voxel) {
  int i = get_global_id(0);
  if (i >= numEvents) return;
  Event e = events[i];
  float fp = osem_march(e.x1, e.y1, e.z1, e.x2, e.y2, e.z2,
                        f, c, nx, ny, nz, voxel, 1.0f, 0);
  if (fp > 0.0f) {
    osem_march(e.x1, e.y1, e.z1, e.x2, e.y2, e.z2,
               f, c, nx, ny, nz, voxel, fp, 1);
  }
}

__kernel void osem_step2(__global float* f, __global float* c, int n) {
  int j = get_global_id(0);
  if (j < n) {
    if (c[j] > 0.0f) f[j] = f[j] * c[j];
  }
}
)";
  return source;
}
// OSEM-LOC-END(kernel)

void registerOsemKernelTypes() {
  registerKernelType<Event>("Event", eventTypedefSource());
}

}  // namespace skelcl::osem
