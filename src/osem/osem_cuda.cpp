// List-mode OSEM against the CUDA-style runtime (scuda) — the paper's second
// baseline.  CUDA needs no platform discovery or runtime compilation, which
// is why its single-GPU host code is considerably shorter than OpenCL's
// (Figure 4a); the multi-GPU data movement, however, is just as explicit.
//
// The OSEM-LOC markers delimit what Figure 4a counts as "host code".
#include <algorithm>
#include <vector>

#include "cuda/scuda.hpp"
#include "osem/osem.hpp"
#include "osem/osem_kernels.hpp"

namespace skelcl::osem {

namespace {

double averageExcludingFirst(const std::vector<double>& times) {
  if (times.size() <= 1) return times.empty() ? 0.0 : times.front();
  double sum = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) sum += times[i];
  return sum / static_cast<double>(times.size() - 1);
}

}  // namespace

OsemResult runOsemCuda(const OsemData& data, int numGpus) {
  const VolumeSpec& vol = data.volume();
  const std::size_t nVox = vol.voxels();
  const std::size_t imgBytes = nVox * sizeof(float);
  std::vector<double> subsetTimes;
  std::vector<float> f(nVox, 1.0f);

  // OSEM-LOC-BEGIN(cuda-multi-host)
  scuda::Runtime rt(sim::SystemConfig::teslaS1070(numGpus), {rawKernelsSource()});
  scuda::KernelHandle step1 = rt.kernel("osem_step1");
  scuda::KernelHandle step2 = rt.kernel("osem_step2");
  const int numDevices = rt.deviceCount();

  std::vector<float> c(nVox);
  std::vector<float> cDevice(nVox);

  for (int it = 0; it < data.config.iterations; ++it) {
    for (int l = 0; l < data.config.numSubsets; ++l) {
      const double t0 = rt.system().hostNow();
      const Event* subset = data.subset(l);
      const std::size_t numEvents = data.subsetSize();

      // phase 1: upload — sub-subset offsets, events + full f to each GPU
      std::vector<std::size_t> evOffset(static_cast<std::size_t>(numDevices) + 1, 0);
      for (int d = 0; d < numDevices; ++d) {
        const std::size_t part = numEvents / static_cast<std::size_t>(numDevices) +
                                 (static_cast<std::size_t>(d) <
                                          numEvents % static_cast<std::size_t>(numDevices)
                                      ? 1
                                      : 0);
        evOffset[static_cast<std::size_t>(d) + 1] = evOffset[static_cast<std::size_t>(d)] + part;
      }
      std::vector<scuda::DevPtr> dEvents(static_cast<std::size_t>(numDevices));
      std::vector<scuda::DevPtr> dF(static_cast<std::size_t>(numDevices));
      std::vector<scuda::DevPtr> dC(static_cast<std::size_t>(numDevices));
      for (int d = 0; d < numDevices; ++d) {
        rt.setDevice(d);
        const std::size_t begin = evOffset[static_cast<std::size_t>(d)];
        const std::size_t count = evOffset[static_cast<std::size_t>(d) + 1] - begin;
        dEvents[static_cast<std::size_t>(d)] =
            rt.malloc(std::max<std::size_t>(count, 1) * sizeof(Event));
        dF[static_cast<std::size_t>(d)] = rt.malloc(imgBytes);
        dC[static_cast<std::size_t>(d)] = rt.malloc(imgBytes);
        if (count > 0) {
          rt.memcpyAsync(dEvents[static_cast<std::size_t>(d)], subset + begin,
                         count * sizeof(Event));
        }
        rt.memcpyAsync(dF[static_cast<std::size_t>(d)], f.data(), imgBytes);
        rt.memset(dC[static_cast<std::size_t>(d)], 0, imgBytes);
      }

      // phase 2: step 1 on every GPU
      for (int d = 0; d < numDevices; ++d) {
        rt.setDevice(d);
        const std::size_t count =
            evOffset[static_cast<std::size_t>(d) + 1] - evOffset[static_cast<std::size_t>(d)];
        if (count == 0) continue;
        rt.launch(step1, count, dEvents[static_cast<std::size_t>(d)],
                  static_cast<std::int32_t>(count), dF[static_cast<std::size_t>(d)],
                  dC[static_cast<std::size_t>(d)], vol.nx, vol.ny, vol.nz, vol.voxel);
      }

      // phase 3: redistribution — gather error images (overlapped downloads),
      // combine on host, repartition both images for the ISD phase
      std::fill(c.begin(), c.end(), 0.0f);
      cDevice.resize(nVox * static_cast<std::size_t>(numDevices));
      for (int d = 0; d < numDevices; ++d) {
        rt.memcpyAsync(cDevice.data() + static_cast<std::size_t>(d) * nVox,
                       dC[static_cast<std::size_t>(d)], imgBytes);
      }
      rt.synchronize();
      for (int d = 0; d < numDevices; ++d) {
        const float* part = cDevice.data() + static_cast<std::size_t>(d) * nVox;
        for (std::size_t j = 0; j < nVox; ++j) c[j] += part[j];
      }
      rt.system().reserveHostCompute(2 * imgBytes * static_cast<std::size_t>(numDevices),
                                     nVox * static_cast<std::size_t>(numDevices));

      std::vector<std::size_t> imOffset(static_cast<std::size_t>(numDevices) + 1, 0);
      for (int d = 0; d < numDevices; ++d) {
        const std::size_t part = nVox / static_cast<std::size_t>(numDevices) +
                                 (static_cast<std::size_t>(d) <
                                          nVox % static_cast<std::size_t>(numDevices)
                                      ? 1
                                      : 0);
        imOffset[static_cast<std::size_t>(d) + 1] = imOffset[static_cast<std::size_t>(d)] + part;
      }
      std::vector<scuda::DevPtr> dFPart(static_cast<std::size_t>(numDevices));
      std::vector<scuda::DevPtr> dCPart(static_cast<std::size_t>(numDevices));
      for (int d = 0; d < numDevices; ++d) {
        rt.setDevice(d);
        const std::size_t begin = imOffset[static_cast<std::size_t>(d)];
        const std::size_t count = imOffset[static_cast<std::size_t>(d) + 1] - begin;
        dFPart[static_cast<std::size_t>(d)] =
            rt.malloc(std::max<std::size_t>(count, 1) * sizeof(float));
        dCPart[static_cast<std::size_t>(d)] =
            rt.malloc(std::max<std::size_t>(count, 1) * sizeof(float));
        if (count == 0) continue;
        rt.memcpyAsync(dFPart[static_cast<std::size_t>(d)], f.data() + begin,
                       count * sizeof(float));
        rt.memcpyAsync(dCPart[static_cast<std::size_t>(d)], c.data() + begin,
                       count * sizeof(float));
      }

      // phase 4: step 2 on every GPU
      for (int d = 0; d < numDevices; ++d) {
        rt.setDevice(d);
        const std::size_t count =
            imOffset[static_cast<std::size_t>(d) + 1] - imOffset[static_cast<std::size_t>(d)];
        if (count == 0) continue;
        rt.launch(step2, count, dFPart[static_cast<std::size_t>(d)],
                  dCPart[static_cast<std::size_t>(d)], static_cast<std::int32_t>(count));
      }

      // phase 5: download and merge the updated image parts (overlapped)
      for (int d = 0; d < numDevices; ++d) {
        const std::size_t begin = imOffset[static_cast<std::size_t>(d)];
        const std::size_t count = imOffset[static_cast<std::size_t>(d) + 1] - begin;
        if (count == 0) continue;
        rt.memcpyAsync(f.data() + begin, dFPart[static_cast<std::size_t>(d)],
                       count * sizeof(float));
      }
      rt.synchronize();

      for (int d = 0; d < numDevices; ++d) {
        rt.free(dEvents[static_cast<std::size_t>(d)]);
        rt.free(dF[static_cast<std::size_t>(d)]);
        rt.free(dC[static_cast<std::size_t>(d)]);
        rt.free(dFPart[static_cast<std::size_t>(d)]);
        rt.free(dCPart[static_cast<std::size_t>(d)]);
      }
      subsetTimes.push_back(rt.system().hostNow() - t0);
    }
  }
  // OSEM-LOC-END(cuda-multi-host)

  OsemResult result;
  result.image = std::move(f);
  result.secondsPerSubset = averageExcludingFirst(subsetTimes);
  result.totalSimSeconds = rt.system().hostNow();
  return result;
}

OsemResult runOsemCudaSingle(const OsemData& data) {
  const VolumeSpec& vol = data.volume();
  const std::size_t nVox = vol.voxels();
  const std::size_t imgBytes = nVox * sizeof(float);
  std::vector<double> subsetTimes;
  std::vector<float> f(nVox, 1.0f);

  // OSEM-LOC-BEGIN(cuda-single-host)
  scuda::Runtime rt(sim::SystemConfig::teslaS1070(1), {rawKernelsSource()});
  scuda::KernelHandle step1 = rt.kernel("osem_step1");
  scuda::KernelHandle step2 = rt.kernel("osem_step2");

  for (int it = 0; it < data.config.iterations; ++it) {
    for (int l = 0; l < data.config.numSubsets; ++l) {
      const double t0 = rt.system().hostNow();
      const Event* subset = data.subset(l);
      const std::size_t numEvents = data.subsetSize();

      const scuda::DevPtr dEvents = rt.malloc(numEvents * sizeof(Event));
      const scuda::DevPtr dF = rt.malloc(imgBytes);
      const scuda::DevPtr dC = rt.malloc(imgBytes);
      rt.memcpy(dEvents, subset, numEvents * sizeof(Event));
      rt.memcpy(dF, f.data(), imgBytes);
      rt.memset(dC, 0, imgBytes);

      rt.launch(step1, numEvents, dEvents, static_cast<std::int32_t>(numEvents), dF, dC,
                vol.nx, vol.ny, vol.nz, vol.voxel);
      rt.launch(step2, nVox, dF, dC, static_cast<std::int32_t>(nVox));

      rt.memcpy(f.data(), dF, imgBytes);
      rt.synchronize();
      rt.free(dEvents);
      rt.free(dF);
      rt.free(dC);
      subsetTimes.push_back(rt.system().hostNow() - t0);
    }
  }
  // OSEM-LOC-END(cuda-single-host)

  OsemResult result;
  result.image = std::move(f);
  result.secondsPerSubset = averageExcludingFirst(subsetTimes);
  result.totalSimSeconds = rt.system().hostNow();
  return result;
}

}  // namespace skelcl::osem
