#include "osem/phantom.hpp"

#include <cmath>

#include "base/error.hpp"
#include "sim/rng.hpp"

namespace skelcl::osem {

Phantom::Phantom(const VolumeSpec& vol) : vol_(vol) {
  const float halfX = 0.5f * static_cast<float>(vol.nx) * vol.voxel;
  const float halfZ = 0.5f * static_cast<float>(vol.nz) * vol.voxel;
  cylinderRadius_ = 0.8f * halfX;
  cylinderHalfLen_ = 0.85f * halfZ;

  hotRadius_ = 0.25f * cylinderRadius_;
  hotCenter_[0] = 0.4f * cylinderRadius_;
  hotCenter_[1] = 0.25f * cylinderRadius_;
  hotCenter_[2] = 0.2f * cylinderHalfLen_;

  coldRadius_ = 0.2f * cylinderRadius_;
  coldCenter_[0] = -0.45f * cylinderRadius_;
  coldCenter_[1] = -0.2f * cylinderRadius_;
  coldCenter_[2] = -0.3f * cylinderHalfLen_;

  image_.resize(vol.voxels());
  for (int iz = 0; iz < vol.nz; ++iz) {
    for (int iy = 0; iy < vol.ny; ++iy) {
      for (int ix = 0; ix < vol.nx; ++ix) {
        const float x = vol.originX() + (static_cast<float>(ix) + 0.5f) * vol.voxel;
        const float y = vol.originY() + (static_cast<float>(iy) + 0.5f) * vol.voxel;
        const float z = vol.originZ() + (static_cast<float>(iz) + 0.5f) * vol.voxel;
        image_[vol.index(ix, iy, iz)] = activityAt(x, y, z);
      }
    }
  }
}

float Phantom::activityAt(float x, float y, float z) const {
  if (x * x + y * y > cylinderRadius_ * cylinderRadius_ ||
      std::fabs(z) > cylinderHalfLen_) {
    return 0.0f;
  }
  auto inSphere = [&](const float* c, float r) {
    const float dx = x - c[0];
    const float dy = y - c[1];
    const float dz = z - c[2];
    return dx * dx + dy * dy + dz * dz <= r * r;
  };
  if (inSphere(hotCenter_, hotRadius_)) return 8.0f;
  if (inSphere(coldCenter_, coldRadius_)) return 0.0f;
  return 1.0f;
}

std::vector<Event> Scanner::generateEvents(const Phantom& phantom, std::size_t count,
                                           std::uint64_t seed) const {
  const VolumeSpec& vol = phantom.volume();
  SKELCL_CHECK(radius_ > 0.6f * static_cast<float>(vol.nx) * vol.voxel &&
                   halfLength_ > 0.5f * static_cast<float>(vol.nz) * vol.voxel,
               "detector must enclose the volume");

  // CDF over voxels for inverse-transform sampling of the emission point.
  const auto& act = phantom.image();
  std::vector<double> cdf(act.size());
  double total = 0.0;
  for (std::size_t i = 0; i < act.size(); ++i) {
    total += act[i];
    cdf[i] = total;
  }
  SKELCL_CHECK(total > 0.0, "phantom has no activity");

  sim::Rng rng(seed);
  std::vector<Event> events;
  events.reserve(count);

  while (events.size() < count) {
    // emission voxel ~ activity
    const double u = rng.nextDouble() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const std::size_t voxel = static_cast<std::size_t>(it - cdf.begin());
    const int ix = static_cast<int>(voxel % static_cast<std::size_t>(vol.nx));
    const int iy = static_cast<int>((voxel / static_cast<std::size_t>(vol.nx)) %
                                    static_cast<std::size_t>(vol.ny));
    const int iz = static_cast<int>(voxel /
                                    (static_cast<std::size_t>(vol.nx) *
                                     static_cast<std::size_t>(vol.ny)));

    // emission point uniform within the voxel
    const float ex = vol.originX() + (static_cast<float>(ix) + rng.nextFloat()) * vol.voxel;
    const float ey = vol.originY() + (static_cast<float>(iy) + rng.nextFloat()) * vol.voxel;
    const float ez = vol.originZ() + (static_cast<float>(iz) + rng.nextFloat()) * vol.voxel;

    // isotropic direction
    const double cosTheta = rng.uniform(-1.0, 1.0);
    const double sinTheta = std::sqrt(1.0 - cosTheta * cosTheta);
    const double phi = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    const float dx = static_cast<float>(sinTheta * std::cos(phi));
    const float dy = static_cast<float>(sinTheta * std::sin(phi));
    const float dz = static_cast<float>(cosTheta);

    // intersect the line e + t*d with the detector cylinder x^2 + y^2 = R^2
    const float a = dx * dx + dy * dy;
    if (a < 1e-12f) continue;  // (nearly) axial photons escape
    const float b = 2.0f * (ex * dx + ey * dy);
    const float cc = ex * ex + ey * ey - radius_ * radius_;
    const float disc = b * b - 4.0f * a * cc;
    if (disc <= 0.0f) continue;
    const float sq = std::sqrt(disc);
    const float t1 = (-b - sq) / (2.0f * a);
    const float t2 = (-b + sq) / (2.0f * a);

    Event e;
    e.x1 = ex + t1 * dx;
    e.y1 = ey + t1 * dy;
    e.z1 = ez + t1 * dz;
    e.x2 = ex + t2 * dx;
    e.y2 = ey + t2 * dy;
    e.z2 = ez + t2 * dz;
    // both photons must hit the finite detector
    if (std::fabs(e.z1) > halfLength_ || std::fabs(e.z2) > halfLength_) continue;
    events.push_back(e);
  }
  return events;
}

}  // namespace skelcl::osem
