// List-mode OSEM reconstruction (paper Section IV): problem setup, the
// sequential reference, and the six parallel implementations compared in
// Figures 4a/4b (SkelCL / OpenCL / CUDA, single- and multi-GPU).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "osem/geometry.hpp"
#include "osem/phantom.hpp"

namespace skelcl::osem {

struct OsemConfig {
  VolumeSpec volume{};             ///< default 32^3
  std::size_t eventsPerSubset = 5000;
  int numSubsets = 4;
  int iterations = 1;              ///< full passes over all subsets
  std::uint64_t seed = 42;
};

/// Generated problem instance: phantom, detector, list-mode events.
struct OsemData {
  OsemConfig config;
  Phantom phantom;
  std::vector<Event> events;  ///< numSubsets * eventsPerSubset, subset-major

  static OsemData generate(const OsemConfig& config);

  const VolumeSpec& volume() const { return config.volume; }
  std::size_t subsetSize() const { return config.eventsPerSubset; }
  const Event* subset(int index) const {
    return events.data() + static_cast<std::size_t>(index) * config.eventsPerSubset;
  }
};

struct OsemResult {
  std::vector<float> image;       ///< reconstructed activity
  double secondsPerSubset = 0.0;  ///< average simulated time per subset
                                  ///< iteration (first subset excluded, as
                                  ///< the paper excludes compilation)
  double totalSimSeconds = 0.0;   ///< whole timed region
};

/// Sequential reference (paper Listing 2).  secondsPerSubset is modeled host
/// time.
OsemResult runOsemSeq(const OsemData& data);

/// SkelCL implementations (paper Listing 3).  The multi-GPU version runs the
/// hybrid PSD/ISD strategy on `numGpus` simulated Tesla GPUs.
OsemResult runOsemSkelCLSingle(const OsemData& data);
OsemResult runOsemSkelCL(const OsemData& data, int numGpus);

/// The same SkelCL reconstruction against whatever runtime is already
/// initialized — e.g. a dOpenCL-aggregated distributed system (Section V).
/// The caller owns init()/terminate().
OsemResult runOsemSkelCLPreInitialized(const OsemData& data);

/// Hand-written OpenCL-style implementations (verbose baseline).
OsemResult runOsemOclSingle(const OsemData& data);
OsemResult runOsemOcl(const OsemData& data, int numGpus);

/// CUDA-style implementations.
OsemResult runOsemCudaSingle(const OsemData& data);
OsemResult runOsemCuda(const OsemData& data, int numGpus);

/// Pearson correlation between two images (reconstruction quality metric).
double imageCorrelation(const std::vector<float>& a, const std::vector<float>& b);

/// Root-mean-square difference, normalized by the mean of `reference`.
double imageNrmse(const std::vector<float>& image, const std::vector<float>& reference);

}  // namespace skelcl::osem
