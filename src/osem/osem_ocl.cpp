// List-mode OSEM written directly against the (simulated) OpenCL host API —
// the paper's verbose baseline.  Everything SkelCL does implicitly is spelled
// out here: platform/device discovery, runtime kernel compilation with build-
// log handling, per-device buffer management, offset computations for the
// sub-subsets, the host-side combination of the per-device error images, and
// the explicit repartitioning between the PSD and ISD phases.
//
// The OSEM-LOC markers delimit what Figure 4a counts as "host code".
#include <algorithm>
#include <cstring>
#include <vector>

#include "ocl/ocl.hpp"
#include "osem/osem.hpp"
#include "osem/osem_kernels.hpp"

namespace skelcl::osem {

namespace {

double averageExcludingFirst(const std::vector<double>& times) {
  if (times.size() <= 1) return times.empty() ? 0.0 : times.front();
  double sum = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) sum += times[i];
  return sum / static_cast<double>(times.size() - 1);
}

}  // namespace

OsemResult runOsemOcl(const OsemData& data, int numGpus) {
  const VolumeSpec& vol = data.volume();
  const std::size_t nVox = vol.voxels();
  const std::size_t imgBytes = nVox * sizeof(float);
  std::vector<double> subsetTimes;
  std::vector<float> f(nVox, 1.0f);

  // OSEM-LOC-BEGIN(ocl-multi-host)
  // --- platform and device selection -------------------------------------
  ocl::Platform platform(sim::SystemConfig::teslaS1070(numGpus));
  std::vector<ocl::Device*> devices = platform.devices();
  if (devices.empty()) {
    throw Error("no OpenCL devices found");
  }
  ocl::Context context(devices);
  std::vector<std::unique_ptr<ocl::CommandQueue>> queues;
  for (ocl::Device* dev : devices) {
    queues.push_back(std::make_unique<ocl::CommandQueue>(context, *dev));
  }

  // --- runtime kernel compilation -----------------------------------------
  ocl::Program program(context, rawKernelsSource());
  try {
    program.build();
  } catch (const ocl::BuildError& e) {
    throw Error(std::string("OSEM kernel build failed:\n") + e.log());
  }
  ocl::Kernel step1(program, "osem_step1");
  ocl::Kernel step2(program, "osem_step2");

  const int numDevices = static_cast<int>(devices.size());
  std::vector<float> c(nVox);
  std::vector<float> cDevice(nVox);

  for (int it = 0; it < data.config.iterations; ++it) {
    for (int l = 0; l < data.config.numSubsets; ++l) {
      const double t0 = platform.system().hostNow();
      const Event* subset = data.subset(l);
      const std::size_t numEvents = data.subsetSize();

      // --- phase 1: upload — split the subset into sub-subsets, compute
      // offsets, upload one sub-subset plus a full copy of f to each GPU ----
      std::vector<std::size_t> evOffset(static_cast<std::size_t>(numDevices) + 1, 0);
      for (int d = 0; d < numDevices; ++d) {
        const std::size_t part = numEvents / static_cast<std::size_t>(numDevices) +
                                 (static_cast<std::size_t>(d) <
                                          numEvents % static_cast<std::size_t>(numDevices)
                                      ? 1
                                      : 0);
        evOffset[static_cast<std::size_t>(d) + 1] = evOffset[static_cast<std::size_t>(d)] + part;
      }

      std::vector<std::unique_ptr<ocl::Buffer>> evBufs;
      std::vector<std::unique_ptr<ocl::Buffer>> fBufs;
      std::vector<std::unique_ptr<ocl::Buffer>> cBufs;
      for (int d = 0; d < numDevices; ++d) {
        const std::size_t begin = evOffset[static_cast<std::size_t>(d)];
        const std::size_t count = evOffset[static_cast<std::size_t>(d) + 1] - begin;
        evBufs.push_back(std::make_unique<ocl::Buffer>(
            context, *devices[static_cast<std::size_t>(d)],
            std::max<std::size_t>(count, 1) * sizeof(Event)));
        fBufs.push_back(std::make_unique<ocl::Buffer>(
            context, *devices[static_cast<std::size_t>(d)], imgBytes));
        cBufs.push_back(std::make_unique<ocl::Buffer>(
            context, *devices[static_cast<std::size_t>(d)], imgBytes));
        if (count > 0) {
          queues[static_cast<std::size_t>(d)]->enqueueWriteBuffer(
              *evBufs.back(), 0, count * sizeof(Event), subset + begin);
        }
        queues[static_cast<std::size_t>(d)]->enqueueWriteBuffer(*fBufs.back(), 0, imgBytes,
                                                                f.data());
        queues[static_cast<std::size_t>(d)]->enqueueFillBuffer(*cBufs.back(), std::byte{0},
                                                               0, imgBytes);
      }

      // --- phase 2: step 1 — each GPU computes a local error image ---------
      for (int d = 0; d < numDevices; ++d) {
        const std::size_t count =
            evOffset[static_cast<std::size_t>(d) + 1] - evOffset[static_cast<std::size_t>(d)];
        if (count == 0) continue;
        step1.setArg(0, *evBufs[static_cast<std::size_t>(d)]);
        step1.setArg(1, static_cast<std::int32_t>(count));
        step1.setArg(2, *fBufs[static_cast<std::size_t>(d)]);
        step1.setArg(3, *cBufs[static_cast<std::size_t>(d)]);
        step1.setArg(4, vol.nx);
        step1.setArg(5, vol.ny);
        step1.setArg(6, vol.nz);
        step1.setArg(7, vol.voxel);
        queues[static_cast<std::size_t>(d)]->enqueueNDRangeKernel(step1, count);
      }

      // --- phase 3: redistribution — download every device's error image,
      // combine on the host, then repartition both images (PSD -> ISD) ------
      std::fill(c.begin(), c.end(), 0.0f);
      for (int d = 0; d < numDevices; ++d) {
        queues[static_cast<std::size_t>(d)]->enqueueReadBuffer(
            *cBufs[static_cast<std::size_t>(d)], 0, imgBytes, cDevice.data(),
            /*blocking=*/true);
        for (std::size_t j = 0; j < nVox; ++j) c[j] += cDevice[j];
      }
      platform.system().reserveHostCompute(
          2 * imgBytes * static_cast<std::size_t>(numDevices),
          nVox * static_cast<std::size_t>(numDevices));

      std::vector<std::size_t> imOffset(static_cast<std::size_t>(numDevices) + 1, 0);
      for (int d = 0; d < numDevices; ++d) {
        const std::size_t part = nVox / static_cast<std::size_t>(numDevices) +
                                 (static_cast<std::size_t>(d) <
                                          nVox % static_cast<std::size_t>(numDevices)
                                      ? 1
                                      : 0);
        imOffset[static_cast<std::size_t>(d) + 1] = imOffset[static_cast<std::size_t>(d)] + part;
      }
      std::vector<std::unique_ptr<ocl::Buffer>> fParts;
      std::vector<std::unique_ptr<ocl::Buffer>> cParts;
      for (int d = 0; d < numDevices; ++d) {
        const std::size_t begin = imOffset[static_cast<std::size_t>(d)];
        const std::size_t count = imOffset[static_cast<std::size_t>(d) + 1] - begin;
        fParts.push_back(std::make_unique<ocl::Buffer>(
            context, *devices[static_cast<std::size_t>(d)],
            std::max<std::size_t>(count, 1) * sizeof(float)));
        cParts.push_back(std::make_unique<ocl::Buffer>(
            context, *devices[static_cast<std::size_t>(d)],
            std::max<std::size_t>(count, 1) * sizeof(float)));
        if (count == 0) continue;
        queues[static_cast<std::size_t>(d)]->enqueueWriteBuffer(
            *fParts.back(), 0, count * sizeof(float), f.data() + begin);
        queues[static_cast<std::size_t>(d)]->enqueueWriteBuffer(
            *cParts.back(), 0, count * sizeof(float), c.data() + begin);
      }

      // --- phase 4: step 2 — each GPU updates its part of f ----------------
      for (int d = 0; d < numDevices; ++d) {
        const std::size_t count =
            imOffset[static_cast<std::size_t>(d) + 1] - imOffset[static_cast<std::size_t>(d)];
        if (count == 0) continue;
        step2.setArg(0, *fParts[static_cast<std::size_t>(d)]);
        step2.setArg(1, *cParts[static_cast<std::size_t>(d)]);
        step2.setArg(2, static_cast<std::int32_t>(count));
        queues[static_cast<std::size_t>(d)]->enqueueNDRangeKernel(step2, count);
      }

      // --- phase 5: download — merge the image parts on the host -----------
      for (int d = 0; d < numDevices; ++d) {
        const std::size_t begin = imOffset[static_cast<std::size_t>(d)];
        const std::size_t count = imOffset[static_cast<std::size_t>(d) + 1] - begin;
        if (count == 0) continue;
        queues[static_cast<std::size_t>(d)]->enqueueReadBuffer(
            *fParts[static_cast<std::size_t>(d)], 0, count * sizeof(float), f.data() + begin,
            /*blocking=*/true);
      }
      for (auto& q : queues) q->finish();
      subsetTimes.push_back(platform.system().hostNow() - t0);
    }
  }
  // OSEM-LOC-END(ocl-multi-host)

  OsemResult result;
  result.image = std::move(f);
  result.secondsPerSubset = averageExcludingFirst(subsetTimes);
  result.totalSimSeconds = platform.system().hostNow();
  return result;
}

OsemResult runOsemOclSingle(const OsemData& data) {
  const VolumeSpec& vol = data.volume();
  const std::size_t nVox = vol.voxels();
  const std::size_t imgBytes = nVox * sizeof(float);
  std::vector<double> subsetTimes;
  std::vector<float> f(nVox, 1.0f);

  // OSEM-LOC-BEGIN(ocl-single-host)
  ocl::Platform platform(sim::SystemConfig::teslaS1070(1));
  std::vector<ocl::Device*> devices = platform.devices();
  if (devices.empty()) {
    throw Error("no OpenCL devices found");
  }
  ocl::Device& device = *devices.front();
  ocl::Context context({&device});
  ocl::CommandQueue queue(context, device);

  ocl::Program program(context, rawKernelsSource());
  try {
    program.build();
  } catch (const ocl::BuildError& e) {
    throw Error(std::string("OSEM kernel build failed:\n") + e.log());
  }
  ocl::Kernel step1(program, "osem_step1");
  ocl::Kernel step2(program, "osem_step2");

  for (int it = 0; it < data.config.iterations; ++it) {
    for (int l = 0; l < data.config.numSubsets; ++l) {
      const double t0 = platform.system().hostNow();
      const Event* subset = data.subset(l);
      const std::size_t numEvents = data.subsetSize();

      ocl::Buffer evBuf(context, device, numEvents * sizeof(Event));
      ocl::Buffer fBuf(context, device, imgBytes);
      ocl::Buffer cBuf(context, device, imgBytes);
      queue.enqueueWriteBuffer(evBuf, 0, numEvents * sizeof(Event), subset);
      queue.enqueueWriteBuffer(fBuf, 0, imgBytes, f.data());
      queue.enqueueFillBuffer(cBuf, std::byte{0}, 0, imgBytes);

      step1.setArg(0, evBuf);
      step1.setArg(1, static_cast<std::int32_t>(numEvents));
      step1.setArg(2, fBuf);
      step1.setArg(3, cBuf);
      step1.setArg(4, vol.nx);
      step1.setArg(5, vol.ny);
      step1.setArg(6, vol.nz);
      step1.setArg(7, vol.voxel);
      queue.enqueueNDRangeKernel(step1, numEvents);

      step2.setArg(0, fBuf);
      step2.setArg(1, cBuf);
      step2.setArg(2, static_cast<std::int32_t>(nVox));
      queue.enqueueNDRangeKernel(step2, nVox);

      queue.enqueueReadBuffer(fBuf, 0, imgBytes, f.data(), /*blocking=*/true);
      queue.finish();
      subsetTimes.push_back(platform.system().hostNow() - t0);
    }
  }
  // OSEM-LOC-END(ocl-single-host)

  OsemResult result;
  result.image = std::move(f);
  result.secondsPerSubset = averageExcludingFirst(subsetTimes);
  result.totalSimSeconds = platform.system().hostNow();
  return result;
}

}  // namespace skelcl::osem
