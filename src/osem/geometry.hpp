// Shared geometry types for the list-mode OSEM application study
// (paper Section IV): the reconstruction volume and PET events.
#pragma once

#include <cstddef>
#include <cstdint>

namespace skelcl::osem {

/// The reconstruction volume: a grid of cubic voxels centered on the origin.
struct VolumeSpec {
  int nx = 32;
  int ny = 32;
  int nz = 32;
  float voxel = 2.0f;  ///< voxel edge length (mm)

  std::size_t voxels() const {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
           static_cast<std::size_t>(nz);
  }
  float originX() const { return -0.5f * static_cast<float>(nx) * voxel; }
  float originY() const { return -0.5f * static_cast<float>(ny) * voxel; }
  float originZ() const { return -0.5f * static_cast<float>(nz) * voxel; }
  std::size_t index(int ix, int iy, int iz) const {
    return (static_cast<std::size_t>(iz) * static_cast<std::size_t>(ny) +
            static_cast<std::size_t>(iy)) *
               static_cast<std::size_t>(nx) +
           static_cast<std::size_t>(ix);
  }
};

/// One recorded coincidence: the two detector points of a Line Of Response.
/// Layout matches the kernel-language `Event` struct registered by
/// registerOsemKernelTypes().
struct Event {
  float x1, y1, z1;
  float x2, y2, z2;
};
static_assert(sizeof(Event) == 24);

}  // namespace skelcl::osem
