#include "cuda/scuda.hpp"

namespace skelcl::scuda {

const std::string& KernelHandle::name() const { return kernel_->name(); }

Runtime::Runtime(sim::SystemConfig config, std::vector<std::string> modules)
    : platform_(std::move(config)), context_(platform_.devices()) {
  for (int d = 0; d < platform_.deviceCount(); ++d) {
    queues_.push_back(
        std::make_unique<ocl::CommandQueue>(context_, platform_.device(d), ocl::Api::Cuda));
  }
  for (auto& source : modules) {
    auto program = std::make_unique<ocl::Program>(context_, std::move(source));
    program->build();
    programs_.push_back(std::move(program));
  }
  // Modules are compiled by nvcc when the application is built, not at
  // runtime: remove the compilation cost from the simulated clock.
  platform_.system().resetClock();
  for (auto& q : queues_) q->resetClock();
}

void Runtime::setDevice(int device) {
  SKELCL_CHECK(device >= 0 && device < deviceCount(), "invalid device ordinal");
  current_ = device;
}

ocl::CommandQueue& Runtime::queue(int device) {
  return *queues_[static_cast<std::size_t>(device)];
}

DevPtr Runtime::malloc(std::uint64_t bytes) {
  const int id = nextAllocation_++;
  allocations_.emplace(
      id, std::make_unique<ocl::Buffer>(context_, platform_.device(current_), bytes));
  DevPtr p;
  p.device = current_;
  p.allocation = id;
  return p;
}

void Runtime::free(DevPtr ptr) {
  SKELCL_CHECK(ptr.offset == 0, "free the allocation base pointer");
  const auto erased = allocations_.erase(ptr.allocation);
  SKELCL_CHECK(erased == 1, "double free or invalid device pointer");
}

ocl::Buffer& Runtime::resolve(const DevPtr& ptr) {
  const auto it = allocations_.find(ptr.allocation);
  SKELCL_CHECK(it != allocations_.end(), "invalid device pointer");
  return *it->second;
}

void Runtime::memcpy(DevPtr dst, const void* src, std::uint64_t bytes) {
  ocl::Buffer& buffer = resolve(dst);
  queue(buffer.device().id())
      .enqueueWriteBuffer(buffer, dst.offset, bytes, src, /*blocking=*/true);
}

void Runtime::memcpy(void* dst, DevPtr src, std::uint64_t bytes) {
  ocl::Buffer& buffer = resolve(src);
  queue(buffer.device().id())
      .enqueueReadBuffer(buffer, src.offset, bytes, dst, /*blocking=*/true);
}

void Runtime::memcpyAsync(DevPtr dst, const void* src, std::uint64_t bytes) {
  ocl::Buffer& buffer = resolve(dst);
  queue(buffer.device().id())
      .enqueueWriteBuffer(buffer, dst.offset, bytes, src, /*blocking=*/false);
}

void Runtime::memcpyAsync(void* dst, DevPtr src, std::uint64_t bytes) {
  ocl::Buffer& buffer = resolve(src);
  queue(buffer.device().id())
      .enqueueReadBuffer(buffer, src.offset, bytes, dst, /*blocking=*/false);
}

void Runtime::memcpyPeer(DevPtr dst, DevPtr src, std::uint64_t bytes) {
  ocl::Buffer& srcBuf = resolve(src);
  ocl::Buffer& dstBuf = resolve(dst);
  queue(dstBuf.device().id())
      .enqueueCopyBuffer(srcBuf, dstBuf, src.offset, dst.offset, bytes);
}

void Runtime::memset(DevPtr dst, int value, std::uint64_t bytes) {
  ocl::Buffer& buffer = resolve(dst);
  queue(buffer.device().id())
      .enqueueFillBuffer(buffer, static_cast<std::byte>(value), dst.offset, bytes);
}

KernelHandle Runtime::kernel(const std::string& name) {
  for (auto& program : programs_) {
    if (program->compiled()->findKernel(name) >= 0) {
      return KernelHandle(*this, std::make_shared<ocl::Kernel>(*program, name));
    }
  }
  throw UsageError("no registered kernel named '" + name + "'");
}

void Runtime::launchImpl(KernelHandle& k, std::uint64_t gridSize) {
  queue(current_).enqueueNDRangeKernel(*k.kernel_, gridSize);
}

void Runtime::synchronize() {
  for (auto& q : queues_) q->finish();
}

}  // namespace skelcl::scuda
