// A CUDA-runtime-style API over the simulated devices ("scuda").
//
// The paper's baseline OSEM implementation is written in CUDA.  This shim
// exposes the CUDA programming model's essentials — device selection,
// cudaMalloc/cudaMemcpy-style calls, ahead-of-time-compiled kernels, default
// streams, peer copies — over the same sim::System the OpenCL layer uses.
// Differences that the paper's evaluation hinges on are modeled explicitly:
//   * kernels are registered and compiled at Runtime construction ("compile
//     at build time"); no runtime-compilation cost ever appears on the clock,
//   * queues run with Api::Cuda (efficiency 1.0 vs OpenCL's 0.84 and a lower
//     launch overhead), matching the ~20% gap reported in Section IV-C.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ocl/ocl.hpp"

namespace skelcl::scuda {

enum class MemcpyKind { HostToDevice, DeviceToHost, DeviceToDevice };

/// An opaque device pointer (device ordinal + allocation id + byte offset).
struct DevPtr {
  int device = -1;
  int allocation = -1;
  std::uint64_t offset = 0;

  DevPtr operator+(std::uint64_t bytes) const {
    DevPtr p = *this;
    p.offset += bytes;
    return p;
  }
  bool null() const { return allocation < 0; }
};

class Runtime;

/// A handle to an ahead-of-time-compiled kernel.
class KernelHandle {
 public:
  const std::string& name() const;

 private:
  friend class Runtime;
  KernelHandle(Runtime& rt, std::shared_ptr<ocl::Kernel> kernel)
      : runtime_(&rt), kernel_(std::move(kernel)) {}
  Runtime* runtime_;
  std::shared_ptr<ocl::Kernel> kernel_;
};

class Runtime {
 public:
  /// Create the runtime for a machine; `modules` are kernel sources compiled
  /// now, before any measurement starts (nvcc at application build time).
  Runtime(sim::SystemConfig config, std::vector<std::string> modules);

  int deviceCount() const { return platform_.deviceCount(); }
  void setDevice(int device);
  int currentDevice() const { return current_; }

  DevPtr malloc(std::uint64_t bytes);
  void free(DevPtr ptr);

  void memcpy(DevPtr dst, const void* src, std::uint64_t bytes);            // H2D
  void memcpy(void* dst, DevPtr src, std::uint64_t bytes);                  // D2H
  void memcpyPeer(DevPtr dst, DevPtr src, std::uint64_t bytes);             // D2D
  void memset(DevPtr dst, int value, std::uint64_t bytes);

  /// Stream-ordered copies (cudaMemcpyAsync on the device's default stream):
  /// the host does not wait; synchronize() or a later blocking memcpy does.
  /// Multi-GPU codes need these so transfers to different devices overlap.
  void memcpyAsync(DevPtr dst, const void* src, std::uint64_t bytes);       // H2D
  void memcpyAsync(void* dst, DevPtr src, std::uint64_t bytes);             // D2H

  KernelHandle kernel(const std::string& name);

  /// Launch on the current device's default stream.  Arguments may be DevPtr
  /// (offset must be 0) or int32/uint32/float/double scalars.
  template <typename... Args>
  void launch(KernelHandle& k, std::uint64_t gridSize, Args&&... args) {
    std::size_t index = 0;
    (setLaunchArg(*k.kernel_, index++, std::forward<Args>(args)), ...);
    launchImpl(k, gridSize);
  }

  /// Block the host until all devices are idle (cudaDeviceSynchronize over
  /// every device).
  void synchronize();

  ocl::Platform& platform() { return platform_; }
  sim::System& system() { return platform_.system(); }

 private:
  void launchImpl(KernelHandle& k, std::uint64_t gridSize);
  ocl::Buffer& resolve(const DevPtr& ptr);
  ocl::CommandQueue& queue(int device);

  void setLaunchArg(ocl::Kernel& k, std::size_t index, const DevPtr& ptr) {
    SKELCL_CHECK(ptr.offset == 0, "kernel buffer arguments must point at the allocation base");
    k.setArg(index, resolve(ptr));
  }
  void setLaunchArg(ocl::Kernel& k, std::size_t index, float v) { k.setArg(index, v); }
  void setLaunchArg(ocl::Kernel& k, std::size_t index, double v) { k.setArg(index, v); }
  void setLaunchArg(ocl::Kernel& k, std::size_t index, std::int32_t v) { k.setArg(index, v); }
  void setLaunchArg(ocl::Kernel& k, std::size_t index, std::uint32_t v) { k.setArg(index, v); }
  void setLaunchArg(ocl::Kernel& k, std::size_t index, std::uint64_t v) {
    k.setArg(index, static_cast<std::uint32_t>(v));
  }
  void setLaunchArg(ocl::Kernel& k, std::size_t index, std::int64_t v) {
    k.setArg(index, static_cast<std::int32_t>(v));
  }

  ocl::Platform platform_;
  ocl::Context context_;
  std::vector<std::unique_ptr<ocl::CommandQueue>> queues_;
  std::vector<std::unique_ptr<ocl::Program>> programs_;
  std::unordered_map<int, std::unique_ptr<ocl::Buffer>> allocations_;
  int nextAllocation_ = 0;
  int current_ = 0;
};

}  // namespace skelcl::scuda
