// The skelcheck lockstep runner: executes one Program twice — once against
// the live SkelCL runtime, once against the pure host-side model — and
// compares error classes, coherence flags, distribution state, part layouts,
// device bytes and, at probe points, full host contents after every op.
#pragma once

#include <string>

#include "check/check.hpp"

namespace skelcl::check {

struct RunResult {
  bool ok = true;
  int step = -1;        ///< index of the diverging op (-1: setup/teardown)
  std::string message;  ///< human-readable divergence description
};

/// Clamp and normalize a program in place so every op is well-formed for its
/// config: slot/device indices wrapped into range, function ids valid for
/// their role and element type, scalar floats finite.  The generator emits
/// sanitized programs already; this is the safety net for hand-written and
/// shrunk replay files — and it keeps shrinking sound (removing ops never
/// produces an ill-formed program).
void sanitize(Program& program);

/// Execute `program` in lockstep.  Re-initializes the runtime (init /
/// terminate) around the run, so callers must not hold live Vectors.
RunResult runProgram(const Program& program);

}  // namespace skelcl::check
