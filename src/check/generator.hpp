// Seeded random program generation for skelcheck.  Everything — device
// count, element type, VM pipeline, vector length, pool size and the op
// sequence — derives deterministically from the seed, so a seed alone
// reproduces a run.
#pragma once

#include <cstdint>

#include "check/check.hpp"

namespace skelcl::check {

/// Generate a sanitized program of roughly `numOps` operations (initial
/// fills and trailing per-slot probes come on top).
Program generate(std::uint64_t seed, int numOps);

}  // namespace skelcl::check
