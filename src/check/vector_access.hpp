// The white-box peer that VectorData befriends (vector_data.hpp).
//
// Shared between the skelcheck runner (read access: the state comparison
// must inspect parts without triggering the coherence protocol) and
// tests/test_skelcheck.cpp (mutable access: forging internal states — e.g.
// a zero-sized copy part — that have no natural construction path).
#pragma once

#include <vector>

#include "core/detail/vector_data.hpp"

namespace skelcl::detail {

struct VectorDataTestAccess {
  static const std::vector<VectorData::DevicePart>& parts(const VectorData& v) {
    return v.parts_;
  }
  static std::vector<VectorData::DevicePart>& partsMut(VectorData& v) { return v.parts_; }
  static const std::vector<std::byte>& host(const VectorData& v) { return v.host_; }
  static Distribution& currentMut(VectorData& v) { return v.current_; }
  static bool& hostValidMut(VectorData& v) { return v.host_valid_; }
  static bool& devicesValidMut(VectorData& v) { return v.devices_valid_; }
};

}  // namespace skelcl::detail
