// The skelcheck user-function catalog: a fixed set of kernel-language
// functions with known host-side semantics.
//
// Every function exists in an int and/or a float variant, and its host
// evaluation mirrors the kernelc VM bit-for-bit: integer operations compute
// in 64 bits and truncate the *result* of every binary/unary op to int32
// (two's-complement wraparound); float operations round once per op in
// single precision.  Each float-variant body performs at most one
// multiply-free arithmetic expression per statement so the compiler cannot
// contract the reference computation into an FMA the VM would not use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.hpp"

namespace skelcl::check {

/// Call shape of a catalog function (decides how the runner invokes the
/// skeleton and how many arguments eval consumes).
enum class FnShape {
  Unary,        ///< T func(T x)
  UnaryScalar,  ///< T func(T x, T c)
  UnaryVec,     ///< T func(T x, __global T* v)   -- reads v[0] per device
  UnarySizes,   ///< T func(T x, int s)           -- s = sizes() token
  Binary,       ///< T func(T a, T b)
  BinaryScalar, ///< T func(T a, T b, T c)
  Stencil1,     ///< T func(__global T* p, int i)         -- 1D map-overlap
  Stencil2,     ///< T func(__global T* p, int i, int s)  -- 2D map-overlap (s = row stride)
};

struct FnInfo {
  const char* id;
  FnShape shape;
  bool forInt, forFloat;
  /// Chunking-transparent under the given element type: safe as a reduce /
  /// scan operator (reduction trees regroup applications).
  bool assocInt, assocFloat;
  // role flags (which grammar slots may use this function)
  bool mapUse, zipUse, redUse, scanUse, combineUse;
};

const std::vector<FnInfo>& catalog();
/// Lookup by id; nullptr for unknown ids.
const FnInfo* fnInfo(const std::string& id);

/// Kernel-language source of the function for the element type.
std::string fnSource(const std::string& id, ElemType t);
/// Reverse lookup: the catalog id whose fnSource equals `source` ("" if
/// none).  Used by the model to evaluate copy-combine sources.
std::string idForSource(const std::string& source);

/// Host-side reference evaluation.  `a`/`b` are element bit patterns
/// (b ignored for unary shapes; for UnaryVec b carries v[0]; for UnarySizes
/// ci carries the sizes value), `ci`/`cf` the scalar extra.
std::uint32_t evalFn(const std::string& id, ElemType t, std::uint32_t a, std::uint32_t b,
                     std::int64_t ci, double cf);

}  // namespace skelcl::check
