#include "check/runner.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/error.hpp"
#include "check/funcs.hpp"
#include "check/model.hpp"
#include "check/vector_access.hpp"
#include "core/service.hpp"
#include "core/skelcl.hpp"
#include "docl/docl.hpp"
#include "ocl/buffer.hpp"

namespace skelcl::check {

namespace {

// --- sanitization -----------------------------------------------------------

int wrapIndex(int v, int range) {
  const int m = v % range;
  return m < 0 ? m + range : m;
}

bool fnValid(const std::string& id, ElemType t, bool FnInfo::*role) {
  const FnInfo* fi = fnInfo(id);
  return fi != nullptr && fi->*role && (t == ElemType::I32 ? fi->forInt : fi->forFloat);
}

bool shapeIn(const std::string& id, FnShape a, FnShape b) {
  const FnShape s = fnInfo(id)->shape;
  return s == a || s == b;
}

bool shapeHasScalar(const std::string& id) {
  const FnShape s = fnInfo(id)->shape;
  return s == FnShape::UnaryScalar || s == FnShape::BinaryScalar;
}

/// Session ops address a small fixed set of tenant slots (0 = default).
constexpr int kMaxSessions = 4;

void clampWeights(std::vector<double>& weights) {
  if (weights.size() > 8) weights.resize(8);
  for (double& w : weights) {
    if (!std::isfinite(w) || w < 0.0) w = 0.0;
    if (w > 16.0) w = 16.0;
  }
}

}  // namespace

void sanitize(Program& p) {
  Config& c = p.cfg;
  // teslaS1070 models 1, 2 or 4 GPUs.
  c.devices = c.devices >= 4 ? 4 : (c.devices >= 2 ? 2 : 1);
  // Cluster runs spread the devices evenly across nodes, so the node count
  // must divide the device count (both are powers of 2 after clamping).
  c.nodes = c.nodes >= 4 ? 4 : (c.nodes >= 2 ? 2 : 1);
  if (c.nodes > c.devices) c.nodes = c.devices;
  // n = 0 is a legal configuration: empty vectors flow through every
  // skeleton (reduce raises UsageError on both sides, which still compares).
  if (c.n > 4096) c.n = 4096;
  if (c.poolSize < 1) c.poolSize = 1;
  if (c.poolSize > 12) c.poolSize = 12;
  c.kcopt = c.kcopt < 0 ? 0 : (c.kcopt > 2 ? 2 : c.kcopt);
  const int pool = c.poolSize;
  const auto n = static_cast<std::int64_t>(c.n);
  const ElemType t = c.elem;

  for (Op& op : p.ops) {
    op.a = wrapIndex(op.a, pool);
    op.b = wrapIndex(op.b, pool);
    op.dst = wrapIndex(op.dst, pool);
    op.extraVec = wrapIndex(op.extraVec, pool);
    if (!std::isfinite(op.cf)) op.cf = 0.0;

    switch (op.kind) {
      case OpKind::Fill:
      case OpKind::Alias:
      case OpKind::Probe:
        break;
      case OpKind::Write:
        if (n == 0) {
          // No element to write; degrade to a probe of the slot.
          op.kind = OpKind::Probe;
          break;
        }
        op.index = ((op.index % n) + n) % n;
        break;
      case OpKind::SetDist: {
        DistSpec& d = op.dist;
        d.device = wrapIndex(d.device, c.devices);
        for (double& w : d.weights) {
          if (!std::isfinite(w) || w < 0.0) w = 0.0;
        }
        if (d.kind == DistKind::WBlock && d.weights.empty()) d.kind = DistKind::Block;
        if (d.kind == DistKind::CopyCombine &&
            (!fnValid(d.fn, t, &FnInfo::combineUse) ||
             fnInfo(d.fn)->shape != FnShape::Binary)) {
          d.fn = "add";
        }
        break;
      }
      case OpKind::Map:
        if (!fnValid(op.fn, t, &FnInfo::mapUse)) op.fn = "neg";
        op.hasScalar = shapeHasScalar(op.fn);
        break;
      case OpKind::Zip:
        if (!fnValid(op.fn, t, &FnInfo::zipUse)) op.fn = "add";
        op.hasScalar = shapeHasScalar(op.fn);
        break;
      case OpKind::Reduce:
        if (!fnValid(op.fn, t, &FnInfo::redUse)) op.fn = "add";
        op.hasScalar = shapeHasScalar(op.fn);
        break;
      case OpKind::Scan:
        if (!fnValid(op.fn, t, &FnInfo::scanUse) ||
            fnInfo(op.fn)->shape != FnShape::Binary) {
          op.fn = "add";
        }
        op.hasScalar = false;
        break;
      case OpKind::Pipe:
      case OpKind::PipeReduce: {
        if (op.stages.size() > 4) op.stages.resize(4);
        for (StageSpec& st : op.stages) {
          if (!std::isfinite(st.cf)) st.cf = 0.0;
          if (st.isZip) {
            st.zipVec = wrapIndex(st.zipVec, pool);
            if (!fnValid(st.fn, t, &FnInfo::zipUse) ||
                !shapeIn(st.fn, FnShape::Binary, FnShape::BinaryScalar)) {
              st.fn = "add";
            }
          } else {
            // The model evaluates map stages with at most a scalar extra, so
            // UnaryVec/UnarySizes stay out of pipelines.
            if (!fnValid(st.fn, t, &FnInfo::mapUse) ||
                !shapeIn(st.fn, FnShape::Unary, FnShape::UnaryScalar)) {
              st.fn = "neg";
            }
          }
          st.hasScalar = shapeHasScalar(st.fn);
        }
        if (op.kind == OpKind::PipeReduce) {
          if (!fnValid(op.fn, t, &FnInfo::redUse) ||
              !shapeIn(op.fn, FnShape::Binary, FnShape::BinaryScalar)) {
            op.fn = "add";
          }
          op.hasScalar = shapeHasScalar(op.fn);
        }
        break;
      }
      case OpKind::Weights:
        clampWeights(op.weights);
        break;
      case OpKind::Session:
        op.device = wrapIndex(op.device, kMaxSessions);
        clampWeights(op.weights);
        break;
      case OpKind::Blacklist:
        op.device = wrapIndex(op.device, c.devices);
        break;
      case OpKind::Fault: {
        if (op.transients.size() > 3) op.transients.resize(3);
        for (auto& tr : op.transients) {
          tr[0] = tr[0] < 0 ? -1 : wrapIndex(static_cast<int>(tr[0]), c.devices);
          tr[1] = tr[1] ? 1 : 0;
          if (tr[2] < 1) tr[2] = 1;
          if (tr[2] > 3) tr[2] = 3;
        }
        if (op.slows.size() > 2) op.slows.resize(2);
        for (auto& s : op.slows) {
          s[0] = wrapIndex(static_cast<int>(s[0]), c.devices);
          // Two canonical factors: 2 (tolerated by the 4x slack) and 8
          // (watchdog-aborted).
          s[1] = s[1] < 5 ? 2 : 8;
          if (s[2] < 0) s[2] = 0;
          if (s[2] > 3) s[2] = 3;
        }
        if (op.hangs.size() > 1) op.hangs.resize(1);
        for (auto& h : op.hangs) {
          h[0] = wrapIndex(static_cast<int>(h[0]), c.devices);
          if (h[1] < 1) h[1] = 1;
          if (h[1] > 2) h[1] = 2;
        }
        op.device = op.device < 0 ? -1 : wrapIndex(op.device, c.devices);
        if (op.value < 0) op.value = 0;
        if (op.value > 500) op.value = 500;
        break;
      }
      case OpKind::Cancel:
        // The service map-job interface is float; for i32 programs the op
        // degrades to a plain probe of its input slot.
        if (t == ElemType::I32) {
          op.kind = OpKind::Probe;
          break;
        }
        if (!fnValid(op.fn, t, &FnInfo::mapUse) ||
            fnInfo(op.fn)->shape != FnShape::Unary) {
          op.fn = "neg";
        }
        break;
      case OpKind::Poke:
        op.device = wrapIndex(op.device, c.devices);
        break;
      case OpKind::MapOverlap:
        if (fnInfo(op.fn) == nullptr || fnInfo(op.fn)->shape != FnShape::Stencil1) {
          op.fn = "s1sum";
        }
        op.radius = 1 + wrapIndex(op.radius - 1, 3);
        op.pad = op.pad ? 1 : 0;
        op.hasScalar = false;
        break;
      case OpKind::MatStencil:
        if (fnInfo(op.fn) == nullptr || fnInfo(op.fn)->shape != FnShape::Stencil2) {
          op.fn = "s2sum";
        }
        op.radius = 1 + wrapIndex(op.radius - 1, 2);
        op.pad = op.pad ? 1 : 0;
        op.cols = 1 + wrapIndex(op.cols - 1, 64);
        op.hasScalar = false;
        break;
    }
  }
}

namespace {

// --- error classification ---------------------------------------------------

enum class ErrClass { None, Usage, Resource, DataLoss, Command, Other };

const char* errName(ErrClass c) {
  switch (c) {
    case ErrClass::None: return "none";
    case ErrClass::Usage: return "UsageError";
    case ErrClass::Resource: return "ResourceError";
    case ErrClass::DataLoss: return "DataLossError";
    case ErrClass::Command: return "CommandError";
    case ErrClass::Other: return "other error";
  }
  return "?";
}

const char* opName(OpKind k) {
  switch (k) {
    case OpKind::Fill: return "fill";
    case OpKind::Write: return "write";
    case OpKind::SetDist: return "setdist";
    case OpKind::Alias: return "alias";
    case OpKind::Map: return "map";
    case OpKind::Zip: return "zip";
    case OpKind::Reduce: return "reduce";
    case OpKind::Scan: return "scan";
    case OpKind::Pipe: return "pipe";
    case OpKind::PipeReduce: return "pipereduce";
    case OpKind::Weights: return "weights";
    case OpKind::Blacklist: return "blacklist";
    case OpKind::Fault: return "fault";
    case OpKind::Poke: return "poke";
    case OpKind::Probe: return "probe";
    case OpKind::Session: return "session";
    case OpKind::Cancel: return "cancel";
    case OpKind::MapOverlap: return "mapoverlap";
    case OpKind::MatStencil: return "matstencil";
  }
  return "?";
}

template <typename F>
ErrClass classifySystem(F&& body, std::string* msg) {
  try {
    body();
    return ErrClass::None;
  } catch (const ocl::CommandError& e) {
    *msg = e.what();
    return ErrClass::Command;
  } catch (const DataLossError& e) {
    *msg = e.what();
    return ErrClass::DataLoss;
  } catch (const ResourceError& e) {
    *msg = e.what();
    return ErrClass::Resource;
  } catch (const UsageError& e) {
    *msg = e.what();
    return ErrClass::Usage;
  } catch (const std::exception& e) {
    *msg = e.what();
    return ErrClass::Other;
  }
}

template <typename F>
ErrClass classifyModel(F&& body, std::string* msg) {
  try {
    body();
    return ErrClass::None;
  } catch (const ModelCommandError& e) {
    *msg = e.what;
    return ErrClass::Command;
  } catch (const DataLossError& e) {
    *msg = e.what();
    return ErrClass::DataLoss;
  } catch (const ResourceError& e) {
    *msg = e.what();
    return ErrClass::Resource;
  } catch (const UsageError& e) {
    *msg = e.what();
    return ErrClass::Usage;
  } catch (const std::exception& e) {
    *msg = e.what();
    return ErrClass::Other;
  }
}

// --- the lockstep driver ----------------------------------------------------

template <typename T>
class Driver {
  static_assert(std::is_same_v<T, std::int32_t> || std::is_same_v<T, float>);

 public:
  explicit Driver(const Program& p) : prog_(p), elem_(p.cfg.elem), n_(p.cfg.n) {}

  RunResult run() {
    ::setenv("SKELCL_KC_OPT", std::to_string(prog_.cfg.kcopt).c_str(), 1);
    ::unsetenv("SKELCL_FAULTS");    // the program installs its own plans
    ::unsetenv("SKELCL_WATCHDOG");  // model mirrors the default watchdog config
    // Cluster programs rely on the default tree-collective shape, which the
    // model mirrors; keep a user's env override out of the comparison.
    ::unsetenv("SKELCL_TREE_COLLECTIVES");
    sim::SystemConfig system;
    if (prog_.cfg.nodes > 1) {
      docl::DistributedConfig cluster;
      for (int s = 0; s < prog_.cfg.nodes; ++s) {
        cluster.servers.push_back(
            sim::SystemConfig::teslaS1070(prog_.cfg.devices / prog_.cfg.nodes));
      }
      system = docl::flatten(cluster);
    } else {
      system = sim::SystemConfig::teslaS1070(prog_.cfg.devices);
    }
    std::vector<int> cores;
    for (const auto& d : system.devices) cores.push_back(d.cores);
    skelcl::init(std::move(system));
    RunResult res;
    try {
      res = runOps(cores);
    } catch (const std::exception& e) {
      res = RunResult{false, -1, std::string("harness error: ") + e.what()};
    }
    // Stop the service executor, leave the default session and drop tenant
    // sessions before terminate.
    service_.reset();
    svcSession_.reset();
    scope_.reset();
    sessions_.clear();
    skelcl::terminate();
    return res;
  }

 private:
  static T fromBits(std::uint32_t b) {
    if constexpr (std::is_same_v<T, float>) {
      return asF(b);
    } else {
      return asI(b);
    }
  }
  static std::uint32_t toBits(T v) {
    if constexpr (std::is_same_v<T, float>) {
      return bitsOfF(v);
    } else {
      return bitsOfI(v);
    }
  }
  static T scalarValue(std::int64_t ci, double cf) {
    if constexpr (std::is_same_v<T, float>) {
      return static_cast<float>(cf);
    } else {
      return static_cast<std::int32_t>(ci);
    }
  }
  /// The system binds int scalars as 32-bit kernel ints; feed the model the
  /// identically truncated value.
  static std::int64_t normCi(std::int64_t ci) {
    return static_cast<std::int64_t>(static_cast<std::int32_t>(ci));
  }

  using SysPool = std::vector<Vector<T>>;
  using ModPool = std::vector<std::shared_ptr<MVec>>;

  RunResult runOps(const std::vector<int>& cores) {
    Model model(prog_.cfg, cores);
    SysPool pool;
    ModPool mpool;
    pool.reserve(prog_.cfg.poolSize);
    for (int i = 0; i < prog_.cfg.poolSize; ++i) {
      pool.emplace_back(n_);
      mpool.push_back(std::make_shared<MVec>(n_));
    }

    for (int step = 0; step < static_cast<int>(prog_.ops.size()); ++step) {
      const Op& op = prog_.ops[step];
      std::uint32_t sysBits = 0, modBits = 0;
      bool sysFused = false, modFused = false;
      std::vector<std::uint32_t> sysContents, modContents;
      std::string sysMsg, modMsg;

      const ErrClass sc = classifySystem(
          [&] { execSystem(op, pool, sysBits, sysFused, sysContents); }, &sysMsg);
      const ErrClass mc = classifyModel(
          [&] { execModel(op, model, mpool, modBits, modFused, modContents); }, &modMsg);

      if (sc != mc) {
        return fail(step, op,
                    std::string("error class mismatch: system=") + errName(sc) +
                        (sysMsg.empty() ? "" : " (" + sysMsg + ")") +
                        ", model=" + errName(mc) +
                        (modMsg.empty() ? "" : " (" + modMsg + ")"));
      }
      if (sc == ErrClass::None) {
        if ((op.kind == OpKind::Reduce || op.kind == OpKind::PipeReduce) &&
            sysBits != modBits) {
          std::ostringstream os;
          os << "result mismatch: system=0x" << std::hex << sysBits << ", model=0x"
             << modBits;
          return fail(step, op, os.str());
        }
        if ((op.kind == OpKind::Pipe || op.kind == OpKind::PipeReduce) &&
            sysFused != modFused) {
          return fail(step, op,
                      std::string("fusion mismatch: system ") +
                          (sysFused ? "fused" : "unfused") + ", model " +
                          (modFused ? "fused" : "unfused"));
        }
        if (op.kind == OpKind::Probe) {
          for (std::size_t i = 0; i < n_; ++i) {
            if (sysContents[i] != modContents[i]) {
              std::ostringstream os;
              os << "content mismatch at [" << i << "]: system=0x" << std::hex
                 << sysContents[i] << ", model=0x" << modContents[i];
              return fail(step, op, os.str());
            }
          }
        }
      }

      const std::string div = compareState(model, pool, mpool);
      if (!div.empty()) return fail(step, op, div);
    }
    return RunResult{};
  }

  RunResult fail(int step, const Op& op, const std::string& why) const {
    return RunResult{false, step,
                     "op #" + std::to_string(step) + " (" + opName(op.kind) + "): " + why};
  }

  // --- system side ----------------------------------------------------------

  /// Switch the driver thread's current session to tenant slot `slot`
  /// (created lazily; slot 0 is the runtime's default session).  The old
  /// scope must be torn down *before* the new one is built: SessionScope
  /// restores its predecessor on destruction.
  void switchSession(int slot) {
    scope_.reset();
    if (slot == 0) return;
    auto& session = sessions_[slot];
    if (session == nullptr) {
      session = skelcl::createSession({"check" + std::to_string(slot), 1.0, 0});
    }
    scope_ = std::make_unique<SessionScope>(session);
  }

  template <typename Skel, typename... Extras>
  void applyElementwise(Skel& skel, const Op& op, SysPool& pool, const Extras&... extras) {
    if (op.inPlace) {
      skel(out(pool[op.dst]), pool[op.a], extras...);
    } else {
      pool[op.dst] = skel(pool[op.a], extras...);
    }
  }

  template <typename Skel, typename... Extras>
  void applyZip(Skel& skel, const Op& op, SysPool& pool, const Extras&... extras) {
    if (op.inPlace) {
      skel(out(pool[op.dst]), pool[op.a], pool[op.b], extras...);
    } else {
      pool[op.dst] = skel(pool[op.a], pool[op.b], extras...);
    }
  }

  void buildStages(Pipeline<T>& p, const Op& op, SysPool& pool) {
    for (const StageSpec& st : op.stages) {
      const std::string src = fnSource(st.fn, elem_);
      const bool scalar = shapeHasScalar(st.fn);
      if (st.isZip) {
        if (scalar) {
          p.zip(pool[st.zipVec], src, scalarValue(st.ci, st.cf));
        } else {
          p.zip(pool[st.zipVec], src);
        }
      } else {
        if (scalar) {
          p.map(src, scalarValue(st.ci, st.cf));
        } else {
          p.map(src);
        }
      }
    }
  }

  void execSystem(const Op& op, SysPool& pool, std::uint32_t& bits, bool& fused,
                  std::vector<std::uint32_t>& contents) {
    switch (op.kind) {
      case OpKind::Fill: {
        T* p = pool[op.a].hostDataWrite();
        for (std::size_t i = 0; i < n_; ++i) {
          p[i] = fromBits(valueAt(elem_, op.base + static_cast<std::int64_t>(i) * op.step));
        }
        break;
      }
      case OpKind::Write:
        pool[op.a].hostDataWrite()[op.index] = fromBits(valueAt(elem_, op.value));
        break;
      case OpKind::SetDist:
        pool[op.a].setDistribution(makeDistribution(op.dist, elem_));
        break;
      case OpKind::Alias:
        pool[op.dst] = pool[op.a];
        break;
      case OpKind::Map: {
        Map<T(T)> skel(fnSource(op.fn, elem_));
        switch (fnInfo(op.fn)->shape) {
          case FnShape::Unary:
            applyElementwise(skel, op, pool);
            break;
          case FnShape::UnaryScalar:
            applyElementwise(skel, op, pool, scalarValue(op.ci, op.cf));
            break;
          case FnShape::UnaryVec:
            applyElementwise(skel, op, pool, pool[op.extraVec]);
            break;
          case FnShape::UnarySizes:
            applyElementwise(skel, op, pool, pool[op.extraVec].sizes());
            break;
          default:
            break;  // sanitized away
        }
        break;
      }
      case OpKind::Zip: {
        Zip<T(T, T)> skel(fnSource(op.fn, elem_));
        if (fnInfo(op.fn)->shape == FnShape::BinaryScalar) {
          applyZip(skel, op, pool, scalarValue(op.ci, op.cf));
        } else {
          applyZip(skel, op, pool);
        }
        break;
      }
      case OpKind::Reduce: {
        Reduce<T(T)> skel(fnSource(op.fn, elem_));
        const T r = fnInfo(op.fn)->shape == FnShape::BinaryScalar
                        ? skel(pool[op.a], scalarValue(op.ci, op.cf))
                        : skel(pool[op.a]);
        bits = toBits(r);
        break;
      }
      case OpKind::Scan: {
        Scan<T(T, T)> skel(fnSource(op.fn, elem_));
        if (op.inPlace) {
          skel(out(pool[op.dst]), pool[op.a]);
        } else {
          pool[op.dst] = skel(pool[op.a]);
        }
        break;
      }
      case OpKind::Pipe: {
        Pipeline<T> p;
        buildStages(p, op, pool);
        p.forceUnfused(op.unfused);
        if (op.inPlace) {
          p(out(pool[op.dst]), pool[op.a]);
        } else {
          pool[op.dst] = p(pool[op.a]);
        }
        fused = p.lastRunFused();
        break;
      }
      case OpKind::PipeReduce: {
        Pipeline<T> p;
        buildStages(p, op, pool);
        p.forceUnfused(op.unfused);
        const std::string src = fnSource(op.fn, elem_);
        const T r = fnInfo(op.fn)->shape == FnShape::BinaryScalar
                        ? p.reduce(src, pool[op.a], scalarValue(op.ci, op.cf))
                        : p.reduce(src, pool[op.a]);
        bits = toBits(r);
        fused = p.lastRunFused();
        break;
      }
      case OpKind::Weights:
        skelcl::setPartitionWeights(op.weights);
        break;
      case OpKind::Session:
        switchSession(op.device);
        if (!op.weights.empty()) skelcl::setPartitionWeights(op.weights);
        break;
      case OpKind::Blacklist:
        skelcl::blacklistDevice(op.device);
        break;
      case OpKind::Fault: {
        sim::FaultPlan plan;
        for (const auto& tr : op.transients) {
          if (tr[1] == 0) {
            plan.failTransfers(static_cast<int>(tr[0]), static_cast<int>(tr[2]));
          } else {
            plan.failKernels(static_cast<int>(tr[0]), static_cast<int>(tr[2]));
          }
        }
        for (const auto& s : op.slows) {
          plan.slowDevice(static_cast<int>(s[0]), static_cast<double>(s[1]),
                          static_cast<int>(s[2]));
        }
        for (const auto& h : op.hangs) {
          plan.hangCommands(static_cast<int>(h[0]), static_cast<int>(h[1]));
        }
        if (op.device >= 0) plan.killAfterCommands(op.device, static_cast<int>(op.value));
        skelcl::setFaultPlan(std::move(plan));
        break;
      }
      case OpKind::Cancel: {
        ensureService();
        // Pausing first makes the submit/cancel race deterministic: the
        // executor cannot pick the job up until resume().
        service_->pause();
        if (op.run) {
          const T* hd = pool[op.a].hostData();
          std::vector<float> in(hd, hd + n_);
          auto h = service_->submitMap(svcSession_, fnSource(op.fn, elem_), std::move(in));
          service_->resume();
          h.wait();  // rethrows job errors (injected faults, exhaustion)
          const std::vector<float>& res = h.output();
          T* dst = pool[op.dst].hostDataWrite();
          for (std::size_t i = 0; i < n_; ++i) dst[i] = static_cast<T>(res[i]);
        } else {
          // Dummy input: a cancelled job must leave no trace, so do not even
          // host-read the source slot (that would issue download commands).
          auto h = service_->submitMap(svcSession_, fnSource(op.fn, elem_),
                                       std::vector<float>(n_, 0.0f));
          const bool cancelled = h.cancel();
          service_->resume();
          SKELCL_CHECK(cancelled, "cancel raced a paused executor");
          try {
            h.wait();
          } catch (const CancelledError&) {
            // expected: cancellation is the op's success path
          }
        }
        break;
      }
      case OpKind::Poke: {
        const auto* part = pool[op.a].impl().partOn(op.device);
        if (part != nullptr && part->buffer != nullptr) {
          std::byte* raw = part->buffer->data();
          for (std::size_t i = 0; i < part->size; ++i) {
            const std::uint32_t b =
                valueAt(elem_, op.base + static_cast<std::int64_t>(i) * op.step);
            std::memcpy(raw + i * 4, &b, 4);
          }
          pool[op.a].dataOnDevicesModified();
        }
        break;
      }
      case OpKind::Probe: {
        const T* hd = pool[op.a].hostData();
        contents.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) contents[i] = toBits(hd[i]);
        break;
      }
      case OpKind::MapOverlap: {
        MapOverlap<T(T)> skel(fnSource(op.fn, elem_), static_cast<std::size_t>(op.radius),
                              op.pad ? Padding::Clamp : Padding::Neutral,
                              scalarValue(op.ci, op.cf));
        if (op.inPlace) {
          skel(out(pool[op.dst]), pool[op.a]);
        } else {
          pool[op.dst] = skel(pool[op.a]);
        }
        break;
      }
      case OpKind::MatStencil: {
        const auto cols = static_cast<std::size_t>(op.cols);
        const std::size_t rows = n_ / cols;
        const T* hd = pool[op.a].hostData();
        std::vector<T> init(rows * cols);
        for (std::size_t i = 0; i < init.size(); ++i) init[i] = hd[i];
        const Matrix<T> m(rows, cols, init);
        MapOverlap<T(T)> skel(fnSource(op.fn, elem_), static_cast<std::size_t>(op.radius),
                              op.pad ? Padding::Clamp : Padding::Neutral,
                              scalarValue(op.ci, op.cf));
        const Matrix<T> res = skel(m);
        const std::vector<T> flat = res.toStdVector();
        T* dst = pool[op.dst].hostDataWrite();
        for (std::size_t i = 0; i < flat.size(); ++i) dst[i] = flat[i];
        break;
      }
    }
  }

  // --- model side -----------------------------------------------------------

  std::vector<MExtra> modelExtras(const Op& op, ModPool& mpool) const {
    std::vector<MExtra> extras;
    MExtra e;
    switch (fnInfo(op.fn)->shape) {
      case FnShape::UnaryScalar:
      case FnShape::BinaryScalar:
        e.kind = MExtra::Kind::Scalar;
        e.ci = normCi(op.ci);
        e.cf = op.cf;
        extras.push_back(e);
        break;
      case FnShape::UnaryVec:
        e.kind = MExtra::Kind::VectorRef;
        e.vec = mpool[op.extraVec].get();
        extras.push_back(e);
        break;
      case FnShape::UnarySizes:
        e.kind = MExtra::Kind::Sizes;
        e.vec = mpool[op.extraVec].get();
        extras.push_back(e);
        break;
      default:
        break;
    }
    return extras;
  }

  std::vector<MStage> modelStages(const Op& op, ModPool& mpool) const {
    std::vector<MStage> stages;
    for (const StageSpec& st : op.stages) {
      MStage ms;
      ms.fn = st.fn;
      ms.zipVec = st.isZip ? mpool[st.zipVec].get() : nullptr;
      ms.hasScalar = shapeHasScalar(st.fn);
      ms.ci = normCi(st.ci);
      ms.cf = st.cf;
      stages.push_back(std::move(ms));
    }
    return stages;
  }

  void execModel(const Op& op, Model& model, ModPool& mpool, std::uint32_t& bits,
                 bool& fused, std::vector<std::uint32_t>& contents) {
    switch (op.kind) {
      case OpKind::Fill:
        model.fill(*mpool[op.a], op.base, op.step);
        break;
      case OpKind::Write:
        model.write(*mpool[op.a], op.index, op.value);
        break;
      case OpKind::SetDist:
        model.setDist(*mpool[op.a], makeDistribution(op.dist, elem_));
        break;
      case OpKind::Alias:
        mpool[op.dst] = mpool[op.a];
        break;
      case OpKind::Map: {
        auto extras = modelExtras(op, mpool);
        if (op.inPlace) {
          model.map(op.fn, *mpool[op.a], *mpool[op.dst], std::move(extras));
        } else {
          auto tmp = std::make_shared<MVec>(n_);
          model.map(op.fn, *mpool[op.a], *tmp, std::move(extras));
          mpool[op.dst] = tmp;
        }
        break;
      }
      case OpKind::Zip: {
        auto extras = modelExtras(op, mpool);
        if (op.inPlace) {
          model.zip(op.fn, *mpool[op.a], *mpool[op.b], *mpool[op.dst], std::move(extras));
        } else {
          auto tmp = std::make_shared<MVec>(n_);
          model.zip(op.fn, *mpool[op.a], *mpool[op.b], *tmp, std::move(extras));
          mpool[op.dst] = tmp;
        }
        break;
      }
      case OpKind::Reduce:
        bits = model.reduce(op.fn, *mpool[op.a], modelExtras(op, mpool));
        break;
      case OpKind::Scan:
        if (op.inPlace) {
          model.scan(op.fn, *mpool[op.a], *mpool[op.dst]);
        } else {
          auto tmp = std::make_shared<MVec>(n_);
          model.scan(op.fn, *mpool[op.a], *tmp);
          mpool[op.dst] = tmp;
        }
        break;
      case OpKind::Pipe: {
        auto stages = modelStages(op, mpool);
        if (op.inPlace) {
          fused = model.pipe(*mpool[op.a], stages, *mpool[op.dst], op.unfused);
        } else {
          auto tmp = std::make_shared<MVec>(n_);
          fused = model.pipe(*mpool[op.a], stages, *tmp, op.unfused);
          mpool[op.dst] = tmp;
        }
        break;
      }
      case OpKind::PipeReduce: {
        auto stages = modelStages(op, mpool);
        bits = model.pipeReduce(*mpool[op.a], stages, op.fn, modelExtras(op, mpool),
                                op.unfused, &fused);
        break;
      }
      case OpKind::Weights:
        model.setWeights(op.weights);
        break;
      case OpKind::Session:
        model.switchSession(op.device);
        if (!op.weights.empty()) model.setWeights(op.weights);
        break;
      case OpKind::Blacklist:
        model.blacklist(op.device);
        break;
      case OpKind::Fault:
        model.installFaults(op.transients, op.slows, op.hangs, op.device, op.value);
        break;
      case OpKind::Cancel:
        if (op.run) {
          model.serviceMap(op.fn, *mpool[op.a], *mpool[op.dst]);
        }
        // run=0: the system cancels the job before it runs on a dummy input;
        // no model state changes.
        break;
      case OpKind::Poke:
        model.poke(*mpool[op.a], op.device, op.base, op.step);
        break;
      case OpKind::Probe:
        contents = model.probe(*mpool[op.a]);
        break;
      case OpKind::MapOverlap: {
        const std::uint32_t neutral = neutralBits(op);
        if (op.inPlace) {
          model.mapOverlap(op.fn, op.radius, op.pad != 0, neutral, *mpool[op.a],
                           *mpool[op.dst]);
        } else {
          auto tmp = std::make_shared<MVec>(n_);
          model.mapOverlap(op.fn, op.radius, op.pad != 0, neutral, *mpool[op.a], *tmp);
          mpool[op.dst] = tmp;
        }
        break;
      }
      case OpKind::MatStencil:
        model.matStencil(op.fn, op.radius, op.pad != 0, neutralBits(op),
                         static_cast<std::size_t>(op.cols), *mpool[op.a], *mpool[op.dst]);
        break;
    }
  }

  /// The neutral element's bit pattern: the system builds it through
  /// scalarValue, so truncate/convert identically.
  std::uint32_t neutralBits(const Op& op) const {
    return toBits(scalarValue(op.ci, op.cf));
  }

  // --- state comparison -------------------------------------------------------

  std::string compareState(Model& model, SysPool& pool, ModPool& mpool) const {
    std::ostringstream os;
    if (skelcl::aliveDeviceCount() != model.aliveCount()) {
      os << "alive device count: system=" << skelcl::aliveDeviceCount()
         << ", model=" << model.aliveCount();
      return os.str();
    }
    for (std::size_t s = 0; s < pool.size(); ++s) {
      detail::VectorData& vd = pool[s].impl();
      const MVec& mv = *mpool[s];
      for (std::size_t u = 0; u < s; ++u) {
        const bool sysAlias = &pool[u].impl() == &vd;
        const bool modAlias = mpool[u] == mpool[s];
        if (sysAlias != modAlias) {
          os << "slot " << s << " aliasing with slot " << u << ": system="
             << (sysAlias ? "aliased" : "distinct")
             << ", model=" << (modAlias ? "aliased" : "distinct");
          return os.str();
        }
      }
      if (vd.hostValid() != mv.hostValid) {
        os << "slot " << s << " hostValid: system=" << vd.hostValid()
           << ", model=" << mv.hostValid;
        return os.str();
      }
      if (vd.devicesValid() != mv.devicesValid) {
        os << "slot " << s << " devicesValid: system=" << vd.devicesValid()
           << ", model=" << mv.devicesValid;
        return os.str();
      }
      if (!(vd.distribution() == mv.requested)) {
        os << "slot " << s << " requested distribution: system="
           << vd.distribution().describe() << ", model=" << mv.requested.describe();
        return os.str();
      }
      if (!(vd.currentDistribution() == mv.current)) {
        os << "slot " << s << " current distribution: system="
           << vd.currentDistribution().describe() << ", model=" << mv.current.describe();
        return os.str();
      }
      const auto& sp = detail::VectorDataTestAccess::parts(vd);
      if (sp.size() != mv.parts.size()) {
        os << "slot " << s << " part count: system=" << sp.size()
           << ", model=" << mv.parts.size();
        return os.str();
      }
      for (std::size_t i = 0; i < sp.size(); ++i) {
        const auto& a = sp[i];
        const MPart& b = mv.parts[i];
        if (a.device != b.device || a.offset != b.offset || a.size != b.size ||
            (a.buffer != nullptr) != b.hasBuf) {
          os << "slot " << s << " part " << i << ": system={dev " << a.device << ", off "
             << a.offset << ", size " << a.size << ", buf " << (a.buffer != nullptr)
             << "}, model={dev " << b.device << ", off " << b.offset << ", size "
             << b.size << ", buf " << b.hasBuf << "}";
          return os.str();
        }
        if (a.buffer != nullptr && a.size > 0) {
          if (b.data.size() != a.size ||
              std::memcmp(a.buffer->data(), b.data.data(), a.size * 4) != 0) {
            std::size_t j = 0;
            std::uint32_t sb = 0;
            for (; j < a.size; ++j) {
              std::memcpy(&sb, a.buffer->data() + j * 4, 4);
              if (j >= b.data.size() || sb != b.data[j]) break;
            }
            os << "slot " << s << " part " << i << " (device " << a.device
               << ") contents differ at [" << j << "]: system=0x" << std::hex << sb
               << ", model=0x" << (j < b.data.size() ? b.data[j] : 0u);
            return os.str();
          }
        }
      }
      if (vd.hostValid()) {
        const auto& hb = detail::VectorDataTestAccess::host(vd);
        if (std::memcmp(hb.data(), mv.host.data(), n_ * 4) != 0) {
          std::size_t j = 0;
          std::uint32_t sb = 0;
          for (; j < n_; ++j) {
            std::memcpy(&sb, hb.data() + j * 4, 4);
            if (sb != mv.host[j]) break;
          }
          os << "slot " << s << " host contents differ at [" << j << "]: system=0x"
             << std::hex << sb << ", model=0x" << mv.host[j];
          return os.str();
        }
      }
    }
    return "";
  }

  /// Lazily start the multi-tenant Service the Cancel op exercises (its own
  /// executor thread and a dedicated tenant session, like a real client).
  void ensureService() {
    if (service_ == nullptr) {
      service_ = std::make_unique<Service>();
      svcSession_ = service_->createSession({"svccheck", 1.0, 0});
    }
  }

  Program prog_;
  ElemType elem_;
  std::size_t n_;
  std::map<int, std::shared_ptr<Session>> sessions_;  ///< tenant slot -> session
  std::unique_ptr<SessionScope> scope_;               ///< active non-default slot
  std::unique_ptr<Service> service_;                  ///< Cancel-op service
  std::shared_ptr<detail::Session> svcSession_;
};

}  // namespace

RunResult runProgram(const Program& program) {
  Program prog = program;
  sanitize(prog);
  if (prog.cfg.elem == ElemType::I32) {
    return Driver<std::int32_t>(prog).run();
  }
  return Driver<float>(prog).run();
}

}  // namespace skelcl::check
