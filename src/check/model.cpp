#include "check/model.hpp"

#include <algorithm>
#include <functional>
#include <memory>

#include "base/error.hpp"
#include "check/funcs.hpp"

namespace skelcl::check {

MPart* MVec::partOn(int device) {
  for (MPart& p : parts) {
    if (p.device == device) return &p;
  }
  return nullptr;
}

Distribution makeDistribution(const DistSpec& spec, ElemType t) {
  switch (spec.kind) {
    case DistKind::Single:
      return Distribution::single(spec.device);
    case DistKind::Block:
      return Distribution::block();
    case DistKind::WBlock:
      return Distribution::block(spec.weights);
    case DistKind::Copy:
      return Distribution::copy();
    case DistKind::CopyCombine:
      return Distribution::copy(fnSource(spec.fn, t));
  }
  throw UsageError("skelcheck: invalid DistSpec kind");
}

// ---------------------------------------------------------------------------
// MGraph: mirror of detail::ExecGraph::run over the model's fault injector.
//
// Nodes execute in insertion order.  A node whose dependency failed is
// poisoned without issuing (no command is counted).  Device nodes loop:
// bind-check (UsageError escapes immediately, exactly like a setArg/bindExtras
// throw inside a real issue lambda), then one injector decision per attempt;
// Lost or max_attempts exhausted records the FIRST failure and continues with
// the remaining nodes; the saved failure is thrown after the last node.
// Effects run only on a None decision — a faulted command moves no data.
// ---------------------------------------------------------------------------

class MGraph {
 public:
  using NodeId = std::size_t;

  explicit MGraph(Model& m) : m_(m) {}

  NodeId add(int device, int cls, std::function<void()> bindCheck,
             std::function<void()> effect, std::vector<NodeId> deps = {}) {
    nodes_.push_back(Node{device, cls, false, std::move(bindCheck), std::move(effect),
                          std::move(deps), false});
    return nodes_.size() - 1;
  }

  NodeId addHost(std::function<void()> effect, std::vector<NodeId> deps = {}) {
    nodes_.push_back(Node{-1, 0, true, nullptr, std::move(effect), std::move(deps), false});
    return nodes_.size() - 1;
  }

  void run() {
    std::unique_ptr<ModelCommandError> failure;
    for (Node& node : nodes_) {
      bool depFailed = false;
      for (const NodeId d : node.deps) depFailed = depFailed || nodes_[d].failed;
      if (depFailed) {
        node.failed = true;
        continue;
      }
      if (node.host) {
        node.effect();
        continue;
      }
      for (int failedAttempts = 0;;) {
        if (node.bindCheck) node.bindCheck();
        const Model::Decision d = m_.onCommand(node.device, node.cls);
        if (d == Model::Decision::None) {
          node.effect();
          break;
        }
        if (d == Model::Decision::Timeout) {
          // Watchdog abort: escalates immediately, no retry attempts (the
          // real ExecGraph re-issuing would just burn another deadline).
          if (!failure) {
            failure = std::make_unique<ModelCommandError>(ModelCommandError{
                node.device, false, true, "model: watchdog timeout"});
          }
          node.failed = true;
          break;
        }
        ++failedAttempts;
        if (d == Model::Decision::Lost || failedAttempts >= m_.maxAttempts()) {
          if (!failure) {
            failure = std::make_unique<ModelCommandError>(ModelCommandError{
                node.device, d == Model::Decision::Lost, false,
                d == Model::Decision::Lost ? "model: device lost"
                                           : "model: transient fault persisted"});
          }
          node.failed = true;
          break;
        }
      }
    }
    if (failure) throw *failure;
  }

 private:
  struct Node {
    int device;
    int cls;
    bool host;
    std::function<void()> bindCheck;
    std::function<void()> effect;
    std::vector<NodeId> deps;
    bool failed;
  };

  Model& m_;
  std::vector<Node> nodes_;
};

// ---------------------------------------------------------------------------
// Model: construction, runtime + fault-injector mirrors
// ---------------------------------------------------------------------------

Model::Model(const Config& cfg, std::vector<int> cores)
    : cfg_(cfg),
      cores_(std::move(cores)),
      dead_(static_cast<std::size_t>(cfg.devices), 0),
      health_(static_cast<std::size_t>(cfg.devices), 1.0),
      degrade_counts_(static_cast<std::size_t>(cfg.devices), 0),
      cmd_counts_(static_cast<std::size_t>(cfg.devices), 0),
      inj_dead_(static_cast<std::size_t>(cfg.devices), 0) {
  SKELCL_CHECK(cores_.size() == static_cast<std::size_t>(cfg_.devices),
               "model: one core count per device required");
  for (int d = 0; d < cfg_.devices; ++d) alive_.push_back(d);
  // Mirror of docl::flatten's device->node map: devices spread evenly, in
  // order, across the nodes (the runner builds exactly that cluster config).
  SKELCL_CHECK(cfg_.nodes >= 1 && cfg_.devices % cfg_.nodes == 0,
               "model: node count must divide device count");
  const int perNode = cfg_.devices / cfg_.nodes;
  for (int d = 0; d < cfg_.devices; ++d) node_of_.push_back(d / perNode);
}

std::vector<PartRange> Model::partitionFor(const Distribution& d, std::size_t n) const {
  const Distribution eff = effective(d);
  if (multiNode()) return eff.partition(n, alive_, node_of_);
  return eff.partition(n, alive_);
}

Model::Decision Model::onCommand(int device, int cls) {
  if (!faults_active_ || device < 0) return Decision::None;
  const std::uint64_t n = ++cmd_counts_[static_cast<std::size_t>(device)];
  if (inj_dead_[static_cast<std::size_t>(device)]) return Decision::Lost;
  // Kill rules preempt transients (fault.cpp checks them first).
  if (kill_device_ == device && n > static_cast<std::uint64_t>(kill_after_)) {
    inj_dead_[static_cast<std::size_t>(device)] = 1;
    return Decision::Lost;
  }
  for (TransRule& r : trans_) {
    if ((r.device != -1 && r.device != device) || r.cls != cls) continue;
    if (r.remaining <= 0) continue;
    --r.remaining;
    return Decision::Transient;
  }
  // Slow/hang rules apply to any command class.  The real injector returns
  // the first matching rule's decision, so stop scanning either way; a
  // counted rule is consumed whether the slowdown is tolerated or aborted.
  for (SlowRule& r : slows_) {
    if (r.device != -1 && r.device != device) continue;
    if (r.remaining == 0) continue;
    if (r.remaining > 0) --r.remaining;
    return r.factor > kWatchdogSlack ? Decision::Timeout : Decision::None;
  }
  for (HangRule& r : hangs_) {
    if (r.device != -1 && r.device != device) continue;
    if (r.remaining <= 0) continue;
    --r.remaining;
    return Decision::Timeout;
  }
  return Decision::None;
}

void Model::installFaults(const std::vector<std::array<std::int64_t, 3>>& transients,
                          const std::vector<std::array<std::int64_t, 3>>& slows,
                          const std::vector<std::array<std::int64_t, 2>>& hangs,
                          int killDevice, std::int64_t killAfter) {
  trans_.clear();
  for (const auto& t : transients) {
    trans_.push_back(TransRule{static_cast<int>(t[0]), static_cast<int>(t[1]),
                               static_cast<int>(t[2])});
  }
  slows_.clear();
  for (const auto& s : slows) {
    // count 0 means "every command" (a persistent straggler).
    slows_.push_back(SlowRule{static_cast<int>(s[0]), static_cast<double>(s[1]),
                              s[2] == 0 ? -1 : static_cast<int>(s[2])});
  }
  hangs_.clear();
  for (const auto& h : hangs) {
    hangs_.push_back(HangRule{static_cast<int>(h[0]), static_cast<int>(h[1])});
  }
  kill_device_ = killDevice;
  kill_after_ = killAfter;
  // install() resets command counters AND the injector's dead flags (the
  // runtime blacklist is a separate, persistent notion).  Degrade state
  // (health_, degrade_counts_) is runtime state and survives installs.
  std::fill(cmd_counts_.begin(), cmd_counts_.end(), 0);
  std::fill(inj_dead_.begin(), inj_dead_.end(), 0);
  faults_active_ =
      !trans_.empty() || !slows_.empty() || !hangs_.empty() || killDevice >= 0;
}

void Model::allocCheck(int device) {
  // ocl::Device::allocate: allocation on an injector-dead device throws a
  // permanent CommandError before any graph work.
  if (inj_dead_[static_cast<std::size_t>(device)]) {
    throw ModelCommandError{device, true, false, "model: allocation on dead device"};
  }
}

const std::vector<double>& Model::applicableWeights() const {
  static const std::vector<double> kNone;
  const auto it = sessions_.find(cur_session_);
  if (it == sessions_.end()) return kNone;
  const std::vector<double>& weights = it->second.weights;
  if (weights.empty()) return kNone;
  if (weights.size() != static_cast<std::size_t>(cfg_.devices)) return kNone;
  double aliveTotal = 0.0;
  for (int d : alive_) aliveTotal += weights[static_cast<std::size_t>(d)];
  if (!(aliveTotal > 0.0)) return kNone;
  return weights;
}

std::uint64_t Model::partitionEpoch() const {
  const auto it = sessions_.find(cur_session_);
  return device_epoch_ + (it == sessions_.end() ? 0 : it->second.weightEpoch);
}

Distribution Model::effective(const Distribution& d) const {
  if (d.kind() == Distribution::Kind::Block && d.weights().empty()) {
    std::vector<double> w = applicableWeights();
    // Mirror of Session::effectiveDistribution's health folding: degraded
    // devices shrink an unweighted block (or scale the session weights).
    bool anyDegraded = false;
    for (const double h : health_) anyDegraded = anyDegraded || h != 1.0;
    if (!w.empty()) {
      if (anyDegraded) {
        SKELCL_CHECK(w.size() == health_.size(),
                     "partition weights and device health must both cover every device");
        for (std::size_t i = 0; i < w.size(); ++i) {
          w[i] *= health_[i];
        }
      }
      return Distribution::block(w);
    }
    if (anyDegraded) return Distribution::block(health_);
  }
  return d;
}

void Model::setWeights(std::vector<double> weights) {
  SessState& s = sessions_[cur_session_];
  s.weights = std::move(weights);
  ++s.weightEpoch;
}

void Model::switchSession(int slot) { cur_session_ = slot; }

void Model::blacklist(int device) { blacklistDevice(device); }

void Model::blacklistDevice(int device) {
  SKELCL_CHECK(device >= 0 && device < cfg_.devices, "device index out of range");
  if (dead_[static_cast<std::size_t>(device)]) return;
  dead_[static_cast<std::size_t>(device)] = 1;
  alive_.clear();
  for (int d = 0; d < cfg_.devices; ++d) {
    if (!dead_[static_cast<std::size_t>(d)]) alive_.push_back(d);
  }
  if (alive_.empty()) {
    throw ResourceError("device " + std::to_string(device) +
                        " failed and no devices survive");
  }
  ++device_epoch_;
}

void Model::degradeDevice(int device) {
  // Mirror of SharedDeviceState::degradeDevice: idempotent on dead devices,
  // strike counting, escalation to the blacklist at kDegradeStrikes.
  SKELCL_CHECK(device >= 0 && device < cfg_.devices, "device index out of range");
  if (dead_[static_cast<std::size_t>(device)]) return;
  const int strikes = ++degrade_counts_[static_cast<std::size_t>(device)];
  if (strikes >= kDegradeStrikes) {
    blacklistDevice(device);
    return;
  }
  health_[static_cast<std::size_t>(device)] = kDegradedHealth;
  ++device_epoch_;
}

// ---------------------------------------------------------------------------
// VectorData mirror
// ---------------------------------------------------------------------------

const std::vector<PartRange>& Model::plannedPartition(MVec& v) {
  SKELCL_CHECK(v.requested.isSet(), "vector has no distribution");
  const std::uint64_t epoch = partitionEpoch();
  if (!v.plannedValid || v.plannedSession != cur_session_ || v.plannedEpoch != epoch) {
    v.planned = partitionFor(v.requested, v.n);
    v.plannedValid = true;
    v.plannedSession = cur_session_;
    v.plannedEpoch = epoch;
  }
  return v.planned;
}

std::size_t Model::partSizeOn(MVec& v, int device) {
  for (const PartRange& p : plannedPartition(v)) {
    if (p.device == device) return p.size;
  }
  return 0;
}

bool Model::partsMatchRequested(MVec& v) {
  if (!v.devicesValid) return false;
  const auto& want = plannedPartition(v);
  if (want.size() != v.parts.size()) return false;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (want[i].device != v.parts[i].device || want[i].offset != v.parts[i].offset ||
        want[i].size != v.parts[i].size) {
      return false;
    }
  }
  return true;
}

void Model::setDistribution(MVec& v, const Distribution& d) {
  SKELCL_CHECK(d.isSet(), "cannot set an empty distribution");
  v.requested = d;
  v.plannedValid = false;
}

void Model::defaultDistribution(MVec& v, const Distribution& d) {
  if (!v.requested.isSet()) {
    v.requested = d;
    v.plannedValid = false;
  }
}

void Model::ensureOnDevices(MVec& v) {
  SKELCL_CHECK(v.requested.isSet(), "vector has no distribution");
  if (partsMatchRequested(v)) {
    v.current = v.requested;  // adopt e.g. copy() -> copy(combine)
    return;
  }
  ensureHostValid(v);
  materializeParts(v, /*upload=*/true);
}

void Model::ensureOnDevicesNoUpload(MVec& v) {
  SKELCL_CHECK(v.requested.isSet(), "vector has no distribution");
  if (partsMatchRequested(v)) {
    v.current = v.requested;
    return;
  }
  materializeParts(v, /*upload=*/false);
  v.hostValid = false;  // the kernel will produce the data
}

void Model::materializeParts(MVec& v, bool upload) {
  v.parts.clear();
  for (const PartRange& r : plannedPartition(v)) {
    MPart part;
    part.device = r.device;
    part.offset = r.offset;
    part.size = r.size;
    if (r.size > 0) {
      allocCheck(r.device);
      part.hasBuf = true;
      part.data.assign(r.size, 0);  // fresh buffers read as zero bytes
    }
    v.parts.push_back(std::move(part));
  }
  if (upload) {
    // Mirror of VectorData::materializeParts' upload graph, including the
    // cluster copy-broadcast: one upload per node to the node's first part
    // (the leader), siblings filled by peer copies that depend on it (and
    // are counted against the *destination* device, like the real enqueue).
    const bool treeBroadcast =
        multiNode() && v.requested.kind() == Distribution::Kind::Copy && v.n > 0;
    MGraph g(*this);
    MPart* leader = nullptr;
    MGraph::NodeId leaderId = 0;
    int leaderNode = -1;
    for (MPart& part : v.parts) {
      if (part.size == 0) continue;
      MPart* p = &part;
      const int node = node_of_[static_cast<std::size_t>(p->device)];
      if (treeBroadcast && leader != nullptr && node == leaderNode) {
        MPart* src = leader;
        g.add(p->device, /*cls=*/0, nullptr,
              [src, p] { std::copy(src->data.begin(), src->data.end(), p->data.begin()); },
              {leaderId});
        continue;
      }
      const MGraph::NodeId id = g.add(p->device, /*cls=*/0, nullptr, [&v, p] {
        std::copy(v.host.begin() + static_cast<std::ptrdiff_t>(p->offset),
                  v.host.begin() + static_cast<std::ptrdiff_t>(p->offset + p->size),
                  p->data.begin());
      });
      leader = p;
      leaderId = id;
      leaderNode = node;
    }
    g.run();
  }
  // Flags adopt only after a fully successful upload graph — a failed upload
  // leaves current/devicesValid stale over freshly rebuilt parts, exactly
  // like the system.
  v.current = v.requested;
  v.devicesValid = true;
}

void Model::downloadParts(MVec& v) {
  MGraph g(*this);
  for (MPart& part : v.parts) {
    if (part.size == 0) continue;
    MPart* p = &part;
    g.add(p->device, /*cls=*/0, nullptr, [&v, p] {
      std::copy(p->data.begin(), p->data.end(),
                v.host.begin() + static_cast<std::ptrdiff_t>(p->offset));
    });
  }
  g.run();
}

void Model::ensureHostValid(MVec& v) {
  if (v.hostValid) return;
  SKELCL_CHECK(v.devicesValid, "vector holds no valid data");
  if (v.requested.isSet() && partsMatchRequested(v)) v.current = v.requested;
  if (v.current.kind() == Distribution::Kind::Copy) {
    combineCopiesToHost(v);
  } else {
    downloadParts(v);
  }
  v.hostValid = true;
}

void Model::combineCopiesToHost(MVec& v) {
  SKELCL_CHECK(!v.parts.empty(), "copy distribution without parts");
  const bool combine = v.current.hasCombine() && v.parts.size() >= 2 && v.n > 0;

  MGraph g(*this);
  std::vector<MGraph::NodeId> reads;
  std::vector<std::vector<std::uint32_t>> staged(v.parts.size());
  for (std::size_t p = 0; p < v.parts.size(); ++p) {
    MPart& part = v.parts[p];
    if (part.size == 0 || (p > 0 && !combine)) continue;
    std::vector<std::uint32_t>* dst = &v.host;
    if (p > 0) {
      staged[p].resize(v.n);
      dst = &staged[p];
    }
    MPart* pp = &part;
    reads.push_back(g.add(pp->device, /*cls=*/0, nullptr, [&v, pp, dst] {
      // full-vector read from the replica buffer
      std::copy(pp->data.begin(), pp->data.begin() + static_cast<std::ptrdiff_t>(v.n),
                dst->begin());
    }));
  }

  if (combine) {
    const std::string fn = idForSource(v.current.combineSource());
    SKELCL_CHECK(!fn.empty(), "model: combine source not in the skelcheck catalog");
    g.addHost(
        [this, &v, &staged, fn] {
          for (std::size_t p = 1; p < v.parts.size(); ++p) {
            if (v.parts[p].size == 0) continue;  // download skipped; nothing staged
            const std::vector<std::uint32_t>& other = staged[p];
            for (std::size_t i = 0; i < v.n; ++i) {
              v.host[i] = eval(fn, v.host[i], other[i], 0, 0.0);
            }
          }
        },
        reads);
  }
  g.run();

  if (combine) v.devicesValid = false;
}

void Model::markDevicesModified(MVec& v) {
  SKELCL_CHECK(v.devicesValid || v.parts.empty(),
               "dataOnDevicesModified on a vector without device data");
  if (!v.parts.empty()) {
    v.devicesValid = true;
    v.hostValid = false;
  }
}

void Model::markHostModified(MVec& v) {
  v.hostValid = true;
  v.devicesValid = false;
}

void Model::recoverAfterDeviceLoss(MVec& v, int deadDevice) {
  v.plannedValid = false;
  if (v.parts.empty()) return;

  if (v.hostValid) {
    v.parts.clear();
    v.devicesValid = false;
    return;
  }

  MPart* dead = v.partOn(deadDevice);
  if (dead == nullptr || dead->size == 0) return;

  if (v.current.kind() == Distribution::Kind::Copy && !v.current.hasCombine()) {
    for (auto it = v.parts.begin(); it != v.parts.end(); ++it) {
      if (it->device == deadDevice) {
        v.parts.erase(it);
        break;
      }
    }
    if (!v.parts.empty()) return;
    v.devicesValid = false;
    throw DataLossError("device " + std::to_string(deadDevice) +
                        " held the last replica of a copy-distributed vector");
  }

  v.devicesValid = false;
  v.hostValid = true;
  v.parts.clear();
  throw DataLossError("device " + std::to_string(deadDevice) +
                      " held the only current copy");
}

void Model::resetDeviceDataAfterLoss(MVec& v) {
  v.plannedValid = false;
  v.parts.clear();
  v.devicesValid = false;
  v.hostValid = true;
}

// ---------------------------------------------------------------------------
// Host-level ops
// ---------------------------------------------------------------------------

void Model::fill(MVec& v, std::int64_t base, std::int64_t step) {
  ensureHostValid(v);
  markHostModified(v);
  for (std::size_t i = 0; i < v.n; ++i) {
    v.host[i] = valueAt(cfg_.elem, base + static_cast<std::int64_t>(i) * step);
  }
}

void Model::write(MVec& v, std::int64_t index, std::int64_t value) {
  ensureHostValid(v);
  markHostModified(v);
  v.host[static_cast<std::size_t>(index)] = valueAt(cfg_.elem, value);
}

void Model::poke(MVec& v, int device, std::int64_t base, std::int64_t step) {
  MPart* part = v.partOn(device);
  if (part == nullptr || !part->hasBuf) return;  // runner skips identically
  for (std::size_t i = 0; i < part->size; ++i) {
    part->data[i] = valueAt(cfg_.elem, base + static_cast<std::int64_t>(i) * step);
  }
  markDevicesModified(v);  // may throw UsageError when device data is stale
}

const std::vector<std::uint32_t>& Model::probe(MVec& v) {
  ensureHostValid(v);
  return v.host;
}

// ---------------------------------------------------------------------------
// Skeleton mirror
// ---------------------------------------------------------------------------

std::uint32_t Model::eval(const std::string& fn, std::uint32_t a, std::uint32_t b,
                          std::int64_t ci, double cf) const {
  return evalFn(fn, cfg_.elem, a, b, ci, cf);
}

void Model::prepareExtras(std::vector<MExtra>& extras) {
  for (MExtra& e : extras) {
    if (e.kind == MExtra::Kind::Scalar) continue;
    SKELCL_CHECK(e.vec != nullptr, "extra argument vector missing");
    if (!e.vec->requested.isSet()) {
      throw UsageError(
          "no meaningful default distribution exists for vectors passed as "
          "additional arguments; set one explicitly (paper Section III-B)");
    }
    if (e.kind == MExtra::Kind::VectorRef) ensureOnDevices(*e.vec);
  }
}

void Model::bindExtrasCheck(const std::vector<MExtra>& extras, int device) {
  for (const MExtra& e : extras) {
    if (e.kind != MExtra::Kind::VectorRef) continue;
    const MPart* part = e.vec->partOn(device);
    if (part == nullptr || !part->hasBuf) {
      throw UsageError("additional-argument vector has no data on device " +
                       std::to_string(device) +
                       "; give it copy distribution or a block distribution matching "
                       "the input");
    }
  }
}

template <typename Body>
auto Model::withRecovery(std::vector<MVec*> inputs, MVec* resetOutput, Body&& body)
    -> decltype(body()) {
  for (int attempt = 0;; ++attempt) {
    try {
      return body();
    } catch (const ModelCommandError& e) {
      if (!e.permanent && !e.timedOut) throw;
      // Watchdog strikes degrade before blacklisting, so a device can fail
      // kDegradeStrikes + 1 times (strikes, then the post-blacklist retry
      // runs elsewhere) before it stops appearing in plans.
      SKELCL_CHECK(attempt < cfg_.devices * (kDegradeStrikes + 1),
                   "skeleton failed on more devices than the system has");
      if (e.timedOut) {
        degradeDevice(e.device);
      } else {
        blacklistDevice(e.device);
      }
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        MVec* v = inputs[i];
        if (v == nullptr) continue;
        bool seen = false;
        for (std::size_t j = 0; j < i; ++j) seen = seen || inputs[j] == v;
        if (!seen) recoverAfterDeviceLoss(*v, e.device);
      }
      if (resetOutput != nullptr) resetDeviceDataAfterLoss(*resetOutput);
    }
  }
}

void Model::elementwiseOnce(const std::string& fn, MVec* in1, MVec* in2, MVec& output,
                            std::vector<MExtra>& extras) {
  const std::size_t n = in1->n;

  Distribution dist;
  if (in2 != nullptr) {
    SKELCL_CHECK(in2->n == n, "zip inputs must have the same size");
    const Distribution& d1 = in1->requested;
    const Distribution& d2 = in2->requested;
    if (d1.isSet() && d2.isSet()) {
      dist = (d1 == d2) ? d1 : Distribution::block();
    } else if (d1.isSet()) {
      dist = d1;
    } else if (d2.isSet()) {
      dist = d2;
    } else {
      dist = Distribution::block();
    }
    setDistribution(*in1, dist);
    setDistribution(*in2, dist);
  } else {
    defaultDistribution(*in1, Distribution::block());
    dist = in1->requested;
  }

  const bool inPlace = (&output == in1) || (&output == in2);
  ensureOnDevices(*in1);
  if (in2 != nullptr) ensureOnDevices(*in2);
  setDistribution(output, dist);
  if (!inPlace) ensureOnDevicesNoUpload(output);
  prepareExtras(extras);

  const FnInfo* info = fnInfo(fn);
  SKELCL_CHECK(info != nullptr, "model: unknown function id");
  const FnShape shape = info->shape;

  const auto ranges = partitionFor(dist, n);
  MGraph g(*this);
  bool launched = false;
  for (const PartRange& r : ranges) {
    if (r.size == 0) continue;
    launched = true;
    const int dev = r.device;
    g.add(
        dev, /*cls=*/1, [this, &extras, dev] { bindExtrasCheck(extras, dev); },
        [this, fn, in1, in2, &output, &extras, shape, dev, r] {
          MPart* p1 = in1->partOn(dev);
          MPart* p2 = in2 != nullptr ? in2->partOn(dev) : nullptr;
          MPart* po = output.partOn(dev);
          for (std::size_t j = 0; j < r.size; ++j) {
            const std::uint32_t a = p1->data[j];
            std::uint32_t b = 0;
            std::int64_t ci = 0;
            double cf = 0.0;
            switch (shape) {
              case FnShape::Unary:
                break;
              case FnShape::UnaryScalar:
              case FnShape::BinaryScalar:
                ci = extras[0].ci;
                cf = extras[0].cf;
                break;
              case FnShape::UnaryVec:
                b = extras[0].vec->partOn(dev)->data[0];
                break;
              case FnShape::UnarySizes:
                ci = static_cast<std::int32_t>(partSizeOn(*extras[0].vec, dev));
                break;
              case FnShape::Binary:
                break;
              case FnShape::Stencil1:
              case FnShape::Stencil2:
                throw UsageError("model: stencil function used elementwise");
            }
            if (p2 != nullptr) b = p2->data[j];
            po->data[j] = eval(fn, a, b, ci, cf);
          }
        });
  }
  g.run();
  if (launched) markDevicesModified(output);
}

void Model::runElementwise(const std::string& fn, MVec* in1, MVec* in2, MVec& output,
                           std::vector<MExtra>& extras) {
  const bool inPlace = (&output == in1) || (&output == in2);
  std::vector<MVec*> inputs{in1, in2};
  for (const MExtra& e : extras) {
    if (e.kind == MExtra::Kind::VectorRef) inputs.push_back(e.vec);
  }
  withRecovery(std::move(inputs), inPlace ? nullptr : &output,
               [&] { elementwiseOnce(fn, in1, in2, output, extras); });
}

void Model::map(const std::string& fn, MVec& input, MVec& output,
                std::vector<MExtra> extras) {
  runElementwise(fn, &input, nullptr, output, extras);
}

void Model::serviceMap(const std::string& fn, MVec& src, MVec& dst) {
  // The driver host-reads the source slot to build the job's input copy.
  probe(src);
  // The executor runs the job under the service's own session (no weights),
  // on fresh host-only vectors: a Vector<float> built from the copied input
  // and the skeleton's fresh output vector, which it then host-reads.
  const int saved = cur_session_;
  cur_session_ = kServiceSessionSlot;
  MVec in(src.n);
  in.host = src.host;
  MVec out(src.n);
  try {
    map(fn, in, out, {});
    probe(out);
  } catch (...) {
    cur_session_ = saved;
    throw;
  }
  cur_session_ = saved;
  // The driver writes handle.output() into the destination slot's host copy.
  ensureHostValid(dst);
  markHostModified(dst);
  dst.host = out.host;
}

void Model::zip(const std::string& fn, MVec& left, MVec& right, MVec& output,
                std::vector<MExtra> extras) {
  runElementwise(fn, &left, &right, output, extras);
}

// ---------------------------------------------------------------------------
// MapOverlap mirror (runMapOverlap1DOnce / runMapOverlap2DOnce)
// ---------------------------------------------------------------------------

namespace {

/// Truncation the VM applies after every int32 operation.
std::int32_t trunc32(std::int64_t v) { return static_cast<std::int32_t>(v); }

/// Mirror of skeleton_exec.cpp's HaloSegment decomposition: the in-range
/// portion of [lo, hi) split into per-owner contiguous segments, ascending.
struct MSeg {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t ownerIndex = 0;
};

std::vector<MSeg> haloSegs(const std::vector<PartRange>& ranges, std::size_t self,
                           std::ptrdiff_t lo, std::ptrdiff_t hi, std::size_t count) {
  std::vector<MSeg> segs;
  const std::size_t begin = lo < 0 ? 0 : static_cast<std::size_t>(lo);
  const std::size_t end =
      hi > static_cast<std::ptrdiff_t>(count) ? count : static_cast<std::size_t>(hi);
  if (begin >= end) return segs;
  for (std::size_t q = 0; q < ranges.size(); ++q) {
    if (q == self) continue;
    const std::size_t s = std::max(begin, ranges[q].offset);
    const std::size_t e = std::min(end, ranges[q].offset + ranges[q].size);
    if (s < e) segs.push_back(MSeg{s, e, q});
  }
  std::sort(segs.begin(), segs.end(),
            [](const MSeg& a, const MSeg& b) { return a.begin < b.begin; });
  return segs;
}

}  // namespace

std::uint32_t Model::stencilEval(const std::string& fn, const std::vector<std::uint32_t>& pad,
                                 std::size_t center, std::size_t stride) const {
  const std::size_t c = center;
  if (cfg_.elem == ElemType::I32) {
    const auto I = [&](std::size_t k) { return static_cast<std::int64_t>(asI(pad[k])); };
    if (fn == "s1sum") return bitsOfI(trunc32(trunc32(I(c - 1) + I(c)) + I(c + 1)));
    if (fn == "s1diff") return bitsOfI(trunc32(I(c + 1) - I(c - 1)));
    if (fn == "s2sum") {
      std::int64_t t = trunc32(I(c - stride) + I(c - 1));
      t = trunc32(t + I(c));
      t = trunc32(t + I(c + 1));
      return bitsOfI(trunc32(t + I(c + stride)));
    }
  } else {
    const auto F = [&](std::size_t k) { return asF(pad[k]); };
    if (fn == "s1sum") {
      const float t = F(c - 1) + F(c);
      return bitsOfF(t + F(c + 1));
    }
    if (fn == "s1diff") return bitsOfF(F(c + 1) - F(c - 1));
    if (fn == "s2sum") {
      float t = F(c - stride) + F(c - 1);
      t = t + F(c);
      t = t + F(c + 1);
      return bitsOfF(t + F(c + stride));
    }
  }
  throw UsageError("model: unknown stencil function '" + fn + "'");
}

void Model::mapOverlapOnce(const std::string& fn, std::size_t radius, bool clampPad,
                           std::uint32_t neutral, MVec& input, MVec& output) {
  const std::size_t n = input.n;
  if (n == 0) return;  // empty in, empty out

  if (input.requested.kind() != Distribution::Kind::Block) {
    setDistribution(input, Distribution::block());
  }
  ensureOnDevices(input);
  setDistribution(output, input.requested);
  ensureOnDevicesNoUpload(output);

  const std::ptrdiff_t R = static_cast<std::ptrdiff_t>(radius);
  const std::vector<PartRange> ranges = plannedPartition(input);

  struct Plan {
    PartRange range;
    std::vector<MSeg> segs;
    std::vector<std::vector<std::uint32_t>> staging;  ///< one per segment
    std::vector<std::uint32_t> padded;                ///< [haloL | interior | haloR]
    std::size_t missLeft = 0, missRight = 0;
    std::vector<MGraph::NodeId> segUploads;
    std::vector<MGraph::NodeId> padWrites;
    MGraph::NodeId interior = 0;
  };
  std::vector<Plan> plans;
  for (std::size_t pi = 0; pi < ranges.size(); ++pi) {
    const PartRange& r = ranges[pi];
    Plan p;
    p.range = r;
    const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(r.offset);
    const std::ptrdiff_t hiEnd = off + static_cast<std::ptrdiff_t>(r.size) + R;
    allocCheck(r.device);  // the padded buffer's allocation gate
    p.padded.assign(r.size + 2 * radius, 0);
    p.segs = haloSegs(ranges, pi, off - R, hiEnd, n);
    p.staging.resize(p.segs.size());
    for (std::size_t si = 0; si < p.segs.size(); ++si) {
      p.staging[si].assign(p.segs[si].end - p.segs[si].begin, 0);
    }
    p.missLeft = off < R ? static_cast<std::size_t>(R - off) : 0;
    p.missRight = hiEnd > static_cast<std::ptrdiff_t>(n)
                      ? static_cast<std::size_t>(hiEnd - static_cast<std::ptrdiff_t>(n))
                      : 0;
    plans.push_back(std::move(p));
  }

  // Stage-outer / part-inner, matching the engine's recorded order.
  MGraph g(*this);
  MVec* in = &input;
  // Halo exchange, step 1: read each segment from its owner.
  for (Plan& p : plans) {
    p.segUploads.assign(p.segs.size(), 0);
    for (std::size_t si = 0; si < p.segs.size(); ++si) {
      const MSeg s = p.segs[si];
      const PartRange owner = ranges[s.ownerIndex];
      std::vector<std::uint32_t>* stage = &p.staging[si];
      p.segUploads[si] = g.add(owner.device, /*cls=*/0, nullptr, [in, owner, s, stage] {
        MPart* po = in->partOn(owner.device);
        const auto srcOff = static_cast<std::ptrdiff_t>(s.begin - owner.offset);
        std::copy(po->data.begin() + srcOff,
                  po->data.begin() + srcOff + static_cast<std::ptrdiff_t>(s.end - s.begin),
                  stage->begin());
      });
    }
  }
  // Interior: one device-local copy of the part's own elements.
  for (Plan& p : plans) {
    const PartRange r = p.range;
    Plan* pp = &p;
    p.interior = g.add(r.device, /*cls=*/0, nullptr, [in, pp, r, radius] {
      MPart* ip = in->partOn(r.device);
      std::copy(ip->data.begin(), ip->data.begin() + static_cast<std::ptrdiff_t>(r.size),
                pp->padded.begin() + static_cast<std::ptrdiff_t>(radius));
    });
    p.padWrites.push_back(p.interior);
  }
  // Halo exchange, step 2: staged segments into the padded buffer.
  for (Plan& p : plans) {
    const PartRange r = p.range;
    Plan* pp = &p;
    for (std::size_t si = 0; si < p.segs.size(); ++si) {
      const MSeg s = p.segs[si];
      const MGraph::NodeId download = p.segUploads[si];
      const std::size_t dstOff = s.begin + radius - r.offset;
      p.segUploads[si] = g.add(
          r.device, /*cls=*/0, nullptr,
          [pp, si, dstOff] {
            std::copy(pp->staging[si].begin(), pp->staging[si].end(),
                      pp->padded.begin() + static_cast<std::ptrdiff_t>(dstOff));
          },
          {download});
      p.padWrites.push_back(p.segUploads[si]);
    }
  }
  // Boundary policy.
  for (Plan& p : plans) {
    const PartRange r = p.range;
    Plan* pp = &p;
    if (!clampPad) {
      if (p.missLeft > 0) {
        const std::size_t count = p.missLeft;
        p.padWrites.push_back(g.add(r.device, /*cls=*/0, nullptr, [pp, neutral, count] {
          std::fill(pp->padded.begin(), pp->padded.begin() + static_cast<std::ptrdiff_t>(count),
                    neutral);
        }));
      }
      if (p.missRight > 0) {
        const std::size_t dstOff = r.size + 2 * radius - p.missRight;
        const std::size_t count = p.missRight;
        p.padWrites.push_back(g.add(r.device, /*cls=*/0, nullptr, [pp, neutral, dstOff, count] {
          std::fill(pp->padded.begin() + static_cast<std::ptrdiff_t>(dstOff),
                    pp->padded.begin() + static_cast<std::ptrdiff_t>(dstOff + count), neutral);
        }));
      }
    } else {
      auto writerOf = [&](std::size_t global) -> MGraph::NodeId {
        if (global >= r.offset && global < r.offset + r.size) return pp->interior;
        for (std::size_t si = 0; si < pp->segs.size(); ++si) {
          if (global >= pp->segs[si].begin && global < pp->segs[si].end) {
            return pp->segUploads[si];
          }
        }
        throw UsageError("map-overlap: clamp source element not staged");
      };
      auto clampCopies = [&](std::size_t global, std::size_t firstDst, std::size_t count) {
        const std::size_t srcOff = global + radius - r.offset;
        const MGraph::NodeId dep = writerOf(global);
        for (std::size_t k = 0; k < count; ++k) {
          const std::size_t dstOff = firstDst + k;
          pp->padWrites.push_back(g.add(
              r.device, /*cls=*/0, nullptr,
              [pp, srcOff, dstOff] { pp->padded[dstOff] = pp->padded[srcOff]; }, {dep}));
        }
      };
      if (p.missLeft > 0) clampCopies(0, 0, p.missLeft);
      if (p.missRight > 0) clampCopies(n - 1, r.size + 2 * radius - p.missRight, p.missRight);
    }
  }
  // Stencil kernels, one per part.
  bool launched = false;
  for (Plan& p : plans) {
    const PartRange r = p.range;
    Plan* pp = &p;
    MVec* outp = &output;
    g.add(
        r.device, /*cls=*/1, nullptr,
        [this, fn, pp, outp, r, radius] {
          MPart* po = outp->partOn(r.device);
          for (std::size_t j = 0; j < r.size; ++j) {
            po->data[j] = stencilEval(fn, pp->padded, j + radius, 0);
          }
        },
        p.padWrites);
    launched = true;
  }
  g.run();
  if (launched) markDevicesModified(output);
}

void Model::mapOverlap(const std::string& fn, int radius, bool clampPad, std::uint32_t neutral,
                       MVec& input, MVec& output) {
  SKELCL_CHECK(output.n == input.n, "map-overlap output size mismatch");
  SKELCL_CHECK(&output != &input,
               "map-overlap cannot run in place: the stencil reads neighbours of every element");
  withRecovery({&input}, &output, [&] {
    mapOverlapOnce(fn, static_cast<std::size_t>(radius), clampPad, neutral, input, output);
  });
}

// Matrix mirrors of the VectorData helpers: a matrix MVec counts rows in `n`
// and carries `cols` words per row in host/part data, exactly like the real
// MatrixData's row vector (one element = one row of cols*4 bytes).

void Model::matrixMaterializeParts(MVec& v, std::size_t cols, bool upload) {
  v.parts.clear();
  for (const PartRange& r : plannedPartition(v)) {
    MPart part;
    part.device = r.device;
    part.offset = r.offset;
    part.size = r.size;
    if (r.size > 0) {
      allocCheck(r.device);
      part.hasBuf = true;
      part.data.assign(r.size * cols, 0);
    }
    v.parts.push_back(std::move(part));
  }
  if (upload) {
    MGraph g(*this);
    for (MPart& part : v.parts) {
      if (part.size == 0) continue;
      MPart* p = &part;
      g.add(p->device, /*cls=*/0, nullptr, [&v, p, cols] {
        std::copy(v.host.begin() + static_cast<std::ptrdiff_t>(p->offset * cols),
                  v.host.begin() + static_cast<std::ptrdiff_t>((p->offset + p->size) * cols),
                  p->data.begin());
      });
    }
    g.run();
  }
  v.current = v.requested;
  v.devicesValid = true;
}

void Model::matrixEnsureOnDevices(MVec& v, std::size_t cols) {
  SKELCL_CHECK(v.requested.isSet(), "vector has no distribution");
  if (partsMatchRequested(v)) {
    v.current = v.requested;
    return;
  }
  matrixEnsureHostValid(v, cols);
  matrixMaterializeParts(v, cols, /*upload=*/true);
}

void Model::matrixEnsureOnDevicesNoUpload(MVec& v, std::size_t cols) {
  SKELCL_CHECK(v.requested.isSet(), "vector has no distribution");
  if (partsMatchRequested(v)) {
    v.current = v.requested;
    return;
  }
  matrixMaterializeParts(v, cols, /*upload=*/false);
  v.hostValid = false;
}

void Model::matrixEnsureHostValid(MVec& v, std::size_t cols) {
  if (v.hostValid) return;
  SKELCL_CHECK(v.devicesValid, "vector holds no valid data");
  if (v.requested.isSet() && partsMatchRequested(v)) v.current = v.requested;
  // The transient stencil matrix is always block-distributed: plain part
  // downloads, no copy-combine path.
  MGraph g(*this);
  for (MPart& part : v.parts) {
    if (part.size == 0) continue;
    MPart* p = &part;
    g.add(p->device, /*cls=*/0, nullptr, [&v, p, cols] {
      std::copy(p->data.begin(), p->data.end(),
                v.host.begin() + static_cast<std::ptrdiff_t>(p->offset * cols));
    });
  }
  g.run();
  v.hostValid = true;
}

void Model::matStencilOnce(const std::string& fn, std::size_t radius, bool clampPad,
                           std::uint32_t neutral, std::size_t rows, std::size_t cols,
                           MVec& input, MVec& output) {
  if (rows == 0) return;  // empty in, empty out

  if (input.requested.kind() != Distribution::Kind::Block) {
    setDistribution(input, Distribution::block());
  }
  matrixEnsureOnDevices(input, cols);
  setDistribution(output, input.requested);
  matrixEnsureOnDevicesNoUpload(output, cols);

  const std::size_t stride = cols + 2 * radius;
  const std::ptrdiff_t R = static_cast<std::ptrdiff_t>(radius);
  const std::vector<PartRange> ranges = plannedPartition(input);

  struct Plan {
    PartRange range;                                  ///< row range
    std::vector<MSeg> segs;                           ///< halo *row* segments
    std::vector<std::vector<std::uint32_t>> staging;  ///< one per segment
    std::vector<std::uint32_t> padded;                ///< (rows + 2r) x stride words
    std::vector<MGraph::NodeId> padWrites;
    MGraph::NodeId packNode = 0;
  };
  std::vector<Plan> plans;
  for (std::size_t pi = 0; pi < ranges.size(); ++pi) {
    const PartRange& r = ranges[pi];
    Plan p;
    p.range = r;
    const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(r.offset);
    allocCheck(r.device);
    p.padded.assign((r.size + 2 * radius) * stride, 0);
    p.segs =
        haloSegs(ranges, pi, off - R, off + static_cast<std::ptrdiff_t>(r.size) + R, rows);
    p.staging.resize(p.segs.size());
    for (std::size_t si = 0; si < p.segs.size(); ++si) {
      p.staging[si].assign((p.segs[si].end - p.segs[si].begin) * cols, 0);
    }
    plans.push_back(std::move(p));
  }

  MGraph g(*this);
  MVec* in = &input;
  // Halo rows out of their owners.
  std::vector<std::vector<MGraph::NodeId>> downloads(plans.size());
  for (std::size_t pi = 0; pi < plans.size(); ++pi) {
    Plan& p = plans[pi];
    for (std::size_t si = 0; si < p.segs.size(); ++si) {
      const MSeg s = p.segs[si];
      const PartRange owner = ranges[s.ownerIndex];
      std::vector<std::uint32_t>* stage = &p.staging[si];
      downloads[pi].push_back(g.add(owner.device, /*cls=*/0, nullptr, [in, owner, s, stage, cols] {
        MPart* po = in->partOn(owner.device);
        const auto srcOff = static_cast<std::ptrdiff_t>((s.begin - owner.offset) * cols);
        std::copy(po->data.begin() + srcOff,
                  po->data.begin() + srcOff +
                      static_cast<std::ptrdiff_t>((s.end - s.begin) * cols),
                  stage->begin());
      }));
    }
  }
  // Halo rows into the padded buffers: one upload per row.
  for (std::size_t pi = 0; pi < plans.size(); ++pi) {
    Plan& p = plans[pi];
    const PartRange r = p.range;
    Plan* pp = &p;
    for (std::size_t si = 0; si < p.segs.size(); ++si) {
      const MSeg s = p.segs[si];
      const MGraph::NodeId download = downloads[pi][si];
      for (std::size_t row = s.begin; row < s.end; ++row) {
        const std::size_t srcOff = (row - s.begin) * cols;
        const std::size_t dstOff = (row + radius - r.offset) * stride + radius;
        p.padWrites.push_back(g.add(
            r.device, /*cls=*/0, nullptr,
            [pp, si, srcOff, dstOff, cols] {
              std::copy(pp->staging[si].begin() + static_cast<std::ptrdiff_t>(srcOff),
                        pp->staging[si].begin() + static_cast<std::ptrdiff_t>(srcOff + cols),
                        pp->padded.begin() + static_cast<std::ptrdiff_t>(dstOff));
            },
            {download}));
      }
    }
  }
  // Pack kernels: interior rows + boundary policy (mirror of skelcl_mo_pack;
  // in-matrix halo rows were uploaded above and are left untouched).
  for (Plan& p : plans) {
    const PartRange r = p.range;
    Plan* pp = &p;
    const std::size_t total = (r.size + 2 * radius) * stride;
    p.packNode = g.add(
        r.device, /*cls=*/1, nullptr,
        [in, pp, r, rows, cols, stride, radius, neutral, clampPad, total] {
          MPart* ip = in->partOn(r.device);
          const auto row0 = static_cast<std::ptrdiff_t>(r.offset);
          const auto prows = static_cast<std::ptrdiff_t>(r.size);
          for (std::size_t i = 0; i < total; ++i) {
            const auto prow = static_cast<std::ptrdiff_t>(i / stride);
            const std::ptrdiff_t col =
                static_cast<std::ptrdiff_t>(i % stride) - static_cast<std::ptrdiff_t>(radius);
            const std::ptrdiff_t arow = row0 - static_cast<std::ptrdiff_t>(radius) + prow;
            if (col < 0 || col >= static_cast<std::ptrdiff_t>(cols) || arow < 0 ||
                arow >= static_cast<std::ptrdiff_t>(rows)) {
              if (!clampPad) {
                pp->padded[i] = neutral;
              } else {
                const std::ptrdiff_t crow =
                    std::clamp<std::ptrdiff_t>(arow, 0, static_cast<std::ptrdiff_t>(rows) - 1);
                const std::ptrdiff_t ccol =
                    std::clamp<std::ptrdiff_t>(col, 0, static_cast<std::ptrdiff_t>(cols) - 1);
                if (crow >= row0 && crow < row0 + prows) {
                  pp->padded[i] = ip->data[static_cast<std::size_t>(
                      (crow - row0) * static_cast<std::ptrdiff_t>(cols) + ccol)];
                } else {
                  pp->padded[i] = pp->padded[static_cast<std::size_t>(
                      (crow - row0 + static_cast<std::ptrdiff_t>(radius)) *
                          static_cast<std::ptrdiff_t>(stride) +
                      static_cast<std::ptrdiff_t>(radius) + ccol)];
                }
              }
            } else if (arow >= row0 && arow < row0 + prows) {
              pp->padded[i] = ip->data[static_cast<std::size_t>(
                  (arow - row0) * static_cast<std::ptrdiff_t>(cols) + col)];
            }
          }
        },
        p.padWrites);
  }
  // Stencil kernels.
  bool launched = false;
  for (Plan& p : plans) {
    const PartRange r = p.range;
    Plan* pp = &p;
    MVec* outp = &output;
    const std::size_t nOut = r.size * cols;
    g.add(
        r.device, /*cls=*/1, nullptr,
        [this, fn, pp, outp, r, cols, stride, radius, nOut] {
          MPart* po = outp->partOn(r.device);
          for (std::size_t i = 0; i < nOut; ++i) {
            const std::size_t row = i / cols;
            const std::size_t col = i % cols;
            po->data[i] =
                stencilEval(fn, pp->padded, (row + radius) * stride + col + radius, stride);
          }
        },
        {p.packNode});
    launched = true;
  }
  g.run();
  if (launched) markDevicesModified(output);
}

void Model::matStencil(const std::string& fn, int radius, bool clampPad, std::uint32_t neutral,
                       std::size_t cols, MVec& src, MVec& dst) {
  // The driver host-reads the source slot to build the matrix.
  ensureHostValid(src);
  const std::size_t rows = src.n / cols;
  MVec min(rows), mout(rows);
  min.host.assign(src.host.begin(),
                  src.host.begin() + static_cast<std::ptrdiff_t>(rows * cols));
  mout.host.assign(rows * cols, 0);
  withRecovery({&min}, &mout, [&] {
    matStencilOnce(fn, static_cast<std::size_t>(radius), clampPad, neutral, rows, cols, min,
                   mout);
  });
  // toStdVector(): the matrix host-read downloads the row parts.
  matrixEnsureHostValid(mout, cols);
  // The driver writes the flattened result into the destination's host copy.
  ensureHostValid(dst);
  markHostModified(dst);
  std::copy(mout.host.begin(), mout.host.end(), dst.host.begin());
}

std::uint32_t Model::reduceOnce(const std::string& fn, MVec& input,
                                std::vector<MExtra>& extras) {
  SKELCL_CHECK(input.n > 0, "reduce of an empty vector");

  defaultDistribution(input, Distribution::block());
  ensureOnDevices(input);
  prepareExtras(extras);

  std::vector<PartRange> ranges = plannedPartition(input);
  if (input.requested.kind() == Distribution::Kind::Copy) ranges.resize(1);

  std::int64_t ci = 0;
  double cf = 0.0;
  for (const MExtra& e : extras) {
    SKELCL_CHECK(e.kind == MExtra::Kind::Scalar,
                 "reduce supports only scalar additional arguments");
    ci = e.ci;
    cf = e.cf;
  }

  struct Pending {
    int device = 0;
    std::size_t chunk = 0;
    std::size_t numPartials = 0;
    PartRange range;
    std::vector<std::uint32_t> partials;
    MGraph::NodeId kernelNode = 0;
  };
  std::vector<Pending> pending;
  for (const PartRange& r : ranges) {
    if (r.size == 0) continue;
    const auto cores = static_cast<std::size_t>(cores_[static_cast<std::size_t>(r.device)]);
    Pending p;
    p.device = r.device;
    p.chunk = (r.size + 4 * cores - 1) / (4 * cores);
    p.numPartials = (r.size + p.chunk - 1) / p.chunk;
    p.range = r;
    allocCheck(r.device);
    p.partials.assign(p.numPartials, 0);
    pending.push_back(std::move(p));
  }
  SKELCL_CHECK(!pending.empty(), "reduce produced no device work");

  MGraph g(*this);
  for (Pending& p : pending) {
    Pending* pp = &p;
    const int dev = p.device;
    p.kernelNode = g.add(
        dev, /*cls=*/1, [this, &extras, dev] { bindExtrasCheck(extras, dev); },
        [this, fn, &input, pp, ci, cf, dev] {
          MPart* in = input.partOn(dev);
          for (std::size_t w = 0; w < pp->numPartials; ++w) {
            const std::size_t begin = w * pp->chunk;
            const std::size_t end = std::min(begin + pp->chunk, pp->range.size);
            std::uint32_t acc = in->data[begin];
            for (std::size_t i = begin + 1; i < end; ++i) {
              acc = eval(fn, acc, in->data[i], ci, cf);
            }
            pp->partials[w] = acc;
          }
        });
  }

  // Mirror of the step-2 gather, including the cluster tree shape: partials
  // are copied to a per-node leader (commands on the leader), combined there
  // with a two-pass kernel (wide chunked pass, then a single-work-item fold
  // of the pass-1 partials), and one value per node reaches the host fold.
  // Command devices, classes, order and dependencies all match runReduceOnce.
  struct NodeGroup {
    int node = 0;
    std::size_t firstPending = 0;
    std::size_t memberCount = 0;
    std::size_t totalPartials = 0;
    std::size_t combineChunk = 0;
    std::size_t combineWidth = 0;
    int leader = 0;
    std::vector<std::uint32_t> nodeBuf;
    std::vector<std::uint32_t> nodeScratch;
    std::uint32_t nodeResult = 0;
  };
  std::vector<NodeGroup> groups;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const int node = node_of_[static_cast<std::size_t>(pending[i].device)];
    if (groups.empty() || groups.back().node != node) {
      NodeGroup ng;
      ng.node = node;
      ng.firstPending = i;
      ng.leader = pending[i].device;
      groups.push_back(std::move(ng));
    }
    groups.back().memberCount++;
    groups.back().totalPartials += pending[i].numPartials;
  }
  const bool tree = multiNode() && groups.size() > 1;

  std::vector<std::uint32_t> gathered;
  std::vector<MGraph::NodeId> gatherNodes;
  if (tree) {
    gathered.assign(groups.size(), 0);
    for (NodeGroup& ng : groups) {
      const auto cores = static_cast<std::size_t>(cores_[static_cast<std::size_t>(ng.leader)]);
      ng.combineWidth = std::min(cores, ng.totalPartials);
      ng.combineChunk = (ng.totalPartials + ng.combineWidth - 1) / ng.combineWidth;
      ng.combineWidth = (ng.totalPartials + ng.combineChunk - 1) / ng.combineChunk;
      allocCheck(ng.leader);  // nodeBuf
      allocCheck(ng.leader);  // nodeScratch
      allocCheck(ng.leader);  // nodeResult
      ng.nodeBuf.assign(ng.totalPartials, 0);
      ng.nodeScratch.assign(ng.combineWidth, 0);
    }
    std::size_t groupIdx = 0;
    for (NodeGroup& ng : groups) {
      NodeGroup* gp = &ng;
      std::vector<MGraph::NodeId> copies;
      std::size_t dstOff = 0;
      for (std::size_t m = ng.firstPending; m < ng.firstPending + ng.memberCount; ++m) {
        Pending* pp = &pending[m];
        const std::size_t at = dstOff;
        copies.push_back(g.add(ng.leader, /*cls=*/0, nullptr, [pp, gp, at] {
          std::copy(pp->partials.begin(), pp->partials.end(),
                    gp->nodeBuf.begin() + static_cast<std::ptrdiff_t>(at));
        }, {pp->kernelNode}));
        dstOff += pp->numPartials;
      }
      const int leader = ng.leader;
      const MGraph::NodeId combine1 = g.add(
          leader, /*cls=*/1, [this, &extras, leader] { bindExtrasCheck(extras, leader); },
          [this, fn, gp, ci, cf] {
            for (std::size_t w = 0; w < gp->combineWidth; ++w) {
              const std::size_t begin = w * gp->combineChunk;
              const std::size_t end =
                  std::min(begin + gp->combineChunk, gp->totalPartials);
              std::uint32_t nacc = gp->nodeBuf[begin];
              for (std::size_t i = begin + 1; i < end; ++i) {
                nacc = eval(fn, nacc, gp->nodeBuf[i], ci, cf);
              }
              gp->nodeScratch[w] = nacc;
            }
          },
          copies);
      const MGraph::NodeId combine = g.add(
          leader, /*cls=*/1, [this, &extras, leader] { bindExtrasCheck(extras, leader); },
          [this, fn, gp, ci, cf] {
            std::uint32_t nacc = gp->nodeScratch[0];
            for (std::size_t i = 1; i < gp->nodeScratch.size(); ++i) {
              nacc = eval(fn, nacc, gp->nodeScratch[i], ci, cf);
            }
            gp->nodeResult = nacc;
          },
          {combine1});
      const std::size_t at = groupIdx++;
      gatherNodes.push_back(g.add(leader, /*cls=*/0, nullptr,
                                  [gp, &gathered, at] { gathered[at] = gp->nodeResult; },
                                  {combine}));
    }
  } else {
    std::size_t total = 0;
    for (const Pending& p : pending) total += p.numPartials;
    gathered.assign(total, 0);
    std::size_t off = 0;
    for (Pending& p : pending) {
      Pending* pp = &p;
      const std::size_t at = off;
      gatherNodes.push_back(g.add(p.device, /*cls=*/0, nullptr, [pp, &gathered, at] {
        std::copy(pp->partials.begin(), pp->partials.end(),
                  gathered.begin() + static_cast<std::ptrdiff_t>(at));
      }, {p.kernelNode}));
      off += p.numPartials;
    }
  }

  std::uint32_t acc = 0;
  g.addHost(
      [this, fn, &gathered, &acc, ci, cf] {
        acc = gathered[0];
        for (std::size_t i = 1; i < gathered.size(); ++i) {
          acc = eval(fn, acc, gathered[i], ci, cf);
        }
      },
      gatherNodes);
  g.run();
  return acc;
}

std::uint32_t Model::reduce(const std::string& fn, MVec& input, std::vector<MExtra> extras) {
  std::vector<MVec*> inputs{&input, nullptr};
  for (const MExtra& e : extras) {
    if (e.kind == MExtra::Kind::VectorRef) inputs.push_back(e.vec);
  }
  return withRecovery(std::move(inputs), nullptr,
                      [&] { return reduceOnce(fn, input, extras); });
}

void Model::scanOnce(const std::string& fn, MVec& input, MVec& output) {
  SKELCL_CHECK(output.n == input.n, "scan output size mismatch");
  if (input.n == 0) return;

  defaultDistribution(input, Distribution::block());
  const Distribution dist = input.requested;  // raw: weights apply via the plan
  ensureOnDevices(input);
  const bool inPlace = &output == &input;
  setDistribution(output, dist);
  if (!inPlace) ensureOnDevicesNoUpload(output);

  const std::vector<PartRange> ranges = plannedPartition(input);
  const bool crossDevice = dist.kind() == Distribution::Kind::Block;

  struct DeviceScan {
    PartRange range;
    std::size_t chunk = 0;
    std::size_t numChunks = 0;
    std::vector<std::uint32_t> devSums, hostSums, hostOffsets, devOffsets;
    bool skipFirst = true;
    MGraph::NodeId step1 = 0;
  };
  std::vector<DeviceScan> devs;
  for (const PartRange& r : ranges) {
    if (r.size == 0) continue;
    DeviceScan d;
    d.range = r;
    const auto cores = static_cast<std::size_t>(cores_[static_cast<std::size_t>(r.device)]);
    d.chunk = (r.size + 4 * cores - 1) / (4 * cores);
    d.numChunks = (r.size + d.chunk - 1) / d.chunk;
    allocCheck(r.device);  // sums buffer
    d.devSums.assign(d.numChunks, 0);
    allocCheck(r.device);  // offsets buffer
    d.devOffsets.assign(d.numChunks, 0);
    d.hostSums.assign(d.numChunks, 0);
    d.hostOffsets.assign(d.numChunks, 0);
    devs.push_back(std::move(d));
  }

  MGraph g(*this);

  for (DeviceScan& d : devs) {
    DeviceScan* dd = &d;
    const int dev = d.range.device;
    d.step1 = g.add(dev, /*cls=*/1, nullptr, [this, fn, &input, &output, inPlace, dd, dev] {
      MPart* in = input.partOn(dev);
      MPart* out = inPlace ? in : output.partOn(dev);
      for (std::size_t w = 0; w < dd->numChunks; ++w) {
        const std::size_t begin = w * dd->chunk;
        const std::size_t end = std::min(begin + dd->chunk, dd->range.size);
        std::uint32_t acc = in->data[begin];
        out->data[begin] = acc;
        for (std::size_t i = begin + 1; i < end; ++i) {
          acc = eval(fn, acc, in->data[i], 0, 0.0);
          out->data[i] = acc;
        }
        dd->devSums[w] = acc;
      }
    });
  }

  // Mirror of the step-2 sum downloads, including the cluster tree shape:
  // member sums are copied to a per-node leader and cross to the host as one
  // download per node; the offsets later cross back once per node and fan
  // out by per-member copies.  Command devices/classes/order match
  // runScanOnce.
  struct ScanNode {
    int node = 0;
    std::size_t firstDev = 0;
    std::size_t devCount = 0;
    int leader = 0;
    std::vector<std::uint32_t> nodeSums, nodeOffsets;
  };
  std::vector<ScanNode> scanNodes;
  for (std::size_t i = 0; i < devs.size(); ++i) {
    const int node = node_of_[static_cast<std::size_t>(devs[i].range.device)];
    if (scanNodes.empty() || scanNodes.back().node != node) {
      ScanNode sn;
      sn.node = node;
      sn.firstDev = i;
      sn.leader = devs[i].range.device;
      scanNodes.push_back(std::move(sn));
    }
    scanNodes.back().devCount++;
  }
  const bool tree = multiNode() && scanNodes.size() > 1;
  if (tree) {
    for (ScanNode& sn : scanNodes) {
      std::size_t totalChunks = 0;
      for (std::size_t m = sn.firstDev; m < sn.firstDev + sn.devCount; ++m) {
        totalChunks += devs[m].numChunks;
      }
      allocCheck(sn.leader);  // nodeSums
      allocCheck(sn.leader);  // nodeOffsets
      sn.nodeSums.assign(totalChunks, 0);
      sn.nodeOffsets.assign(totalChunks, 0);
    }
  }

  std::vector<MGraph::NodeId> sumReads;
  if (tree) {
    for (ScanNode& sn : scanNodes) {
      ScanNode* sp = &sn;
      std::vector<MGraph::NodeId> copies;
      std::size_t dstOff = 0;
      for (std::size_t m = sn.firstDev; m < sn.firstDev + sn.devCount; ++m) {
        DeviceScan* dd = &devs[m];
        const std::size_t at = dstOff;
        copies.push_back(g.add(sn.leader, /*cls=*/0, nullptr, [dd, sp, at] {
          std::copy(dd->devSums.begin(), dd->devSums.end(),
                    sp->nodeSums.begin() + static_cast<std::ptrdiff_t>(at));
        }, {dd->step1}));
        dstOff += dd->numChunks;
      }
      sumReads.push_back(g.add(sn.leader, /*cls=*/0, nullptr,
                               [sp, &devs] {
                                 std::size_t off = 0;
                                 for (std::size_t m = sp->firstDev;
                                      m < sp->firstDev + sp->devCount; ++m) {
                                   DeviceScan& d = devs[m];
                                   std::copy(sp->nodeSums.begin() +
                                                 static_cast<std::ptrdiff_t>(off),
                                             sp->nodeSums.begin() +
                                                 static_cast<std::ptrdiff_t>(off +
                                                                             d.numChunks),
                                             d.hostSums.begin());
                                   off += d.numChunks;
                                 }
                               },
                               copies));
    }
  } else {
    for (DeviceScan& d : devs) {
      DeviceScan* dd = &d;
      sumReads.push_back(g.add(d.range.device, /*cls=*/0, nullptr,
                               [dd] { dd->hostSums = dd->devSums; }, {d.step1}));
    }
  }

  const MGraph::NodeId offsetsNode = g.addHost(
      [this, fn, &devs, crossDevice] {
        bool haveDeviceOffset = false;
        std::uint32_t deviceOffset = 0;
        for (DeviceScan& d : devs) {
          bool haveChunkOffset = false;
          std::uint32_t chunkOffset = 0;
          for (std::size_t w = 0; w < d.numChunks; ++w) {
            std::uint32_t combined = 0;
            bool haveCombined = false;
            if (crossDevice && haveDeviceOffset && haveChunkOffset) {
              combined = eval(fn, deviceOffset, chunkOffset, 0, 0.0);
              haveCombined = true;
            } else if (crossDevice && haveDeviceOffset) {
              combined = deviceOffset;
              haveCombined = true;
            } else if (haveChunkOffset) {
              combined = chunkOffset;
              haveCombined = true;
            }
            d.hostOffsets[w] = haveCombined ? combined : 0;
            const std::uint32_t sum = d.hostSums[w];
            chunkOffset = haveChunkOffset ? eval(fn, chunkOffset, sum, 0, 0.0) : sum;
            haveChunkOffset = true;
          }
          d.skipFirst = !(crossDevice && haveDeviceOffset);
          if (crossDevice) {
            deviceOffset = haveDeviceOffset ? eval(fn, deviceOffset, chunkOffset, 0, 0.0)
                                            : chunkOffset;
            haveDeviceOffset = true;
          }
        }
      },
      sumReads);

  auto addStep2 = [&](DeviceScan* dd, int dev, MGraph::NodeId offsetsReady) {
    g.add(dev, /*cls=*/1, nullptr,
          [this, fn, &input, &output, inPlace, dd, dev] {
            MPart* out = inPlace ? input.partOn(dev) : output.partOn(dev);
            for (std::size_t w = 0; w < dd->numChunks; ++w) {
              if (dd->skipFirst && w == 0) continue;
              const std::size_t begin = w * dd->chunk;
              const std::size_t end = std::min(begin + dd->chunk, dd->range.size);
              const std::uint32_t offv = dd->devOffsets[w];
              for (std::size_t i = begin; i < end; ++i) {
                out->data[i] = eval(fn, offv, out->data[i], 0, 0.0);
              }
            }
          },
          {offsetsReady, dd->step1});
  };
  if (tree) {
    for (ScanNode& sn : scanNodes) {
      ScanNode* sp = &sn;
      const MGraph::NodeId up = g.add(sn.leader, /*cls=*/0, nullptr,
                                      [sp, &devs] {
                                        std::size_t off = 0;
                                        for (std::size_t m = sp->firstDev;
                                             m < sp->firstDev + sp->devCount; ++m) {
                                          DeviceScan& d = devs[m];
                                          std::copy(d.hostOffsets.begin(),
                                                    d.hostOffsets.end(),
                                                    sp->nodeOffsets.begin() +
                                                        static_cast<std::ptrdiff_t>(off));
                                          off += d.numChunks;
                                        }
                                      },
                                      {offsetsNode});
      std::size_t srcOff = 0;
      for (std::size_t m = sn.firstDev; m < sn.firstDev + sn.devCount; ++m) {
        DeviceScan* dd = &devs[m];
        const int dev = dd->range.device;
        const std::size_t at = srcOff;
        const MGraph::NodeId scatter = g.add(dev, /*cls=*/0, nullptr, [dd, sp, at] {
          std::copy(sp->nodeOffsets.begin() + static_cast<std::ptrdiff_t>(at),
                    sp->nodeOffsets.begin() +
                        static_cast<std::ptrdiff_t>(at + dd->numChunks),
                    dd->devOffsets.begin());
        }, {up});
        srcOff += dd->numChunks;
        addStep2(dd, dev, scatter);
      }
    }
  } else {
    for (DeviceScan& d : devs) {
      DeviceScan* dd = &d;
      const int dev = d.range.device;
      const MGraph::NodeId up = g.add(dev, /*cls=*/0, nullptr,
                                      [dd] { dd->devOffsets = dd->hostOffsets; },
                                      {offsetsNode});
      addStep2(dd, dev, up);
    }
  }

  g.run();
  markDevicesModified(output);
}

void Model::scan(const std::string& fn, MVec& input, MVec& output) {
  const bool inPlace = &output == &input;
  withRecovery({&input}, inPlace ? nullptr : &output,
               [&] { scanOnce(fn, input, output); });
}

// ---------------------------------------------------------------------------
// Fused chains
// ---------------------------------------------------------------------------

bool Model::chainEligible(MVec& input, const std::vector<MStage>& stages) const {
  const Distribution dist =
      input.requested.isSet() ? input.requested : Distribution::block();
  for (const MStage& st : stages) {
    if (st.zipVec != nullptr) {
      const Distribution& zd = st.zipVec->requested;
      if (zd.isSet() && !(zd == dist)) return false;
    }
  }
  return true;
}

Distribution Model::materializeChainInputs(MVec& input, std::vector<MStage>& stages) {
  defaultDistribution(input, Distribution::block());
  const Distribution dist = input.requested;
  ensureOnDevices(input);
  for (MStage& st : stages) {
    if (st.zipVec != nullptr) {
      SKELCL_CHECK(st.zipVec->n == input.n, "zip inputs must have the same size");
      if (st.zipVec != &input) {
        setDistribution(*st.zipVec, dist);
        ensureOnDevices(*st.zipVec);
      }
    }
    // stage extras are scalar-only in the skelcheck grammar: prepareExtras
    // would be a no-op here
  }
  return dist;
}

bool Model::chainWritesInput(const MVec& output, const MVec& input,
                             const std::vector<MStage>& stages) const {
  if (&output == &input) return true;
  for (const MStage& st : stages) {
    if (st.zipVec == &output) return true;
  }
  return false;
}

std::vector<MVec*> Model::chainRecoveryInputs(MVec& input,
                                              const std::vector<MStage>& stages) const {
  std::vector<MVec*> inputs{&input};
  for (const MStage& st : stages) {
    if (st.zipVec != nullptr) inputs.push_back(st.zipVec);
  }
  return inputs;
}

std::uint32_t Model::chainEval(const std::vector<MStage>& stages, std::uint32_t v,
                               int device, std::size_t j) {
  for (const MStage& st : stages) {
    const std::uint32_t b = st.zipVec != nullptr ? st.zipVec->partOn(device)->data[j] : 0;
    v = eval(st.fn, v, b, st.ci, st.cf);
  }
  return v;
}

void Model::fusedChainOnce(MVec& input, std::vector<MStage>& stages, MVec& output) {
  const Distribution dist = materializeChainInputs(input, stages);
  const bool inPlace = chainWritesInput(output, input, stages);
  setDistribution(output, dist);
  if (!inPlace) ensureOnDevicesNoUpload(output);

  const auto ranges = partitionFor(dist, input.n);
  MGraph g(*this);
  bool launched = false;
  for (const PartRange& r : ranges) {
    if (r.size == 0) continue;
    launched = true;
    const int dev = r.device;
    g.add(dev, /*cls=*/1, nullptr, [this, &input, &stages, &output, dev, r] {
      MPart* in = input.partOn(dev);
      MPart* out = output.partOn(dev);
      for (std::size_t j = 0; j < r.size; ++j) {
        out->data[j] = chainEval(stages, in->data[j], dev, j);
      }
    });
  }
  g.run();
  if (launched) markDevicesModified(output);
}

void Model::chainUnfused(MVec& input, std::vector<MStage>& stages, MVec& output) {
  MVec* cur = &input;
  std::vector<std::unique_ptr<MVec>> temps;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    MStage& st = stages[s];
    const bool last = s + 1 == stages.size();
    MVec* dst = &output;
    if (!last) {
      temps.push_back(std::make_unique<MVec>(input.n));
      dst = temps.back().get();
    }
    std::vector<MExtra> extras;
    if (st.hasScalar) {
      MExtra e;
      e.kind = MExtra::Kind::Scalar;
      e.ci = st.ci;
      e.cf = st.cf;
      extras.push_back(e);
    }
    runElementwise(st.fn, cur, st.zipVec, *dst, extras);
    cur = dst;
  }
}

bool Model::pipe(MVec& input, std::vector<MStage>& stages, MVec& output,
                 bool forceUnfused) {
  SKELCL_CHECK(!stages.empty(), "skeleton pipeline has no stages");
  SKELCL_CHECK(output.n == input.n, "pipeline output size mismatch");
  if (forceUnfused || !chainEligible(input, stages)) {
    chainUnfused(input, stages, output);
    return false;
  }
  const bool inPlace = chainWritesInput(output, input, stages);
  withRecovery(chainRecoveryInputs(input, stages), inPlace ? nullptr : &output,
               [&] { fusedChainOnce(input, stages, output); });
  return true;
}

std::uint32_t Model::fusedReduceOnce(MVec& input, std::vector<MStage>& stages,
                                     const std::string& reduceFn,
                                     std::vector<MExtra>& reduceExtras) {
  SKELCL_CHECK(input.n > 0, "reduce of an empty vector");

  materializeChainInputs(input, stages);
  prepareExtras(reduceExtras);

  std::vector<PartRange> ranges = plannedPartition(input);
  if (input.requested.kind() == Distribution::Kind::Copy) ranges.resize(1);

  std::int64_t rci = 0;
  double rcf = 0.0;
  for (const MExtra& e : reduceExtras) {
    SKELCL_CHECK(e.kind == MExtra::Kind::Scalar,
                 "reduce supports only scalar additional arguments");
    rci = e.ci;
    rcf = e.cf;
  }

  struct Pending {
    int device = 0;
    std::size_t chunk = 0;
    std::size_t numPartials = 0;
    PartRange range;
    std::vector<std::uint32_t> partials;
    MGraph::NodeId kernelNode = 0;
  };
  std::vector<Pending> pending;
  for (const PartRange& r : ranges) {
    if (r.size == 0) continue;
    const auto cores = static_cast<std::size_t>(cores_[static_cast<std::size_t>(r.device)]);
    Pending p;
    p.device = r.device;
    p.chunk = (r.size + 4 * cores - 1) / (4 * cores);
    p.numPartials = (r.size + p.chunk - 1) / p.chunk;
    p.range = r;
    allocCheck(r.device);
    p.partials.assign(p.numPartials, 0);
    pending.push_back(std::move(p));
  }
  SKELCL_CHECK(!pending.empty(), "reduce produced no device work");

  MGraph g(*this);
  for (Pending& p : pending) {
    Pending* pp = &p;
    const int dev = p.device;
    p.kernelNode = g.add(
        dev, /*cls=*/1, [this, &reduceExtras, dev] { bindExtrasCheck(reduceExtras, dev); },
        [this, reduceFn, &input, &stages, pp, rci, rcf, dev] {
          MPart* in = input.partOn(dev);
          for (std::size_t w = 0; w < pp->numPartials; ++w) {
            const std::size_t begin = w * pp->chunk;
            const std::size_t end = std::min(begin + pp->chunk, pp->range.size);
            std::uint32_t acc = chainEval(stages, in->data[begin], dev, begin);
            for (std::size_t i = begin + 1; i < end; ++i) {
              acc = eval(reduceFn, acc, chainEval(stages, in->data[i], dev, i), rci, rcf);
            }
            pp->partials[w] = acc;
          }
        });
  }

  std::vector<std::uint32_t> gathered;
  std::size_t total = 0;
  for (const Pending& p : pending) total += p.numPartials;
  gathered.assign(total, 0);
  std::vector<MGraph::NodeId> gatherNodes;
  std::size_t off = 0;
  for (Pending& p : pending) {
    Pending* pp = &p;
    const std::size_t at = off;
    gatherNodes.push_back(g.add(p.device, /*cls=*/0, nullptr, [pp, &gathered, at] {
      std::copy(pp->partials.begin(), pp->partials.end(),
                gathered.begin() + static_cast<std::ptrdiff_t>(at));
    }, {p.kernelNode}));
    off += p.numPartials;
  }

  std::uint32_t acc = 0;
  g.addHost(
      [this, reduceFn, &gathered, &acc, rci, rcf] {
        acc = gathered[0];
        for (std::size_t i = 1; i < gathered.size(); ++i) {
          acc = eval(reduceFn, acc, gathered[i], rci, rcf);
        }
      },
      gatherNodes);
  g.run();
  return acc;
}

std::uint32_t Model::pipeReduce(MVec& input, std::vector<MStage>& stages,
                                const std::string& reduceFn,
                                std::vector<MExtra> reduceExtras, bool forceUnfused,
                                bool* ranFused) {
  if (stages.empty()) {
    if (ranFused != nullptr) *ranFused = false;
    return reduce(reduceFn, input, std::move(reduceExtras));
  }
  const bool fused = !forceUnfused && chainEligible(input, stages);
  if (ranFused != nullptr) *ranFused = fused;
  if (!fused) {
    MVec temp(input.n);
    chainUnfused(input, stages, temp);
    return reduce(reduceFn, temp, std::move(reduceExtras));
  }
  std::vector<MVec*> inputs = chainRecoveryInputs(input, stages);
  for (const MExtra& e : reduceExtras) {
    if (e.kind == MExtra::Kind::VectorRef) inputs.push_back(e.vec);
  }
  return withRecovery(std::move(inputs), nullptr,
                      [&] { return fusedReduceOnce(input, stages, reduceFn, reduceExtras); });
}

}  // namespace skelcl::check
