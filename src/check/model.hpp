// The skelcheck reference model: a pure host-side re-implementation of the
// SkelCL semantics the differential tester checks — Vector coherence flags,
// lazy distribution changes, partition planning (reusing the real
// skelcl::Distribution), the per-skeleton execution plans of
// core/detail/skeleton_exec.cpp *including their command order*, the fault
// injector's per-device command counting, the ExecGraph failure-continue
// semantics, and the blacklist/recover/retry loop.
//
// The model stores every element as a raw 32-bit pattern and evaluates user
// functions through check::evalFn, which mirrors the kernelc VM bit-for-bit.
// Where the model needs real library behavior with no device state attached
// (partitioning, distribution equality) it calls the real code; everything
// stateful is mirrored so the system under test cannot "check itself".
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "core/distribution.hpp"

namespace skelcl::check {

/// Mirror of ocl::CommandError: a device command failed.  `permanent`
/// distinguishes device death from an exhausted transient retry loop;
/// `timedOut` mirrors status WatchdogTimeout (straggler/hang aborted by the
/// watchdog: not permanent, but escalates without retries and the recovery
/// layer *degrades* the device instead of blacklisting it).
struct ModelCommandError {
  int device = -1;
  bool permanent = false;
  bool timedOut = false;
  std::string what;
};

/// One device part of a model vector (mirror of VectorData::DevicePart).
struct MPart {
  int device = 0;
  std::size_t offset = 0;
  std::size_t size = 0;
  bool hasBuf = false;               ///< buffer allocated (size > 0)
  std::vector<std::uint32_t> data;   ///< element bit patterns
};

/// Mirror of detail::VectorData.
struct MVec {
  explicit MVec(std::size_t count) : n(count), host(count, 0) {}

  std::size_t n;
  std::vector<std::uint32_t> host;
  bool hostValid = true;
  bool devicesValid = false;
  Distribution requested;  ///< latest requested distribution
  Distribution current;    ///< distribution the parts represent
  std::vector<MPart> parts;

  // mirror of the cached partition plan (plus the session and epoch it was
  // built under, matching VectorData's {planned_session_, planned_epoch_} key)
  std::vector<PartRange> planned;
  bool plannedValid = false;
  int plannedSession = 0;
  std::uint64_t plannedEpoch = 0;

  MPart* partOn(int device);
};

/// Extra (additional) skeleton argument on the model side.
struct MExtra {
  enum class Kind { Scalar, VectorRef, Sizes };
  Kind kind = Kind::Scalar;
  std::int64_t ci = 0;
  double cf = 0.0;
  MVec* vec = nullptr;
};

/// One pipeline stage on the model side.
struct MStage {
  std::string fn;
  MVec* zipVec = nullptr;  ///< null for map stages
  bool hasScalar = false;
  std::int64_t ci = 0;
  double cf = 0.0;
};

/// Build the real Distribution described by a DistSpec (combine functions are
/// materialized from the catalog for the element type).
Distribution makeDistribution(const DistSpec& spec, ElemType t);

class Model {
 public:
  /// `cores[d]` is device d's core count (drives the reduce/scan chunking).
  Model(const Config& cfg, std::vector<int> cores);

  ElemType elem() const { return cfg_.elem; }
  int aliveCount() const { return static_cast<int>(alive_.size()); }

  // --- per-op entry points (each throws real skelcl errors or
  // --- ModelCommandError exactly where the system would) ---
  void fill(MVec& v, std::int64_t base, std::int64_t step);
  void write(MVec& v, std::int64_t index, std::int64_t value);
  void setDist(MVec& v, const Distribution& d) { setDistribution(v, d); }
  void poke(MVec& v, int device, std::int64_t base, std::int64_t step);
  /// hostRead: makes the host copy current and returns it.
  const std::vector<std::uint32_t>& probe(MVec& v);

  void map(const std::string& fn, MVec& input, MVec& output, std::vector<MExtra> extras);
  void zip(const std::string& fn, MVec& left, MVec& right, MVec& output,
           std::vector<MExtra> extras);
  std::uint32_t reduce(const std::string& fn, MVec& input, std::vector<MExtra> extras);
  void scan(const std::string& fn, MVec& input, MVec& output);
  /// Mirror of the 1D MapOverlap skeleton (Stencil1 catalog fn, block halo
  /// exchange, neutral/clamp boundary).  `neutral` is the element bit pattern.
  void mapOverlap(const std::string& fn, int radius, bool clampPad, std::uint32_t neutral,
                  MVec& input, MVec& output);
  /// Mirror of the MatStencil op: host-read `src`, run the 2D MapOverlap over
  /// the first (src.n / cols) * cols elements viewed as a matrix, download the
  /// result and write it into `dst`'s host copy.
  void matStencil(const std::string& fn, int radius, bool clampPad, std::uint32_t neutral,
                  std::size_t cols, MVec& src, MVec& dst);
  /// Returns whether the chain took the fused path (compared against
  /// Pipeline::lastRunFused()).
  bool pipe(MVec& input, std::vector<MStage>& stages, MVec& output, bool forceUnfused);
  std::uint32_t pipeReduce(MVec& input, std::vector<MStage>& stages,
                           const std::string& reduceFn, std::vector<MExtra> reduceExtras,
                           bool forceUnfused, bool* ranFused);

  /// Mirror of setPartitionWeights: applies to the *current* session.
  void setWeights(std::vector<double> weights);
  /// Mirror of activating a SessionScope for session `slot` (created lazily;
  /// slot 0 is the default session active at init).
  void switchSession(int slot);
  void blacklist(int device);  ///< mirror of skelcl::blacklistDevice
  /// Mirror of setFaultPlan + FaultInjector::install: resets counters and the
  /// dead flags, then arms the new rules.  Degrade state (health, strikes) is
  /// runtime state, not injector state, and survives installs — exactly like
  /// the blacklist.
  void installFaults(const std::vector<std::array<std::int64_t, 3>>& transients,
                     const std::vector<std::array<std::int64_t, 3>>& slows,
                     const std::vector<std::array<std::int64_t, 2>>& hangs,
                     int killDevice, std::int64_t killAfter);

  /// Mirror of the service map job the Cancel op runs (run=1): host-read the
  /// source slot, map it through a fresh vector pair under the dedicated
  /// service session, host-read the output, then overwrite `dst`'s host copy.
  void serviceMap(const std::string& fn, MVec& src, MVec& dst);

  // --- fault-injector mirror (used by MGraph) ---
  enum class Decision { None, Transient, Lost, Timeout };
  Decision onCommand(int device, int cls);  ///< cls: 0 transfer, 1 kernel
  int maxAttempts() const { return max_attempts_; }

 private:
  friend class MGraph;
  friend struct ModelTestAccess;

  // runtime mirror
  const std::vector<double>& applicableWeights() const;
  std::uint64_t partitionEpoch() const;  ///< weight epoch (current session) + device epoch
  Distribution effective(const Distribution& d) const;
  /// Mirror of Session::partition: node-aware two-level apportionment on a
  /// cluster config (cfg.nodes > 1), flat otherwise.
  std::vector<PartRange> partitionFor(const Distribution& d, std::size_t n) const;
  bool multiNode() const { return cfg_.nodes > 1; }
  void blacklistDevice(int device);
  void degradeDevice(int device);  ///< mirror of SharedDeviceState::degradeDevice
  // vector-data mirror
  const std::vector<PartRange>& plannedPartition(MVec& v);
  std::size_t partSizeOn(MVec& v, int device);
  bool partsMatchRequested(MVec& v);
  void setDistribution(MVec& v, const Distribution& d);
  void defaultDistribution(MVec& v, const Distribution& d);
  void ensureOnDevices(MVec& v);
  void ensureOnDevicesNoUpload(MVec& v);
  void ensureHostValid(MVec& v);
  void materializeParts(MVec& v, bool upload);
  void downloadParts(MVec& v);
  void combineCopiesToHost(MVec& v);
  void markDevicesModified(MVec& v);
  void markHostModified(MVec& v);
  void recoverAfterDeviceLoss(MVec& v, int deadDevice);
  void resetDeviceDataAfterLoss(MVec& v);
  void allocCheck(int device);  ///< mirror of ocl::Device::allocate's dead-device gate
  // skeleton mirror
  std::uint32_t eval(const std::string& fn, std::uint32_t a, std::uint32_t b,
                     std::int64_t ci, double cf) const;
  void prepareExtras(std::vector<MExtra>& extras);
  void bindExtrasCheck(const std::vector<MExtra>& extras, int device);
  std::uint32_t extraElem(const MExtra& e, int device);
  void elementwiseOnce(const std::string& fn, MVec* in1, MVec* in2, MVec& output,
                       std::vector<MExtra>& extras);
  void runElementwise(const std::string& fn, MVec* in1, MVec* in2, MVec& output,
                      std::vector<MExtra>& extras);
  std::uint32_t reduceOnce(const std::string& fn, MVec& input, std::vector<MExtra>& extras);
  void scanOnce(const std::string& fn, MVec& input, MVec& output);
  bool chainEligible(MVec& input, const std::vector<MStage>& stages) const;
  Distribution materializeChainInputs(MVec& input, std::vector<MStage>& stages);
  bool chainWritesInput(const MVec& output, const MVec& input,
                        const std::vector<MStage>& stages) const;
  std::vector<MVec*> chainRecoveryInputs(MVec& input, const std::vector<MStage>& stages) const;
  std::uint32_t chainEval(const std::vector<MStage>& stages, std::uint32_t v, int device,
                          std::size_t j);
  void fusedChainOnce(MVec& input, std::vector<MStage>& stages, MVec& output);
  void chainUnfused(MVec& input, std::vector<MStage>& stages, MVec& output);
  std::uint32_t fusedReduceOnce(MVec& input, std::vector<MStage>& stages,
                                const std::string& reduceFn,
                                std::vector<MExtra>& reduceExtras);
  // map-overlap mirror (skeleton_exec.cpp's runMapOverlap{1D,2D}Once command
  // order).  The matrix variants mirror MatrixData's row vector: n counts
  // rows, each part/host word run is `cols` wide.
  std::uint32_t stencilEval(const std::string& fn, const std::vector<std::uint32_t>& pad,
                            std::size_t center, std::size_t stride) const;
  void mapOverlapOnce(const std::string& fn, std::size_t radius, bool clampPad,
                      std::uint32_t neutral, MVec& input, MVec& output);
  void matStencilOnce(const std::string& fn, std::size_t radius, bool clampPad,
                      std::uint32_t neutral, std::size_t rows, std::size_t cols, MVec& input,
                      MVec& output);
  void matrixMaterializeParts(MVec& v, std::size_t cols, bool upload);
  void matrixEnsureOnDevices(MVec& v, std::size_t cols);
  void matrixEnsureOnDevicesNoUpload(MVec& v, std::size_t cols);
  void matrixEnsureHostValid(MVec& v, std::size_t cols);

  template <typename Body>
  auto withRecovery(std::vector<MVec*> inputs, MVec* resetOutput, Body&& body)
      -> decltype(body());

  Config cfg_;
  std::vector<int> cores_;
  std::vector<int> node_of_;  ///< device id -> cluster node (all zero when local)

  // Mirror of SharedDeviceState's watchdog constants: the abort decision is
  // time-free (slow factor vs slack; hangs always abort) so the clockless
  // model can take it, and must match sim::WatchdogConfig defaults plus
  // SharedDeviceState::{kDegradedHealth, kDegradeStrikes}.
  static constexpr double kWatchdogSlack = 4.0;
  static constexpr double kDegradedHealth = 0.25;
  static constexpr int kDegradeStrikes = 3;
  /// Session slot serviceMap runs under -- any slot the generator never emits
  /// (Session ops use 0..3), mirroring the Service's dedicated session, which
  /// carries no partition weights.
  static constexpr int kServiceSessionSlot = 100;

  // Runtime mirror: shared blacklist state plus per-session scheduler
  // weights (mirror of the SharedDeviceState / Session split: the device
  // epoch is shared, the weight epoch is per session).
  std::vector<char> dead_;
  std::vector<int> alive_;
  std::vector<double> health_;     ///< 1.0 healthy, kDegradedHealth degraded
  std::vector<int> degrade_counts_;
  struct SessState {
    std::vector<double> weights;
    std::uint64_t weightEpoch = 0;
  };
  std::map<int, SessState> sessions_;
  int cur_session_ = 0;
  std::uint64_t device_epoch_ = 0;

  // FaultInjector mirror.
  struct TransRule {
    int device = -1;
    int cls = 0;  ///< 0 transfer, 1 kernel
    int remaining = 0;
  };
  struct SlowRule {
    int device = -1;
    double factor = 1.0;
    int remaining = 0;   ///< -1 = persistent (no count)
  };
  struct HangRule {
    int device = -1;
    int remaining = 0;
  };
  bool faults_active_ = false;
  std::vector<TransRule> trans_;
  std::vector<SlowRule> slows_;
  std::vector<HangRule> hangs_;
  int kill_device_ = -1;
  std::int64_t kill_after_ = 0;
  std::vector<std::uint64_t> cmd_counts_;
  std::vector<char> inj_dead_;
  int max_attempts_ = 4;
};

}  // namespace skelcl::check
