#include "check/funcs.hpp"

#include <stdexcept>

namespace skelcl::check {

namespace {

/// Truncate an int64 intermediate to the int32 the VM stores after every
/// operation (C++20 guarantees two's-complement wraparound).
std::int32_t t32(std::int64_t v) { return static_cast<std::int32_t>(v); }

const std::vector<FnInfo> kCatalog = {
    //  id        shape                  int    float  aI     aF     map    zip    red    scan   comb
    {"neg",     FnShape::Unary,        true,  true,  false, false, true,  false, false, false, false},
    {"absv",    FnShape::Unary,        true,  true,  false, false, true,  false, false, false, false},
    {"addc",    FnShape::UnaryScalar,  true,  true,  false, false, true,  false, false, false, false},
    {"mulc",    FnShape::UnaryScalar,  true,  true,  false, false, true,  false, false, false, false},
    {"maxc",    FnShape::UnaryScalar,  true,  true,  false, false, true,  false, false, false, false},
    {"addv",    FnShape::UnaryVec,     true,  true,  false, false, true,  false, false, false, false},
    // adds takes its second parameter as `int` (the sizes token), so the
    // float variant would mix int/float arithmetic in the VM; int-only.
    {"adds",    FnShape::UnarySizes,   true,  false, false, false, true,  false, false, false, false},
    // Wrap-around int addition is associative mod 2^32; float addition is
    // not, so `add` reduces/scans ints only but may combine either type
    // (the combine fold visits parts in the same order on both sides).
    {"add",     FnShape::Binary,       true,  true,  true,  false, false, true,  true,  true,  true},
    {"sub",     FnShape::Binary,       true,  true,  false, false, false, true,  false, false, true},
    {"mul",     FnShape::Binary,       true,  false, true,  false, false, true,  false, false, false},
    {"bmin",    FnShape::Binary,       true,  true,  true,  true,  false, true,  true,  true,  true},
    {"bmax",    FnShape::Binary,       true,  true,  true,  true,  false, true,  true,  true,  true},
    {"bxor",    FnShape::Binary,       true,  false, true,  false, false, true,  true,  true,  true},
    {"second",  FnShape::Binary,       true,  true,  true,  true,  false, false, false, false, true},
    {"madd",    FnShape::BinaryScalar, true,  false, false, false, false, true,  false, false, false},
    {"subadd",  FnShape::BinaryScalar, false, true,  false, false, false, true,  false, false, false},
    // max-by-offset-key with last-wins ties: selection, so regrouping is
    // transparent even for floats -- usable as a reduce with a scalar extra.
    {"maxoff",  FnShape::BinaryScalar, true,  true,  true,  true,  false, false, true,  false, false},
    // Stencil shapes are only reachable through the mapoverlap/matstencil
    // ops, so every grammar-slot role flag stays false.
    {"s1sum",   FnShape::Stencil1,     true,  true,  false, false, false, false, false, false, false},
    {"s1diff",  FnShape::Stencil1,     true,  true,  false, false, false, false, false, false, false},
    {"s2sum",   FnShape::Stencil2,     true,  true,  false, false, false, false, false, false, false},
};

std::string body(const std::string& id, const std::string& T) {
  if (id == "neg") return T + " func(" + T + " x) { return -x; }";
  if (id == "absv") return T + " func(" + T + " x) { if (x < 0) return -x; return x; }";
  if (id == "addc") return T + " func(" + T + " x, " + T + " c) { return x + c; }";
  if (id == "mulc") return T + " func(" + T + " x, " + T + " c) { return x * c; }";
  if (id == "maxc")
    return T + " func(" + T + " x, " + T + " c) { if (x > c) return x; return c; }";
  if (id == "addv") return T + " func(" + T + " x, __global " + T + "* v) { return x + v[0]; }";
  if (id == "adds") return T + " func(" + T + " x, int s) { return x + s; }";
  if (id == "add") return T + " func(" + T + " a, " + T + " b) { return a + b; }";
  if (id == "sub") return T + " func(" + T + " a, " + T + " b) { return a - b; }";
  if (id == "mul") return T + " func(" + T + " a, " + T + " b) { return a * b; }";
  if (id == "bmin")
    return T + " func(" + T + " a, " + T + " b) { if (a < b) return a; return b; }";
  if (id == "bmax")
    return T + " func(" + T + " a, " + T + " b) { if (a > b) return a; return b; }";
  if (id == "bxor") return T + " func(" + T + " a, " + T + " b) { return a ^ b; }";
  if (id == "second") return T + " func(" + T + " a, " + T + " b) { return b; }";
  if (id == "madd")
    return T + " func(" + T + " a, " + T + " b, " + T + " c) { return a + b * c; }";
  if (id == "subadd")
    return T + " func(" + T + " a, " + T + " b, " + T + " c) { " + T +
           " t = a - b; return t + c; }";
  if (id == "maxoff")
    return T + " func(" + T + " a, " + T + " b, " + T +
           " c) { if (a + c > b + c) return a; return b; }";
  if (id == "s1sum")
    return T + " func(__global " + T + "* p, int i) { " + T + " t = p[i - 1] + p[i]; return t + p[i + 1]; }";
  if (id == "s1diff")
    return T + " func(__global " + T + "* p, int i) { return p[i + 1] - p[i - 1]; }";
  if (id == "s2sum")
    return T + " func(__global " + T + "* p, int i, int s) { " + T +
           " t = p[i - s] + p[i - 1]; t = t + p[i]; t = t + p[i + 1]; return t + p[i + s]; }";
  throw std::runtime_error("skelcheck: unknown function id '" + id + "'");
}

}  // namespace

const std::vector<FnInfo>& catalog() { return kCatalog; }

const FnInfo* fnInfo(const std::string& id) {
  for (const FnInfo& f : kCatalog) {
    if (id == f.id) return &f;
  }
  return nullptr;
}

std::string fnSource(const std::string& id, ElemType t) {
  return body(id, t == ElemType::I32 ? "int" : "float");
}

std::string idForSource(const std::string& source) {
  for (const FnInfo& f : kCatalog) {
    if (f.forInt && fnSource(f.id, ElemType::I32) == source) return f.id;
    if (f.forFloat && fnSource(f.id, ElemType::F32) == source) return f.id;
  }
  return "";
}

std::uint32_t evalFn(const std::string& id, ElemType t, std::uint32_t a, std::uint32_t b,
                     std::int64_t ci, double cf) {
  if (t == ElemType::I32) {
    // Slots hold sign-extended int32 values; every op result truncates.
    const std::int64_t x = asI(a);
    const std::int64_t y = asI(b);
    if (id == "neg") return bitsOfI(t32(-x));
    if (id == "absv") return x < 0 ? bitsOfI(t32(-x)) : a;
    if (id == "addc" || id == "adds") return bitsOfI(t32(x + ci));
    if (id == "mulc") return bitsOfI(t32(x * ci));
    if (id == "maxc") return x > ci ? a : bitsOfI(t32(ci));
    if (id == "addv" || id == "add") return bitsOfI(t32(x + y));
    if (id == "sub") return bitsOfI(t32(x - y));
    if (id == "mul") return bitsOfI(t32(x * y));
    if (id == "bmin") return x < y ? a : b;
    if (id == "bmax") return x > y ? a : b;
    if (id == "bxor") return bitsOfI(t32(x ^ y));
    if (id == "second") return b;
    if (id == "madd") return bitsOfI(t32(x + t32(y * ci)));
    if (id == "maxoff") {
      // The VM truncates each a+c before the comparison.
      const std::int64_t xa = t32(x + ci);
      const std::int64_t ya = t32(y + ci);
      return xa > ya ? a : b;
    }
  } else {
    const float x = asF(a);
    const float y = asF(b);
    const float c = static_cast<float>(cf);
    if (id == "neg") return bitsOfF(-x);
    if (id == "absv") return x < 0.0f ? bitsOfF(-x) : a;
    if (id == "addc") return bitsOfF(x + c);
    if (id == "adds") return bitsOfF(x + static_cast<float>(static_cast<std::int32_t>(ci)));
    if (id == "mulc") return bitsOfF(x * c);
    if (id == "maxc") return x > c ? a : bitsOfF(c);
    if (id == "addv" || id == "add") return bitsOfF(x + y);
    if (id == "sub") return bitsOfF(x - y);
    if (id == "bmin") return x < y ? a : b;
    if (id == "bmax") return x > y ? a : b;
    if (id == "second") return b;
    if (id == "subadd") {
      const float tmp = x - y;
      return bitsOfF(tmp + c);
    }
    if (id == "maxoff") {
      const float xa = x + c;
      const float ya = y + c;
      return xa > ya ? a : b;
    }
  }
  throw std::runtime_error("skelcheck: evalFn: function '" + id + "' not valid for " +
                           elemName(t));
}

}  // namespace skelcl::check
