#include "check/shrink.hpp"

#include <algorithm>
#include <utility>

#include "check/runner.hpp"

namespace skelcl::check {

namespace {

/// Upper bound on predicate invocations (each one is a full lockstep run).
constexpr int kBudget = 400;

}  // namespace

Program shrink(const Program& failing,
               const std::function<bool(const Program&)>& stillFails) {
  Program cur = failing;
  sanitize(cur);
  int budget = kBudget;

  auto tryAdopt = [&](Program cand) {
    if (budget <= 0) return false;
    --budget;
    sanitize(cand);
    if (!stillFails(cand)) return false;
    cur = std::move(cand);
    return true;
  };

  // 1. ddmin over the op list: remove chunks, halving the chunk size.
  std::size_t chunk = std::max<std::size_t>(1, cur.ops.size() / 2);
  while (budget > 0) {
    bool removed = false;
    for (std::size_t i = 0; i < cur.ops.size() && budget > 0;) {
      Program cand = cur;
      const std::size_t end = std::min(i + chunk, cand.ops.size());
      cand.ops.erase(cand.ops.begin() + static_cast<std::ptrdiff_t>(i),
                     cand.ops.begin() + static_cast<std::ptrdiff_t>(end));
      if (!cand.ops.empty() && tryAdopt(std::move(cand))) {
        removed = true;  // same i now points at the next op
      } else {
        i += chunk;
      }
    }
    if (chunk == 1 && !removed) break;
    if (chunk > 1) chunk /= 2;
  }

  // 2. Shrink the vector length.
  while (cur.cfg.n > 1 && budget > 0) {
    Program cand = cur;
    cand.cfg.n = cur.cfg.n / 2;
    if (!tryAdopt(std::move(cand))) break;
  }

  // 3. Per-op simplification: drop pipeline stages, transient fault rules
  //    and scheduler weights one element at a time.
  bool simplified = true;
  while (simplified && budget > 0) {
    simplified = false;
    for (std::size_t i = 0; i < cur.ops.size() && budget > 0; ++i) {
      for (std::size_t j = 0; j < cur.ops[i].stages.size() && budget > 0; ++j) {
        Program cand = cur;
        cand.ops[i].stages.erase(cand.ops[i].stages.begin() +
                                 static_cast<std::ptrdiff_t>(j));
        if (tryAdopt(std::move(cand))) {
          simplified = true;
          break;
        }
      }
      for (std::size_t j = 0; j < cur.ops[i].transients.size() && budget > 0; ++j) {
        Program cand = cur;
        cand.ops[i].transients.erase(cand.ops[i].transients.begin() +
                                     static_cast<std::ptrdiff_t>(j));
        if (tryAdopt(std::move(cand))) {
          simplified = true;
          break;
        }
      }
      if (!cur.ops[i].weights.empty() && budget > 0 &&
          (cur.ops[i].kind == OpKind::Weights || cur.ops[i].kind == OpKind::Session)) {
        Program cand = cur;
        cand.ops[i].weights.clear();
        if (tryAdopt(std::move(cand))) simplified = true;
      }
    }
  }

  return cur;
}

}  // namespace skelcl::check
