// Delta-debugging shrinker for failing skelcheck programs.
#pragma once

#include <functional>

#include "check/check.hpp"

namespace skelcl::check {

/// Shrink `failing` while `stillFails` keeps returning true: ddmin-style op
/// chunk removal, then n halving, then per-op simplification (dropping
/// pipeline stages, transient fault rules and scheduler weights).  Every
/// candidate is sanitized before the predicate sees it.  The total number of
/// predicate calls is bounded, so shrinking always terminates quickly.
Program shrink(const Program& failing,
               const std::function<bool(const Program&)>& stillFails);

}  // namespace skelcl::check
