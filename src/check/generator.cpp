#include "check/generator.hpp"

#include <string>
#include <vector>

#include "check/funcs.hpp"
#include "check/runner.hpp"

namespace skelcl::check {

namespace {

/// splitmix64: tiny, seedable, and independent of the standard library's
/// unspecified engine implementations.
struct Rng {
  explicit Rng(std::uint64_t seed) : s(seed) {}

  std::uint64_t next() {
    s += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
  int range(int lo, int hi) {  // inclusive
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }
  bool chance(int percent) { return static_cast<int>(below(100)) < percent; }

  std::uint64_t s;
};

std::vector<std::string> fnsFor(ElemType t, bool FnInfo::*role) {
  std::vector<std::string> out;
  for (const FnInfo& f : catalog()) {
    if (f.*role && (t == ElemType::I32 ? f.forInt : f.forFloat)) out.push_back(f.id);
  }
  return out;
}

/// Stencil functions carry no role flags (they are only reachable through
/// the mapoverlap/matstencil ops), so they are collected by shape instead.
std::vector<std::string> fnsOfShape(ElemType t, FnShape shape) {
  std::vector<std::string> out;
  for (const FnInfo& f : catalog()) {
    if (f.shape == shape && (t == ElemType::I32 ? f.forInt : f.forFloat)) {
      out.push_back(f.id);
    }
  }
  return out;
}

std::vector<std::string> filterShapes(std::vector<std::string> fns, FnShape a, FnShape b) {
  std::vector<std::string> out;
  for (auto& id : fns) {
    const FnShape s = fnInfo(id)->shape;
    if (s == a || s == b) out.push_back(id);
  }
  return out;
}

const std::string& pick(Rng& rng, const std::vector<std::string>& v) {
  return v[rng.below(v.size())];
}

}  // namespace

Program generate(std::uint64_t seed, int numOps) {
  Rng rng(seed * 0x2545F4914F6CDD1Dull + 0x123456789ABCDEFull);
  Program p;
  Config& cfg = p.cfg;
  cfg.seed = seed;
  const int devChoices[3] = {1, 2, 4};
  cfg.devices = devChoices[seed % 3];
  cfg.elem = ((seed / 3) % 2) ? ElemType::F32 : ElemType::I32;
  cfg.kcopt = static_cast<int>((seed / 6) % 3);
  // About a third of the programs run on a docl cluster (devices spread
  // evenly across nodes, node-aware partitions + tree collectives); the
  // node count always divides the device count since both are powers of 2.
  const int nodeChoices[3] = {1, 1, 2};
  cfg.nodes = std::min(nodeChoices[(seed / 18) % 3], cfg.devices);
  if (cfg.nodes == 2 && cfg.devices == 4 && rng.chance(50)) cfg.nodes = 4;
  const std::size_t sizes[] = {0, 1, 2, 3, 4, 7, 17, 33, 64, 100, 137, 200};
  cfg.n = sizes[rng.below(std::size(sizes))];
  cfg.poolSize = rng.range(3, 6);
  const ElemType t = cfg.elem;

  const auto mapFns = fnsFor(t, &FnInfo::mapUse);
  const auto mapStageFns = filterShapes(mapFns, FnShape::Unary, FnShape::UnaryScalar);
  const auto unaryFns = filterShapes(mapFns, FnShape::Unary, FnShape::Unary);
  const auto zipFns = fnsFor(t, &FnInfo::zipUse);
  const auto zipStageFns = filterShapes(zipFns, FnShape::Binary, FnShape::BinaryScalar);
  const auto redFns = fnsFor(t, &FnInfo::redUse);
  const auto scanFns = filterShapes(fnsFor(t, &FnInfo::scanUse), FnShape::Binary,
                                    FnShape::Binary);
  const auto combFns = filterShapes(fnsFor(t, &FnInfo::combineUse), FnShape::Binary,
                                    FnShape::Binary);
  const auto sten1Fns = fnsOfShape(t, FnShape::Stencil1);
  const auto sten2Fns = fnsOfShape(t, FnShape::Stencil2);

  auto slot = [&] { return rng.range(0, cfg.poolSize - 1); };
  auto smallI = [&] { return static_cast<std::int64_t>(rng.range(-4, 4)); };
  auto smallF = [&] { return rng.range(-16, 16) * 0.25; };
  auto fillScalar = [&](Op& op, const std::string& fn) {
    if (fnInfo(fn)->shape == FnShape::UnaryScalar ||
        fnInfo(fn)->shape == FnShape::BinaryScalar) {
      op.hasScalar = true;
      op.ci = smallI();
      op.cf = smallF();
    }
  };
  auto randomDist = [&] {
    DistSpec d;
    switch (rng.below(5)) {
      case 0:
        d.kind = DistKind::Single;
        d.device = rng.range(0, cfg.devices - 1);
        break;
      case 1:
        d.kind = DistKind::Block;
        break;
      case 2: {
        d.kind = DistKind::WBlock;
        // Mostly one weight per device; occasionally short or zero-heavy
        // lists to exercise the weight-validation paths.
        const int len = rng.chance(80) ? cfg.devices : rng.range(1, cfg.devices);
        const double choices[] = {0.0, 0.5, 1.0, 2.0, 3.0};
        for (int i = 0; i < len; ++i) d.weights.push_back(choices[rng.below(5)]);
        break;
      }
      case 3:
        d.kind = DistKind::Copy;
        break;
      default:
        d.kind = DistKind::CopyCombine;
        d.fn = pick(rng, combFns);
        break;
    }
    return d;
  };
  auto makeStages = [&](Op& op) {
    const int count = rng.range(1, 3);
    for (int i = 0; i < count; ++i) {
      StageSpec st;
      st.isZip = rng.chance(40);
      if (st.isZip) {
        st.zipVec = slot();
        st.fn = pick(rng, zipStageFns);
      } else {
        st.fn = pick(rng, mapStageFns);
      }
      if (fnInfo(st.fn)->shape == FnShape::UnaryScalar ||
          fnInfo(st.fn)->shape == FnShape::BinaryScalar) {
        st.hasScalar = true;
        st.ci = smallI();
        st.cf = smallF();
      }
      op.stages.push_back(std::move(st));
    }
    op.unfused = rng.chance(30);
  };

  // Seed every slot with deterministic contents.
  for (int s = 0; s < cfg.poolSize; ++s) {
    Op op;
    op.kind = OpKind::Fill;
    op.a = s;
    op.base = rng.range(-64, 64);
    op.step = rng.range(-3, 3);
    p.ops.push_back(std::move(op));
  }

  int blacklistsLeft = cfg.devices - 1;
  while (static_cast<int>(p.ops.size()) < numOps) {
    Op op;
    const int roll = static_cast<int>(rng.below(100));
    if (roll < 10) {  // fill
      op.kind = OpKind::Fill;
      op.a = slot();
      op.base = rng.range(-64, 64);
      op.step = rng.range(-3, 3);
    } else if (roll < 17) {  // write
      op.kind = OpKind::Write;
      op.a = slot();
      // sanitize() turns writes into probes when n == 0.
      op.index = cfg.n > 0 ? static_cast<std::int64_t>(rng.below(cfg.n)) : 0;
      op.value = rng.range(-256, 256);
    } else if (roll < 31) {  // setdist
      op.kind = OpKind::SetDist;
      op.a = slot();
      op.dist = randomDist();
    } else if (roll < 34) {  // alias
      op.kind = OpKind::Alias;
      op.a = slot();
      op.dst = slot();
    } else if (roll < 44) {  // map
      op.kind = OpKind::Map;
      op.a = slot();
      op.dst = slot();
      op.inPlace = rng.chance(40);
      op.fn = pick(rng, mapFns);
      fillScalar(op, op.fn);
      const FnShape sh = fnInfo(op.fn)->shape;
      if (sh == FnShape::UnaryVec || sh == FnShape::UnarySizes) {
        op.extraVec = slot();
        // An extra-argument vector needs a distribution before the skeleton
        // touches it; leave it unset sometimes to exercise the UsageError.
        if (rng.chance(85)) {
          Op sd;
          sd.kind = OpKind::SetDist;
          sd.a = op.extraVec;
          sd.dist.kind = rng.chance(70) ? DistKind::Copy : DistKind::Block;
          p.ops.push_back(std::move(sd));
        }
      }
    } else if (roll < 53) {  // zip
      op.kind = OpKind::Zip;
      op.a = slot();
      op.b = slot();
      op.dst = slot();
      op.inPlace = rng.chance(40);
      op.fn = pick(rng, zipFns);
      fillScalar(op, op.fn);
    } else if (roll < 60) {  // reduce
      op.kind = OpKind::Reduce;
      op.a = slot();
      op.fn = pick(rng, redFns);
      fillScalar(op, op.fn);
    } else if (roll < 65) {  // scan
      op.kind = OpKind::Scan;
      op.a = slot();
      op.dst = slot();
      op.inPlace = rng.chance(40);
      op.fn = pick(rng, scanFns);
    } else if (roll < 72) {  // pipe
      op.kind = OpKind::Pipe;
      op.a = slot();
      op.dst = slot();
      op.inPlace = rng.chance(40);
      makeStages(op);
    } else if (roll < 77) {  // pipereduce
      op.kind = OpKind::PipeReduce;
      op.a = slot();
      op.fn = pick(rng, redFns);
      fillScalar(op, op.fn);
      makeStages(op);
    } else if (roll < 81) {  // weights
      op.kind = OpKind::Weights;
      const int len = rng.chance(75) ? cfg.devices : rng.range(0, cfg.devices);
      const double choices[] = {0.0, 0.5, 1.0, 2.0, 4.0};
      for (int i = 0; i < len; ++i) op.weights.push_back(choices[rng.below(5)]);
    } else if (roll < 83 && blacklistsLeft > 0) {  // blacklist
      op.kind = OpKind::Blacklist;
      op.device = rng.range(0, cfg.devices - 1);
      --blacklistsLeft;
    } else if (roll < 87) {  // fault
      op.kind = OpKind::Fault;
      const int rules = rng.range(0, 2);
      for (int i = 0; i < rules; ++i) {
        op.transients.push_back({static_cast<std::int64_t>(rng.range(-1, cfg.devices - 1)),
                                 static_cast<std::int64_t>(rng.below(2)),
                                 static_cast<std::int64_t>(rng.range(1, 3))});
      }
      if (rng.chance(40)) {  // straggler rule (slow device)
        // Watchdog-aborting stragglers (factor 8) rack up degrade strikes
        // that eventually blacklist the device, so they draw on the same
        // budget as explicit blacklists; tolerated ones (factor 2) are free.
        const bool aborted = rng.chance(50) && blacklistsLeft > 0;
        if (aborted) --blacklistsLeft;
        op.slows.push_back({static_cast<std::int64_t>(rng.range(0, cfg.devices - 1)),
                            static_cast<std::int64_t>(aborted ? 8 : 2),
                            static_cast<std::int64_t>(rng.range(0, 3))});
      }
      if (rng.chance(20) && blacklistsLeft > 0) {  // hang rule
        --blacklistsLeft;  // hangs are always watchdog-aborted
        op.hangs.push_back({static_cast<std::int64_t>(rng.range(0, cfg.devices - 1)),
                            static_cast<std::int64_t>(rng.range(1, 2))});
      }
      if (rng.chance(25) && blacklistsLeft > 0) {
        op.device = rng.range(0, cfg.devices - 1);
        op.value = rng.range(5, 60);
        --blacklistsLeft;  // the kill eventually blacklists one device
      } else {
        op.device = -1;
      }
    } else if (roll < 89) {  // poke
      op.kind = OpKind::Poke;
      op.a = slot();
      op.device = rng.range(0, cfg.devices - 1);
      op.base = rng.range(-64, 64);
      op.step = rng.range(-3, 3);
    } else if (roll < 91) {  // session switch (slot 0 = default), maybe with weights
      op.kind = OpKind::Session;
      op.device = rng.range(0, 3);
      if (rng.chance(50)) {
        const int len = rng.chance(75) ? cfg.devices : rng.range(1, cfg.devices);
        const double choices[] = {0.0, 0.5, 1.0, 2.0, 4.0};
        for (int i = 0; i < len; ++i) op.weights.push_back(choices[rng.below(5)]);
      }
    } else if (roll < 93 && t == ElemType::F32) {  // service map job: run or cancel
      op.kind = OpKind::Cancel;
      op.a = slot();
      op.dst = slot();
      op.fn = pick(rng, unaryFns);
      op.run = rng.chance(50);
    } else if (roll < 97) {  // mapoverlap (1D stencil)
      op.kind = OpKind::MapOverlap;
      op.a = slot();
      op.dst = slot();
      op.inPlace = rng.chance(25);
      op.fn = pick(rng, sten1Fns);
      op.radius = rng.range(1, 3);
      op.pad = rng.chance(50) ? 1 : 0;
      op.ci = smallI();
      op.cf = smallF();
    } else if (roll < 99) {  // matstencil (2D stencil over a matrix view)
      op.kind = OpKind::MatStencil;
      op.a = slot();
      op.dst = slot();
      op.fn = pick(rng, sten2Fns);
      op.radius = rng.range(1, 2);
      const int colChoices[] = {1, 2, 3, 5, 8, 13};
      op.cols = colChoices[rng.below(std::size(colChoices))];
      op.pad = rng.chance(50) ? 1 : 0;
      op.ci = smallI();
      op.cf = smallF();
    } else {  // probe
      op.kind = OpKind::Probe;
      op.a = slot();
    }
    p.ops.push_back(std::move(op));
  }

  // Final full-content probes: every slot is compared bitwise at the end.
  for (int s = 0; s < cfg.poolSize; ++s) {
    Op op;
    op.kind = OpKind::Probe;
    op.a = s;
    p.ops.push_back(std::move(op));
  }

  sanitize(p);
  return p;
}

}  // namespace skelcl::check
