// Replay-file serialization for skelcheck programs (format: docs/TESTING.md).
//
//   skelcheck v1
//   config devices=4 elem=i32 n=137 kcopt=1 seed=42 pool=5
//   fill a=0 base=3 step=1
//   map a=0 dst=1 fn=addc inplace=0 ci=3 cf=0
//   pipe a=0 dst=1 inplace=0 unfused=0 st=m:addc:i3 st=z:1:madd:i-2
//   fault kill=1 after=12 t=0:k:2 t=-1:t:1 s=2:8:1 h=1:1
//   session slot=1 w=2,1,0,1
//   cancel a=0 dst=1 fn=neg run=0
//   probe a=0
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/check.hpp"

namespace skelcl::check {

namespace {

std::string fmtD(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string distToken(const DistSpec& d) {
  switch (d.kind) {
    case DistKind::Single: return "single:" + std::to_string(d.device);
    case DistKind::Block: return "block";
    case DistKind::WBlock: {
      std::string s = "wblock:";
      for (std::size_t i = 0; i < d.weights.size(); ++i) {
        if (i) s += ',';
        s += fmtD(d.weights[i]);
      }
      return s;
    }
    case DistKind::Copy: return "copy";
    case DistKind::CopyCombine: return "copy+" + d.fn;
  }
  return "block";
}

std::string stageToken(const StageSpec& st) {
  std::string s = st.isZip ? "z:" + std::to_string(st.zipVec) + ":" + st.fn : "m:" + st.fn;
  if (st.hasScalar) s += ":i" + std::to_string(st.ci) + ":f" + fmtD(st.cf);
  return s;
}

// --- parsing helpers --------------------------------------------------------

[[noreturn]] void bad(int line, const std::string& why) {
  throw std::runtime_error("skelcheck parse error, line " + std::to_string(line) + ": " +
                           why);
}

std::vector<std::string> splitWs(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

std::vector<std::string> splitChar(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::int64_t toI(const std::string& s, int line) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') bad(line, "not an integer: '" + s + "'");
  return v;
}

double toD(const std::string& s, int line) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') bad(line, "not a number: '" + s + "'");
  return v;
}

std::vector<double> toDList(const std::string& s, int line) {
  std::vector<double> out;
  if (s.empty()) return out;
  for (const std::string& part : splitChar(s, ',')) out.push_back(toD(part, line));
  return out;
}

DistSpec parseDist(const std::string& v, int line) {
  DistSpec d;
  if (v.rfind("single:", 0) == 0) {
    d.kind = DistKind::Single;
    d.device = static_cast<int>(toI(v.substr(7), line));
  } else if (v == "block") {
    d.kind = DistKind::Block;
  } else if (v.rfind("wblock:", 0) == 0) {
    d.kind = DistKind::WBlock;
    d.weights = toDList(v.substr(7), line);
  } else if (v == "copy") {
    d.kind = DistKind::Copy;
  } else if (v.rfind("copy+", 0) == 0) {
    d.kind = DistKind::CopyCombine;
    d.fn = v.substr(5);
  } else {
    bad(line, "unknown distribution '" + v + "'");
  }
  return d;
}

StageSpec parseStage(const std::string& v, int line) {
  StageSpec st;
  const auto parts = splitChar(v, ':');
  std::size_t i = 0;
  if (parts.empty()) bad(line, "empty stage");
  if (parts[0] == "m") {
    if (parts.size() < 2) bad(line, "map stage needs a function");
    st.fn = parts[1];
    i = 2;
  } else if (parts[0] == "z") {
    if (parts.size() < 3) bad(line, "zip stage needs a slot and a function");
    st.isZip = true;
    st.zipVec = static_cast<int>(toI(parts[1], line));
    st.fn = parts[2];
    i = 3;
  } else {
    bad(line, "stage must start with m: or z:");
  }
  for (; i < parts.size(); ++i) {
    if (parts[i].empty()) bad(line, "empty stage field");
    if (parts[i][0] == 'i') {
      st.ci = toI(parts[i].substr(1), line);
      st.hasScalar = true;
    } else if (parts[i][0] == 'f') {
      st.cf = toD(parts[i].substr(1), line);
      st.hasScalar = true;
    } else {
      bad(line, "unknown stage field '" + parts[i] + "'");
    }
  }
  return st;
}

std::array<std::int64_t, 3> parseTransient(const std::string& v, int line) {
  const auto parts = splitChar(v, ':');
  if (parts.size() != 3) bad(line, "transient rule must be dev:class:count");
  std::int64_t cls;
  if (parts[1] == "t") {
    cls = 0;
  } else if (parts[1] == "k") {
    cls = 1;
  } else {
    bad(line, "transient class must be t or k");
  }
  return {toI(parts[0], line), cls, toI(parts[2], line)};
}

std::array<std::int64_t, 3> parseSlow(const std::string& v, int line) {
  const auto parts = splitChar(v, ':');
  if (parts.size() != 3) bad(line, "slow rule must be dev:factor:count");
  return {toI(parts[0], line), toI(parts[1], line), toI(parts[2], line)};
}

std::array<std::int64_t, 2> parseHang(const std::string& v, int line) {
  const auto parts = splitChar(v, ':');
  if (parts.size() != 2) bad(line, "hang rule must be dev:count");
  return {toI(parts[0], line), toI(parts[1], line)};
}

OpKind kindFor(const std::string& name, int line) {
  if (name == "fill") return OpKind::Fill;
  if (name == "write") return OpKind::Write;
  if (name == "setdist") return OpKind::SetDist;
  if (name == "alias") return OpKind::Alias;
  if (name == "map") return OpKind::Map;
  if (name == "zip") return OpKind::Zip;
  if (name == "reduce") return OpKind::Reduce;
  if (name == "scan") return OpKind::Scan;
  if (name == "pipe") return OpKind::Pipe;
  if (name == "pipereduce") return OpKind::PipeReduce;
  if (name == "weights") return OpKind::Weights;
  if (name == "session") return OpKind::Session;
  if (name == "blacklist") return OpKind::Blacklist;
  if (name == "fault") return OpKind::Fault;
  if (name == "poke") return OpKind::Poke;
  if (name == "probe") return OpKind::Probe;
  if (name == "cancel") return OpKind::Cancel;
  if (name == "mapoverlap") return OpKind::MapOverlap;
  if (name == "matstencil") return OpKind::MatStencil;
  bad(line, "unknown op '" + name + "'");
}

}  // namespace

std::string serialize(const Program& p) {
  std::ostringstream os;
  os << "skelcheck v1\n";
  os << "config devices=" << p.cfg.devices;
  // Emitted only for cluster programs so single-node replay files stay
  // byte-identical to the pre-cluster format.
  if (p.cfg.nodes > 1) os << " nodes=" << p.cfg.nodes;
  os << " elem=" << elemName(p.cfg.elem)
     << " n=" << p.cfg.n << " kcopt=" << p.cfg.kcopt << " seed=" << p.cfg.seed
     << " pool=" << p.cfg.poolSize << "\n";
  for (const Op& op : p.ops) {
    switch (op.kind) {
      case OpKind::Fill:
        os << "fill a=" << op.a << " base=" << op.base << " step=" << op.step;
        break;
      case OpKind::Write:
        os << "write a=" << op.a << " index=" << op.index << " value=" << op.value;
        break;
      case OpKind::SetDist:
        os << "setdist a=" << op.a << " dist=" << distToken(op.dist);
        break;
      case OpKind::Alias:
        os << "alias a=" << op.a << " dst=" << op.dst;
        break;
      case OpKind::Map:
        os << "map a=" << op.a << " dst=" << op.dst << " fn=" << op.fn
           << " inplace=" << op.inPlace;
        if (op.hasScalar) os << " ci=" << op.ci << " cf=" << fmtD(op.cf);
        if (op.extraVec >= 0) os << " extra=" << op.extraVec;
        break;
      case OpKind::Zip:
        os << "zip a=" << op.a << " b=" << op.b << " dst=" << op.dst << " fn=" << op.fn
           << " inplace=" << op.inPlace;
        if (op.hasScalar) os << " ci=" << op.ci << " cf=" << fmtD(op.cf);
        break;
      case OpKind::Reduce:
        os << "reduce a=" << op.a << " fn=" << op.fn;
        if (op.hasScalar) os << " ci=" << op.ci << " cf=" << fmtD(op.cf);
        break;
      case OpKind::Scan:
        os << "scan a=" << op.a << " dst=" << op.dst << " fn=" << op.fn
           << " inplace=" << op.inPlace;
        break;
      case OpKind::Pipe:
        os << "pipe a=" << op.a << " dst=" << op.dst << " inplace=" << op.inPlace
           << " unfused=" << op.unfused;
        for (const StageSpec& st : op.stages) os << " st=" << stageToken(st);
        break;
      case OpKind::PipeReduce:
        os << "pipereduce a=" << op.a << " fn=" << op.fn << " unfused=" << op.unfused;
        if (op.hasScalar) os << " ci=" << op.ci << " cf=" << fmtD(op.cf);
        for (const StageSpec& st : op.stages) os << " st=" << stageToken(st);
        break;
      case OpKind::Weights: {
        os << "weights w=";
        for (std::size_t i = 0; i < op.weights.size(); ++i) {
          if (i) os << ',';
          os << fmtD(op.weights[i]);
        }
        break;
      }
      case OpKind::Session: {
        os << "session slot=" << op.device;
        if (!op.weights.empty()) {
          os << " w=";
          for (std::size_t i = 0; i < op.weights.size(); ++i) {
            if (i) os << ',';
            os << fmtD(op.weights[i]);
          }
        }
        break;
      }
      case OpKind::Blacklist:
        os << "blacklist device=" << op.device;
        break;
      case OpKind::Fault:
        os << "fault kill=" << op.device << " after=" << op.value;
        for (const auto& tr : op.transients) {
          os << " t=" << tr[0] << (tr[1] ? ":k:" : ":t:") << tr[2];
        }
        for (const auto& s : op.slows) {
          os << " s=" << s[0] << ':' << s[1] << ':' << s[2];
        }
        for (const auto& h : op.hangs) {
          os << " h=" << h[0] << ':' << h[1];
        }
        break;
      case OpKind::Poke:
        os << "poke a=" << op.a << " device=" << op.device << " base=" << op.base
           << " step=" << op.step;
        break;
      case OpKind::Probe:
        os << "probe a=" << op.a;
        break;
      case OpKind::Cancel:
        os << "cancel a=" << op.a << " dst=" << op.dst << " fn=" << op.fn
           << " run=" << op.run;
        break;
      case OpKind::MapOverlap:
        os << "mapoverlap a=" << op.a << " dst=" << op.dst << " fn=" << op.fn
           << " inplace=" << op.inPlace << " r=" << op.radius << " pad=" << op.pad
           << " ci=" << op.ci << " cf=" << fmtD(op.cf);
        break;
      case OpKind::MatStencil:
        os << "matstencil a=" << op.a << " dst=" << op.dst << " fn=" << op.fn
           << " r=" << op.radius << " pad=" << op.pad << " cols=" << op.cols
           << " ci=" << op.ci << " cf=" << fmtD(op.cf);
        break;
    }
    os << "\n";
  }
  return os.str();
}

Program parse(const std::string& text) {
  Program p;
  std::istringstream is(text);
  std::string line;
  int lineNo = 0;
  bool sawHeader = false, sawConfig = false;
  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty() || line[0] == '#') continue;
    const auto toks = splitWs(line);
    if (toks.empty()) continue;
    if (!sawHeader) {
      if (toks[0] != "skelcheck") bad(lineNo, "missing 'skelcheck v1' header");
      sawHeader = true;
      continue;
    }
    if (toks[0] == "config") {
      for (std::size_t i = 1; i < toks.size(); ++i) {
        const auto kv = splitChar(toks[i], '=');
        if (kv.size() != 2) bad(lineNo, "malformed field '" + toks[i] + "'");
        const std::string& k = kv[0];
        const std::string& v = kv[1];
        if (k == "devices") {
          p.cfg.devices = static_cast<int>(toI(v, lineNo));
        } else if (k == "nodes") {
          p.cfg.nodes = static_cast<int>(toI(v, lineNo));
          if (p.cfg.nodes < 1) bad(lineNo, "nodes must be >= 1");
        } else if (k == "elem") {
          if (v == "i32") {
            p.cfg.elem = ElemType::I32;
          } else if (v == "f32") {
            p.cfg.elem = ElemType::F32;
          } else {
            bad(lineNo, "elem must be i32 or f32");
          }
        } else if (k == "n") {
          p.cfg.n = static_cast<std::size_t>(toI(v, lineNo));
        } else if (k == "kcopt") {
          p.cfg.kcopt = static_cast<int>(toI(v, lineNo));
        } else if (k == "seed") {
          p.cfg.seed = static_cast<std::uint64_t>(toI(v, lineNo));
        } else if (k == "pool") {
          p.cfg.poolSize = static_cast<int>(toI(v, lineNo));
        } else {
          bad(lineNo, "unknown config key '" + k + "'");
        }
      }
      sawConfig = true;
      continue;
    }
    if (!sawConfig) bad(lineNo, "ops before the config line");
    Op op;
    op.kind = kindFor(toks[0], lineNo);
    for (std::size_t i = 1; i < toks.size(); ++i) {
      const std::string& tok = toks[i];
      const auto eq = tok.find('=');
      if (eq == std::string::npos) bad(lineNo, "malformed field '" + tok + "'");
      const std::string k = tok.substr(0, eq);
      const std::string v = tok.substr(eq + 1);
      if (k == "a") {
        op.a = static_cast<int>(toI(v, lineNo));
      } else if (k == "b") {
        op.b = static_cast<int>(toI(v, lineNo));
      } else if (k == "dst") {
        op.dst = static_cast<int>(toI(v, lineNo));
      } else if (k == "fn") {
        op.fn = v;
      } else if (k == "inplace") {
        op.inPlace = toI(v, lineNo) != 0;
      } else if (k == "unfused") {
        op.unfused = toI(v, lineNo) != 0;
      } else if (k == "ci") {
        op.ci = toI(v, lineNo);
        op.hasScalar = true;
      } else if (k == "cf") {
        op.cf = toD(v, lineNo);
        op.hasScalar = true;
      } else if (k == "extra") {
        op.extraVec = static_cast<int>(toI(v, lineNo));
      } else if (k == "base") {
        op.base = toI(v, lineNo);
      } else if (k == "step") {
        op.step = toI(v, lineNo);
      } else if (k == "index") {
        op.index = toI(v, lineNo);
      } else if (k == "value") {
        op.value = toI(v, lineNo);
      } else if (k == "device") {
        op.device = static_cast<int>(toI(v, lineNo));
      } else if (k == "slot") {
        op.device = static_cast<int>(toI(v, lineNo));
      } else if (k == "kill") {
        op.device = static_cast<int>(toI(v, lineNo));
      } else if (k == "after") {
        op.value = toI(v, lineNo);
      } else if (k == "dist") {
        op.dist = parseDist(v, lineNo);
      } else if (k == "w") {
        op.weights = toDList(v, lineNo);
      } else if (k == "st") {
        op.stages.push_back(parseStage(v, lineNo));
      } else if (k == "t") {
        op.transients.push_back(parseTransient(v, lineNo));
      } else if (k == "s") {
        op.slows.push_back(parseSlow(v, lineNo));
      } else if (k == "h") {
        op.hangs.push_back(parseHang(v, lineNo));
      } else if (k == "run") {
        op.run = toI(v, lineNo) != 0;
      } else if (k == "r") {
        op.radius = static_cast<int>(toI(v, lineNo));
      } else if (k == "pad") {
        op.pad = static_cast<int>(toI(v, lineNo));
      } else if (k == "cols") {
        op.cols = static_cast<int>(toI(v, lineNo));
      } else {
        bad(lineNo, "unknown field '" + k + "'");
      }
    }
    p.ops.push_back(std::move(op));
  }
  if (!sawHeader || !sawConfig) {
    throw std::runtime_error("skelcheck parse error: missing header or config line");
  }
  return p;
}

}  // namespace skelcl::check
