// skelcheck: randomized differential state-machine testing for SkelCL.
//
// A Program is a (usually seeded) sequence of operations over a small pool
// of vectors: host reads/writes, distribution changes, skeleton calls with
// random additional arguments, pipeline fusion on/off, scheduler weights,
// device blacklisting and injected faults.  The runner (runner.hpp)
// executes it twice in lockstep -- once against the live SkelCL system and
// once against a pure host-side reference model (model.hpp) -- comparing
// error classes, coherence flags, distribution state, part layouts and, at
// probe points, full bitwise vector contents.  Failing programs shrink
// (shrink.hpp) to minimal repros serialized as replayable .skelcheck files.
//
// The op grammar, replay format and repro-to-regression-test workflow are
// documented in docs/TESTING.md.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace skelcl::check {

enum class ElemType { I32, F32 };

inline const char* elemName(ElemType t) { return t == ElemType::I32 ? "i32" : "f32"; }

// --- bit-pattern helpers ----------------------------------------------------
// All model values are stored as raw 32-bit patterns; interpretation happens
// at op-evaluation time.  Comparisons are bitwise, so -0.0f and NaN payloads
// must survive every conversion.

inline std::uint32_t bitsOfI(std::int32_t v) {
  std::uint32_t b;
  std::memcpy(&b, &v, 4);
  return b;
}
inline std::uint32_t bitsOfF(float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, 4);
  return b;
}
inline std::int32_t asI(std::uint32_t b) {
  std::int32_t v;
  std::memcpy(&v, &b, 4);
  return v;
}
inline float asF(std::uint32_t b) {
  float v;
  std::memcpy(&v, &b, 4);
  return v;
}

/// Deterministic fill/poke/write value: both the runner (feeding the live
/// system) and the model call this, so the two sides agree by construction.
/// Float values are multiples of 0.25 with |v| < 256 -- exactly
/// representable, so host-computed references start from clean bits.
inline std::uint32_t valueAt(ElemType t, std::int64_t x) {
  if (t == ElemType::I32) return bitsOfI(static_cast<std::int32_t>(x));
  return bitsOfF(static_cast<float>(x % 1024) * 0.25f);
}

// --- op grammar -------------------------------------------------------------

enum class OpKind {
  Fill,        ///< host-write pool[a][i] = valueAt(base + i*step)
  Write,       ///< host-write pool[a][index] = valueAt(value)
  SetDist,     ///< pool[a].setDistribution(dist)
  Alias,       ///< pool[dst] = pool[a]  (handle copy: the two slots share data)
  Map,         ///< map over pool[a] into pool[dst] (fresh or in-place)
  Zip,         ///< zip pool[a], pool[b] into pool[dst]
  Reduce,      ///< reduce pool[a]; result compared bitwise
  Scan,        ///< scan pool[a] into pool[dst]
  Pipe,        ///< pipeline of map/zip stages over pool[a] into pool[dst]
  PipeReduce,  ///< pipeline + fused reduce over pool[a]
  Weights,     ///< setPartitionWeights on the current session
  Blacklist,   ///< skelcl::blacklistDevice(device)
  Fault,       ///< install a FaultPlan (transient rules + optional kill)
  Poke,        ///< write pool[a]'s device part directly + dataOnDevicesModified
  Probe,       ///< host-read pool[a]; full bitwise content comparison
  Session,     ///< switch the current session to slot `device` (created on
               ///< first use; slot 0 is the default session), then optionally
               ///< setPartitionWeights(weights) on it when `weights` is
               ///< non-empty — partition weights are per-session state
  Cancel,      ///< pause the lazily-created Service, submit pool[a] through a
               ///< map job: run=0 cancels it before it runs (state no-op),
               ///< run=1 resumes and stores the result into pool[dst].
               ///< F32-only (the service job interface is float).
  MapOverlap,  ///< 1D stencil over pool[a] into pool[dst] (fresh or in-place)
               ///< with halo exchange between row blocks: fn is a Stencil1
               ///< catalog function, `radius` the overlap, `pad` the boundary
               ///< policy (0 neutral ci/cf, 1 clamp)
  MatStencil,  ///< 2D stencil: reinterpret the first rows*cols elements of
               ///< pool[a] (rows = n / cols) as a Matrix, run a Stencil2
               ///< MapOverlap over it, and write the result back into the
               ///< first rows*cols elements of pool[dst]
};

enum class DistKind { Single, Block, WBlock, Copy, CopyCombine };

struct DistSpec {
  DistKind kind = DistKind::Block;
  int device = 0;               ///< Single
  std::vector<double> weights;  ///< WBlock
  std::string fn;               ///< CopyCombine: catalog function id
};

/// One pipeline stage.  Scalar presence is implied by the function's shape.
struct StageSpec {
  bool isZip = false;
  int zipVec = -1;  ///< pool slot of the zip right-hand side
  std::string fn;   ///< catalog function id
  std::int64_t ci = 0;
  double cf = 0.0;
  bool hasScalar = false;
};

struct Op {
  OpKind kind = OpKind::Probe;
  int a = -1;        ///< primary input slot
  int b = -1;        ///< zip second input slot
  int dst = -1;      ///< output slot
  bool inPlace = false;  ///< write into the existing pool[dst] via out()
  std::string fn;
  std::int64_t ci = 0;   ///< scalar extra (int value; also sizes unused)
  double cf = 0.0;       ///< scalar extra (float value)
  bool hasScalar = false;
  int extraVec = -1;     ///< MapVec / MapSizes extra-argument slot
  DistSpec dist;
  std::vector<double> weights;
  int device = -1;       ///< Blacklist / Poke device; Fault kill device (-1 none);
                         ///< Session slot (0..3)
  /// Fault transient rules: {device, class (0 transfer / 1 kernel), count<=3}.
  std::vector<std::array<std::int64_t, 3>> transients;
  /// Fault slowdown rules: {device, factor (2 tolerated / 8 watchdog-aborted),
  /// count (0 = every command)}.  Any command class.
  std::vector<std::array<std::int64_t, 3>> slows;
  /// Fault hang rules: {device, count>=1}.  Any command class; the watchdog
  /// aborts each hung command and the recovery layer degrades the device.
  std::vector<std::array<std::int64_t, 2>> hangs;
  bool run = false;  ///< Cancel: true = run to completion, false = cancel
  std::int64_t base = 0, step = 0;  ///< Fill / Poke pattern
  std::int64_t index = 0, value = 0;  ///< Write
  std::vector<StageSpec> stages;
  bool unfused = false;
  int radius = 1;  ///< MapOverlap / MatStencil overlap radius (>= 1)
  int pad = 0;     ///< MapOverlap / MatStencil boundary: 0 neutral, 1 clamp
  int cols = 1;    ///< MatStencil matrix width (>= 1)
};

struct Config {
  int devices = 4;
  int nodes = 1;          ///< docl cluster nodes (devices spread evenly); 1 = local
  ElemType elem = ElemType::I32;
  std::size_t n = 64;
  int kcopt = 2;          ///< SKELCL_KC_OPT tier: 0 ref, 1 fast, 2 rewrite+batch
  std::uint64_t seed = 0; ///< generator seed (0 for hand-written programs)
  int poolSize = 5;
};

struct Program {
  Config cfg;
  std::vector<Op> ops;
};

// --- replay files (program.cpp) ---------------------------------------------

/// Text form, replayable via `skelcheck --replay` (format: docs/TESTING.md).
std::string serialize(const Program& program);
/// Inverse of serialize.  Throws std::runtime_error on malformed input.
Program parse(const std::string& text);

}  // namespace skelcl::check
