#include "docl/docl.hpp"

#include "base/error.hpp"
#include "core/detail/session.hpp"
#include "core/skelcl.hpp"

namespace skelcl::docl {

sim::SystemConfig flatten(const DistributedConfig& config) {
  SKELCL_CHECK(!config.servers.empty(), "a distributed system needs at least one server");
  sim::SystemConfig flat;
  flat.name = "dOpenCL";
  int linkBase = 0;
  for (std::size_t node = 0; node < config.servers.size(); ++node) {
    const sim::SystemConfig& server = config.servers[node];
    for (sim::DeviceSpec device : server.devices) {
      device.name = "node" + std::to_string(node) + "/" + device.name;
      if (device.pcie_link >= 0) device.pcie_link += linkBase;
      // Topology survives the flattening: the node id and the server's NIC
      // let the runtime route intra-node traffic locally and make collectives
      // cross the network once per node instead of once per device.
      device.node = static_cast<int>(node);
      device.nic_link = static_cast<int>(node);
      flat.devices.push_back(std::move(device));
    }
    for (sim::LinkSpec link : server.links) {
      link.name = "node" + std::to_string(node) + "/" + link.name;
      flat.links.push_back(std::move(link));
    }
    linkBase += static_cast<int>(server.links.size());
    sim::LinkSpec nic;
    nic.name = "node" + std::to_string(node) + "/nic";
    nic.bandwidth_gbs = config.network.bandwidth_gbs;
    nic.latency_us = config.network.latency_us;
    flat.nics.push_back(std::move(nic));
  }
  // The client's own memory system: a plain desktop.
  flat.host_mem_bandwidth_gbs = 8.0;
  flat.host_flops_gps = 6.0;
  return flat;
}

void applyNetworkModel(sim::System& system, const DistributedConfig& config) {
  for (int d = 0; d < system.deviceCount(); ++d) {
    system.setDeviceExtraLatency(d, config.network.latency_us * 1e-6,
                                 config.network.bandwidth_gbs);
  }
}

void initSkelCL(const DistributedConfig& config) {
  // flatten() carries the network topology (per-node NICs) into the system
  // config, so the legacy flat applyNetworkModel() pass is no longer needed —
  // calling both would charge the network twice.
  init(flatten(config));
  auto& system = detail::currentSession().system();
  sim::FaultPlan plan = networkFaultPlan(config);
  if (!plan.empty()) {
    // An unreliable network coexists with externally requested faults; the
    // env spec's seed and retry policy win when present.
    plan.merge(sim::FaultPlan::fromEnv());
    system.faults().install(std::move(plan));
  }
}

DistributedConfig laboratorySetup() {
  DistributedConfig config;
  config.servers.push_back(sim::SystemConfig::teslaS1070(4));
  config.servers.push_back(sim::SystemConfig::dualGpuServer());
  config.servers.push_back(sim::SystemConfig::dualGpuServer());
  return config;
}

sim::FaultPlan networkFaultPlan(const DistributedConfig& config) {
  sim::FaultPlan plan(config.network.fault_seed);
  if (config.network.drop_rate <= 0.0) return plan;
  int device = 0;
  for (const sim::SystemConfig& server : config.servers) {
    for (std::size_t d = 0; d < server.devices.size(); ++d) {
      // Each device's drop stream gets its own seed (splitmix-style mix of
      // the plan seed and the device id): a shared stream would correlate
      // "independent" drops across devices through command interleaving.
      const std::uint64_t seed =
          config.network.fault_seed ^
          (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(device + 1));
      plan.dropNetworkRandomly(device++, config.network.drop_rate,
                               config.network.timeout_us * 1e-6, seed);
    }
  }
  return plan;
}

std::pair<int, int> serverDeviceRange(const DistributedConfig& config, std::size_t node) {
  SKELCL_CHECK(node < config.servers.size(), "no such server node");
  int first = 0;
  for (std::size_t s = 0; s < node; ++s) {
    first += static_cast<int>(config.servers[s].devices.size());
  }
  const int count = static_cast<int>(config.servers[node].devices.size());
  SKELCL_CHECK(count > 0, "server node has no devices");
  return {first, first + count - 1};
}

std::vector<int> serverDevices(const DistributedConfig& config, std::size_t node) {
  const auto [first, last] = serverDeviceRange(config, node);
  std::vector<int> out;
  for (int d = first; d <= last; ++d) out.push_back(d);
  return out;
}

std::vector<int> aliveServerDevices(const DistributedConfig& config, std::size_t node,
                                    const std::vector<int>& alive) {
  const auto [first, last] = serverDeviceRange(config, node);
  std::vector<int> out;
  for (int d : alive) {
    if (d >= first && d <= last) out.push_back(d);
  }
  return out;
}

void killServer(sim::FaultPlan& plan, const DistributedConfig& config, std::size_t node,
                int afterCommands) {
  for (int d : serverDevices(config, node)) plan.killAfterCommands(d, afterCommands);
}

}  // namespace skelcl::docl
