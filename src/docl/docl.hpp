// dOpenCL — a simulated distributed OpenCL (paper Section V, reference [12]).
//
// dOpenCL integrates the native OpenCL implementations of several servers
// into one unified implementation on a client: to the application, all
// remote devices appear as local devices.  Because it is a drop-in
// replacement, SkelCL runs on it without any modification.
//
// The simulation models exactly that: the devices of every server are
// flattened into one SystemConfig the client can init() with, and every
// command aimed at a remote device additionally pays the client<->server
// network cost (latency on every command, bandwidth on transfers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/device_spec.hpp"
#include "sim/fault.hpp"
#include "sim/system.hpp"

namespace skelcl::docl {

struct NetworkSpec {
  double bandwidth_gbs = 0.117;  ///< Gigabit Ethernet payload rate (GB/s)
  double latency_us = 120.0;     ///< request round-trip cost
  // Network unreliability (fault model): every remote command is dropped
  // with `drop_rate` probability and surfaces as a transient IoError after a
  // `timeout_us` wait; the runtime's retry policy re-issues it.
  double drop_rate = 0.0;
  double timeout_us = 500.0;
  std::uint64_t fault_seed = 1;  ///< seeds the (deterministic) drop stream
};

struct DistributedConfig {
  /// The servers whose devices the client aggregates.  The client itself
  /// contributes no devices (the paper's desktop PC has none).
  std::vector<sim::SystemConfig> servers;
  NetworkSpec network;
};

/// Flatten all server devices into one platform configuration, as dOpenCL
/// presents them to the application.  Device names are prefixed with their
/// node ("node0/Tesla T10 #1"); PCIe link indices are remapped.  Topology
/// survives the flattening: every device keeps its node id and a per-node
/// NIC link (from `network`), so remote transfers contend on the shared
/// client NIC and intra-node traffic stays off the network entirely
/// (docs/CLUSTER.md).
sim::SystemConfig flatten(const DistributedConfig& config);

/// Legacy flat network model: charge every device the same client<->server
/// cost via setDeviceExtraLatency.  Superseded by the NIC topology flatten()
/// now embeds — do not combine the two on one system (double charge).
void applyNetworkModel(sim::System& system, const DistributedConfig& config);

/// Convenience: initialize the SkelCL runtime over the distributed system.
/// SkelCL code then runs unchanged — the paper's drop-in-replacement claim.
void initSkelCL(const DistributedConfig& config);

/// The paper's laboratory setup: the 4-GPU S1070 machine plus two dual-GPU
/// servers, aggregated on a client with no local devices (8 GPUs total).
DistributedConfig laboratorySetup();

/// The fault plan implied by the network spec: a seeded random network-drop
/// rule per device when drop_rate > 0 (empty plan otherwise).  initSkelCL
/// installs it automatically, merged with any SKELCL_FAULTS spec.
sim::FaultPlan networkFaultPlan(const DistributedConfig& config);

/// [first, last] flattened device ids contributed by server `node`.  A
/// static property of the config: ids of blacklisted devices stay inside
/// the range.  Use aliveServerDevices() for the current membership.
std::pair<int, int> serverDeviceRange(const DistributedConfig& config, std::size_t node);

/// All flattened device ids contributed by server `node`.
std::vector<int> serverDevices(const DistributedConfig& config, std::size_t node);

/// The subset of `alive` (e.g. Session::aliveDevices()) contributed by
/// server `node`.  Blacklisting makes the static range stale for scheduling
/// decisions; this is the helper that stays fresh.
std::vector<int> aliveServerDevices(const DistributedConfig& config, std::size_t node,
                                    const std::vector<int>& alive);

/// Model a whole server node going down: every one of its devices dies
/// permanently after `afterCommands` further commands.  SkelCL blacklists
/// them one by one as skeletons touch them and degrades onto the surviving
/// nodes.
void killServer(sim::FaultPlan& plan, const DistributedConfig& config, std::size_t node,
                int afterCommands);

}  // namespace skelcl::docl
