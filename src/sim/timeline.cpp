#include "sim/timeline.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace skelcl::sim {

Timeline::Span Timeline::reserve(double earliest, double duration) {
  SKELCL_CHECK(duration >= 0.0, "negative duration");
  std::lock_guard<std::mutex> lock(mutex_);
  Span span;
  span.start = std::max(earliest, available_);
  span.end = span.start + duration;
  available_ = span.end;
  return span;
}

double Timeline::availableAt() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return available_;
}

void Timeline::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  available_ = 0.0;
}

}  // namespace skelcl::sim
