#include "sim/system.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace skelcl::sim {

System::System(SystemConfig config) : config_(std::move(config)) {
  for (const auto& dev : config_.devices) {
    SKELCL_CHECK(dev.pcie_link < static_cast<int>(config_.links.size()),
                 "device references a link the system does not have");
    SKELCL_CHECK(dev.nic_link < static_cast<int>(config_.nics.size()),
                 "device references a NIC the system does not have");
    device_state_.push_back(std::make_unique<DeviceState>());
  }
  for (std::size_t i = 0; i < config_.links.size(); ++i) {
    links_.push_back(std::make_unique<Timeline>());
  }
  for (std::size_t i = 0; i < config_.nics.size(); ++i) {
    nics_.push_back(std::make_unique<Timeline>());
  }
}

const DeviceSpec& System::device(int index) const {
  SKELCL_CHECK(index >= 0 && index < deviceCount(), "device index out of range");
  return config_.devices[static_cast<std::size_t>(index)];
}

Timeline& System::linkOf(int device) {
  const int link = this->device(device).pcie_link;
  if (link < 0) return host_memory_;
  return *links_[static_cast<std::size_t>(link)];
}

double System::linkDuration(int device, std::uint64_t bytes) const {
  const DeviceSpec& spec = this->device(device);
  const DeviceState& state = *device_state_[static_cast<std::size_t>(device)];
  double bandwidth_gbs = spec.pcie_link < 0
                             ? config_.host_mem_bandwidth_gbs
                             : config_.links[static_cast<std::size_t>(spec.pcie_link)].bandwidth_gbs;
  double latency_s = spec.pcie_link < 0
                         ? 0.5e-6
                         : config_.links[static_cast<std::size_t>(spec.pcie_link)].latency_us * 1e-6;
  if (state.extra_bandwidth_gbs > 0.0) {
    bandwidth_gbs = std::min(bandwidth_gbs, state.extra_bandwidth_gbs);
  }
  latency_s += state.extra_latency_s;
  return latency_s + static_cast<double>(bytes) / (bandwidth_gbs * 1e9);
}

double System::nicDuration(int device, std::uint64_t bytes) const {
  const DeviceSpec& spec = this->device(device);
  if (spec.nic_link < 0) return 0.0;
  const LinkSpec& nic = config_.nics[static_cast<std::size_t>(spec.nic_link)];
  return nic.latency_us * 1e-6 + static_cast<double>(bytes) / (nic.bandwidth_gbs * 1e9);
}

double System::transferDuration(int device, std::uint64_t bytes) const {
  return linkDuration(device, bytes) + nicDuration(device, bytes);
}

Timeline::Span System::reserveTransfer(int device, std::uint64_t bytes, double earliest,
                                       double scale) {
  stats_.transfers += 1;
  stats_.bytes_transferred += bytes;
  if (bytes == 0) {
    // An empty part still costs a command round-trip (latency) but moves no
    // data: it must not occupy the link or NIC timelines and queue behind
    // bulk transfers.
    const double start = std::max(earliest, 0.0);
    return Timeline::Span{start, start + transferDuration(device, 0) * scale};
  }
  const DeviceSpec& spec = this->device(device);
  if (spec.nic_link < 0) {
    return linkOf(device).reserve(earliest, linkDuration(device, bytes) * scale);
  }
  // Remote device: the network leg holds the client NIC and the server NIC
  // together (cut-through), then the server-local PCIe leg forwards the data.
  const double net = nicDuration(device, bytes) * scale;
  const Timeline::Span client = client_nic_.reserve(earliest, net);
  const Timeline::Span server =
      nics_[static_cast<std::size_t>(spec.nic_link)]->reserve(client.start, net);
  const Timeline::Span pcie =
      linkOf(device).reserve(server.end, linkDuration(device, bytes) * scale);
  return Timeline::Span{client.start, pcie.end};
}

Timeline::Span System::reservePeerTransfer(int src, int dst, std::uint64_t bytes,
                                           double earliest, double scale) {
  const DeviceSpec& s = this->device(src);
  const DeviceSpec& d = this->device(dst);
  if (bytes > 0 && s.nic_link >= 0 && d.nic_link >= 0 && s.node == d.node) {
    // Server-local copy: both PCIe legs, no client round-trip.
    stats_.transfers += 2;
    stats_.bytes_transferred += 2 * bytes;
    const Timeline::Span down = linkOf(src).reserve(earliest, linkDuration(src, bytes) * scale);
    const Timeline::Span up = linkOf(dst).reserve(down.end, linkDuration(dst, bytes) * scale);
    return Timeline::Span{down.start, up.end};
  }
  const Timeline::Span down = reserveTransfer(src, bytes, earliest, scale);
  const Timeline::Span up = reserveTransfer(dst, bytes, down.end, scale);
  return Timeline::Span{down.start, up.end};
}

Timeline::Span System::reserveKernel(int device, std::uint64_t instructions,
                                     std::uint64_t workItems, double apiEfficiency,
                                     double launchOverheadSec, double earliest,
                                     double scale) {
  const DeviceSpec& spec = this->device(device);
  const DeviceState& state = *device_state_[static_cast<std::size_t>(device)];
  const int lanes = static_cast<int>(
      std::min<std::uint64_t>(workItems == 0 ? 1 : workItems,
                              static_cast<std::uint64_t>(spec.cores)));
  const double rate = spec.instrPerSec(apiEfficiency, lanes);
  // Remote kernels pay the network command latency in their duration (the
  // launch message crossing to the server) without occupying the NICs: a
  // launch request is a few bytes, not a bulk transfer.
  const double network_latency_s =
      state.extra_latency_s +
      (spec.nic_link >= 0
           ? config_.nics[static_cast<std::size_t>(spec.nic_link)].latency_us * 1e-6
           : 0.0);
  const double duration = (launchOverheadSec + network_latency_s +
                           static_cast<double>(instructions) / rate) *
                          scale;
  const Timeline::Span span =
      device_state_[static_cast<std::size_t>(device)]->compute.reserve(earliest, duration);
  stats_.kernel_launches += 1;
  stats_.instructions_executed += instructions;
  return span;
}

Timeline::Span System::reserveStall(int device, CommandClass cls, double seconds,
                                    double earliest) {
  Timeline& resource =
      cls == CommandClass::Kernel
          ? device_state_[static_cast<std::size_t>(device)]->compute
          : linkOf(device);
  return resource.reserve(earliest, seconds);
}

Timeline::Span System::reserveHostCompute(std::uint64_t bytesTouched, std::uint64_t flops) {
  const double mem_s =
      static_cast<double>(bytesTouched) / (config_.host_mem_bandwidth_gbs * 1e9);
  const double cpu_s = static_cast<double>(flops) / (config_.host_flops_gps * 1e9);
  const Timeline::Span span = host_cpu_.reserve(host_now_, std::max(mem_s, cpu_s));
  host_now_ = span.end;
  stats_.host_compute_ops += 1;
  return span;
}

void System::setDeviceExtraLatency(int device, double latencySec, double bandwidthGbs) {
  SKELCL_CHECK(device >= 0 && device < deviceCount(), "device index out of range");
  auto& state = *device_state_[static_cast<std::size_t>(device)];
  state.extra_latency_s = latencySec;
  state.extra_bandwidth_gbs = bandwidthGbs;
}

void System::advanceHost(double t) { host_now_ = std::max(host_now_, t); }

void System::resetClock() {
  for (auto& state : device_state_) state->compute.reset();
  for (auto& link : links_) link->reset();
  for (auto& nic : nics_) nic->reset();
  client_nic_.reset();
  host_memory_.reset();
  host_cpu_.reset();
  host_now_ = 0.0;
  ++clock_epoch_;
  stats_ = Stats{};
}

}  // namespace skelcl::sim
