#include "sim/system.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace skelcl::sim {

System::System(SystemConfig config) : config_(std::move(config)) {
  for (const auto& dev : config_.devices) {
    SKELCL_CHECK(dev.pcie_link < static_cast<int>(config_.links.size()),
                 "device references a link the system does not have");
    device_state_.push_back(std::make_unique<DeviceState>());
  }
  for (std::size_t i = 0; i < config_.links.size(); ++i) {
    links_.push_back(std::make_unique<Timeline>());
  }
}

const DeviceSpec& System::device(int index) const {
  SKELCL_CHECK(index >= 0 && index < deviceCount(), "device index out of range");
  return config_.devices[static_cast<std::size_t>(index)];
}

Timeline& System::linkOf(int device) {
  const int link = this->device(device).pcie_link;
  if (link < 0) return host_memory_;
  return *links_[static_cast<std::size_t>(link)];
}

double System::transferDuration(int device, std::uint64_t bytes) const {
  const DeviceSpec& spec = this->device(device);
  const DeviceState& state = *device_state_[static_cast<std::size_t>(device)];
  double bandwidth_gbs = spec.pcie_link < 0
                             ? config_.host_mem_bandwidth_gbs
                             : config_.links[static_cast<std::size_t>(spec.pcie_link)].bandwidth_gbs;
  double latency_s = spec.pcie_link < 0
                         ? 0.5e-6
                         : config_.links[static_cast<std::size_t>(spec.pcie_link)].latency_us * 1e-6;
  if (state.extra_bandwidth_gbs > 0.0) {
    bandwidth_gbs = std::min(bandwidth_gbs, state.extra_bandwidth_gbs);
  }
  latency_s += state.extra_latency_s;
  return latency_s + static_cast<double>(bytes) / (bandwidth_gbs * 1e9);
}

Timeline::Span System::reserveTransfer(int device, std::uint64_t bytes, double earliest,
                                       double scale) {
  const double duration = transferDuration(device, bytes) * scale;
  const Timeline::Span span = linkOf(device).reserve(earliest, duration);
  stats_.transfers += 1;
  stats_.bytes_transferred += bytes;
  return span;
}

Timeline::Span System::reservePeerTransfer(int src, int dst, std::uint64_t bytes,
                                           double earliest, double scale) {
  const Timeline::Span down = reserveTransfer(src, bytes, earliest, scale);
  const Timeline::Span up = reserveTransfer(dst, bytes, down.end, scale);
  return Timeline::Span{down.start, up.end};
}

Timeline::Span System::reserveKernel(int device, std::uint64_t instructions,
                                     std::uint64_t workItems, double apiEfficiency,
                                     double launchOverheadSec, double earliest,
                                     double scale) {
  const DeviceSpec& spec = this->device(device);
  const DeviceState& state = *device_state_[static_cast<std::size_t>(device)];
  const int lanes = static_cast<int>(
      std::min<std::uint64_t>(workItems == 0 ? 1 : workItems,
                              static_cast<std::uint64_t>(spec.cores)));
  const double rate = spec.instrPerSec(apiEfficiency, lanes);
  const double duration = (launchOverheadSec + state.extra_latency_s +
                           static_cast<double>(instructions) / rate) *
                          scale;
  const Timeline::Span span =
      device_state_[static_cast<std::size_t>(device)]->compute.reserve(earliest, duration);
  stats_.kernel_launches += 1;
  stats_.instructions_executed += instructions;
  return span;
}

Timeline::Span System::reserveStall(int device, CommandClass cls, double seconds,
                                    double earliest) {
  Timeline& resource =
      cls == CommandClass::Kernel
          ? device_state_[static_cast<std::size_t>(device)]->compute
          : linkOf(device);
  return resource.reserve(earliest, seconds);
}

Timeline::Span System::reserveHostCompute(std::uint64_t bytesTouched, std::uint64_t flops) {
  const double mem_s =
      static_cast<double>(bytesTouched) / (config_.host_mem_bandwidth_gbs * 1e9);
  const double cpu_s = static_cast<double>(flops) / (config_.host_flops_gps * 1e9);
  const Timeline::Span span = host_cpu_.reserve(host_now_, std::max(mem_s, cpu_s));
  host_now_ = span.end;
  stats_.host_compute_ops += 1;
  return span;
}

void System::setDeviceExtraLatency(int device, double latencySec, double bandwidthGbs) {
  SKELCL_CHECK(device >= 0 && device < deviceCount(), "device index out of range");
  auto& state = *device_state_[static_cast<std::size_t>(device)];
  state.extra_latency_s = latencySec;
  state.extra_bandwidth_gbs = bandwidthGbs;
}

void System::advanceHost(double t) { host_now_ = std::max(host_now_, t); }

void System::resetClock() {
  for (auto& state : device_state_) state->compute.reset();
  for (auto& link : links_) link->reset();
  host_memory_.reset();
  host_cpu_.reset();
  host_now_ = 0.0;
  ++clock_epoch_;
  stats_ = Stats{};
}

}  // namespace skelcl::sim
