#include "sim/fault.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>

#include "base/error.hpp"

namespace skelcl::sim {

FaultPlan& FaultPlan::retries(int maxAttempts) {
  SKELCL_CHECK(maxAttempts >= 1, "retry policy needs at least one attempt");
  policy_.max_attempts = maxAttempts;
  policy_explicit_ = true;
  return *this;
}

FaultPlan& FaultPlan::backoff(double baseSeconds, double multiplier) {
  SKELCL_CHECK(baseSeconds >= 0.0 && multiplier >= 1.0, "invalid backoff parameters");
  policy_.base_backoff_s = baseSeconds;
  policy_.multiplier = multiplier;
  policy_explicit_ = true;
  return *this;
}

FaultPlan& FaultPlan::failTransfers(int device, int count) {
  Rule r;
  r.kind = Rule::Kind::Transient;
  r.device = device;
  r.cls = CommandClass::Transfer;
  r.count = count;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::failKernels(int device, int count) {
  Rule r;
  r.kind = Rule::Kind::Transient;
  r.device = device;
  r.cls = CommandClass::Kernel;
  r.count = count;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::failRandomly(int device, CommandClass cls, double probability) {
  SKELCL_CHECK(probability >= 0.0 && probability <= 1.0, "probability out of range");
  Rule r;
  r.kind = Rule::Kind::Random;
  r.device = device;
  r.cls = cls;
  r.probability = probability;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::dropNetwork(int device, int count, double timeoutSeconds) {
  Rule r;
  r.kind = Rule::Kind::Network;
  r.device = device;
  r.any_class = true;
  r.count = count;
  r.time_s = timeoutSeconds;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::dropNetworkRandomly(int device, double probability,
                                          double timeoutSeconds, std::uint64_t seed) {
  SKELCL_CHECK(probability >= 0.0 && probability <= 1.0, "probability out of range");
  Rule r;
  r.kind = Rule::Kind::Network;
  r.device = device;
  r.any_class = true;
  r.count = 0;  // probabilistic
  r.probability = probability;
  r.time_s = timeoutSeconds;
  r.seed = seed;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::slowDevice(int device, double factor, int count) {
  SKELCL_CHECK(factor >= 1.0, "slowdown factor must be >= 1");
  SKELCL_CHECK(count >= 0, "slowdown count must be >= 0");
  Rule r;
  r.kind = Rule::Kind::Slowdown;
  r.device = device;
  r.any_class = true;
  r.count = count;  // 0 = persistent
  r.factor = factor;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::hangCommands(int device, int count) {
  SKELCL_CHECK(count >= 1, "hang rules need a positive count");
  Rule r;
  r.kind = Rule::Kind::Hang;
  r.device = device;
  r.any_class = true;
  r.count = count;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::killAfterCommands(int device, int commands) {
  SKELCL_CHECK(device >= 0, "kill rules need a concrete device");
  Rule r;
  r.kind = Rule::Kind::KillAfter;
  r.device = device;
  r.count = commands;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::killAtTime(int device, double simSeconds) {
  SKELCL_CHECK(device >= 0, "kill rules need a concrete device");
  Rule r;
  r.kind = Rule::Kind::KillAt;
  r.device = device;
  r.time_s = simSeconds;
  rules_.push_back(r);
  return *this;
}

FaultPlan& FaultPlan::limitMemory(int device, std::uint64_t bytes) {
  SKELCL_CHECK(device >= 0, "memory caps need a concrete device");
  memory_caps_.emplace_back(device, bytes);
  return *this;
}

FaultPlan& FaultPlan::merge(const FaultPlan& other) {
  rules_.insert(rules_.end(), other.rules_.begin(), other.rules_.end());
  memory_caps_.insert(memory_caps_.end(), other.memory_caps_.begin(),
                      other.memory_caps_.end());
  if (other.policy_explicit_) {
    policy_ = other.policy_;
    policy_explicit_ = true;
  }
  if (other.seed_ != 0) seed_ = other.seed_;
  return *this;
}

namespace {

[[noreturn]] void badSpec(const std::string& clause, const std::string& why) {
  throw UsageError("SKELCL_FAULTS: bad clause '" + clause + "': " + why);
}

std::vector<std::string> splitOn(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

/// Strict integer parse: the whole of `digits` must be a base-10 number.
/// Rejects empty strings, signs, and trailing garbage — "abc", "3x" and ""
/// all throw, naming the offending token, instead of silently becoming 0/3.
long long parseInt(const std::string& clause, const std::string& token,
                   const std::string& digits) {
  if (digits.empty()) badSpec(clause, "missing number in '" + token + "'");
  for (const char c : digits) {
    if (c < '0' || c > '9') badSpec(clause, "bad number '" + token + "'");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(digits.c_str(), &end, 10);
  if (errno == ERANGE || end != digits.c_str() + digits.size()) {
    badSpec(clause, "bad number '" + token + "'");
  }
  return v;
}

/// Strict unsigned parse (seed, byte counts).
std::uint64_t parseU64(const std::string& clause, const std::string& token,
                       const std::string& digits) {
  if (digits.empty()) badSpec(clause, "missing number in '" + token + "'");
  for (const char c : digits) {
    if (c < '0' || c > '9') badSpec(clause, "bad number '" + token + "'");
  }
  errno = 0;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(digits.c_str(), &end, 10);
  if (errno == ERANGE || end != digits.c_str() + digits.size()) {
    badSpec(clause, "bad number '" + token + "'");
  }
  return v;
}

/// Strict floating-point parse: the whole of `digits` must be a number.
double parseFloat(const std::string& clause, const std::string& token,
                  const std::string& digits) {
  if (digits.empty()) badSpec(clause, "missing number in '" + token + "'");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(digits.c_str(), &end);
  if (errno == ERANGE || end != digits.c_str() + digits.size()) {
    badSpec(clause, "bad number '" + token + "'");
  }
  return v;
}

/// "dev3" -> 3, "dev*" -> -1.
int parseDevice(const std::string& clause, const std::string& token) {
  if (token.rfind("dev", 0) != 0) badSpec(clause, "expected devN or dev*");
  const std::string rest = token.substr(3);
  if (rest == "*") return -1;
  const long long dev = parseInt(clause, token, rest);
  if (dev > 1 << 20) badSpec(clause, "bad device '" + token + "'");
  return static_cast<int>(dev);
}

/// "200us" / "5ms" / "0.01s" / bare seconds -> seconds.
double parseTime(const std::string& clause, const std::string& token) {
  double scale = 1.0;
  std::string num = token;
  if (token.size() > 2 && token.compare(token.size() - 2, 2, "us") == 0) {
    scale = 1e-6;
    num = token.substr(0, token.size() - 2);
  } else if (token.size() > 2 && token.compare(token.size() - 2, 2, "ms") == 0) {
    scale = 1e-3;
    num = token.substr(0, token.size() - 2);
  } else if (!token.empty() && token.back() == 's') {
    num = token.substr(0, token.size() - 1);
  }
  return parseFloat(clause, token, num) * scale;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& clause : splitOn(spec, ';')) {
    if (clause.empty()) continue;
    const std::vector<std::string> t = splitOn(clause, ':');
    const std::string& head = t[0];
    auto need = [&](std::size_t n) {
      if (t.size() != n) badSpec(clause, "expected " + std::to_string(n) + " tokens");
    };
    if (head == "seed") {
      need(2);
      plan.seed_ = parseU64(clause, t[1], t[1]);
    } else if (head == "retries") {
      need(2);
      plan.retries(static_cast<int>(parseInt(clause, t[1], t[1])));
    } else if (head == "backoff") {
      need(2);
      plan.backoff(parseTime(clause, t[1]));
    } else if (head == "transfer" || head == "kernel") {
      need(3);
      const int dev = parseDevice(clause, t[1]);
      const CommandClass cls =
          head == "transfer" ? CommandClass::Transfer : CommandClass::Kernel;
      if (t[2].rfind("count", 0) == 0) {
        const int n = static_cast<int>(parseInt(clause, t[2], t[2].substr(5)));
        if (n <= 0) badSpec(clause, "count must be positive");
        if (cls == CommandClass::Transfer) {
          plan.failTransfers(dev, n);
        } else {
          plan.failKernels(dev, n);
        }
      } else if (t[2].rfind("p", 0) == 0) {
        plan.failRandomly(dev, cls, parseFloat(clause, t[2], t[2].substr(1)));
      } else {
        badSpec(clause, "expected countN or pF");
      }
    } else if (head == "net") {
      if (t.size() != 3 && t.size() != 4) badSpec(clause, "expected 3 or 4 tokens");
      const int dev = parseDevice(clause, t[1]);
      const double timeout =
          t.size() == 4 ? parseTime(clause, t[3].rfind("timeout", 0) == 0
                                                ? t[3].substr(7)
                                                : t[3])
                        : 500e-6;
      if (t[2].rfind("count", 0) == 0) {
        const int n = static_cast<int>(parseInt(clause, t[2], t[2].substr(5)));
        if (n <= 0) badSpec(clause, "count must be positive");
        plan.dropNetwork(dev, n, timeout);
      } else if (t[2].rfind("p", 0) == 0) {
        plan.dropNetworkRandomly(dev, parseFloat(clause, t[2], t[2].substr(1)), timeout);
      } else {
        badSpec(clause, "expected countN or pF");
      }
    } else if (head == "kill") {
      need(3);
      const int dev = parseDevice(clause, t[1]);
      if (dev < 0) badSpec(clause, "kill rules need a concrete device");
      if (t[2].rfind("after", 0) == 0) {
        plan.killAfterCommands(dev, static_cast<int>(parseInt(clause, t[2], t[2].substr(5))));
      } else if (t[2].rfind("at", 0) == 0) {
        plan.killAtTime(dev, parseTime(clause, t[2].substr(2)));
      } else {
        badSpec(clause, "expected afterN or atT");
      }
    } else if (head == "slow") {
      if (t.size() != 3 && t.size() != 4) badSpec(clause, "expected 3 or 4 tokens");
      const int dev = parseDevice(clause, t[1]);
      if (t[2].rfind("x", 0) != 0) badSpec(clause, "expected xF (slowdown factor)");
      const double factor = parseFloat(clause, t[2], t[2].substr(1));
      if (factor < 1.0) badSpec(clause, "slowdown factor must be >= 1");
      int count = 0;  // persistent
      if (t.size() == 4) {
        if (t[3].rfind("count", 0) != 0) badSpec(clause, "expected countN");
        count = static_cast<int>(parseInt(clause, t[3], t[3].substr(5)));
        if (count <= 0) badSpec(clause, "count must be positive");
      }
      plan.slowDevice(dev, factor, count);
    } else if (head == "hang") {
      if (t.size() != 2 && t.size() != 3) badSpec(clause, "expected 2 or 3 tokens");
      const int dev = parseDevice(clause, t[1]);
      int count = 1;
      if (t.size() == 3) {
        if (t[2].rfind("count", 0) != 0) badSpec(clause, "expected countN");
        count = static_cast<int>(parseInt(clause, t[2], t[2].substr(5)));
        if (count <= 0) badSpec(clause, "count must be positive");
      }
      plan.hangCommands(dev, count);
    } else if (head == "oom") {
      need(3);
      const int dev = parseDevice(clause, t[1]);
      if (dev < 0) badSpec(clause, "memory caps need a concrete device");
      if (t[2].rfind("bytes", 0) != 0) badSpec(clause, "expected bytesN");
      plan.limitMemory(dev, parseU64(clause, t[2], t[2].substr(5)));
    } else {
      badSpec(clause, "unknown clause kind");
    }
  }
  return plan;
}

FaultPlan FaultPlan::fromEnv() {
  const char* spec = std::getenv("SKELCL_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return FaultPlan{};
  return parse(spec);
}

// ---------------------------------------------------------------------------

void FaultInjector::install(FaultPlan plan) {
  plan_ = std::move(plan);
  active_ = !plan_.empty();
  remaining_.clear();
  rule_rngs_.clear();
  for (std::size_t i = 0; i < plan_.rules_.size(); ++i) {
    const FaultPlan::Rule& r = plan_.rules_[i];
    remaining_.push_back(r.count);
    // Every probabilistic rule draws from its own stream: a shared stream
    // would make "independent" drops on different devices correlated through
    // the interleaving of their command streams.
    rule_rngs_.emplace_back(r.seed != 0
                                ? r.seed
                                : plan_.seed_ ^ (0x9e3779b97f4a7c15ull * (i + 1)));
  }
  counts_.clear();
  dead_.clear();
}

void FaultInjector::ensureDevice(int device) {
  const auto need = static_cast<std::size_t>(device) + 1;
  if (counts_.size() < need) counts_.resize(need, 0);
  if (dead_.size() < need) dead_.resize(need, 0);
}

bool FaultInjector::deviceDead(int device) const {
  return device >= 0 && static_cast<std::size_t>(device) < dead_.size() &&
         dead_[static_cast<std::size_t>(device)] != 0;
}

std::uint64_t FaultInjector::memoryCap(int device) const {
  std::uint64_t cap = std::numeric_limits<std::uint64_t>::max();
  for (const auto& [dev, bytes] : plan_.memory_caps_) {
    if (dev == device) cap = std::min(cap, bytes);
  }
  return cap;
}

std::uint64_t FaultInjector::commandCount(int device) const {
  if (device < 0 || static_cast<std::size_t>(device) >= counts_.size()) return 0;
  return counts_[static_cast<std::size_t>(device)];
}

FaultDecision FaultInjector::lost(const std::string& why) {
  FaultDecision d;
  d.kind = FaultDecision::Kind::DeviceLost;
  d.status = status::DeviceNotAvailable;
  d.what = why;
  return d;
}

FaultDecision FaultInjector::onCommand(int device, CommandClass cls, double now) {
  if (!active_ || device < 0) return {};
  ensureDevice(device);
  const std::uint64_t n = ++counts_[static_cast<std::size_t>(device)];

  if (dead_[static_cast<std::size_t>(device)]) {
    return lost("device previously failed (CL_DEVICE_NOT_AVAILABLE)");
  }

  // Kill rules first: death preempts any transient fault.
  for (const FaultPlan::Rule& r : plan_.rules_) {
    if (r.device != device) continue;
    if (r.kind == FaultPlan::Rule::Kind::KillAfter && n > static_cast<std::uint64_t>(r.count)) {
      dead_[static_cast<std::size_t>(device)] = 1;
      return lost("device died after " + std::to_string(r.count) + " commands");
    }
    if (r.kind == FaultPlan::Rule::Kind::KillAt && now >= r.time_s) {
      dead_[static_cast<std::size_t>(device)] = 1;
      return lost("device died at t=" + std::to_string(r.time_s) + "s");
    }
  }

  // Transient rules in declaration order; first match wins.
  for (std::size_t i = 0; i < plan_.rules_.size(); ++i) {
    const FaultPlan::Rule& r = plan_.rules_[i];
    if (r.device != -1 && r.device != device) continue;
    if (!r.any_class && r.kind != FaultPlan::Rule::Kind::KillAfter &&
        r.kind != FaultPlan::Rule::Kind::KillAt && r.cls != cls) {
      continue;
    }
    FaultDecision d;
    switch (r.kind) {
      case FaultPlan::Rule::Kind::Transient:
        if (remaining_[i] <= 0) continue;
        --remaining_[i];
        d.kind = FaultDecision::Kind::Transient;
        d.status = cls == CommandClass::Kernel ? status::OutOfResources : status::IoError;
        d.what = cls == CommandClass::Kernel
                     ? "injected transient kernel fault (CL_OUT_OF_RESOURCES)"
                     : "injected transient transfer fault";
        return d;
      case FaultPlan::Rule::Kind::Random:
        if (rule_rngs_[i].nextDouble() >= r.probability) continue;
        d.kind = FaultDecision::Kind::Transient;
        d.status = cls == CommandClass::Kernel ? status::OutOfResources : status::IoError;
        d.what = "injected random fault";
        return d;
      case FaultPlan::Rule::Kind::Network:
        if (r.count > 0) {
          if (remaining_[i] <= 0) continue;
          --remaining_[i];
        } else if (rule_rngs_[i].nextDouble() >= r.probability) {
          continue;
        }
        d.kind = FaultDecision::Kind::Transient;
        d.status = status::IoError;
        d.extra_delay_s = r.time_s;
        d.what = "network drop: remote command timed out after " +
                 std::to_string(r.time_s) + "s";
        return d;
      case FaultPlan::Rule::Kind::Slowdown:
        if (r.count > 0) {  // windowed; count 0 = persistent
          if (remaining_[i] <= 0) continue;
          --remaining_[i];
        }
        d.kind = FaultDecision::Kind::Slow;
        d.slow_factor = r.factor;
        d.what = "injected slowdown (x" + std::to_string(r.factor) + ")";
        return d;
      case FaultPlan::Rule::Kind::Hang:
        if (remaining_[i] <= 0) continue;
        --remaining_[i];
        d.kind = FaultDecision::Kind::Hang;
        d.status = status::WatchdogTimeout;
        d.what = "injected hang: command never completed";
        return d;
      case FaultPlan::Rule::Kind::KillAfter:
      case FaultPlan::Rule::Kind::KillAt:
        continue;  // handled above
    }
  }
  return {};
}

}  // namespace skelcl::sim
