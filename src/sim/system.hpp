// The simulated machine: devices, interconnects and their timelines.
//
// Commands are *executed eagerly* (the kernel VM computes real results) while
// the *time* they would take on the modeled hardware is accounted on resource
// timelines.  Benchmarks report this simulated time; correctness tests look
// only at the computed data.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/device_spec.hpp"
#include "sim/fault.hpp"
#include "sim/timeline.hpp"

namespace skelcl::sim {

/// Cumulative counters, useful for ablation benchmarks (e.g. the lazy-copying
/// experiment counts transfers avoided).
struct Stats {
  std::uint64_t transfers = 0;
  std::uint64_t bytes_transferred = 0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t instructions_executed = 0;
  std::uint64_t host_compute_ops = 0;
};

/// Watchdog over straggling and hung commands (docs/ROBUSTNESS.md).  A
/// command whose injected slowdown exceeds `slackFactor` — or that hangs
/// outright — is aborted at its deadline: `max(minDeadlineSeconds,
/// slackFactor * nominal duration)` past its start.  The decision uses only
/// the slack comparison, never wall/sim time, so it is deterministic and
/// mirrorable by the clock-free reference model.  With the watchdog disabled
/// a hang stalls its device for `hangStallSeconds` and then completes.
struct WatchdogConfig {
  bool enabled = true;
  double slackFactor = 4.0;          ///< tolerated duration multiplier
  double minDeadlineSeconds = 200e-6;  ///< floor for very short commands
  double hangStallSeconds = 3600.0;  ///< watchdog-off cost of a hang
};

class System {
 public:
  explicit System(SystemConfig config);

  const SystemConfig& config() const { return config_; }
  int deviceCount() const { return static_cast<int>(config_.devices.size()); }
  const DeviceSpec& device(int index) const;

  /// Host<->device transfer of `bytes` over the device's link, starting no
  /// earlier than `earliest`.  `scale` stretches the duration (injected
  /// slowdowns the watchdog tolerates).  For a remote device (nic_link >= 0)
  /// the network leg occupies both the client NIC and the server's NIC
  /// (cut-through: the server starts receiving as the client sends), then
  /// the server-local PCIe leg forwards to the device.  Zero-byte transfers
  /// pay command latency only and occupy no timeline — an empty part must
  /// not queue behind bulk traffic.
  Timeline::Span reserveTransfer(int device, std::uint64_t bytes, double earliest,
                                 double scale = 1.0);

  /// Device-to-device copy, host-mediated as on pre-peer-access hardware:
  /// a download over the source link followed by an upload over the
  /// destination link.  If both devices share one link the two halves
  /// serialize on it automatically.  When both devices sit on the *same
  /// cluster node* the copy is server-local: it uses the two PCIe legs only
  /// and never touches the NICs (the payoff of node-aware distributions,
  /// docs/CLUSTER.md).
  Timeline::Span reservePeerTransfer(int src, int dst, std::uint64_t bytes, double earliest,
                                     double scale = 1.0);

  /// Kernel execution of `instructions` total VM instructions spread over
  /// `workItems` items, launched through an API with efficiency
  /// `apiEfficiency` and fixed overhead `launchOverheadSec`.
  Timeline::Span reserveKernel(int device, std::uint64_t instructions,
                               std::uint64_t workItems, double apiEfficiency,
                               double launchOverheadSec, double earliest,
                               double scale = 1.0);

  /// Book `seconds` of dead time on the resource a command of class `cls`
  /// would have occupied: a watchdog deadline wait, or the full stall of an
  /// unwatched hang.  The device (or its link) is genuinely busy while the
  /// command dangles — other work queued behind it is delayed, which is what
  /// makes stragglers expensive.
  Timeline::Span reserveStall(int device, CommandClass cls, double seconds, double earliest);

  /// The modeled duration of a fault-free transfer of `bytes` to `device`
  /// (no reservation).  The watchdog derives transfer deadlines from it.
  double nominalTransferSeconds(int device, std::uint64_t bytes) const {
    return transferDuration(device, bytes);
  }

  /// Watchdog configuration (process-wide, survives resetClock()).
  const WatchdogConfig& watchdog() const { return watchdog_; }
  void setWatchdog(const WatchdogConfig& config) { watchdog_ = config; }

  /// Host-side computation touching `bytesTouched` of memory and performing
  /// `flops` scalar operations (whichever bound is larger wins).  Advances
  /// the host clock: host work is always program-ordered.
  Timeline::Span reserveHostCompute(std::uint64_t bytesTouched, std::uint64_t flops);

  /// Extra latency applied to every command aimed at `device` (used by the
  /// dOpenCL layer to model the client->server network hop).
  void setDeviceExtraLatency(int device, double latencySec, double bandwidthGbs);

  /// Program-order host clock.
  double hostNow() const { return host_now_; }
  /// Move the host clock forward to `t` (blocking waits); never backwards.
  void advanceHost(double t);

  /// Zero all timelines, the host clock and the statistics.
  void resetClock();

  /// Generation counter of the simulated clock, bumped by resetClock().
  /// Events carrying an older epoch refer to a dead clock and must not be
  /// used as dependency times.
  std::uint64_t clockEpoch() const { return clock_epoch_; }

  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

  /// The fault injector applied to this machine's command stream.  Empty by
  /// default; install a FaultPlan to make commands fail (the plan survives
  /// resetClock(): injected hardware state is not simulated time).
  FaultInjector& faults() { return faults_; }
  const FaultInjector& faults() const { return faults_; }

 private:
  struct DeviceState {
    Timeline compute;
    double extra_latency_s = 0.0;      ///< network hop (dOpenCL)
    double extra_bandwidth_gbs = 0.0;  ///< 0 = no extra bandwidth bound
  };

  double transferDuration(int device, std::uint64_t bytes) const;
  double linkDuration(int device, std::uint64_t bytes) const;
  double nicDuration(int device, std::uint64_t bytes) const;
  Timeline& linkOf(int device);

  SystemConfig config_;
  std::vector<std::unique_ptr<DeviceState>> device_state_;
  std::vector<std::unique_ptr<Timeline>> links_;
  std::vector<std::unique_ptr<Timeline>> nics_;  ///< per-server-node NICs
  Timeline client_nic_;   ///< the client machine's single NIC: every remote
                          ///< command funnels through it (the paper's
                          ///< Section V serialization point)
  Timeline host_memory_;  ///< link stand-in for host-integrated (CPU) devices
  Timeline host_cpu_;     ///< host-side staging/combining work
  double host_now_ = 0.0;
  std::uint64_t clock_epoch_ = 0;
  Stats stats_;
  FaultInjector faults_;
  WatchdogConfig watchdog_;
};

}  // namespace skelcl::sim
