#include "sim/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>

namespace skelcl::sim {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // The calling thread participates in parallelFor, so spawn one fewer.
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallelFor(std::uint64_t count,
                             const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  if (count == 0) return;
  const unsigned parts = size();
  if (parts == 1 || count < 2 * parts) {
    body(0, count);
    return;
  }

  const std::uint64_t chunk = (count + parts - 1) / parts;
  std::atomic<unsigned> remaining{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::condition_variable done_cv;
  std::mutex done_mutex;

  auto run_chunk = [&](std::uint64_t begin, std::uint64_t end) {
    try {
      body(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
    if (remaining.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(done_mutex);
      done_cv.notify_all();
    }
  };

  std::uint64_t submitted_end = chunk;  // first chunk runs on the caller
  unsigned queued = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::uint64_t begin = chunk; begin < count; begin += chunk) {
      const std::uint64_t end = std::min(begin + chunk, count);
      ++queued;
      tasks_.emplace([&, begin, end] { run_chunk(begin, end); });
    }
  }
  remaining.store(queued + 1);
  cv_.notify_all();
  run_chunk(0, submitted_end);

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("SKELCL_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<unsigned>(n);
    }
    return 0u;
  }());
  return pool;
}

}  // namespace skelcl::sim
