// Hardware description of the simulated systems.
//
// The paper's testbed is an NVIDIA Tesla S1070 (4 Tesla T10 GPUs, 240
// streaming processors each, 4 GB dedicated memory, attached to the host by
// two PCIe interfaces, two GPUs sharing each interface) driven by a quad-core
// Intel Xeon E5520.  This module describes such systems as data so that the
// simulated OpenCL runtime (src/ocl) can model where time is spent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace skelcl::sim {

enum class DeviceType { GPU, CPU, Accelerator };

/// Returns a short human-readable name ("GPU", "CPU", ...).
const char* toString(DeviceType t);

/// Static description of one simulated compute device.
///
/// `ipc` is the *effective sustained* VM instructions per cycle per core for
/// irregular data-parallel kernels.  It is deliberately far below 1.0 for
/// GPUs: one bytecode instruction of the kernel VM implies several memory
/// touches, and the paper's kernels (ray traversal with scattered atomics)
/// run nowhere near peak ALU rate on real hardware either.
struct DeviceSpec {
  std::string name;
  DeviceType type = DeviceType::GPU;
  int cores = 1;               ///< parallel hardware lanes
  double clock_ghz = 1.0;      ///< core clock
  double ipc = 1.0;            ///< sustained VM-instructions / cycle / core
  std::uint64_t mem_bytes = 0; ///< dedicated memory capacity
  int pcie_link = -1;          ///< index into SystemConfig::links; -1 = host-integrated
  int node = 0;                ///< cluster node hosting the device (0 = client machine)
  int nic_link = -1;           ///< index into SystemConfig::nics; -1 = local device
  double launch_overhead_ocl_us = 12.0;  ///< kernel launch cost via the OpenCL-style API
  double launch_overhead_cuda_us = 8.0;  ///< kernel launch cost via the CUDA-style API

  /// Sustained instruction throughput in instructions/second when `activeLanes`
  /// work-items are available and the runtime API reaches `apiEfficiency` of
  /// the driver-limited rate.
  double instrPerSec(double apiEfficiency, int activeLanes) const;
};

/// One host<->device interconnect (PCIe link, or host memory bus for CPUs).
struct LinkSpec {
  std::string name;
  double bandwidth_gbs = 5.2;  ///< GB/s
  double latency_us = 20.0;    ///< per-transfer fixed cost
};

/// A whole simulated machine: devices plus the interconnects they share.
struct SystemConfig {
  std::string name;
  std::vector<DeviceSpec> devices;
  std::vector<LinkSpec> links;
  /// Per-server-node network interfaces (docl clusters).  A device with
  /// `nic_link >= 0` sits behind `nics[nic_link]`; all remote traffic
  /// additionally funnels through the client machine's single NIC.
  std::vector<LinkSpec> nics;
  double host_mem_bandwidth_gbs = 12.0;  ///< for host-side data staging work
  double host_flops_gps = 9.0;           ///< host scalar compute rate (Gflop/s)

  /// Number of distinct cluster nodes (max device node id + 1; 1 when every
  /// device is local).
  int nodeCount() const;
  bool multiNode() const { return nodeCount() > 1; }

  /// The paper's Tesla S1070 testbed restricted to `numGpus` in {1,2,4} GPUs.
  /// Two GPUs share each PCIe link, as on the real S1070.
  static SystemConfig teslaS1070(int numGpus);

  /// Section V's heterogeneous laboratory machine: one multi-core CPU device
  /// plus two GPUs with clearly different characteristics.
  static SystemConfig heterogeneousLab();

  /// A machine exposing only the host CPU as an OpenCL device.
  static SystemConfig cpuOnly();

  /// `numNodes` dual-GPU servers for the dOpenCL experiments (Section V).
  static SystemConfig dualGpuServer();
};

}  // namespace skelcl::sim
