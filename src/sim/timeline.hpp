// Resource timelines for the discrete-event cost model.
//
// Every serially-usable resource of the simulated machine (a device's compute
// engine, a PCIe link, the host CPU) is a Timeline.  Commands reserve a span
// on the timeline; a reservation starts no earlier than both the caller's
// dependency time and the point where the resource becomes free, which is how
// contention (e.g. two GPUs sharing one PCIe link) emerges in the model.
#pragma once

#include <mutex>

namespace skelcl::sim {

class Timeline {
 public:
  /// A reserved interval of simulated time, in seconds.
  struct Span {
    double start = 0.0;
    double end = 0.0;
    double duration() const { return end - start; }
  };

  /// Reserve `duration` seconds starting no earlier than `earliest`.
  Span reserve(double earliest, double duration);

  /// The time at which the resource next becomes free.
  double availableAt() const;

  /// Reset the resource to time zero (between benchmark repetitions).
  void reset();

 private:
  mutable std::mutex mutex_;
  double available_ = 0.0;
};

}  // namespace skelcl::sim
