// Deterministic, seeded fault injection for the simulated machine.
//
// A FaultPlan describes *what* should go wrong (transient transfer/kernel
// failures, dOpenCL network drops with timeouts, permanent device death,
// modeled VRAM exhaustion); a FaultInjector, owned by sim::System, applies
// it to the command stream.  Decisions depend only on the plan's seed and on
// the (deterministic) order of enqueued commands, so a failing run replays
// bit-identically — the property every fault-tolerance test relies on.
//
// Plans come from code (builder API) or from the SKELCL_FAULTS environment
// variable; the grammar is documented in docs/ROBUSTNESS.md and FaultPlan::parse.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace skelcl::sim {

/// Coarse command classification used by fault rules.  Transfers cover
/// writes, reads, copies and fills; kernels cover NDRange launches.
enum class CommandClass { Transfer, Kernel };

/// CL-style status codes carried by failed events and CommandErrors.
namespace status {
inline constexpr int Success = 0;
inline constexpr int DeviceNotAvailable = -2;          ///< permanent device death
inline constexpr int MemObjectAllocationFailure = -4;  ///< modeled VRAM exhaustion
inline constexpr int OutOfResources = -5;              ///< transient kernel fault
inline constexpr int ExecStatusError = -14;            ///< dependency failed; command skipped
inline constexpr int IoError = -2001;                  ///< dOpenCL network drop / transfer fault
inline constexpr int WatchdogTimeout = -2002;          ///< command exceeded its watchdog deadline
}  // namespace status

/// Bounded exponential backoff for transient faults.  The delay after the
/// n-th failed attempt is base * multiplier^(n-1); after max_attempts the
/// failure is surfaced to the caller.
struct RetryPolicy {
  int max_attempts = 4;
  double base_backoff_s = 100e-6;
  double multiplier = 2.0;

  double backoffAfter(int failedAttempts) const {
    double d = base_backoff_s;
    for (int i = 1; i < failedAttempts; ++i) d *= multiplier;
    return d;
  }
};

/// What the injector decided for one command.
struct FaultDecision {
  enum class Kind {
    None,        ///< command proceeds normally
    Transient,   ///< command fails this time; a retry may succeed
    DeviceLost,  ///< device is permanently gone
    Slow,        ///< command completes, but takes `slow_factor` times longer
    Hang,        ///< command never completes on its own (watchdog territory)
  };
  Kind kind = Kind::None;
  int status = status::Success;
  double extra_delay_s = 0.0;   ///< time burned before the failure surfaces (timeouts)
  double slow_factor = 1.0;     ///< duration multiplier for Kind::Slow
  std::string what;             ///< human-readable cause for the error message
};

/// A declarative description of the faults to inject.  Rules are evaluated
/// in declaration order; the first matching rule wins.
class FaultPlan {
 public:
  struct Rule {
    enum class Kind {
      Transient,  ///< fail the next `count` matching commands, then succeed
      Random,     ///< fail each matching command with `probability`
      Network,    ///< like Transient/Random but with a timeout delay (dOpenCL)
      KillAfter,  ///< device dies when its command count exceeds `count`
      KillAt,     ///< device dies at simulated time `time_s`
      Slowdown,   ///< commands take `factor` times longer (count 0 = forever)
      Hang,       ///< the next `count` matching commands never complete
    };
    Kind kind = Kind::Transient;
    int device = -1;  ///< -1 = any device
    CommandClass cls = CommandClass::Transfer;
    bool any_class = false;
    int count = 0;
    double probability = 0.0;
    double time_s = 0.0;   ///< KillAt trigger time, or Network timeout
    double factor = 1.0;   ///< Slowdown duration multiplier
    /// Seed of this rule's private random stream (probabilistic rules).
    /// 0 = derive from the plan seed and the rule's position.  Rules with
    /// distinct seeds draw independently: two devices with the same drop
    /// probability must not drop on correlated command indices.
    std::uint64_t seed = 0;
  };

  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  FaultPlan& retries(int maxAttempts);
  FaultPlan& backoff(double baseSeconds, double multiplier = 2.0);
  /// Fail the next `count` transfers (writes/reads/copies/fills) on `device`.
  FaultPlan& failTransfers(int device, int count);
  /// Fail the next `count` kernel launches on `device`.
  FaultPlan& failKernels(int device, int count);
  /// Fail each matching command with `probability` (seeded, deterministic).
  FaultPlan& failRandomly(int device, CommandClass cls, double probability);
  /// Drop the next `count` commands aimed at `device` after a network
  /// timeout of `timeoutSeconds` (dOpenCL remote-command model).
  FaultPlan& dropNetwork(int device, int count, double timeoutSeconds);
  /// Drop each command aimed at `device` with `probability`, each costing a
  /// `timeoutSeconds` wait before the failure surfaces.  `seed` picks the
  /// rule's private random stream (0 = derive from plan seed + position).
  FaultPlan& dropNetworkRandomly(int device, double probability, double timeoutSeconds,
                                 std::uint64_t seed = 0);
  /// Every command on `device` takes `factor` times longer — persistently
  /// when `count` is 0, else only for the next `count` matching commands.
  /// The straggler model: a degraded link/SM, thermal throttling, a noisy
  /// PCIe neighbour.  The watchdog aborts such commands when the factor
  /// exceeds its slack (docs/ROBUSTNESS.md).
  FaultPlan& slowDevice(int device, double factor, int count = 0);
  /// The next `count` commands aimed at `device` never complete on their own;
  /// with the watchdog enabled they are aborted at the deadline, without it
  /// they stall the device for WatchdogConfig::hangStallSeconds.
  FaultPlan& hangCommands(int device, int count = 1);
  /// `device` dies permanently once more than `commands` commands hit it.
  FaultPlan& killAfterCommands(int device, int commands);
  /// `device` dies permanently at simulated time `simSeconds`.
  FaultPlan& killAtTime(int device, double simSeconds);
  /// Cap `device`'s usable memory at `bytes` (allocation beyond it fails).
  FaultPlan& limitMemory(int device, std::uint64_t bytes);

  /// Append the rules of `other`; keeps this plan's seed and retry policy
  /// unless `other` set them explicitly.
  FaultPlan& merge(const FaultPlan& other);

  /// Parse a SKELCL_FAULTS spec: ';'-separated clauses of ':'-separated
  /// tokens, e.g.
  ///   seed:42;retries:5;backoff:200us
  ///   transfer:dev0:count2          fail the next 2 transfers on device 0
  ///   kernel:dev*:p0.01             1% of kernel launches fail, any device
  ///   net:dev3:count1:timeout500us  one network drop on device 3
  ///   kill:dev2:after120            device 2 dies after 120 commands
  ///   kill:dev1:at0.005             device 1 dies at t = 5 ms
  ///   slow:dev2:x8                  device 2 runs 8x slower, forever
  ///   slow:dev2:x8:count3           ... only for the next 3 commands
  ///   hang:dev1:count1              the next command on device 1 hangs
  ///   oom:dev0:bytes1048576         device 0 holds only 1 MiB
  /// Throws UsageError on malformed specs.
  static FaultPlan parse(const std::string& spec);
  /// parse(getenv("SKELCL_FAULTS")), or an empty plan when unset.
  static FaultPlan fromEnv();

  bool empty() const { return rules_.empty() && memory_caps_.empty(); }
  std::uint64_t seed() const { return seed_; }
  const RetryPolicy& retryPolicy() const { return policy_; }
  const std::vector<Rule>& rules() const { return rules_; }
  /// (device, cap) pairs from limitMemory.
  const std::vector<std::pair<int, std::uint64_t>>& memoryCaps() const { return memory_caps_; }

 private:
  std::vector<Rule> rules_;
  std::vector<std::pair<int, std::uint64_t>> memory_caps_;
  RetryPolicy policy_;
  std::uint64_t seed_ = 0;
  bool policy_explicit_ = false;

  friend class FaultInjector;
};

/// Applies a FaultPlan to the command stream.  Owned by sim::System; the
/// queue layer consults it once per enqueued command.  Not thread-safe:
/// commands are enqueued from the (single) host thread only.
class FaultInjector {
 public:
  /// Install `plan`, resetting all counters and the random stream.
  void install(FaultPlan plan);
  /// Remove the plan (equivalent to installing an empty one).
  void reset() { install(FaultPlan{}); }

  bool active() const { return active_; }
  const RetryPolicy& retryPolicy() const { return plan_.retryPolicy(); }

  /// Decide the fate of the next command of class `cls` aimed at `device`,
  /// which would start executing at simulated time `now`.  Counts the
  /// command and may transition the device to dead.
  FaultDecision onCommand(int device, CommandClass cls, double now);

  /// True once a kill rule has fired for `device` (every later command on it
  /// fails permanently).
  bool deviceDead(int device) const;
  /// Usable memory of `device` under the plan (UINT64_MAX when uncapped).
  std::uint64_t memoryCap(int device) const;
  /// Commands counted against `device` so far.
  std::uint64_t commandCount(int device) const;

 private:
  void ensureDevice(int device);
  FaultDecision lost(const std::string& why);

  FaultPlan plan_;
  bool active_ = false;
  std::vector<Rng> rule_rngs_;          ///< per rule: private random stream
  std::vector<int> remaining_;          ///< per rule: occurrences left (counted rules)
  std::vector<std::uint64_t> counts_;   ///< per device: commands seen
  std::vector<char> dead_;              ///< per device: kill rule fired
};

}  // namespace skelcl::sim
