// A small work-stealing-free thread pool used to execute kernel work-items.
//
// The pool only affects *wall-clock* speed of the reproduction; the simulated
// time reported by benchmarks is computed from the cost model in
// sim::System and is identical for any pool size.  With a single hardware
// thread (common in CI containers) the pool degrades to inline execution.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace skelcl::sim {

class ThreadPool {
 public:
  /// `threads` = 0 picks the hardware concurrency (minus nothing; at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run body(chunkBegin, chunkEnd) over [0, count) split into roughly equal
  /// chunks, one per pool thread; blocks until all chunks are done.
  /// Exceptions from chunks are rethrown (first one wins).
  void parallelFor(std::uint64_t count,
                   const std::function<void(std::uint64_t, std::uint64_t)>& body);

  /// The process-wide pool (size from SKELCL_THREADS, else hardware).
  static ThreadPool& global();

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace skelcl::sim
