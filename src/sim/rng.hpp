// Deterministic random number generation for workload synthesis.
//
// All synthetic workloads (PET events, benchmark inputs, property tests) seed
// explicitly so that every run of the reproduction is bit-identical.
#pragma once

#include <cstdint>

namespace skelcl::sim {

/// SplitMix64-seeded xorshift128+ generator: tiny, fast, reproducible across
/// platforms (unlike std::uniform_real_distribution which is
/// implementation-defined).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 to expand the seed into two non-zero state words.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  std::uint64_t nextU64() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, 1).
  double nextDouble() {
    return static_cast<double>(nextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * nextDouble(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : nextU64() % n; }

  float nextFloat() { return static_cast<float>(nextDouble()); }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace skelcl::sim
