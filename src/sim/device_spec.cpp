#include "sim/device_spec.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace skelcl::sim {

const char* toString(DeviceType t) {
  switch (t) {
    case DeviceType::GPU: return "GPU";
    case DeviceType::CPU: return "CPU";
    case DeviceType::Accelerator: return "Accelerator";
  }
  return "?";
}

double DeviceSpec::instrPerSec(double apiEfficiency, int activeLanes) const {
  const int lanes = std::clamp(activeLanes, 1, cores);
  return static_cast<double>(lanes) * clock_ghz * 1e9 * ipc * apiEfficiency;
}

int SystemConfig::nodeCount() const {
  int maxNode = 0;
  for (const auto& dev : devices) maxNode = std::max(maxNode, dev.node);
  return maxNode + 1;
}

namespace {

DeviceSpec teslaT10(int index) {
  DeviceSpec d;
  d.name = "Tesla T10 #" + std::to_string(index);
  d.type = DeviceType::GPU;
  d.cores = 240;
  d.clock_ghz = 1.296;
  d.ipc = 0.08;  // sustained, irregular kernels (see DESIGN.md section 6)
  d.mem_bytes = 4ull << 30;
  d.pcie_link = index / 2;  // two GPUs per PCIe interface on the S1070
  d.launch_overhead_ocl_us = 12.0;
  d.launch_overhead_cuda_us = 8.0;
  return d;
}

DeviceSpec xeonE5520() {
  DeviceSpec d;
  d.name = "Xeon E5520";
  d.type = DeviceType::CPU;
  d.cores = 4;
  d.clock_ghz = 2.26;
  d.ipc = 0.5;  // scalar VM execution, no SIMD credit
  d.mem_bytes = 12ull << 30;
  d.pcie_link = -1;  // host-integrated: transfers run at host memory bandwidth
  d.launch_overhead_ocl_us = 6.0;
  d.launch_overhead_cuda_us = 6.0;
  return d;
}

LinkSpec pcieGen2x16(int index) {
  LinkSpec l;
  l.name = "PCIe#" + std::to_string(index);
  l.bandwidth_gbs = 5.2;
  l.latency_us = 20.0;
  return l;
}

}  // namespace

SystemConfig SystemConfig::teslaS1070(int numGpus) {
  SKELCL_CHECK(numGpus >= 1 && numGpus <= 4, "the S1070 hosts between 1 and 4 GPUs");
  SystemConfig cfg;
  cfg.name = "TeslaS1070x" + std::to_string(numGpus);
  for (int i = 0; i < numGpus; ++i) cfg.devices.push_back(teslaT10(i));
  const int numLinks = (numGpus + 1) / 2;
  for (int i = 0; i < numLinks; ++i) cfg.links.push_back(pcieGen2x16(i));
  cfg.host_mem_bandwidth_gbs = 12.0;
  cfg.host_flops_gps = 9.0;
  return cfg;
}

SystemConfig SystemConfig::heterogeneousLab() {
  SystemConfig cfg;
  cfg.name = "HeterogeneousLab";

  cfg.devices.push_back(xeonE5520());

  DeviceSpec big;  // a Fermi-class card, much faster than the second GPU
  big.name = "GTX480-class";
  big.type = DeviceType::GPU;
  big.cores = 480;
  big.clock_ghz = 1.40;
  big.ipc = 0.08;
  big.mem_bytes = 1536ull << 20;
  big.pcie_link = 0;
  cfg.devices.push_back(big);

  DeviceSpec small;
  small.name = "GT240-class";
  small.type = DeviceType::GPU;
  small.cores = 96;
  small.clock_ghz = 1.34;
  small.ipc = 0.08;
  small.mem_bytes = 512ull << 20;
  small.pcie_link = 1;
  cfg.devices.push_back(small);

  cfg.links.push_back(pcieGen2x16(0));
  cfg.links.push_back(pcieGen2x16(1));
  return cfg;
}

SystemConfig SystemConfig::cpuOnly() {
  SystemConfig cfg;
  cfg.name = "CpuOnly";
  cfg.devices.push_back(xeonE5520());
  return cfg;
}

SystemConfig SystemConfig::dualGpuServer() {
  SystemConfig cfg;
  cfg.name = "DualGpuServer";
  for (int i = 0; i < 2; ++i) {
    DeviceSpec d = teslaT10(i);
    d.name = "Server GPU #" + std::to_string(i);
    d.pcie_link = i;  // each GPU on its own link in the lab servers
    cfg.devices.push_back(d);
  }
  cfg.links.push_back(pcieGen2x16(0));
  cfg.links.push_back(pcieGen2x16(1));
  return cfg;
}

}  // namespace skelcl::sim
