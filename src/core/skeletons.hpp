// The SkelCL skeletons (paper Section II-A): map, zip, reduce, scan, plus
// the stencil (MapOverlap) and all-pairs (MapPairs) skeletons over
// Vector<T> and Matrix<T>.
//
// A skeleton is constructed from the *source code* of a user-defined function
// (named `func`), passed as a plain string; SkelCL merges it with
// pre-implemented skeleton code into a valid kernel, which the runtime
// compiles on first use (and caches).  Skeletons accept additional arguments
// beyond their fixed inputs — scalars, vectors, and per-device size tokens —
// which are appended to the user function's parameter list (Section II-A,
// Listing 1).
#pragma once

#include <string>
#include <type_traits>
#include <utility>

#include "core/detail/skeleton_exec.hpp"
#include "core/matrix.hpp"
#include "core/vector.hpp"

namespace skelcl {

/// Tag for index-based map skeletons: Map<int(Index)> takes an IndexVector.
struct Index {};

namespace detail {

template <typename T>
inline constexpr bool isSkeletonElement =
    std::is_same_v<T, float> || std::is_same_v<T, double> ||
    std::is_same_v<T, std::int32_t> || std::is_same_v<T, std::uint32_t>;

// --- additional-argument packing ---

template <typename T>
ExtraArg makeExtra(const Vector<T>& v) {
  ExtraArg e;
  e.kind = ExtraArg::Kind::VectorRef;
  e.typeName = kernelTypeName<T>();
  e.typeDefinition = kernelTypeDefinition<T>();
  e.vector = &v.impl();
  return e;
}

inline ExtraArg makeExtra(const SizesToken& token) {
  ExtraArg e;
  e.kind = ExtraArg::Kind::Sizes;
  e.vector = token.data;
  return e;
}

inline ExtraArg makeExtra(const OffsetsToken& token) {
  ExtraArg e;
  e.kind = ExtraArg::Kind::Offsets;
  e.vector = token.data;
  return e;
}

template <typename T, typename = std::enable_if_t<std::is_arithmetic_v<T>>>
ExtraArg makeExtra(T value) {
  ExtraArg e;
  e.kind = ExtraArg::Kind::Scalar;
  if constexpr (std::is_floating_point_v<T>) {
    e.typeName = std::is_same_v<T, double> ? "double" : "float";
    e.scalarIsFloat = true;
    e.scalarF = static_cast<double>(value);
  } else {
    // 8-byte integrals must stay 8-byte in the kernel: declaring them as
    // int/uint would truncate values beyond 2^31 (resp. 2^32) at bind time.
    if constexpr (sizeof(T) == 8) {
      e.typeName = std::is_unsigned_v<T> ? "ulong" : "long";
    } else {
      e.typeName = std::is_unsigned_v<T> ? "uint" : "int";
    }
    e.scalarIsFloat = false;
    e.scalarI = static_cast<std::int64_t>(value);
  }
  return e;
}

template <typename... Extras>
std::vector<ExtraArg> packExtras(const Extras&... extras) {
  std::vector<ExtraArg> out;
  (out.push_back(makeExtra(extras)), ...);
  return out;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Map
// ---------------------------------------------------------------------------

template <typename>
class Map;

/// map(f)([x1..xn]) = [f(x1)..f(xn)]
template <typename Tout, typename Tin>
class Map<Tout(Tin)> {
  static_assert(detail::isSkeletonElement<Tin> && detail::isSkeletonElement<Tout>,
                "skeleton element types must be float/double/int/uint "
                "(structs travel through additional arguments)");

 public:
  explicit Map(std::string userSource) : source_(std::move(userSource)) {}

  template <typename... Extras>
  Vector<Tout> operator()(const Vector<Tin>& input, const Extras&... extras) {
    Vector<Tout> output(input.size());
    run(output, input, extras...);
    return output;
  }

  template <typename... Extras>
  void operator()(Out<Tout> output, const Vector<Tin>& input, const Extras&... extras) {
    SKELCL_CHECK(output.target().size() == input.size(), "output size mismatch");
    run(output.target(), input, extras...);
  }

 private:
  template <typename... Extras>
  void run(Vector<Tout>& output, const Vector<Tin>& input, const Extras&... extras) {
    auto packed = detail::packExtras(extras...);
    detail::runElementwise(detail::Session::current(), source_, &input.impl(), nullptr, 0,
                           Distribution{}, output.impl(), kernelTypeName<Tin>(), "",
                           kernelTypeName<Tout>(), packed);
  }

  std::string source_;
};

/// Index-based map: work-items receive their global index (paper Listing 3).
template <typename Tout>
class Map<Tout(Index)> {
  static_assert(detail::isSkeletonElement<Tout>, "invalid output element type");

 public:
  explicit Map(std::string userSource) : source_(std::move(userSource)) {}

  template <typename... Extras>
  Vector<Tout> operator()(const IndexVector& input, const Extras&... extras) {
    Vector<Tout> output(input.size());
    auto packed = detail::packExtras(extras...);
    detail::runElementwise(detail::Session::current(), source_, nullptr, nullptr, input.size(),
                           input.distribution(), output.impl(), "", "",
                           kernelTypeName<Tout>(), packed);
    return output;
  }

 private:
  std::string source_;
};

/// Map<T> is shorthand for Map<T(T)>.
template <typename T>
class Map : public Map<T(T)> {
 public:
  using Map<T(T)>::Map;
};

// ---------------------------------------------------------------------------
// Zip
// ---------------------------------------------------------------------------

template <typename>
class Zip;

/// zip(op)([x...], [y...]) = [x1 op y1, ...]
template <typename Tout, typename Tl, typename Tr>
class Zip<Tout(Tl, Tr)> {
  static_assert(detail::isSkeletonElement<Tl> && detail::isSkeletonElement<Tr> &&
                    detail::isSkeletonElement<Tout>,
                "skeleton element types must be float/double/int/uint");

 public:
  explicit Zip(std::string userSource) : source_(std::move(userSource)) {}

  template <typename... Extras>
  Vector<Tout> operator()(const Vector<Tl>& left, const Vector<Tr>& right,
                          const Extras&... extras) {
    Vector<Tout> output(left.size());
    run(output, left, right, extras...);
    return output;
  }

  template <typename... Extras>
  void operator()(Out<Tout> output, const Vector<Tl>& left, const Vector<Tr>& right,
                  const Extras&... extras) {
    SKELCL_CHECK(output.target().size() == left.size(), "output size mismatch");
    run(output.target(), left, right, extras...);
  }

 private:
  template <typename... Extras>
  void run(Vector<Tout>& output, const Vector<Tl>& left, const Vector<Tr>& right,
           const Extras&... extras) {
    auto packed = detail::packExtras(extras...);
    detail::runElementwise(detail::Session::current(), source_, &left.impl(), &right.impl(), 0,
                           Distribution{}, output.impl(), kernelTypeName<Tl>(),
                           kernelTypeName<Tr>(), kernelTypeName<Tout>(), packed);
  }

  std::string source_;
};

/// Zip<T> is shorthand for Zip<T(T, T)> (paper Listing 1: `Zip<float> saxpy`).
template <typename T>
class Zip : public Zip<T(T, T)> {
 public:
  using Zip<T(T, T)>::Zip;
};

// ---------------------------------------------------------------------------
// Reduce
// ---------------------------------------------------------------------------

template <typename>
class Reduce;

/// reduce(op)([x1..xn]) = x1 op x2 op ... op xn.  The operator must be
/// associative but may be non-commutative (paper II-A).
template <typename T>
class Reduce<T(T)> {
  static_assert(detail::isSkeletonElement<T>, "invalid element type");

 public:
  explicit Reduce(std::string userSource) : source_(std::move(userSource)) {}

  template <typename... Extras>
  T operator()(const Vector<T>& input, const Extras&... extras) {
    auto packed = detail::packExtras(extras...);
    const kc::Slot result = detail::runReduce(detail::Session::current(), source_,
                                              input.impl(), kernelTypeName<T>(), packed);
    if constexpr (std::is_floating_point_v<T>) {
      return static_cast<T>(result.f);
    } else {
      return static_cast<T>(result.i);
    }
  }

 private:
  std::string source_;
};

/// Reduce<T> is shorthand for Reduce<T(T)>.
template <typename T>
class Reduce : public Reduce<T(T)> {
 public:
  using Reduce<T(T)>::Reduce;
};

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

template <typename>
class Scan;

/// scan(op)([x1..xn]) = [x1, x1 op x2, ..., x1 op ... op xn] (inclusive).
template <typename T>
class Scan<T(T, T)> {
  static_assert(detail::isSkeletonElement<T>, "invalid element type");

 public:
  explicit Scan(std::string userSource) : source_(std::move(userSource)) {}

  Vector<T> operator()(const Vector<T>& input) {
    Vector<T> output(input.size());
    detail::runScan(detail::Session::current(), source_, input.impl(), output.impl(),
                    kernelTypeName<T>());
    return output;
  }

  void operator()(Out<T> output, const Vector<T>& input) {
    SKELCL_CHECK(output.target().size() == input.size(), "output size mismatch");
    detail::runScan(detail::Session::current(), source_, input.impl(),
                    output.target().impl(), kernelTypeName<T>());
  }

 private:
  std::string source_;
};

/// Scan<T> is shorthand for Scan<T(T, T)>.
template <typename T>
class Scan : public Scan<T(T, T)> {
 public:
  using Scan<T(T, T)>::Scan;
};

// ---------------------------------------------------------------------------
// MapOverlap (stencil)
// ---------------------------------------------------------------------------

template <typename>
class MapOverlap;

/// Stencil skeleton: every output element is a function of its input element
/// and the neighbourhood within `radius`.  The user function receives a
/// pointer into a *padded* copy of (its device's part of) the input plus the
/// index of its centre element:
///
///   1D over Vector<T>:  `T func(__global T* in, int i, extras...)`
///       neighbours at in[i - radius] .. in[i + radius]
///   2D over Matrix<T>:  `T func(__global T* in, int i, int stride, extras...)`
///       neighbours at in[i +- k] (same row) and in[i +- k * stride] (columns)
///
/// Out-of-range accesses follow the Padding policy: Neutral yields the
/// user-supplied neutral element, Clamp the nearest edge element.  Across
/// devices the halo regions are exchanged through host staging and traced as
/// kind "halo" (docs/MATRIX.md).
template <typename Tout, typename Tin>
class MapOverlap<Tout(Tin)> {
  static_assert(detail::isSkeletonElement<Tin> && detail::isSkeletonElement<Tout>,
                "skeleton element types must be float/double/int/uint");
  static_assert(std::is_same_v<Tout, Tin>,
                "map-overlap reads its own output type's neighbourhood; "
                "input and output element types must match");

 public:
  /// `neutral` is read for Padding::Neutral only.
  MapOverlap(std::string userSource, std::size_t radius, Padding padding = Padding::Neutral,
             Tin neutral = Tin{})
      : source_(std::move(userSource)),
        radius_(radius),
        padding_(padding),
        neutral_(detail::makeExtra(neutral)) {
    SKELCL_CHECK(radius > 0, "map-overlap needs a positive radius");
  }

  // --- 1D (vector) ---

  template <typename... Extras>
  Vector<Tout> operator()(const Vector<Tin>& input, const Extras&... extras) {
    Vector<Tout> output(input.size());
    run(output, input, extras...);
    return output;
  }

  template <typename... Extras>
  void operator()(Out<Tout> output, const Vector<Tin>& input, const Extras&... extras) {
    SKELCL_CHECK(output.target().size() == input.size(), "output size mismatch");
    run(output.target(), input, extras...);
  }

  // --- 2D (matrix) ---

  template <typename... Extras>
  Matrix<Tout> operator()(const Matrix<Tin>& input, const Extras&... extras) {
    Matrix<Tout> output(input.rowCount(), input.columnCount());
    run(output, input, extras...);
    return output;
  }

  /// In-place-shaped overload for iterative stencils (Jacobi): writes into an
  /// existing matrix.  `output` must not share data with `input` — the
  /// stencil reads every neighbourhood of `input`.
  template <typename... Extras>
  void operator()(Matrix<Tout>& output, const Matrix<Tin>& input, const Extras&... extras) {
    SKELCL_CHECK(output.rowCount() == input.rowCount() &&
                     output.columnCount() == input.columnCount(),
                 "output shape mismatch");
    run(output, input, extras...);
  }

 private:
  template <typename... Extras>
  void run(Vector<Tout>& output, const Vector<Tin>& input, const Extras&... extras) {
    auto packed = detail::packExtras(extras...);
    detail::runMapOverlap1D(detail::Session::current(), source_, input.impl(), output.impl(),
                            kernelTypeName<Tin>(), radius_, padding_, neutral_, packed);
  }

  template <typename... Extras>
  void run(Matrix<Tout>& output, const Matrix<Tin>& input, const Extras&... extras) {
    auto packed = detail::packExtras(extras...);
    detail::runMapOverlap2D(detail::Session::current(), source_, input.impl(), output.impl(),
                            kernelTypeName<Tin>(), radius_, padding_, neutral_, packed);
  }

  std::string source_;
  std::size_t radius_;
  Padding padding_;
  detail::ExtraArg neutral_;
};

/// MapOverlap<T> is shorthand for MapOverlap<T(T)>.
template <typename T>
class MapOverlap : public MapOverlap<T(T)> {
 public:
  using MapOverlap<T(T)>::MapOverlap;
};

// ---------------------------------------------------------------------------
// MapPairs (all-pairs)
// ---------------------------------------------------------------------------

template <typename>
class MapPairs;

/// All-pairs skeleton: out(i, j) = func(left[i], right[j]) over every pair,
/// producing a left.size() x right.size() matrix.  The output (and left) are
/// row-block distributed; right is replicated on every device.  The user
/// function is `Tout func(Tl l, Tr r, extras...)`.
template <typename Tout, typename Tl, typename Tr>
class MapPairs<Tout(Tl, Tr)> {
  static_assert(detail::isSkeletonElement<Tl> && detail::isSkeletonElement<Tr> &&
                    detail::isSkeletonElement<Tout>,
                "skeleton element types must be float/double/int/uint");

 public:
  explicit MapPairs(std::string userSource) : source_(std::move(userSource)) {}

  template <typename... Extras>
  Matrix<Tout> operator()(const Vector<Tl>& left, const Vector<Tr>& right,
                          const Extras&... extras) {
    SKELCL_CHECK(right.size() > 0, "map-pairs needs a non-empty right vector "
                                   "(a matrix has at least one column)");
    Matrix<Tout> output(left.size(), right.size());
    run(output, left, right, extras...);
    return output;
  }

  template <typename... Extras>
  void operator()(Matrix<Tout>& output, const Vector<Tl>& left, const Vector<Tr>& right,
                  const Extras&... extras) {
    SKELCL_CHECK(output.rowCount() == left.size() && output.columnCount() == right.size(),
                 "output shape mismatch");
    run(output, left, right, extras...);
  }

 private:
  template <typename... Extras>
  void run(Matrix<Tout>& output, const Vector<Tl>& left, const Vector<Tr>& right,
           const Extras&... extras) {
    auto packed = detail::packExtras(extras...);
    detail::runMapPairs(detail::Session::current(), source_, left.impl(), right.impl(),
                        output.impl(), kernelTypeName<Tl>(), kernelTypeName<Tr>(),
                        kernelTypeName<Tout>(), packed);
  }

  std::string source_;
};

// ---------------------------------------------------------------------------
// Pipeline (fused skeleton chains)
// ---------------------------------------------------------------------------

/// A lazy chain of map/zip stages over one element type, optionally
/// terminated by a reduce.  Stages are only *collected* here; operator() (or
/// reduce()) hands the whole chain to the fusion engine, which emits ONE
/// generated kernel per device evaluating all stages back to back — no
/// intermediate vector is ever allocated — whenever the chain is eligible,
/// and falls back to stage-by-stage execution otherwise (an intermediate is
/// observed by the host, or a zip input carries a different distribution).
/// See docs/FUSION.md.
///
///   skelcl::Pipeline<float> p;
///   p.map("float func(float x) { return x * x; }")
///    .zip(ys, "float func(float x, float y) { return x + y; }");
///   skelcl::Vector<float> r = p(xs);
template <typename T>
class Pipeline {
  static_assert(detail::isSkeletonElement<T>,
                "pipeline element types must be float/double/int/uint");

 public:
  Pipeline() = default;

  /// Append a map stage: `T func(T x, extras...)`.
  template <typename... Extras>
  Pipeline& map(std::string userSource, const Extras&... extras) {
    detail::FusedStage st;
    st.userSource = std::move(userSource);
    st.outTypeName = kernelTypeName<T>();
    st.outElemSize = sizeof(T);
    st.outElemKind = detail::elemKindOf<T>();
    st.extras = detail::packExtras(extras...);
    stages_.push_back(std::move(st));
    return *this;
  }

  /// Append a zip stage combining the chain value with `right`:
  /// `T func(T chainValue, T rightValue, extras...)`.
  template <typename... Extras>
  Pipeline& zip(const Vector<T>& right, std::string userSource, const Extras&... extras) {
    detail::FusedStage st;
    st.userSource = std::move(userSource);
    st.zipInput = &right.impl();
    st.zipTypeName = kernelTypeName<T>();
    st.outTypeName = kernelTypeName<T>();
    st.outElemSize = sizeof(T);
    st.outElemKind = detail::elemKindOf<T>();
    st.extras = detail::packExtras(extras...);
    stages_.push_back(std::move(st));
    retained_.push_back(right);  // keep the zip input's data alive
    return *this;
  }

  /// Capture the most recent stage's result into `sink` so the host can read
  /// the intermediate.  This forces the chain onto the unfused fallback (a
  /// fused chain has no intermediate to materialize).  `sink` must have the
  /// chain's element count.
  Pipeline& observe(Vector<T>& sink) {
    SKELCL_CHECK(!stages_.empty(), "observe: pipeline has no stages yet");
    stages_.back().observeSink = &sink.impl();
    retained_.push_back(sink);
    return *this;
  }

  /// Skip fusion even for eligible chains (benchmark baseline).
  Pipeline& forceUnfused(bool force = true) {
    force_unfused_ = force;
    return *this;
  }

  /// Run the chain over `input` into a fresh vector.
  Vector<T> operator()(const Vector<T>& input) {
    Vector<T> output(input.size());
    last_fused_ = detail::runFusedChain(detail::Session::current(), input.impl(),
                                        kernelTypeName<T>(), stages_, output.impl(),
                                        force_unfused_);
    return output;
  }

  /// Run the chain in place into an existing vector (may alias the input).
  void operator()(Out<T> output, const Vector<T>& input) {
    SKELCL_CHECK(output.target().size() == input.size(), "output size mismatch");
    last_fused_ = detail::runFusedChain(detail::Session::current(), input.impl(),
                                        kernelTypeName<T>(), stages_,
                                        output.target().impl(), force_unfused_);
  }

  /// Run the chain over `input` and reduce the result with the associative
  /// operator `reduceSource` (`T func(T a, T b, extras...)`) — fused, the
  /// chain is inlined into the reduction kernel and the chain result never
  /// materializes either.
  template <typename... Extras>
  T reduce(const std::string& reduceSource, const Vector<T>& input,
           const Extras&... extras) {
    auto packed = detail::packExtras(extras...);
    const kc::Slot result =
        detail::runFusedReduce(detail::Session::current(), input.impl(), kernelTypeName<T>(),
                               stages_, reduceSource, packed, force_unfused_, &last_fused_);
    if constexpr (std::is_floating_point_v<T>) {
      return static_cast<T>(result.f);
    } else {
      return static_cast<T>(result.i);
    }
  }

  /// Whether the most recent run took the fused path.
  bool lastRunFused() const { return last_fused_; }
  std::size_t stageCount() const { return stages_.size(); }

  /// The user sources of every stage, in order (fed to the scheduler's
  /// pipeline cost model).
  std::vector<std::string> stageSources() const {
    std::vector<std::string> out;
    out.reserve(stages_.size());
    for (const auto& st : stages_) out.push_back(st.userSource);
    return out;
  }

 private:
  std::vector<detail::FusedStage> stages_;
  std::vector<Vector<T>> retained_;  ///< shared handles keeping inputs alive
  bool force_unfused_ = false;
  bool last_fused_ = false;
};

}  // namespace skelcl
