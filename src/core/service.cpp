#include "core/service.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "core/detail/runtime.hpp"
#include "core/skeletons.hpp"
#include "core/vector.hpp"

namespace skelcl {

// One queued unit of work.  Completion state is guarded by the job's own
// mutex so a client can wait() without touching the service's queue lock.
struct Service::Job {
  std::shared_ptr<detail::Session> session;

  // Generic jobs carry a closure; map jobs carry (source, input) and are
  // eligible for same-session batching.
  std::function<void()> work;
  std::string source;
  std::vector<float> input;
  std::vector<float> result;
  bool isMap = false;
  bool noBatch = false;  ///< requeued after a batched failure: retry alone

  // Quota queueing: VRAM usage of the session at the last QuotaError.  A
  // retry is pointless unless usage dropped below this in the meantime.
  bool quotaFailed = false;
  std::uint64_t quotaFailedUsed = 0;

  double submitSimTime = 0.0;
  double doneSimTime = 0.0;

  mutable std::mutex m;
  mutable std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
};

void Service::Handle::wait() const {
  SKELCL_CHECK(job_ != nullptr, "empty service handle");
  std::unique_lock<std::mutex> lock(job_->m);
  job_->cv.wait(lock, [&] { return job_->done; });
  if (job_->error) std::rethrow_exception(job_->error);
}

const std::vector<float>& Service::Handle::output() const {
  SKELCL_CHECK(job_ != nullptr, "empty service handle");
  return job_->result;
}

double Service::Handle::latencySeconds() const {
  SKELCL_CHECK(job_ != nullptr, "empty service handle");
  return job_->doneSimTime - job_->submitSimTime;
}

Service::Service(Options options) : options_(std::move(options)) {
  SKELCL_CHECK(detail::Runtime::initialized(), "call skelcl::init before starting a Service");
  executor_ = std::thread([this] { executorLoop(); });
}

Service::~Service() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  executor_.join();
}

std::shared_ptr<detail::Session> Service::createSession(detail::SessionOptions options) {
  auto session = detail::Runtime::instance().createSession(std::move(options));
  std::lock_guard<std::mutex> lock(mutex_);
  queues_[session->id()].session = session;
  return session;
}

double Service::simNow(detail::Session& session) {
  // The sim clock is device state: read it under the shared lock (client
  // threads call this while the executor advances time).
  std::lock_guard<std::recursive_mutex> lock(session.shared().mutex());
  return session.system().hostNow();
}

Service::Handle Service::submit(std::shared_ptr<detail::Session> session,
                                std::function<void()> work) {
  SKELCL_CHECK(session != nullptr, "submit needs a session");
  auto job = std::make_shared<Job>();
  job->session = session;
  job->work = std::move(work);
  job->submitSimTime = simNow(*session);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SKELCL_CHECK(!stop_, "service is shutting down");
    auto& q = queues_[session->id()];
    q.session = session;
    q.jobs.push_back(job);
  }
  work_cv_.notify_one();
  return Handle(job);
}

Service::Handle Service::submitMap(std::shared_ptr<detail::Session> session,
                                   std::string userSource, std::vector<float> input) {
  SKELCL_CHECK(session != nullptr, "submitMap needs a session");
  auto job = std::make_shared<Job>();
  job->session = session;
  job->isMap = true;
  job->source = std::move(userSource);
  job->input = std::move(input);
  job->submitSimTime = simNow(*session);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SKELCL_CHECK(!stop_, "service is shutting down");
    auto& q = queues_[session->id()];
    q.session = session;
    q.jobs.push_back(job);
  }
  work_cv_.notify_one();
  return Handle(job);
}

void Service::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] {
    if (in_flight_ > 0) return false;
    for (const auto& [id, q] : queues_) {
      if (!q.jobs.empty()) return false;
    }
    return true;
  });
}

Service::TenantStats Service::stats(const detail::Session& session) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queues_.find(session.id());
  return it == queues_.end() ? TenantStats{} : it->second.stats;
}

// --- executor ---------------------------------------------------------------

Service::TenantQueue* Service::pickTenantLocked() {
  // Stride scheduling: smallest virtual device time goes first.  Deferred
  // (quota-blocked) tenants only run when nobody else can.
  TenantQueue* best = nullptr;
  double bestVt = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < 2 && best == nullptr; ++pass) {
    const bool allowDeferred = pass == 1;
    for (auto& [id, q] : queues_) {
      if (q.jobs.empty()) continue;
      if (q.deferred && !allowDeferred) continue;
      const double w = std::max(q.session->shareWeight(), 1e-9);
      const double vt = q.session->deviceTimeUsed() / w;
      if (vt < bestVt) {
        bestVt = vt;
        best = &q;
      }
    }
  }
  return best;
}

std::vector<std::shared_ptr<Service::Job>> Service::popBatchLocked(TenantQueue& q) {
  std::vector<std::shared_ptr<Job>> batch;
  batch.push_back(q.jobs.front());
  q.jobs.pop_front();
  const Job& head = *batch.front();
  if (!head.isMap || head.noBatch) return batch;
  std::size_t elements = head.input.size();
  while (!q.jobs.empty() && batch.size() < options_.batchMaxJobs) {
    const Job& next = *q.jobs.front();
    if (!next.isMap || next.noBatch || next.source != head.source) break;
    if (elements + next.input.size() > options_.batchMaxElements) break;
    elements += next.input.size();
    batch.push_back(q.jobs.front());
    q.jobs.pop_front();
  }
  return batch;
}

void Service::executorLoop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    work_cv_.wait(lock, [&] { return stop_ || pickTenantLocked() != nullptr; });
    TenantQueue* q = pickTenantLocked();
    if (q == nullptr) {
      if (stop_) return;
      continue;
    }
    auto batch = popBatchLocked(*q);
    in_flight_ += batch.size();
    lock.unlock();

    runBatch(batch);

    lock.lock();
    // A batch completing may have released VRAM: quota-blocked tenants get
    // another chance.
    for (auto& [id, tq] : queues_) tq.deferred = false;
    std::size_t completed = 0;
    for (auto& job : batch) {
      if (job == nullptr) continue;  // requeued, still pending
      ++completed;
      auto& tq = queues_[job->session->id()];
      ++tq.stats.jobsCompleted;
      tq.stats.latencySeconds.push_back(job->doneSimTime - job->submitSimTime);
    }
    if (completed > 0) ++queues_[q->session->id()].stats.batchesRun;
    in_flight_ -= batch.size();
    lock.unlock();
    idle_cv_.notify_all();
    work_cv_.notify_one();
  }
}

void Service::completeJob(Job& job, std::exception_ptr error) {
  job.doneSimTime = simNow(*job.session);
  {
    std::lock_guard<std::mutex> lock(job.m);
    job.error = std::move(error);
    job.done = true;
  }
  job.cv.notify_all();
}

// Runs one batch outside the queue lock.  Entries that get requeued (quota
// queueing) are nulled out so the caller does not count them as completed.
void Service::runBatch(std::vector<std::shared_ptr<Job>>& batch) {
  auto session = batch.front()->session;
  detail::SessionScope scope(session);
  try {
    if (batch.front()->isMap) {
      runMapBatch(*session, batch);
    } else {
      batch.front()->work();
    }
  } catch (const QuotaError&) {
    // Queue-on-quota: park the jobs at the head of their queue and let other
    // tenants run; fail only when the session's VRAM usage has not dropped
    // since the last attempt (waiting cannot help).
    const std::uint64_t usedNow = session->vramUsed();
    std::exception_ptr error = std::current_exception();
    std::vector<std::shared_ptr<Job>> requeue;
    for (auto& job : batch) {
      const bool canWait = options_.queueOnQuota &&
                           (!job->quotaFailed || usedNow < job->quotaFailedUsed);
      if (canWait) {
        job->quotaFailed = true;
        job->quotaFailedUsed = usedNow;
        job->noBatch = true;  // retry one at a time: a smaller footprint may fit
        requeue.push_back(job);
        job = nullptr;
      } else {
        completeJob(*job, error);
      }
    }
    if (!requeue.empty()) {
      std::lock_guard<std::mutex> lock(mutex_);
      auto& q = queues_[session->id()];
      q.deferred = true;
      for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
        q.jobs.push_front(*it);
      }
    }
    return;
  } catch (...) {
    std::exception_ptr error = std::current_exception();
    for (auto& job : batch) completeJob(*job, error);
    return;
  }
  for (auto& job : batch) completeJob(*job, nullptr);
}

void Service::runMapBatch(detail::Session&, std::vector<std::shared_ptr<Job>>& batch) {
  // Concatenate the batch into one vector and launch the user function once:
  // map is elementwise, so the fused run is bit-identical to running each
  // job alone — only the launch/transfer overhead is amortized.
  std::size_t total = 0;
  for (const auto& job : batch) total += job->input.size();
  Vector<float> input(total);
  float* in = input.begin();
  for (const auto& job : batch) {
    std::memcpy(in, job->input.data(), job->input.size() * sizeof(float));
    in += job->input.size();
  }
  Map<float(float)> map(batch.front()->source);
  Vector<float> output = map(input);
  const float* out = output.hostData();
  for (auto& job : batch) {
    job->result.assign(out, out + job->input.size());
    out += job->input.size();
  }
  // The batch's vectors die here, releasing their VRAM charge before the
  // next admission decision.
}

}  // namespace skelcl
