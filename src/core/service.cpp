#include "core/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <utility>

#include "core/detail/runtime.hpp"
#include "core/skeletons.hpp"
#include "core/vector.hpp"
#include "ocl/ocl.hpp"

namespace skelcl {

// One queued unit of work.  Completion state is guarded by the job's own
// mutex so a client can wait() without touching the service's queue lock.
struct Service::Job {
  std::shared_ptr<detail::Session> session;
  Service* service = nullptr;  ///< for Handle::cancel; valid while the service lives

  // Generic jobs carry a closure; map jobs carry (source, input) and are
  // eligible for same-session batching.
  std::function<void()> work;
  std::string source;
  std::vector<float> input;
  std::vector<float> result;  ///< for sliced map jobs, also the progress cursor
  bool isMap = false;
  bool noBatch = false;  ///< requeued after a batched failure: retry alone

  // Quota queueing: VRAM usage of the session at the last QuotaError.  A
  // retry is pointless unless usage dropped below this in the meantime.
  bool quotaFailed = false;
  std::uint64_t quotaFailedUsed = 0;

  double deadlineSeconds = 0.0;  ///< 0 = none; simulated-time budget to start
  double submitSimTime = 0.0;
  double doneSimTime = 0.0;

  mutable std::mutex m;
  mutable std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
};

namespace {
// A failure is *deterministic* when re-running the identical job must fail the
// same way (bad kernel source, API misuse): those count toward the circuit
// breaker.  Injected device faults, quota/allocation pressure and lost data
// are environment-dependent — retrying later can genuinely succeed.
bool deterministicFailure(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const ocl::CommandError&) {
    return false;
  } catch (const ResourceError&) {
    return false;
  } catch (const DataLossError&) {
    return false;
  } catch (...) {
    return true;
  }
}

std::string breakerKeyFor(const detail::Session& session, const std::string& source) {
  return std::to_string(session.id()) + '\n' + source;
}
}  // namespace

void Service::Handle::wait() const {
  SKELCL_CHECK(job_ != nullptr, "empty service handle");
  std::unique_lock<std::mutex> lock(job_->m);
  job_->cv.wait(lock, [&] { return job_->done; });
  if (job_->error) std::rethrow_exception(job_->error);
}

bool Service::Handle::waitFor(double wallSeconds) const {
  SKELCL_CHECK(job_ != nullptr, "empty service handle");
  std::unique_lock<std::mutex> lock(job_->m);
  if (!job_->cv.wait_for(lock, std::chrono::duration<double>(wallSeconds),
                         [&] { return job_->done; })) {
    return false;
  }
  if (job_->error) std::rethrow_exception(job_->error);
  return true;
}

bool Service::Handle::cancel() const {
  SKELCL_CHECK(job_ != nullptr, "empty service handle");
  {
    // Completed jobs never touch the service pointer, so a handle outliving
    // its (shut-down) service can still call cancel() safely.
    std::lock_guard<std::mutex> lock(job_->m);
    if (job_->done) return false;
  }
  return job_->service->cancelJob(job_);
}

const std::vector<float>& Service::Handle::output() const {
  SKELCL_CHECK(job_ != nullptr, "empty service handle");
  // Failed jobs must not masquerade as empty results: block like wait() and
  // rethrow the job's error, so output() is always safe to call directly.
  std::unique_lock<std::mutex> lock(job_->m);
  job_->cv.wait(lock, [&] { return job_->done; });
  if (job_->error) std::rethrow_exception(job_->error);
  return job_->result;
}

double Service::Handle::latencySeconds() const {
  SKELCL_CHECK(job_ != nullptr, "empty service handle");
  return job_->doneSimTime - job_->submitSimTime;
}

Service::Service(Options options) : options_(std::move(options)) {
  SKELCL_CHECK(detail::Runtime::initialized(), "call skelcl::init before starting a Service");
  executor_ = std::thread([this] { executorLoop(); });
}

Service::~Service() { shutdown(); }

void Service::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void Service::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void Service::shutdown() {
  resume();  // a paused service must still drain
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;  // idempotent: a prior shutdown already joined
    stop_ = true;
  }
  work_cv_.notify_all();
  executor_.join();
}

std::shared_ptr<detail::Session> Service::createSession(detail::SessionOptions options) {
  auto session = detail::Runtime::instance().createSession(std::move(options));
  std::lock_guard<std::mutex> lock(mutex_);
  queues_[session->id()].session = session;
  return session;
}

double Service::simNow(detail::Session& session) {
  // The sim clock is device state: read it under the shared lock (client
  // threads call this while the executor advances time).
  std::lock_guard<std::recursive_mutex> lock(session.shared().mutex());
  return session.system().hostNow();
}

Service::Handle Service::submit(std::shared_ptr<detail::Session> session,
                                std::function<void()> work, SubmitOptions opts) {
  SKELCL_CHECK(session != nullptr, "submit needs a session");
  SKELCL_CHECK(opts.deadlineSeconds >= 0.0, "deadline must be non-negative");
  auto job = std::make_shared<Job>();
  job->session = session;
  job->service = this;
  job->work = std::move(work);
  job->deadlineSeconds = opts.deadlineSeconds;
  job->submitSimTime = simNow(*session);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) throw ServiceStoppedError("submit after Service::shutdown");
    auto& q = queues_[session->id()];
    q.session = session;
    q.jobs.push_back(job);
  }
  work_cv_.notify_one();
  return Handle(job);
}

Service::Handle Service::submitMap(std::shared_ptr<detail::Session> session,
                                   std::string userSource, std::vector<float> input,
                                   SubmitOptions opts) {
  SKELCL_CHECK(session != nullptr, "submitMap needs a session");
  SKELCL_CHECK(opts.deadlineSeconds >= 0.0, "deadline must be non-negative");
  auto job = std::make_shared<Job>();
  job->session = session;
  job->service = this;
  job->isMap = true;
  job->source = std::move(userSource);
  job->input = std::move(input);
  job->deadlineSeconds = opts.deadlineSeconds;
  job->submitSimTime = simNow(*session);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) throw ServiceStoppedError("submitMap after Service::shutdown");
    auto& q = queues_[session->id()];
    q.session = session;
    q.jobs.push_back(job);
  }
  work_cv_.notify_one();
  return Handle(job);
}

Service::Handle Service::submit(std::shared_ptr<detail::Session> session,
                                std::function<void()> work) {
  return submit(std::move(session), std::move(work), SubmitOptions());
}

Service::Handle Service::submitMap(std::shared_ptr<detail::Session> session,
                                   std::string userSource, std::vector<float> input) {
  return submitMap(std::move(session), std::move(userSource), std::move(input),
                   SubmitOptions());
}

bool Service::cancelJob(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queues_.find(job->session->id());
    if (it == queues_.end()) return false;
    auto& jobs = it->second.jobs;
    auto jit = std::find(jobs.begin(), jobs.end(), job);
    if (jit == jobs.end()) return false;  // running or already done
    jobs.erase(jit);
  }
  // Complete outside mutex_: completeJob takes the shared device lock for the
  // sim clock, and the executor holds that lock while calling back into
  // mutex_-guarded requeue paths.
  completeJob(*job, std::make_exception_ptr(
                        CancelledError("job cancelled before it ran")));
  idle_cv_.notify_all();
  return true;
}

void Service::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] {
    if (in_flight_ > 0) return false;
    for (const auto& [id, q] : queues_) {
      if (!q.jobs.empty()) return false;
    }
    return true;
  });
}

Service::TenantStats Service::stats(const detail::Session& session) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queues_.find(session.id());
  return it == queues_.end() ? TenantStats{} : it->second.stats;
}

// --- executor ---------------------------------------------------------------

Service::TenantQueue* Service::pickTenantLocked() {
  // Stride scheduling: smallest virtual device time goes first.  Deferred
  // (quota-blocked) tenants only run when nobody else can.
  TenantQueue* best = nullptr;
  double bestVt = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < 2 && best == nullptr; ++pass) {
    const bool allowDeferred = pass == 1;
    for (auto& [id, q] : queues_) {
      if (q.jobs.empty()) continue;
      if (q.deferred && !allowDeferred) continue;
      const double w = std::max(q.session->shareWeight(), 1e-9);
      const double vt = q.session->deviceTimeUsed() / w;
      if (vt < bestVt) {
        bestVt = vt;
        best = &q;
      }
    }
  }
  return best;
}

std::vector<std::shared_ptr<Service::Job>> Service::popBatchLocked(TenantQueue& q) {
  std::vector<std::shared_ptr<Job>> batch;
  batch.push_back(q.jobs.front());
  q.jobs.pop_front();
  const Job& head = *batch.front();
  if (!head.isMap || head.noBatch) return batch;
  // Oversized map jobs run alone, one preemption quantum per turn.
  if (head.input.size() > options_.quantumElements) return batch;
  std::size_t elements = head.input.size();
  while (!q.jobs.empty() && batch.size() < options_.batchMaxJobs) {
    const Job& next = *q.jobs.front();
    if (!next.isMap || next.noBatch || next.source != head.source) break;
    if (elements + next.input.size() > options_.batchMaxElements) break;
    elements += next.input.size();
    batch.push_back(q.jobs.front());
    q.jobs.pop_front();
  }
  return batch;
}

void Service::executorLoop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    work_cv_.wait(lock, [&] {
      return stop_ || (!paused_ && pickTenantLocked() != nullptr);
    });
    // stop_ overrides pause: shutdown must make progress.
    TenantQueue* q = (stop_ || !paused_) ? pickTenantLocked() : nullptr;
    if (q == nullptr) {
      if (stop_) {
        // Normally the queues are empty here (shutdown drains first); fail
        // any straggler submissions instead of leaving waiters hanging.
        std::vector<std::shared_ptr<Job>> leftovers;
        for (auto& [id, tq] : queues_) {
          leftovers.insert(leftovers.end(), tq.jobs.begin(), tq.jobs.end());
          tq.jobs.clear();
        }
        lock.unlock();
        auto error = std::make_exception_ptr(
            ServiceStoppedError("service stopped before the job ran"));
        for (auto& job : leftovers) completeJob(*job, error);
        idle_cv_.notify_all();
        return;
      }
      continue;
    }
    auto batch = popBatchLocked(*q);
    in_flight_ += batch.size();
    lock.unlock();

    runBatch(batch);

    lock.lock();
    // A batch completing may have released VRAM: quota-blocked tenants get
    // another chance.
    for (auto& [id, tq] : queues_) tq.deferred = false;
    std::size_t completed = 0;
    for (auto& job : batch) {
      if (job == nullptr) continue;  // requeued, still pending
      ++completed;
      auto& tq = queues_[job->session->id()];
      ++tq.stats.jobsCompleted;
      tq.stats.latencySeconds.push_back(job->doneSimTime - job->submitSimTime);
    }
    if (completed > 0) ++queues_[q->session->id()].stats.batchesRun;
    in_flight_ -= batch.size();
    lock.unlock();
    idle_cv_.notify_all();
    work_cv_.notify_one();
  }
}

void Service::completeJob(Job& job, std::exception_ptr error) {
  job.doneSimTime = simNow(*job.session);
  {
    std::lock_guard<std::mutex> lock(job.m);
    job.error = std::move(error);
    job.done = true;
  }
  job.cv.notify_all();
}

bool Service::breakerOpenFor(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = breaker_.find(key);
  return it != breaker_.end() && it->second >= options_.breakerThreshold;
}

void Service::noteBreakerResult(const std::string& key, bool deterministicFailure) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (deterministicFailure) {
    ++breaker_[key];
  } else {
    breaker_.erase(key);  // success (or environment failure) closes the breaker
  }
}

// Runs one batch outside the queue lock.  Entries that get requeued (quota
// queueing, quarantine, preemption) are nulled out so the caller does not
// count them as completed.
void Service::runBatch(std::vector<std::shared_ptr<Job>>& batch) {
  auto session = batch.front()->session;

  // Deadline admission: a job's budget is simulated time from submission to
  // the executor *starting* it.  Expired jobs fail here, before any device
  // work; they stay non-null in the batch so stats count the miss.
  std::vector<std::shared_ptr<Job>> live;
  live.reserve(batch.size());
  {
    const double now = simNow(*session);
    for (auto& job : batch) {
      if (job->deadlineSeconds > 0.0 &&
          now - job->submitSimTime > job->deadlineSeconds) {
        completeJob(*job, std::make_exception_ptr(DeadlineError(
                              "deadline of " + std::to_string(job->deadlineSeconds) +
                              "s expired before the job started")));
      } else {
        live.push_back(job);
      }
    }
  }
  if (live.empty()) return;

  const bool mapBatch = live.front()->isMap;
  const std::string bkey =
      mapBatch ? breakerKeyFor(*session, live.front()->source) : std::string();
  if (mapBatch && breakerOpenFor(bkey)) {
    auto error = std::make_exception_ptr(CircuitOpenError(
        "circuit breaker open: this kernel source already failed " +
        std::to_string(options_.breakerThreshold) +
        " times deterministically for session '" + session->name() + "'"));
    for (auto& job : live) completeJob(*job, error);
    return;
  }

  // Put `jobs` back at the head of the session's queue and null them in the
  // batch: the caller treats null entries as still pending.
  auto requeueFront = [&](const std::vector<std::shared_ptr<Job>>& jobs, bool defer) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto& q = queues_[session->id()];
      if (defer) q.deferred = true;
      for (auto it = jobs.rbegin(); it != jobs.rend(); ++it) q.jobs.push_front(*it);
    }
    for (const auto& j : jobs) {
      auto bit = std::find(batch.begin(), batch.end(), j);
      if (bit != batch.end()) *bit = nullptr;
    }
  };

  detail::SessionScope scope(session);
  try {
    if (mapBatch) {
      Job& head = *live.front();
      if (live.size() == 1 && head.input.size() > options_.quantumElements) {
        // Preemption: run one bounded quantum, then yield the executor.  The
        // result vector doubles as the progress cursor, so the job resumes
        // where it left off; map is elementwise, so the sliced run is
        // bit-identical to a monolithic one.
        if (!runMapQuantum(*session, head)) {
          head.noBatch = true;
          requeueFront({live.front()}, false);
          return;
        }
      } else {
        runMapBatch(*session, live);
      }
    } else {
      live.front()->work();
    }
  } catch (const QuotaError&) {
    // Queue-on-quota: park the jobs at the head of their queue and let other
    // tenants run; fail only when the session's VRAM usage has not dropped
    // since the last attempt (waiting cannot help).
    const std::uint64_t usedNow = session->vramUsed();
    std::exception_ptr error = std::current_exception();
    std::vector<std::shared_ptr<Job>> requeue;
    for (auto& job : live) {
      const bool canWait = options_.queueOnQuota &&
                           (!job->quotaFailed || usedNow < job->quotaFailedUsed);
      if (canWait) {
        job->quotaFailed = true;
        job->quotaFailedUsed = usedNow;
        job->noBatch = true;  // retry one at a time: a smaller footprint may fit
        requeue.push_back(job);
      } else {
        completeJob(*job, error);
      }
    }
    if (!requeue.empty()) requeueFront(requeue, true);
    return;
  } catch (...) {
    std::exception_ptr error = std::current_exception();
    if (live.size() > 1) {
      // Poison-job quarantine: one member poisoned the fused launch, but we
      // cannot tell which.  Retry every member alone — the innocents
      // complete, only the poison job ends up failing (and charging the
      // breaker) by itself.
      for (auto& job : live) job->noBatch = true;
      requeueFront(live, false);
      return;
    }
    Job& job = *live.front();
    if (mapBatch && deterministicFailure(error)) {
      noteBreakerResult(bkey, true);
      if (!breakerOpenFor(bkey)) {
        // Charge a breaker strike and retry; the job fails for good (with
        // its real error) on the strike that opens the breaker.
        job.noBatch = true;
        requeueFront({live.front()}, false);
        return;
      }
    }
    completeJob(job, error);
    return;
  }
  if (mapBatch) noteBreakerResult(bkey, false);
  for (auto& job : live) completeJob(*job, nullptr);
}

void Service::runMapBatch(detail::Session&, std::vector<std::shared_ptr<Job>>& batch) {
  // Concatenate the batch into one vector and launch the user function once:
  // map is elementwise, so the fused run is bit-identical to running each
  // job alone — only the launch/transfer overhead is amortized.
  std::size_t total = 0;
  for (const auto& job : batch) total += job->input.size();
  Vector<float> input(total);
  float* in = input.begin();
  for (const auto& job : batch) {
    std::memcpy(in, job->input.data(), job->input.size() * sizeof(float));
    in += job->input.size();
  }
  Map<float(float)> map(batch.front()->source);
  Vector<float> output = map(input);
  const float* out = output.hostData();
  for (auto& job : batch) {
    job->result.assign(out, out + job->input.size());
    out += job->input.size();
  }
  // The batch's vectors die here, releasing their VRAM charge before the
  // next admission decision.
}

// One preemption quantum of an oversized map job: run the next
// quantumElements-sized slice and append it to the result.  Returns true
// when the job is finished.
bool Service::runMapQuantum(detail::Session&, Job& job) {
  const std::size_t begin = job.result.size();
  const std::size_t len = std::min(options_.quantumElements, job.input.size() - begin);
  Vector<float> input(len);
  std::memcpy(input.begin(), job.input.data() + begin, len * sizeof(float));
  Map<float(float)> map(job.source);
  Vector<float> output = map(input);
  const float* out = output.hostData();
  job.result.insert(job.result.end(), out, out + len);
  return job.result.size() == job.input.size();
}

}  // namespace skelcl
