// SkelCL public API umbrella header.
//
//   #include "core/skelcl.hpp"
//
//   skelcl::init(skelcl::sim::SystemConfig::teslaS1070(4));
//   skelcl::Zip<float> saxpy("float func(float x, float y, float a)"
//                            "{ return a * x + y; }");
//   skelcl::Vector<float> X(n), Y(n);
//   ...
//   Y = saxpy(X, Y, a);
//   skelcl::terminate();
#pragma once

#include <memory>

#include "core/detail/session.hpp"  // IWYU pragma: export
#include "core/distribution.hpp"   // IWYU pragma: export
#include "core/skeletons.hpp"      // IWYU pragma: export
#include "core/type_name.hpp"      // IWYU pragma: export
#include "core/vector.hpp"         // IWYU pragma: export
#include "sim/device_spec.hpp"     // IWYU pragma: export
#include "sim/fault.hpp"           // IWYU pragma: export

namespace skelcl {

/// Initialize the SkelCL runtime over a (simulated) machine.
void init(sim::SystemConfig config);

/// Tear the runtime down (all vectors must be gone by then).
void terminate();

/// Number of devices the runtime drives.
int deviceCount();

/// Simulated time the host has spent so far, in seconds (benchmarks).
double simTimeSeconds();

/// Wait for all devices to finish and advance the host clock accordingly.
void finish();

/// Reset the simulated clock and statistics (between benchmark repetitions).
void resetSimClock();

/// Transfer / kernel-launch statistics of the simulated machine.
const sim::Stats& simStats();

/// Set proportional block-partition weights for devices (used by the static
/// scheduler for heterogeneous systems, Section V).  Empty = even split.
/// Weights are per tenant: this affects the thread's *current* session (the
/// default session unless a SessionScope is active).
void setPartitionWeights(std::vector<double> weights);

// --- multi-tenant sessions (docs/SERVICE.md) --------------------------------

using Session = detail::Session;
using SessionOptions = detail::SessionOptions;
using SessionScope = detail::SessionScope;

/// Create a new tenant session over the already-initialized runtime.  The
/// session shares devices, compile caches and the blacklist with every other
/// session but carries its own partition weights, fair-share weight and VRAM
/// quota.  Activate it on a thread with SessionScope.
std::shared_ptr<Session> createSession(SessionOptions options = {});

/// The session skeleton calls on this thread currently run under.
Session& currentSession();

// --- fault tolerance (docs/ROBUSTNESS.md) ----------------------------------

/// Install a fault-injection plan on the running system (replaces any plan
/// set programmatically or through SKELCL_FAULTS).  Pass a
/// default-constructed plan to disable injection.
void setFaultPlan(sim::FaultPlan plan);

/// Devices still accepting work; decreases when a permanent fault gets a
/// device blacklisted.
int aliveDeviceCount();

/// Manually blacklist a device (tests, what-if experiments); skeletons
/// repartition over the survivors exactly as after an injected permanent
/// fault.
void blacklistDevice(int device);

/// Configure the straggler/hang watchdog (sim::WatchdogConfig; enabled by
/// default, SKELCL_WATCHDOG=0 disables it at init).  Survives resetSimClock.
void setWatchdog(sim::WatchdogConfig config);

/// Toggle the watchdog, keeping its other parameters.
void setWatchdogEnabled(bool enabled);

/// Health factor of `device` used in unweighted block partitioning: 1 when
/// healthy, SharedDeviceState::kDegradedHealth once the watchdog demoted it.
double deviceHealth(int device);

/// Watchdog timeouts charged against `device`; at the kDegradeStrikes-th the
/// device is blacklisted.
int degradeCount(int device);

}  // namespace skelcl
