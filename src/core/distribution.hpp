// Data distributions for vectors on multi-GPU systems (paper Section III-A,
// Figure 1): single, block, and copy.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace skelcl {

/// One contiguous slice of a vector assigned to a device.
struct PartRange {
  int device = 0;
  std::size_t offset = 0;  ///< element offset into the vector
  std::size_t size = 0;    ///< element count (for copy: the full size)
};

class Distribution {
 public:
  enum class Kind {
    None,    ///< not yet distributed; skeletons apply their default
    Single,  ///< whole vector on one GPU (Figure 1a)
    Block,   ///< contiguous disjoint parts, one per GPU (Figure 1b)
    Copy,    ///< full copy on every GPU (Figure 1c)
  };

  Distribution() = default;

  /// Whole data on `device` (the first GPU if not specified otherwise).
  static Distribution single(int device = 0);

  /// Contiguous disjoint parts.  Without weights the split is even; with
  /// weights, part sizes are proportional (used by the heterogeneous
  /// scheduler of Section V).
  static Distribution block();
  static Distribution block(std::vector<double> weights);

  /// Full copy on each device.  When the distribution is changed away from
  /// copy, device versions are combined element-wise with `combineSource`
  /// (a kernel-language binary function named `func`); without one, the
  /// first device's copy wins and the others are discarded (paper III-A).
  static Distribution copy();
  static Distribution copy(std::string combineSource);

  Kind kind() const { return kind_; }
  bool isSet() const { return kind_ != Kind::None; }
  int device() const { return device_; }
  const std::vector<double>& weights() const { return weights_; }
  bool hasCombine() const { return !combine_.empty(); }
  const std::string& combineSource() const { return combine_; }

  /// Compute the device parts for a vector of `count` elements over
  /// `deviceCount` devices.  For Copy, returns one full-size part per device.
  /// Block apportions by largest remainder (floor of the proportional share,
  /// leftovers to the largest fractional remainders, ties to lower device
  /// position); devices whose share rounds to zero — zero-weight devices,
  /// or any device when count < deviceCount — receive no part, and the
  /// returned parts are contiguous, disjoint, and exactly cover the vector.
  std::vector<PartRange> partition(std::size_t count, int deviceCount) const;

  /// Same, but over an explicit (possibly partial) device list — the alive
  /// devices after fault-driven blacklisting.  Block weights are indexed by
  /// device id and renormalized over the listed devices; Single fails over to
  /// the first listed device when its named device is absent; Copy replicates
  /// onto every listed device.
  std::vector<PartRange> partition(std::size_t count, const std::vector<int>& devices) const;

  /// Node-aware block partition for clustered (docl) systems: apportion
  /// `count` first across nodes — a node's share is the sum of its member
  /// devices' weights — then within each node across its members, both by
  /// largest remainder.  Part boundaries then align with node boundaries, so
  /// halo/combine traffic between neighbouring parts prefers intra-node
  /// paths.  `nodeOf` maps absolute device id -> node id; each node's
  /// devices must be consecutive in `devices` (true for flattened docl
  /// configs).  Single and Copy delegate to the flat overload.
  std::vector<PartRange> partition(std::size_t count, const std::vector<int>& devices,
                                   const std::vector<int>& nodeOf) const;

  /// Structural equality relevant for skeleton-input compatibility: kind,
  /// single-device id, block weights, and copy combine source.
  friend bool operator==(const Distribution& a, const Distribution& b);

  /// "single(0)", "block", "copy" — for error messages.
  std::string describe() const;

 private:
  Kind kind_ = Kind::None;
  int device_ = 0;
  std::vector<double> weights_;
  std::string combine_;
};

}  // namespace skelcl
