// The two layers the old Runtime singleton was split into (ROADMAP item 2):
//
//  * SharedDeviceState — everything that is genuinely per *machine*: the
//    platform/context, one in-order command queue per device, the kernel
//    compile cache and host-program cache, the device blacklist and the
//    simulated clock.  One instance per process, shared by every tenant.
//
//  * Session — everything that is per *tenant*: partition weights and their
//    epoch, the trace stream tag, a VRAM quota and the fair-share weight the
//    admission scheduler (core/service.hpp) uses.  Skeleton execution, the
//    ExecGraph engine and VectorData all take an explicit Session& instead
//    of reaching for a global.
//
// Concurrency model: sessions may live on different threads.  All device
// state — queues, timelines, caches, the blacklist — is guarded by one
// recursive mutex on SharedDeviceState, acquired by ExecGraph::run, the
// VectorData host-sync paths and the skelcl free functions; per-session
// counters that outlive the lock (VRAM, device time) are atomics.  See
// docs/SERVICE.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/distribution.hpp"
#include "kernelc/value.hpp"
#include "ocl/ocl.hpp"

namespace skelcl::detail {

class SharedDeviceState {
 public:
  explicit SharedDeviceState(sim::SystemConfig config);

  SharedDeviceState(const SharedDeviceState&) = delete;
  SharedDeviceState& operator=(const SharedDeviceState&) = delete;

  ocl::Platform& platform() { return *platform_; }
  ocl::Context& context() { return *context_; }
  sim::System& system() { return platform_->system(); }
  int deviceCount() const { return platform_->deviceCount(); }
  ocl::Device& device(int id) { return platform_->device(id); }
  ocl::CommandQueue& queue(int device);

  /// The lock every device-touching execution path holds (recursive: the
  /// skeleton entry points, ExecGraph::run and the blacklist/recovery path
  /// nest freely on one thread).
  std::recursive_mutex& mutex() const { return mutex_; }

  /// Reset the simulated clock *and* every queue's in-order watermark.  The
  /// two must move together (a queue with a pre-reset watermark would give
  /// post-reset commands completion times of a dead clock).
  void resetClock();

  // --- device blacklisting (fault tolerance, shared by all sessions) --------
  /// Permanently remove `device` from skeleton execution: bump the device
  /// epoch so every session's cached partition plans replan over the
  /// survivors, and record a redistribution trace event.  Idempotent; throws
  /// when the last device would die.
  void blacklistDevice(int device, const std::string& reason);
  const std::vector<int>& aliveDevices() const { return alive_; }
  int aliveDeviceCount() const { return static_cast<int>(alive_.size()); }
  bool deviceAlive(int device) const;

  /// Bumped by blacklistDevice; a component of every session's partition
  /// epoch, so one device death invalidates all tenants' partition plans.
  std::uint64_t deviceEpoch() const { return device_epoch_; }

  // --- cluster topology (docl, docs/CLUSTER.md) -----------------------------
  /// device id -> cluster node id, from the system config (all zeros on a
  /// single machine).  Immutable over the state's lifetime.
  const std::vector<int>& deviceNodes() const { return device_nodes_; }
  /// True when devices span more than one cluster node: node-aware
  /// partitioning and tree collectives apply.
  bool multiNode() const { return multi_node_; }

  // --- degraded devices (gray failures, docs/ROBUSTNESS.md) -----------------
  /// Demote `device` after a watchdog timeout: its partition-plan health
  /// drops to kDegradedHealth (every session's unweighted block split shifts
  /// work away from it), the device epoch bumps so cached plans replan, and
  /// a Degrade trace record is emitted.  The kDegradeStrikes-th demotion
  /// escalates to blacklistDevice — a device that keeps timing out is dead
  /// for scheduling purposes.  The middle state between healthy and
  /// blacklisted: unlike death, data on the device stays valid.
  void degradeDevice(int device, const std::string& reason);
  /// Per-device health factor applied to partition weights (1 = healthy).
  std::vector<double> deviceHealth() const;
  /// Watchdog timeouts charged against `device` so far.
  int degradeCount(int device) const;

  static constexpr double kDegradedHealth = 0.25;
  static constexpr int kDegradeStrikes = 3;

  /// Compile-or-reuse: generated skeleton programs are cached by source so
  /// the runtime-compilation cost is paid once per distinct program — and
  /// once across *all* sessions (the paper excludes compilation from
  /// measurements for the same reason).
  std::shared_ptr<ocl::Program> programForSource(const std::string& source);

  /// Compile (and cache) a user operation for host-side execution through
  /// the kernel VM (reduce fold, scan offsets, copy combining).
  std::shared_ptr<const kc::CompiledProgram> hostProgram(const std::string& userSource);

 private:
  std::unique_ptr<ocl::Platform> platform_;
  std::unique_ptr<ocl::Context> context_;
  std::vector<std::unique_ptr<ocl::CommandQueue>> queues_;
  std::unordered_map<std::string, std::shared_ptr<ocl::Program>> programCache_;
  std::unordered_map<std::string, std::shared_ptr<const kc::CompiledProgram>> hostFnCache_;
  std::uint64_t device_epoch_ = 0;
  std::vector<int> alive_;
  std::vector<int> device_nodes_;  ///< device id -> cluster node id
  bool multi_node_ = false;
  std::vector<char> dead_;
  std::vector<double> health_;       ///< partition-weight factor; 1 = healthy
  std::vector<int> degrade_counts_;  ///< watchdog strikes per device
  mutable std::recursive_mutex mutex_;
};

/// Knobs of a tenant session (see docs/SERVICE.md).
struct SessionOptions {
  std::string name;                  ///< trace stream tag ("" = "session <id>")
  double shareWeight = 1.0;          ///< fair-share weight (device time ratio)
  std::uint64_t vramQuotaBytes = 0;  ///< modeled VRAM budget; 0 = unlimited
};

/// One tenant of the shared device pool.  Owns the per-tenant scheduler
/// state; forwards device access to the SharedDeviceState it was created
/// over.  Always held in a shared_ptr (vectors keep their charging session
/// alive past skelcl::terminate()).
class Session : public std::enable_shared_from_this<Session> {
 public:
  Session(std::shared_ptr<SharedDeviceState> shared, int id, SessionOptions opts);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  SharedDeviceState& shared() { return *shared_; }
  const std::shared_ptr<SharedDeviceState>& sharedPtr() const { return shared_; }
  int id() const { return id_; }
  const std::string& name() const { return name_; }

  // --- device access passthroughs (keep call sites terse) -------------------
  sim::System& system() { return shared_->system(); }
  ocl::Context& context() { return shared_->context(); }
  int deviceCount() const { return shared_->deviceCount(); }
  ocl::Device& device(int id) { return shared_->device(id); }
  ocl::CommandQueue& queue(int device) { return shared_->queue(device); }
  const std::vector<int>& aliveDevices() const { return shared_->aliveDevices(); }
  std::shared_ptr<ocl::Program> programForSource(const std::string& source) {
    return shared_->programForSource(source);
  }
  std::shared_ptr<const kc::CompiledProgram> hostProgram(const std::string& userSource) {
    return shared_->hostProgram(userSource);
  }
  void blacklistDevice(int device, const std::string& reason) {
    shared_->blacklistDevice(device, reason);
  }

  // --- per-tenant partition weights (paper Section V) -----------------------
  void setPartitionWeights(std::vector<double> weights);
  std::vector<double> partitionWeights() const;
  /// partitionWeights() when they apply to the *current* device set; empty
  /// otherwise.  Weights are indexed by absolute device id, so the vector
  /// must have exactly one entry per device of the machine and a positive
  /// total over aliveDevices(); a stale vector falls back to the unweighted
  /// block split.  Returns by value: the alive set is shared mutable state.
  std::vector<double> applicablePartitionWeights() const;
  /// Bumped whenever this session's weights change *or* a device dies
  /// anywhere (weight epoch + shared device epoch, both monotonic).
  /// VectorData uses (session id, this) as its partition-plan cache key.
  std::uint64_t partitionEpoch() const;

  /// The one place the "unweighted block picks up scheduler weights" rule
  /// lives (previously copy-pasted into vector_data.cpp and
  /// skeleton_exec.cpp): resolve `d` against this session's weights.
  Distribution effectiveDistribution(const Distribution& d) const;

  /// effectiveDistribution(d) partitioned over the alive devices — the one
  /// entry point skeletons and VectorData use.  On multi-node (docl)
  /// systems the block split is node-aware: part boundaries align with node
  /// boundaries so halo/combine traffic prefers intra-node paths.
  std::vector<PartRange> partition(const Distribution& d, std::size_t count) const;

  bool multiNode() const { return shared_->multiNode(); }
  const std::vector<int>& deviceNodes() const { return shared_->deviceNodes(); }

  // --- fair share (core/service.hpp) ---------------------------------------
  double shareWeight() const { return share_weight_; }
  void setShareWeight(double w) { share_weight_ = w; }
  /// Simulated device-seconds this session's commands have occupied; charged
  /// by ExecGraph::run per issued device stage.
  double deviceTimeUsed() const { return device_time_.load(std::memory_order_relaxed); }
  void chargeDeviceTime(double seconds);

  // --- VRAM quota -----------------------------------------------------------
  std::uint64_t vramQuota() const { return vram_quota_; }
  void setVramQuota(std::uint64_t bytes) { vram_quota_ = bytes; }
  std::uint64_t vramUsed() const { return vram_used_.load(std::memory_order_relaxed); }
  /// Account `bytes` of device memory to this session; throws ResourceError
  /// when the quota would be exceeded (the device-level capacity check in
  /// ocl::Device::allocate still applies on top).
  void chargeVram(std::uint64_t bytes);
  void releaseVram(std::uint64_t bytes);

  // --- thread-current session ----------------------------------------------
  /// The session skeleton calls on this thread run under: the innermost
  /// SessionScope, or the process-wide default session of the Runtime
  /// facade.  Throws when neither exists (call skelcl::init first).
  static Session& current();
  /// current(), or nullptr when no scope is active and the runtime is not
  /// initialized (pure host-side Vector use needs no session).
  static Session* currentIfAny();

 private:
  friend class SessionScope;

  std::shared_ptr<SharedDeviceState> shared_;
  int id_;
  std::string name_;
  std::vector<double> weights_;
  std::uint64_t weight_epoch_ = 0;
  double share_weight_ = 1.0;
  std::uint64_t vram_quota_ = 0;
  std::atomic<std::uint64_t> vram_used_{0};
  std::atomic<double> device_time_{0.0};
};

/// RAII: makes `session` the thread's current session for its lifetime.
/// Scopes nest; the previous current session is restored on destruction.
class SessionScope {
 public:
  explicit SessionScope(std::shared_ptr<Session> session);
  ~SessionScope();

  SessionScope(const SessionScope&) = delete;
  SessionScope& operator=(const SessionScope&) = delete;

 private:
  std::shared_ptr<Session> session_;
  Session* previous_;
};

/// Shorthand for Session::current().
Session& currentSession();

}  // namespace skelcl::detail
