// The old SkelCL runtime singleton, kept as a thin compatibility facade over
// the Session / SharedDeviceState split (core/detail/session.hpp): it owns
// the process-wide SharedDeviceState plus a *default session* that legacy
// call sites (examples, benches, single-tenant tests) implicitly run under.
// New code — and everything inside core/detail — takes an explicit Session&.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/detail/session.hpp"
#include "core/detail/trace.hpp"

namespace skelcl::detail {

class Runtime {
 public:
  /// Create the shared device state + default session.  Called by skelcl::init.
  static void init(sim::SystemConfig config);
  static void terminate();
  static bool initialized();
  static Runtime& instance();

  // --- the split ------------------------------------------------------------
  SharedDeviceState& shared() { return *shared_; }
  const std::shared_ptr<SharedDeviceState>& sharedPtr() const { return shared_; }
  Session& defaultSession() { return *default_session_; }
  const std::shared_ptr<Session>& defaultSessionPtr() const { return default_session_; }

  /// Create an additional tenant session over the shared device state
  /// (skelcl::createSession / the multi-tenant Service).
  std::shared_ptr<Session> createSession(SessionOptions opts);

  // --- legacy facade (delegates; kept so existing code compiles) ------------
  ocl::Platform& platform() { return shared_->platform(); }
  ocl::Context& context() { return shared_->context(); }
  sim::System& system() { return shared_->system(); }
  int deviceCount() const { return shared_->deviceCount(); }
  ocl::Device& device(int id) { return shared_->device(id); }
  ocl::CommandQueue& queue(int device) { return shared_->queue(device); }
  void resetClock() { shared_->resetClock(); }
  void blacklistDevice(int device, const std::string& reason) {
    shared_->blacklistDevice(device, reason);
  }
  const std::vector<int>& aliveDevices() const { return shared_->aliveDevices(); }
  int aliveDeviceCount() const { return shared_->aliveDeviceCount(); }
  bool deviceAlive(int device) const { return shared_->deviceAlive(device); }
  std::shared_ptr<ocl::Program> programForSource(const std::string& source) {
    return shared_->programForSource(source);
  }
  std::shared_ptr<const kc::CompiledProgram> hostProgram(const std::string& userSource) {
    return shared_->hostProgram(userSource);
  }
  void setPartitionWeights(std::vector<double> weights) {
    default_session_->setPartitionWeights(std::move(weights));
  }
  std::vector<double> partitionWeights() const {
    return default_session_->partitionWeights();
  }
  std::vector<double> applicablePartitionWeights() const {
    return default_session_->applicablePartitionWeights();
  }
  std::uint64_t partitionEpoch() const { return default_session_->partitionEpoch(); }

  /// The trace collector (process-wide; reset on every init, see trace.hpp).
  trace::Tracer& tracer() { return trace::Tracer::global(); }

 private:
  explicit Runtime(sim::SystemConfig config);

  std::shared_ptr<SharedDeviceState> shared_;
  std::shared_ptr<Session> default_session_;
  int next_session_id_ = 1;

  static std::unique_ptr<Runtime> instance_;
};

}  // namespace skelcl::detail
