// The SkelCL runtime singleton: device discovery, per-device command queues,
// the program cache, and the host-side executor for user operations.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/detail/trace.hpp"
#include "kernelc/value.hpp"
#include "ocl/ocl.hpp"

namespace skelcl::detail {

class Runtime {
 public:
  /// Create the singleton over a simulated machine.  Called by skelcl::init.
  static void init(sim::SystemConfig config);
  static void terminate();
  static bool initialized();
  static Runtime& instance();

  ocl::Platform& platform() { return *platform_; }
  ocl::Context& context() { return *context_; }
  sim::System& system() { return platform_->system(); }
  int deviceCount() const { return platform_->deviceCount(); }
  ocl::Device& device(int id) { return platform_->device(id); }
  ocl::CommandQueue& queue(int device);

  /// Reset the simulated clock *and* every queue's in-order watermark.  The
  /// two must move together (a queue with a pre-reset watermark would give
  /// post-reset commands completion times of a dead clock); this is the one
  /// entry point that keeps them in sync.
  void resetClock();

  // --- device blacklisting (fault tolerance) -------------------------------
  /// Permanently remove `device` from skeleton execution: bump the partition
  /// epoch so every cached partition plan replans over the survivors, and
  /// record a redistribution trace event.  Idempotent; throws when the last
  /// device would die.
  void blacklistDevice(int device, const std::string& reason);
  /// Devices still accepting work, ascending.  All of them until a
  /// blacklistDevice call removes one.
  const std::vector<int>& aliveDevices() const { return alive_; }
  int aliveDeviceCount() const { return static_cast<int>(alive_.size()); }
  bool deviceAlive(int device) const;

  /// Compile-or-reuse: generated skeleton programs are cached by source so
  /// the runtime-compilation cost is paid once per distinct program (the
  /// paper excludes compilation from measurements for the same reason).
  std::shared_ptr<ocl::Program> programForSource(const std::string& source);

  /// Compile (and cache) a user operation for host-side execution through
  /// the kernel VM — the final fold of the reduce skeleton, the offset scan
  /// between devices in the scan skeleton, and the combine step when leaving
  /// copy distribution all run the user's `func` on the host.
  std::shared_ptr<const kc::CompiledProgram> hostProgram(const std::string& userSource);

  /// Default block-partition weights used when a vector does not specify its
  /// own (set by the static scheduler of Section V; empty = even split).
  void setPartitionWeights(std::vector<double> weights);
  const std::vector<double>& partitionWeights() const { return weights_; }
  /// partitionWeights() when they apply to the *current* device set; empty
  /// otherwise.  Weights are indexed by absolute device id, so the vector
  /// must have exactly one entry per device of the machine and a positive
  /// total over aliveDevices().  A stale vector — installed for a different
  /// device count, or whose weight now rests entirely on blacklisted
  /// devices — would be misapplied (or crash the partitioner); callers fall
  /// back to the unweighted block split instead.
  const std::vector<double>& applicablePartitionWeights() const;
  /// Bumped whenever the weights change; VectorData uses it to invalidate
  /// cached partition plans.
  std::uint64_t partitionEpoch() const { return partition_epoch_; }

  /// The trace collector (process-wide; survives terminate/init cycles).
  trace::Tracer& tracer() { return trace::Tracer::global(); }

 private:
  explicit Runtime(sim::SystemConfig config);

  std::unique_ptr<ocl::Platform> platform_;
  std::unique_ptr<ocl::Context> context_;
  std::vector<std::unique_ptr<ocl::CommandQueue>> queues_;
  std::unordered_map<std::string, std::shared_ptr<ocl::Program>> programCache_;
  std::unordered_map<std::string, std::shared_ptr<const kc::CompiledProgram>> hostFnCache_;
  std::vector<double> weights_;
  std::uint64_t partition_epoch_ = 0;
  std::vector<int> alive_;
  std::vector<char> dead_;

  static std::unique_ptr<Runtime> instance_;
};

}  // namespace skelcl::detail
