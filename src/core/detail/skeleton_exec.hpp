// Untyped skeleton execution engine: kernel source generation (merging the
// user-defined function source into skeleton templates, paper Section II-A)
// and the multi-GPU execution plans of Section III-C.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/detail/vector_data.hpp"
#include "kernelc/value.hpp"

namespace skelcl::detail {

/// One additional skeleton argument (the paper's novel "additional
/// arguments" feature): a scalar, a vector, or a per-device size token.
struct ExtraArg {
  enum class Kind { Scalar, VectorRef, Sizes, Offsets };
  Kind kind = Kind::Scalar;

  // Scalar
  std::string typeName;     ///< kernel-language type ("float", "int", ...)
  bool scalarIsFloat = false;
  double scalarF = 0.0;
  std::int64_t scalarI = 0;

  // VectorRef / Sizes
  VectorData* vector = nullptr;
  std::string typeDefinition;  ///< struct typedef to prepend ("" for builtins)
};

/// Element-wise skeletons (map & zip share one engine).
/// `input2` is null for map; `input1` is null for an IndexVector input, in
/// which case `indexCount`/`indexDist` describe the virtual input.
/// `output` may alias an input (in-place execution via Out<>).
void runElementwise(const std::string& userSource,
                    VectorData* input1, VectorData* input2,
                    std::size_t indexCount, const Distribution& indexDist,
                    VectorData& output,
                    const std::string& inType1, const std::string& inType2,
                    const std::string& outType,
                    std::vector<ExtraArg>& extras);

/// Reduce (paper III-C): device-local reductions into small partial vectors,
/// gather on the host, final host-side fold.  Returns the result slot.
kc::Slot runReduce(const std::string& userSource, VectorData& input,
                   const std::string& typeName, std::vector<ExtraArg>& extras);

/// Scan (paper III-C, Figure 2): device-local scans, download of block sums,
/// implicit offset-combining maps on every device but the first.
void runScan(const std::string& userSource, VectorData& input, VectorData& output,
             const std::string& typeName);

/// Slot <-> raw element conversions for scalar element kinds.
kc::Slot slotFromBytes(ElemKind kind, const std::byte* src);
void slotToBytes(ElemKind kind, kc::Slot value, std::byte* dst);

}  // namespace skelcl::detail
