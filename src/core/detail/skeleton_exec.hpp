// Untyped skeleton execution engine: kernel source generation (merging the
// user-defined function source into skeleton templates, paper Section II-A)
// and the multi-GPU execution plans of Section III-C.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/detail/matrix_data.hpp"
#include "core/detail/vector_data.hpp"
#include "kernelc/value.hpp"

namespace skelcl {

/// MapOverlap boundary handling: what a stencil reads outside the input.
enum class Padding {
  Neutral,  ///< out-of-range accesses yield a user-supplied neutral element
  Clamp,    ///< out-of-range accesses clamp to the nearest edge element
};

}  // namespace skelcl

namespace skelcl::detail {

/// One additional skeleton argument (the paper's novel "additional
/// arguments" feature): a scalar, a vector, or a per-device size token.
struct ExtraArg {
  enum class Kind { Scalar, VectorRef, Sizes, Offsets };
  Kind kind = Kind::Scalar;

  // Scalar
  std::string typeName;     ///< kernel-language type ("float", "int", ...)
  bool scalarIsFloat = false;
  double scalarF = 0.0;
  std::int64_t scalarI = 0;

  // VectorRef / Sizes
  VectorData* vector = nullptr;
  std::string typeDefinition;  ///< struct typedef to prepend ("" for builtins)
};

/// Element-wise skeletons (map & zip share one engine).  All run* entry
/// points execute on behalf of `session` (whose weights drive partitioning,
/// and whose fair-share/VRAM accounts are charged) and hold the shared
/// device-state lock for the duration of the call.
/// `input2` is null for map; `input1` is null for an IndexVector input, in
/// which case `indexCount`/`indexDist` describe the virtual input.
/// `output` may alias an input (in-place execution via Out<>).
void runElementwise(Session& session, const std::string& userSource,
                    VectorData* input1, VectorData* input2,
                    std::size_t indexCount, const Distribution& indexDist,
                    VectorData& output,
                    const std::string& inType1, const std::string& inType2,
                    const std::string& outType,
                    std::vector<ExtraArg>& extras);

/// Reduce (paper III-C): device-local reductions into small partial vectors,
/// gather on the host, final host-side fold.  Returns the result slot.
kc::Slot runReduce(Session& session, const std::string& userSource, VectorData& input,
                   const std::string& typeName, std::vector<ExtraArg>& extras);

/// Scan (paper III-C, Figure 2): device-local scans, download of block sums,
/// implicit offset-combining maps on every device but the first.
void runScan(Session& session, const std::string& userSource, VectorData& input,
             VectorData& output, const std::string& typeName);

/// One stage of a fused map/zip skeleton chain.  The first stage consumes the
/// chain input; every later stage consumes the previous stage's value.  A zip
/// stage additionally reads `zipInput` at the same element index.
struct FusedStage {
  std::string userSource;             ///< defines `func` (plus any helpers)
  VectorData* zipInput = nullptr;     ///< null for a map stage
  std::string zipTypeName;            ///< kernel type of zipInput elements
  std::string outTypeName;            ///< kernel type of the stage result
  std::size_t outElemSize = 0;        ///< host size of the stage result
  ElemKind outElemKind = ElemKind::Other;
  std::vector<ExtraArg> extras;
  VectorData* observeSink = nullptr;  ///< host-visible copy of this stage's
                                      ///< result; its presence forces the
                                      ///< unfused fallback (the intermediate
                                      ///< must materialize for the host)
};

/// Execute a map/zip chain over `input` into `output`.  When the chain is
/// eligible — no observed intermediates, every zip input's distribution
/// unset or equal to the chain's — all stages run as ONE generated kernel
/// per device with no intermediate vectors; otherwise each stage runs
/// through runElementwise with heap temporaries.  Returns true when the
/// fused path ran.
bool runFusedChain(Session& session, VectorData& input, const std::string& inTypeName,
                   std::vector<FusedStage>& stages, VectorData& output,
                   bool forceUnfused);

/// Execute a map/zip chain and immediately reduce the result without
/// materializing it: the chain expression is inlined into the device-local
/// reduction kernel.  `stages` may be empty (a plain reduce).  `ranFused`
/// (optional) reports whether the fused path ran.
kc::Slot runFusedReduce(Session& session, VectorData& input, const std::string& inTypeName,
                        std::vector<FusedStage>& stages,
                        const std::string& reduceSource,
                        std::vector<ExtraArg>& reduceExtras,
                        bool forceUnfused, bool* ranFused = nullptr);

/// MapOverlap over a vector (1D stencil): each output element is computed by
/// `T func(__global T* pad, int center, extras...)` reading pad[center - r]
/// .. pad[center + r] of a per-device buffer padded with `radius` halo
/// elements on both sides.  In-range halo elements are exchanged between
/// neighbouring device parts through host staging (traced as kind "halo");
/// out-of-range accesses follow the `padding` policy (`neutral` supplies the
/// neutral element, ignored for clamp).  Empty input -> empty output.
void runMapOverlap1D(Session& session, const std::string& userSource, VectorData& input,
                     VectorData& output, const std::string& typeName, std::size_t radius,
                     Padding padding, const ExtraArg& neutral, std::vector<ExtraArg>& extras);

/// MapOverlap over a row-block matrix (2D stencil): per device part one
/// padded buffer of (partRows + 2r) x (columns + 2r) scalars, halo *rows*
/// exchanged between parts (kind "halo"), column padding and out-of-matrix
/// rows filled by a generated pack kernel according to `padding`.  The user
/// function is `T func(__global T* pad, int center, int stride, extras...)`;
/// neighbours live at center +- 1 and center +- stride.
void runMapOverlap2D(Session& session, const std::string& userSource, MatrixData& input,
                     MatrixData& output, const std::string& typeName, std::size_t radius,
                     Padding padding, const ExtraArg& neutral, std::vector<ExtraArg>& extras);

/// MapPairs: output(i, j) = func(left[i], right[j]).  The output matrix is
/// row-block distributed; `left` is switched to the matching block
/// distribution and `right` is replicated (copy) so every device holds the
/// columns it combines with its row block.
void runMapPairs(Session& session, const std::string& userSource, VectorData& left,
                 VectorData& right, MatrixData& output, const std::string& leftType,
                 const std::string& rightType, const std::string& outType,
                 std::vector<ExtraArg>& extras);

/// Slot <-> raw element conversions for scalar element kinds.
kc::Slot slotFromBytes(ElemKind kind, const std::byte* src);
void slotToBytes(ElemKind kind, kc::Slot value, std::byte* dst);

}  // namespace skelcl::detail
