#include "core/detail/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>

#include "ocl/queue.hpp"

namespace skelcl::trace {

namespace {

Record::Kind kindOf(ocl::CommandInfo::Kind kind) {
  switch (kind) {
    case ocl::CommandInfo::Kind::Write: return Record::Kind::Upload;
    case ocl::CommandInfo::Kind::Read: return Record::Kind::Download;
    case ocl::CommandInfo::Kind::Copy: return Record::Kind::Copy;
    case ocl::CommandInfo::Kind::Fill: return Record::Kind::Fill;
    case ocl::CommandInfo::Kind::Kernel: return Record::Kind::Kernel;
  }
  return Record::Kind::Kernel;
}

/// The queue-layer hook: one Record per enqueued command.  Failed commands
/// (injected faults, device death) become Fault records regardless of what
/// the command was.
void queueCommandHook(const ocl::CommandInfo& info, const ocl::Event& event) {
  Record r;
  r.kind = event.failed() ? Record::Kind::Fault : kindOf(info.kind);
  r.device = info.device;
  r.node = info.node;
  r.bytes = info.bytes;
  r.workItems = info.workItems;
  r.start = event.profilingStart();
  r.end = event.profilingEnd();
  if (info.kernelName != nullptr) r.name = info.kernelName;
  Tracer::global().record(std::move(r));
}

void appendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

constexpr int kHostTid = 9999;  ///< chrome "thread" id used for host records

}  // namespace

const char* kindName(Record::Kind kind) {
  switch (kind) {
    case Record::Kind::Upload: return "upload";
    case Record::Kind::Download: return "download";
    case Record::Kind::Copy: return "copy";
    case Record::Kind::Fill: return "fill";
    case Record::Kind::Kernel: return "kernel";
    case Record::Kind::Host: return "host";
    case Record::Kind::Fused: return "fused";
    case Record::Kind::Halo: return "halo";
    case Record::Kind::Fault: return "fault";
    case Record::Kind::Retry: return "retry";
    case Record::Kind::Redistribute: return "redistribute";
    case Record::Kind::Degrade: return "degrade";
  }
  return "?";
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_ = true;
  }
  ocl::setCommandHook(&queueCommandHook);
}

void Tracer::disable() {
  ocl::setCommandHook(nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = false;
}

bool Tracer::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

void Tracer::beginRun() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  context_.clear();
  context_kind_set_ = false;
  context_session_ = 0;
  session_names_.clear();
}

void Tracer::record(Record r) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  const bool faultKind = r.kind == Record::Kind::Fault || r.kind == Record::Kind::Retry ||
                         r.kind == Record::Kind::Redistribute ||
                         r.kind == Record::Kind::Degrade;
  if (faultKind) {
    // Fault-path records keep their kind visible in the name and append the
    // most specific label available (an explicit name beats the context).
    const std::string label = !r.name.empty() ? r.name : context_;
    r.name = kindName(r.kind);
    if (!label.empty()) r.name += " " + label;
  } else if (!context_.empty()) {
    r.name = context_;
  }
  // The override applies to every successful queue-level command kind: a
  // fused context only ever sees kernels, a halo context only transfers.
  const bool overridable =
      r.kind == Record::Kind::Kernel || r.kind == Record::Kind::Upload ||
      r.kind == Record::Kind::Download || r.kind == Record::Kind::Copy ||
      r.kind == Record::Kind::Fill;
  if (context_kind_set_ && overridable) r.kind = context_kind_;
  if (r.name.empty()) r.name = kindName(r.kind);
  r.session = context_session_;
  records_.push_back(std::move(r));
}

std::vector<Record> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

void Tracer::setContext(std::string label) {
  std::lock_guard<std::mutex> lock(mutex_);
  context_ = std::move(label);
  context_kind_set_ = false;
}

void Tracer::setContext(std::string label, Record::Kind kindOverride) {
  std::lock_guard<std::mutex> lock(mutex_);
  context_ = std::move(label);
  context_kind_set_ = true;
  context_kind_ = kindOverride;
}

void Tracer::clearContext() {
  std::lock_guard<std::mutex> lock(mutex_);
  context_.clear();
  context_kind_set_ = false;
}

void Tracer::setSessionContext(int id, const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  context_session_ = id;
  if (id != 0 || !name.empty()) session_names_.emplace(id, name);
}

bool Tracer::writeChromeTrace(const std::string& path) const {
  std::vector<Record> records;
  std::map<int, std::string> sessionNames;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    records = records_;
    sessionNames = session_names_;
  }

  // One chrome "process" per tenant session (pid = session id) so a
  // multi-tenant run shows per-tenant lanes; within a session, one "thread"
  // per device plus the host CPU lane.
  std::set<int> pids;
  std::set<std::pair<int, int>> lanes;  // (session, tid)
  std::map<int, int> nodeOf;            // device -> cluster node (from records)
  for (const Record& r : records) {
    pids.insert(r.session);
    lanes.emplace(r.session, r.device < 0 ? kHostTid : r.device);
    if (r.device >= 0) nodeOf[r.device] = r.node;
  }
  if (pids.empty()) pids.insert(0);
  bool clustered = false;
  for (const auto& [dev, node] : nodeOf) clustered = clustered || node != 0;

  std::string json = "{\"traceEvents\":[\n";
  bool first = true;
  for (const int pid : pids) {
    if (!first) json += ",\n";
    first = false;
    std::string name = "SkelCL simulated system";
    auto it = sessionNames.find(pid);
    if (it != sessionNames.end() && !it->second.empty()) {
      name += " — " + it->second;
    } else if (pid != 0) {
      name += " — session " + std::to_string(pid);
    }
    json += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
            ",\"name\":\"process_name\",\"args\":{\"name\":";
    appendJsonString(json, name);
    json += "}}";
  }
  for (const auto& [pid, tid] : lanes) {
    json += ",\n{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
            ",\"tid\":" + std::to_string(tid) +
            ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    if (tid == kHostTid) {
      json += "host CPU";
    } else {
      json += "GPU " + std::to_string(tid);
      // Node-tagged lane names make the tree shape of cluster collectives
      // visible at a glance (which lanes share a NIC).
      if (clustered) {
        auto nit = nodeOf.find(tid);
        json += " (node " + std::to_string(nit != nodeOf.end() ? nit->second : 0) + ")";
      }
    }
    json += "\"}}";
  }
  char buf[64];
  for (const Record& r : records) {
    json += ",\n{\"name\":";
    appendJsonString(json, r.name);
    json += ",\"cat\":\"";
    json += kindName(r.kind);
    json += "\",\"ph\":\"X\",\"pid\":";
    json += std::to_string(r.session);
    json += ",\"tid\":";
    json += std::to_string(r.device < 0 ? kHostTid : r.device);
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f", r.start * 1e6,
                  (r.end - r.start) * 1e6);
    json += buf;
    json += ",\"args\":{\"bytes\":" + std::to_string(r.bytes) +
            ",\"workItems\":" + std::to_string(r.workItems) +
            ",\"node\":" + std::to_string(r.node) + "}}";
  }
  json += "\n]}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

void enable() { Tracer::global().enable(); }
void disable() { Tracer::global().disable(); }
bool enabled() { return Tracer::global().enabled(); }
void clear() { Tracer::global().clear(); }
void record(Record r) { Tracer::global().record(std::move(r)); }
std::vector<Record> snapshot() { return Tracer::global().snapshot(); }
bool writeChromeTrace(const std::string& path) {
  return Tracer::global().writeChromeTrace(path);
}

namespace {
std::string g_env_path;
}

bool enableFromEnv() {
  const char* path = std::getenv("SKELCL_TRACE");
  if (path == nullptr || path[0] == '\0') return false;
  g_env_path = path;
  enable();
  return true;
}

bool flushToEnvPath() {
  if (g_env_path.empty()) return false;
  return writeChromeTrace(g_env_path);
}

}  // namespace skelcl::trace
