#include "core/detail/skeleton_exec.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "base/strings.hpp"
#include "core/detail/exec_graph.hpp"
#include "core/detail/session.hpp"
#include "kernelc/vm.hpp"

namespace skelcl::detail {

namespace {

// The "unweighted block picks up scheduler weights" rule lives in
// Session::effectiveDistribution now (it is per-tenant state).

/// Two-level (node-aware) reduce/scan collectives are used on multi-node
/// (docl cluster) systems unless SKELCL_TREE_COLLECTIVES=0 forces the flat
/// single-level paths.  The env var exists so flat and tree shapes can be
/// compared on the same system (bench_docl --smoke runs both legs and
/// checks bit-identical results); read per call so a test can flip it.
bool treeCollectivesEnabled(const Session& sess) {
  if (!sess.multiNode()) return false;
  const char* env = std::getenv("SKELCL_TREE_COLLECTIVES");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

/// lastWrite of `vector`'s part on `device`, appended to `deps` when valid —
/// consumers depend on producers instead of blocking on them.
void addPartDep(std::vector<ocl::Event>& deps, const VectorData* vector, int device) {
  if (vector == nullptr) return;
  const VectorData::DevicePart* part = vector->partOn(device);
  if (part != nullptr && part->lastWrite.valid()) deps.push_back(part->lastWrite);
}

/// Producer events of every input of a kernel stage on `device`: the inputs
/// themselves plus any vector additional arguments.
std::vector<ocl::Event> inputDeps(int device, const VectorData* input1,
                                  const VectorData* input2,
                                  const std::vector<ExtraArg>& extras) {
  std::vector<ocl::Event> deps;
  addPartDep(deps, input1, device);
  addPartDep(deps, input2, device);
  for (const ExtraArg& e : extras) {
    if (e.kind == ExtraArg::Kind::VectorRef) addPartDep(deps, e.vector, device);
  }
  return deps;
}

/// Deduplicated struct typedefs needed by the extra arguments.  Dedup is by
/// type *name*: two extras may share one struct type (one emitted typedef),
/// but two different definitions under the same name would silently shadow
/// each other in the generated translation unit, so that is an error.
std::string gatherTypedefs(const std::vector<ExtraArg>& extras) {
  std::string out;
  std::unordered_map<std::string, std::string> seen;  // type name -> definition
  for (const ExtraArg& e : extras) {
    if (e.typeDefinition.empty()) continue;
    const auto [it, inserted] = seen.emplace(e.typeName, e.typeDefinition);
    if (!inserted) {
      if (it->second != e.typeDefinition) {
        throw UsageError("conflicting definitions for kernel type '" + e.typeName +
                         "': two additional arguments register the same struct name "
                         "with different layouts");
      }
      continue;
    }
    out += e.typeDefinition;
    out += "\n";
  }
  return out;
}

/// ", TYPE skelcl_a0, __global U* skelcl_a1, ..." for the kernel signature.
/// Fused chains pass a per-stage prefix ("skelcl_s0_a", ...) so the merged
/// kernel's extra parameters cannot collide across stages.
std::string extraParams(const std::vector<ExtraArg>& extras,
                        const std::string& prefix = "skelcl_a") {
  std::string out;
  for (std::size_t i = 0; i < extras.size(); ++i) {
    const ExtraArg& e = extras[i];
    out += ", ";
    switch (e.kind) {
      case ExtraArg::Kind::Scalar:
        out += e.typeName + " " + prefix + std::to_string(i);
        break;
      case ExtraArg::Kind::VectorRef:
        out += "__global " + e.typeName + "* " + prefix + std::to_string(i);
        break;
      case ExtraArg::Kind::Sizes:
      case ExtraArg::Kind::Offsets:
        out += "int " + prefix + std::to_string(i);
        break;
    }
  }
  return out;
}

/// ", skelcl_a0, skelcl_a1, ..." for the user-function call.
std::string extraNames(const std::vector<ExtraArg>& extras,
                       const std::string& prefix = "skelcl_a") {
  std::string out;
  for (std::size_t i = 0; i < extras.size(); ++i) {
    out += ", " + prefix + std::to_string(i);
  }
  return out;
}

/// Prepare all extra-argument vectors (they must carry an explicit
/// distribution, paper Section III-B) and bind extras to a kernel starting at
/// parameter `firstIndex` for `device`.
void prepareExtras(Session& sess, std::vector<ExtraArg>& extras) {
  for (const ExtraArg& e : extras) {
    if (e.kind == ExtraArg::Kind::Scalar) continue;
    SKELCL_CHECK(e.vector != nullptr, "extra argument vector missing");
    if (!e.vector->distribution().isSet()) {
      throw UsageError(
          "no meaningful default distribution exists for vectors passed as "
          "additional arguments; set one explicitly (paper Section III-B)");
    }
    if (e.kind == ExtraArg::Kind::VectorRef) e.vector->ensureOnDevices(sess);
  }
}

/// Re-execute `body` after permanent device failures *and* watchdog
/// timeouts.  Device death blacklists the dead device; a timeout only
/// *degrades* the straggler (reduced partition weight, escalating to a
/// blacklist after SharedDeviceState::kDegradeStrikes).  Either way the
/// recovery is identical: recover every input vector from its host copy (or
/// a surviving replica; see VectorData::recoverAfterDeviceLoss), discard the
/// pure output's partial device results, and run the whole skeleton again —
/// other graph stages may have executed (in-place kernels on other devices
/// already wrote f(x)), so inputs must be restored even when the failed
/// device's own data is intact.  Transient errors never reach this level —
/// the ExecGraph retry loop absorbs them — so anything caught here is final
/// for its device.  `resetOutput` is null when the output aliases an input
/// (the aliased input's recovery already restores the pre-skeleton bytes).
template <typename Body>
auto withDeviceLossRecovery(Session& sess, std::vector<VectorData*> inputs,
                            VectorData* resetOutput, Body&& body) -> decltype(body()) {
  for (int attempt = 0;; ++attempt) {
    try {
      return body();
    } catch (const ocl::CommandError& e) {
      const bool timedOut = e.status() == sim::status::WatchdogTimeout;
      if (!e.permanent() && !timedOut) throw;
      // Each device can contribute at most kDegradeStrikes timeouts plus one
      // loss before it is blacklisted, so the re-execution loop is bounded.
      SKELCL_CHECK(attempt < sess.deviceCount() * (SharedDeviceState::kDegradeStrikes + 1),
                   "skeleton failed on more devices than the system has");
      if (timedOut) {
        sess.shared().degradeDevice(e.device(), e.what());
      } else {
        sess.blacklistDevice(e.device(), e.what());
      }
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        VectorData* v = inputs[i];
        if (v == nullptr) continue;
        bool seen = false;
        for (std::size_t j = 0; j < i; ++j) seen = seen || inputs[j] == v;
        if (!seen) v->recoverAfterDeviceLoss(e.device());
      }
      if (resetOutput != nullptr) resetOutput->resetDeviceDataAfterLoss();
    }
  }
}

/// The input vectors of a skeleton call: the primary inputs plus every
/// vector additional argument (they all hold device parts a dead device may
/// have invalidated).
std::vector<VectorData*> recoveryInputs(VectorData* input1, VectorData* input2,
                                        const std::vector<ExtraArg>& extras) {
  std::vector<VectorData*> inputs{input1, input2};
  for (const ExtraArg& e : extras) {
    if (e.kind == ExtraArg::Kind::VectorRef) inputs.push_back(e.vector);
  }
  return inputs;
}

void bindExtras(Session& sess, ocl::Kernel& kernel, std::size_t firstIndex,
                const std::vector<ExtraArg>& extras, int device) {
  for (std::size_t i = 0; i < extras.size(); ++i) {
    const std::size_t arg = firstIndex + i;
    const ExtraArg& e = extras[i];
    switch (e.kind) {
      case ExtraArg::Kind::Scalar:
        if (e.scalarIsFloat) {
          kernel.setArg(arg, e.scalarF);
        } else {
          // Full 64 bits: the kernel narrows to the declared parameter type,
          // so long/ulong extras keep values beyond 2^31 intact.
          kernel.setArg(arg, e.scalarI);
        }
        break;
      case ExtraArg::Kind::VectorRef: {
        const VectorData::DevicePart* part = e.vector->partOn(device);
        if (part == nullptr || part->buffer == nullptr) {
          throw UsageError(
              "additional-argument vector has no data on device " + std::to_string(device) +
              "; give it copy distribution or a block distribution matching the input");
        }
        kernel.setArg(arg, *part->buffer);
        break;
      }
      case ExtraArg::Kind::Sizes:
        kernel.setArg(arg, static_cast<std::int32_t>(e.vector->partSizeOn(sess, device)));
        break;
      case ExtraArg::Kind::Offsets:
        kernel.setArg(arg, static_cast<std::int32_t>(e.vector->partOffsetOn(sess, device)));
        break;
    }
  }
}

}  // namespace

kc::Slot slotFromBytes(ElemKind kind, const std::byte* src) {
  switch (kind) {
    case ElemKind::F32: {
      float v;
      std::memcpy(&v, src, 4);
      return kc::Slot::fromFloat(v);
    }
    case ElemKind::F64: {
      double v;
      std::memcpy(&v, src, 8);
      return kc::Slot::fromFloat(v);
    }
    case ElemKind::I32:
    case ElemKind::U32: {
      std::int32_t v;
      std::memcpy(&v, src, 4);
      return kc::Slot::fromInt(v);
    }
    case ElemKind::Other:
      break;
  }
  throw UsageError("scalar element type required");
}

void slotToBytes(ElemKind kind, kc::Slot value, std::byte* dst) {
  switch (kind) {
    case ElemKind::F32: {
      const float v = static_cast<float>(value.f);
      std::memcpy(dst, &v, 4);
      return;
    }
    case ElemKind::F64:
      std::memcpy(dst, &value.f, 8);
      return;
    case ElemKind::I32:
    case ElemKind::U32: {
      const std::int32_t v = static_cast<std::int32_t>(value.i);
      std::memcpy(dst, &v, 4);
      return;
    }
    case ElemKind::Other:
      break;
  }
  throw UsageError("scalar element type required");
}

// ---------------------------------------------------------------------------
// Map / Zip
// ---------------------------------------------------------------------------

namespace {

void runElementwiseOnce(Session& sess, const std::string& userSource,
                        VectorData* input1, VectorData* input2,
                        std::size_t indexCount, const Distribution& indexDist,
                        VectorData& output,
                        const std::string& inType1, const std::string& inType2,
                        const std::string& outType, std::vector<ExtraArg>& extras) {
  const std::size_t n = input1 != nullptr ? input1->count() : indexCount;

  // --- distribution resolution (paper III-C) -------------------------------
  Distribution dist;
  if (input1 != nullptr && input2 != nullptr) {
    SKELCL_CHECK(input2->count() == n, "zip inputs must have the same size");
    const Distribution& d1 = input1->distribution();
    const Distribution& d2 = input2->distribution();
    if (d1.isSet() && d2.isSet()) {
      // Must match (same kind, same device for single); otherwise SkelCL
      // changes both inputs to block distribution.
      dist = (d1 == d2) ? d1 : Distribution::block();
    } else if (d1.isSet()) {
      dist = d1;
    } else if (d2.isSet()) {
      dist = d2;
    } else {
      dist = Distribution::block();  // default for unset inputs
    }
    input1->setDistribution(dist);
    input2->setDistribution(dist);
  } else if (input1 != nullptr) {
    input1->defaultDistribution(Distribution::block());
    dist = input1->distribution();
  } else {
    dist = indexDist.isSet() ? indexDist : Distribution::block();
  }

  // --- materialize inputs / output -----------------------------------------
  const bool inPlace = (&output == input1) || (&output == input2);
  if (input1 != nullptr) input1->ensureOnDevices(sess);
  if (input2 != nullptr) input2->ensureOnDevices(sess);
  output.setDistribution(dist);
  if (!inPlace) output.ensureOnDevicesNoUpload(sess);
  prepareExtras(sess, extras);

  // --- generate, compile (cached), run --------------------------------------
  const bool indexInput = input1 == nullptr;
  std::string source = gatherTypedefs(extras);
  source += userSource;
  source += "\n";
  if (input2 != nullptr) {
    source += "__kernel void skelcl_kernel(__global " + inType1 + "* skelcl_in1, __global " +
              inType2 + "* skelcl_in2, __global " + outType +
              "* skelcl_out, int skelcl_n, int skelcl_base" + extraParams(extras) +
              ") {\n"
              "  int skelcl_i = get_global_id(0);\n"
              "  if (skelcl_i < skelcl_n) skelcl_out[skelcl_i] = "
              "func(skelcl_in1[skelcl_i], skelcl_in2[skelcl_i]" +
              extraNames(extras) + ");\n}\n";
  } else if (!indexInput) {
    source += "__kernel void skelcl_kernel(__global " + inType1 + "* skelcl_in1, __global " +
              outType + "* skelcl_out, int skelcl_n, int skelcl_base" + extraParams(extras) +
              ") {\n"
              "  int skelcl_i = get_global_id(0);\n"
              "  if (skelcl_i < skelcl_n) skelcl_out[skelcl_i] = func(skelcl_in1[skelcl_i]" +
              extraNames(extras) + ");\n}\n";
  } else {
    source += "__kernel void skelcl_kernel(__global " + outType +
              "* skelcl_out, int skelcl_n, int skelcl_base" + extraParams(extras) +
              ") {\n"
              "  int skelcl_i = get_global_id(0);\n"
              "  if (skelcl_i < skelcl_n) skelcl_out[skelcl_i] = "
              "func(skelcl_base + skelcl_i" +
              extraNames(extras) + ");\n}\n";
  }

  auto program = sess.programForSource(source);
  ocl::Kernel kernel(*program, "skelcl_kernel");

  // One kernel stage per device, recorded breadth-first on the command
  // graph: argument binding happens at issue time, dependencies are the
  // producer events of the inputs, and nothing blocks the host.  (In the
  // in-place case `output` aliases an input, so output.partOn is the right
  // part either way.)
  const char* stageName = input2 != nullptr ? "zip" : "map";
  const auto ranges = sess.partition(dist, n);
  ExecGraph g(sess);
  std::vector<std::pair<int, ExecGraph::NodeId>> launches;
  for (const PartRange& r : ranges) {
    if (r.size == 0) continue;
    launches.emplace_back(
        r.device,
        g.add(StageKind::Kernel, r.device,
              stageName + (" dev" + std::to_string(r.device)),
              [&, r](std::span<const ocl::Event> deps) {
                std::size_t arg = 0;
                if (input1 != nullptr) {
                  kernel.setArg(arg++, *input1->partOn(r.device)->buffer);
                }
                if (input2 != nullptr) {
                  kernel.setArg(arg++, *input2->partOn(r.device)->buffer);
                }
                kernel.setArg(arg++, *output.partOn(r.device)->buffer);
                kernel.setArg(arg++, static_cast<std::int32_t>(r.size));
                kernel.setArg(arg++, static_cast<std::int32_t>(r.offset));
                bindExtras(sess, kernel, arg, extras, r.device);
                return sess.queue(r.device).enqueueNDRangeKernel(kernel, r.size, 0, deps);
              },
              {}, inputDeps(r.device, input1, input2, extras)));
  }
  g.run();
  if (!launches.empty()) {
    for (const auto& [device, node] : launches) {
      output.recordDeviceWrite(device, g.event(node));
    }
    output.markDevicesModified();
  }
}

}  // namespace

void runElementwise(Session& session, const std::string& userSource,
                    VectorData* input1, VectorData* input2,
                    std::size_t indexCount, const Distribution& indexDist,
                    VectorData& output,
                    const std::string& inType1, const std::string& inType2,
                    const std::string& outType, std::vector<ExtraArg>& extras) {
  std::lock_guard<std::recursive_mutex> lock(session.shared().mutex());
  const bool inPlace = (&output == input1) || (&output == input2);
  withDeviceLossRecovery(session, recoveryInputs(input1, input2, extras),
                         inPlace ? nullptr : &output, [&] {
                           runElementwiseOnce(session, userSource, input1, input2, indexCount,
                                              indexDist, output, inType1, inType2, outType,
                                              extras);
                         });
}

// ---------------------------------------------------------------------------
// Reduce (paper III-C, three steps)
// ---------------------------------------------------------------------------

namespace {

kc::Slot runReduceOnce(Session& sess, const std::string& userSource, VectorData& input,
                       const std::string& typeName, std::vector<ExtraArg>& extras) {
  SKELCL_CHECK(input.count() > 0, "reduce of an empty vector");

  input.defaultDistribution(Distribution::block());
  input.ensureOnDevices(sess);
  prepareExtras(sess, extras);

  std::string source = gatherTypedefs(extras);
  source += userSource;
  source +=
      "\n__kernel void skelcl_reduce(__global " + typeName + "* skelcl_in, __global " +
      typeName + "* skelcl_partials, int skelcl_n, int skelcl_chunk" + extraParams(extras) +
      ") {\n"
      "  int skelcl_w = get_global_id(0);\n"
      "  int skelcl_begin = skelcl_w * skelcl_chunk;\n"
      "  int skelcl_end = min(skelcl_begin + skelcl_chunk, skelcl_n);\n"
      "  " + typeName + " skelcl_acc = skelcl_in[skelcl_begin];\n"
      "  for (int skelcl_i = skelcl_begin + 1; skelcl_i < skelcl_end; ++skelcl_i)\n"
      "    skelcl_acc = func(skelcl_acc, skelcl_in[skelcl_i]" + extraNames(extras) + ");\n"
      "  skelcl_partials[skelcl_w] = skelcl_acc;\n}\n";

  auto program = sess.programForSource(source);
  ocl::Kernel kernel(*program, "skelcl_reduce");

  std::vector<PartRange> ranges = input.plannedPartition(sess);
  if (input.distribution().kind() == Distribution::Kind::Copy) {
    // Every device holds the full data; reducing each copy would multiply
    // the result.  Reduce the first copy only.
    ranges.resize(1);
  }

  // Step 1: device-local reductions to small intermediate vectors (Section V
  // explains why a single value per GPU would be wasteful).  All step-1
  // kernels are recorded before any gather, so they overlap across devices.
  struct Pending {
    int device = 0;
    std::size_t numPartials = 0;
    std::size_t chunk = 0;
    std::size_t gatherOffset = 0;  ///< byte offset into `gathered`
    std::unique_ptr<ocl::Buffer> partials;
    ExecGraph::NodeId kernelNode = 0;
  };
  std::vector<Pending> pending;
  std::size_t gatheredBytes = 0;
  for (const PartRange& r : ranges) {
    if (r.size == 0) continue;
    const auto cores = static_cast<std::size_t>(sess.device(r.device).spec().cores);
    Pending p;
    p.device = r.device;
    p.chunk = (r.size + 4 * cores - 1) / (4 * cores);
    p.numPartials = (r.size + p.chunk - 1) / p.chunk;
    p.partials = std::make_unique<ocl::Buffer>(sess.context(), sess.device(r.device),
                                               p.numPartials * input.elemSize());
    p.gatherOffset = gatheredBytes;
    gatheredBytes += p.numPartials * input.elemSize();
    pending.push_back(std::move(p));
  }
  SKELCL_CHECK(!pending.empty(), "reduce produced no device work");

  ExecGraph g(sess);
  auto rangeOf = [&ranges](int device) -> const PartRange& {
    for (const PartRange& r : ranges) {
      if (r.device == device) return r;
    }
    throw UsageError("reduce: no part range for device");
  };
  for (Pending& p : pending) {
    p.kernelNode = g.add(
        StageKind::Kernel, p.device, "reduce step1 dev" + std::to_string(p.device),
        [&, &p = p](std::span<const ocl::Event> deps) {
          const PartRange& r = rangeOf(p.device);
          kernel.setArg(0, *input.partOn(p.device)->buffer);
          kernel.setArg(1, *p.partials);
          kernel.setArg(2, static_cast<std::int32_t>(r.size));
          kernel.setArg(3, static_cast<std::int32_t>(p.chunk));
          bindExtras(sess, kernel, 4, extras, p.device);
          return sess.queue(p.device).enqueueNDRangeKernel(kernel, p.numPartials, 0, deps);
        },
        {}, inputDeps(p.device, &input, nullptr, extras));
  }

  // Step 2: gather the intermediate results on the CPU.
  //
  // Flat path: one non-blocking read per device, dependent on that device's
  // step-1 kernel, overlapping across PCIe links instead of serializing on
  // the host.  On a cluster every one of those reads crosses the network, so
  // the client NIC serializes deviceCount downloads.
  //
  // Tree path (multi-node): combine node-locally first.  Each node elects a
  // leader (its first pending device), the members' partials are copied to a
  // buffer on the leader over the node-internal PCIe links, the leader folds
  // them with the same generated skelcl_reduce kernel in two passes (a wide
  // chunked pass, then one work-item folding the pass-1 partials — a serial
  // single-work-item fold of thousands of partials would dominate the tree
  // critical path), and only ONE value per node crosses the network.  The
  // host then folds the node values in node order — the same regrouping an
  // associative operator allows.
  const std::size_t elemSize = input.elemSize();
  struct NodeGroup {
    int node = 0;
    std::size_t firstPending = 0;    ///< index into `pending`
    std::size_t memberCount = 0;
    std::size_t totalPartials = 0;
    std::size_t combineChunk = 0;    ///< pass-1 elements per work-item
    std::size_t combineWidth = 0;    ///< pass-1 work-items
    int leader = 0;                  ///< first pending device of the node
    std::size_t gatherOffset = 0;    ///< byte offset into `gathered`
    std::unique_ptr<ocl::Buffer> nodeBuf;     ///< concatenated member partials
    std::unique_ptr<ocl::Buffer> nodeScratch; ///< pass-1 partials on the leader
    std::unique_ptr<ocl::Buffer> nodeResult;  ///< one combined element
  };
  std::vector<NodeGroup> groups;
  {
    const std::vector<int>& nodeOf = sess.deviceNodes();
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const int node = nodeOf[(std::size_t)pending[i].device];
      if (groups.empty() || groups.back().node != node) {
        NodeGroup ng;
        ng.node = node;
        ng.firstPending = i;
        ng.leader = pending[i].device;
        ng.gatherOffset = groups.size() * elemSize;
        groups.push_back(std::move(ng));
      }
      groups.back().memberCount++;
      groups.back().totalPartials += pending[i].numPartials;
    }
  }
  const bool tree = treeCollectivesEnabled(sess) && groups.size() > 1;

  std::vector<std::byte> gathered(tree ? groups.size() * elemSize : gatheredBytes);
  std::vector<ExecGraph::NodeId> gatherNodes;
  if (tree) {
    for (NodeGroup& ng : groups) {
      const auto cores = static_cast<std::size_t>(sess.device(ng.leader).spec().cores);
      ng.combineWidth = std::min(cores, ng.totalPartials);
      ng.combineChunk = (ng.totalPartials + ng.combineWidth - 1) / ng.combineWidth;
      ng.combineWidth = (ng.totalPartials + ng.combineChunk - 1) / ng.combineChunk;
      ng.nodeBuf = std::make_unique<ocl::Buffer>(sess.context(), sess.device(ng.leader),
                                                 ng.totalPartials * elemSize);
      ng.nodeScratch = std::make_unique<ocl::Buffer>(sess.context(), sess.device(ng.leader),
                                                     ng.combineWidth * elemSize);
      ng.nodeResult =
          std::make_unique<ocl::Buffer>(sess.context(), sess.device(ng.leader), elemSize);
    }
    for (NodeGroup& ng : groups) {
      // Node-local combine: member partials -> leader (PCIe only, no NIC).
      std::vector<ExecGraph::NodeId> copies;
      std::size_t dstOffset = 0;
      for (std::size_t m = ng.firstPending; m < ng.firstPending + ng.memberCount; ++m) {
        Pending& p = pending[m];
        const std::size_t bytes = p.numPartials * elemSize;
        copies.push_back(g.add(
            StageKind::Copy, ng.leader,
            "reduce node" + std::to_string(ng.node) + " gather dev" +
                std::to_string(p.device),
            [&, &p = p, &ng = ng, dstOffset](std::span<const ocl::Event> deps) {
              return sess.queue(ng.leader).enqueueCopyBuffer(
                  *p.partials, *ng.nodeBuf, 0, dstOffset, p.numPartials * elemSize, deps);
            },
            {p.kernelNode}));
        dstOffset += bytes;
      }
      const ExecGraph::NodeId combine1 = g.add(
          StageKind::Kernel, ng.leader,
          "reduce node" + std::to_string(ng.node) + " combine1",
          [&, &ng = ng](std::span<const ocl::Event> deps) {
            // Wide pass: each work-item folds a contiguous chunk of the
            // node's partials (global device order preserved within chunks).
            kernel.setArg(0, *ng.nodeBuf);
            kernel.setArg(1, *ng.nodeScratch);
            kernel.setArg(2, static_cast<std::int32_t>(ng.totalPartials));
            kernel.setArg(3, static_cast<std::int32_t>(ng.combineChunk));
            bindExtras(sess, kernel, 4, extras, ng.leader);
            return sess.queue(ng.leader).enqueueNDRangeKernel(kernel, ng.combineWidth, 0,
                                                              deps);
          },
          copies);
      const ExecGraph::NodeId combine = g.add(
          StageKind::Kernel, ng.leader,
          "reduce node" + std::to_string(ng.node) + " combine2",
          [&, &ng = ng](std::span<const ocl::Event> deps) {
            // Serial pass: one work-item folds the pass-1 partials in order,
            // so the node result is a left fold of chunked left folds — the
            // grouping any associative operator allows.
            kernel.setArg(0, *ng.nodeScratch);
            kernel.setArg(1, *ng.nodeResult);
            kernel.setArg(2, static_cast<std::int32_t>(ng.combineWidth));
            kernel.setArg(3, static_cast<std::int32_t>(ng.combineWidth));
            bindExtras(sess, kernel, 4, extras, ng.leader);
            return sess.queue(ng.leader).enqueueNDRangeKernel(kernel, 1, 0, deps);
          },
          {combine1});
      gatherNodes.push_back(g.add(
          StageKind::Download, ng.leader,
          "reduce node" + std::to_string(ng.node) + " download",
          [&, &ng = ng](std::span<const ocl::Event> deps) {
            return sess.queue(ng.leader).enqueueReadBuffer(
                *ng.nodeResult, 0, elemSize, gathered.data() + ng.gatherOffset,
                /*blocking=*/false, deps);
          },
          {combine}));
    }
  } else {
    for (Pending& p : pending) {
      gatherNodes.push_back(g.add(
          StageKind::Download, p.device, "reduce gather dev" + std::to_string(p.device),
          [&, &p = p](std::span<const ocl::Event> deps) {
            return sess.queue(p.device).enqueueReadBuffer(
                *p.partials, 0, p.numPartials * input.elemSize(),
                gathered.data() + p.gatherOffset, /*blocking=*/false, deps);
          },
          {p.kernelNode}));
    }
  }

  // Step 3: the CPU folds the intermediate results (order preserved, so a
  // non-commutative but associative operator is fine, paper II-A).  The host
  // stage is the single sync point of the whole plan.
  const auto hostProgram = sess.hostProgram(userSource);
  const int fn = hostProgram->findFunction("func");
  kc::Slot acc{};
  g.add(StageKind::Host, -1, "reduce host fold",
        [&](std::span<const ocl::Event> deps) {
          auto& system = sess.system();
          system.advanceHost(ExecGraph::latestEnd(system, deps));
          kc::Vm vm(*hostProgram, {});
          const std::size_t total = gathered.size() / input.elemSize();
          acc = slotFromBytes(input.elemKind(), gathered.data());
          for (std::size_t i = 1; i < total; ++i) {
            const kc::Slot x =
                slotFromBytes(input.elemKind(), gathered.data() + i * input.elemSize());
            // Extra arguments are device-scoped; the host fold applies the
            // bare binary operator (scalars are re-bound if present).
            if (extras.empty()) {
              acc = vm.callFunction(fn, std::array<kc::Slot, 2>{acc, x});
            } else {
              std::vector<kc::Slot> args = {acc, x};
              for (const ExtraArg& e : extras) {
                SKELCL_CHECK(e.kind == ExtraArg::Kind::Scalar,
                             "reduce supports only scalar additional arguments");
                args.push_back(e.scalarIsFloat ? kc::Slot::fromFloat(e.scalarF)
                                               : kc::Slot::fromInt(e.scalarI));
              }
              acc = vm.callFunction(fn, args);
            }
          }
          const auto span = system.reserveHostCompute(gathered.size(), vm.instructionsExecuted());
          return ocl::Event(span.start, span.end, system.clockEpoch());
        },
        gatherNodes);
  g.run();
  return acc;
}

}  // namespace

kc::Slot runReduce(Session& session, const std::string& userSource, VectorData& input,
                   const std::string& typeName, std::vector<ExtraArg>& extras) {
  std::lock_guard<std::recursive_mutex> lock(session.shared().mutex());
  return withDeviceLossRecovery(session, recoveryInputs(&input, nullptr, extras), nullptr,
                                [&] {
                                  return runReduceOnce(session, userSource, input, typeName,
                                                       extras);
                                });
}

// ---------------------------------------------------------------------------
// Scan (paper III-C, Figure 2)
// ---------------------------------------------------------------------------

namespace {

void runScanOnce(Session& sess, const std::string& userSource, VectorData& input,
                 VectorData& output, const std::string& typeName) {
  SKELCL_CHECK(output.count() == input.count(), "scan output size mismatch");
  if (input.count() == 0) return;

  input.defaultDistribution(Distribution::block());
  const Distribution dist = input.distribution();
  input.ensureOnDevices(sess);
  const bool inPlace = &output == &input;
  output.setDistribution(dist);
  if (!inPlace) output.ensureOnDevicesNoUpload(sess);

  std::string source = userSource;
  source +=
      "\n__kernel void skelcl_scan_chunks(__global " + typeName + "* skelcl_in, __global " +
      typeName + "* skelcl_out, __global " + typeName +
      "* skelcl_sums, int skelcl_chunk, int skelcl_n) {\n"
      "  int skelcl_w = get_global_id(0);\n"
      "  int skelcl_begin = skelcl_w * skelcl_chunk;\n"
      "  int skelcl_end = min(skelcl_begin + skelcl_chunk, skelcl_n);\n"
      "  " + typeName + " skelcl_acc = skelcl_in[skelcl_begin];\n"
      "  skelcl_out[skelcl_begin] = skelcl_acc;\n"
      "  for (int skelcl_i = skelcl_begin + 1; skelcl_i < skelcl_end; ++skelcl_i) {\n"
      "    skelcl_acc = func(skelcl_acc, skelcl_in[skelcl_i]);\n"
      "    skelcl_out[skelcl_i] = skelcl_acc;\n"
      "  }\n"
      "  skelcl_sums[skelcl_w] = skelcl_acc;\n}\n"
      "__kernel void skelcl_scan_add(__global " + typeName + "* skelcl_data, __global " +
      typeName +
      "* skelcl_offsets, int skelcl_chunk, int skelcl_n, int skelcl_skip_first) {\n"
      "  int skelcl_w = get_global_id(0);\n"
      "  if (skelcl_skip_first && skelcl_w == 0) return;\n"
      "  int skelcl_begin = skelcl_w * skelcl_chunk;\n"
      "  int skelcl_end = min(skelcl_begin + skelcl_chunk, skelcl_n);\n"
      "  " + typeName + " skelcl_off = skelcl_offsets[skelcl_w];\n"
      "  for (int skelcl_i = skelcl_begin; skelcl_i < skelcl_end; ++skelcl_i)\n"
      "    skelcl_data[skelcl_i] = func(skelcl_off, skelcl_data[skelcl_i]);\n}\n";

  auto program = sess.programForSource(source);
  ocl::Kernel scanChunks(*program, "skelcl_scan_chunks");
  ocl::Kernel scanAdd(*program, "skelcl_scan_add");

  const auto hostProgram = sess.hostProgram(userSource);
  const int fn = hostProgram->findFunction("func");
  const ElemKind kind = input.elemKind();
  const std::size_t elem = input.elemSize();

  const auto& ranges = input.plannedPartition(sess);
  const bool crossDevice = dist.kind() == Distribution::Kind::Block;

  // The Figure 2 pipeline as a command graph (paper III-C): step 1 is
  // recorded on *every* device before any block-sum download, the downloads
  // overlap across PCIe links, one host stage computes every device's
  // offsets (it is the only stage needing cross-device data), and the offset
  // uploads plus step-4 maps again run breadth-first.  The old per-device
  // loop blocked the host between each device's steps and serialized the
  // whole pipeline ~deviceCount times.
  struct DeviceScan {
    PartRange range;
    std::size_t chunk = 0;
    std::size_t numChunks = 0;
    std::unique_ptr<ocl::Buffer> sums;
    std::unique_ptr<ocl::Buffer> offsets;
    std::vector<std::byte> hostSums;
    std::vector<std::byte> hostOffsets;
    bool skipFirst = true;  ///< decided by the host stage
    ExecGraph::NodeId step1 = 0;
  };
  std::vector<DeviceScan> devs;
  for (const PartRange& r : ranges) {
    if (r.size == 0) continue;
    DeviceScan d;
    d.range = r;
    const auto cores = static_cast<std::size_t>(sess.device(r.device).spec().cores);
    d.chunk = (r.size + 4 * cores - 1) / (4 * cores);
    d.numChunks = (r.size + d.chunk - 1) / d.chunk;
    d.sums = std::make_unique<ocl::Buffer>(sess.context(), sess.device(r.device),
                                           d.numChunks * elem);
    d.offsets = std::make_unique<ocl::Buffer>(sess.context(), sess.device(r.device),
                                              d.numChunks * elem);
    d.hostSums.resize(d.numChunks * elem);
    d.hostOffsets.resize(d.numChunks * elem);
    devs.push_back(std::move(d));
  }

  ExecGraph g(sess);
  std::uint64_t hostInstructions = 0;

  // Step 1: every GPU scans its local part independently.
  for (DeviceScan& d : devs) {
    const int dev = d.range.device;
    d.step1 = g.add(
        StageKind::Kernel, dev, "scan step1 dev" + std::to_string(dev),
        [&, &d = d, dev](std::span<const ocl::Event> deps) {
          const VectorData::DevicePart* inPart = input.partOn(dev);
          const VectorData::DevicePart* outPart = inPlace ? inPart : output.partOn(dev);
          scanChunks.setArg(0, *inPart->buffer);
          scanChunks.setArg(1, *outPart->buffer);
          scanChunks.setArg(2, *d.sums);
          scanChunks.setArg(3, static_cast<std::int32_t>(d.chunk));
          scanChunks.setArg(4, static_cast<std::int32_t>(d.range.size));
          return sess.queue(dev).enqueueNDRangeKernel(scanChunks, d.numChunks, 0, deps);
        },
        {}, inputDeps(dev, &input, nullptr, {}));
  }

  // Two-level (cluster) shape: block sums are concatenated on a per-node
  // leader device and cross the network as ONE download per node; offsets
  // come back as ONE upload per node and fan out to the members over the
  // node-internal PCIe links.  The host-side offset computation reads and
  // writes the same per-device arrays in the same order either way, so the
  // scan result is bit-identical to the flat shape for every operator.
  struct ScanNode {
    int node = 0;
    std::size_t firstDev = 0;     ///< index into `devs`
    std::size_t devCount = 0;
    std::size_t totalChunks = 0;
    int leader = 0;
    std::unique_ptr<ocl::Buffer> nodeSums;     ///< concatenated member sums
    std::unique_ptr<ocl::Buffer> nodeOffsets;  ///< concatenated member offsets
    std::vector<std::byte> staging;            ///< host copy of the concatenation
  };
  std::vector<ScanNode> scanNodes;
  {
    const std::vector<int>& nodeOf = sess.deviceNodes();
    for (std::size_t i = 0; i < devs.size(); ++i) {
      const int node = nodeOf[(std::size_t)devs[i].range.device];
      if (scanNodes.empty() || scanNodes.back().node != node) {
        ScanNode sn;
        sn.node = node;
        sn.firstDev = i;
        sn.leader = devs[i].range.device;
        scanNodes.push_back(std::move(sn));
      }
      scanNodes.back().devCount++;
      scanNodes.back().totalChunks += devs[i].numChunks;
    }
  }
  const bool tree = treeCollectivesEnabled(sess) && scanNodes.size() > 1;
  if (tree) {
    for (ScanNode& sn : scanNodes) {
      sn.nodeSums = std::make_unique<ocl::Buffer>(sess.context(), sess.device(sn.leader),
                                                  sn.totalChunks * elem);
      sn.nodeOffsets = std::make_unique<ocl::Buffer>(
          sess.context(), sess.device(sn.leader), sn.totalChunks * elem);
      sn.staging.resize(sn.totalChunks * elem);
    }
  }

  // Step 2: download every device's block sums (overlapping reads), or — on
  // a cluster — gather them node-locally and download once per node.
  std::vector<ExecGraph::NodeId> sumReads;
  if (tree) {
    for (ScanNode& sn : scanNodes) {
      std::vector<ExecGraph::NodeId> copies;
      std::size_t dstOffset = 0;
      for (std::size_t m = sn.firstDev; m < sn.firstDev + sn.devCount; ++m) {
        DeviceScan& d = devs[m];
        copies.push_back(g.add(
            StageKind::Copy, sn.leader,
            "scan node" + std::to_string(sn.node) + " sums dev" +
                std::to_string(d.range.device),
            [&, &d = d, &sn = sn, dstOffset](std::span<const ocl::Event> deps) {
              return sess.queue(sn.leader).enqueueCopyBuffer(
                  *d.sums, *sn.nodeSums, 0, dstOffset, d.hostSums.size(), deps);
            },
            {d.step1}));
        dstOffset += d.hostSums.size();
      }
      sumReads.push_back(g.add(
          StageKind::Download, sn.leader,
          "scan node" + std::to_string(sn.node) + " sums download",
          [&, &sn = sn](std::span<const ocl::Event> deps) {
            const ocl::Event ev = sess.queue(sn.leader).enqueueReadBuffer(
                *sn.nodeSums, 0, sn.staging.size(), sn.staging.data(),
                /*blocking=*/false, deps);
            // Split the concatenation back into the per-device arrays the
            // host offsets stage reads (data effects are eager).
            std::size_t off = 0;
            for (std::size_t m = sn.firstDev; m < sn.firstDev + sn.devCount; ++m) {
              std::memcpy(devs[m].hostSums.data(), sn.staging.data() + off,
                          devs[m].hostSums.size());
              off += devs[m].hostSums.size();
            }
            return ev;
          },
          copies));
    }
  } else {
    for (DeviceScan& d : devs) {
      const int dev = d.range.device;
      sumReads.push_back(g.add(
          StageKind::Download, dev, "scan sums dev" + std::to_string(dev),
          [&, &d = d, dev](std::span<const ocl::Event> deps) {
            return sess.queue(dev).enqueueReadBuffer(*d.sums, 0, d.hostSums.size(),
                                                     d.hostSums.data(), /*blocking=*/false,
                                                     deps);
          },
          {d.step1}));
    }
  }

  // Step 3: one host stage computes the combined offsets of every device:
  // the fold of all previous devices' totals combined with the exclusive
  // prefix of the local chunk sums.
  const ExecGraph::NodeId offsetsNode = g.add(
      StageKind::Host, -1, "scan offsets host",
      [&](std::span<const ocl::Event> deps) {
        auto& system = sess.system();
        system.advanceHost(ExecGraph::latestEnd(system, deps));
        kc::Vm vm(*hostProgram, {});
        bool haveDeviceOffset = false;
        kc::Slot deviceOffset{};  // fold of the totals of all previous devices
        for (DeviceScan& d : devs) {
          bool haveChunkOffset = false;
          kc::Slot chunkOffset{};
          for (std::size_t w = 0; w < d.numChunks; ++w) {
            kc::Slot combined{};
            bool haveCombined = false;
            if (crossDevice && haveDeviceOffset && haveChunkOffset) {
              combined = vm.callFunction(fn, std::array<kc::Slot, 2>{deviceOffset, chunkOffset});
              haveCombined = true;
            } else if (crossDevice && haveDeviceOffset) {
              combined = deviceOffset;
              haveCombined = true;
            } else if (haveChunkOffset) {
              combined = chunkOffset;
              haveCombined = true;
            }
            if (haveCombined) {
              slotToBytes(kind, combined, d.hostOffsets.data() + w * elem);
            } else {
              // chunk 0 of the first device: no offset (skipped by the kernel)
              std::memset(d.hostOffsets.data() + w * elem, 0, elem);
            }
            // fold this chunk's total into the running chunk offset
            const kc::Slot sum = slotFromBytes(kind, d.hostSums.data() + w * elem);
            chunkOffset = haveChunkOffset
                              ? vm.callFunction(fn, std::array<kc::Slot, 2>{chunkOffset, sum})
                              : sum;
            haveChunkOffset = true;
          }
          // The step-4 map skips only the very first chunk of the first
          // device (paper Figure 2, bottom).
          d.skipFirst = !(crossDevice && haveDeviceOffset);
          // the device's total feeds the next device's offset
          if (crossDevice) {
            deviceOffset = haveDeviceOffset
                               ? vm.callFunction(fn, std::array<kc::Slot, 2>{deviceOffset,
                                                                             chunkOffset})
                               : chunkOffset;
            haveDeviceOffset = true;
          }
        }
        hostInstructions = vm.instructionsExecuted();
        const auto span =
            system.reserveHostCompute(input.count() / 64 + 64, hostInstructions);
        return ocl::Event(span.start, span.end, system.clockEpoch());
      },
      sumReads);

  // Step 4: upload the offsets and run the implicitly created map on every
  // device (paper Figure 2, bottom).  On a cluster the offsets cross the
  // network once per node (to the leader) and fan out over PCIe.
  std::vector<std::pair<int, ExecGraph::NodeId>> step4;
  if (tree) {
    for (ScanNode& sn : scanNodes) {
      const ExecGraph::NodeId up = g.add(
          StageKind::Upload, sn.leader,
          "scan node" + std::to_string(sn.node) + " offsets upload",
          [&, &sn = sn](std::span<const ocl::Event> deps) {
            std::size_t off = 0;
            for (std::size_t m = sn.firstDev; m < sn.firstDev + sn.devCount; ++m) {
              std::memcpy(sn.staging.data() + off, devs[m].hostOffsets.data(),
                          devs[m].hostOffsets.size());
              off += devs[m].hostOffsets.size();
            }
            return sess.queue(sn.leader).enqueueWriteBuffer(
                *sn.nodeOffsets, 0, sn.staging.size(), sn.staging.data(),
                /*blocking=*/false, deps);
          },
          {offsetsNode});
      std::size_t srcOffset = 0;
      for (std::size_t m = sn.firstDev; m < sn.firstDev + sn.devCount; ++m) {
        DeviceScan& d = devs[m];
        const int dev = d.range.device;
        const ExecGraph::NodeId scatter = g.add(
            StageKind::Copy, dev,
            "scan node" + std::to_string(sn.node) + " offsets dev" + std::to_string(dev),
            [&, &d = d, &sn = sn, dev, srcOffset](std::span<const ocl::Event> deps) {
              return sess.queue(dev).enqueueCopyBuffer(*sn.nodeOffsets, *d.offsets,
                                                       srcOffset, 0, d.hostOffsets.size(),
                                                       deps);
            },
            {up});
        srcOffset += d.hostOffsets.size();
        step4.emplace_back(dev, g.add(
            StageKind::Kernel, dev, "scan step2 dev" + std::to_string(dev),
            [&, &d = d, dev](std::span<const ocl::Event> deps) {
              const VectorData::DevicePart* outPart =
                  inPlace ? input.partOn(dev) : output.partOn(dev);
              scanAdd.setArg(0, *outPart->buffer);
              scanAdd.setArg(1, *d.offsets);
              scanAdd.setArg(2, static_cast<std::int32_t>(d.chunk));
              scanAdd.setArg(3, static_cast<std::int32_t>(d.range.size));
              scanAdd.setArg(4, static_cast<std::int32_t>(d.skipFirst ? 1 : 0));
              return sess.queue(dev).enqueueNDRangeKernel(scanAdd, d.numChunks, 0, deps);
            },
            {scatter, d.step1}));
      }
    }
  } else {
    for (DeviceScan& d : devs) {
      const int dev = d.range.device;
      const ExecGraph::NodeId up = g.add(
          StageKind::Upload, dev, "scan offsets dev" + std::to_string(dev),
          [&, &d = d, dev](std::span<const ocl::Event> deps) {
            return sess.queue(dev).enqueueWriteBuffer(*d.offsets, 0, d.hostOffsets.size(),
                                                      d.hostOffsets.data(), /*blocking=*/false,
                                                      deps);
          },
          {offsetsNode});
      step4.emplace_back(dev, g.add(
          StageKind::Kernel, dev, "scan step2 dev" + std::to_string(dev),
          [&, &d = d, dev](std::span<const ocl::Event> deps) {
            const VectorData::DevicePart* outPart =
                inPlace ? input.partOn(dev) : output.partOn(dev);
            scanAdd.setArg(0, *outPart->buffer);
            scanAdd.setArg(1, *d.offsets);
            scanAdd.setArg(2, static_cast<std::int32_t>(d.chunk));
            scanAdd.setArg(3, static_cast<std::int32_t>(d.range.size));
            scanAdd.setArg(4, static_cast<std::int32_t>(d.skipFirst ? 1 : 0));
            return sess.queue(dev).enqueueNDRangeKernel(scanAdd, d.numChunks, 0, deps);
          },
          {up, d.step1}));
    }
  }

  g.run();
  for (const auto& [dev, node] : step4) {
    (inPlace ? input : output).recordDeviceWrite(dev, g.event(node));
  }
  output.markDevicesModified();
}

}  // namespace

void runScan(Session& session, const std::string& userSource, VectorData& input,
             VectorData& output, const std::string& typeName) {
  std::lock_guard<std::recursive_mutex> lock(session.shared().mutex());
  const bool inPlace = &output == &input;
  withDeviceLossRecovery(session, {&input}, inPlace ? nullptr : &output, [&] {
    runScanOnce(session, userSource, input, output, typeName);
  });
}

// ---------------------------------------------------------------------------
// Fused map/zip chains (and chain + reduce)
// ---------------------------------------------------------------------------

namespace {

bool identChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Rename every whole-word occurrence of `names` in `source` to prefix+name.
/// Keeps the user functions of different fused stages apart in the single
/// merged translation unit (each stage defines its own `func`, and possibly
/// helpers with colliding names).
std::string renameFunctions(const std::string& source,
                            const std::vector<std::string>& names,
                            const std::string& prefix) {
  std::string out = source;
  for (const std::string& name : names) {
    std::string next;
    std::size_t pos = 0;
    for (;;) {
      const std::size_t hit = out.find(name, pos);
      if (hit == std::string::npos) {
        next.append(out, pos, std::string::npos);
        break;
      }
      next.append(out, pos, hit - pos);
      const bool wordStart = hit == 0 || !identChar(out[hit - 1]);
      const bool wordEnd =
          hit + name.size() >= out.size() || !identChar(out[hit + name.size()]);
      if (wordStart && wordEnd) next += prefix;
      next += name;
      pos = hit + name.size();
    }
    out = std::move(next);
  }
  return out;
}

std::string stagePrefix(std::size_t s) { return "skelcl_s" + std::to_string(s) + "_"; }

/// Function names declared by a user source (its extra-argument typedefs are
/// prepended so sources referencing those structs compile standalone).  Goes
/// through the host-program cache, so each distinct source compiles once.
std::vector<std::string> declaredFunctions(Session& sess, const std::string& userSource,
                                           const std::vector<ExtraArg>& extras) {
  const auto program = sess.hostProgram(gatherTypedefs(extras) + userSource);
  std::vector<std::string> names;
  names.reserve(program->functions.size());
  for (const auto& fn : program->functions) names.push_back(fn.name);
  return names;
}

/// The whole chain as one nested call expression evaluated at element `idx`:
/// skelcl_s1_func(skelcl_s0_func(skelcl_in1[idx], ...), skelcl_zin1[idx], ...)
std::string chainExprAt(const std::vector<FusedStage>& stages, const std::string& idx) {
  std::string expr = "skelcl_in1[" + idx + "]";
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const FusedStage& st = stages[s];
    std::string call = stagePrefix(s) + "func(" + expr;
    if (st.zipInput != nullptr) {
      call += ", skelcl_zin" + std::to_string(s) + "[" + idx + "]";
    }
    call += extraNames(st.extras, stagePrefix(s) + "a");
    call += ")";
    expr = std::move(call);
  }
  return expr;
}

/// Merged struct typedefs (deduplicated across stages, conflicting
/// definitions rejected) followed by every stage's user source renamed apart.
std::string fusedSourcePrelude(Session& sess, const std::vector<FusedStage>& stages,
                               const std::vector<ExtraArg>& allExtras) {
  std::string source = gatherTypedefs(allExtras);
  for (std::size_t s = 0; s < stages.size(); ++s) {
    source += renameFunctions(stages[s].userSource,
                              declaredFunctions(sess, stages[s].userSource, stages[s].extras),
                              stagePrefix(s));
    source += "\n";
  }
  return source;
}

std::vector<ExtraArg> mergedExtras(const std::vector<FusedStage>& stages,
                                   const std::vector<ExtraArg>* reduceExtras = nullptr) {
  std::vector<ExtraArg> all;
  for (const FusedStage& st : stages) {
    all.insert(all.end(), st.extras.begin(), st.extras.end());
  }
  if (reduceExtras != nullptr) {
    all.insert(all.end(), reduceExtras->begin(), reduceExtras->end());
  }
  return all;
}

/// Producer events of every chain input on `device`.
std::vector<ocl::Event> chainDeps(int device, VectorData& input,
                                  const std::vector<FusedStage>& stages) {
  std::vector<ocl::Event> deps;
  addPartDep(deps, &input, device);
  for (const FusedStage& st : stages) {
    addPartDep(deps, st.zipInput, device);
    for (const ExtraArg& e : st.extras) {
      if (e.kind == ExtraArg::Kind::VectorRef) addPartDep(deps, e.vector, device);
    }
  }
  return deps;
}

std::vector<VectorData*> chainRecoveryInputs(VectorData& input,
                                             const std::vector<FusedStage>& stages) {
  std::vector<VectorData*> inputs{&input};
  for (const FusedStage& st : stages) {
    if (st.zipInput != nullptr) inputs.push_back(st.zipInput);
    for (const ExtraArg& e : st.extras) {
      if (e.kind == ExtraArg::Kind::VectorRef) inputs.push_back(e.vector);
    }
  }
  return inputs;
}

/// Fusion eligibility: no intermediate is observed by the host, and every
/// zip input either has no distribution yet or already matches the chain's.
/// (An extra argument can only alias an intermediate through an observe
/// sink, so the observe rule subsumes that case.)
bool chainEligible(VectorData& input, const std::vector<FusedStage>& stages) {
  const Distribution dist =
      input.distribution().isSet() ? input.distribution() : Distribution::block();
  for (const FusedStage& st : stages) {
    if (st.observeSink != nullptr) return false;
    if (st.zipInput != nullptr) {
      const Distribution& zd = st.zipInput->distribution();
      if (zd.isSet() && !(zd == dist)) return false;
    }
  }
  return true;
}

/// Resolve the chain distribution, propagate it to every vector involved,
/// and materialize device parts.  Only called on eligible chains, where the
/// chain distribution applies to all zip inputs.
Distribution materializeChainInputs(Session& sess, VectorData& input,
                                    std::vector<FusedStage>& stages) {
  input.defaultDistribution(Distribution::block());
  const Distribution dist = input.distribution();
  input.ensureOnDevices(sess);
  for (FusedStage& st : stages) {
    if (st.zipInput != nullptr) {
      SKELCL_CHECK(st.zipInput->count() == input.count(),
                   "zip inputs must have the same size");
      if (st.zipInput != &input) {
        st.zipInput->setDistribution(dist);
        st.zipInput->ensureOnDevices(sess);
      }
    }
    prepareExtras(sess, st.extras);
  }
  return dist;
}

bool chainWritesInput(const VectorData& output, const VectorData& input,
                      const std::vector<FusedStage>& stages) {
  if (&output == &input) return true;
  for (const FusedStage& st : stages) {
    if (st.zipInput == &output) return true;
  }
  return false;
}

/// The fused execution: ONE generated kernel per device evaluates the whole
/// chain element-wise — no intermediate vectors exist anywhere.
void runFusedChainOnce(Session& sess, VectorData& input, const std::string& inTypeName,
                       std::vector<FusedStage>& stages, VectorData& output) {
  const std::size_t n = input.count();
  const Distribution dist = materializeChainInputs(sess, input, stages);

  const bool inPlace = chainWritesInput(output, input, stages);
  output.setDistribution(dist);
  if (!inPlace) output.ensureOnDevicesNoUpload(sess);

  std::string source = fusedSourcePrelude(sess, stages, mergedExtras(stages));
  source += "__kernel void skelcl_fused(__global " + inTypeName + "* skelcl_in1";
  for (std::size_t s = 0; s < stages.size(); ++s) {
    if (stages[s].zipInput != nullptr) {
      source += ", __global " + stages[s].zipTypeName + "* skelcl_zin" + std::to_string(s);
    }
  }
  source += ", __global " + stages.back().outTypeName +
            "* skelcl_out, int skelcl_n, int skelcl_base";
  for (std::size_t s = 0; s < stages.size(); ++s) {
    source += extraParams(stages[s].extras, stagePrefix(s) + "a");
  }
  source +=
      ") {\n"
      "  int skelcl_i = get_global_id(0);\n"
      "  if (skelcl_i < skelcl_n) skelcl_out[skelcl_i] = " +
      chainExprAt(stages, "skelcl_i") + ";\n}\n";

  auto program = sess.programForSource(source);
  ocl::Kernel kernel(*program, "skelcl_fused");

  const auto ranges = sess.partition(dist, n);
  ExecGraph g(sess);
  std::vector<std::pair<int, ExecGraph::NodeId>> launches;
  const std::string label = "fused x" + std::to_string(stages.size());
  for (const PartRange& r : ranges) {
    if (r.size == 0) continue;
    launches.emplace_back(
        r.device,
        g.add(StageKind::Fused, r.device, label + " dev" + std::to_string(r.device),
              [&, r](std::span<const ocl::Event> deps) {
                std::size_t arg = 0;
                kernel.setArg(arg++, *input.partOn(r.device)->buffer);
                for (const FusedStage& st : stages) {
                  if (st.zipInput != nullptr) {
                    kernel.setArg(arg++, *st.zipInput->partOn(r.device)->buffer);
                  }
                }
                kernel.setArg(arg++, *output.partOn(r.device)->buffer);
                kernel.setArg(arg++, static_cast<std::int32_t>(r.size));
                kernel.setArg(arg++, static_cast<std::int32_t>(r.offset));
                for (const FusedStage& st : stages) {
                  bindExtras(sess, kernel, arg, st.extras, r.device);
                  arg += st.extras.size();
                }
                return sess.queue(r.device).enqueueNDRangeKernel(kernel, r.size, 0, deps);
              },
              {}, chainDeps(r.device, input, stages)));
  }
  g.run();
  if (!launches.empty()) {
    for (const auto& [device, node] : launches) {
      output.recordDeviceWrite(device, g.event(node));
    }
    output.markDevicesModified();
  }
}

/// The unfused fallback: every stage through the ordinary element-wise
/// engine, intermediates in heap temporaries — or in the observe sinks whose
/// presence made the chain ineligible in the first place.
void runChainUnfused(Session& sess, VectorData& input, const std::string& inTypeName,
                     std::vector<FusedStage>& stages, VectorData& output) {
  const std::size_t n = input.count();
  VectorData* cur = &input;
  std::string curType = inTypeName;
  std::vector<std::unique_ptr<VectorData>> temps;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    FusedStage& st = stages[s];
    const bool last = s + 1 == stages.size();
    if (st.observeSink != nullptr) {
      SKELCL_CHECK(st.observeSink->count() == n &&
                       st.observeSink->elemSize() == st.outElemSize,
                   "observed intermediate has the wrong size");
    }
    VectorData* dst = &output;
    if (!last) {
      if (st.observeSink != nullptr) {
        dst = st.observeSink;
      } else {
        temps.push_back(std::make_unique<VectorData>(n, st.outElemSize, st.outElemKind));
        dst = temps.back().get();
      }
    }
    runElementwise(sess, st.userSource, cur, st.zipInput, 0, Distribution{}, *dst, curType,
                   st.zipTypeName, st.outTypeName, st.extras);
    if (last && st.observeSink != nullptr && st.observeSink != &output) {
      const std::byte* bytes = dst->hostRead(&sess);
      std::memcpy(st.observeSink->hostWrite(&sess), bytes, n * st.outElemSize);
    }
    cur = dst;
    curType = st.outTypeName;
  }
}

}  // namespace

bool runFusedChain(Session& session, VectorData& input, const std::string& inTypeName,
                   std::vector<FusedStage>& stages, VectorData& output,
                   bool forceUnfused) {
  SKELCL_CHECK(!stages.empty(), "skeleton pipeline has no stages");
  SKELCL_CHECK(output.count() == input.count(), "pipeline output size mismatch");
  std::lock_guard<std::recursive_mutex> lock(session.shared().mutex());
  if (forceUnfused || !chainEligible(input, stages)) {
    runChainUnfused(session, input, inTypeName, stages, output);
    return false;
  }
  const bool inPlace = chainWritesInput(output, input, stages);
  withDeviceLossRecovery(session, chainRecoveryInputs(input, stages),
                         inPlace ? nullptr : &output,
                         [&] { runFusedChainOnce(session, input, inTypeName, stages, output); });
  return true;
}

namespace {

/// Fused chain + reduce: the chain expression is inlined directly into the
/// chunked device-local reduction (step 1); gather and host fold are the
/// same three-step plan as the plain reduce skeleton.
kc::Slot runFusedReduceOnce(Session& sess, VectorData& input, const std::string& inTypeName,
                            std::vector<FusedStage>& stages,
                            const std::string& reduceSource,
                            std::vector<ExtraArg>& reduceExtras) {
  SKELCL_CHECK(input.count() > 0, "reduce of an empty vector");

  const Distribution dist = materializeChainInputs(sess, input, stages);
  (void)dist;
  prepareExtras(sess, reduceExtras);

  const std::string typeName = stages.back().outTypeName;
  const ElemKind outKind = stages.back().outElemKind;
  const std::size_t outElem = stages.back().outElemSize;

  std::string source = fusedSourcePrelude(sess, stages, mergedExtras(stages, &reduceExtras));
  source += renameFunctions(reduceSource, declaredFunctions(sess, reduceSource, reduceExtras),
                            "skelcl_r_");
  source += "\n__kernel void skelcl_fused_reduce(__global " + inTypeName + "* skelcl_in1";
  for (std::size_t s = 0; s < stages.size(); ++s) {
    if (stages[s].zipInput != nullptr) {
      source += ", __global " + stages[s].zipTypeName + "* skelcl_zin" + std::to_string(s);
    }
  }
  source += ", __global " + typeName + "* skelcl_partials, int skelcl_n, int skelcl_chunk";
  for (std::size_t s = 0; s < stages.size(); ++s) {
    source += extraParams(stages[s].extras, stagePrefix(s) + "a");
  }
  source += extraParams(reduceExtras, "skelcl_r_a");
  source +=
      ") {\n"
      "  int skelcl_w = get_global_id(0);\n"
      "  int skelcl_begin = skelcl_w * skelcl_chunk;\n"
      "  int skelcl_end = min(skelcl_begin + skelcl_chunk, skelcl_n);\n"
      "  " + typeName + " skelcl_acc = " + chainExprAt(stages, "skelcl_begin") + ";\n"
      "  for (int skelcl_i = skelcl_begin + 1; skelcl_i < skelcl_end; ++skelcl_i)\n"
      "    skelcl_acc = skelcl_r_func(skelcl_acc, " + chainExprAt(stages, "skelcl_i") +
      extraNames(reduceExtras, "skelcl_r_a") + ");\n"
      "  skelcl_partials[skelcl_w] = skelcl_acc;\n}\n";

  auto program = sess.programForSource(source);
  ocl::Kernel kernel(*program, "skelcl_fused_reduce");

  std::vector<PartRange> ranges = input.plannedPartition(sess);
  if (input.distribution().kind() == Distribution::Kind::Copy) {
    // Every device holds the full data; reduce the first copy only.
    ranges.resize(1);
  }

  struct Pending {
    int device = 0;
    std::size_t numPartials = 0;
    std::size_t chunk = 0;
    std::size_t gatherOffset = 0;
    std::unique_ptr<ocl::Buffer> partials;
    ExecGraph::NodeId kernelNode = 0;
  };
  std::vector<Pending> pending;
  std::size_t gatheredBytes = 0;
  for (const PartRange& r : ranges) {
    if (r.size == 0) continue;
    const auto cores = static_cast<std::size_t>(sess.device(r.device).spec().cores);
    Pending p;
    p.device = r.device;
    p.chunk = (r.size + 4 * cores - 1) / (4 * cores);
    p.numPartials = (r.size + p.chunk - 1) / p.chunk;
    p.partials = std::make_unique<ocl::Buffer>(sess.context(), sess.device(r.device),
                                               p.numPartials * outElem);
    p.gatherOffset = gatheredBytes;
    gatheredBytes += p.numPartials * outElem;
    pending.push_back(std::move(p));
  }
  SKELCL_CHECK(!pending.empty(), "reduce produced no device work");

  ExecGraph g(sess);
  auto rangeOf = [&ranges](int device) -> const PartRange& {
    for (const PartRange& r : ranges) {
      if (r.device == device) return r;
    }
    throw UsageError("reduce: no part range for device");
  };
  for (Pending& p : pending) {
    std::vector<ocl::Event> deps = chainDeps(p.device, input, stages);
    for (const ExtraArg& e : reduceExtras) {
      if (e.kind == ExtraArg::Kind::VectorRef) addPartDep(deps, e.vector, p.device);
    }
    p.kernelNode = g.add(
        StageKind::Fused, p.device,
        "fused x" + std::to_string(stages.size()) + " reduce dev" + std::to_string(p.device),
        [&, &p = p](std::span<const ocl::Event> d) {
          const PartRange& r = rangeOf(p.device);
          std::size_t arg = 0;
          kernel.setArg(arg++, *input.partOn(p.device)->buffer);
          for (const FusedStage& st : stages) {
            if (st.zipInput != nullptr) {
              kernel.setArg(arg++, *st.zipInput->partOn(p.device)->buffer);
            }
          }
          kernel.setArg(arg++, *p.partials);
          kernel.setArg(arg++, static_cast<std::int32_t>(r.size));
          kernel.setArg(arg++, static_cast<std::int32_t>(p.chunk));
          for (const FusedStage& st : stages) {
            bindExtras(sess, kernel, arg, st.extras, p.device);
            arg += st.extras.size();
          }
          bindExtras(sess, kernel, arg, reduceExtras, p.device);
          return sess.queue(p.device).enqueueNDRangeKernel(kernel, p.numPartials, 0, d);
        },
        {}, std::move(deps));
  }

  std::vector<std::byte> gathered(gatheredBytes);
  std::vector<ExecGraph::NodeId> gatherNodes;
  for (Pending& p : pending) {
    gatherNodes.push_back(g.add(
        StageKind::Download, p.device, "reduce gather dev" + std::to_string(p.device),
        [&, &p = p](std::span<const ocl::Event> deps) {
          return sess.queue(p.device).enqueueReadBuffer(
              *p.partials, 0, p.numPartials * outElem,
              gathered.data() + p.gatherOffset, /*blocking=*/false, deps);
        },
        {p.kernelNode}));
  }

  const auto hostProgram = sess.hostProgram(gatherTypedefs(reduceExtras) + reduceSource);
  const int fn = hostProgram->findFunction("func");
  kc::Slot acc{};
  g.add(StageKind::Host, -1, "reduce host fold",
        [&](std::span<const ocl::Event> deps) {
          auto& system = sess.system();
          system.advanceHost(ExecGraph::latestEnd(system, deps));
          kc::Vm vm(*hostProgram, {});
          const std::size_t total = gathered.size() / outElem;
          acc = slotFromBytes(outKind, gathered.data());
          for (std::size_t i = 1; i < total; ++i) {
            const kc::Slot x = slotFromBytes(outKind, gathered.data() + i * outElem);
            if (reduceExtras.empty()) {
              acc = vm.callFunction(fn, std::array<kc::Slot, 2>{acc, x});
            } else {
              std::vector<kc::Slot> args = {acc, x};
              for (const ExtraArg& e : reduceExtras) {
                SKELCL_CHECK(e.kind == ExtraArg::Kind::Scalar,
                             "reduce supports only scalar additional arguments");
                args.push_back(e.scalarIsFloat ? kc::Slot::fromFloat(e.scalarF)
                                               : kc::Slot::fromInt(e.scalarI));
              }
              acc = vm.callFunction(fn, args);
            }
          }
          const auto span = system.reserveHostCompute(gathered.size(), vm.instructionsExecuted());
          return ocl::Event(span.start, span.end, system.clockEpoch());
        },
        gatherNodes);
  g.run();
  return acc;
}

}  // namespace

kc::Slot runFusedReduce(Session& session, VectorData& input, const std::string& inTypeName,
                        std::vector<FusedStage>& stages,
                        const std::string& reduceSource,
                        std::vector<ExtraArg>& reduceExtras,
                        bool forceUnfused, bool* ranFused) {
  std::lock_guard<std::recursive_mutex> lock(session.shared().mutex());
  if (stages.empty()) {
    // No chain to fuse; the plain reduce already launches a single kernel.
    if (ranFused != nullptr) *ranFused = false;
    return runReduce(session, reduceSource, input, inTypeName, reduceExtras);
  }
  const bool fused = !forceUnfused && chainEligible(input, stages);
  if (ranFused != nullptr) *ranFused = fused;
  if (!fused) {
    VectorData temp(input.count(), stages.back().outElemSize, stages.back().outElemKind);
    runChainUnfused(session, input, inTypeName, stages, temp);
    return runReduce(session, reduceSource, temp, stages.back().outTypeName, reduceExtras);
  }
  std::vector<VectorData*> inputs = chainRecoveryInputs(input, stages);
  for (const ExtraArg& e : reduceExtras) {
    if (e.kind == ExtraArg::Kind::VectorRef) inputs.push_back(e.vector);
  }
  return withDeviceLossRecovery(session, std::move(inputs), nullptr, [&] {
    return runFusedReduceOnce(session, input, inTypeName, stages, reduceSource, reduceExtras);
  });
}

// ---------------------------------------------------------------------------
// MapOverlap (1D / 2D stencils with inter-device halo exchange)
// ---------------------------------------------------------------------------

namespace {

/// One contiguous run of in-range halo elements (1D) or halo rows (2D) owned
/// by another part of the same block partition.
struct HaloSegment {
  std::size_t begin = 0;       ///< global element/row index (inclusive)
  std::size_t end = 0;         ///< global element/row index (exclusive)
  std::size_t ownerIndex = 0;  ///< index into the partition plan
};

/// Decompose the in-range portion of the halo interval [lo, hi) into
/// per-owner contiguous segments, in ascending global order.  Block
/// partitions are contiguous, disjoint and covering (checked in
/// Distribution::partition), so the segments are simply the intersections
/// with every part other than `self` — when the radius exceeds a
/// neighbour's part, a halo spans several owners (multi-hop).
std::vector<HaloSegment> haloSegments(const std::vector<PartRange>& ranges, std::size_t self,
                                      std::ptrdiff_t lo, std::ptrdiff_t hi,
                                      std::size_t count) {
  std::vector<HaloSegment> segs;
  const std::size_t begin = lo < 0 ? 0 : static_cast<std::size_t>(lo);
  const std::size_t end =
      hi > static_cast<std::ptrdiff_t>(count) ? count : static_cast<std::size_t>(hi);
  if (begin >= end) return segs;
  for (std::size_t q = 0; q < ranges.size(); ++q) {
    if (q == self) continue;
    const std::size_t s = std::max(begin, ranges[q].offset);
    const std::size_t e = std::min(end, ranges[q].offset + ranges[q].size);
    if (s < e) segs.push_back(HaloSegment{s, e, q});
  }
  std::sort(segs.begin(), segs.end(),
            [](const HaloSegment& a, const HaloSegment& b) { return a.begin < b.begin; });
  return segs;
}

/// `count` copies of the neutral element as raw bytes (scalar kinds only —
/// the skeleton front ends restrict elements to float/double/int/uint).
std::vector<std::byte> neutralBytes(const ExtraArg& neutral, ElemKind kind, std::size_t elem,
                                    std::size_t count) {
  std::vector<std::byte> out(count * elem);
  const kc::Slot v = neutral.scalarIsFloat ? kc::Slot::fromFloat(neutral.scalarF)
                                           : kc::Slot::fromInt(neutral.scalarI);
  for (std::size_t i = 0; i < count; ++i) slotToBytes(kind, v, out.data() + i * elem);
  return out;
}

void bindNeutral(ocl::Kernel& kernel, std::size_t arg, const ExtraArg& neutral) {
  if (neutral.scalarIsFloat) {
    kernel.setArg(arg, neutral.scalarF);
  } else {
    kernel.setArg(arg, neutral.scalarI);
  }
}

void runMapOverlap1DOnce(Session& sess, const std::string& userSource, VectorData& input,
                         VectorData& output, const std::string& typeName, std::size_t radius,
                         Padding padding, const ExtraArg& neutral,
                         std::vector<ExtraArg>& extras) {
  const std::size_t n = input.count();
  if (n == 0) return;  // empty in, empty out

  // Stencils need the contiguous block layout; any other distribution is
  // switched to block (as zip does for mismatched inputs, paper III-C).
  if (input.distribution().kind() != Distribution::Kind::Block) {
    input.setDistribution(Distribution::block());
  }
  input.ensureOnDevices(sess);
  output.setDistribution(input.distribution());
  output.ensureOnDevicesNoUpload(sess);
  prepareExtras(sess, extras);

  const std::size_t elem = input.elemSize();
  const std::ptrdiff_t R = static_cast<std::ptrdiff_t>(radius);

  std::string source = gatherTypedefs(extras);
  source += userSource;
  source += "\n__kernel void skelcl_overlap(__global " + typeName + "* skelcl_pad, __global " +
            typeName + "* skelcl_out, int skelcl_n, int skelcl_r" + extraParams(extras) +
            ") {\n"
            "  int skelcl_i = get_global_id(0);\n"
            "  if (skelcl_i < skelcl_n) skelcl_out[skelcl_i] = "
            "func(skelcl_pad, skelcl_i + skelcl_r" + extraNames(extras) + ");\n}\n";
  auto program = sess.programForSource(source);
  ocl::Kernel kernel(*program, "skelcl_overlap");

  const std::vector<PartRange> ranges = input.plannedPartition(sess);

  struct PartPlan {
    PartRange range;
    std::unique_ptr<ocl::Buffer> padded;          ///< [haloL | interior | haloR]
    std::vector<HaloSegment> segs;                ///< ascending global order
    std::vector<std::vector<std::byte>> staging;  ///< one per segment
    std::vector<std::byte> neutralStage;          ///< boundary fill source
    std::size_t missLeft = 0;                     ///< out-of-range elements, left
    std::size_t missRight = 0;                    ///< out-of-range elements, right
    std::vector<ExecGraph::NodeId> segUploads;    ///< aligned with segs
    std::vector<ExecGraph::NodeId> padWrites;     ///< every node writing `padded`
    ExecGraph::NodeId interior = 0;
  };
  std::vector<PartPlan> plans;
  for (std::size_t pi = 0; pi < ranges.size(); ++pi) {
    const PartRange& r = ranges[pi];
    PartPlan p;
    p.range = r;
    const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(r.offset);
    const std::ptrdiff_t hiEnd = off + static_cast<std::ptrdiff_t>(r.size) + R;
    p.padded = std::make_unique<ocl::Buffer>(sess.context(), sess.device(r.device),
                                             (r.size + 2 * radius) * elem);
    p.segs = haloSegments(ranges, pi, off - R, hiEnd, n);
    for (const HaloSegment& s : p.segs) {
      p.staging.emplace_back((s.end - s.begin) * elem);
    }
    p.missLeft = off < R ? static_cast<std::size_t>(R - off) : 0;
    p.missRight = hiEnd > static_cast<std::ptrdiff_t>(n)
                      ? static_cast<std::size_t>(hiEnd - static_cast<std::ptrdiff_t>(n))
                      : 0;
    if (padding == Padding::Neutral && (p.missLeft > 0 || p.missRight > 0)) {
      p.neutralStage =
          neutralBytes(neutral, input.elemKind(), elem, std::max(p.missLeft, p.missRight));
    }
    plans.push_back(std::move(p));
  }

  // The stages are recorded stage-outer / part-inner so the in-order device
  // queues admit all halo downloads before any compute: a device serves its
  // neighbours' halos first, then copies its interior, then receives its own
  // halos, and the stencil kernels come last.
  ExecGraph g(sess);

  // Halo exchange, step 1: read each segment from its owner (kind "halo").
  for (PartPlan& p : plans) {
    p.segUploads.assign(p.segs.size(), 0);
    for (std::size_t si = 0; si < p.segs.size(); ++si) {
      const HaloSegment& s = p.segs[si];
      const PartRange& owner = ranges[s.ownerIndex];
      std::byte* dst = p.staging[si].data();
      std::vector<ocl::Event> ext;
      addPartDep(ext, &input, owner.device);
      g.add(StageKind::Halo, owner.device,
            "halo get dev" + std::to_string(owner.device) + "->dev" +
                std::to_string(p.range.device),
            [&sess, &input, owner, s, dst, elem](std::span<const ocl::Event> deps) {
              return sess.queue(owner.device)
                  .enqueueReadBuffer(*input.partOn(owner.device)->buffer,
                                     (s.begin - owner.offset) * elem,
                                     (s.end - s.begin) * elem, dst, /*blocking=*/false, deps);
            },
            {}, std::move(ext));
      p.segUploads[si] = g.size() - 1;  // placeholder; rewritten by the upload below
    }
  }
  // Interior: one device-local copy of the part's own elements.
  for (PartPlan& p : plans) {
    const PartRange r = p.range;
    std::vector<ocl::Event> ext;
    addPartDep(ext, &input, r.device);
    ocl::Buffer* padded = p.padded.get();
    p.interior = g.add(
        StageKind::Copy, r.device, "overlap interior dev" + std::to_string(r.device),
        [&sess, &input, r, padded, elem, radius](std::span<const ocl::Event> deps) {
          return sess.queue(r.device).enqueueCopyBuffer(*input.partOn(r.device)->buffer,
                                                        *padded, 0, radius * elem,
                                                        r.size * elem, deps);
        },
        {}, std::move(ext));
    p.padWrites.push_back(p.interior);
  }
  // Halo exchange, step 2: write each staged segment into the padded buffer
  // (contiguous in 1D, one upload per segment; kind "halo").
  for (PartPlan& p : plans) {
    const PartRange r = p.range;
    for (std::size_t si = 0; si < p.segs.size(); ++si) {
      const HaloSegment& s = p.segs[si];
      const ExecGraph::NodeId download = p.segUploads[si];
      const std::byte* src = p.staging[si].data();
      // padded index of global element g is g + radius - r.offset
      const std::size_t dstOff = (s.begin + radius - r.offset) * elem;
      ocl::Buffer* padded = p.padded.get();
      p.segUploads[si] = g.add(
          StageKind::Halo, r.device,
          "halo put dev" + std::to_string(ranges[s.ownerIndex].device) + "->dev" +
              std::to_string(r.device),
          [&sess, r, padded, src, s, dstOff, elem](std::span<const ocl::Event> deps) {
            return sess.queue(r.device).enqueueWriteBuffer(*padded, dstOff,
                                                           (s.end - s.begin) * elem, src,
                                                           /*blocking=*/false, deps);
          },
          {download});
      p.padWrites.push_back(p.segUploads[si]);
    }
  }
  // Boundary policy for the out-of-range ends of the padded buffer.
  for (PartPlan& p : plans) {
    const PartRange r = p.range;
    ocl::Buffer* padded = p.padded.get();
    if (padding == Padding::Neutral) {
      if (p.missLeft > 0) {
        const std::byte* src = p.neutralStage.data();
        const std::size_t bytes = p.missLeft * elem;
        p.padWrites.push_back(
            g.add(StageKind::Upload, r.device, "overlap edge dev" + std::to_string(r.device),
                  [&sess, r, padded, src, bytes](std::span<const ocl::Event> deps) {
                    return sess.queue(r.device).enqueueWriteBuffer(*padded, 0, bytes, src,
                                                                   /*blocking=*/false, deps);
                  }));
      }
      if (p.missRight > 0) {
        const std::byte* src = p.neutralStage.data();
        const std::size_t dstOff = (r.size + 2 * radius - p.missRight) * elem;
        const std::size_t bytes = p.missRight * elem;
        p.padWrites.push_back(
            g.add(StageKind::Upload, r.device, "overlap edge dev" + std::to_string(r.device),
                  [&sess, r, padded, src, dstOff, bytes](std::span<const ocl::Event> deps) {
                    return sess.queue(r.device).enqueueWriteBuffer(*padded, dstOff, bytes, src,
                                                                   /*blocking=*/false, deps);
                  }));
      }
    } else {
      // Clamp: replicate the global edge element.  Whenever an end of the
      // padded buffer is out of range, the edge element is already *in* the
      // buffer — in the interior if this part owns it, otherwise inside the
      // fetched halo (the clipped halo interval always reaches the edge).
      auto writerOf = [&](std::size_t global) -> ExecGraph::NodeId {
        if (global >= r.offset && global < r.offset + r.size) return p.interior;
        for (std::size_t si = 0; si < p.segs.size(); ++si) {
          if (global >= p.segs[si].begin && global < p.segs[si].end) return p.segUploads[si];
        }
        throw UsageError("map-overlap: clamp source element not staged");
      };
      auto clampCopies = [&](std::size_t global, std::size_t firstDst, std::size_t count) {
        const std::size_t srcOff = (global + radius - r.offset) * elem;
        const ExecGraph::NodeId dep = writerOf(global);
        for (std::size_t k = 0; k < count; ++k) {
          const std::size_t dstOff = (firstDst + k) * elem;
          p.padWrites.push_back(g.add(
              StageKind::Copy, r.device, "overlap edge dev" + std::to_string(r.device),
              [&sess, r, padded, srcOff, dstOff, elem](std::span<const ocl::Event> deps) {
                return sess.queue(r.device).enqueueCopyBuffer(*padded, *padded, srcOff,
                                                              dstOff, elem, deps);
              },
              {dep}));
        }
      };
      if (p.missLeft > 0) clampCopies(0, 0, p.missLeft);
      if (p.missRight > 0) clampCopies(n - 1, r.size + 2 * radius - p.missRight, p.missRight);
    }
  }
  // Stencil kernels, one per part.
  std::vector<std::pair<int, ExecGraph::NodeId>> launches;
  for (PartPlan& p : plans) {
    const PartRange r = p.range;
    ocl::Buffer* padded = p.padded.get();
    std::vector<ocl::Event> ext;
    for (const ExtraArg& e : extras) {
      if (e.kind == ExtraArg::Kind::VectorRef) addPartDep(ext, e.vector, r.device);
    }
    launches.emplace_back(
        r.device,
        g.add(StageKind::Kernel, r.device, "overlap dev" + std::to_string(r.device),
              [&, r, padded](std::span<const ocl::Event> deps) {
                kernel.setArg(0, *padded);
                kernel.setArg(1, *output.partOn(r.device)->buffer);
                kernel.setArg(2, static_cast<std::int32_t>(r.size));
                kernel.setArg(3, static_cast<std::int32_t>(radius));
                bindExtras(sess, kernel, 4, extras, r.device);
                return sess.queue(r.device).enqueueNDRangeKernel(kernel, r.size, 0, deps);
              },
              p.padWrites, std::move(ext)));
  }
  g.run();
  for (const auto& [device, node] : launches) {
    output.recordDeviceWrite(device, g.event(node));
  }
  if (!launches.empty()) output.markDevicesModified();
}

void runMapOverlap2DOnce(Session& sess, const std::string& userSource, MatrixData& input,
                         MatrixData& output, const std::string& typeName, std::size_t radius,
                         Padding padding, const ExtraArg& neutral,
                         std::vector<ExtraArg>& extras) {
  const std::size_t rows = input.rowCount();
  const std::size_t cols = input.columnCount();
  if (rows == 0) return;  // empty in, empty out

  VectorData& in = input.rowVector();
  VectorData& out = output.rowVector();
  if (in.distribution().kind() != Distribution::Kind::Block) {
    in.setDistribution(Distribution::block());
  }
  in.ensureOnDevices(sess);
  out.setDistribution(in.distribution());
  out.ensureOnDevicesNoUpload(sess);
  prepareExtras(sess, extras);

  const std::size_t elem = input.scalarSize();
  const std::size_t stride = cols + 2 * radius;
  const std::ptrdiff_t R = static_cast<std::ptrdiff_t>(radius);

  // Two kernels per program: the pack kernel assembles the padded part
  // (interior from the part's own rows, column padding and out-of-matrix
  // rows from the boundary policy; in-matrix halo rows were uploaded before
  // it runs and are left untouched), then the stencil kernel consumes it.
  std::string source = gatherTypedefs(extras);
  source += userSource;
  source += "\n__kernel void skelcl_mo_pack(__global " + typeName + "* skelcl_src, __global " +
            typeName +
            "* skelcl_pad, int skelcl_total, int skelcl_rows, int skelcl_cols, "
            "int skelcl_stride, int skelcl_r, int skelcl_row0, int skelcl_prows, " +
            typeName +
            " skelcl_neutral) {\n"
            "  int skelcl_i = get_global_id(0);\n"
            "  if (skelcl_i < skelcl_total) {\n"
            "    int skelcl_prow = skelcl_i / skelcl_stride;\n"
            "    int skelcl_col = skelcl_i % skelcl_stride - skelcl_r;\n"
            "    int skelcl_arow = skelcl_row0 - skelcl_r + skelcl_prow;\n"
            "    if (skelcl_col < 0 || skelcl_col >= skelcl_cols || skelcl_arow < 0 || "
            "skelcl_arow >= skelcl_rows) {\n";
  if (padding == Padding::Neutral) {
    source += "      skelcl_pad[skelcl_i] = skelcl_neutral;\n";
  } else {
    // The clamped cell is always present: in the part's own rows, or in an
    // uploaded halo row (the clipped halo row range always reaches the
    // matrix edge whenever an out-of-matrix row exists).  Halo-row cells
    // are never written by this kernel, so the read is safe under any
    // work-item order.
    source +=
        "      int skelcl_crow = clamp(skelcl_arow, 0, skelcl_rows - 1);\n"
        "      int skelcl_ccol = clamp(skelcl_col, 0, skelcl_cols - 1);\n"
        "      if (skelcl_crow >= skelcl_row0 && skelcl_crow < skelcl_row0 + skelcl_prows) {\n"
        "        skelcl_pad[skelcl_i] = "
        "skelcl_src[(skelcl_crow - skelcl_row0) * skelcl_cols + skelcl_ccol];\n"
        "      } else {\n"
        "        skelcl_pad[skelcl_i] = skelcl_pad[(skelcl_crow - skelcl_row0 + skelcl_r) * "
        "skelcl_stride + skelcl_r + skelcl_ccol];\n"
        "      }\n";
  }
  source +=
      "    } else if (skelcl_arow >= skelcl_row0 && skelcl_arow < skelcl_row0 + skelcl_prows) "
      "{\n"
      "      skelcl_pad[skelcl_i] = "
      "skelcl_src[(skelcl_arow - skelcl_row0) * skelcl_cols + skelcl_col];\n"
      "    }\n"
      "  }\n}\n";
  source += "__kernel void skelcl_overlap2(__global " + typeName + "* skelcl_pad, __global " +
            typeName + "* skelcl_out, int skelcl_n, int skelcl_cols, int skelcl_stride, "
            "int skelcl_r" + extraParams(extras) +
            ") {\n"
            "  int skelcl_i = get_global_id(0);\n"
            "  if (skelcl_i < skelcl_n) {\n"
            "    int skelcl_row = skelcl_i / skelcl_cols;\n"
            "    int skelcl_col = skelcl_i % skelcl_cols;\n"
            "    skelcl_out[skelcl_i] = func(skelcl_pad, "
            "(skelcl_row + skelcl_r) * skelcl_stride + skelcl_col + skelcl_r, skelcl_stride" +
            extraNames(extras) + ");\n  }\n}\n";
  auto program = sess.programForSource(source);
  ocl::Kernel pack(*program, "skelcl_mo_pack");
  ocl::Kernel kernel(*program, "skelcl_overlap2");

  const std::vector<PartRange> ranges = in.plannedPartition(sess);

  struct PartPlan {
    PartRange range;                              ///< row range
    std::unique_ptr<ocl::Buffer> padded;          ///< (rows + 2r) x stride scalars
    std::vector<HaloSegment> segs;                ///< halo *row* segments
    std::vector<std::vector<std::byte>> staging;  ///< one per segment
    std::vector<ExecGraph::NodeId> padWrites;     ///< downloads resolved to uploads
    ExecGraph::NodeId packNode = 0;
  };
  std::vector<PartPlan> plans;
  for (std::size_t pi = 0; pi < ranges.size(); ++pi) {
    const PartRange& r = ranges[pi];
    PartPlan p;
    p.range = r;
    const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(r.offset);
    p.padded = std::make_unique<ocl::Buffer>(sess.context(), sess.device(r.device),
                                             (r.size + 2 * radius) * stride * elem);
    p.segs = haloSegments(ranges, pi, off - R,
                          off + static_cast<std::ptrdiff_t>(r.size) + R, rows);
    for (const HaloSegment& s : p.segs) {
      p.staging.emplace_back((s.end - s.begin) * cols * elem);
    }
    plans.push_back(std::move(p));
  }

  ExecGraph g(sess);
  // Halo rows out of their owners (contiguous in the owner's part buffer).
  std::vector<std::vector<ExecGraph::NodeId>> downloads(plans.size());
  for (std::size_t pi = 0; pi < plans.size(); ++pi) {
    PartPlan& p = plans[pi];
    for (std::size_t si = 0; si < p.segs.size(); ++si) {
      const HaloSegment& s = p.segs[si];
      const PartRange& owner = ranges[s.ownerIndex];
      std::byte* dst = p.staging[si].data();
      std::vector<ocl::Event> ext;
      addPartDep(ext, &in, owner.device);
      downloads[pi].push_back(g.add(
          StageKind::Halo, owner.device,
          "halo get dev" + std::to_string(owner.device) + "->dev" +
              std::to_string(p.range.device),
          [&sess, &in, owner, s, dst, cols, elem](std::span<const ocl::Event> deps) {
            return sess.queue(owner.device)
                .enqueueReadBuffer(*in.partOn(owner.device)->buffer,
                                   (s.begin - owner.offset) * cols * elem,
                                   (s.end - s.begin) * cols * elem, dst, /*blocking=*/false,
                                   deps);
          },
          {}, std::move(ext)));
    }
  }
  // Halo rows into the padded buffers: one upload per row (the padded
  // destination is strided, the rows of one segment are not contiguous).
  for (std::size_t pi = 0; pi < plans.size(); ++pi) {
    PartPlan& p = plans[pi];
    const PartRange r = p.range;
    ocl::Buffer* padded = p.padded.get();
    for (std::size_t si = 0; si < p.segs.size(); ++si) {
      const HaloSegment& s = p.segs[si];
      const ExecGraph::NodeId download = downloads[pi][si];
      for (std::size_t row = s.begin; row < s.end; ++row) {
        const std::byte* src = p.staging[si].data() + (row - s.begin) * cols * elem;
        // padded row index of global row g is g + radius - r.offset
        const std::size_t dstOff = ((row + radius - r.offset) * stride + radius) * elem;
        p.padWrites.push_back(g.add(
            StageKind::Halo, r.device,
            "halo put dev" + std::to_string(ranges[s.ownerIndex].device) + "->dev" +
                std::to_string(r.device),
            [&sess, r, padded, src, dstOff, cols, elem](std::span<const ocl::Event> deps) {
              return sess.queue(r.device).enqueueWriteBuffer(*padded, dstOff, cols * elem, src,
                                                             /*blocking=*/false, deps);
            },
            {download}));
      }
    }
  }
  // Pack kernels: interior rows + boundary policy around them.
  for (PartPlan& p : plans) {
    const PartRange r = p.range;
    ocl::Buffer* padded = p.padded.get();
    std::vector<ocl::Event> ext;
    addPartDep(ext, &in, r.device);
    const std::size_t total = (r.size + 2 * radius) * stride;
    p.packNode = g.add(
        StageKind::Kernel, r.device, "overlap pack dev" + std::to_string(r.device),
        [&, r, padded, total](std::span<const ocl::Event> deps) {
          pack.setArg(0, *in.partOn(r.device)->buffer);
          pack.setArg(1, *padded);
          pack.setArg(2, static_cast<std::int32_t>(total));
          pack.setArg(3, static_cast<std::int32_t>(rows));
          pack.setArg(4, static_cast<std::int32_t>(cols));
          pack.setArg(5, static_cast<std::int32_t>(stride));
          pack.setArg(6, static_cast<std::int32_t>(radius));
          pack.setArg(7, static_cast<std::int32_t>(r.offset));
          pack.setArg(8, static_cast<std::int32_t>(r.size));
          bindNeutral(pack, 9, neutral);
          return sess.queue(r.device).enqueueNDRangeKernel(pack, total, 0, deps);
        },
        p.padWrites, std::move(ext));
  }
  // Stencil kernels.
  std::vector<std::pair<int, ExecGraph::NodeId>> launches;
  for (PartPlan& p : plans) {
    const PartRange r = p.range;
    ocl::Buffer* padded = p.padded.get();
    std::vector<ocl::Event> ext;
    for (const ExtraArg& e : extras) {
      if (e.kind == ExtraArg::Kind::VectorRef) addPartDep(ext, e.vector, r.device);
    }
    const std::size_t nOut = r.size * cols;
    launches.emplace_back(
        r.device,
        g.add(StageKind::Kernel, r.device, "overlap dev" + std::to_string(r.device),
              [&, r, padded, nOut](std::span<const ocl::Event> deps) {
                kernel.setArg(0, *padded);
                kernel.setArg(1, *out.partOn(r.device)->buffer);
                kernel.setArg(2, static_cast<std::int32_t>(nOut));
                kernel.setArg(3, static_cast<std::int32_t>(cols));
                kernel.setArg(4, static_cast<std::int32_t>(stride));
                kernel.setArg(5, static_cast<std::int32_t>(radius));
                bindExtras(sess, kernel, 6, extras, r.device);
                return sess.queue(r.device).enqueueNDRangeKernel(kernel, nOut, 0, deps);
              },
              {p.packNode}, std::move(ext)));
  }
  g.run();
  for (const auto& [device, node] : launches) {
    out.recordDeviceWrite(device, g.event(node));
  }
  if (!launches.empty()) out.markDevicesModified();
}

}  // namespace

void runMapOverlap1D(Session& session, const std::string& userSource, VectorData& input,
                     VectorData& output, const std::string& typeName, std::size_t radius,
                     Padding padding, const ExtraArg& neutral, std::vector<ExtraArg>& extras) {
  std::lock_guard<std::recursive_mutex> lock(session.shared().mutex());
  SKELCL_CHECK(output.count() == input.count(), "map-overlap output size mismatch");
  SKELCL_CHECK(&output != &input,
               "map-overlap cannot run in place: the stencil reads neighbours of every element");
  withDeviceLossRecovery(session, recoveryInputs(&input, nullptr, extras), &output, [&] {
    runMapOverlap1DOnce(session, userSource, input, output, typeName, radius, padding, neutral,
                        extras);
  });
}

void runMapOverlap2D(Session& session, const std::string& userSource, MatrixData& input,
                     MatrixData& output, const std::string& typeName, std::size_t radius,
                     Padding padding, const ExtraArg& neutral, std::vector<ExtraArg>& extras) {
  std::lock_guard<std::recursive_mutex> lock(session.shared().mutex());
  SKELCL_CHECK(output.rowCount() == input.rowCount() &&
                   output.columnCount() == input.columnCount(),
               "map-overlap output shape mismatch");
  SKELCL_CHECK(&output != &input,
               "map-overlap cannot run in place: the stencil reads neighbours of every element");
  withDeviceLossRecovery(session, recoveryInputs(&input.rowVector(), nullptr, extras),
                         &output.rowVector(), [&] {
                           runMapOverlap2DOnce(session, userSource, input, output, typeName,
                                               radius, padding, neutral, extras);
                         });
}

// ---------------------------------------------------------------------------
// MapPairs (all-pairs combination of two vectors into a matrix)
// ---------------------------------------------------------------------------

namespace {

void runMapPairsOnce(Session& sess, const std::string& userSource, VectorData& left,
                     VectorData& right, MatrixData& output, const std::string& leftType,
                     const std::string& rightType, const std::string& outType,
                     std::vector<ExtraArg>& extras) {
  const std::size_t rows = left.count();
  const std::size_t cols = right.count();
  if (rows == 0) return;  // empty left, empty output matrix

  // The output rows are block-partitioned; the left input follows the same
  // row blocks and the right input is replicated so every device holds the
  // full columns it combines with its rows.
  if (left.distribution().kind() != Distribution::Kind::Block) {
    left.setDistribution(Distribution::block());
  }
  if (right.distribution().kind() != Distribution::Kind::Copy) {
    right.setDistribution(Distribution::copy());
  }
  left.ensureOnDevices(sess);
  right.ensureOnDevices(sess);
  VectorData& out = output.rowVector();
  out.setDistribution(left.distribution());
  out.ensureOnDevicesNoUpload(sess);
  prepareExtras(sess, extras);

  std::string source = gatherTypedefs(extras);
  source += userSource;
  source += "\n__kernel void skelcl_pairs(__global " + leftType + "* skelcl_a, __global " +
            rightType + "* skelcl_b, __global " + outType +
            "* skelcl_out, int skelcl_n, int skelcl_cols" + extraParams(extras) +
            ") {\n"
            "  int skelcl_i = get_global_id(0);\n"
            "  if (skelcl_i < skelcl_n) skelcl_out[skelcl_i] = "
            "func(skelcl_a[skelcl_i / skelcl_cols], skelcl_b[skelcl_i % skelcl_cols]" +
            extraNames(extras) + ");\n}\n";
  auto program = sess.programForSource(source);
  ocl::Kernel kernel(*program, "skelcl_pairs");

  const std::vector<PartRange> ranges = left.plannedPartition(sess);
  ExecGraph g(sess);
  std::vector<std::pair<int, ExecGraph::NodeId>> launches;
  for (const PartRange& r : ranges) {
    const std::size_t nOut = r.size * cols;
    launches.emplace_back(
        r.device,
        g.add(StageKind::Kernel, r.device, "pairs dev" + std::to_string(r.device),
              [&, r, nOut](std::span<const ocl::Event> deps) {
                kernel.setArg(0, *left.partOn(r.device)->buffer);
                kernel.setArg(1, *right.partOn(r.device)->buffer);
                kernel.setArg(2, *out.partOn(r.device)->buffer);
                kernel.setArg(3, static_cast<std::int32_t>(nOut));
                kernel.setArg(4, static_cast<std::int32_t>(cols));
                bindExtras(sess, kernel, 5, extras, r.device);
                return sess.queue(r.device).enqueueNDRangeKernel(kernel, nOut, 0, deps);
              },
              {}, inputDeps(r.device, &left, &right, extras)));
  }
  g.run();
  for (const auto& [device, node] : launches) {
    out.recordDeviceWrite(device, g.event(node));
  }
  if (!launches.empty()) out.markDevicesModified();
}

}  // namespace

void runMapPairs(Session& session, const std::string& userSource, VectorData& left,
                 VectorData& right, MatrixData& output, const std::string& leftType,
                 const std::string& rightType, const std::string& outType,
                 std::vector<ExtraArg>& extras) {
  std::lock_guard<std::recursive_mutex> lock(session.shared().mutex());
  SKELCL_CHECK(output.rowCount() == left.count() && output.columnCount() == right.count(),
               "map-pairs output shape mismatch");
  withDeviceLossRecovery(session, recoveryInputs(&left, &right, extras), &output.rowVector(),
                         [&] {
                           runMapPairsOnce(session, userSource, left, right, output, leftType,
                                           rightType, outType, extras);
                         });
}

}  // namespace skelcl::detail
