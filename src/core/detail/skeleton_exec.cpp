#include "core/detail/skeleton_exec.hpp"

#include <cstring>
#include <unordered_set>

#include "base/strings.hpp"
#include "core/detail/runtime.hpp"
#include "kernelc/vm.hpp"

namespace skelcl::detail {

namespace {

Distribution effectiveDist(const Distribution& d) {
  if (d.kind() == Distribution::Kind::Block && d.weights().empty()) {
    const auto& w = Runtime::instance().partitionWeights();
    if (!w.empty()) return Distribution::block(w);
  }
  return d;
}

/// Deduplicated struct typedefs needed by the extra arguments.
std::string gatherTypedefs(const std::vector<ExtraArg>& extras) {
  std::string out;
  std::unordered_set<std::string> seen;
  for (const ExtraArg& e : extras) {
    if (!e.typeDefinition.empty() && seen.insert(e.typeDefinition).second) {
      out += e.typeDefinition;
      out += "\n";
    }
  }
  return out;
}

/// ", TYPE skelcl_a0, __global U* skelcl_a1, ..." for the kernel signature.
std::string extraParams(const std::vector<ExtraArg>& extras) {
  std::string out;
  for (std::size_t i = 0; i < extras.size(); ++i) {
    const ExtraArg& e = extras[i];
    out += ", ";
    switch (e.kind) {
      case ExtraArg::Kind::Scalar:
        out += e.typeName + " skelcl_a" + std::to_string(i);
        break;
      case ExtraArg::Kind::VectorRef:
        out += "__global " + e.typeName + "* skelcl_a" + std::to_string(i);
        break;
      case ExtraArg::Kind::Sizes:
      case ExtraArg::Kind::Offsets:
        out += "int skelcl_a" + std::to_string(i);
        break;
    }
  }
  return out;
}

/// ", skelcl_a0, skelcl_a1, ..." for the user-function call.
std::string extraNames(const std::vector<ExtraArg>& extras) {
  std::string out;
  for (std::size_t i = 0; i < extras.size(); ++i) {
    out += ", skelcl_a" + std::to_string(i);
  }
  return out;
}

/// Prepare all extra-argument vectors (they must carry an explicit
/// distribution, paper Section III-B) and bind extras to a kernel starting at
/// parameter `firstIndex` for `device`.
void prepareExtras(std::vector<ExtraArg>& extras) {
  for (const ExtraArg& e : extras) {
    if (e.kind == ExtraArg::Kind::Scalar) continue;
    SKELCL_CHECK(e.vector != nullptr, "extra argument vector missing");
    if (!e.vector->distribution().isSet()) {
      throw UsageError(
          "no meaningful default distribution exists for vectors passed as "
          "additional arguments; set one explicitly (paper Section III-B)");
    }
    if (e.kind == ExtraArg::Kind::VectorRef) e.vector->ensureOnDevices();
  }
}

void bindExtras(ocl::Kernel& kernel, std::size_t firstIndex,
                const std::vector<ExtraArg>& extras, int device) {
  for (std::size_t i = 0; i < extras.size(); ++i) {
    const std::size_t arg = firstIndex + i;
    const ExtraArg& e = extras[i];
    switch (e.kind) {
      case ExtraArg::Kind::Scalar:
        if (e.scalarIsFloat) {
          kernel.setArg(arg, e.scalarF);
        } else {
          kernel.setArg(arg, static_cast<std::int32_t>(e.scalarI));
        }
        break;
      case ExtraArg::Kind::VectorRef: {
        const VectorData::DevicePart* part = e.vector->partOn(device);
        if (part == nullptr || part->buffer == nullptr) {
          throw UsageError(
              "additional-argument vector has no data on device " + std::to_string(device) +
              "; give it copy distribution or a block distribution matching the input");
        }
        kernel.setArg(arg, *part->buffer);
        break;
      }
      case ExtraArg::Kind::Sizes:
        kernel.setArg(arg, static_cast<std::int32_t>(e.vector->partSizeOn(device)));
        break;
      case ExtraArg::Kind::Offsets:
        kernel.setArg(arg, static_cast<std::int32_t>(e.vector->partOffsetOn(device)));
        break;
    }
  }
}

}  // namespace

kc::Slot slotFromBytes(ElemKind kind, const std::byte* src) {
  switch (kind) {
    case ElemKind::F32: {
      float v;
      std::memcpy(&v, src, 4);
      return kc::Slot::fromFloat(v);
    }
    case ElemKind::F64: {
      double v;
      std::memcpy(&v, src, 8);
      return kc::Slot::fromFloat(v);
    }
    case ElemKind::I32:
    case ElemKind::U32: {
      std::int32_t v;
      std::memcpy(&v, src, 4);
      return kc::Slot::fromInt(v);
    }
    case ElemKind::Other:
      break;
  }
  throw UsageError("scalar element type required");
}

void slotToBytes(ElemKind kind, kc::Slot value, std::byte* dst) {
  switch (kind) {
    case ElemKind::F32: {
      const float v = static_cast<float>(value.f);
      std::memcpy(dst, &v, 4);
      return;
    }
    case ElemKind::F64:
      std::memcpy(dst, &value.f, 8);
      return;
    case ElemKind::I32:
    case ElemKind::U32: {
      const std::int32_t v = static_cast<std::int32_t>(value.i);
      std::memcpy(dst, &v, 4);
      return;
    }
    case ElemKind::Other:
      break;
  }
  throw UsageError("scalar element type required");
}

// ---------------------------------------------------------------------------
// Map / Zip
// ---------------------------------------------------------------------------

void runElementwise(const std::string& userSource, VectorData* input1, VectorData* input2,
                    std::size_t indexCount, const Distribution& indexDist,
                    VectorData& output,
                    const std::string& inType1, const std::string& inType2,
                    const std::string& outType, std::vector<ExtraArg>& extras) {
  auto& rt = Runtime::instance();
  const std::size_t n = input1 != nullptr ? input1->count() : indexCount;

  // --- distribution resolution (paper III-C) -------------------------------
  Distribution dist;
  if (input1 != nullptr && input2 != nullptr) {
    SKELCL_CHECK(input2->count() == n, "zip inputs must have the same size");
    const Distribution& d1 = input1->distribution();
    const Distribution& d2 = input2->distribution();
    if (d1.isSet() && d2.isSet()) {
      // Must match (same kind, same device for single); otherwise SkelCL
      // changes both inputs to block distribution.
      dist = (d1 == d2) ? d1 : Distribution::block();
    } else if (d1.isSet()) {
      dist = d1;
    } else if (d2.isSet()) {
      dist = d2;
    } else {
      dist = Distribution::block();  // default for unset inputs
    }
    input1->setDistribution(dist);
    input2->setDistribution(dist);
  } else if (input1 != nullptr) {
    input1->defaultDistribution(Distribution::block());
    dist = input1->distribution();
  } else {
    dist = indexDist.isSet() ? indexDist : Distribution::block();
  }

  // --- materialize inputs / output -----------------------------------------
  const bool inPlace = (&output == input1) || (&output == input2);
  if (input1 != nullptr) input1->ensureOnDevices();
  if (input2 != nullptr) input2->ensureOnDevices();
  output.setDistribution(dist);
  if (!inPlace) output.ensureOnDevicesNoUpload();
  prepareExtras(extras);

  // --- generate, compile (cached), run --------------------------------------
  const bool indexInput = input1 == nullptr;
  std::string source = gatherTypedefs(extras);
  source += userSource;
  source += "\n";
  if (input2 != nullptr) {
    source += "__kernel void skelcl_kernel(__global " + inType1 + "* skelcl_in1, __global " +
              inType2 + "* skelcl_in2, __global " + outType +
              "* skelcl_out, int skelcl_n, int skelcl_base" + extraParams(extras) +
              ") {\n"
              "  int skelcl_i = get_global_id(0);\n"
              "  if (skelcl_i < skelcl_n) skelcl_out[skelcl_i] = "
              "func(skelcl_in1[skelcl_i], skelcl_in2[skelcl_i]" +
              extraNames(extras) + ");\n}\n";
  } else if (!indexInput) {
    source += "__kernel void skelcl_kernel(__global " + inType1 + "* skelcl_in1, __global " +
              outType + "* skelcl_out, int skelcl_n, int skelcl_base" + extraParams(extras) +
              ") {\n"
              "  int skelcl_i = get_global_id(0);\n"
              "  if (skelcl_i < skelcl_n) skelcl_out[skelcl_i] = func(skelcl_in1[skelcl_i]" +
              extraNames(extras) + ");\n}\n";
  } else {
    source += "__kernel void skelcl_kernel(__global " + outType +
              "* skelcl_out, int skelcl_n, int skelcl_base" + extraParams(extras) +
              ") {\n"
              "  int skelcl_i = get_global_id(0);\n"
              "  if (skelcl_i < skelcl_n) skelcl_out[skelcl_i] = "
              "func(skelcl_base + skelcl_i" +
              extraNames(extras) + ");\n}\n";
  }

  auto program = rt.programForSource(source);
  ocl::Kernel kernel(*program, "skelcl_kernel");

  const auto ranges = effectiveDist(dist).partition(n, rt.deviceCount());
  bool launched = false;
  for (const PartRange& r : ranges) {
    if (r.size == 0) continue;
    std::size_t arg = 0;
    if (input1 != nullptr) {
      kernel.setArg(arg++, *input1->partOn(r.device)->buffer);
    }
    if (input2 != nullptr) {
      kernel.setArg(arg++, *input2->partOn(r.device)->buffer);
    }
    const VectorData::DevicePart* outPart =
        inPlace ? (&output == input1 ? input1 : input2)->partOn(r.device)
                : output.partOn(r.device);
    kernel.setArg(arg++, *outPart->buffer);
    kernel.setArg(arg++, static_cast<std::int32_t>(r.size));
    kernel.setArg(arg++, static_cast<std::int32_t>(r.offset));
    bindExtras(kernel, arg, extras, r.device);
    rt.queue(r.device).enqueueNDRangeKernel(kernel, r.size);
    launched = true;
  }
  if (launched) output.markDevicesModified();
}

// ---------------------------------------------------------------------------
// Reduce (paper III-C, three steps)
// ---------------------------------------------------------------------------

kc::Slot runReduce(const std::string& userSource, VectorData& input,
                   const std::string& typeName, std::vector<ExtraArg>& extras) {
  auto& rt = Runtime::instance();
  SKELCL_CHECK(input.count() > 0, "reduce of an empty vector");

  input.defaultDistribution(Distribution::block());
  input.ensureOnDevices();
  prepareExtras(extras);

  std::string source = gatherTypedefs(extras);
  source += userSource;
  source +=
      "\n__kernel void skelcl_reduce(__global " + typeName + "* skelcl_in, __global " +
      typeName + "* skelcl_partials, int skelcl_n, int skelcl_chunk" + extraParams(extras) +
      ") {\n"
      "  int skelcl_w = get_global_id(0);\n"
      "  int skelcl_begin = skelcl_w * skelcl_chunk;\n"
      "  int skelcl_end = min(skelcl_begin + skelcl_chunk, skelcl_n);\n"
      "  " + typeName + " skelcl_acc = skelcl_in[skelcl_begin];\n"
      "  for (int skelcl_i = skelcl_begin + 1; skelcl_i < skelcl_end; ++skelcl_i)\n"
      "    skelcl_acc = func(skelcl_acc, skelcl_in[skelcl_i]" + extraNames(extras) + ");\n"
      "  skelcl_partials[skelcl_w] = skelcl_acc;\n}\n";

  auto program = rt.programForSource(source);
  ocl::Kernel kernel(*program, "skelcl_reduce");

  // Step 1: device-local reductions to small intermediate vectors
  // (Section V explains why a single value per GPU would be wasteful).
  struct Pending {
    int device;
    std::size_t numPartials;
    std::unique_ptr<ocl::Buffer> partials;
  };
  std::vector<Pending> pending;

  auto ranges = effectiveDist(input.distribution()).partition(input.count(), rt.deviceCount());
  if (input.distribution().kind() == Distribution::Kind::Copy) {
    // Every device holds the full data; reducing each copy would multiply
    // the result.  Reduce the first copy only.
    ranges.resize(1);
  }
  for (const PartRange& r : ranges) {
    if (r.size == 0) continue;
    const auto cores = static_cast<std::size_t>(rt.device(r.device).spec().cores);
    const std::size_t chunk = (r.size + 4 * cores - 1) / (4 * cores);
    const std::size_t numPartials = (r.size + chunk - 1) / chunk;

    Pending p;
    p.device = r.device;
    p.numPartials = numPartials;
    p.partials = std::make_unique<ocl::Buffer>(rt.context(), rt.device(r.device),
                                               numPartials * input.elemSize());
    kernel.setArg(0, *input.partOn(r.device)->buffer);
    kernel.setArg(1, *p.partials);
    kernel.setArg(2, static_cast<std::int32_t>(r.size));
    kernel.setArg(3, static_cast<std::int32_t>(chunk));
    bindExtras(kernel, 4, extras, r.device);
    rt.queue(r.device).enqueueNDRangeKernel(kernel, numPartials);
    pending.push_back(std::move(p));
  }

  // Step 2: gather the intermediate results on the CPU.
  std::vector<std::byte> gathered;
  for (const Pending& p : pending) {
    const std::size_t offset = gathered.size();
    gathered.resize(offset + p.numPartials * input.elemSize());
    rt.queue(p.device).enqueueReadBuffer(*p.partials, 0, p.numPartials * input.elemSize(),
                                         gathered.data() + offset, /*blocking=*/true);
  }

  // Step 3: the CPU folds the intermediate results (order preserved, so a
  // non-commutative but associative operator is fine, paper II-A).
  const auto hostProgram = rt.hostProgram(userSource);
  const int fn = hostProgram->findFunction("func");
  kc::Vm vm(*hostProgram, {});
  const std::size_t total = gathered.size() / input.elemSize();
  kc::Slot acc = slotFromBytes(input.elemKind(), gathered.data());
  for (std::size_t i = 1; i < total; ++i) {
    const kc::Slot x = slotFromBytes(input.elemKind(), gathered.data() + i * input.elemSize());
    // Extra arguments are device-scoped; the host fold applies the bare
    // binary operator (scalars are re-bound below if present).
    if (extras.empty()) {
      acc = vm.callFunction(fn, std::array<kc::Slot, 2>{acc, x});
    } else {
      std::vector<kc::Slot> args = {acc, x};
      for (const ExtraArg& e : extras) {
        SKELCL_CHECK(e.kind == ExtraArg::Kind::Scalar,
                     "reduce supports only scalar additional arguments");
        args.push_back(e.scalarIsFloat ? kc::Slot::fromFloat(e.scalarF)
                                       : kc::Slot::fromInt(e.scalarI));
      }
      acc = vm.callFunction(fn, args);
    }
  }
  rt.system().reserveHostCompute(gathered.size(), vm.instructionsExecuted());
  return acc;
}

// ---------------------------------------------------------------------------
// Scan (paper III-C, Figure 2)
// ---------------------------------------------------------------------------

void runScan(const std::string& userSource, VectorData& input, VectorData& output,
             const std::string& typeName) {
  auto& rt = Runtime::instance();
  SKELCL_CHECK(output.count() == input.count(), "scan output size mismatch");
  if (input.count() == 0) return;

  input.defaultDistribution(Distribution::block());
  const Distribution dist = input.distribution();
  input.ensureOnDevices();
  const bool inPlace = &output == &input;
  output.setDistribution(dist);
  if (!inPlace) output.ensureOnDevicesNoUpload();

  std::string source = userSource;
  source +=
      "\n__kernel void skelcl_scan_chunks(__global " + typeName + "* skelcl_in, __global " +
      typeName + "* skelcl_out, __global " + typeName +
      "* skelcl_sums, int skelcl_chunk, int skelcl_n) {\n"
      "  int skelcl_w = get_global_id(0);\n"
      "  int skelcl_begin = skelcl_w * skelcl_chunk;\n"
      "  int skelcl_end = min(skelcl_begin + skelcl_chunk, skelcl_n);\n"
      "  " + typeName + " skelcl_acc = skelcl_in[skelcl_begin];\n"
      "  skelcl_out[skelcl_begin] = skelcl_acc;\n"
      "  for (int skelcl_i = skelcl_begin + 1; skelcl_i < skelcl_end; ++skelcl_i) {\n"
      "    skelcl_acc = func(skelcl_acc, skelcl_in[skelcl_i]);\n"
      "    skelcl_out[skelcl_i] = skelcl_acc;\n"
      "  }\n"
      "  skelcl_sums[skelcl_w] = skelcl_acc;\n}\n"
      "__kernel void skelcl_scan_add(__global " + typeName + "* skelcl_data, __global " +
      typeName +
      "* skelcl_offsets, int skelcl_chunk, int skelcl_n, int skelcl_skip_first) {\n"
      "  int skelcl_w = get_global_id(0);\n"
      "  if (skelcl_skip_first && skelcl_w == 0) return;\n"
      "  int skelcl_begin = skelcl_w * skelcl_chunk;\n"
      "  int skelcl_end = min(skelcl_begin + skelcl_chunk, skelcl_n);\n"
      "  " + typeName + " skelcl_off = skelcl_offsets[skelcl_w];\n"
      "  for (int skelcl_i = skelcl_begin; skelcl_i < skelcl_end; ++skelcl_i)\n"
      "    skelcl_data[skelcl_i] = func(skelcl_off, skelcl_data[skelcl_i]);\n}\n";

  auto program = rt.programForSource(source);
  ocl::Kernel scanChunks(*program, "skelcl_scan_chunks");
  ocl::Kernel scanAdd(*program, "skelcl_scan_add");

  const auto hostProgram = rt.hostProgram(userSource);
  const int fn = hostProgram->findFunction("func");
  kc::Vm vm(*hostProgram, {});
  const ElemKind kind = input.elemKind();
  const std::size_t elem = input.elemSize();

  const auto ranges = effectiveDist(dist).partition(input.count(), rt.deviceCount());
  const bool crossDevice = dist.kind() == Distribution::Kind::Block;

  bool haveDeviceOffset = false;
  kc::Slot deviceOffset{};  // fold of the totals of all previous devices

  for (const PartRange& r : ranges) {
    if (r.size == 0) continue;
    const auto cores = static_cast<std::size_t>(rt.device(r.device).spec().cores);
    const std::size_t chunk = (r.size + 4 * cores - 1) / (4 * cores);
    const std::size_t numChunks = (r.size + chunk - 1) / chunk;

    // Step 1: every GPU scans its local part independently.
    ocl::Buffer sums(rt.context(), rt.device(r.device), numChunks * elem);
    const VectorData::DevicePart* inPart = input.partOn(r.device);
    const VectorData::DevicePart* outPart = inPlace ? inPart : output.partOn(r.device);
    scanChunks.setArg(0, *inPart->buffer);
    scanChunks.setArg(1, *outPart->buffer);
    scanChunks.setArg(2, sums);
    scanChunks.setArg(3, static_cast<std::int32_t>(chunk));
    scanChunks.setArg(4, static_cast<std::int32_t>(r.size));
    rt.queue(r.device).enqueueNDRangeKernel(scanChunks, numChunks);

    // Step 2: download the block sums.
    std::vector<std::byte> hostSums(numChunks * elem);
    rt.queue(r.device).enqueueReadBuffer(sums, 0, hostSums.size(), hostSums.data(),
                                         /*blocking=*/true);

    // Step 3: compute combined offsets on the host (device offset folded with
    // the exclusive prefix of the chunk sums).
    std::vector<std::byte> hostOffsets(numChunks * elem);
    bool haveChunkOffset = false;
    kc::Slot chunkOffset{};
    for (std::size_t w = 0; w < numChunks; ++w) {
      kc::Slot combined{};
      bool haveCombined = false;
      if (crossDevice && haveDeviceOffset && haveChunkOffset) {
        combined = vm.callFunction(fn, std::array<kc::Slot, 2>{deviceOffset, chunkOffset});
        haveCombined = true;
      } else if (crossDevice && haveDeviceOffset) {
        combined = deviceOffset;
        haveCombined = true;
      } else if (haveChunkOffset) {
        combined = chunkOffset;
        haveCombined = true;
      }
      if (haveCombined) {
        slotToBytes(kind, combined, hostOffsets.data() + w * elem);
      } else {
        // chunk 0 of the first device: no offset (skipped by the kernel)
        std::memset(hostOffsets.data(), 0, elem);
      }
      // fold this chunk's total into the running chunk offset
      const kc::Slot sum = slotFromBytes(kind, hostSums.data() + w * elem);
      chunkOffset = haveChunkOffset
                        ? vm.callFunction(fn, std::array<kc::Slot, 2>{chunkOffset, sum})
                        : sum;
      haveChunkOffset = true;
    }

    // Step 4: an implicitly created map combines the offsets in (paper
    // Figure 2, bottom); it runs on every device, skipping only the very
    // first chunk of the first device.
    const bool skipFirst = !(crossDevice && haveDeviceOffset);
    ocl::Buffer offsets(rt.context(), rt.device(r.device), hostOffsets.size());
    rt.queue(r.device).enqueueWriteBuffer(offsets, 0, hostOffsets.size(), hostOffsets.data());
    scanAdd.setArg(0, *outPart->buffer);
    scanAdd.setArg(1, offsets);
    scanAdd.setArg(2, static_cast<std::int32_t>(chunk));
    scanAdd.setArg(3, static_cast<std::int32_t>(r.size));
    scanAdd.setArg(4, static_cast<std::int32_t>(skipFirst ? 1 : 0));
    rt.queue(r.device).enqueueNDRangeKernel(scanAdd, numChunks);
    rt.queue(r.device).finish();

    // the device's total feeds the next device's offset
    if (crossDevice) {
      const kc::Slot total = chunkOffset;  // fold of all chunk sums
      deviceOffset = haveDeviceOffset
                         ? vm.callFunction(fn, std::array<kc::Slot, 2>{deviceOffset, total})
                         : total;
      haveDeviceOffset = true;
    }
  }

  rt.system().reserveHostCompute(input.count() / 64 + 64, vm.instructionsExecuted());
  output.markDevicesModified();
}

}  // namespace skelcl::detail
