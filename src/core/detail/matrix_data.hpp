// The untyped core of skelcl::Matrix<T>: a dense row-major matrix stored as
// a VectorData whose *elements are whole rows* (count = rows, elemSize =
// columns * scalar size).
//
// Row granularity buys the whole vector machinery row-aligned for free:
// block partitions split exactly between rows (never through one), the lazy
// coherence protocol moves whole rows, and VRAM accounting plus device-loss
// recovery are inherited unchanged.  Skeletons that address individual
// scalars (MapOverlap's stencil kernels) do their own column arithmetic on
// top of the row-block layout; see docs/MATRIX.md.
#pragma once

#include "core/detail/vector_data.hpp"

namespace skelcl::detail {

class MatrixData {
 public:
  /// `rows` may be zero (an empty matrix); `columns` may not — a zero-byte
  /// row element would break the underlying vector's size arithmetic.
  MatrixData(std::size_t rows, std::size_t columns, std::size_t scalarSize,
             ElemKind scalarKind);

  MatrixData(const MatrixData&) = delete;
  MatrixData& operator=(const MatrixData&) = delete;

  std::size_t rowCount() const { return rows_; }
  std::size_t columnCount() const { return cols_; }
  std::size_t elementCount() const { return rows_ * cols_; }
  std::size_t scalarSize() const { return scalar_size_; }
  ElemKind scalarKind() const { return scalar_kind_; }

  // --- host access (implicit download, row-major contiguous) ---
  const std::byte* hostRead(Session* session) { return rows_data_.hostRead(session); }
  std::byte* hostWrite(Session* session) { return rows_data_.hostWrite(session); }

  // --- distribution over row blocks ---
  void setDistribution(Distribution dist) { rows_data_.setDistribution(std::move(dist)); }
  void defaultDistribution(const Distribution& dist) { rows_data_.defaultDistribution(dist); }
  const Distribution& distribution() const { return rows_data_.distribution(); }

  /// The row vector every device-level mechanism operates on.  A PartRange of
  /// this vector is a *row* range; buffer byte offsets scale by the row size
  /// (columnCount() * scalarSize()).
  VectorData& rowVector() { return rows_data_; }
  const VectorData& rowVector() const { return rows_data_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::size_t scalar_size_;
  ElemKind scalar_kind_;
  VectorData rows_data_;
};

}  // namespace skelcl::detail
