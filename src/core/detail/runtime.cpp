#include "core/detail/runtime.hpp"

#include "kernelc/program.hpp"

namespace skelcl::detail {

std::unique_ptr<Runtime> Runtime::instance_;

Runtime::Runtime(sim::SystemConfig config) {
  platform_ = std::make_unique<ocl::Platform>(std::move(config));
  context_ = std::make_unique<ocl::Context>(platform_->devices());
  for (int d = 0; d < platform_->deviceCount(); ++d) {
    queues_.push_back(
        std::make_unique<ocl::CommandQueue>(*context_, platform_->device(d), ocl::Api::OpenCL));
    alive_.push_back(d);
  }
  dead_.assign(static_cast<std::size_t>(platform_->deviceCount()), 0);
  // SKELCL_FAULTS configures fault injection without touching application
  // code (mirrors SKELCL_TRACE for observability).
  sim::FaultPlan envPlan = sim::FaultPlan::fromEnv();
  if (!envPlan.empty()) system().faults().install(std::move(envPlan));
}

void Runtime::resetClock() {
  system().resetClock();
  for (auto& q : queues_) q->resetClock();
}

void Runtime::blacklistDevice(int device, const std::string& reason) {
  SKELCL_CHECK(device >= 0 && device < deviceCount(), "device index out of range");
  if (dead_[static_cast<std::size_t>(device)]) return;
  dead_[static_cast<std::size_t>(device)] = 1;
  alive_.clear();
  for (int d = 0; d < deviceCount(); ++d) {
    if (!dead_[static_cast<std::size_t>(d)]) alive_.push_back(d);
  }
  if (alive_.empty()) {
    throw ResourceError("device " + std::to_string(device) +
                        " failed and no devices survive: " + reason);
  }
  ++partition_epoch_;  // every cached partition plan replans over survivors
  if (trace::enabled()) {
    trace::Record r;
    r.kind = trace::Record::Kind::Redistribute;
    r.device = device;
    r.start = system().hostNow();
    r.end = system().hostNow();
    r.name = "blacklist dev" + std::to_string(device) + " (" + reason + "); " +
             std::to_string(alive_.size()) + " device(s) remain";
    trace::record(std::move(r));
  }
}

bool Runtime::deviceAlive(int device) const {
  return device >= 0 && device < deviceCount() &&
         !dead_[static_cast<std::size_t>(device)];
}

void Runtime::init(sim::SystemConfig config) {
  SKELCL_CHECK(instance_ == nullptr, "skelcl::init called twice without terminate");
  instance_.reset(new Runtime(std::move(config)));
}

void Runtime::terminate() { instance_.reset(); }

bool Runtime::initialized() { return instance_ != nullptr; }

Runtime& Runtime::instance() {
  SKELCL_CHECK(instance_ != nullptr, "call skelcl::init(...) first");
  return *instance_;
}

ocl::CommandQueue& Runtime::queue(int device) {
  SKELCL_CHECK(device >= 0 && device < deviceCount(), "device index out of range");
  return *queues_[static_cast<std::size_t>(device)];
}

std::shared_ptr<ocl::Program> Runtime::programForSource(const std::string& source) {
  auto it = programCache_.find(source);
  if (it != programCache_.end()) return it->second;
  auto program = std::make_shared<ocl::Program>(*context_, source);
  program->build();
  programCache_.emplace(source, program);
  return program;
}

std::shared_ptr<const kc::CompiledProgram> Runtime::hostProgram(const std::string& userSource) {
  auto it = hostFnCache_.find(userSource);
  if (it != hostFnCache_.end()) return it->second;
  auto program = kc::compileProgram(userSource);
  SKELCL_CHECK(program->findFunction("func") >= 0,
               "user operation must define a function named 'func'");
  hostFnCache_.emplace(userSource, program);
  return program;
}

void Runtime::setPartitionWeights(std::vector<double> weights) {
  weights_ = std::move(weights);
  ++partition_epoch_;
}

const std::vector<double>& Runtime::applicablePartitionWeights() const {
  static const std::vector<double> kNone;
  if (weights_.empty()) return kNone;
  if (weights_.size() != static_cast<std::size_t>(deviceCount())) return kNone;
  double aliveTotal = 0.0;
  for (int d : alive_) aliveTotal += weights_[static_cast<std::size_t>(d)];
  if (!(aliveTotal > 0.0)) return kNone;
  return weights_;
}

}  // namespace skelcl::detail
