#include "core/detail/runtime.hpp"

namespace skelcl::detail {

std::unique_ptr<Runtime> Runtime::instance_;

Runtime::Runtime(sim::SystemConfig config) {
  shared_ = std::make_shared<SharedDeviceState>(std::move(config));
  SessionOptions opts;
  opts.name = "default";
  default_session_ = std::make_shared<Session>(shared_, /*id=*/0, std::move(opts));
}

std::shared_ptr<Session> Runtime::createSession(SessionOptions opts) {
  std::lock_guard<std::recursive_mutex> lock(shared_->mutex());
  return std::make_shared<Session>(shared_, next_session_id_++, std::move(opts));
}

void Runtime::init(sim::SystemConfig config) {
  SKELCL_CHECK(instance_ == nullptr, "skelcl::init called twice without terminate");
  instance_.reset(new Runtime(std::move(config)));
  // A new runtime starts a new trace: records of a previous init/terminate
  // cycle must not bleed into this run's export (the collector itself is
  // process-wide so a trace can still be *written* after terminate).
  trace::Tracer::global().beginRun();
}

void Runtime::terminate() { instance_.reset(); }

bool Runtime::initialized() { return instance_ != nullptr; }

Runtime& Runtime::instance() {
  SKELCL_CHECK(instance_ != nullptr, "call skelcl::init(...) first");
  return *instance_;
}

// ---------------------------------------------------------------------------
// thread-current session (defined here, with the facade: the fallback for a
// thread without an active SessionScope is the facade's default session)
// ---------------------------------------------------------------------------

namespace {
thread_local Session* t_current_session = nullptr;
}  // namespace

Session* Session::currentIfAny() {
  if (t_current_session != nullptr) return t_current_session;
  if (!Runtime::initialized()) return nullptr;
  return &Runtime::instance().defaultSession();
}

SessionScope::SessionScope(std::shared_ptr<Session> session)
    : session_(std::move(session)), previous_(t_current_session) {
  SKELCL_CHECK(session_ != nullptr, "SessionScope needs a session");
  t_current_session = session_.get();
}

SessionScope::~SessionScope() { t_current_session = previous_; }

}  // namespace skelcl::detail
