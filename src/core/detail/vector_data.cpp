#include "core/detail/vector_data.hpp"

#include <array>
#include <cstring>

#include "core/detail/runtime.hpp"
#include "kernelc/vm.hpp"

namespace skelcl::detail {

VectorData::VectorData(std::size_t count, std::size_t elemSize, ElemKind kind)
    : count_(count), elem_size_(elemSize), elem_kind_(kind), host_(count * elemSize) {
  SKELCL_CHECK(elemSize > 0, "element size must be positive");
}

Distribution VectorData::effective(const Distribution& d) const {
  // An unweighted block distribution picks up the scheduler's weights, if any
  // (Section V: proportional workloads on heterogeneous devices).
  if (d.kind() == Distribution::Kind::Block && d.weights().empty()) {
    const auto& w = Runtime::instance().partitionWeights();
    if (!w.empty()) return Distribution::block(w);
  }
  return d;
}

std::vector<PartRange> VectorData::plannedPartition() {
  SKELCL_CHECK(requested_.isSet(), "vector has no distribution");
  return effective(requested_).partition(count_, Runtime::instance().deviceCount());
}

std::size_t VectorData::partSizeOn(int device) {
  for (const PartRange& p : plannedPartition()) {
    if (p.device == device) return p.size;
  }
  return 0;
}

std::size_t VectorData::partOffsetOn(int device) {
  for (const PartRange& p : plannedPartition()) {
    if (p.device == device) return p.offset;
  }
  return 0;
}

const std::byte* VectorData::hostRead() {
  ensureHostValid();
  return host_.data();
}

std::byte* VectorData::hostWrite() {
  ensureHostValid();
  markHostModified();
  return host_.data();
}

void VectorData::setDistribution(Distribution dist) {
  SKELCL_CHECK(dist.isSet(), "cannot set an empty distribution");
  requested_ = std::move(dist);
}

void VectorData::defaultDistribution(const Distribution& dist) {
  if (!requested_.isSet()) requested_ = dist;
}

bool VectorData::partsMatchRequested() {
  if (!devices_valid_) return false;
  const auto want = effective(requested_).partition(count_, Runtime::instance().deviceCount());
  if (want.size() != parts_.size()) return false;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (want[i].device != parts_[i].device || want[i].offset != parts_[i].offset ||
        want[i].size != parts_[i].size) {
      return false;
    }
  }
  return true;
}

const std::vector<VectorData::DevicePart>& VectorData::ensureOnDevices() {
  SKELCL_CHECK(requested_.isSet(), "vector has no distribution");
  if (partsMatchRequested()) return parts_;
  // Redistribution goes through the host (pre-peer-access hardware; this is
  // exactly the download/upload sequence of paper Figure 3).
  ensureHostValid();
  materializeParts(/*upload=*/true);
  return parts_;
}

const std::vector<VectorData::DevicePart>& VectorData::ensureOnDevicesNoUpload() {
  SKELCL_CHECK(requested_.isSet(), "vector has no distribution");
  if (partsMatchRequested()) return parts_;
  materializeParts(/*upload=*/false);
  host_valid_ = false;  // the kernel will produce the data
  return parts_;
}

void VectorData::materializeParts(bool upload) {
  auto& rt = Runtime::instance();
  parts_.clear();
  const auto ranges = effective(requested_).partition(count_, rt.deviceCount());
  for (const PartRange& r : ranges) {
    DevicePart part;
    part.device = r.device;
    part.offset = r.offset;
    part.size = r.size;
    if (r.size > 0) {
      part.buffer = std::make_unique<ocl::Buffer>(rt.context(), rt.device(r.device),
                                                  r.size * elem_size_);
      if (upload) {
        rt.queue(r.device).enqueueWriteBuffer(*part.buffer, 0, r.size * elem_size_,
                                              host_.data() + r.offset * elem_size_);
      }
    }
    parts_.push_back(std::move(part));
  }
  // Uploads are asynchronous in simulated time; correctness of later kernel
  // launches is preserved by the in-order per-device queues.
  current_ = requested_;
  devices_valid_ = true;
}

void VectorData::downloadParts() {
  auto& rt = Runtime::instance();
  for (const DevicePart& part : parts_) {
    if (part.size == 0) continue;
    rt.queue(part.device)
        .enqueueReadBuffer(*part.buffer, 0, part.size * elem_size_,
                           host_.data() + part.offset * elem_size_, /*blocking=*/true);
  }
}

void VectorData::ensureHostValid() {
  if (host_valid_) return;
  SKELCL_CHECK(devices_valid_, "vector holds no valid data");
  if (current_.kind() == Distribution::Kind::Copy) {
    combineCopiesToHost();
  } else {
    downloadParts();
  }
  host_valid_ = true;
}

void VectorData::combineCopiesToHost() {
  auto& rt = Runtime::instance();
  SKELCL_CHECK(!parts_.empty(), "copy distribution without parts");

  // Download the first device's copy into host memory.
  const DevicePart& first = parts_.front();
  if (first.size > 0) {
    rt.queue(first.device)
        .enqueueReadBuffer(*first.buffer, 0, first.size * elem_size_, host_.data(),
                           /*blocking=*/true);
  }
  if (!current_.hasCombine() || parts_.size() < 2 || count_ == 0) {
    // Paper III-A: without a combine function, the first device's copy is
    // the new version; other copies are discarded.
    return;
  }

  SKELCL_CHECK(elem_kind_ != ElemKind::Other,
               "combine functions require scalar element types");

  // Fold the remaining copies element-wise with the user's binary function.
  const auto program = rt.hostProgram(current_.combineSource());
  const int fn = program->findFunction("func");
  kc::Vm vm(*program, {});
  std::vector<std::byte> other(bytes());

  const bool floating = elem_kind_ == ElemKind::F32 || elem_kind_ == ElemKind::F64;
  for (std::size_t p = 1; p < parts_.size(); ++p) {
    rt.queue(parts_[p].device)
        .enqueueReadBuffer(*parts_[p].buffer, 0, bytes(), other.data(), /*blocking=*/true);
    for (std::size_t i = 0; i < count_; ++i) {
      kc::Slot a, b;
      const std::byte* pa = host_.data() + i * elem_size_;
      const std::byte* pb = other.data() + i * elem_size_;
      switch (elem_kind_) {
        case ElemKind::F32: {
          float fa, fb;
          std::memcpy(&fa, pa, 4);
          std::memcpy(&fb, pb, 4);
          a = kc::Slot::fromFloat(fa);
          b = kc::Slot::fromFloat(fb);
          break;
        }
        case ElemKind::F64: {
          double fa, fb;
          std::memcpy(&fa, pa, 8);
          std::memcpy(&fb, pb, 8);
          a = kc::Slot::fromFloat(fa);
          b = kc::Slot::fromFloat(fb);
          break;
        }
        case ElemKind::I32:
        case ElemKind::U32: {
          std::int32_t ia, ib;
          std::memcpy(&ia, pa, 4);
          std::memcpy(&ib, pb, 4);
          a = kc::Slot::fromInt(ia);
          b = kc::Slot::fromInt(ib);
          break;
        }
        case ElemKind::Other:
          break;
      }
      const kc::Slot r = vm.callFunction(fn, std::array<kc::Slot, 2>{a, b});
      std::byte* out = host_.data() + i * elem_size_;
      switch (elem_kind_) {
        case ElemKind::F32: {
          const float v = static_cast<float>(r.f);
          std::memcpy(out, &v, 4);
          break;
        }
        case ElemKind::F64:
          std::memcpy(out, &r.f, 8);
          break;
        case ElemKind::I32:
        case ElemKind::U32: {
          const std::int32_t v = static_cast<std::int32_t>(r.i);
          std::memcpy(out, &v, 4);
          break;
        }
        case ElemKind::Other:
          break;
      }
    }
    (void)floating;
  }
  // The element-wise fold runs on the host CPU; charge it once.
  rt.system().reserveHostCompute(2 * bytes() * (parts_.size() - 1),
                                 vm.instructionsExecuted());
  // The device copies now disagree with the combined host version.
  devices_valid_ = false;
}

const VectorData::DevicePart* VectorData::partOn(int device) const {
  for (const DevicePart& p : parts_) {
    if (p.device == device) return &p;
  }
  return nullptr;
}

void VectorData::markDevicesModified() {
  SKELCL_CHECK(devices_valid_ || parts_.empty(),
               "dataOnDevicesModified on a vector without device data");
  if (!parts_.empty()) {
    devices_valid_ = true;
    host_valid_ = false;
  }
}

void VectorData::markHostModified() {
  host_valid_ = true;
  devices_valid_ = false;
}

}  // namespace skelcl::detail
