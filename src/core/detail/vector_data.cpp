#include "core/detail/vector_data.hpp"

#include <array>
#include <cstring>

#include "core/detail/exec_graph.hpp"
#include "core/detail/session.hpp"
#include "core/detail/skeleton_exec.hpp"
#include "kernelc/vm.hpp"

namespace skelcl::detail {

VectorData::VectorData(std::size_t count, std::size_t elemSize, ElemKind kind)
    : count_(count), elem_size_(elemSize), elem_kind_(kind), host_(count * elemSize) {
  SKELCL_CHECK(elemSize > 0, "element size must be positive");
}

VectorData::~VectorData() { releaseVramCharge(); }

const std::vector<PartRange>& VectorData::plannedPartition(Session& session) {
  SKELCL_CHECK(requested_.isSet(), "vector has no distribution");
  // Two sessions can reach numerically equal epochs with different weights,
  // so the cache is keyed on the session id as well as its epoch.
  if (!planned_valid_ || planned_session_ != session.id() ||
      planned_epoch_ != session.partitionEpoch()) {
    planned_ = session.partition(requested_, count_);
    planned_valid_ = true;
    planned_session_ = session.id();
    planned_epoch_ = session.partitionEpoch();
  }
  return planned_;
}

std::size_t VectorData::partSizeOn(Session& session, int device) {
  for (const PartRange& p : plannedPartition(session)) {
    if (p.device == device) return p.size;
  }
  return 0;
}

std::size_t VectorData::partOffsetOn(Session& session, int device) {
  for (const PartRange& p : plannedPartition(session)) {
    if (p.device == device) return p.offset;
  }
  return 0;
}

// Convenience overloads: single-tenant call sites operate under the calling
// thread's current session.
const std::vector<PartRange>& VectorData::plannedPartition() {
  return plannedPartition(Session::current());
}
std::size_t VectorData::partSizeOn(int device) { return partSizeOn(Session::current(), device); }
std::size_t VectorData::partOffsetOn(int device) {
  return partOffsetOn(Session::current(), device);
}
const std::vector<VectorData::DevicePart>& VectorData::ensureOnDevices() {
  return ensureOnDevices(Session::current());
}
const std::vector<VectorData::DevicePart>& VectorData::ensureOnDevicesNoUpload() {
  return ensureOnDevicesNoUpload(Session::current());
}

const std::byte* VectorData::hostRead(Session* session) {
  ensureHostValid(session);
  return host_.data();
}

std::byte* VectorData::hostWrite(Session* session) {
  ensureHostValid(session);
  markHostModified();
  return host_.data();
}

void VectorData::setDistribution(Distribution dist) {
  SKELCL_CHECK(dist.isSet(), "cannot set an empty distribution");
  requested_ = std::move(dist);
  planned_valid_ = false;
}

void VectorData::defaultDistribution(const Distribution& dist) {
  if (!requested_.isSet()) {
    requested_ = dist;
    planned_valid_ = false;
  }
}

bool VectorData::partsMatchRequested(Session& session) {
  if (!devices_valid_) return false;
  const auto& want = plannedPartition(session);
  if (want.size() != parts_.size()) return false;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (want[i].device != parts_[i].device || want[i].offset != parts_[i].offset ||
        want[i].size != parts_[i].size) {
      return false;
    }
  }
  return true;
}

const std::vector<VectorData::DevicePart>& VectorData::ensureOnDevices(Session& session) {
  SKELCL_CHECK(requested_.isSet(), "vector has no distribution");
  if (partsMatchRequested(session)) {
    // The layout already matches, but the requested distribution may still
    // differ in ways partition() cannot see — copy() vs copy(combine) yield
    // identical part ranges.  Adopt it so a later host sync applies the right
    // download semantics (the combine fold keys off current_).
    current_ = requested_;
    return parts_;
  }
  // Redistribution goes through the host (pre-peer-access hardware; this is
  // exactly the download/upload sequence of paper Figure 3).
  ensureHostValid(&session);
  materializeParts(session, /*upload=*/true);
  return parts_;
}

const std::vector<VectorData::DevicePart>& VectorData::ensureOnDevicesNoUpload(Session& session) {
  SKELCL_CHECK(requested_.isSet(), "vector has no distribution");
  if (partsMatchRequested(session)) {
    current_ = requested_;  // see ensureOnDevices: copy() vs copy(combine)
    return parts_;
  }
  materializeParts(session, /*upload=*/false);
  host_valid_ = false;  // the kernel will produce the data
  return parts_;
}

void VectorData::materializeParts(Session& session, bool upload) {
  releaseVramCharge();
  parts_.clear();
  const auto& plan = plannedPartition(session);
  // Admission control first: the whole footprint is charged against the
  // session's VRAM quota before any buffer exists, so a breach raises
  // ResourceError without leaving half-allocated parts behind.
  std::uint64_t total = 0;
  for (const PartRange& r : plan) total += static_cast<std::uint64_t>(r.size) * elem_size_;
  if (total > 0) {
    session.chargeVram(total);
    charged_session_ = session.shared_from_this();
    charged_bytes_ = total;
  }
  for (const PartRange& r : plan) {
    DevicePart part;
    part.device = r.device;
    part.offset = r.offset;
    part.size = r.size;
    if (r.size > 0) {
      part.buffer = std::make_unique<ocl::Buffer>(session.context(), session.device(r.device),
                                                  r.size * elem_size_);
    }
    parts_.push_back(std::move(part));
  }
  if (upload) {
    // All uploads are issued breadth-first across the devices; parts behind
    // different PCIe links overlap in simulated time, and nothing blocks the
    // host.  Consumers order themselves after lastWrite (or, on the same
    // device, after the in-order queue).
    //
    // Copy distributions on a multi-node (docl) system broadcast as a tree:
    // the full vector crosses the network once per node — to the node's
    // first part device — and the node's remaining replicas are filled by
    // server-local peer copies instead of per-device client uploads.
    const bool treeBroadcast = session.multiNode() &&
                               requested_.kind() == Distribution::Kind::Copy &&
                               count_ > 0;
    const std::vector<int>& nodeOf = session.deviceNodes();
    ExecGraph g(session);
    std::vector<std::pair<DevicePart*, ExecGraph::NodeId>> uploads;
    DevicePart* leader = nullptr;         // current node's first part
    ExecGraph::NodeId leaderId{};
    int leaderNode = -1;
    for (DevicePart& part : parts_) {
      if (part.size == 0) continue;
      const int node = nodeOf[static_cast<std::size_t>(part.device)];
      if (treeBroadcast && leader != nullptr && node == leaderNode) {
        DevicePart* src = leader;
        const ExecGraph::NodeId id = g.add(
            StageKind::Copy, part.device,
            "broadcast dev" + std::to_string(src->device) + "->dev" +
                std::to_string(part.device),
            [this, &session, src, &part](std::span<const ocl::Event> deps) {
              return session.queue(part.device)
                  .enqueueCopyBuffer(*src->buffer, *part.buffer, 0, 0,
                                     part.size * elem_size_, deps);
            },
            {leaderId});
        uploads.emplace_back(&part, id);
        continue;
      }
      const ExecGraph::NodeId id = g.add(
          StageKind::Upload, part.device, "upload dev" + std::to_string(part.device),
          [this, &session, &part](std::span<const ocl::Event> deps) {
            return session.queue(part.device)
                .enqueueWriteBuffer(*part.buffer, 0, part.size * elem_size_,
                                    host_.data() + part.offset * elem_size_,
                                    /*blocking=*/false, deps);
          });
      uploads.emplace_back(&part, id);
      leader = &part;
      leaderId = id;
      leaderNode = node;
    }
    g.run();
    for (const auto& [part, id] : uploads) part->lastWrite = g.event(id);
  }
  current_ = requested_;
  devices_valid_ = true;
}

void VectorData::downloadParts(Session& session) {
  // One download per part, all issued before the single host sync: reads
  // from devices on different links overlap instead of serializing on the
  // host as per-part blocking reads did.
  ExecGraph g(session);
  for (DevicePart& part : parts_) {
    if (part.size == 0) continue;
    std::vector<ocl::Event> deps;
    if (part.lastWrite.valid()) deps.push_back(part.lastWrite);
    g.add(
        StageKind::Download, part.device, "download dev" + std::to_string(part.device),
        [this, &session, &part](std::span<const ocl::Event> d) {
          return session.queue(part.device)
              .enqueueReadBuffer(*part.buffer, 0, part.size * elem_size_,
                                 host_.data() + part.offset * elem_size_,
                                 /*blocking=*/false, d);
        },
        {}, std::move(deps));
  }
  g.run();
  g.wait();
}

void VectorData::ensureHostValid(Session* session) {
  if (host_valid_) return;
  SKELCL_CHECK(devices_valid_, "vector holds no valid data");
  SKELCL_CHECK(session != nullptr,
               "host access to device-resident data requires an active session");
  // A pending lazy redistribution whose layout matches the live parts (e.g.
  // copy() -> copy(combine)) is adopted here too, so a direct host read uses
  // the newly requested download semantics.
  if (requested_.isSet() && partsMatchRequested(*session)) current_ = requested_;
  if (current_.kind() == Distribution::Kind::Copy) {
    combineCopiesToHost(*session);
  } else {
    downloadParts(*session);
  }
  host_valid_ = true;
}

void VectorData::combineCopiesToHost(Session& session) {
  SKELCL_CHECK(!parts_.empty(), "copy distribution without parts");

  const bool combine = current_.hasCombine() && parts_.size() >= 2 && count_ > 0;
  if (combine) {
    SKELCL_CHECK(elem_kind_ != ElemKind::Other,
                 "combine functions require scalar element types");
  }

  // Download the first device's copy into host memory and — when a combine
  // function exists — every other copy into a staging buffer, all overlapped
  // before the host fold (the only stage that needs them together).
  ExecGraph g(session);
  std::vector<ExecGraph::NodeId> reads;
  std::vector<std::vector<std::byte>> staged(parts_.size());
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    DevicePart& part = parts_[p];
    if (part.size == 0 || (p > 0 && !combine)) continue;
    std::byte* dst = host_.data();
    if (p > 0) {
      staged[p].resize(bytes());
      dst = staged[p].data();
    }
    std::vector<ocl::Event> deps;
    if (part.lastWrite.valid()) deps.push_back(part.lastWrite);
    reads.push_back(g.add(
        StageKind::Download, part.device, "combine download dev" + std::to_string(part.device),
        [this, &session, &part, dst](std::span<const ocl::Event> d) {
          return session.queue(part.device)
              .enqueueReadBuffer(*part.buffer, 0, bytes(), dst, /*blocking=*/false, d);
        },
        {}, std::move(deps)));
  }

  if (combine) {
    // Fold the remaining copies element-wise with the user's binary function
    // on the host (paper III-A).
    const auto program = session.hostProgram(current_.combineSource());
    const int fn = program->findFunction("func");
    g.add(StageKind::Host, -1, "combine copies host fold",
          [this, &session, &staged, program, fn](std::span<const ocl::Event> deps) {
            auto& system = session.system();
            system.advanceHost(ExecGraph::latestEnd(system, deps));
            kc::Vm vm(*program, {});
            for (std::size_t p = 1; p < parts_.size(); ++p) {
              if (parts_[p].size == 0) continue;  // download skipped; nothing staged
              const std::byte* other = staged[p].data();
              for (std::size_t i = 0; i < count_; ++i) {
                std::byte* out = host_.data() + i * elem_size_;
                const kc::Slot a = slotFromBytes(elem_kind_, out);
                const kc::Slot b = slotFromBytes(elem_kind_, other + i * elem_size_);
                const kc::Slot r = vm.callFunction(fn, std::array<kc::Slot, 2>{a, b});
                slotToBytes(elem_kind_, r, out);
              }
            }
            const auto span = system.reserveHostCompute(2 * bytes() * (parts_.size() - 1),
                                                        vm.instructionsExecuted());
            return ocl::Event(span.start, span.end, system.clockEpoch());
          },
          reads);
  }
  g.run();
  g.wait();

  // With a combine, the device copies now disagree with the combined host
  // version; without one, the first device's copy is the new version and the
  // others are simply discarded (paper III-A).
  if (combine) devices_valid_ = false;
}

const VectorData::DevicePart* VectorData::partOn(int device) const {
  for (const DevicePart& p : parts_) {
    if (p.device == device) return &p;
  }
  return nullptr;
}

void VectorData::recordDeviceWrite(int device, const ocl::Event& event) {
  for (DevicePart& p : parts_) {
    if (p.device == device) {
      p.lastWrite = event;
      return;
    }
  }
  SKELCL_CHECK(false, "recordDeviceWrite: no part on this device");
}

void VectorData::markDevicesModified() {
  SKELCL_CHECK(devices_valid_ || parts_.empty(),
               "dataOnDevicesModified on a vector without device data");
  if (!parts_.empty()) {
    devices_valid_ = true;
    host_valid_ = false;
  }
}

void VectorData::markHostModified() {
  host_valid_ = true;
  devices_valid_ = false;
}

void VectorData::recoverAfterDeviceLoss(int deadDevice) {
  planned_valid_ = false;  // replan over the survivors
  if (parts_.empty()) return;

  if (host_valid_) {
    // The host copy is authoritative (markDevicesModified only runs after a
    // skeleton succeeds, so a failed attempt never invalidated it).  Drop all
    // parts; the next ensureOnDevices re-uploads the same bytes.
    parts_.clear();
    releaseVramCharge();
    devices_valid_ = false;
    return;
  }

  const DevicePart* dead = partOn(deadDevice);
  if (dead == nullptr || dead->size == 0) {
    // Nothing of this vector lived on the dead device; surviving parts stay
    // usable until the stale partition plan forces a host round-trip.
    return;
  }

  if (current_.kind() == Distribution::Kind::Copy && !current_.hasCombine()) {
    // Plain replication: any surviving copy is the data.  Erase the dead
    // part; combineCopiesToHost / downloads use the remaining replicas.
    const std::uint64_t deadBytes = static_cast<std::uint64_t>(dead->size) * elem_size_;
    for (auto it = parts_.begin(); it != parts_.end(); ++it) {
      if (it->device == deadDevice) {
        parts_.erase(it);
        break;
      }
    }
    if (charged_session_ && deadBytes > 0) {
      // The replica's footprint is gone; stop charging the tenant for it.
      charged_session_->releaseVram(std::min(deadBytes, charged_bytes_));
      charged_bytes_ -= std::min(deadBytes, charged_bytes_);
    }
    if (!parts_.empty()) return;
    devices_valid_ = false;
    releaseVramCharge();
    throw DataLossError("device " + std::to_string(deadDevice) +
                        " held the last replica of a copy-distributed vector");
  }

  // Host stale and the lost part held unique data (a block part, or a
  // diverged copy that needed combining): the bytes are gone.
  const std::size_t lostBytes = dead->size * elem_size_;  // before clear() kills `dead`
  devices_valid_ = false;
  host_valid_ = true;  // keep the invariant; contents are the stale host copy
  parts_.clear();
  releaseVramCharge();
  throw DataLossError("device " + std::to_string(deadDevice) +
                      " held the only current copy of " +
                      std::to_string(lostBytes) + " bytes (" +
                      current_.describe() + " distribution, host copy stale)");
}

void VectorData::resetDeviceDataAfterLoss() {
  planned_valid_ = false;
  parts_.clear();
  releaseVramCharge();
  devices_valid_ = false;
  host_valid_ = true;  // invariant: never both false; contents are irrelevant
}

void VectorData::releaseVramCharge() {
  if (charged_session_ && charged_bytes_ > 0) {
    charged_session_->releaseVram(charged_bytes_);
  }
  charged_session_.reset();
  charged_bytes_ = 0;
}

}  // namespace skelcl::detail
