#include "core/detail/vector_data.hpp"

#include <array>
#include <cstring>

#include "core/detail/exec_graph.hpp"
#include "core/detail/runtime.hpp"
#include "core/detail/skeleton_exec.hpp"
#include "kernelc/vm.hpp"

namespace skelcl::detail {

VectorData::VectorData(std::size_t count, std::size_t elemSize, ElemKind kind)
    : count_(count), elem_size_(elemSize), elem_kind_(kind), host_(count * elemSize) {
  SKELCL_CHECK(elemSize > 0, "element size must be positive");
}

Distribution VectorData::effective(const Distribution& d) const {
  // An unweighted block distribution picks up the scheduler's weights, if any
  // (Section V: proportional workloads on heterogeneous devices).
  if (d.kind() == Distribution::Kind::Block && d.weights().empty()) {
    const auto& w = Runtime::instance().applicablePartitionWeights();
    if (!w.empty()) return Distribution::block(w);
  }
  return d;
}

const std::vector<PartRange>& VectorData::plannedPartition() {
  SKELCL_CHECK(requested_.isSet(), "vector has no distribution");
  auto& rt = Runtime::instance();
  if (!planned_valid_ || planned_epoch_ != rt.partitionEpoch()) {
    planned_ = effective(requested_).partition(count_, rt.aliveDevices());
    planned_valid_ = true;
    planned_epoch_ = rt.partitionEpoch();
  }
  return planned_;
}

std::size_t VectorData::partSizeOn(int device) {
  for (const PartRange& p : plannedPartition()) {
    if (p.device == device) return p.size;
  }
  return 0;
}

std::size_t VectorData::partOffsetOn(int device) {
  for (const PartRange& p : plannedPartition()) {
    if (p.device == device) return p.offset;
  }
  return 0;
}

const std::byte* VectorData::hostRead() {
  ensureHostValid();
  return host_.data();
}

std::byte* VectorData::hostWrite() {
  ensureHostValid();
  markHostModified();
  return host_.data();
}

void VectorData::setDistribution(Distribution dist) {
  SKELCL_CHECK(dist.isSet(), "cannot set an empty distribution");
  requested_ = std::move(dist);
  planned_valid_ = false;
}

void VectorData::defaultDistribution(const Distribution& dist) {
  if (!requested_.isSet()) {
    requested_ = dist;
    planned_valid_ = false;
  }
}

bool VectorData::partsMatchRequested() {
  if (!devices_valid_) return false;
  const auto& want = plannedPartition();
  if (want.size() != parts_.size()) return false;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (want[i].device != parts_[i].device || want[i].offset != parts_[i].offset ||
        want[i].size != parts_[i].size) {
      return false;
    }
  }
  return true;
}

const std::vector<VectorData::DevicePart>& VectorData::ensureOnDevices() {
  SKELCL_CHECK(requested_.isSet(), "vector has no distribution");
  if (partsMatchRequested()) {
    // The layout already matches, but the requested distribution may still
    // differ in ways partition() cannot see — copy() vs copy(combine) yield
    // identical part ranges.  Adopt it so a later host sync applies the right
    // download semantics (the combine fold keys off current_).
    current_ = requested_;
    return parts_;
  }
  // Redistribution goes through the host (pre-peer-access hardware; this is
  // exactly the download/upload sequence of paper Figure 3).
  ensureHostValid();
  materializeParts(/*upload=*/true);
  return parts_;
}

const std::vector<VectorData::DevicePart>& VectorData::ensureOnDevicesNoUpload() {
  SKELCL_CHECK(requested_.isSet(), "vector has no distribution");
  if (partsMatchRequested()) {
    current_ = requested_;  // see ensureOnDevices: copy() vs copy(combine)
    return parts_;
  }
  materializeParts(/*upload=*/false);
  host_valid_ = false;  // the kernel will produce the data
  return parts_;
}

void VectorData::materializeParts(bool upload) {
  auto& rt = Runtime::instance();
  parts_.clear();
  for (const PartRange& r : plannedPartition()) {
    DevicePart part;
    part.device = r.device;
    part.offset = r.offset;
    part.size = r.size;
    if (r.size > 0) {
      part.buffer = std::make_unique<ocl::Buffer>(rt.context(), rt.device(r.device),
                                                  r.size * elem_size_);
    }
    parts_.push_back(std::move(part));
  }
  if (upload) {
    // All uploads are issued breadth-first across the devices; parts behind
    // different PCIe links overlap in simulated time, and nothing blocks the
    // host.  Consumers order themselves after lastWrite (or, on the same
    // device, after the in-order queue).
    ExecGraph g;
    std::vector<std::pair<DevicePart*, ExecGraph::NodeId>> uploads;
    for (DevicePart& part : parts_) {
      if (part.size == 0) continue;
      const ExecGraph::NodeId id = g.add(
          StageKind::Upload, part.device, "upload dev" + std::to_string(part.device),
          [this, &rt, &part](std::span<const ocl::Event> deps) {
            return rt.queue(part.device)
                .enqueueWriteBuffer(*part.buffer, 0, part.size * elem_size_,
                                    host_.data() + part.offset * elem_size_,
                                    /*blocking=*/false, deps);
          });
      uploads.emplace_back(&part, id);
    }
    g.run();
    for (const auto& [part, id] : uploads) part->lastWrite = g.event(id);
  }
  current_ = requested_;
  devices_valid_ = true;
}

void VectorData::downloadParts() {
  auto& rt = Runtime::instance();
  // One download per part, all issued before the single host sync: reads
  // from devices on different links overlap instead of serializing on the
  // host as per-part blocking reads did.
  ExecGraph g;
  for (DevicePart& part : parts_) {
    if (part.size == 0) continue;
    std::vector<ocl::Event> deps;
    if (part.lastWrite.valid()) deps.push_back(part.lastWrite);
    g.add(
        StageKind::Download, part.device, "download dev" + std::to_string(part.device),
        [this, &rt, &part](std::span<const ocl::Event> d) {
          return rt.queue(part.device)
              .enqueueReadBuffer(*part.buffer, 0, part.size * elem_size_,
                                 host_.data() + part.offset * elem_size_,
                                 /*blocking=*/false, d);
        },
        {}, std::move(deps));
  }
  g.run();
  g.wait();
}

void VectorData::ensureHostValid() {
  if (host_valid_) return;
  SKELCL_CHECK(devices_valid_, "vector holds no valid data");
  // A pending lazy redistribution whose layout matches the live parts (e.g.
  // copy() -> copy(combine)) is adopted here too, so a direct host read uses
  // the newly requested download semantics.
  if (requested_.isSet() && partsMatchRequested()) current_ = requested_;
  if (current_.kind() == Distribution::Kind::Copy) {
    combineCopiesToHost();
  } else {
    downloadParts();
  }
  host_valid_ = true;
}

void VectorData::combineCopiesToHost() {
  auto& rt = Runtime::instance();
  SKELCL_CHECK(!parts_.empty(), "copy distribution without parts");

  const bool combine = current_.hasCombine() && parts_.size() >= 2 && count_ > 0;
  if (combine) {
    SKELCL_CHECK(elem_kind_ != ElemKind::Other,
                 "combine functions require scalar element types");
  }

  // Download the first device's copy into host memory and — when a combine
  // function exists — every other copy into a staging buffer, all overlapped
  // before the host fold (the only stage that needs them together).
  ExecGraph g;
  std::vector<ExecGraph::NodeId> reads;
  std::vector<std::vector<std::byte>> staged(parts_.size());
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    DevicePart& part = parts_[p];
    if (part.size == 0 || (p > 0 && !combine)) continue;
    std::byte* dst = host_.data();
    if (p > 0) {
      staged[p].resize(bytes());
      dst = staged[p].data();
    }
    std::vector<ocl::Event> deps;
    if (part.lastWrite.valid()) deps.push_back(part.lastWrite);
    reads.push_back(g.add(
        StageKind::Download, part.device, "combine download dev" + std::to_string(part.device),
        [this, &rt, &part, dst](std::span<const ocl::Event> d) {
          return rt.queue(part.device)
              .enqueueReadBuffer(*part.buffer, 0, bytes(), dst, /*blocking=*/false, d);
        },
        {}, std::move(deps)));
  }

  if (combine) {
    // Fold the remaining copies element-wise with the user's binary function
    // on the host (paper III-A).
    const auto program = rt.hostProgram(current_.combineSource());
    const int fn = program->findFunction("func");
    g.add(StageKind::Host, -1, "combine copies host fold",
          [this, &rt, &staged, program, fn](std::span<const ocl::Event> deps) {
            auto& system = rt.system();
            system.advanceHost(ExecGraph::latestEnd(deps));
            kc::Vm vm(*program, {});
            for (std::size_t p = 1; p < parts_.size(); ++p) {
              if (parts_[p].size == 0) continue;  // download skipped; nothing staged
              const std::byte* other = staged[p].data();
              for (std::size_t i = 0; i < count_; ++i) {
                std::byte* out = host_.data() + i * elem_size_;
                const kc::Slot a = slotFromBytes(elem_kind_, out);
                const kc::Slot b = slotFromBytes(elem_kind_, other + i * elem_size_);
                const kc::Slot r = vm.callFunction(fn, std::array<kc::Slot, 2>{a, b});
                slotToBytes(elem_kind_, r, out);
              }
            }
            const auto span = system.reserveHostCompute(2 * bytes() * (parts_.size() - 1),
                                                        vm.instructionsExecuted());
            return ocl::Event(span.start, span.end, system.clockEpoch());
          },
          reads);
  }
  g.run();
  g.wait();

  // With a combine, the device copies now disagree with the combined host
  // version; without one, the first device's copy is the new version and the
  // others are simply discarded (paper III-A).
  if (combine) devices_valid_ = false;
}

const VectorData::DevicePart* VectorData::partOn(int device) const {
  for (const DevicePart& p : parts_) {
    if (p.device == device) return &p;
  }
  return nullptr;
}

void VectorData::recordDeviceWrite(int device, const ocl::Event& event) {
  for (DevicePart& p : parts_) {
    if (p.device == device) {
      p.lastWrite = event;
      return;
    }
  }
  SKELCL_CHECK(false, "recordDeviceWrite: no part on this device");
}

void VectorData::markDevicesModified() {
  SKELCL_CHECK(devices_valid_ || parts_.empty(),
               "dataOnDevicesModified on a vector without device data");
  if (!parts_.empty()) {
    devices_valid_ = true;
    host_valid_ = false;
  }
}

void VectorData::markHostModified() {
  host_valid_ = true;
  devices_valid_ = false;
}

void VectorData::recoverAfterDeviceLoss(int deadDevice) {
  planned_valid_ = false;  // replan over the survivors
  if (parts_.empty()) return;

  if (host_valid_) {
    // The host copy is authoritative (markDevicesModified only runs after a
    // skeleton succeeds, so a failed attempt never invalidated it).  Drop all
    // parts; the next ensureOnDevices re-uploads the same bytes.
    parts_.clear();
    devices_valid_ = false;
    return;
  }

  const DevicePart* dead = partOn(deadDevice);
  if (dead == nullptr || dead->size == 0) {
    // Nothing of this vector lived on the dead device; surviving parts stay
    // usable until the stale partition plan forces a host round-trip.
    return;
  }

  if (current_.kind() == Distribution::Kind::Copy && !current_.hasCombine()) {
    // Plain replication: any surviving copy is the data.  Erase the dead
    // part; combineCopiesToHost / downloads use the remaining replicas.
    for (auto it = parts_.begin(); it != parts_.end(); ++it) {
      if (it->device == deadDevice) {
        parts_.erase(it);
        break;
      }
    }
    if (!parts_.empty()) return;
    devices_valid_ = false;
    throw DataLossError("device " + std::to_string(deadDevice) +
                        " held the last replica of a copy-distributed vector");
  }

  // Host stale and the lost part held unique data (a block part, or a
  // diverged copy that needed combining): the bytes are gone.
  devices_valid_ = false;
  host_valid_ = true;  // keep the invariant; contents are the stale host copy
  parts_.clear();
  throw DataLossError("device " + std::to_string(deadDevice) +
                      " held the only current copy of " +
                      std::to_string(dead->size * elem_size_) + " bytes (" +
                      current_.describe() + " distribution, host copy stale)");
}

void VectorData::resetDeviceDataAfterLoss() {
  planned_valid_ = false;
  parts_.clear();
  devices_valid_ = false;
  host_valid_ = true;  // invariant: never both false; contents are irrelevant
}

}  // namespace skelcl::detail
