// The untyped core of skelcl::Vector<T>: host storage, per-device buffer
// parts, and the lazy coherence protocol of paper Section II-B / III-A.
//
// Invariants:
//  * hostValid_ and devicesValid_ are never both false.
//  * devicesValid_ implies parts_ matches currentDist_ and holds the data.
//  * Distribution changes are lazy: setDistribution records the request;
//    data moves when a skeleton or host access actually needs it.
//
// A VectorData holds no session of its own: every device-touching operation
// takes the Session& it runs under (the session current at operation time),
// so one vector can move between tenants and partition planning always uses
// the *operating* session's weights.  Device memory the vector materializes
// is charged against that session's VRAM quota until the parts are dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/distribution.hpp"
#include "ocl/ocl.hpp"

namespace skelcl::detail {

class Session;

/// Scalar kind of the element type, needed when user operations (reduce
/// fold, copy-combine) run on the host through the VM.
enum class ElemKind { F32, F64, I32, U32, Other };

class VectorData {
 public:
  VectorData(std::size_t count, std::size_t elemSize, ElemKind kind);
  ~VectorData();

  VectorData(const VectorData&) = delete;
  VectorData& operator=(const VectorData&) = delete;

  std::size_t count() const { return count_; }
  std::size_t elemSize() const { return elem_size_; }
  std::size_t bytes() const { return count_ * elem_size_; }
  ElemKind elemKind() const { return elem_kind_; }

  // --- host access (implicit download, paper II-B) ---
  /// Ensure the host copy is current.  `session` may be null only while the
  /// host copy is already valid (pure host-side use before skelcl::init).
  const std::byte* hostRead(Session* session);
  std::byte* hostWrite(Session* session);  ///< hostRead + invalidate device copies

  // --- distribution (paper III-A) ---
  void setDistribution(Distribution dist);  ///< lazy; combining happens on demand
  /// Set only if the user has not chosen one (skeleton defaults).
  void defaultDistribution(const Distribution& dist);
  const Distribution& distribution() const { return requested_; }

  /// The partition the vector will use under `session` (respecting that
  /// session's scheduler weights).  Cached: recomputed only when the
  /// distribution, the operating session, or its partition epoch change
  /// (partSizeOn/partOffsetOn are called on every kernel-argument bind).
  const std::vector<PartRange>& plannedPartition(Session& session);
  /// Per-device part size under the planned partition (0 if none).
  std::size_t partSizeOn(Session& session, int device);
  /// Per-device part element offset under the planned partition (0 if none).
  std::size_t partOffsetOn(Session& session, int device);

  // --- device materialization (used by skeletons) ---
  struct DevicePart {
    int device = 0;
    std::size_t offset = 0;  ///< element offset
    std::size_t size = 0;    ///< element count
    std::unique_ptr<ocl::Buffer> buffer;  ///< null when size == 0
    /// Completion event of the last command that wrote this part (upload or
    /// kernel).  Consumers pass it as an event dependency instead of
    /// blocking the host on the producer.
    ocl::Event lastWrite;
  };

  /// Apply the requested distribution, uploading data lazily (only what is
  /// stale moves).  Returns the parts.
  const std::vector<DevicePart>& ensureOnDevices(Session& session);

  /// Materialize parts for the requested distribution *without* uploading —
  /// for skeleton outputs that will be fully overwritten by a kernel.
  const std::vector<DevicePart>& ensureOnDevicesNoUpload(Session& session);

  // Convenience overloads against the calling thread's current session, so
  // single-tenant code (tests, benches) reads as before the Session split.
  const std::vector<PartRange>& plannedPartition();
  std::size_t partSizeOn(int device);
  std::size_t partOffsetOn(int device);
  const std::vector<DevicePart>& ensureOnDevices();
  const std::vector<DevicePart>& ensureOnDevicesNoUpload();

  /// The part residing on `device`, or nullptr (valid after ensureOnDevices*).
  const DevicePart* partOn(int device) const;

  /// Note that a kernel (completion event `event`) wrote the part on
  /// `device`; later consumers of the part depend on this event.
  void recordDeviceWrite(int device, const ocl::Event& event);

  // --- modification tracking ---
  void markDevicesModified();  ///< Vector::dataOnDevicesModified
  void markHostModified();     ///< Vector::dataOnHostModified

  // --- fault recovery (see docs/ROBUSTNESS.md) ---
  /// Called after `deadDevice` was blacklisted: drop device state that is now
  /// unreachable so the next ensureOnDevices* replans over the survivors.
  /// When the host copy is current the device parts are simply discarded and
  /// re-uploaded on demand; a surviving replica of a plain copy distribution
  /// also suffices.  Throws DataLossError when the only authoritative data
  /// lived on the dead device (host stale and the lost part unrecoverable).
  void recoverAfterDeviceLoss(int deadDevice);

  /// Recovery for pure outputs: the skeleton re-execution rewrites every
  /// element, so whatever was on the devices (possibly partial results of the
  /// failed attempt) is discarded without a data-loss check.
  void resetDeviceDataAfterLoss();

  // --- introspection (tests, benches) ---
  bool hostValid() const { return host_valid_; }
  bool devicesValid() const { return devices_valid_; }
  /// Distribution the live parts currently represent (may lag requested_).
  const Distribution& currentDistribution() const { return current_; }

 private:
  /// White-box test peer (tests/test_skelcheck.cpp): forges internal states —
  /// e.g. a zero-sized copy part — that have no natural construction path, to
  /// pin down defensive guards.
  friend struct VectorDataTestAccess;
  void ensureHostValid(Session* session);
  void materializeParts(Session& session, bool upload);
  void downloadParts(Session& session);
  /// Fold divergent copy-distribution versions into host memory using the
  /// distribution's combine function (or keep device 0's version).
  void combineCopiesToHost(Session& session);
  bool partsMatchRequested(Session& session);
  /// Return the VRAM charged for the current parts to the session that paid
  /// for it (buffers may already be gone; accounting is separate).
  void releaseVramCharge();

  std::size_t count_;
  std::size_t elem_size_;
  ElemKind elem_kind_;

  std::vector<std::byte> host_;
  bool host_valid_ = true;

  std::vector<DevicePart> parts_;
  Distribution current_;     ///< distribution the parts represent
  bool devices_valid_ = false;
  Distribution requested_;   ///< latest requested distribution

  std::vector<PartRange> planned_;      ///< cached plannedPartition()
  bool planned_valid_ = false;
  std::uint64_t planned_epoch_ = 0;  ///< Session::partitionEpoch it was built under
  int planned_session_ = -1;         ///< session id it was built for

  std::shared_ptr<Session> charged_session_;  ///< paid for the live parts
  std::uint64_t charged_bytes_ = 0;
};

}  // namespace skelcl::detail
