#include "core/detail/exec_graph.hpp"

#include <algorithm>

#include "core/detail/runtime.hpp"
#include "core/detail/trace.hpp"

namespace skelcl::detail {

ExecGraph::NodeId ExecGraph::add(StageKind kind, int device, std::string label,
                                 IssueFn issue, std::vector<NodeId> deps,
                                 std::vector<ocl::Event> external) {
  SKELCL_CHECK(!ran_, "ExecGraph: cannot record stages after run()");
  for (const NodeId d : deps) {
    SKELCL_CHECK(d < nodes_.size(), "ExecGraph: dependency on a later node");
  }
  nodes_.push_back(Node{kind, device, std::move(label), std::move(issue),
                        std::move(deps), std::move(external), ocl::Event{}});
  return nodes_.size() - 1;
}

void ExecGraph::run() {
  SKELCL_CHECK(!ran_, "ExecGraph::run called twice");
  ran_ = true;
  const bool tracing = trace::enabled();
  std::vector<ocl::Event> deps;
  for (Node& node : nodes_) {
    deps.assign(node.external.begin(), node.external.end());
    for (const NodeId d : node.deps) deps.push_back(nodes_[d].event);
    if (tracing) trace::Tracer::global().setContext(node.label);
    node.event = node.issue(deps);
    if (tracing && node.kind == StageKind::Host) {
      trace::Record r;
      r.kind = trace::Record::Kind::Host;
      r.device = node.device;
      r.start = node.event.profilingStart();
      r.end = node.event.profilingEnd();
      trace::record(std::move(r));  // name filled from the context label
    }
  }
  if (tracing) trace::Tracer::global().clearContext();
}

const ocl::Event& ExecGraph::event(NodeId id) const {
  SKELCL_CHECK(ran_ && id < nodes_.size(), "ExecGraph::event: unknown node");
  return nodes_[id].event;
}

double ExecGraph::completionTime() const {
  double t = 0.0;
  for (const Node& node : nodes_) {
    if (node.event.valid()) t = std::max(t, node.event.profilingEnd());
  }
  return t;
}

void ExecGraph::wait() {
  SKELCL_CHECK(ran_, "ExecGraph::wait before run");
  Runtime::instance().system().advanceHost(completionTime());
}

double ExecGraph::latestEnd(std::span<const ocl::Event> events) {
  auto& system = Runtime::instance().system();
  double t = system.hostNow();
  for (const ocl::Event& e : events) {
    if (e.valid() && e.epoch() == system.clockEpoch()) {
      t = std::max(t, e.profilingEnd());
    }
  }
  return t;
}

}  // namespace skelcl::detail
