#include "core/detail/exec_graph.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

#include "core/detail/session.hpp"
#include "core/detail/trace.hpp"

namespace skelcl::detail {

ExecGraph::NodeId ExecGraph::add(StageKind kind, int device, std::string label,
                                 IssueFn issue, std::vector<NodeId> deps,
                                 std::vector<ocl::Event> external) {
  SKELCL_CHECK(!ran_, "ExecGraph: cannot record stages after run()");
  for (const NodeId d : deps) {
    SKELCL_CHECK(d < nodes_.size(), "ExecGraph: dependency on a later node");
  }
  for (const ocl::Event& e : external) {
    SKELCL_CHECK(e.valid(), "ExecGraph: invalid (default-constructed) external event");
  }
  nodes_.push_back(Node{kind, device, std::move(label), std::move(issue),
                        std::move(deps), std::move(external), ocl::Event{}});
  return nodes_.size() - 1;
}

void ExecGraph::run() {
  SKELCL_CHECK(!ran_, "ExecGraph::run called twice");
  ran_ = true;
  // One tenant issues at a time: queues, timelines and the blacklist are
  // shared mutable state, serialized on the device-state lock (recursive —
  // nested graphs on one thread, e.g. the recovery re-execution, are fine).
  std::lock_guard<std::recursive_mutex> lock(session_->shared().mutex());
  auto& system = session_->shared().system();
  const sim::RetryPolicy policy = system.faults().retryPolicy();
  const bool tracing = trace::enabled();
  if (tracing) {
    trace::Tracer::global().setSessionContext(session_->id(), session_->name());
  }
  std::vector<ocl::Event> deps;
  std::unique_ptr<ocl::CommandError> failure;
  for (Node& node : nodes_) {
    deps.assign(node.external.begin(), node.external.end());
    bool depFailed = false;
    for (const NodeId d : node.deps) {
      const ocl::Event& e = nodes_[d].event;
      if (e.failed()) {
        depFailed = true;
        break;
      }
      deps.push_back(e);
    }
    if (depFailed) {
      // Propagate: this stage's inputs never materialized.  Its own failed
      // event poisons *its* dependents in turn; independent stages proceed.
      node.event = ocl::Event(system.hostNow(), system.hostNow(), system.clockEpoch(),
                              sim::status::ExecStatusError);
      continue;
    }
    if (tracing) {
      if (node.kind == StageKind::Fused) {
        trace::Tracer::global().setContext(node.label, trace::Record::Kind::Fused);
      } else if (node.kind == StageKind::Halo) {
        trace::Tracer::global().setContext(node.label, trace::Record::Kind::Halo);
      } else {
        trace::Tracer::global().setContext(node.label);
      }
    }
    for (int failedAttempts = 0;;) {
      try {
        node.event = node.issue(deps);
        break;
      } catch (const ocl::CommandError& e) {
        node.event = ocl::Event(e.failTime(), e.failTime(), system.clockEpoch(), e.status());
        ++failedAttempts;
        // Watchdog timeouts escalate immediately: a straggler/hang already
        // burned its deadline once; re-issuing on the same device would just
        // burn another (the recovery layer degrades the device instead).
        if (e.permanent() || e.status() == sim::status::WatchdogTimeout ||
            failedAttempts >= policy.max_attempts) {
          if (!failure) failure = std::make_unique<ocl::CommandError>(e);
          break;
        }
        // Transient: back off on the simulated clock (the host genuinely
        // waits before re-issuing — benchmarks see the cost), then retry.
        const double backoff = policy.backoffAfter(failedAttempts);
        const double waitStart = std::max(system.hostNow(), e.failTime());
        system.advanceHost(waitStart + backoff);
        if (tracing) {
          trace::Record r;
          r.kind = trace::Record::Kind::Retry;
          r.device = node.device;
          r.start = waitStart;
          r.end = waitStart + backoff;
          r.name = node.label + " attempt " + std::to_string(failedAttempts + 1);
          trace::record(std::move(r));
        }
      }
    }
    if (node.device >= 0 && node.event.valid() && !node.event.failed()) {
      // Fair-share accounting: simulated device time this command occupied.
      session_->chargeDeviceTime(node.event.duration());
    }
    if (tracing && node.kind == StageKind::Host && !node.event.failed()) {
      trace::Record r;
      r.kind = trace::Record::Kind::Host;
      r.device = node.device;
      r.start = node.event.profilingStart();
      r.end = node.event.profilingEnd();
      trace::record(std::move(r));  // name filled from the context label
    }
  }
  if (tracing) trace::Tracer::global().clearContext();
  if (failure) throw *failure;
}

const ocl::Event& ExecGraph::event(NodeId id) const {
  SKELCL_CHECK(ran_ && id < nodes_.size(), "ExecGraph::event: unknown node");
  return nodes_[id].event;
}

double ExecGraph::completionTime() const {
  double t = 0.0;
  for (const Node& node : nodes_) {
    if (node.event.valid()) t = std::max(t, node.event.profilingEnd());
  }
  return t;
}

void ExecGraph::wait() {
  SKELCL_CHECK(ran_, "ExecGraph::wait before run");
  std::lock_guard<std::recursive_mutex> lock(session_->shared().mutex());
  session_->shared().system().advanceHost(completionTime());
}

double ExecGraph::latestEnd(sim::System& system, std::span<const ocl::Event> events) {
  double t = system.hostNow();
  for (const ocl::Event& e : events) {
    if (e.valid() && e.epoch() == system.clockEpoch()) {
      t = std::max(t, e.profilingEnd());
    }
  }
  return t;
}

}  // namespace skelcl::detail
