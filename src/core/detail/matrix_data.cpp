#include "core/detail/matrix_data.hpp"

#include "base/error.hpp"

namespace skelcl::detail {

MatrixData::MatrixData(std::size_t rows, std::size_t columns, std::size_t scalarSize,
                       ElemKind scalarKind)
    : rows_(rows),
      cols_(columns),
      scalar_size_(scalarSize),
      scalar_kind_(scalarKind),
      rows_data_(rows, columns * scalarSize, ElemKind::Other) {
  SKELCL_CHECK(columns > 0, "a matrix needs at least one column");
  SKELCL_CHECK(scalarSize > 0, "matrix scalar size must be positive");
}

}  // namespace skelcl::detail
