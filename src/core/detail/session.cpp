#include "core/detail/session.hpp"

#include <cstdlib>

#include "core/detail/trace.hpp"
#include "kernelc/program.hpp"

namespace skelcl::detail {

// ---------------------------------------------------------------------------
// SharedDeviceState
// ---------------------------------------------------------------------------

SharedDeviceState::SharedDeviceState(sim::SystemConfig config) {
  platform_ = std::make_unique<ocl::Platform>(std::move(config));
  context_ = std::make_unique<ocl::Context>(platform_->devices());
  for (int d = 0; d < platform_->deviceCount(); ++d) {
    queues_.push_back(
        std::make_unique<ocl::CommandQueue>(*context_, platform_->device(d), ocl::Api::OpenCL));
    alive_.push_back(d);
  }
  dead_.assign(static_cast<std::size_t>(platform_->deviceCount()), 0);
  health_.assign(static_cast<std::size_t>(platform_->deviceCount()), 1.0);
  degrade_counts_.assign(static_cast<std::size_t>(platform_->deviceCount()), 0);
  for (const auto& dev : system().config().devices) device_nodes_.push_back(dev.node);
  multi_node_ = system().config().multiNode();
  // SKELCL_FAULTS configures fault injection without touching application
  // code (mirrors SKELCL_TRACE for observability).
  sim::FaultPlan envPlan = sim::FaultPlan::fromEnv();
  if (!envPlan.empty()) system().faults().install(std::move(envPlan));
  // SKELCL_WATCHDOG=0 disables the straggler/hang watchdog (docs/ROBUSTNESS.md).
  if (const char* wd = std::getenv("SKELCL_WATCHDOG")) {
    const std::string v = wd;
    if (v == "0" || v == "off" || v == "false") {
      sim::WatchdogConfig config = system().watchdog();
      config.enabled = false;
      system().setWatchdog(config);
    } else if (v == "1" || v == "on" || v == "true" || v.empty()) {
      sim::WatchdogConfig config = system().watchdog();
      config.enabled = true;
      system().setWatchdog(config);
    } else {
      throw UsageError("SKELCL_WATCHDOG: expected 0/1/on/off, got '" + v + "'");
    }
  }
}

ocl::CommandQueue& SharedDeviceState::queue(int device) {
  SKELCL_CHECK(device >= 0 && device < deviceCount(), "device index out of range");
  return *queues_[static_cast<std::size_t>(device)];
}

void SharedDeviceState::resetClock() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  system().resetClock();
  for (auto& q : queues_) q->resetClock();
}

void SharedDeviceState::blacklistDevice(int device, const std::string& reason) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  SKELCL_CHECK(device >= 0 && device < deviceCount(), "device index out of range");
  if (dead_[static_cast<std::size_t>(device)]) return;
  dead_[static_cast<std::size_t>(device)] = 1;
  alive_.clear();
  for (int d = 0; d < deviceCount(); ++d) {
    if (!dead_[static_cast<std::size_t>(d)]) alive_.push_back(d);
  }
  if (alive_.empty()) {
    throw ResourceError("device " + std::to_string(device) +
                        " failed and no devices survive: " + reason);
  }
  ++device_epoch_;  // every session's cached partition plans replan over survivors
  if (trace::enabled()) {
    trace::Record r;
    r.kind = trace::Record::Kind::Redistribute;
    r.device = device;
    r.start = system().hostNow();
    r.end = system().hostNow();
    r.name = "blacklist dev" + std::to_string(device) + " (" + reason + "); " +
             std::to_string(alive_.size()) + " device(s) remain";
    trace::record(std::move(r));
  }
}

void SharedDeviceState::degradeDevice(int device, const std::string& reason) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  SKELCL_CHECK(device >= 0 && device < deviceCount(), "device index out of range");
  if (dead_[static_cast<std::size_t>(device)]) return;
  const int strikes = ++degrade_counts_[static_cast<std::size_t>(device)];
  if (strikes >= kDegradeStrikes) {
    blacklistDevice(device, "repeatedly timed out (" + std::to_string(strikes) +
                                " watchdog strikes): " + reason);
    return;
  }
  health_[static_cast<std::size_t>(device)] = kDegradedHealth;
  ++device_epoch_;  // cached partition plans replan with the reduced weight
  if (trace::enabled()) {
    trace::Record r;
    r.kind = trace::Record::Kind::Degrade;
    r.device = device;
    r.start = system().hostNow();
    r.end = system().hostNow();
    r.name = "degrade dev" + std::to_string(device) + " to weight x" +
             std::to_string(kDegradedHealth) + " (strike " + std::to_string(strikes) +
             "/" + std::to_string(kDegradeStrikes) + "): " + reason;
    trace::record(std::move(r));
  }
}

std::vector<double> SharedDeviceState::deviceHealth() const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return health_;
}

int SharedDeviceState::degradeCount(int device) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (device < 0 || device >= deviceCount()) return 0;
  return degrade_counts_[static_cast<std::size_t>(device)];
}

bool SharedDeviceState::deviceAlive(int device) const {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return device >= 0 && device < deviceCount() &&
         !dead_[static_cast<std::size_t>(device)];
}

namespace {

// Cache key: the compile pipeline is part of a compiled program's identity.
// SKELCL_KC_OPT can change between calls (skelcheck toggles it per program),
// so a cache keyed by source alone would serve a program compiled at a stale
// tier.
std::string cacheKey(const std::string& source) {
  return std::to_string(kc::defaultCompileOptions().tier) + '\n' + source;
}

}  // namespace

std::shared_ptr<ocl::Program> SharedDeviceState::programForSource(const std::string& source) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  const std::string key = cacheKey(source);
  auto it = programCache_.find(key);
  if (it != programCache_.end()) return it->second;
  auto program = std::make_shared<ocl::Program>(*context_, source);
  program->build();
  programCache_.emplace(key, program);
  return program;
}

std::shared_ptr<const kc::CompiledProgram> SharedDeviceState::hostProgram(
    const std::string& userSource) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  const std::string key = cacheKey(userSource);
  auto it = hostFnCache_.find(key);
  if (it != hostFnCache_.end()) return it->second;
  auto program = kc::compileProgram(userSource);
  SKELCL_CHECK(program->findFunction("func") >= 0,
               "user operation must define a function named 'func'");
  hostFnCache_.emplace(key, program);
  return program;
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(std::shared_ptr<SharedDeviceState> shared, int id, SessionOptions opts)
    : shared_(std::move(shared)), id_(id) {
  SKELCL_CHECK(shared_ != nullptr, "session needs a shared device state");
  name_ = opts.name.empty() ? "session " + std::to_string(id) : std::move(opts.name);
  share_weight_ = opts.shareWeight;
  vram_quota_ = opts.vramQuotaBytes;
}

void Session::setPartitionWeights(std::vector<double> weights) {
  std::lock_guard<std::recursive_mutex> lock(shared_->mutex());
  weights_ = std::move(weights);
  ++weight_epoch_;
}

std::vector<double> Session::partitionWeights() const {
  std::lock_guard<std::recursive_mutex> lock(shared_->mutex());
  return weights_;
}

std::vector<double> Session::applicablePartitionWeights() const {
  std::lock_guard<std::recursive_mutex> lock(shared_->mutex());
  if (weights_.empty()) return {};
  if (weights_.size() != static_cast<std::size_t>(shared_->deviceCount())) return {};
  double aliveTotal = 0.0;
  for (int d : shared_->aliveDevices()) aliveTotal += weights_[static_cast<std::size_t>(d)];
  if (!(aliveTotal > 0.0)) return {};
  return weights_;
}

std::uint64_t Session::partitionEpoch() const {
  std::lock_guard<std::recursive_mutex> lock(shared_->mutex());
  // Both components are monotonic, so the sum strictly increases whenever
  // either the session's weights change or a device dies anywhere.
  return weight_epoch_ + shared_->deviceEpoch();
}

Distribution Session::effectiveDistribution(const Distribution& d) const {
  // An unweighted block distribution picks up the scheduler's weights, if any
  // (Section V: proportional workloads on heterogeneous devices), scaled by
  // the shared device-health factors so degraded stragglers receive less
  // work.  Explicitly weighted distributions are the caller's exact request
  // and stay untouched.
  if (d.kind() == Distribution::Kind::Block && d.weights().empty()) {
    std::lock_guard<std::recursive_mutex> lock(shared_->mutex());
    auto w = applicablePartitionWeights();
    const auto health = shared_->deviceHealth();
    bool anyDegraded = false;
    for (const double h : health) anyDegraded = anyDegraded || h != 1.0;
    if (!w.empty()) {
      if (anyDegraded) {
        // Both tables are indexed by absolute device id and sized to the
        // device count (applicablePartitionWeights guarantees it for the
        // weights).  A length mismatch would silently skip the health factor
        // for the tail devices — fail loudly instead of truncating.
        SKELCL_CHECK(w.size() == health.size(),
                     "partition weights and device health must both cover every device");
        for (std::size_t i = 0; i < w.size(); ++i) w[i] *= health[i];
      }
      return Distribution::block(w);
    }
    if (anyDegraded) return Distribution::block(health);
  }
  return d;
}

std::vector<PartRange> Session::partition(const Distribution& d, std::size_t count) const {
  std::lock_guard<std::recursive_mutex> lock(shared_->mutex());
  const Distribution eff = effectiveDistribution(d);
  if (shared_->multiNode()) {
    return eff.partition(count, shared_->aliveDevices(), shared_->deviceNodes());
  }
  return eff.partition(count, shared_->aliveDevices());
}

void Session::chargeDeviceTime(double seconds) {
  // fetch_add on atomic<double> via CAS: portable across libstdc++ versions.
  double cur = device_time_.load(std::memory_order_relaxed);
  while (!device_time_.compare_exchange_weak(cur, cur + seconds,
                                             std::memory_order_relaxed)) {
  }
}

void Session::chargeVram(std::uint64_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t used = vram_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (vram_quota_ > 0 && used > vram_quota_) {
    vram_used_.fetch_sub(bytes, std::memory_order_relaxed);
    throw QuotaError("session '" + name_ + "' VRAM quota exceeded: needs " +
                        std::to_string(bytes) + " bytes on top of " +
                        std::to_string(used - bytes) + " used, quota " +
                        std::to_string(vram_quota_));
  }
}

void Session::releaseVram(std::uint64_t bytes) {
  if (bytes == 0) return;
  std::uint64_t cur = vram_used_.load(std::memory_order_relaxed);
  std::uint64_t next;
  do {
    next = bytes > cur ? 0 : cur - bytes;
  } while (!vram_used_.compare_exchange_weak(cur, next, std::memory_order_relaxed));
}

Session& Session::current() {
  Session* s = currentIfAny();
  SKELCL_CHECK(s != nullptr, "no current session: call skelcl::init(...) first");
  return *s;
}

Session& currentSession() { return Session::current(); }

}  // namespace skelcl::detail
