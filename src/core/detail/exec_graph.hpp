// A small command-graph executor for multi-GPU skeleton plans (the paper's
// Section III-C execution schemes as explicit DAGs).
//
// Skeleton implementations *record* typed stages (upload, kernel, download,
// host fold) with explicit dependencies instead of interleaving enqueues
// with host-blocking syncs.  run() then issues every stage in recorded
// order — the skeletons record stage-outer / device-inner, so issue order is
// breadth-first across devices — threading ocl::Event dependencies through,
// and never blocks the host between stages.  The simulated host clock
// advances only inside Host stages (which genuinely need device results) and
// at wait(), the single sync point.  That is what lets device-local steps of
// different GPUs overlap in simulated time where the previous per-device
// loops serialized them.
//
// The engine is also the observability boundary: while tracing is enabled it
// labels every issued command with its node's label (picked up by the queue
// hook) and records Host stages itself.  See core/detail/trace.hpp.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ocl/queue.hpp"

namespace skelcl::detail {

/// What a graph node does; determines the trace record kind.  Fused marks a
/// kernel launch that executes a whole fused skeleton chain (its queue-level
/// kernel record is rewritten to trace kind "fused"); Halo marks a transfer
/// belonging to a stencil halo exchange (rewritten to trace kind "halo").
enum class StageKind { Upload, Kernel, Download, Copy, Fill, Host, Fused, Halo };

class Session;

class ExecGraph {
 public:
  using NodeId = std::size_t;

  /// A graph executes on behalf of one tenant session: run() issues under
  /// the session's shared-device lock, charges issued device time to the
  /// session's fair-share account, and tags trace records with its id.
  explicit ExecGraph(Session& session) : session_(&session) {}

  /// Issues one command: receives the resolved dependency events and returns
  /// the command's completion event.  Device stages forward the events to the
  /// queue's `deps` span; Host stages advance the host clock past them
  /// (ExecGraph::latestEnd) before computing.
  using IssueFn = std::function<ocl::Event(std::span<const ocl::Event>)>;

  /// Record a stage.  `deps` must name nodes recorded earlier in this graph;
  /// `external` adds events produced outside it (e.g. a DevicePart's
  /// lastWrite from a previous skeleton call).  `device` is -1 for Host.
  NodeId add(StageKind kind, int device, std::string label, IssueFn issue,
             std::vector<NodeId> deps = {}, std::vector<ocl::Event> external = {});

  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Issue every recorded stage in dependency order without blocking the
  /// host.  May be called once.
  ///
  /// Fault handling: a stage that throws ocl::CommandError with a transient
  /// status is re-issued under the system's RetryPolicy, each attempt's
  /// backoff charged to the simulated clock; once a stage fails for good
  /// (permanent fault or retries exhausted), its event carries the error
  /// status, every transitive dependent is skipped with ExecStatusError
  /// (independent stages still issue), and the first failure is rethrown
  /// after the sweep — the caller (skeleton recovery, see skeleton_exec.cpp)
  /// decides whether to blacklist and re-execute.
  void run();

  /// Completion event of a node (valid after run()).
  const ocl::Event& event(NodeId id) const;

  /// Simulated completion time of the whole graph: the latest event end
  /// across all nodes (0.0 for an empty graph).
  double completionTime() const;

  /// The single host sync point: advance the simulated host clock to
  /// completionTime(), like clWaitForEvents over every node.
  void wait();

  /// Latest profilingEnd among `events`, ignoring invalid events and events
  /// from a previous clock epoch; at least the current host time.
  static double latestEnd(sim::System& system, std::span<const ocl::Event> events);

 private:
  struct Node {
    StageKind kind;
    int device;
    std::string label;
    IssueFn issue;
    std::vector<NodeId> deps;
    std::vector<ocl::Event> external;
    ocl::Event event;
  };

  Session* session_;
  std::vector<Node> nodes_;
  bool ran_ = false;
};

}  // namespace skelcl::detail
