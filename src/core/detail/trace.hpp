// Observability for the simulated execution: per-command trace records and a
// chrome://tracing JSON exporter.
//
// Device-side commands (uploads, downloads, copies, fills, kernel launches)
// arrive through the ocl::CommandQueue observability hook, which the tracer
// installs while enabled; host-side stages (reduce folds, scan offset
// computation, copy combining) are recorded directly by the ExecGraph
// engine.  When tracing is disabled the hook is null and the only cost is
// one relaxed atomic load per enqueue.
//
// Typical use (see docs/OBSERVABILITY.md):
//
//   skelcl::trace::enable();                  // or SKELCL_TRACE=out.json
//   ... run skeletons ...
//   skelcl::trace::writeChromeTrace("out.json");
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace skelcl::trace {

/// One simulated command: what ran, where, how big, and its simulated
/// [start, end) interval (Event::profilingStart/End).
struct Record {
  enum class Kind {
    Upload, Download, Copy, Fill, Kernel, Host,
    Fused,         ///< a fused skeleton-chain kernel (several stages, one launch)
    Halo,          ///< stencil halo exchange between neighbouring device parts
    Fault,         ///< a command failed (injected fault or device death)
    Retry,         ///< the runtime backed off and re-issued a command
    Redistribute,  ///< a device was blacklisted; partitions moved to survivors
    Degrade,       ///< watchdog timeout: device demoted to reduced weight
  };
  Kind kind = Kind::Kernel;
  int device = -1;              ///< device id; -1 = host CPU
  int node = 0;                 ///< cluster node of the device (docl); 0 = client/local
  int session = 0;              ///< tenant session id (0 = default session)
  std::uint64_t bytes = 0;      ///< transfer/fill size (0 for kernels)
  std::uint64_t workItems = 0;  ///< kernel global size (0 for transfers)
  double start = 0.0;           ///< simulated seconds
  double end = 0.0;
  std::string name;             ///< stage label, or the kernel/command name
};

/// "upload", "download", "copy", "fill", "kernel", "host", "fused", "halo",
/// "fault", "retry", "redistribute", "degrade".
const char* kindName(Record::Kind kind);

/// The process-wide trace collector.  Lives outside the Runtime so a trace
/// collected during a run can still be exported after skelcl::terminate();
/// skelcl::init calls beginRun() so records never bleed from one
/// init/terminate cycle into the next export.  Reachable as
/// Runtime::tracer() or via the free functions below.
class Tracer {
 public:
  static Tracer& global();

  /// Start collecting; installs the queue-layer command hook.  Idempotent.
  void enable();
  /// Stop collecting and uninstall the hook.  Records are kept.
  void disable();
  bool enabled() const;

  /// A new runtime generation begins (called by skelcl::init): drop records
  /// and context of the previous run, keep the enabled state and the
  /// SKELCL_TRACE export path.
  void beginRun();

  void clear();
  /// Append a record (no-op while disabled).
  void record(Record r);
  std::vector<Record> snapshot() const;
  std::size_t size() const;

  /// Label attached to queue-hook records issued while it is set (the
  /// ExecGraph engine sets it to the current node's label).  The two-argument
  /// form additionally rewrites successful command records to `kindOverride`:
  /// fused-chain launches arrive from the queue hook as ordinary kernel
  /// commands but should trace as kind "fused", and halo-exchange transfers
  /// arrive as plain uploads/downloads/copies/fills but should trace as kind
  /// "halo" (fault-path records always keep their own kind).
  void setContext(std::string label);
  void setContext(std::string label, Record::Kind kindOverride);
  void clearContext();

  /// Session id (and display name) stamped on every record collected while
  /// set — the ExecGraph engine sets it for the duration of a run() so
  /// chrome traces show one lane group ("process") per tenant.
  void setSessionContext(int id, const std::string& name);

  /// Write every record as a chrome://tracing "traceEvents" JSON file
  /// (complete "X" events, one per command; ts/dur in microseconds).
  bool writeChromeTrace(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  bool enabled_ = false;
  std::vector<Record> records_;
  std::string context_;
  bool context_kind_set_ = false;
  Record::Kind context_kind_ = Record::Kind::Kernel;
  int context_session_ = 0;
  std::map<int, std::string> session_names_;
};

// --- convenience free functions over Tracer::global() ----------------------

void enable();
void disable();
bool enabled();
void clear();
void record(Record r);
std::vector<Record> snapshot();
bool writeChromeTrace(const std::string& path);

/// If the SKELCL_TRACE environment variable names a file, enable tracing
/// and remember the path.  Returns true when tracing was enabled.
bool enableFromEnv();
/// Write the collected trace to the path remembered by enableFromEnv()
/// (no-op when SKELCL_TRACE was unset).  Returns true on a successful write.
bool flushToEnvPath();

}  // namespace skelcl::trace
