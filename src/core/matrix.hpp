// skelcl::Matrix<T> — a dense two-dimensional container for stencil and
// all-pairs skeletons (MapOverlap, MapPairs).
//
// Storage is row-major and contiguous on the host.  Across devices a matrix
// is distributed in *row blocks*: a block distribution assigns each GPU a
// contiguous range of whole rows, so a partition boundary never cuts through
// a row and neighbouring devices exchange entire rows during stencil halo
// exchange (see docs/MATRIX.md).
#pragma once

#include <type_traits>
#include <vector>

#include "core/detail/matrix_data.hpp"
#include "core/detail/session.hpp"
#include "core/vector.hpp"

namespace skelcl {

template <typename T>
class Matrix {
  static_assert(std::is_trivially_copyable_v<T>, "matrix elements must be trivially copyable");

 public:
  using value_type = T;

  /// A rows x columns matrix of default (zero) elements.
  Matrix(std::size_t rows, std::size_t columns)
      : data_(std::make_shared<detail::MatrixData>(rows, columns, sizeof(T),
                                                   detail::elemKindOf<T>())) {}

  /// A matrix initialized from row-major host data (`init.size()` must be
  /// rows * columns).
  Matrix(std::size_t rows, std::size_t columns, const std::vector<T>& init)
      : Matrix(rows, columns) {
    SKELCL_CHECK(init.size() == rows * columns,
                 "matrix init data must have rows * columns elements");
    T* dst = reinterpret_cast<T*>(data_->hostWrite(detail::Session::currentIfAny()));
    std::copy(init.begin(), init.end(), dst);
  }

  // Matrices share their payload when copied (cheap handle semantics, like
  // Vector).
  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  std::size_t rowCount() const { return data_->rowCount(); }
  std::size_t columnCount() const { return data_->columnCount(); }
  std::size_t size() const { return data_->elementCount(); }
  bool empty() const { return size() == 0; }

  // --- host access: triggers implicit (lazy) downloads -----------------------

  /// Row-major contiguous host data; device copies stay valid.
  const T* hostData() const {
    return reinterpret_cast<const T*>(data_->hostRead(detail::Session::currentIfAny()));
  }
  /// Mutable host access; marks device copies stale.
  T* hostDataWrite() {
    return reinterpret_cast<T*>(data_->hostWrite(detail::Session::currentIfAny()));
  }
  const T& operator()(std::size_t row, std::size_t column) const {
    return hostData()[row * columnCount() + column];
  }
  T& operator()(std::size_t row, std::size_t column) {
    return hostDataWrite()[row * columnCount() + column];
  }

  std::vector<T> toStdVector() const {
    return std::vector<T>(hostData(), hostData() + size());
  }

  // --- distribution (over row blocks) ----------------------------------------

  /// Block weights apportion *rows*; single places all rows on one device.
  /// Copy distribution is not meaningful for stencil inputs and is rejected
  /// by the skeletons that consume matrices.
  void setDistribution(Distribution dist) { data_->setDistribution(std::move(dist)); }
  const Distribution& distribution() const { return data_->distribution(); }

  // --- internals (skeleton implementation) ------------------------------------
  detail::MatrixData& impl() const { return *data_; }

 private:
  std::shared_ptr<detail::MatrixData> data_;
};

}  // namespace skelcl
