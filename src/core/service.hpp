// Multi-tenant skeleton service (docs/SERVICE.md).
//
// N client threads (tenants) submit skeleton jobs concurrently; one executor
// thread issues them against the shared device pool.  Serializing issue on a
// single thread is what makes concurrent runs bit-identical to serial ones —
// the scheduling freedom is *which tenant goes next*, decided by weighted
// fair sharing of simulated device time:
//
//  * admission order: among sessions with queued work, run the one with the
//    smallest virtual device time `deviceTimeUsed() / shareWeight()` (stride
//    scheduling).  Under sustained load, device time converges to the ratio
//    of the share weights.
//  * batching: consecutive queued map jobs of the same session over the same
//    user source are concatenated into ONE kernel enqueue, amortizing the
//    per-launch overhead that dominates small jobs.
//  * VRAM quotas: a job that would breach its session's quota is put back at
//    the head of its queue and other tenants run first (queueing); it fails
//    with QuotaError only when waiting provably cannot help (the session's
//    VRAM usage did not drop since the last attempt).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/detail/session.hpp"

namespace skelcl {

class Service {
 public:
  struct Options {
    /// Max queued map jobs fused into one enqueue.
    std::size_t batchMaxJobs = 16;
    /// Jobs whose combined element count exceeds this are not fused further.
    std::size_t batchMaxElements = std::size_t{1} << 16;
    /// Queue quota-breaching jobs (default) instead of failing them outright.
    bool queueOnQuota = true;
  };

  struct Job;  // internal; defined in service.cpp's view of the world

  /// Completion handle of a submitted job.
  class Handle {
   public:
    Handle() = default;

    /// Block until the job ran; rethrows the job's error, if any.
    void wait() const;
    /// Map-job result (valid after wait(); empty for generic jobs).
    const std::vector<float>& output() const;
    /// Simulated seconds from submission to completion (valid after wait()).
    double latencySeconds() const;

   private:
    friend class Service;
    explicit Handle(std::shared_ptr<Job> job) : job_(std::move(job)) {}
    std::shared_ptr<Job> job_;
  };

  /// Per-tenant accounting, exposed for benches and tests.
  struct TenantStats {
    std::uint64_t jobsCompleted = 0;
    std::uint64_t batchesRun = 0;       ///< enqueues (≤ jobsCompleted when batching)
    std::vector<double> latencySeconds; ///< one entry per completed job
  };

  /// The runtime must be initialized (skelcl::init) before constructing.
  Service() : Service(Options()) {}
  explicit Service(Options options);
  ~Service();  ///< drains queued jobs, then stops the executor

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Create a tenant session registered with this service.
  std::shared_ptr<detail::Session> createSession(detail::SessionOptions options = {});

  /// Submit an arbitrary job: `work` runs on the executor thread with
  /// `session` current (skeletons inside it execute under that session).
  Handle submit(std::shared_ptr<detail::Session> session, std::function<void()> work);

  /// Submit a small map job `output[i] = func(input[i])`; eligible for
  /// same-session batching.
  Handle submitMap(std::shared_ptr<detail::Session> session, std::string userSource,
                   std::vector<float> input);

  /// Block until every job submitted so far has completed.
  void drain();

  TenantStats stats(const detail::Session& session) const;

 private:
  struct TenantQueue {
    std::shared_ptr<detail::Session> session;
    std::deque<std::shared_ptr<Job>> jobs;
    bool deferred = false;  ///< quota-blocked; other tenants go first
    TenantStats stats;
  };

  void executorLoop();
  TenantQueue* pickTenantLocked();
  std::vector<std::shared_ptr<Job>> popBatchLocked(TenantQueue& q);
  void runBatch(std::vector<std::shared_ptr<Job>>& batch);
  void runMapBatch(detail::Session& session, std::vector<std::shared_ptr<Job>>& batch);
  void completeJob(Job& job, std::exception_ptr error);
  double simNow(detail::Session& session);

  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< executor: work arrived / stopping
  std::condition_variable idle_cv_;   ///< drain(): a batch finished
  std::map<int, TenantQueue> queues_; ///< keyed by session id
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::thread executor_;
};

}  // namespace skelcl
