// Multi-tenant skeleton service (docs/SERVICE.md).
//
// N client threads (tenants) submit skeleton jobs concurrently; one executor
// thread issues them against the shared device pool.  Serializing issue on a
// single thread is what makes concurrent runs bit-identical to serial ones —
// the scheduling freedom is *which tenant goes next*, decided by weighted
// fair sharing of simulated device time:
//
//  * admission order: among sessions with queued work, run the one with the
//    smallest virtual device time `deviceTimeUsed() / shareWeight()` (stride
//    scheduling).  Under sustained load, device time converges to the ratio
//    of the share weights.
//  * batching: consecutive queued map jobs of the same session over the same
//    user source are concatenated into ONE kernel enqueue, amortizing the
//    per-launch overhead that dominates small jobs.
//  * VRAM quotas: a job that would breach its session's quota is put back at
//    the head of its queue and other tenants run first (queueing); it fails
//    with QuotaError only when waiting provably cannot help (the session's
//    VRAM usage did not drop since the last attempt).
//
// Gray-failure hardening (docs/ROBUSTNESS.md):
//
//  * deadlines: SubmitOptions::deadlineSeconds bounds how long (simulated) a
//    job may sit queued; an expired job fails with DeadlineError instead of
//    occupying devices.
//  * cancellation: Handle::cancel() withdraws a still-queued job
//    (CancelledError); Handle::waitFor() bounds the client's wall-clock wait.
//  * preemption: a map job larger than Options::quantumElements runs one
//    bounded quantum per executor turn and goes back to the head of its
//    queue in between, so one huge job cannot monopolize the executor
//    (results stay bit-identical: map is elementwise).
//  * circuit breaker: after Options::breakerThreshold deterministic failures
//    of one (session, kernel source), further identical jobs fail fast with
//    CircuitOpenError instead of burning device time.
//  * poison quarantine: when a fused batch fails, its members are requeued
//    and retried alone, so only the genuinely poisonous job errors — the
//    innocent jobs it was batched with still complete.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/detail/session.hpp"

namespace skelcl {

class Service {
 public:
  struct Options {
    /// Max queued map jobs fused into one enqueue.
    std::size_t batchMaxJobs = 16;
    /// Jobs whose combined element count exceeds this are not fused further.
    std::size_t batchMaxElements = std::size_t{1} << 16;
    /// Queue quota-breaching jobs (default) instead of failing them outright.
    bool queueOnQuota = true;
    /// Preemption: map jobs with more elements than this run one quantum of
    /// at most quantumElements per executor turn, requeueing in between.
    std::size_t quantumElements = std::size_t{1} << 14;
    /// Deterministic failures of one (session, kernel source) before its
    /// circuit breaker opens and identical jobs fail fast (CircuitOpenError).
    int breakerThreshold = 3;
  };

  /// Per-submission options (deadlines today; room to grow).
  struct SubmitOptions {
    /// Fail the job with DeadlineError if the executor has not started it
    /// within this many *simulated* seconds of submission (0 = no deadline).
    /// Checked at issue time — a job already running is never killed.
    double deadlineSeconds = 0.0;
  };

  struct Job;  // internal; defined in service.cpp's view of the world

  /// Completion handle of a submitted job.
  class Handle {
   public:
    Handle() = default;

    /// Block until the job ran; rethrows the job's error, if any.
    void wait() const;
    /// Like wait(), but gives up after `wallSeconds` of real time; returns
    /// false on timeout (job still pending), true on completion (after
    /// rethrowing the job's error, if any).
    bool waitFor(double wallSeconds) const;
    /// Withdraw the job if it is still queued: it completes immediately with
    /// CancelledError and returns true.  Returns false when the job already
    /// ran, is running right now, or was cancelled before.  Only valid while
    /// the service that issued this handle is alive.
    bool cancel() const;
    /// Map-job result (empty for generic jobs).  Blocks until the job ran
    /// and rethrows its error, like wait() — a failed job never reads as an
    /// empty result.
    const std::vector<float>& output() const;
    /// Simulated seconds from submission to completion (valid after wait()).
    double latencySeconds() const;

   private:
    friend class Service;
    explicit Handle(std::shared_ptr<Job> job) : job_(std::move(job)) {}
    std::shared_ptr<Job> job_;
  };

  /// Per-tenant accounting, exposed for benches and tests.
  struct TenantStats {
    std::uint64_t jobsCompleted = 0;
    std::uint64_t batchesRun = 0;       ///< enqueues (≤ jobsCompleted when batching)
    std::vector<double> latencySeconds; ///< one entry per completed job
  };

  /// The runtime must be initialized (skelcl::init) before constructing.
  Service() : Service(Options()) {}
  explicit Service(Options options);
  ~Service();  ///< drains queued jobs, then stops the executor

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Create a tenant session registered with this service.
  std::shared_ptr<detail::Session> createSession(detail::SessionOptions options = {});

  /// Submit an arbitrary job: `work` runs on the executor thread with
  /// `session` current (skeletons inside it execute under that session).
  /// Throws ServiceStoppedError after shutdown().
  Handle submit(std::shared_ptr<detail::Session> session, std::function<void()> work,
                SubmitOptions opts);
  Handle submit(std::shared_ptr<detail::Session> session, std::function<void()> work);

  /// Submit a small map job `output[i] = func(input[i])`; eligible for
  /// same-session batching.  Throws ServiceStoppedError after shutdown().
  Handle submitMap(std::shared_ptr<detail::Session> session, std::string userSource,
                   std::vector<float> input, SubmitOptions opts);
  Handle submitMap(std::shared_ptr<detail::Session> session, std::string userSource,
                   std::vector<float> input);

  /// Block until every job submitted so far has completed.
  void drain();

  /// Stop the executor from picking new work (queued jobs stay queued; the
  /// batch in flight finishes).  Lets tests and clients line up submissions
  /// and cancellations deterministically.
  void pause();
  /// Undo pause().
  void resume();

  /// Drain queued work, then stop the executor for good: later submits throw
  /// ServiceStoppedError.  Idempotent; the destructor calls it.
  void shutdown();

  TenantStats stats(const detail::Session& session) const;

 private:
  struct TenantQueue {
    std::shared_ptr<detail::Session> session;
    std::deque<std::shared_ptr<Job>> jobs;
    bool deferred = false;  ///< quota-blocked; other tenants go first
    TenantStats stats;
  };

  void executorLoop();
  TenantQueue* pickTenantLocked();
  std::vector<std::shared_ptr<Job>> popBatchLocked(TenantQueue& q);
  void runBatch(std::vector<std::shared_ptr<Job>>& batch);
  void runMapBatch(detail::Session& session, std::vector<std::shared_ptr<Job>>& batch);
  bool runMapQuantum(detail::Session& session, Job& job);
  bool cancelJob(const std::shared_ptr<Job>& job);
  bool breakerOpenFor(const std::string& key) const;
  void noteBreakerResult(const std::string& key, bool deterministicFailure);
  void completeJob(Job& job, std::exception_ptr error);
  double simNow(detail::Session& session);

  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< executor: work arrived / stopping
  std::condition_variable idle_cv_;   ///< drain(): a batch finished
  std::map<int, TenantQueue> queues_; ///< keyed by session id
  std::map<std::string, int> breaker_; ///< (session id + source) -> consecutive deterministic failures
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  bool paused_ = false;
  std::thread executor_;
};

}  // namespace skelcl
